# Convenience targets for the sdiq reproduction.

DOMAINS ?= 4
BENCH   := _build/default/bench/main.exe

.PHONY: all build test campaign

all: build

build:
	dune build

test:
	dune runtest

# Smoke-check the parallel campaign: every figure bench/main.exe derives
# from the simulation table must be byte-identical on 1 domain and on
# $(DOMAINS) domains. Only the figures (fig6..fig12) are diffed — the
# campaign timing line and table2's measured compile times legitimately
# vary between any two runs, parallel or not.
campaign:
	dune build bench/main.exe
	@$(BENCH) --quick --domains 1 | sed -n '/^== fig/,$$p' > _build/campaign-1.out
	@$(BENCH) --quick --domains $(DOMAINS) | sed -n '/^== fig/,$$p' > _build/campaign-n.out
	@diff _build/campaign-1.out _build/campaign-n.out \
	  && echo "campaign: figures identical on 1 vs $(DOMAINS) domains"
