# Convenience targets for the sdiq reproduction.

DOMAINS ?= 4
BENCH   := _build/default/bench/main.exe
FUZZ_N  ?= 500

.PHONY: all build test lint tighten-audit campaign fuzz check-campaign trace profile policy-grid telemetry

all: build lint

build:
	dune build

test:
	dune runtest

# Static audit: the dataflow lints, the annotation-soundness pass and
# the delivery-integrity check over every built-in benchmark under all
# four annotation modes, with the findings archived as JSON. Exit 2 on
# errors, 1 on warnings or stale waivers, 0 when clean.
lint:
	dune build bin/lint.exe
	dune exec bin/lint.exe -- --json _build/lint-findings.json

# Tightening gate: re-derive every region's minimal sound window,
# deliver it, re-audit with the trip-count-refined soundness pass plus
# the wrong-path lints, and build the occupancy/energy certificate.
# Non-zero exit on any error finding. Also wired into `dune runtest`
# via the tighten-audit alias.
tighten-audit:
	dune build @tighten-audit

# Produce a JSONL event trace of one run and audit it with the lint
# CLI's delivery-integrity pass: every traced annotation delivery must
# name a real annotation site in the statically prepared binary with
# the value the compiler placed there, commits must retire in program
# order, and the cycle structure must be well-formed.
TRACE_BENCH ?= gzip
TRACE_MODE  ?= noop
trace:
	dune build bin/simulate.exe bin/lint.exe
	dune exec bin/simulate.exe -- --bench $(TRACE_BENCH) \
	  --technique $(TRACE_MODE) --budget 20000 \
	  --trace _build/$(TRACE_BENCH)-$(TRACE_MODE).jsonl | tail -1
	dune exec bin/lint.exe -- --bench $(TRACE_BENCH) -m $(TRACE_MODE) \
	  --trace _build/$(TRACE_BENCH)-$(TRACE_MODE).jsonl

# Region-attribution profile of two benchmarks as one JSON document,
# then validate its shape: the document must carry the per-pair region
# tables, the streaming-metrics registries and the campaign-wide merge.
profile:
	dune build bin/profile.exe
	dune exec bin/profile.exe -- --bench gzip,mcf --technique noop \
	  --budget 20000 --json > _build/profile-metrics.json
	@for key in '"pairs"' '"regions"' '"profile"' '"slack"' '"metrics"' \
	  '"campaign_metrics"'; do \
	  grep -q $$key _build/profile-metrics.json \
	    || { echo "profile: missing $$key in metrics JSON" >&2; exit 1; }; \
	done
	@echo "profile: _build/profile-metrics.json validated"

# Smoke-check the parallel campaign: every figure bench/main.exe derives
# from the simulation table must be byte-identical on 1 domain and on
# $(DOMAINS) domains. Only the figures (fig6..fig12) are diffed — the
# campaign timing line and table2's measured compile times legitimately
# vary between any two runs, parallel or not.
campaign:
	dune build bench/main.exe bin/report.exe
	@$(BENCH) --quick --domains 1 | sed -n '/^== fig/,$$p' > _build/campaign-1.out
	@$(BENCH) --quick --domains $(DOMAINS) | sed -n '/^== fig/,$$p' > _build/campaign-n.out
	@diff _build/campaign-1.out _build/campaign-n.out \
	  && echo "campaign: figures identical on 1 vs $(DOMAINS) domains"
	@# Sampled campaign: the scaled suite under SMARTS sampling; report.exe
	@# exits non-zero unless every (benchmark x technique) pair covers at
	@# least ten million instructions over at least 30 measured windows.
	@dune exec bin/report.exe -- --sample > _build/campaign-sampled.out
	@tail -1 _build/campaign-sampled.out
	@# Archive the MIPS probe at the repo root so the telemetry gate has a
	@# committed baseline to diff against (see `make telemetry`).
	@$(BENCH) --mips-json BENCH_mips.json | tail -1

# One full telemetry pass: a traced report campaign appending to the
# run ledger, an OpenMetrics scrape of a profiled run, a MIPS probe
# recorded into the same ledger, with the regression gate run after
# each append (the gate evaluates the newest record, so the report's
# deterministic energy totals and the probe's host-scoped MIPS are
# each gated in turn; >10% MIPS drop or any energy drift fails). The
# trace loads in Perfetto / chrome://tracing; check the exposition
# with `promtool check metrics < $(TELEM)/metrics.om`.
#
# TELEM defaults to the committed ledger directory; CI points it at an
# untracked copy so runs never dirty the checkout (mips records are
# host-scoped anyway and would only seed there — see lib/obs/ledger.mli).
TELEM ?= telemetry
telemetry:
	dune build bin/report.exe bin/simulate.exe bin/benchdiff.exe bench/main.exe
	dune exec bin/report.exe -- --budget 20000 --only fig6 \
	  --ledger $(TELEM)/ledger.jsonl --trace-spans $(TELEM)/spans.json \
	  | tail -3
	dune exec bin/simulate.exe -- --bench gzip --technique noop \
	  --budget 20000 --metrics $(TELEM)/metrics.om | tail -1
	dune exec bin/benchdiff.exe -- --ledger $(TELEM)/ledger.jsonl --check-schema
	dune exec bin/benchdiff.exe -- --ledger $(TELEM)/ledger.jsonl
	dune exec bench/main.exe -- --mips-json _build/mips.json \
	  --ledger $(TELEM)/ledger.jsonl | tail -2
	dune exec bin/benchdiff.exe -- --ledger $(TELEM)/ledger.jsonl

# Scheduler-policy grid: every benchmark x {noop, improved} x
# {oldest_first, nskip:4, load_delay}, with both policy gates enforced
# (load_delay must be cycle- and commit-identical to oldest_first;
# nskip:4 must cut scan energy on at least three benchmarks) and the
# per-cell scan-power figures archived as JSON.
policy-grid:
	dune build bin/report.exe
	dune exec bin/report.exe -- --budget 20000 \
	  --policy-grid _build/policy-grid.json

# Differential fuzzing, four lanes over the same FUZZ_N random
# programs: (1) oracle vs pipeline under every technique with the
# invariant checker installed (speculative fetch on — the default);
# (2) the same seeds through SMARTS sampling, checker auditing every
# detailed window; (3) each program run with speculation on and off,
# asserting the committed trace and final architectural state are
# identical — wrong-path execution must be architecturally invisible;
# (4) the tightened configuration on each program, asserting it
# re-audits clean and commits identically to the baseline binary.
# Reproducible: a failure prints its seed; replay one program with
#   FUZZ_SEED=<seed> FUZZ_N=1 dune exec test/fuzz_main.exe
fuzz:
	dune build test/fuzz_main.exe
	FUZZ_N=$(FUZZ_N) FUZZ_SEED=$(or $(FUZZ_SEED),1) \
	  dune exec test/fuzz_main.exe

# The full (benchmark x technique) campaign with the cycle-level
# invariant checker auditing every run on every domain.
check-campaign:
	dune build bin/simulate.exe
	@for b in gzip vpr mcf; do \
	  for t in baseline noop extension improved abella; do \
	    dune exec bin/simulate.exe -- --bench $$b --technique $$t \
	      --budget 20000 --check | head -1; \
	  done; \
	done
	@echo "check-campaign: all pairs audited cycle-by-cycle"
