(* Differential oracle harness.

   The functional executor ([Sdiq_isa.Exec]) is the precise reference
   model; the pipeline must commit exactly the dynamic stream the oracle
   produces, whatever resizing technique is active. [run] executes a
   program both ways for every technique in [Sdiq_harness.Technique] and
   compares the committed architectural trace — sequence number, pc,
   opcode, branch outcome, target, memory effective address —
   instruction by instruction, then the final architectural state
   (registers and memory) across techniques against the baseline, since
   annotation must not change program semantics.

   Special NOOPs ([Iqset]) execute in the oracle but are stripped before
   dispatch and never commit, so the oracle stream is filtered of them
   (and of [Halt], which stops fetch without entering the ROB).

   On divergence the harness reports a replayable case: the technique,
   the first mismatching instruction with the oracle's expected values,
   the trailing context, and the prepared program listing around the
   divergence point. Minimisation is the caller's job — the fuzz driver
   (test/fuzz_main.ml) reports the generating seed and the qcheck
   property shrinks the program description. *)

open Sdiq_isa
open Sdiq_harness

type event = {
  dyn : Exec.dyn;
  value : string;  (* printed destination value after execution, "" if none *)
  store : (int * string) option;  (* effective address, value written *)
}

type mismatch = {
  index : int;  (* position in the committed stream *)
  expected : event option;  (* [None]: the pipeline committed extra *)
  got : Exec.dyn option;    (* [None]: the pipeline committed too little *)
  context : event list;     (* the last few agreed-upon events *)
}

type failure =
  | Trace_mismatch of mismatch
  | State_mismatch of string  (* final registers/memory differ vs baseline *)
  | Violation of Checker.violation
  | Stuck of string  (* deadlock: Pipeline.Simulation_limit *)

type outcome = (Sdiq_cpu.Stats.t, failure) result

type report = {
  technique : Technique.t;
  prepared : Prog.t;  (* the binary actually simulated — the replay case *)
  outcome : outcome;
}

(* --- oracle trace -------------------------------------------------------- *)

let pp_value (st : Exec.state) (i : Instr.t) =
  match Instr.dest i with
  | Some (Reg.Int r) -> string_of_int st.Exec.iregs.(r)
  | Some (Reg.Fp r) -> Printf.sprintf "%h" st.Exec.fregs.(r)
  | None -> ""

(* Execute [prog] functionally, recording one event per dynamic
   instruction that the pipeline will commit (everything but Iqset and
   Halt). [max_steps] guards runaway programs. *)
let oracle_trace ?init ~max_steps prog =
  let st = Exec.create prog in
  (match init with Some f -> f st | None -> ());
  let events = ref [] in
  let steps = ref 0 in
  let truncated = ref false in
  let rec go () =
    if !steps >= max_steps then truncated := true
    else
      match Exec.step st with
      | None -> ()
      | Some dyn ->
        incr steps;
        let op = dyn.Exec.instr.Instr.op in
        if op <> Opcode.Iqset && op <> Opcode.Halt then begin
          let store =
            if Instr.is_store dyn.Exec.instr then
              let v =
                if dyn.Exec.instr.Instr.op = Opcode.Fstore then
                  Printf.sprintf "%h" (Exec.fpeek st dyn.Exec.addr)
                else string_of_int (Exec.peek st dyn.Exec.addr)
              in
              Some (dyn.Exec.addr, v)
            else None
          in
          events :=
            { dyn; value = pp_value st dyn.Exec.instr; store } :: !events
        end;
        go ()
  in
  go ();
  (st, Array.of_list (List.rev !events), !truncated)

(* --- comparison ---------------------------------------------------------- *)

let same_dyn (a : Exec.dyn) (b : Exec.dyn) =
  a.Exec.sn = b.Exec.sn && a.Exec.pc = b.Exec.pc
  && a.Exec.instr.Instr.op = b.Exec.instr.Instr.op
  && a.Exec.next_pc = b.Exec.next_pc
  && a.Exec.taken = b.Exec.taken && a.Exec.addr = b.Exec.addr

let context_window = 5

let diff_traces (expected : event array) (got : Exec.dyn array) =
  let n = min (Array.length expected) (Array.length got) in
  let context i =
    let lo = max 0 (i - context_window) in
    Array.to_list (Array.sub expected lo (i - lo))
  in
  let rec scan i =
    if i < n then
      if same_dyn expected.(i).dyn got.(i) then scan (i + 1)
      else
        Some
          {
            index = i;
            expected = Some expected.(i);
            got = Some got.(i);
            context = context i;
          }
    else if Array.length expected > n then
      Some
        { index = n; expected = Some expected.(n); got = None; context = context n }
    else if Array.length got > n then
      Some { index = n; expected = None; got = Some got.(n); context = context n }
    else None
  in
  scan 0

(* Final architectural state as a canonical, comparable value. Program
   counters are excluded — techniques relocate code — but registers and
   memory must agree across all techniques. *)
type arch_state = {
  iregs : int array;
  fregs : float array;
  imem : (int * int) list;    (* sorted, zero values dropped *)
  fmem : (int * float) list;
}

let arch_state (st : Exec.state) =
  let dump tbl keep =
    Hashtbl.fold (fun k v acc -> if keep v then (k, v) :: acc else acc) tbl []
    |> List.sort compare
  in
  let dump_imem m =
    let acc = ref [] in
    Intmap.iter (fun k v -> if v <> 0 then acc := (k, v) :: !acc) m;
    List.sort compare !acc
  in
  {
    iregs = Array.copy st.Exec.iregs;
    fregs = Array.copy st.Exec.fregs;
    imem = dump_imem st.Exec.imem;
    fmem = dump st.Exec.fmem (fun v -> v <> 0.);
  }

(* Polymorphic [compare], not [(<>)]: fdiv produces NaNs, and structural
   inequality calls [nan <> nan] true while [compare nan nan = 0]. *)
let diff_arch_state ~(baseline : arch_state) (s : arch_state) =
  if compare baseline.iregs s.iregs <> 0 then
    Some "integer registers differ from the baseline program's final state"
  else if compare baseline.fregs s.fregs <> 0 then
    Some "fp registers differ from the baseline program's final state"
  else if compare baseline.imem s.imem <> 0 then
    Some "integer memory differs from the baseline program's final state"
  else if compare baseline.fmem s.fmem <> 0 then
    Some "fp memory differs from the baseline program's final state"
  else None

(* --- one technique ------------------------------------------------------- *)

let run_one ?config ?init ~check ~max_cycles ~max_steps technique prog :
    report =
  let prepared = Technique.prepare technique prog in
  let _, expected, truncated = oracle_trace ?init ~max_steps prepared in
  if truncated then
    {
      technique;
      prepared;
      outcome =
        Error
          (Stuck
             (Printf.sprintf "oracle exceeded %d steps — unbounded program"
                max_steps));
    }
  else begin
    let committed = ref [] in
    let policy = Technique.policy technique in
    let p = Sdiq_cpu.Pipeline.create ?config ~policy prepared in
    (* Both observers ride the event bus: the commit capture collects
       the trace to diff against the oracle, and the invariant checker
       audits every [Cycle_end]. *)
    Sdiq_cpu.Pipeline.on_commit_sink ~name:"oracle-trace-capture" p (fun dyn ->
        committed := dyn :: !committed);
    if check then ignore (Checker.attach p : Checker.t);
    (match init with
    | Some f -> f p.Sdiq_cpu.Pipeline.exec
    | None -> ());
    let outcome =
      match Sdiq_cpu.Pipeline.run ~max_cycles p with
      | stats -> (
        let got = Array.of_list (List.rev !committed) in
        match diff_traces expected got with
        | Some m -> Error (Trace_mismatch m)
        | None -> Ok stats)
      | exception Checker.Invariant_violation v -> Error (Violation v)
      | exception Sdiq_cpu.Pipeline.Simulation_limit msg -> Error (Stuck msg)
    in
    { technique; prepared; outcome }
  end

(* --- all techniques ------------------------------------------------------ *)

let run ?config ?init ?(check = true) ?(max_cycles = 2_000_000)
    ?(max_steps = 1_000_000) ?(techniques = Technique.all) prog :
    report list =
  (* The baseline program's functional result anchors the cross-technique
     semantic comparison: annotation must not change what the program
     computes. *)
  let base_st, _, base_truncated = oracle_trace ?init ~max_steps prog in
  let baseline = arch_state base_st in
  List.map
    (fun technique ->
      let r =
        run_one ?config ?init ~check ~max_cycles ~max_steps technique prog
      in
      match r.outcome with
      | Ok _ when not base_truncated -> (
        (* The pipeline's own executor has replayed the full prepared
           program by drain time; its architectural state must match the
           unannotated program's. *)
        let st =
          let p2 = Exec.create r.prepared in
          (match init with Some f -> f p2 | None -> ());
          ignore (Exec.run ~max_steps p2);
          p2
        in
        match diff_arch_state ~baseline (arch_state st) with
        | Some msg -> { r with outcome = Error (State_mismatch msg) }
        | None -> r)
      | Ok _ | Error _ -> r)
    techniques

let ok reports =
  List.for_all
    (fun r -> match r.outcome with Ok _ -> true | Error _ -> false)
    reports

(* --- reporting ----------------------------------------------------------- *)

let pp_event ppf (e : event) =
  let d = e.dyn in
  Fmt.pf ppf "sn=%-5d pc=%-4d %-24s" d.Exec.sn d.Exec.pc
    (Instr.to_string d.Exec.instr);
  if e.value <> "" then Fmt.pf ppf " => %s" e.value;
  (match e.store with
  | Some (addr, v) -> Fmt.pf ppf " mem[%d] <- %s" addr v
  | None -> ());
  if Instr.is_control d.Exec.instr then
    Fmt.pf ppf " (%s -> %d)"
      (if d.Exec.taken then "taken" else "not-taken")
      d.Exec.next_pc

let pp_dyn ppf (d : Exec.dyn) =
  Fmt.pf ppf "sn=%-5d pc=%-4d %-24s addr=%d taken=%b next=%d" d.Exec.sn
    d.Exec.pc
    (Instr.to_string d.Exec.instr)
    d.Exec.addr d.Exec.taken d.Exec.next_pc

(* The prepared-program listing around an address: the replayable core of
   a divergence report. *)
let pp_listing ppf (prog : Prog.t) ~around =
  let lo = max 0 (around - 6) and hi = min (Prog.length prog - 1) (around + 6) in
  for a = lo to hi do
    Fmt.pf ppf "  %c %4d: %s@."
      (if a = around then '>' else ' ')
      a
      (Instr.to_string (Prog.instr prog a))
  done

let pp_failure ~prepared ppf = function
  | Trace_mismatch m ->
    Fmt.pf ppf "committed trace diverges from the oracle at instruction %d:@."
      m.index;
    (match m.context with
    | [] -> ()
    | ctx ->
      Fmt.pf ppf "  agreed context:@.";
      List.iter (fun e -> Fmt.pf ppf "    %a@." pp_event e) ctx);
    (match m.expected with
    | Some e -> Fmt.pf ppf "  oracle expects: %a@." pp_event e
    | None -> Fmt.pf ppf "  oracle expects: (end of program)@.");
    (match m.got with
    | Some d -> Fmt.pf ppf "  pipeline committed: %a@." pp_dyn d
    | None -> Fmt.pf ppf "  pipeline committed: (nothing further)@.");
    let around =
      match (m.expected, m.got) with
      | Some e, _ -> e.dyn.Exec.pc
      | None, Some d -> d.Exec.pc
      | None, None -> 0
    in
    Fmt.pf ppf "  program around pc %d:@.%a" around
      (fun ppf () -> pp_listing ppf prepared ~around)
      ()
  | State_mismatch msg -> Fmt.pf ppf "final state mismatch: %s@." msg
  | Violation v -> Fmt.pf ppf "%a@." Checker.pp_violation v
  | Stuck msg -> Fmt.pf ppf "no forward progress: %s@." msg

let pp_report ppf r =
  match r.outcome with
  | Ok stats ->
    Fmt.pf ppf "%-10s ok (%d instructions, %d cycles)"
      (Technique.name r.technique)
      stats.Sdiq_cpu.Stats.committed stats.Sdiq_cpu.Stats.cycles
  | Error f ->
    Fmt.pf ppf "%-10s FAILED: %a" (Technique.name r.technique)
      (pp_failure ~prepared:r.prepared)
      f

let first_failure reports =
  List.find_opt
    (fun r -> match r.outcome with Error _ -> true | Ok _ -> false)
    reports
