(** Differential oracle harness.

    Runs a program on the functional executor ({!Sdiq_isa.Exec}) and on
    the pipeline under every technique in {!Sdiq_harness.Technique},
    comparing the committed architectural trace instruction by
    instruction and the final architectural state across techniques
    against the unannotated baseline. Divergences are reported as
    replayable cases: the prepared binary, the first mismatching
    instruction with full context, and a program listing around the
    divergence point. *)

(** One instruction of the oracle's reference trace. *)
type event = {
  dyn : Sdiq_isa.Exec.dyn;
  value : string;
      (** printed destination value after execution, [""] if none *)
  store : (int * string) option;
      (** effective address and value for stores *)
}

type mismatch = {
  index : int;  (** position in the committed stream *)
  expected : event option;  (** [None]: the pipeline committed extra *)
  got : Sdiq_isa.Exec.dyn option;
      (** [None]: the pipeline committed too little *)
  context : event list;  (** the last few agreed-upon events *)
}

type failure =
  | Trace_mismatch of mismatch
  | State_mismatch of string
      (** final registers/memory differ from the baseline program's *)
  | Violation of Checker.violation
  | Stuck of string  (** deadlock: {!Sdiq_cpu.Pipeline.Simulation_limit} *)

type outcome = (Sdiq_cpu.Stats.t, failure) result

type report = {
  technique : Sdiq_harness.Technique.t;
  prepared : Sdiq_isa.Prog.t;
      (** the binary actually simulated — the replay case *)
  outcome : outcome;
}

(** The oracle's reference trace of a program: the final functional
    state, one {!event} per dynamic instruction the pipeline will commit
    ([Iqset] and [Halt] are filtered out), and whether [max_steps]
    truncated the run. *)
val oracle_trace :
  ?init:(Sdiq_isa.Exec.state -> unit) ->
  max_steps:int ->
  Sdiq_isa.Prog.t ->
  Sdiq_isa.Exec.state * event array * bool

(** First divergence between a reference trace and a committed stream,
    if any. *)
val diff_traces : event array -> Sdiq_isa.Exec.dyn array -> mismatch option

(** Run one technique: prepare the binary, trace it on the oracle, run
    the pipeline with a fresh invariant checker (unless [check:false])
    and compare committed traces. *)
val run_one :
  ?config:Sdiq_cpu.Config.t ->
  ?init:(Sdiq_isa.Exec.state -> unit) ->
  check:bool ->
  max_cycles:int ->
  max_steps:int ->
  Sdiq_harness.Technique.t ->
  Sdiq_isa.Prog.t ->
  report

(** Run every technique (default {!Sdiq_harness.Technique.all}) with the
    invariant checker installed (default [check:true]), comparing each
    technique's final architectural state against the baseline
    program's. *)
val run :
  ?config:Sdiq_cpu.Config.t ->
  ?init:(Sdiq_isa.Exec.state -> unit) ->
  ?check:bool ->
  ?max_cycles:int ->
  ?max_steps:int ->
  ?techniques:Sdiq_harness.Technique.t list ->
  Sdiq_isa.Prog.t ->
  report list

(** All reports succeeded. *)
val ok : report list -> bool

val first_failure : report list -> report option
val pp_event : Format.formatter -> event -> unit
val pp_failure : prepared:Sdiq_isa.Prog.t -> Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit
