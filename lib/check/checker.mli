(** Cycle-level invariant checker for {!Sdiq_cpu.Pipeline}.

    Installed via the pipeline's [?checker] hook, it audits the machine
    after every cycle: the software dispatch window ([new_head]..[tail]
    never exceeds [max_new_range]), gated banks hold no entries, the
    per-cycle power integrals ([iq_banks_on_sum], [rf_banks_on_sum],
    [int_rf_live_sum]) match a recount of the live state, the ROB stays
    in program order, the physical register files conserve registers
    across rename/commit/squash, wrong-path entries exist only inside an
    open mispredict episode and are marked exactly (["wp-confined"] /
    ["wp-marking"]), every live IQ and LSQ entry links to an in-flight
    ROB entry and back (["iq-rob-linkage"], ["lsq-rob-linkage"] — the
    squash-leak detectors), the LSQ stays age-ordered, and the wakeup
    counters equal the comparisons the queue actually performed
    (replayed exactly from the previous cycle's operand exposure).

    DESIGN.md §"Invariants the pipeline maintains" lists each invariant
    with the paper section it derives from. *)

type violation = {
  cycle : int;
  invariant : string;  (** which rule tripped, e.g. ["iq-dispatch-window"] *)
  detail : string;     (** what was expected and what was found *)
  excerpt : string;    (** one-line machine-state summary *)
}

exception Invariant_violation of violation

val pp_violation : Format.formatter -> violation -> unit

(** Checker state: one per pipeline run (it tracks per-cycle deltas). *)
type t

val create : unit -> t

(** The per-cycle audit; raises {!Invariant_violation} on the first
    broken invariant. Pass [hook c] as the pipeline's [?checker]. *)
val check : t -> Sdiq_cpu.Pipeline.t -> unit

val hook : t -> Sdiq_cpu.Pipeline.t -> unit

(** The audit as an event sink: runs {!check} on every [Cycle_end].
    Register [sink c p] with {!Sdiq_cpu.Pipeline.subscribe}. *)
val sink : t -> Sdiq_cpu.Pipeline.t -> Sdiq_events.Event.t -> unit

(** Create a fresh checker and subscribe it to the pipeline's bus. *)
val attach : Sdiq_cpu.Pipeline.t -> t

(** A self-contained hook with its own fresh state — the shape
    {!Sdiq_harness.Runner.create}'s [?checker] factory expects. *)
val fresh_hook : unit -> Sdiq_cpu.Pipeline.t -> unit

(** Cycles audited so far. *)
val cycles_checked : t -> int

(** Individual invariant checks evaluated so far. *)
val checks_run : t -> int
