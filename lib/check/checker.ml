(* Cycle-level invariant checker.

   Installed on a pipeline via the [?checker] hook, it audits the machine
   after every cycle against the structural invariants the paper's results
   rest on (see DESIGN.md, "Invariants the pipeline maintains"): the
   software dispatch window is honoured, gated banks are genuinely empty,
   the per-cycle power integrals match a recount of the actual state, the
   ROB drains in program order, the physical register files conserve
   registers across rename, commit and squash, wrong-path work stays
   confined to an open mispredict episode with live IQ/ROB/LSQ linkage
   (DESIGN.md §14), and the wakeup counters fed to [Sdiq_power] equal
   the comparisons the queue really performed.

   The wakeup check exploits the pipeline's phase order (commit →
   writeback → issue → dispatch): the issue queue is untouched between the
   end of cycle k-1 and cycle k's writeback broadcast, so the end-of-cycle
   operand exposure recorded at k-1 is exactly the snapshot the parallel
   CAM ports compare against at k. The checker replays the accounting
   arithmetic from that snapshot and demands equality, not bounds.

   Checks are O(machine size) per cycle (IQ slots + ROB entries + register
   files); `bench/main.exe --micro` measures the slowdown. Violations are
   formatted only on failure — the passing path allocates nothing. *)

open Sdiq_cpu

type violation = {
  cycle : int;
  invariant : string;  (* which rule tripped, e.g. "iq-dispatch-window" *)
  detail : string;     (* what was expected and what was found *)
  excerpt : string;    (* one-line machine-state summary *)
}

exception Invariant_violation of violation

let pp_violation ppf v =
  Fmt.pf ppf "@[<v>invariant %S violated at cycle %d:@ %s@ state: %s@]"
    v.invariant v.cycle v.detail v.excerpt

let () =
  Printexc.register_printer (function
    | Invariant_violation v -> Some (Fmt.str "%a" pp_violation v)
    | _ -> None)

type t = {
  mutable cycles_checked : int;
  mutable checks_run : int;
  (* previous per-cycle integrals, to verify this cycle's increments *)
  mutable prev_iq_banks_on_sum : int;
  mutable prev_int_rf_banks_on_sum : int;
  mutable prev_fp_rf_banks_on_sum : int;
  mutable prev_int_rf_live_sum : int;
  (* commit-order watermark *)
  mutable prev_oldest_sn : int;
  (* previous wakeup counters and the operand exposure they will see *)
  mutable prev_broadcasts : int;
  mutable prev_naive : int;
  mutable prev_nonempty : int;
  mutable prev_gated : int;
  mutable prev_suppressed : int;
  mutable prev_present_ops : int;
  mutable prev_waiting_ops : int;
  mutable prev_pred_waiting_ops : int;
  (* previous select-scan integral, to bound this cycle's sweep *)
  mutable prev_scan_entries : int;
}

let create () =
  {
    cycles_checked = 0;
    checks_run = 0;
    prev_iq_banks_on_sum = 0;
    prev_int_rf_banks_on_sum = 0;
    prev_fp_rf_banks_on_sum = 0;
    prev_int_rf_live_sum = 0;
    prev_oldest_sn = -1;
    prev_broadcasts = 0;
    prev_naive = 0;
    prev_nonempty = 0;
    prev_gated = 0;
    prev_suppressed = 0;
    prev_present_ops = 0;
    prev_waiting_ops = 0;
    prev_pred_waiting_ops = 0;
    prev_scan_entries = 0;
  }

let cycles_checked c = c.cycles_checked
let checks_run c = c.checks_run

let fail p ~invariant fmt =
  Printf.ksprintf
    (fun detail ->
      raise
        (Invariant_violation
           {
             cycle = Pipeline.Debug.cycle p;
             invariant;
             detail;
             excerpt = Pipeline.Debug.excerpt p;
           }))
    fmt

(* --- issue-queue structure --------------------------------------------- *)

let check_iq c p =
  let iq = Pipeline.Debug.iq p in
  let active = iq.Iq.active_size in
  (* Gated-off banks (beyond the adaptive scheme's active ring) must hold
     nothing — they are powered down. *)
  for s = active to iq.Iq.size - 1 do
    if Iq.slot_valid iq s then
      fail p ~invariant:"iq-gated-bank-empty"
        "slot %d is valid but lies beyond active_size %d (its bank is off)"
        s active
  done;
  (* The occupancy count must equal a recount of valid slots. *)
  let valid = ref 0 in
  for s = 0 to active - 1 do
    if Iq.slot_valid iq s then incr valid
  done;
  if !valid <> iq.Iq.count then
    fail p ~invariant:"iq-count"
      "count field says %d valid entries, recount finds %d" iq.Iq.count !valid;
  if iq.Iq.head >= active || iq.Iq.new_head >= active || iq.Iq.tail >= active
  then
    fail p ~invariant:"iq-pointers"
      "pointer outside active ring: head=%d new_head=%d tail=%d active=%d"
      iq.Iq.head iq.Iq.new_head iq.Iq.tail active;
  (* When occupied, [head] must rest on a valid entry (it sweeps to one). *)
  if iq.Iq.count > 0 && not (Iq.slot_valid iq iq.Iq.head) then
    fail p ~invariant:"iq-head-valid"
      "head=%d points at an empty slot while count=%d" iq.Iq.head iq.Iq.count;
  (* The recorded region span must agree with the pointers: congruent to
     tail - new_head modulo the ring, and never exceeding the ring. *)
  let span = iq.Iq.new_span in
  if
    span < 0 || span > active
    || span mod active <> (iq.Iq.tail - iq.Iq.new_head + active) mod active
  then
    fail p ~invariant:"iq-span"
      "new_span=%d disagrees with new_head=%d tail=%d (active=%d)" span
      iq.Iq.new_head iq.Iq.tail active;
  c.checks_run <- c.checks_run + 5

(* --- the paper's dispatch limit ---------------------------------------- *)

let check_dispatch_window c p =
  let iq = Pipeline.Debug.iq p in
  match Pipeline.Debug.policy p with
  | Policy.Software s ->
    (* Section 3.2: at most max_new_range slots (holes included) between
       new_head and tail, itself capped at size - 1 so the region can
       never wrap the whole ring. *)
    let cap = min s.Policy.max_new_range (Iq.size iq - 1) in
    if Iq.new_region_span iq > cap then
      fail p ~invariant:"iq-dispatch-window"
        "region spans %d slots, exceeding the compiler's max_new_range %d \
         (cap %d)"
        (Iq.new_region_span iq) s.Policy.max_new_range cap;
    c.checks_run <- c.checks_run + 1
  | Policy.Unlimited | Policy.Abella _ -> ()

(* --- per-cycle power integrals ----------------------------------------- *)

let count_rf_banks_on (rf : Regfile.t) =
  let nb = Regfile.banks rf in
  let on = ref 0 in
  for b = 0 to nb - 1 do
    let lo = b * rf.Regfile.bank_size in
    let hi = min rf.Regfile.size (lo + rf.Regfile.bank_size) - 1 in
    let live = ref false in
    for i = lo to hi do
      if not rf.Regfile.free.(i) then live := true
    done;
    if !live then incr on
  done;
  !on

let check_power_integrals c p =
  let stats = Pipeline.Debug.stats p in
  let iq = Pipeline.Debug.iq p in
  let int_rf = Pipeline.Debug.int_rf p in
  let fp_rf = Pipeline.Debug.fp_rf p in
  (* Each per-cycle sum must have grown by exactly the value a recount of
     the live state yields — the power model integrates these. *)
  (* Recount from the raw valid bytes, not the incremental [bank_live]
     counters the pipeline integrates — this is what keeps the audit
     independent of the fast path it is auditing. *)
  let d_iq = stats.Stats.iq_banks_on_sum - c.prev_iq_banks_on_sum in
  let iq_on = Iq.recount_banks_on iq in
  if d_iq <> iq_on then
    fail p ~invariant:"iq-banks-on-accounting"
      "iq_banks_on_sum grew by %d this cycle but %d banks hold entries" d_iq
      iq_on;
  let d_int = stats.Stats.int_rf_banks_on_sum - c.prev_int_rf_banks_on_sum in
  let int_on = count_rf_banks_on int_rf in
  if d_int <> int_on then
    fail p ~invariant:"rf-banks-on-accounting"
      "int_rf_banks_on_sum grew by %d but %d banks hold live registers" d_int
      int_on;
  let d_fp = stats.Stats.fp_rf_banks_on_sum - c.prev_fp_rf_banks_on_sum in
  let fp_on = count_rf_banks_on fp_rf in
  if d_fp <> fp_on then
    fail p ~invariant:"rf-banks-on-accounting"
      "fp_rf_banks_on_sum grew by %d but %d banks hold live registers" d_fp
      fp_on;
  let d_live = stats.Stats.int_rf_live_sum - c.prev_int_rf_live_sum in
  let live = Regfile.live_count int_rf in
  if d_live <> live then
    fail p ~invariant:"rf-live-accounting"
      "int_rf_live_sum grew by %d but %d registers are live" d_live live;
  c.prev_iq_banks_on_sum <- stats.Stats.iq_banks_on_sum;
  c.prev_int_rf_banks_on_sum <- stats.Stats.int_rf_banks_on_sum;
  c.prev_fp_rf_banks_on_sum <- stats.Stats.fp_rf_banks_on_sum;
  c.prev_int_rf_live_sum <- stats.Stats.int_rf_live_sum;
  c.checks_run <- c.checks_run + 4

(* --- reorder buffer ----------------------------------------------------- *)

let check_rob c p =
  let rob = Pipeline.Debug.rob p in
  (* Program order head→tail: strictly increasing sequence numbers, and
     the oldest in-flight instruction only ever moves forward (commits
     happen at the head, in order, or not at all). *)
  let prev_sn = ref (-1) in
  let oldest = ref (-1) in
  Rob.iter_in_flight rob (fun idx ->
      let d = Rob.dyn rob idx in
      if d.Sdiq_isa.Exec.sn < 0 then
        fail p ~invariant:"rob-entry-live"
          "in-flight ROB entry %d carries no instruction" idx;
      if !oldest < 0 then oldest := d.Sdiq_isa.Exec.sn;
      if d.Sdiq_isa.Exec.sn <= !prev_sn then
        fail p ~invariant:"rob-program-order"
          "ROB entry %d has sn %d after sn %d — commit order broken" idx
          d.Sdiq_isa.Exec.sn !prev_sn;
      prev_sn := d.Sdiq_isa.Exec.sn);
  if !oldest >= 0 then begin
    if !oldest < c.prev_oldest_sn then
      fail p ~invariant:"rob-head-monotonic"
        "oldest in-flight sn went backwards: %d after %d" !oldest
        c.prev_oldest_sn;
    c.prev_oldest_sn <- !oldest
  end;
  c.checks_run <- c.checks_run + 2

(* --- physical register conservation ------------------------------------ *)

(* Every allocated physical register must be reachable exactly once: either
   as the current mapping of an architectural register, or as the previous
   mapping held by one in-flight ROB entry for release at commit. Anything
   else is a leak (never freed) or a double mapping (freed twice). *)
let check_rf_conservation c p =
  let rob = Pipeline.Debug.rob p in
  let audit ~name (rf : Regfile.t) map select =
    let owner = Array.make rf.Regfile.size (-2) in
    (* owner codes: -2 unclaimed, arch index >= 0, ROB entry as -(3+idx) *)
    let describe = function
      | o when o >= 0 -> Printf.sprintf "arch r%d" o
      | o -> Printf.sprintf "ROB entry %d" (-o - 3)
    in
    let claim p_reg who =
      if p_reg < 0 || p_reg >= rf.Regfile.size then
        fail p ~invariant:"rf-conservation" "%s file: %s maps to p%d, out of \
                                             range" name (describe who) p_reg;
      if rf.Regfile.free.(p_reg) then
        fail p ~invariant:"rf-conservation"
          "%s register p%d is on the free list but %s still claims it" name
          p_reg (describe who);
      if owner.(p_reg) <> -2 then
        fail p ~invariant:"rf-conservation"
          "%s register p%d claimed twice: by %s and by %s" name p_reg
          (describe owner.(p_reg)) (describe who);
      owner.(p_reg) <- who
    in
    Array.iteri (fun arch p_reg -> claim p_reg arch) map;
    Rob.iter_in_flight rob (fun idx ->
        match select (Rob.old_phys_of rob idx) with
        | Some p_reg -> claim p_reg (-(3 + idx))
        | None -> ());
    let claimed =
      Array.fold_left (fun n o -> if o <> -2 then n + 1 else n) 0 owner
    in
    if claimed <> Regfile.live_count rf then
      fail p ~invariant:"rf-conservation"
        "%s file: %d registers claimed by the map and in-flight entries, \
         but %d are allocated — registers leaked"
        name claimed (Regfile.live_count rf);
    let free =
      Array.fold_left (fun n f -> if f then n + 1 else n) 0 rf.Regfile.free
    in
    if free <> rf.Regfile.free_count then
      fail p ~invariant:"rf-free-count"
        "%s file free_count says %d but the free list holds %d" name
        rf.Regfile.free_count free
  in
  audit ~name:"int" (Pipeline.Debug.int_rf p) (Pipeline.Debug.int_map p)
    (function Rob.Int_dest q -> Some q | Rob.No_dest | Rob.Fp_dest _ -> None);
  audit ~name:"fp" (Pipeline.Debug.fp_rf p) (Pipeline.Debug.fp_map p)
    (function Rob.Fp_dest q -> Some q | Rob.No_dest | Rob.Int_dest _ -> None);
  c.checks_run <- c.checks_run + 4

(* --- speculation: wrong-path confinement and squash completeness -------- *)

(* DESIGN.md §14: wrong-path work is confined to an open episode. While
   no mispredict is outstanding, every in-flight entry must be
   correct-path — a squash that left a [wp] entry behind would commit
   it. While an episode is open, the [wp] flag must be exactly the
   predicate "younger than the blocked branch": the squash walk stops at
   the first non-wp tail entry, so a mismarked entry either survives the
   squash or takes a correct-path instruction with it. *)
let check_speculation c p =
  let rob = Pipeline.Debug.rob p in
  let wp_mode = Pipeline.Debug.wp_mode p in
  let blocked = Pipeline.Debug.blocked_sn p in
  Rob.iter_in_flight rob (fun idx ->
      let wp = Rob.is_wp rob idx in
      if not wp_mode then begin
        if wp then
          fail p ~invariant:"wp-confined"
            "ROB entry %d is wrong-path but no episode is open — the squash \
             left it behind"
            idx
      end
      else begin
        let sn = (Rob.dyn rob idx).Sdiq_isa.Exec.sn in
        if wp <> (sn > blocked) then
          fail p ~invariant:"wp-marking"
            "ROB entry %d has sn %d against blocked_sn %d but wp=%b" idx sn
            blocked wp
      end);
  c.checks_run <- c.checks_run + 1

(* --- IQ/ROB linkage ------------------------------------------------------ *)

(* Entry conservation across squashes: every live IQ slot belongs to an
   in-flight ROB entry whose back-pointer returns to it, and every
   dispatched-not-yet-issued entry still owns its slot. A squash that
   forgets to free an IQ slot (the entry's ROB line is popped, the CAM
   entry stays live) shows up here as a slot pointing at a dead entry —
   in hardware it would wake, issue, and write back a ghost. *)
let check_iq_rob_linkage c p =
  let iq = Pipeline.Debug.iq p in
  let rob = Pipeline.Debug.rob p in
  for s = 0 to iq.Iq.active_size - 1 do
    if Iq.slot_valid iq s then begin
      let idx = Iq.slot_rob_idx iq s in
      if (Rob.dyn rob idx).Sdiq_isa.Exec.sn < 0 then
        fail p ~invariant:"iq-rob-linkage"
          "IQ slot %d points at ROB entry %d, which is not in flight — a \
           squash or commit left a stale entry live"
          s idx;
      if Rob.iq_slot rob idx <> s then
        fail p ~invariant:"iq-rob-linkage"
          "IQ slot %d points at ROB entry %d, whose back-pointer is slot %d"
          s idx (Rob.iq_slot rob idx)
    end
  done;
  Rob.iter_in_flight rob (fun idx ->
      if Rob.state rob idx = Rob.Dispatched then begin
        let s = Rob.iq_slot rob idx in
        if s < 0 || (not (Iq.slot_valid iq s)) || Iq.slot_rob_idx iq s <> idx
        then
          fail p ~invariant:"iq-rob-linkage"
            "dispatched ROB entry %d does not own a live IQ slot (slot %d)"
            idx s
      end);
  c.checks_run <- c.checks_run + 2

(* --- load/store queue ---------------------------------------------------- *)

(* The forwarding search depends on allocation (program) order and on
   live back-pointers; speculative allocation plus tail squashes make
   both easy to corrupt silently, so recount everything: ages strictly
   increase oldest-to-youngest, every slot links to an in-flight memory
   entry and back, the kind and wp flags agree with the ROB, and the
   entry count matches both the queue's own field and the number of
   in-flight ROB entries holding LSQ slots. *)
let check_lsq c p =
  let lsq = Pipeline.Debug.lsq p in
  let rob = Pipeline.Debug.rob p in
  let n = ref 0 in
  let prev_sn = ref (-1) in
  Lsq.iter_oldest_first lsq (fun slot rob_idx ->
      incr n;
      let d = Rob.dyn rob rob_idx in
      if d.Sdiq_isa.Exec.sn < 0 then
        fail p ~invariant:"lsq-rob-linkage"
          "LSQ slot %d points at ROB entry %d, which is not in flight" slot
          rob_idx;
      if Rob.lsq_slot rob rob_idx <> slot then
        fail p ~invariant:"lsq-rob-linkage"
          "LSQ slot %d points at ROB entry %d, whose back-pointer is %d" slot
          rob_idx
          (Rob.lsq_slot rob rob_idx);
      if d.Sdiq_isa.Exec.sn <= !prev_sn then
        fail p ~invariant:"lsq-age-order"
          "LSQ entry with sn %d follows sn %d — allocation order broken"
          d.Sdiq_isa.Exec.sn !prev_sn;
      prev_sn := d.Sdiq_isa.Exec.sn;
      if
        Lsq.is_store lsq slot
        <> Sdiq_isa.Instr.is_store d.Sdiq_isa.Exec.instr
      then
        fail p ~invariant:"lsq-kind"
          "LSQ slot %d store flag disagrees with ROB entry %d" slot rob_idx;
      if Lsq.is_wp lsq slot <> Rob.is_wp rob rob_idx then
        fail p ~invariant:"lsq-wp-marking"
          "LSQ slot %d wp flag disagrees with ROB entry %d" slot rob_idx);
  if !n <> Lsq.count lsq then
    fail p ~invariant:"lsq-count" "count field says %d entries, recount finds %d"
      (Lsq.count lsq) !n;
  let mem = ref 0 in
  Rob.iter_in_flight rob (fun idx ->
      if Rob.lsq_slot rob idx >= 0 then incr mem);
  if !mem <> Lsq.count lsq then
    fail p ~invariant:"lsq-count"
      "%d in-flight ROB entries hold LSQ slots but the queue counts %d" !mem
      (Lsq.count lsq);
  c.checks_run <- c.checks_run + 5

(* --- wakeup accounting -------------------------------------------------- *)

let operand_exposure (iq : Iq.t) =
  let present = ref 0 and waiting = ref 0 and pred_waiting = ref 0 in
  for s = 0 to iq.Iq.size - 1 do
    if Iq.slot_valid iq s then
      for j = 0 to 1 do
        if Iq.op_present iq s j then begin
          incr present;
          if not (Iq.op_ready iq s j) then begin
            incr waiting;
            if Iq.op_pred iq s j then incr pred_waiting
          end
        end
      done
  done;
  (!present, !waiting, !pred_waiting)

(* Ready-prediction soundness (DESIGN.md §16): under [Sched.Load_delay]
   a waiting operand carries the predicted-ready mark exactly when its
   producer is not a load — loads have non-deterministic latency, so
   suppressing their consumers' comparisons would be a guess, not a
   prediction. The producer's physical tag is still allocated while the
   operand waits, so [Pipeline.Debug.tag_is_load] is current. Under
   non-suppressing policies no mark may exist at all (the rename stage
   never sets one). A mark planted on a load-fed operand — or cleared
   from a non-load-fed one — is precisely what [Iq.Raw.set_pred]
   sabotage does, and it must be caught here before the energy books
   credit a suppression the hardware could not have justified. *)
let check_pred_soundness c p ~suppressing =
  let iq = Pipeline.Debug.iq p in
  for s = 0 to iq.Iq.size - 1 do
    if Iq.slot_valid iq s then
      for j = 0 to 1 do
        if Iq.op_present iq s j && not (Iq.op_ready iq s j) then begin
          let pred = Iq.op_pred iq s j in
          if not suppressing then begin
            if pred then
              fail p ~invariant:"wakeup-pred-sound"
                "slot %d operand %d is marked predicted-ready under a \
                 non-suppressing scheduler"
                s j
          end
          else begin
            let from_load = Pipeline.Debug.tag_is_load p (Iq.op_tag iq s j) in
            if pred && from_load then
              fail p ~invariant:"wakeup-pred-sound"
                "slot %d operand %d waits on load-produced tag %d yet is \
                 marked predicted-ready — its wakeup would be suppressed on \
                 a guess"
                s j (Iq.op_tag iq s j);
            if (not pred) && not from_load then
              fail p ~invariant:"wakeup-pred-sound"
                "slot %d operand %d waits on fixed-latency tag %d but lost \
                 its predicted-ready mark — its comparison is priced gated \
                 instead of suppressed"
                s j (Iq.op_tag iq s j)
          end
        end
      done
  done;
  c.checks_run <- c.checks_run + 1

let check_wakeups c p =
  let iq = Pipeline.Debug.iq p in
  let suppressing =
    Sched.suppresses_predicted (Pipeline.Debug.sched p)
  in
  (* Nothing touches the queue between the end of the previous cycle and
     this cycle's writeback broadcast, so the exposure recorded then is
     the snapshot the CAM ports compared against now. *)
  let d_tags = iq.Iq.broadcasts - c.prev_broadcasts in
  let d_naive = iq.Iq.wakeups_naive - c.prev_naive in
  let d_nonempty = iq.Iq.wakeups_nonempty - c.prev_nonempty in
  let d_gated = iq.Iq.wakeups_gated - c.prev_gated in
  let d_suppressed = iq.Iq.wakeups_suppressed - c.prev_suppressed in
  if d_naive <> 2 * Iq.size iq * d_tags then
    fail p ~invariant:"wakeup-naive"
      "naive wakeups grew by %d for %d tags over %d slots (expected %d)"
      d_naive d_tags (Iq.size iq)
      (2 * Iq.size iq * d_tags);
  if d_nonempty <> c.prev_present_ops * d_tags then
    fail p ~invariant:"wakeup-nonempty"
      "nonEmpty wakeups grew by %d for %d tags against %d present operands \
       (expected %d)"
      d_nonempty d_tags c.prev_present_ops
      (c.prev_present_ops * d_tags);
  (* Under a suppressing scheduler the waiting operands split between the
     gated and suppressed ledgers along the predicted-ready mark; every
     other policy must book them all gated and none suppressed. *)
  let expect_gated =
    if suppressing then (c.prev_waiting_ops - c.prev_pred_waiting_ops) * d_tags
    else c.prev_waiting_ops * d_tags
  in
  let expect_suppressed =
    if suppressing then c.prev_pred_waiting_ops * d_tags else 0
  in
  if d_gated <> expect_gated then
    fail p ~invariant:"wakeup-gated"
      "gated wakeups grew by %d for %d tags against %d waiting (%d \
       predicted-ready) operands (expected %d)"
      d_gated d_tags c.prev_waiting_ops c.prev_pred_waiting_ops expect_gated;
  if d_suppressed <> expect_suppressed then
    fail p ~invariant:"wakeup-suppressed"
      "suppressed wakeups grew by %d for %d tags against %d predicted-ready \
       waiting operands (expected %d)"
      d_suppressed d_tags c.prev_pred_waiting_ops expect_suppressed;
  c.prev_broadcasts <- iq.Iq.broadcasts;
  c.prev_naive <- iq.Iq.wakeups_naive;
  c.prev_nonempty <- iq.Iq.wakeups_nonempty;
  c.prev_gated <- iq.Iq.wakeups_gated;
  c.prev_suppressed <- iq.Iq.wakeups_suppressed;
  check_pred_soundness c p ~suppressing;
  let present, waiting, pred_waiting = operand_exposure iq in
  c.prev_present_ops <- present;
  c.prev_waiting_ops <- waiting;
  c.prev_pred_waiting_ops <- pred_waiting;
  c.checks_run <- c.checks_run + 4

(* --- select-scan accounting ---------------------------------------------- *)

(* The per-cycle growth of the scan integral can never exceed the
   policy's own bound: [oldest_first] and [load_delay] sweep at most the
   whole ring, [nskip ~n] at most [n] slots. The ring can only have been
   at most [Iq.size] entries long when the sweep ran (resizing happens
   after issue), so the bound is evaluated at full size — tight enough
   to catch a runaway sweep, immune to end-of-cycle resizes. *)
let check_scan c p =
  let stats = Pipeline.Debug.stats p in
  let iq = Pipeline.Debug.iq p in
  let d_scan = stats.Stats.iq_scan_entries - c.prev_scan_entries in
  let bound = Sched.scan_bound (Pipeline.Debug.sched p) ~active:(Iq.size iq) in
  if d_scan < 0 || d_scan > bound then
    fail p ~invariant:"iq-scan-bound"
      "select scan examined %d slots this cycle; the policy admits at most \
       %d"
      d_scan bound;
  c.prev_scan_entries <- stats.Stats.iq_scan_entries;
  c.checks_run <- c.checks_run + 1

(* --- entry point -------------------------------------------------------- *)

let check c p =
  (* Linkage first: a squash leak shows up as a stale slot pointing at a
     dead ROB entry, which can also strand [head]; auditing linkage
     before IQ structure makes the diagnosis name the root cause. *)
  check_iq_rob_linkage c p;
  check_iq c p;
  check_dispatch_window c p;
  check_power_integrals c p;
  check_rob c p;
  check_rf_conservation c p;
  check_speculation c p;
  check_lsq c p;
  check_wakeups c p;
  check_scan c p;
  c.cycles_checked <- c.cycles_checked + 1

let hook c = check c

(* As an event sink: the audit runs on [Cycle_end] — the last event of
   each cycle, delivered after the cycle's statistics are folded in, so
   the per-cycle power-integral recount sees exactly the machine state
   the old post-accounting hook did. *)
let sink c p (ev : Sdiq_events.Event.t) =
  match ev with Sdiq_events.Event.Cycle_end _ -> check c p | _ -> ()

(* Fresh checker subscribed to an existing pipeline's event bus. *)
let attach p =
  let c = create () in
  Pipeline.subscribe ~name:"invariant-checker" p (sink c p);
  c

(* Factory for Runner/simulate: a fresh checker per run. *)
let fresh_hook () =
  let c = create () in
  hook c
