(* Open-addressing int-keyed int map for the oracle's data memory.

   [Hashtbl] costs a generic hash, a structural key compare and an
   option allocation per probe; this map is a power-of-two table with
   multiplicative hashing and linear probing — allocation-free lookups,
   no deletion (the oracle only writes and reads memory). Lookup of an
   absent key yields [default], matching the "unwritten memory reads 0"
   semantics. *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable used : Bytes.t; (* '\001' = slot occupied *)
  mutable mask : int;     (* capacity - 1; capacity is a power of two *)
  mutable count : int;
}

let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

let create n =
  let cap = pow2 (if n < 16 then 16 else n) 16 in
  {
    keys = Array.make cap 0;
    vals = Array.make cap 0;
    used = Bytes.make cap '\000';
    mask = cap - 1;
    count = 0;
  }

(* Fibonacci hashing; keys are arbitrary ints (addresses may be
   negative in randomly generated programs). *)
let slot_of t k = (k * 0x2545F4914F6CDD1D) land t.mask

let find t k ~default =
  let i = ref (slot_of t k) in
  while
    Bytes.unsafe_get t.used !i = '\001' && Array.unsafe_get t.keys !i <> k
  do
    i := (!i + 1) land t.mask
  done;
  if Bytes.unsafe_get t.used !i = '\001' then Array.unsafe_get t.vals !i
  else default

let rec replace t k v =
  let i = ref (slot_of t k) in
  while
    Bytes.unsafe_get t.used !i = '\001' && Array.unsafe_get t.keys !i <> k
  do
    i := (!i + 1) land t.mask
  done;
  if Bytes.unsafe_get t.used !i = '\001' then t.vals.(!i) <- v
  else if 2 * (t.count + 1) > t.mask + 1 then begin
    (* Keep the load factor under 1/2: rehash into a doubled table. *)
    let okeys = t.keys and ovals = t.vals and oused = t.used in
    let cap = 2 * (t.mask + 1) in
    t.keys <- Array.make cap 0;
    t.vals <- Array.make cap 0;
    t.used <- Bytes.make cap '\000';
    t.mask <- cap - 1;
    t.count <- 0;
    for j = 0 to Array.length okeys - 1 do
      if Bytes.unsafe_get oused j = '\001' then replace t okeys.(j) ovals.(j)
    done;
    replace t k v
  end
  else begin
    t.keys.(!i) <- k;
    t.vals.(!i) <- v;
    Bytes.unsafe_set t.used !i '\001';
    t.count <- t.count + 1
  end

let count t = t.count

let iter f t =
  for i = 0 to t.mask do
    if Bytes.unsafe_get t.used i = '\001' then f t.keys.(i) t.vals.(i)
  done
