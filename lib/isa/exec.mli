(** Functional (oracle) executor.

    The timing simulator is execution-driven: the functional core runs
    each instruction as it is fetched, producing the dynamic stream the
    timing model schedules. Arithmetic is total (division by zero yields
    0, out-of-range shifts yield 0, unwritten memory reads 0) so randomly
    generated programs cannot fault. *)

type dyn = {
  sn : int;       (** dynamic sequence number, from 0 *)
  pc : int;
  instr : Instr.t;
  next_pc : int;  (** address of the next dynamic instruction *)
  taken : bool;   (** control instructions: was the transfer taken *)
  addr : int;     (** memory effective address, -1 for non-memory ops *)
}

type state = {
  prog : Prog.t;
  iregs : int array;
  fregs : float array;
  imem : Intmap.t;  (** integer memory (open addressing) *)
  fmem : (int, float) Hashtbl.t;
  mutable stack : int list;
  mutable pc : int;
  mutable steps : int;
  mutable halted : bool;
  mutable d_next_pc : int;
      (** [step] scratch (unboxed outcome fields); not meaningful between
          calls *)
  mutable d_taken : bool;
  mutable d_addr : int;
}

val create : Prog.t -> state

(** Shift amounts outside [0, 63) make the result 0 (total semantics);
    exported so the pipeline's wrong-path executor matches exactly. *)
val shift_ok : int -> bool

(** Integer memory access (word granularity; unwritten reads 0). *)
val peek : state -> int -> int

val poke : state -> int -> int -> unit
val fpeek : state -> int -> float
val fpoke : state -> int -> float -> unit

(** Execute the instruction at the current pc; [None] once halted. *)
val step : state -> dyn option

(** Run to completion or [max_steps]; returns executed instructions. *)
val run : ?max_steps:int -> state -> int
