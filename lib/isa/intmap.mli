(** Open-addressing int-keyed int map (the oracle's data memory):
    power-of-two capacity, multiplicative hashing, linear probing,
    allocation-free lookups, no deletion. *)

type t

(** [create n]: capacity at least [n], rounded up to a power of two. *)
val create : int -> t

(** The value bound to [k], or [default] when absent. *)
val find : t -> int -> default:int -> int

(** Bind [k] to [v], replacing any previous binding. *)
val replace : t -> int -> int -> unit

(** Number of bindings. *)
val count : t -> int

(** Iterate over bindings, in unspecified order. *)
val iter : (int -> int -> unit) -> t -> unit
