(* Functional (oracle) executor.

   The timing simulator is execution-driven in the SimpleScalar style: the
   functional core runs each instruction as it is fetched, producing the
   dynamic stream (branch outcomes, memory addresses, halt) that the timing
   model then schedules. Because wrong-path instructions are never injected
   (a misprediction stalls fetch until the branch resolves), the oracle and
   the pipeline always agree on the committed stream.

   Arithmetic is total: integer division by zero yields 0, as does a shift
   by an out-of-range amount, so that randomly generated programs cannot
   fault. Loads from unwritten addresses return 0. *)

type dyn = {
  sn : int;       (* dynamic sequence number, from 0 *)
  pc : int;
  instr : Instr.t;
  next_pc : int;  (* address of the next dynamic instruction *)
  taken : bool;   (* control instructions: was the branch/jump taken *)
  addr : int;     (* memory effective address, -1 for non-memory ops *)
}

type state = {
  prog : Prog.t;
  iregs : int array;
  fregs : float array;
  imem : Intmap.t; (* open addressing: allocation-free loads *)
  fmem : (int, float) Hashtbl.t;
  mutable stack : int list; (* return addresses *)
  mutable pc : int;
  mutable steps : int;
  mutable halted : bool;
  (* [step] scratch: OCaml would box [ref] cells, so the per-instruction
     outcome fields live on the state instead (DESIGN.md §13) *)
  mutable d_next_pc : int;
  mutable d_taken : bool;
  mutable d_addr : int;
}

let create prog =
  {
    prog;
    iregs = Array.make Reg.num_int 0;
    fregs = Array.make Reg.num_fp 0.;
    imem = Intmap.create 4096;
    fmem = Hashtbl.create 256;
    stack = [];
    pc = prog.Prog.entry;
    steps = 0;
    halted = false;
    d_next_pc = 0;
    d_taken = false;
    d_addr = -1;
  }

let peek t addr = Intmap.find t.imem addr ~default:0
let poke t addr v = Intmap.replace t.imem addr v
let fpeek t addr = match Hashtbl.find_opt t.fmem addr with Some v -> v | None -> 0.
let fpoke t addr v = Hashtbl.replace t.fmem addr v

let ireg t r = if r = 0 then 0 else t.iregs.(r)
let set_ireg t r v = if r <> 0 then t.iregs.(r) <- v

let src1_int t (i : Instr.t) =
  match i.src1 with Some (Reg.Int r) -> ireg t r | _ -> 0

let src2_int t (i : Instr.t) =
  match i.src2 with Some (Reg.Int r) -> ireg t r | _ -> 0

let src1_fp t (i : Instr.t) =
  match i.src1 with Some (Reg.Fp r) -> t.fregs.(r) | _ -> 0.

let src2_fp t (i : Instr.t) =
  match i.src2 with Some (Reg.Fp r) -> t.fregs.(r) | _ -> 0.

let write_int t (i : Instr.t) v =
  match i.dst with
  | Some (Reg.Int r) -> set_ireg t r v
  | Some (Reg.Fp _) | None -> ()

let write_fp t (i : Instr.t) v =
  match i.dst with
  | Some (Reg.Fp r) -> t.fregs.(r) <- v
  | Some (Reg.Int _) | None -> ()

let shift_ok n = n >= 0 && n < 63

(* Execute the instruction at [t.pc]; returns [None] once halted. *)
let step t : dyn option =
  if t.halted then None
  else if t.pc < 0 || t.pc >= Array.length t.prog.Prog.code then (
    t.halted <- true;
    None)
  else begin
    let pc = t.pc in
    let i = t.prog.Prog.code.(pc) in
    let sn = t.steps in
    t.steps <- sn + 1;
    let fallthrough = pc + 1 in
    t.d_next_pc <- fallthrough;
    t.d_taken <- false;
    t.d_addr <- -1;
    (match i.op with
    | Opcode.Add -> write_int t i (src1_int t i + src2_int t i)
    | Opcode.Sub -> write_int t i (src1_int t i - src2_int t i)
    | Opcode.And -> write_int t i (src1_int t i land src2_int t i)
    | Opcode.Or -> write_int t i (src1_int t i lor src2_int t i)
    | Opcode.Xor -> write_int t i (src1_int t i lxor src2_int t i)
    | Opcode.Shl ->
      let n = src2_int t i in
      write_int t i (if shift_ok n then src1_int t i lsl n else 0)
    | Opcode.Shr ->
      let n = src2_int t i in
      write_int t i (if shift_ok n then src1_int t i lsr n else 0)
    | Opcode.Slt -> write_int t i (if src1_int t i < src2_int t i then 1 else 0)
    | Opcode.Sle -> write_int t i (if src1_int t i <= src2_int t i then 1 else 0)
    | Opcode.Seq -> write_int t i (if src1_int t i = src2_int t i then 1 else 0)
    | Opcode.Sne -> write_int t i (if src1_int t i <> src2_int t i then 1 else 0)
    | Opcode.Addi -> write_int t i (src1_int t i + i.imm)
    | Opcode.Andi -> write_int t i (src1_int t i land i.imm)
    | Opcode.Ori -> write_int t i (src1_int t i lor i.imm)
    | Opcode.Xori -> write_int t i (src1_int t i lxor i.imm)
    | Opcode.Shli ->
      write_int t i (if shift_ok i.imm then src1_int t i lsl i.imm else 0)
    | Opcode.Shri ->
      write_int t i (if shift_ok i.imm then src1_int t i lsr i.imm else 0)
    | Opcode.Slti -> write_int t i (if src1_int t i < i.imm then 1 else 0)
    | Opcode.Li -> write_int t i i.imm
    | Opcode.Mov -> write_int t i (src1_int t i)
    | Opcode.Mul -> write_int t i (src1_int t i * src2_int t i)
    | Opcode.Div ->
      let d = src2_int t i in
      write_int t i (if d = 0 then 0 else src1_int t i / d)
    | Opcode.Fadd -> write_fp t i (src1_fp t i +. src2_fp t i)
    | Opcode.Fsub -> write_fp t i (src1_fp t i -. src2_fp t i)
    | Opcode.Fmul -> write_fp t i (src1_fp t i *. src2_fp t i)
    | Opcode.Fdiv ->
      let d = src2_fp t i in
      write_fp t i (if d = 0. then 0. else src1_fp t i /. d)
    | Opcode.Fli -> write_fp t i (float_of_int i.imm /. 1000.)
    | Opcode.Fmov -> write_fp t i (src1_fp t i)
    | Opcode.Itof -> write_fp t i (float_of_int (src1_int t i))
    | Opcode.Ftoi -> write_int t i (int_of_float (src1_fp t i))
    | Opcode.Load ->
      let a = src1_int t i + i.imm in
      t.d_addr <- a;
      write_int t i (peek t a)
    | Opcode.Store ->
      let a = src1_int t i + i.imm in
      t.d_addr <- a;
      poke t a (src2_int t i)
    | Opcode.Fload ->
      let a = src1_int t i + i.imm in
      t.d_addr <- a;
      write_fp t i (fpeek t a)
    | Opcode.Fstore ->
      let a = src1_int t i + i.imm in
      t.d_addr <- a;
      fpoke t a (src2_fp t i)
    | Opcode.Beq ->
      if src1_int t i = src2_int t i then (t.d_taken <- true; t.d_next_pc <- i.target)
    | Opcode.Bne ->
      if src1_int t i <> src2_int t i then (t.d_taken <- true; t.d_next_pc <- i.target)
    | Opcode.Blt ->
      if src1_int t i < src2_int t i then (t.d_taken <- true; t.d_next_pc <- i.target)
    | Opcode.Bge ->
      if src1_int t i >= src2_int t i then (t.d_taken <- true; t.d_next_pc <- i.target)
    | Opcode.Jmp ->
      t.d_taken <- true;
      t.d_next_pc <- i.target
    | Opcode.Call ->
      t.d_taken <- true;
      t.stack <- fallthrough :: t.stack;
      t.d_next_pc <- i.target
    | Opcode.Ret -> (
      t.d_taken <- true;
      match t.stack with
      | ra :: rest ->
        t.stack <- rest;
        t.d_next_pc <- ra
      | [] -> t.halted <- true (* return from the entry procedure *))
    | Opcode.Nop | Opcode.Iqset -> ()
    | Opcode.Halt -> t.halted <- true);
    t.pc <- t.d_next_pc;
    Some
      {
        sn;
        pc;
        instr = i;
        next_pc = t.d_next_pc;
        taken = t.d_taken;
        addr = t.d_addr;
      }
  end

(* Run to completion (or [max_steps]); returns the number of executed
   instructions. *)
let run ?(max_steps = 10_000_000) t =
  let rec loop n =
    if n >= max_steps then n
    else
      match step t with
      | None -> n
      | Some _ -> loop (n + 1)
  in
  loop 0
