(** A minimal JSON value with a recursive-descent parser and canonical
    printer — just enough for the telemetry round-trips (ledger records,
    Chrome trace documents, MIPS probes) without an external dependency.

    Numbers are [float]s; [%.17g] printing keeps them round-trippable.
    The parser accepts any RFC 8259 document (objects preserve key
    order, duplicate keys keep both) and rejects trailing garbage. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

(** Canonical compact rendering; [parse (to_string v)] returns [v] up
    to float rounding (exact with [%.17g]). *)
val to_string : t -> string

(** First value bound to [key]; [None] when absent or not an object. *)
val member : string -> t -> t option

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option

(** JSON string-escape [s] (without the surrounding quotes). *)
val escape : string -> string
