(* Per-domain span buffers behind one global collector.

   The fast path never locks: a domain finds its buffer through DLS and
   appends to plain mutable fields only it touches. The registry mutex
   guards buffer *registration* only (once per domain per collector),
   and the single shared atomic hands out span ids, which keeps ids
   unique across domains without coordinating anything else. *)

type span = {
  id : int;
  parent : int;
  name : string;
  domain : int;
  seq : int;
  start_ns : int64;
  mutable stop_ns : int64;
  mutable attrs : (string * string) list;
}

type buffer = {
  dom : int;
  owner : int;  (* collector generation this buffer belongs to *)
  mutable closed : span list;  (* reverse completion order *)
  mutable stack : span list;  (* open spans, innermost first *)
  mutable next_seq : int;
  counts : (string, int ref) Hashtbl.t;
}

type collector = {
  gen : int;
  origin_ns : int64;
  next_id : int Atomic.t;
  reg_mu : Mutex.t;
  mutable buffers : buffer list;
}

type result = {
  origin_ns : int64;
  spans : span list;
  counters : (string * int) list;
}

let now_ns () = Monotonic_clock.now ()

let current : collector option Atomic.t = Atomic.make None
let generation = Atomic.make 0

(* DLS slot: the calling domain's buffer for some collector generation;
   revalidated against the current collector on every use. *)
let slot : buffer option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let buffer_of (c : collector) : buffer =
  let r = Domain.DLS.get slot in
  match !r with
  | Some b when b.owner = c.gen -> b
  | _ ->
    let b =
      {
        dom = (Domain.self () :> int);
        owner = c.gen;
        closed = [];
        stack = [];
        next_seq = 0;
        counts = Hashtbl.create 8;
      }
    in
    Mutex.lock c.reg_mu;
    c.buffers <- b :: c.buffers;
    Mutex.unlock c.reg_mu;
    r := Some b;
    b

let start () =
  let gen = Atomic.fetch_and_add generation 1 in
  Atomic.set current
    (Some
       {
         gen;
         origin_ns = now_ns ();
         next_id = Atomic.make 0;
         reg_mu = Mutex.create ();
         buffers = [];
       })

let active () = Atomic.get current <> None

let enter ?(attrs = []) name =
  match Atomic.get current with
  | None -> ()
  | Some c ->
    let b = buffer_of c in
    let parent = match b.stack with [] -> -1 | s :: _ -> s.id in
    let seq = b.next_seq in
    b.next_seq <- seq + 1;
    let t = now_ns () in
    b.stack <-
      {
        id = Atomic.fetch_and_add c.next_id 1;
        parent;
        name;
        domain = b.dom;
        seq;
        start_ns = t;
        stop_ns = t;
        attrs;
      }
      :: b.stack

let close_span b (s : span) =
  let t = now_ns () in
  s.stop_ns <- (if Int64.compare t s.start_ns > 0 then t else s.start_ns);
  b.closed <- s :: b.closed

let exit ?(attrs = []) () =
  match Atomic.get current with
  | None -> ()
  | Some c -> (
    let b = buffer_of c in
    match b.stack with
    | [] -> () (* unbalanced exit: tolerated, never fatal mid-campaign *)
    | s :: rest ->
      b.stack <- rest;
      if attrs <> [] then s.attrs <- s.attrs @ attrs;
      close_span b s)

let with_span ?attrs name f =
  enter ?attrs name;
  Fun.protect ~finally:(fun () -> exit ()) f

let count ?(by = 1) name =
  match Atomic.get current with
  | None -> ()
  | Some c -> (
    let b = buffer_of c in
    match Hashtbl.find_opt b.counts name with
    | Some r -> r := !r + by
    | None -> Hashtbl.replace b.counts name (ref by))

let drain () =
  match Atomic.get current with
  | None -> None
  | Some c ->
    Atomic.set current None;
    Mutex.lock c.reg_mu;
    let buffers = c.buffers in
    Mutex.unlock c.reg_mu;
    (* The calling domain may still hold open spans (e.g. a campaign
       span drained from inside itself): force-close them so the trace
       is complete. Worker domains have joined, so their stacks are
       empty; any that are not would be open spans of a leaked domain
       and are dropped with its stack. *)
    let self = (Domain.self () :> int) in
    List.iter
      (fun b ->
        if b.dom = self then begin
          List.iter (close_span b) b.stack;
          b.stack <- []
        end)
      buffers;
    let spans =
      List.concat_map (fun b -> b.closed) buffers
      |> List.sort (fun a b ->
             match compare a.domain b.domain with
             | 0 -> compare a.seq b.seq
             | n -> n)
    in
    let totals = Hashtbl.create 16 in
    List.iter
      (fun b ->
        Hashtbl.iter
          (fun k r ->
            match Hashtbl.find_opt totals k with
            | Some t -> t := !t + !r
            | None -> Hashtbl.replace totals k (ref !r))
          b.counts)
      buffers;
    let counters =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) totals []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    Some { origin_ns = c.origin_ns; spans; counters }
