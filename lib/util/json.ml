(* Hand-rolled JSON: the repo has no JSON dependency by design
   (DESIGN.md §6), and the telemetry layer needs to *read back* what it
   writes — ledger records, trace documents, MIPS probes — not just
   print it. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

type state = { s : string; mutable pos : int }

let fail st msg = raise (Error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st ch =
  match peek st with
  | Some c when c = ch -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" ch)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.s then fail st "short \\u escape";
          let hex = String.sub st.s st.pos 4 in
          st.pos <- st.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail st "bad \\u escape"
          in
          (* Codepoints are re-encoded as UTF-8; surrogate pairs are
             left as two replacement sequences (the telemetry layer
             never emits them). *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail st "unknown escape"));
      go ()
    | Some c ->
      advance st;
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elems (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      Arr (elems [])
    end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos < String.length s then
      Result.Error
        (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Error msg -> Result.Error msg

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec to_string = function
  | Null -> "null"
  | Bool true -> "true"
  | Bool false -> "false"
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr vs -> "[" ^ String.concat "," (List.map to_string vs) ^ "]"
  | Obj kvs ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) kvs)
    ^ "}"

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr vs -> Some vs | _ -> None
