(** Campaign span tracing: per-domain, lock-free collection of
    enter/exit spans and named counters.

    The collector observes the {e host} side of a campaign — pool
    scheduling, per-pair wall clock, sampling-phase geometry, memo
    traffic — never the simulated machine, so enabling it cannot
    perturb simulation output (the test suite pins [Stats.equal] and
    1-vs-N byte identity with tracing on).

    Concurrency discipline: each domain appends to its own buffer
    (discovered through domain-local storage; registration of a fresh
    buffer is the only mutex-guarded operation, once per domain), and
    span ids come from one atomic counter. Nothing is shared on the
    hot path, so workers never contend. {!drain} must be called after
    every worker domain has joined; it merges the per-domain buffers
    in (domain id, per-domain sequence) order, so the merged span list
    is deterministic given the set of recorded spans.

    Timestamps are monotonic nanoseconds ([CLOCK_MONOTONIC] via the
    bechamel stub); a span's stop is clamped to be >= its start. When
    no collector is installed every operation is one atomic load. *)

type span = {
  id : int;  (** unique across domains *)
  parent : int;  (** enclosing span on the same domain; [-1] = root *)
  name : string;
  domain : int;  (** the recording domain's [Domain.self] id *)
  seq : int;  (** per-domain sequence number: merge order *)
  start_ns : int64;
  mutable stop_ns : int64;
  mutable attrs : (string * string) list;
}

type result = {
  origin_ns : int64;  (** collector installation time; render ts relative *)
  spans : span list;  (** closed spans, (domain, seq)-sorted *)
  counters : (string * int) list;  (** per-domain counts summed, name-sorted *)
}

(** Install a fresh global collector (replacing any active one). *)
val start : unit -> unit

val active : unit -> bool

(** Open a span on the calling domain; its parent is the domain's
    innermost open span. No-op without a collector. *)
val enter : ?attrs:(string * string) list -> string -> unit

(** Close the calling domain's innermost open span, appending [attrs];
    no-op without a collector or with no open span. *)
val exit : ?attrs:(string * string) list -> unit -> unit

(** [with_span name f]: {!enter}, run [f], {!exit} (also on raise). *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Add [by] (default 1) to the domain-local counter [name]. *)
val count : ?by:int -> string -> unit

(** Uninstall the collector and merge its buffers. Spans still open on
    the calling domain are force-closed at drain time; open spans of
    other domains (none, once workers have joined) are dropped.
    [None] when no collector was active. *)
val drain : unit -> result option

(** Monotonic nanoseconds (the span clock). *)
val now_ns : unit -> int64
