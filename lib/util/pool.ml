(* Work-stealing domain pool.

   Tasks sit in a shared array and a single atomic cursor hands out the
   next unclaimed index; every worker (the spawned domains plus the
   calling one) loops on the cursor until the arena is empty. That is the
   degenerate-but-effective form of work stealing for a flat task bag: no
   per-worker deques to rebalance, yet a worker that drew a cheap task
   immediately steals the next one, so load balances to within one task.

   Domains are spawned per operation and joined before it returns. A pool
   value is therefore just a size: there is no teardown to forget, and an
   exception inside a task cannot leak a domain — we always join, then
   re-raise the first exception observed (with its backtrace). *)

type t = { domains : int }

let create ?domains () =
  let domains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg "Pool.create: domains must be >= 1";
      d
    | None -> Domain.recommended_domain_count ()
  in
  { domains }

let domains t = t.domains

(* First exception wins; later ones are dropped (they are almost always
   the same root cause hit by several workers). *)
type error = { exn : exn; bt : Printexc.raw_backtrace }

let map_array t ~f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let error = Atomic.make None in
    (* Telemetry (Spanlog) is host-side observation only: when no
       collector is installed every call below is one atomic load, and
       with one installed each domain writes its own buffer — the task
       loop stays lock-free either way. [caller] distinguishes a claim
       by the calling domain from a steal by a helper. *)
    let caller = (Domain.self () :> int) in
    Spanlog.count ~by:n "pool.enqueued";
    let worker () =
      Spanlog.enter "pool.worker"
        ~attrs:[ ("tasks", string_of_int n) ];
      let executed = ref 0 in
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add cursor 1 in
        if i >= n || Atomic.get error <> None then continue := false
        else begin
          if (Domain.self () :> int) = caller then
            Spanlog.count "pool.claim"
          else Spanlog.count "pool.steal";
          incr executed;
          Spanlog.enter "pool.task" ~attrs:[ ("index", string_of_int i) ];
          (match f arr.(i) with
          | v -> results.(i) <- Some v
          | exception exn ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set error None (Some { exn; bt })));
          Spanlog.exit ()
        end
      done;
      Spanlog.exit ~attrs:[ ("executed", string_of_int !executed) ] ()
    in
    let helpers =
      Array.init (min t.domains n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join helpers;
    match Atomic.get error with
    | Some { exn; bt } -> Printexc.raise_with_backtrace exn bt
    | None ->
      Array.map
        (function
          | Some v -> v
          | None -> assert false (* no error => every slot was filled *))
        results
  end

let map_list t ~f l = Array.to_list (map_array t ~f (Array.of_list l))

let run t tasks =
  ignore (map_array t ~f:(fun task -> task ()) (Array.of_list tasks))
