(* Generic monotone dataflow over Sdiq_cfg.Cfg: a worklist seeded in
   reverse post-order (or its reverse, for backward analyses) so that on
   reducible graphs most facts settle in one or two sweeps. Internally
   [input]/[output] are direction-relative; they are swapped back into
   program-order [entry]/[exit] when building the solution. *)

module Cfg = Sdiq_cfg.Cfg

type direction =
  | Forward
  | Backward

exception Diverged of string * int

type 'fact spec = {
  name : string;
  direction : direction;
  boundary : 'fact;
  init : 'fact;
  join : 'fact -> 'fact -> 'fact;
  equal : 'fact -> 'fact -> bool;
  transfer : int -> 'fact -> 'fact;
}

type 'fact solution = {
  entry : 'fact array;
  exit : 'fact array;
  steps : int;
}

let run ?max_steps (cfg : Cfg.t) (spec : 'fact spec) : 'fact solution =
  let nb = Cfg.num_blocks cfg in
  let limit =
    match max_steps with Some m -> m | None -> 256 * (nb + 1)
  in
  let rpo = Cfg.reverse_postorder cfg in
  let order =
    match spec.direction with Forward -> rpo | Backward -> List.rev rpo
  in
  let sources b =
    match spec.direction with
    | Forward -> Cfg.preds cfg b
    | Backward -> Cfg.succs cfg b
  in
  let sinks b =
    match spec.direction with
    | Forward -> Cfg.succs cfg b
    | Backward -> Cfg.preds cfg b
  in
  (* The boundary fact enters at the entry block (forward) or at blocks
     with no successors (backward). A block can be both a boundary and
     have incoming edges (a branch back to the procedure's first
     instruction), so the boundary is joined in rather than substituted. *)
  let is_boundary b =
    match spec.direction with
    | Forward -> b = 0
    | Backward -> Cfg.succs cfg b = []
  in
  let input = Array.make nb spec.init in
  let output = Array.make nb spec.init in
  let on_list = Array.make nb true in
  let q = Queue.create () in
  List.iter (fun b -> Queue.add b q) order;
  let steps = ref 0 in
  while not (Queue.is_empty q) do
    if !steps >= limit then raise (Diverged (spec.name, !steps));
    incr steps;
    let b = Queue.pop q in
    on_list.(b) <- false;
    let in_fact =
      let base = if is_boundary b then spec.boundary else spec.init in
      List.fold_left (fun acc s -> spec.join acc output.(s)) base (sources b)
    in
    input.(b) <- in_fact;
    let out = spec.transfer b in_fact in
    if not (spec.equal out output.(b)) then begin
      output.(b) <- out;
      List.iter
        (fun s ->
          if not on_list.(s) then begin
            on_list.(s) <- true;
            Queue.add s q
          end)
        (sinks b)
    end
  done;
  match spec.direction with
  | Forward -> { entry = input; exit = output; steps = !steps }
  | Backward -> { entry = output; exit = input; steps = !steps }
