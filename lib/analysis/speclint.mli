(** Wrong-path-aware delivery lints over a delivered binary.

    The frontend fetches past control transfers until redirected and
    keeps executing down mispredicted paths until the squash, so
    annotation anchors ([Iqset] instructions and instruction tags)
    interact with machinery the architectural semantics never sees.
    Four checks:

    - [wp-only-anchor] (warning): an anchor no architectural path
      reaches, sitting in the fetch shadow of reachable code — it
      executes {e only} on wrong paths, perturbing the window (and
      paying its fetch/dispatch cost) for a region that does not exist.
    - [dead-anchor] (info): an anchor neither reachable nor
      wp-fetchable — inert delivery metadata.
    - [shadowed-entry] (warning): a delivery-map entry that can never
      govern a dispatch: an [Iqset] immediately followed by another
      anchor, or an [Iqset] that itself carries a tag. Its window is
      superseded before any instruction dispatches under it, while its
      fetch cost — right path or wrong — remains.
    - [squash-stale-window] (info): a conditional edge landing on a
      non-anchor address whose region's delivery entry grants more than
      the window carried across the edge. After a mispredict on that
      branch, the squash restores the branch-time window and resumes at
      the target: code audited under the larger window then runs under
      the stale narrower one until the next anchor. Informational —
      loop-interior joins legitimately carry the loop window — but the
      asymmetry is worth seeing. *)

val check : Sdiq_isa.Prog.t -> Finding.t list
