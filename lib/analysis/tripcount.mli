(** Path-sensitive loop trip-count bounds.

    For each natural loop, tries to prove a static upper bound on the
    number of header executions per loop entry, from the classic
    counted-loop shape: a single counter register stepped by a constant
    exactly once per iteration (checked on {e every} enumerated
    header-to-latch path, via {!Sdiq_core.Loop_need.loop_paths}) and
    latch branches that test the counter against zero or against a
    loop-invariant register whose range the {!Interval} analysis
    bounds. Initial counter ranges come from the interval environment
    at the loop preheader, interprocedurally refined when [summaries]
    is supplied.

    Bounds are deliberately conservative (ceilings plus a margin
    iteration): they are consumed as [min need (trips * path_len)]
    refinements by {!Soundness} and {!Tighten}, where a slight
    overestimate costs a little precision and an underestimate would be
    unsound. A loop with no provable bound is simply absent from the
    table. *)

(** Trip bounds of one procedure: loop header {e block id} to the
    maximum header executions per loop entry. Truncated path
    enumerations ([max_paths] reached) yield no bound — an incomplete
    path universe cannot prove the counter steps every iteration. *)
val of_proc :
  ?summaries:(int, Interval.proc_summary) Hashtbl.t ->
  ?max_paths:int ->
  Sdiq_isa.Prog.t ->
  Sdiq_isa.Prog.proc ->
  (int, int) Hashtbl.t
