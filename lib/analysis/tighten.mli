(** Annotation tightening: re-derive every region's minimal sound
    window and emit the tightened binary.

    Where {!Sdiq_core.Procedure.analyze_program} folds a loop's
    flattened whole-body schedule into its requirement (an
    over-approximation the audit never demanded) and the "Improved"
    options widen interprocedurally, this pass emits exactly the
    {!Soundness} obligations — refined by {!Tripcount} bounds — so the
    tightened binary re-audits slack-free {e by construction}: the
    optimizer and the auditor share one bound derivation.

    Delivery uses the existing insertion machinery
    ({!Sdiq_isa.Rewrite}); with [Tagged] delivery the instruction
    stream is unchanged, so committed traces are byte-identical to the
    baseline binary's. *)

(** The per-procedure trip-count tables for a program, computed once
    (interval summaries shared) and memoised per procedure. *)
val tripcounts_of :
  Sdiq_isa.Prog.t -> Sdiq_isa.Prog.proc -> (int, int) Hashtbl.t

(** The tightened annotation list: one annotation per {!Soundness}
    obligation, at its clamped refined bound, loop spans preserved for
    back-edge bypass. *)
val annotations :
  ?opts:Sdiq_core.Options.t ->
  Sdiq_isa.Prog.t ->
  Sdiq_core.Procedure.annotation list

(** Analyse, tighten and deliver; the tightened analogue of
    {!Sdiq_core.Annotate.apply}. *)
val apply :
  ?opts:Sdiq_core.Options.t ->
  Sdiq_core.Annotate.mode ->
  Sdiq_isa.Prog.t ->
  Sdiq_isa.Prog.t * Sdiq_core.Procedure.annotation list

(** {!Soundness.audit} under the same trip counts the tightener used;
    clean (and slack-free) on this pass's own output. *)
val audit :
  ?opts:Sdiq_core.Options.t ->
  Sdiq_isa.Prog.t ->
  Sdiq_core.Procedure.annotation list ->
  Finding.t list

(** [(anchors, narrowed, reduction)]: total anchors emitted, how many
    are strictly narrower than the "Improved" analysis would grant,
    and the summed window shrink — the static size of the win. *)
val narrowing : Sdiq_isa.Prog.t -> int * int * int
