(** Backward liveness over a procedure's CFG, shared by the dead-write
    lint and the register-pressure pass.

    Interprocedural effects come from {!Summary} when a table is
    supplied: a [Call] reads the callee's transitive uses, and whatever
    the callee must-defines stops being the caller's obligation. Without
    summaries the opaque assumption applies (a call reads everything).
    Procedure exits assume every register live (the caller may read
    anything left behind) unless [exit_boundary] narrows it. All the
    defaults only ever enlarge live sets, so a value reported dead is
    dead on every path under any calling convention. The one exact case:
    nothing is live before a [Halt] — execution stops there. *)

type t = {
  cfg : Sdiq_cfg.Cfg.t;
  live_in : Regset.t array;   (** live at block entry, by block id *)
  live_out : Regset.t array;  (** live at block exit, by block id *)
  call_effect : int -> Summary.t;
      (** the call model the fixpoint ran under, by callee entry *)
}

(** [exit_boundary] is the fact at blocks with no successors (default
    {!Regset.full}); [summaries] refines calls (default: opaque). *)
val compute :
  ?exit_boundary:Regset.t ->
  ?summaries:(int, Summary.t) Hashtbl.t ->
  Sdiq_cfg.Cfg.t ->
  t

(** One instruction backwards: from the fact live after it to the fact
    live before it. *)
val step_instr :
  ?call_effect:(int -> Summary.t) -> Sdiq_isa.Instr.t -> Regset.t -> Regset.t

(** Fold over a block's instructions in reverse address order, handing
    each instruction the facts live before and after it, under the same
    call model the fixpoint used. *)
val fold_block :
  t ->
  int ->
  init:'a ->
  f:
    ('a ->
    addr:int ->
    Sdiq_isa.Instr.t ->
    live_before:Regset.t ->
    live_after:Regset.t ->
    'a) ->
  'a
