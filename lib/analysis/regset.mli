(** Compact sets of architectural registers, used as dataflow facts.

    One bit per register, integer and floating-point files kept apart so
    per-file cardinalities (the register-pressure pass) are O(popcount).
    The hardwired zero register is representable but the passes never add
    it: {!Sdiq_isa.Instr.sources} and [dest] already exclude it. *)

type t

val empty : t

(** Every integer and floating-point register. *)
val full : t

val add : Sdiq_isa.Reg.t -> t -> t
val remove : Sdiq_isa.Reg.t -> t -> t
val mem : Sdiq_isa.Reg.t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val is_empty : t -> bool

(** Number of integer registers in the set. *)
val int_card : t -> int

(** Number of floating-point registers in the set. *)
val fp_card : t -> int

val cardinal : t -> int
val elements : t -> Sdiq_isa.Reg.t list
val of_list : Sdiq_isa.Reg.t list -> t
val pp : Format.formatter -> t -> unit
