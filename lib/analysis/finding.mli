(** Structured findings produced by the static-analysis passes.

    [Error] findings break the paper's contract (an annotation below the
    statically provable IQ need, a branch bypassing an inserted NOOP) and
    make [bin/lint.exe] exit non-zero; [Warning] findings are suspicious
    but not contract-breaking; [Info] findings record proved facts and
    statistics. *)

type severity =
  | Error
  | Warning
  | Info

type t = {
  severity : severity;
  pass : string;      (** pass identifier, e.g. ["soundness"] *)
  proc : string;      (** procedure name; [""] for whole-program findings *)
  addr : int option;  (** instruction address the finding anchors to *)
  blocks : int list;  (** block-id path or site; [[]] when not applicable *)
  message : string;
}

val make :
  ?proc:string ->
  ?addr:int ->
  ?blocks:int list ->
  severity ->
  pass:string ->
  string ->
  t

val severity_name : severity -> string

(** Errors first, then warnings, then infos; ties by (proc, addr). *)
val compare : t -> t -> int

val errors : t list -> int
val warnings : t list -> int
val infos : t list -> int

(** No error-severity findings. *)
val is_clean : t list -> bool

val pp : Format.formatter -> t -> unit

(** One finding as a flat JSON object (machine-readable lint output);
    [extra] key/value pairs are spliced in first (e.g. the benchmark). *)
val to_json : ?extra:(string * string) list -> t -> string

(** A JSON array of findings, one per line. *)
val list_to_json : ?extra:(string * string) list -> t list -> string

(** One line: "E errors, W warnings, I infos". *)
val pp_summary : Format.formatter -> t list -> unit
