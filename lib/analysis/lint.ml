(* Workload lints. The program lints run the dataflow engine; the
   delivery lints audit the emitted binary against the annotation list,
   reconstructing the NOOP-insertion address map from the artifact
   itself so a rewriter bug cannot hide behind its own arithmetic. *)

open Sdiq_isa
module Cfg = Sdiq_cfg.Cfg
module Annotate = Sdiq_core.Annotate
module Procedure = Sdiq_core.Procedure

(* --- reachability -------------------------------------------------------- *)

let reachable (cfg : Cfg.t) : bool array =
  let seen = Array.make (Cfg.num_blocks cfg) false in
  let rec dfs b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter dfs (Cfg.succs cfg b)
    end
  in
  dfs 0;
  seen

let unreachable (proc : Prog.proc) (cfg : Cfg.t) : Finding.t list =
  let seen = reachable cfg in
  let findings = ref [] in
  Array.iteri
    (fun b ok ->
      if not ok then
        let blk = cfg.Cfg.blocks.(b) in
        findings :=
          Finding.make ~proc:proc.Prog.name ~addr:blk.Cfg.first ~blocks:[ b ]
            Finding.Warning ~pass:"unreachable"
            (Fmt.str "block B%d (addresses %d..%d) is unreachable" b
               blk.Cfg.first blk.Cfg.last)
          :: !findings)
    seen;
  List.rev !findings

(* --- use before definition ----------------------------------------------- *)

(* Forward must-defined analysis: intersection join, full set as the
   optimistic top. The entry procedure starts with nothing defined;
   other procedures are entered from call sites that may have defined
   anything, so they start full (their callers' obligations are checked
   in the callers, against the callee's summary [uses]). A Call defines
   the callee's must-defs — or, without summaries, every register, which
   can only suppress reports, never invent them. Reads of the hardwired
   zero register are excluded at the [Instr.sources] level. *)

let defined_after ~call_effect (i : Instr.t) defined =
  if i.Instr.op = Opcode.Call then
    Regset.union defined (call_effect i.Instr.target).Summary.defs
  else
    match Instr.dest i with
    | Some r -> Regset.add r defined
    | None -> defined

let use_before_def ?summaries (prog : Prog.t) (proc : Prog.proc)
    (cfg : Cfg.t) : Finding.t list =
  let call_effect =
    match summaries with
    | None -> fun _ -> { Summary.uses = Regset.empty; defs = Regset.full }
    | Some table -> Summary.at table
  in
  let entry_defined =
    if proc.Prog.entry = prog.Prog.entry then Regset.empty else Regset.full
  in
  let transfer b defined =
    List.fold_left
      (fun acc i -> defined_after ~call_effect i acc)
      defined
      (Cfg.instrs cfg cfg.Cfg.blocks.(b))
  in
  let sol =
    Dataflow.run cfg
      {
        Dataflow.name = "must-defined";
        direction = Dataflow.Forward;
        boundary = entry_defined;
        init = Regset.full;
        join = Regset.inter;
        equal = Regset.equal;
        transfer;
      }
  in
  let seen = reachable cfg in
  let findings = ref [] in
  let flag ~pass ~addr r =
    findings :=
      Finding.make ~proc:proc.Prog.name ~addr Finding.Warning ~pass
        (Fmt.str "%s may be read before any definition reaches address %d"
           (Reg.to_string r) addr)
      :: !findings
  in
  Array.iter
    (fun (blk : Cfg.block) ->
      if seen.(blk.Cfg.id) then
        ignore
          (List.fold_left
             (fun defined addr ->
               let i = Prog.instr prog addr in
               let base =
                 if Instr.is_mem i then i.Instr.src1 else None
               in
               List.iter
                 (fun r ->
                   if not (Regset.mem r defined) then
                     if base = Some r then flag ~pass:"undef-base" ~addr r
                     else flag ~pass:"use-before-def" ~addr r)
                 (Instr.sources i);
               (* A call reads the callee's transitive uses: each must be
                  defined here or the callee reads garbage. *)
               if i.Instr.op = Opcode.Call then
                 List.iter
                   (fun r ->
                     if not (Regset.mem r defined) then
                       findings :=
                         Finding.make ~proc:proc.Prog.name ~addr
                           Finding.Warning ~pass:"use-before-def"
                           (Fmt.str
                              "callee at %d may read %s before the caller \
                               defines it"
                              i.Instr.target (Reg.to_string r))
                         :: !findings)
                   (Regset.elements (call_effect i.Instr.target).Summary.uses);
               defined_after ~call_effect i defined)
             sol.Dataflow.entry.(blk.Cfg.id)
             (Cfg.block_addrs blk)))
    cfg.Cfg.blocks;
  List.rev !findings

(* --- dead writes --------------------------------------------------------- *)

let dead_writes ?summaries (proc : Prog.proc) (cfg : Cfg.t) :
    Finding.t list =
  let live = Liveness.compute ?summaries cfg in
  let seen = reachable cfg in
  let findings = ref [] in
  for b = 0 to Cfg.num_blocks cfg - 1 do
    if seen.(b) then
      Liveness.fold_block live b ~init:()
        ~f:(fun () ~addr i ~live_before:_ ~live_after ->
          match Instr.dest i with
          | Some r when not (Regset.mem r live_after) ->
            findings :=
              Finding.make ~proc:proc.Prog.name ~addr ~blocks:[ b ]
                Finding.Info ~pass:"dead-write"
                (Fmt.str "%s written by '%s' is never read on any path"
                   (Reg.to_string r) (Instr.to_string i))
              :: !findings
          | Some _ | None -> ())
  done;
  List.sort Finding.compare !findings

(* --- whole-program lints ------------------------------------------------- *)

let check_program ?summaries (prog : Prog.t) : Finding.t list =
  let summaries =
    match summaries with Some s -> s | None -> Summary.of_program prog
  in
  List.concat_map
    (fun (p : Prog.proc) ->
      if p.Prog.is_library || p.Prog.len = 0 then []
      else
        let cfg = Cfg.build prog p in
        unreachable p cfg
        @ use_before_def ~summaries prog p cfg
        @ dead_writes ~summaries p cfg)
    prog.Prog.procs

(* --- delivery integrity -------------------------------------------------- *)

(* Reconstruct the NOOP-insertion address map from the emitted binary:
   the k-th non-Iqset instruction of the annotated program is the
   original instruction k, and an Iqset immediately before it is its
   region marker. *)
let reconstruct_map (original : Prog.t) (annotated : Prog.t) =
  let n = Prog.length original in
  let new_of_orig = Array.make n (-1) in
  let iqset_before = Array.make n None in
  let k = ref 0 in
  let pending = ref None in
  Array.iteri
    (fun j (i : Instr.t) ->
      if i.Instr.op = Opcode.Iqset then pending := Some (j, i.Instr.imm)
      else begin
        if !k < n then begin
          new_of_orig.(!k) <- j;
          iqset_before.(!k) <- !pending
        end;
        pending := None;
        incr k
      end)
    annotated.Prog.code;
  if !k <> n then None else Some (new_of_orig, iqset_before)

let noop_address_map ~original ~annotated = reconstruct_map original annotated

let delivery ~(mode : Annotate.mode) ~(original : Prog.t)
    ~(annotated : Prog.t) (annotations : Procedure.annotation list) :
    Finding.t list =
  let findings = ref [] in
  let error ?proc ?addr ?blocks msg =
    findings :=
      Finding.make ?proc ?addr ?blocks Finding.Error ~pass:"delivery"
        msg
      :: !findings
  in
  let ann_at addr =
    List.find_opt
      (fun (a : Procedure.annotation) -> a.Procedure.addr = addr)
      annotations
  in
  (match mode with
  | Annotate.Tagged ->
    if Prog.length annotated <> Prog.length original then
      error "tag delivery changed the program length"
    else begin
      let expected = Annotate.annotation_map annotations in
      Array.iteri
        (fun a (i : Instr.t) ->
          match (expected a, i.Instr.tag) with
          | Some v, Some t when v = t -> ()
          | Some v, Some t ->
            error ~addr:a
              (Fmt.str "tag %d emitted where the analysis computed %d" t v)
          | Some v, None ->
            error ~addr:a (Fmt.str "annotation %d was not delivered as a tag" v)
          | None, Some t ->
            error ~addr:a (Fmt.str "stray tag %d with no annotation" t)
          | None, None -> ())
        annotated.Prog.code
    end
  | Annotate.Noop -> (
    match reconstruct_map original annotated with
    | None ->
      error
        "annotated binary does not contain the original instruction \
         sequence"
    | Some (new_of_orig, iqset_before) ->
      (* Every annotation materialised, with the right value. *)
      List.iter
        (fun (a : Procedure.annotation) ->
          match iqset_before.(a.Procedure.addr) with
          | Some (_, v) when v = a.Procedure.value -> ()
          | Some (_, v) ->
            error ~addr:a.Procedure.addr
              (Fmt.str "Iqset carries %d where the analysis computed %d" v
                 a.Procedure.value)
          | None ->
            error ~addr:a.Procedure.addr
              (Fmt.str "annotation %d has no Iqset in the emitted binary"
                 a.Procedure.value))
        annotations;
      (* No stray Iqsets. *)
      Array.iteri
        (fun k before ->
          match before with
          | Some (j, v) when ann_at k = None ->
            error ~addr:k
              (Fmt.str "stray Iqset #%d at emitted address %d" v j)
          | Some _ | None -> ())
        iqset_before;
      (* Every control edge lands where the redirect policy demands:
         back edges of an annotated loop bypass the header's Iqset (it
         runs on entry only); every other edge into an annotated region
         must pass through the Iqset, or the region runs under a stale,
         possibly smaller window. *)
      let n = Prog.length original in
      for src = 0 to n - 1 do
        let i = Prog.instr original src in
        let t = i.Instr.target in
        if Instr.is_control i && t >= 0 && t < n then begin
          let emitted =
            (Prog.instr annotated new_of_orig.(src)).Instr.target
          in
          match ann_at t with
          | None ->
            if emitted <> new_of_orig.(t) then
              error ~addr:src
                (Fmt.str
                   "branch %d->%d emitted as ->%d, expected ->%d"
                   src t emitted new_of_orig.(t))
          | Some a ->
            let is_back_edge =
              match a.Procedure.loop_span with
              | Some (lo, hi) -> src >= lo && src <= hi
              | None -> false
            in
            let iqset_addr =
              match iqset_before.(t) with
              | Some (j, _) -> j
              | None -> new_of_orig.(t) (* already reported above *)
            in
            if is_back_edge && emitted <> new_of_orig.(t) then
              error ~addr:src
                (Fmt.str
                   "back edge %d->%d re-executes the loop's Iqset (lands \
                    on %d, expected the header at %d)"
                   src t emitted new_of_orig.(t))
            else if (not is_back_edge) && emitted <> iqset_addr then
              error ~addr:src
                (Fmt.str
                   "branch %d->%d bypasses the region's Iqset (lands on \
                    %d, expected %d): the region would run under a stale \
                    window"
                   src t emitted iqset_addr)
        end
      done;
      (* Entry points must pass through their region's Iqset too. *)
      let entry_target a =
        match iqset_before.(a) with
        | Some (j, _) -> j
        | None -> new_of_orig.(a)
      in
      if annotated.Prog.entry <> entry_target original.Prog.entry then
        error ~addr:original.Prog.entry "program entry bypasses its Iqset";
      List.iter
        (fun (p : Prog.proc) ->
          match
            List.find_opt
              (fun (q : Prog.proc) -> q.Prog.name = p.Prog.name)
              annotated.Prog.procs
          with
          | None -> error ~proc:p.Prog.name "procedure lost by delivery"
          | Some q ->
            if q.Prog.entry <> entry_target p.Prog.entry then
              error ~proc:p.Prog.name ~addr:p.Prog.entry
                "procedure entry bypasses its Iqset")
        original.Prog.procs));
  List.rev !findings
