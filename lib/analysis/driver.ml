(* Pass orchestration: mirror the harness's annotation pipeline
   (Annotate.apply with the mode's options), then audit both the
   annotation list and the emitted binary. *)

module Annotate = Sdiq_core.Annotate
module Options = Sdiq_core.Options

type mode = {
  name : string;
  delivery : Annotate.mode;
  opts : Options.t;
}

let modes =
  [
    { name = "noop"; delivery = Annotate.Noop; opts = Options.default };
    { name = "extension"; delivery = Annotate.Tagged; opts = Options.default };
    { name = "improved"; delivery = Annotate.Tagged; opts = Options.improved };
  ]

let mode_named name = List.find_opt (fun m -> m.name = name) modes

let tag_pass mode fs =
  List.map
    (fun (f : Finding.t) -> { f with Finding.pass = mode.name ^ "/" ^ f.Finding.pass })
    fs

let audit_mode mode (prog : Sdiq_isa.Prog.t) : Finding.t list =
  let annotated, annotations =
    Annotate.apply ~opts:mode.opts mode.delivery prog
  in
  tag_pass mode
    (Soundness.audit ~opts:mode.opts prog annotations
    @ Lint.delivery ~mode:mode.delivery ~original:prog ~annotated annotations)

let lint_program ?rf_size (prog : Sdiq_isa.Prog.t) : Finding.t list =
  let summaries = Summary.of_program prog in
  let _, pressure = Pressure.audit ?rf_size ~summaries prog in
  Lint.check_program ~summaries prog @ pressure

let audit_all ?rf_size (prog : Sdiq_isa.Prog.t) : Finding.t list =
  List.sort Finding.compare
    (List.concat_map (fun m -> audit_mode m prog) modes
    @ lint_program ?rf_size prog)
