(* Pass orchestration: mirror the harness's annotation pipeline for
   each configuration (Annotate.apply, or Tighten.apply for the
   tightened mode), then audit the annotation list, the emitted binary
   and its wrong-path anchor hygiene. *)

module Annotate = Sdiq_core.Annotate
module Options = Sdiq_core.Options

type mode = {
  name : string;
  delivery : Annotate.mode;
  opts : Options.t;
  tightened : bool;
}

let modes =
  [
    {
      name = "noop";
      delivery = Annotate.Noop;
      opts = Options.default;
      tightened = false;
    };
    {
      name = "extension";
      delivery = Annotate.Tagged;
      opts = Options.default;
      tightened = false;
    };
    {
      name = "improved";
      delivery = Annotate.Tagged;
      opts = Options.improved;
      tightened = false;
    };
    {
      name = "tightened";
      delivery = Annotate.Tagged;
      opts = Options.default;
      tightened = true;
    };
  ]

let mode_named name = List.find_opt (fun m -> m.name = name) modes

let apply_mode mode prog =
  if mode.tightened then Tighten.apply ~opts:mode.opts mode.delivery prog
  else Annotate.apply ~opts:mode.opts mode.delivery prog

let audit_annotations mode prog annotations =
  if mode.tightened then Tighten.audit ~opts:mode.opts prog annotations
  else Soundness.audit ~opts:mode.opts prog annotations

let tag_pass mode fs =
  List.map
    (fun (f : Finding.t) -> { f with Finding.pass = mode.name ^ "/" ^ f.Finding.pass })
    fs

let audit_mode mode (prog : Sdiq_isa.Prog.t) : Finding.t list =
  let annotated, annotations = apply_mode mode prog in
  tag_pass mode
    (audit_annotations mode prog annotations
    @ Lint.delivery ~mode:mode.delivery ~original:prog ~annotated annotations
    @ Speclint.check annotated)

let lint_program ?rf_size (prog : Sdiq_isa.Prog.t) : Finding.t list =
  let summaries = Summary.of_program prog in
  let _, pressure = Pressure.audit ?rf_size ~summaries prog in
  Lint.check_program ~summaries prog @ pressure

let audit_all ?rf_size (prog : Sdiq_isa.Prog.t) : Finding.t list =
  List.sort Finding.compare
    (List.concat_map (fun m -> audit_mode m prog) modes
    @ lint_program ?rf_size prog)
