(* Annotation tightening.

   The analysis ([Procedure.analyze_program]) and the audit
   ([Soundness.bounds_of_proc]) place annotations at the same anchors
   but do not demand the same values: the analysis folds a loop's
   flattened whole-body schedule into its requirement and (under
   "Improved") widens interprocedurally, while the audit only ever
   requires the per-path CDS bound. This pass closes the gap by
   emitting the audit's own obligations — further refined by proved
   trip counts — as the annotation list, so the tightened binary is
   the minimal binary the auditor accepts, and accepts slack-free. *)

open Sdiq_isa
module Cfg = Sdiq_cfg.Cfg
module Loops = Sdiq_cfg.Loops
module Options = Sdiq_core.Options
module Procedure = Sdiq_core.Procedure
module Annotate = Sdiq_core.Annotate

(* One interval-summary fixpoint per program, one trip-count table per
   procedure; both audit and tightener go through here so they cannot
   disagree on the refinement. *)
let tripcounts_of (prog : Prog.t) =
  let summaries = lazy (Interval.summaries prog) in
  let cache = Hashtbl.create 16 in
  fun (proc : Prog.proc) ->
    match Hashtbl.find_opt cache proc.Prog.entry with
    | Some tbl -> tbl
    | None ->
      let tbl =
        Tripcount.of_proc ~summaries:(Lazy.force summaries) prog proc
      in
      Hashtbl.add cache proc.Prog.entry tbl;
      tbl

(* Loop spans, keyed by the header's first address, so back edges keep
   bypassing an inserted NOOP exactly as [Annotate.redirect_of]
   expects. *)
let spans_of cfg =
  let spans = Hashtbl.create 8 in
  List.iter
    (fun (loop : Loops.t) ->
      let header = cfg.Cfg.blocks.(loop.Loops.header) in
      let span =
        Loops.Iset.fold
          (fun id (lo, hi) ->
            let blk = cfg.Cfg.blocks.(id) in
            (min lo blk.Cfg.first, max hi blk.Cfg.last))
          loop.Loops.body (max_int, min_int)
      in
      Hashtbl.replace spans header.Cfg.first span)
    (Loops.find cfg);
  spans

let annotations ?(opts = Options.default) (prog : Prog.t) :
    Procedure.annotation list =
  let tripcounts = tripcounts_of prog in
  List.concat_map
    (fun (p : Prog.proc) ->
      if p.Prog.is_library || p.Prog.len = 0 then []
      else
        let spans = spans_of (Cfg.build prog p) in
        List.map
          (fun (b : Soundness.bound) ->
            {
              Procedure.addr = b.Soundness.anchor;
              value = b.Soundness.required;
              loop_span = Hashtbl.find_opt spans b.Soundness.anchor;
            })
          (Soundness.bounds_of_proc ~opts ~tripcounts:(tripcounts p) prog p))
    prog.Prog.procs
  |> List.sort (fun (a : Procedure.annotation) b -> compare a.addr b.addr)

let apply ?(opts = Options.default) mode (prog : Prog.t) :
    Prog.t * Procedure.annotation list =
  let anns = annotations ~opts prog in
  let map = Annotate.annotation_map anns in
  let annotated =
    match mode with
    | Annotate.Noop ->
      Rewrite.insert_iqsets ~redirect:(Annotate.redirect_of anns) prog map
    | Annotate.Tagged -> Rewrite.apply_tags prog map
  in
  (annotated, anns)

let audit ?opts (prog : Prog.t) anns : Finding.t list =
  Soundness.audit ?opts ~tripcounts_of:(tripcounts_of prog) prog anns

let narrowing (prog : Prog.t) : int * int * int =
  let tight = annotations prog in
  let improved =
    Annotate.annotation_map
      (Procedure.analyze_program ~opts:Options.improved prog)
  in
  List.fold_left
    (fun (anchors, narrowed, reduction) (a : Procedure.annotation) ->
      match improved a.Procedure.addr with
      | Some v when v > a.Procedure.value ->
        (anchors + 1, narrowed + 1, reduction + (v - a.Procedure.value))
      | _ -> (anchors + 1, narrowed, reduction))
    (0, 0, 0) tight
