(* Interprocedural register-effect summaries: a forward must-defined
   sweep per procedure that records which registers escape as reads
   (uses) and which are certainly written on every returning path
   (defs), iterated round-robin over the program until the call graph —
   cycles included — reaches its fixpoint. *)

open Sdiq_isa
module Cfg = Sdiq_cfg.Cfg

type t = {
  uses : Regset.t;
  defs : Regset.t;
}

let opaque = { uses = Regset.full; defs = Regset.empty }

let at table addr =
  match Hashtbl.find_opt table addr with Some s -> s | None -> opaque

(* One pass over one procedure under the current summary table. *)
let summarize_proc (prog : Prog.t) (table : (int, t) Hashtbl.t)
    (proc : Prog.proc) : t =
  let cfg = Cfg.build prog proc in
  let callee (i : Instr.t) =
    if i.Instr.op = Opcode.Call then at table i.Instr.target else opaque
  in
  let uses = ref Regset.empty in
  let step defined (i : Instr.t) =
    List.iter
      (fun r ->
        if not (Regset.mem r defined) then uses := Regset.add r !uses)
      (Instr.sources i);
    if i.Instr.op = Opcode.Call then begin
      let c = callee i in
      uses := Regset.union !uses (Regset.diff c.uses defined);
      Regset.union defined c.defs
    end
    else
      match Instr.dest i with
      | Some r -> Regset.add r defined
      | None -> defined
  in
  let transfer b defined =
    List.fold_left step defined (Cfg.instrs cfg cfg.Cfg.blocks.(b))
  in
  let sol =
    Dataflow.run cfg
      {
        Dataflow.name = "summary/must-defined";
        direction = Dataflow.Forward;
        boundary = Regset.empty;
        init = Regset.full;
        join = Regset.inter;
        equal = Regset.equal;
        transfer;
      }
  in
  (* [transfer] mutates [uses]; make one more deterministic sweep from
     the fixpoint facts so every block contributes its reads. *)
  uses := Regset.empty;
  Array.iteri
    (fun b _ -> ignore (transfer b sol.Dataflow.entry.(b)))
    cfg.Cfg.blocks;
  (* Must-defs at return: intersection over Ret-terminated blocks. A
     procedure that never returns constrains its caller not at all. *)
  let defs = ref Regset.full in
  let returns = ref false in
  Array.iter
    (fun (blk : Cfg.block) ->
      if (Prog.instr prog blk.Cfg.last).Instr.op = Opcode.Ret then begin
        returns := true;
        defs := Regset.inter !defs sol.Dataflow.exit.(blk.Cfg.id)
      end)
    cfg.Cfg.blocks;
  { uses = !uses; defs = (if !returns then !defs else Regset.full) }

let of_program (prog : Prog.t) : (int, t) Hashtbl.t =
  let table = Hashtbl.create 16 in
  let procs =
    List.filter (fun (p : Prog.proc) -> p.Prog.len > 0) prog.Prog.procs
  in
  (* Optimistic start; uses grows and defs shrinks monotonically. *)
  List.iter
    (fun (p : Prog.proc) ->
      Hashtbl.replace table p.Prog.entry
        { uses = Regset.empty; defs = Regset.full })
    procs;
  (* Safety net only: each productive round moves at least one bit and
     there are 2 * Reg.count bits per procedure, so the fixpoint always
     lands first. *)
  let max_rounds = (2 * Reg.count * List.length procs) + 2 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds do
    changed := false;
    incr rounds;
    List.iter
      (fun (p : Prog.proc) ->
        let fresh = summarize_proc prog table p in
        let cur = at table p.Prog.entry in
        if
          not
            (Regset.equal fresh.uses cur.uses
            && Regset.equal fresh.defs cur.defs)
        then begin
          Hashtbl.replace table p.Prog.entry fresh;
          changed := true
        end)
      procs
  done;
  table
