(** Annotation-soundness audit: the paper's critical-path guarantee as a
    statically checked theorem.

    Sections 4.2–4.3 promise that the [max_new_range] annotated on each
    region never delays the critical path. This pass re-derives, for
    every region anchor the analysis must annotate, a DDG-based lower
    bound on the IQ entries the machine needs — per basic block for DAG
    regions, and along {e every} enumerated acyclic header-to-header path
    for loop regions — and verifies the emitted annotation is at least
    that bound. A violation reports the anchor, the violating path and
    the (negative) slack.

    Bounds are computed with [slack = 0] and the interprocedural
    refinement off, whatever the options the annotations were produced
    with: both knobs may only widen annotations, so the base analysis is
    the true lower bound all three modes must dominate. Loop paths are
    enumerated with the same bound ({!Sdiq_core.Loop_need.loop_paths}
    default) the analysis itself uses, so audit and analysis agree on
    the path universe. *)

(** One obligation: the annotation at [anchor] must be ≥ [required]. *)
type bound = {
  anchor : int;        (** address the annotation must appear at *)
  kind : string;
      (** ["dag-block"], ["loop-header"], ["loop-reentry"] or
          ["library-call"] *)
  blocks : int list;   (** the block, or the arg-max loop path *)
  need : int;          (** raw recomputed IQ need *)
  required : int;      (** clamped lower bound: [max 2 (min iq_size need)] *)
  paths_examined : int;
      (** loop anchors: how many acyclic paths were enumerated *)
  trip_bound : int option;
      (** loop anchors: the {!Tripcount} bound applied to this
          obligation, when one was supplied and proved *)
}

(** All obligations of one procedure, in anchor order.

    [tripcounts] (loop header block id → max header executions, as
    produced by {!Tripcount.of_proc}) refines loop obligations to
    [min need (trips * max_path_len)]: a loop bounded to [t] trips
    dispatches at most [t * max_path_len] of its own instructions per
    entry, so a window admitting them all simultaneously cannot delay
    the critical path. {!Tighten} derives its annotations from these
    same refined obligations, so a tightened binary re-audited with the
    same trip counts is slack-free by construction. *)
val bounds_of_proc :
  ?opts:Sdiq_core.Options.t ->
  ?tripcounts:(int, int) Hashtbl.t ->
  Sdiq_isa.Prog.t ->
  Sdiq_isa.Prog.proc ->
  bound list

(** Audit a whole program's annotation list (as produced by
    {!Sdiq_core.Procedure.analyze_program} /
    {!Sdiq_core.Annotate.apply}) against the recomputed bounds: an
    [Error] finding for every missing or under-sized annotation, plus
    one [Info] finding summarising anchors audited and minimum slack.

    [tripcounts_of] supplies each procedure's trip-count table; the
    audit then accepts annotations that meet the refined (smaller)
    loop obligations — the audit side of the {!Tighten} contract. *)
val audit :
  ?opts:Sdiq_core.Options.t ->
  ?tripcounts_of:(Sdiq_isa.Prog.proc -> (int, int) Hashtbl.t) ->
  Sdiq_isa.Prog.t ->
  Sdiq_core.Procedure.annotation list ->
  Finding.t list
