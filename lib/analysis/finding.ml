(* Structured findings produced by the static-analysis passes. *)

type severity =
  | Error
  | Warning
  | Info

type t = {
  severity : severity;
  pass : string;
  proc : string;
  addr : int option;
  blocks : int list;
  message : string;
}

let make ?(proc = "") ?addr ?(blocks = []) severity ~pass message =
  { severity; pass; proc; addr; blocks; message }

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (rank a.severity) (rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.proc b.proc in
    if c <> 0 then c else Stdlib.compare (a.addr, a.pass) (b.addr, b.pass)

let count s l = List.length (List.filter (fun f -> f.severity = s) l)
let errors l = count Error l
let warnings l = count Warning l
let infos l = count Info l
let is_clean l = errors l = 0

let pp ppf t =
  Fmt.pf ppf "%-7s %-18s %s%a%a: %s" (severity_name t.severity) t.pass
    (if t.proc = "" then "<program>" else t.proc)
    (fun ppf -> function Some a -> Fmt.pf ppf "@@%d" a | None -> ())
    t.addr
    (fun ppf -> function
      | [] -> ()
      | bs -> Fmt.pf ppf " [%a]" Fmt.(list ~sep:(any "->") (fmt "B%d")) bs)
    t.blocks t.message

(* Hand-rolled JSON: the schema is flat and the repo carries no JSON
   dependency. Strings escape the two characters that can occur in
   messages (quotes and backslashes) plus control characters. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(extra = []) t =
  Fmt.str
    "{%s\"severity\":\"%s\",\"pass\":\"%s\",\"proc\":\"%s\",\"addr\":%s,\"blocks\":[%a],\"message\":\"%s\"}"
    (String.concat ""
       (List.map
          (fun (k, v) -> Fmt.str "\"%s\":\"%s\"," (json_escape k) (json_escape v))
          extra))
    (severity_name t.severity) (json_escape t.pass) (json_escape t.proc)
    (match t.addr with Some a -> string_of_int a | None -> "null")
    Fmt.(list ~sep:(any ",") int)
    t.blocks (json_escape t.message)

let list_to_json ?extra l =
  Fmt.str "[@[<v>%a@]]"
    Fmt.(list ~sep:(any ",@,") (fun ppf f -> Fmt.string ppf (to_json ?extra f)))
    l

let pp_summary ppf l =
  Fmt.pf ppf "%d errors, %d warnings, %d infos" (errors l) (warnings l)
    (infos l)
