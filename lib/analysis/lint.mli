(** Workload lints: structural checks over programs and over the
    annotated binaries the delivery layer emits.

    Program lints (mode-independent):
    - unreachable blocks ([Warning]);
    - registers that may be read before any definition on some path, a
      forward must-defined analysis ([Warning]; loads and stores whose
      {e base} register may be undefined are reported by the separate
      ["undef-base"] pass, and calls whose callee's transitive
      {!Summary.t.uses} exceed what the caller has defined are flagged at
      the call site);
    - dead writes, values never read on any path ([Info]) — liveness is
      conservative across calls (callee summaries) and procedure exits,
      so a reported write is dead under any calling convention.

    Delivery lints (per annotation mode):
    - NOOP-mode emission integrity: every annotation materialised as an
      [Iqset] with the right value, every branch into an annotated
      region redirected to the region's [Iqset], and every back edge of
      an annotated loop {e bypassing} the header's [Iqset]
      ({!Sdiq_core.Annotate.redirect_of} integrity) — checked
      independently by reconstructing the address map from the emitted
      binary, not by re-running the rewriter ([Error] on mismatch);
    - tag-mode emission: tags present exactly at annotated addresses
      with the annotated values ([Error] on mismatch). *)

(** Lints over one procedure; [cfg] must be [Cfg.build prog proc]. *)
val unreachable :
  Sdiq_isa.Prog.proc -> Sdiq_cfg.Cfg.t -> Finding.t list

val use_before_def :
  ?summaries:(int, Summary.t) Hashtbl.t ->
  Sdiq_isa.Prog.t ->
  Sdiq_isa.Prog.proc ->
  Sdiq_cfg.Cfg.t ->
  Finding.t list

val dead_writes :
  ?summaries:(int, Summary.t) Hashtbl.t ->
  Sdiq_isa.Prog.proc ->
  Sdiq_cfg.Cfg.t ->
  Finding.t list

(** All program lints over every non-library procedure; [summaries] is
    computed from [prog] when not supplied. *)
val check_program :
  ?summaries:(int, Summary.t) Hashtbl.t -> Sdiq_isa.Prog.t -> Finding.t list

(** The NOOP-insertion address map, reconstructed from the emitted
    binary itself (never by re-running the rewriter): in
    [Some (new_of_orig, iqset_before)], [new_of_orig.(k)] is the
    emitted address of the original instruction [k], and
    [iqset_before.(k)] is [Some (emitted_addr, value)] when an [Iqset]
    carrying [value] immediately precedes it. [None] when the
    annotated binary does not contain the original instruction
    sequence. Shared by the delivery lints and the region-attribution
    profiler ({!Sdiq_obs.Region}), so both audit and attribution work
    in the address space the machine actually executes. *)
val noop_address_map :
  original:Sdiq_isa.Prog.t ->
  annotated:Sdiq_isa.Prog.t ->
  (int array * (int * int) option array) option

(** Audit an annotated binary against the annotation list that produced
    it. [original] is the pre-delivery program. *)
val delivery :
  mode:Sdiq_core.Annotate.mode ->
  original:Sdiq_isa.Prog.t ->
  annotated:Sdiq_isa.Prog.t ->
  Sdiq_core.Procedure.annotation list ->
  Finding.t list
