(* Register pressure: per-instruction live-set cardinalities from the
   backward liveness fixpoint, maximised per procedure and per file. *)

open Sdiq_isa
module Cfg = Sdiq_cfg.Cfg

type report = {
  proc : string;
  max_int_live : int;
  max_fp_live : int;
  int_addr : int;
  fp_addr : int;
}

(* Live-at-return per procedure: the union over call sites of the
   caller's live-after at the call, a fixpoint over the call graph
   seeded empty. Gives each Ret a real boundary instead of "everything",
   which is what turns the peak numbers from the architectural ceiling
   into facts about the program. Still an over-approximation: every
   call site contributes, reachable or not. *)
let exit_boundaries (prog : Prog.t) summaries : (int, Regset.t) Hashtbl.t =
  let procs =
    List.filter (fun (p : Prog.proc) -> p.Prog.len > 0) prog.Prog.procs
  in
  let boundary = Hashtbl.create 16 in
  List.iter
    (fun (p : Prog.proc) ->
      Hashtbl.replace boundary p.Prog.entry Regset.empty)
    procs;
  let lookup e =
    match Hashtbl.find_opt boundary e with
    | Some s -> s
    | None -> Regset.full (* callee without code: stay conservative *)
  in
  let max_rounds = (2 * Reg.count * List.length procs) + 2 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < max_rounds do
    changed := false;
    incr rounds;
    List.iter
      (fun (p : Prog.proc) ->
        let cfg = Cfg.build prog p in
        let live =
          Liveness.compute ~exit_boundary:(lookup p.Prog.entry) ~summaries
            cfg
        in
        for b = 0 to Cfg.num_blocks cfg - 1 do
          Liveness.fold_block live b ~init:()
            ~f:(fun () ~addr:_ i ~live_before:_ ~live_after ->
              if i.Instr.op = Opcode.Call then begin
                let cur = lookup i.Instr.target in
                let next = Regset.union cur live_after in
                if not (Regset.equal next cur) then begin
                  Hashtbl.replace boundary i.Instr.target next;
                  changed := true
                end
              end)
        done)
      procs
  done;
  boundary

let report_proc ?summaries ?(exit_boundary = Regset.full) (_prog : Prog.t)
    (proc : Prog.proc) (cfg : Cfg.t) : report =
  let live = Liveness.compute ~exit_boundary ?summaries cfg in
  let r =
    ref
      {
        proc = proc.Prog.name;
        max_int_live = 0;
        max_fp_live = 0;
        int_addr = proc.Prog.entry;
        fp_addr = proc.Prog.entry;
      }
  in
  let consider ~addr set =
    let i = Regset.int_card set and f = Regset.fp_card set in
    if i > !r.max_int_live then r := { !r with max_int_live = i; int_addr = addr };
    if f > !r.max_fp_live then r := { !r with max_fp_live = f; fp_addr = addr }
  in
  for b = 0 to Cfg.num_blocks cfg - 1 do
    Liveness.fold_block live b ~init:()
      ~f:(fun () ~addr _i ~live_before ~live_after ->
        consider ~addr live_before;
        consider ~addr live_after)
  done;
  !r

let audit ?rf_size ?summaries (prog : Prog.t) : report list * Finding.t list =
  let rf_size =
    match rf_size with
    | Some n -> n
    | None -> Sdiq_cpu.Config.default.Sdiq_cpu.Config.rf_size
  in
  let summaries =
    match summaries with Some s -> s | None -> Summary.of_program prog
  in
  let boundaries = exit_boundaries prog summaries in
  let boundary_of (p : Prog.proc) =
    match Hashtbl.find_opt boundaries p.Prog.entry with
    | Some s -> s
    | None -> Regset.full
  in
  let reports =
    List.filter_map
      (fun (p : Prog.proc) ->
        if p.Prog.is_library || p.Prog.len = 0 then None
        else
          Some
            (report_proc ~summaries ~exit_boundary:(boundary_of p) prog p
               (Cfg.build prog p)))
      prog.Prog.procs
  in
  let worst field =
    List.fold_left (fun acc r -> max acc (field r)) 0 reports
  in
  let wi = worst (fun r -> r.max_int_live)
  and wf = worst (fun r -> r.max_fp_live) in
  let findings =
    if wi >= rf_size || wf >= rf_size then
      List.concat_map
        (fun r ->
          if r.max_int_live >= rf_size || r.max_fp_live >= rf_size then
            [
              Finding.make ~proc:r.proc ~addr:r.int_addr Finding.Error
                ~pass:"reg-pressure"
                (Fmt.str
                   "up to %d int / %d fp values live at once but only %d \
                    physical registers per file: renaming can deadlock \
                    dispatch"
                   r.max_int_live r.max_fp_live rf_size);
            ]
          else [])
        reports
    else
      [
        Finding.make Finding.Info ~pass:"reg-pressure"
          (Fmt.str
             "peak %d int / %d fp live values vs %d physical registers \
              per file: dispatch can never deadlock on renaming (margin \
              %d int, %d fp)"
             wi wf rf_size (rf_size - wi) (rf_size - wf));
      ]
  in
  (reports, findings)
