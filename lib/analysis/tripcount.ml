(* Loop trip-count bounds from the counted-loop pattern.

   Soundness rests on three facts, each checked statically:

   1. The counter is stepped by a fixed constant exactly once per
      iteration: it has a single definition in the whole loop body
      (an [Addi r, r, c]), that definition's block lies on every
      enumerated header-to-latch path, and the enumeration was not
      truncated. Calls inside the body disqualify the counter unless
      the callee's may-def summary excludes it.

   2. The latch tests decide continuation on the counter: every back
      edge's source ends in a conditional branch over the counter, in
      one of the shapes below. Mid-loop exits only shorten the trip, so
      they need no inspection.

   3. The initial range comes from the interval environment joined over
      the loop's non-back-edge predecessors — sound for every entry to
      the loop. A loop whose header is the procedure entry block keeps
      no preheader fact (the boundary is top) and gets no bound. *)

open Sdiq_isa
module Cfg = Sdiq_cfg.Cfg
module Loops = Sdiq_cfg.Loops

let ceil_div a b = if a <= 0 then 0 else ((a - 1) / b) + 1

(* May the instruction define [r]? Calls defer to the callee summary
   (opaque without one). *)
let may_define summaries (i : Instr.t) r =
  if i.Instr.op = Opcode.Call then
    match summaries with
    | None -> true
    | Some tbl -> (
      match Hashtbl.find_opt tbl i.Instr.target with
      | Some (s : Interval.proc_summary) ->
        Regset.mem r s.Interval.may_defs
      | None -> true)
  else match Instr.dest i with Some d -> Reg.equal d r | None -> false

let finite_lo = function
  | Interval.Bot -> None
  | Interval.Iv { lo; _ } -> if lo = min_int then None else Some lo

let finite_hi = function
  | Interval.Bot -> None
  | Interval.Iv { hi; _ } -> if hi = max_int then None else Some hi

let bound_of_loop ?summaries ?(max_paths = 64) (prog : Prog.t)
    (cfg : Cfg.t) (intervals : Interval.solution) (loop : Loops.t) :
    int option =
  let header = cfg.Cfg.blocks.(loop.Loops.header) in
  let body_instrs =
    Loops.Iset.fold
      (fun id acc -> Cfg.instrs cfg cfg.Cfg.blocks.(id) @ acc)
      loop.Loops.body []
  in
  (* Candidate counters: a single in-body definition, an Addi r, r, c. *)
  let step_of r =
    let defs =
      List.filter (fun i -> may_define summaries i r) body_instrs
    in
    match defs with
    | [ i ]
      when i.Instr.op = Opcode.Addi
           && i.Instr.src1 = Some r
           && i.Instr.imm <> 0 -> Some i.Instr.imm
    | _ -> None
  in
  let invariant r =
    Reg.is_zero r
    || not (List.exists (fun i -> may_define summaries i r) body_instrs)
  in
  (* The step instruction's block, for the every-path check. *)
  let step_block r =
    let found = ref None in
    Array.iter
      (fun (blk : Cfg.block) ->
        if Loops.Iset.mem blk.Cfg.id loop.Loops.body then
          List.iter
            (fun (i : Instr.t) ->
              if
                i.Instr.op = Opcode.Addi
                && i.Instr.src1 = Some r
                && Instr.dest i = Some r
              then found := Some blk.Cfg.id)
            (Cfg.instrs cfg blk))
      cfg.Cfg.blocks;
    !found
  in
  let paths = Sdiq_core.Loop_need.loop_paths ~max_paths cfg loop in
  if paths = [] || List.length paths >= max_paths then None
  else
    (* Initial environment: join over the loop's outside predecessors.
       The header-as-entry case has the boundary flowing in — top. *)
    let preheader_value r =
      if loop.Loops.header = (Cfg.entry_block cfg).Cfg.id then Interval.top
      else
        List.fold_left
          (fun acc p ->
            if Loops.Iset.mem p loop.Loops.body then acc
            else Interval.hull acc (Interval.lookup intervals.Interval.exit.(p) r))
          Interval.bot
          (Cfg.preds cfg loop.Loops.header)
    in
    let value_of r =
      if Reg.is_zero r then Interval.const 0 else preheader_value r
    in
    (* One latch: the back-edge source's terminating branch, read as a
       continuation condition on candidate counter [r] with step [c]. *)
    let latch_bound src_id =
      let blk = cfg.Cfg.blocks.(src_id) in
      let term = Prog.instr prog blk.Cfg.last in
      if not (Instr.is_cond_branch term) then None
      else
        let to_header = term.Instr.target = header.Cfg.first in
        (* Degenerate latch: both edges re-enter the header, so the
           branch decides nothing — no bound. *)
        if to_header && blk.Cfg.last + 1 = header.Cfg.first then None
        else
        let s1 = term.Instr.src1 and s2 = term.Instr.src2 in
        let with_counter r other ~r_first =
          match step_of r with
          | None -> None
          | Some c ->
            if not (invariant other) then None
            else
              (* Truncation-free every-path occurrence of the step. *)
              let on_every_path =
                match step_block r with
                | None -> false
                | Some sb -> List.for_all (List.mem sb) paths
              in
              if not on_every_path then None
              else
                let r0 = value_of r in
                let k = value_of other in
                let continue_op =
                  (* The branch shape that re-enters the header. *)
                  match (term.Instr.op, to_header) with
                  | Opcode.Bne, true -> `Ne
                  | Opcode.Beq, false -> `Ne
                  | Opcode.Beq, true -> `Eq
                  | Opcode.Bne, false -> `Eq
                  | Opcode.Blt, true -> if r_first then `Lt else `Gt
                  | Opcode.Bge, false -> if r_first then `Lt else `Gt
                  | Opcode.Bge, true -> if r_first then `Ge else `Le
                  | Opcode.Blt, false -> if r_first then `Ge else `Le
                  | _ -> `Unknown
                in
                let margin t = Some (max 1 (t + 1)) in
                (match continue_op with
                | `Ne when Reg.is_zero other && c = -1 -> (
                  (* while r <> 0, r-- : needs r0 >= 0 *)
                  match (finite_lo r0, finite_hi r0) with
                  | Some lo, Some hi when lo >= 0 -> margin hi
                  | _ -> None)
                | `Ne when Reg.is_zero other && c = 1 -> (
                  (* while r <> 0, r++ : needs r0 <= 0 *)
                  match (finite_lo r0, finite_hi r0) with
                  | Some lo, Some hi when hi <= 0 -> margin (-lo)
                  | _ -> None)
                | `Lt when c >= 1 -> (
                  (* while r < k, r += c *)
                  match (finite_lo r0, finite_hi k) with
                  | Some lo, Some khi -> margin (ceil_div (khi - lo) c)
                  | _ -> None)
                | `Le when c >= 1 -> (
                  match (finite_lo r0, finite_hi k) with
                  | Some lo, Some khi -> margin (ceil_div (khi - lo + 1) c)
                  | _ -> None)
                | `Gt when c <= -1 -> (
                  (* while r > k, r -= |c| *)
                  match (finite_hi r0, finite_lo k) with
                  | Some hi, Some klo -> margin (ceil_div (hi - klo) (-c))
                  | _ -> None)
                | `Ge when c <= -1 -> (
                  match (finite_hi r0, finite_lo k) with
                  | Some hi, Some klo ->
                    margin (ceil_div (hi - klo + 1) (-c))
                  | _ -> None)
                | _ -> None)
        in
        match (s1, s2) with
        | Some r1, Some r2 -> (
          match with_counter r1 r2 ~r_first:true with
          | Some t -> Some t
          | None -> with_counter r2 r1 ~r_first:false)
        | _ -> None
    in
    let back_srcs =
      List.filter
        (fun p -> Loops.Iset.mem p loop.Loops.body)
        (Cfg.preds cfg loop.Loops.header)
    in
    if back_srcs = [] then None
    else
      (* Every back edge must be bounded; the loop's trip count is the
         largest of the per-latch bounds. *)
      List.fold_left
        (fun acc src ->
          match (acc, latch_bound src) with
          | Some a, Some b -> Some (max a b)
          | _ -> None)
        (Some 1) back_srcs

let of_proc ?summaries ?max_paths (prog : Prog.t) (proc : Prog.proc) :
    (int, int) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  if proc.Prog.is_library || proc.Prog.len = 0 then tbl
  else begin
    let cfg = Cfg.build prog proc in
    let intervals = Interval.analyze ?summaries prog proc cfg in
    List.iter
      (fun loop ->
        match bound_of_loop ?summaries ?max_paths prog cfg intervals loop with
        | Some t -> Hashtbl.replace tbl loop.Loops.header t
        | None -> ())
      (Loops.find cfg);
    tbl
  end
