(** Register-pressure pass: liveness-based maximum number of
    simultaneously live architectural values, checked against the
    physical register file.

    At any program point the renamer must hold one physical register per
    live architectural value, plus one per in-flight (dispatched,
    uncommitted) write. Commit never allocates, so dispatch stalls on a
    full file always drain: renaming deadlocks only if the live values
    alone exhaust the file. This pass computes, per procedure and per
    file, the conservative maximum of live values over every path:
    liveness with {!Summary}-refined calls and, at each procedure's
    returns, the union over its call sites of what the callers keep live
    across the call (a whole-program fixpoint; the program is fixed at
    annotation time, so this is sound for the binary being audited). It
    emits an [Error] if the peak reaches the file size — otherwise an
    [Info] recording the proved margin, the paper's Table 1 headroom
    made explicit. *)

type report = {
  proc : string;
  max_int_live : int;  (** peak simultaneously live integer registers *)
  max_fp_live : int;
  int_addr : int;      (** address achieving the integer peak *)
  fp_addr : int;
}

(** [exit_boundary] is what stays live at the procedure's returns
    (default: everything, the single-procedure-sound assumption). *)
val report_proc :
  ?summaries:(int, Summary.t) Hashtbl.t ->
  ?exit_boundary:Regset.t ->
  Sdiq_isa.Prog.t ->
  Sdiq_isa.Prog.proc ->
  Sdiq_cfg.Cfg.t ->
  report

(** Reports for every non-library procedure, plus findings checked
    against [rf_size] physical registers per file (default: the Table 1
    machine, {!Sdiq_cpu.Config.default}). [summaries] is computed from
    the program when not supplied. *)
val audit :
  ?rf_size:int ->
  ?summaries:(int, Summary.t) Hashtbl.t ->
  Sdiq_isa.Prog.t ->
  report list * Finding.t list
