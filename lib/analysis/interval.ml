(* Interval abstract interpretation over the Dataflow engine.

   The engine recomputes each block's input fresh on every visit by
   folding [join] over predecessor outputs, so termination rests
   entirely on the join: plain interval hull has unbounded ascending
   chains (a counting loop manufactures a new constant every
   iteration), so [join] widens any endpoint that escapes the
   accumulated fact to the nearest enclosing threshold. Thresholds are
   the procedure's own immediates plus {-1, 0, 1} and the infinities:
   loop bounds written in the code survive widening exactly, which is
   what the trip-count pass needs. *)

open Sdiq_isa

type t =
  | Bot
  | Iv of { lo : int; hi : int }

let bot = Bot
let top = Iv { lo = min_int; hi = max_int }
let const n = Iv { lo = n; hi = n }
let make lo hi = if lo > hi then Bot else Iv { lo; hi }
let is_bot t = t = Bot

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Iv a, Iv b -> a.lo = b.lo && a.hi = b.hi
  | _ -> false

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Iv a, Iv b -> b.lo <= a.lo && a.hi <= b.hi

let hull a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Iv a, Iv b -> Iv { lo = min a.lo b.lo; hi = max a.hi b.hi }

(* Largest threshold <= v / smallest >= v; [thresholds] is sorted and
   contains the infinities, so both always exist. *)
let snap_down thresholds v =
  let r = ref min_int in
  Array.iter (fun t -> if t <= v && t > !r then r := t) thresholds;
  !r

let snap_up thresholds v =
  let r = ref max_int in
  Array.iter (fun t -> if t >= v && t < !r then r := t) thresholds;
  !r

let widen ~thresholds a b =
  match (a, hull a b) with
  | _, Bot -> Bot
  | Bot, h -> h
  | Iv a, Iv h ->
    let lo = if h.lo >= a.lo then h.lo else snap_down thresholds h.lo in
    let hi = if h.hi <= a.hi then h.hi else snap_up thresholds h.hi in
    Iv { lo; hi }

(* Saturating scalar arithmetic; min_int/max_int are absorbing. *)
let sat_add x y =
  if x = min_int || y = min_int then min_int
  else if x = max_int || y = max_int then max_int
  else
    let s = x + y in
    if x > 0 && y > 0 && s < 0 then max_int
    else if x < 0 && y < 0 && s >= 0 then min_int
    else s

let sat_neg x =
  if x = min_int then max_int else if x = max_int then min_int else -x

let sat_mul x y =
  if x = 0 || y = 0 then 0
  else if x = min_int || x = max_int || y = min_int || y = max_int then
    if (x > 0) = (y > 0) then max_int else min_int
  else
    let p = x * y in
    if p / y <> x then if (x > 0) = (y > 0) then max_int else min_int else p

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv a, Iv b -> Iv { lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }

let neg = function
  | Bot -> Bot
  | Iv a -> Iv { lo = sat_neg a.hi; hi = sat_neg a.lo }

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv a, Iv b ->
    let products =
      [
        sat_mul a.lo b.lo;
        sat_mul a.lo b.hi;
        sat_mul a.hi b.lo;
        sat_mul a.hi b.hi;
      ]
    in
    Iv
      {
        lo = List.fold_left min max_int products;
        hi = List.fold_left max min_int products;
      }

let thresholds_of_proc (prog : Prog.t) (proc : Prog.proc) =
  let acc = ref [ min_int; -1; 0; 1; max_int ] in
  List.iter
    (fun addr ->
      let i = Prog.instr prog addr in
      acc := i.Instr.imm :: !acc)
    (Prog.proc_addrs proc);
  Array.of_list (List.sort_uniq compare !acc)

(* --- environments -------------------------------------------------------- *)

type env = t array

let env_top () = Array.make Reg.count top
let env_bot () = Array.make Reg.count bot

let env_equal a b =
  let ok = ref true in
  for i = 0 to Reg.count - 1 do
    if not (equal a.(i) b.(i)) then ok := false
  done;
  !ok

let env_join ~thresholds a b =
  Array.init Reg.count (fun i -> widen ~thresholds a.(i) b.(i))

let lookup env r = if Reg.is_zero r then const 0 else env.(Reg.dense r)

let value env = function
  | Some r -> lookup env r
  | None -> top

let set env r v =
  let env' = Array.copy env in
  env'.(Reg.dense r) <- v;
  env'

(* Result ranges for opcodes with partial interval semantics. *)
let bitwise_and a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Iv a, Iv b ->
    (* For non-negative operands, [x land y <= min x y]. *)
    if a.lo >= 0 && b.lo >= 0 then Iv { lo = 0; hi = min a.hi b.hi } else top

let shift_right a =
  match a with
  | Bot -> Bot
  | Iv a when a.lo >= 0 -> Iv { lo = 0; hi = a.hi }
  | Iv _ -> top

let eval ?(call = fun ~target:_ _ -> env_top ()) env (i : Instr.t) : env =
  if i.Instr.op = Opcode.Call then call ~target:i.Instr.target env
  else
    match Instr.dest i with
    | None -> env
    | Some d ->
      let v1 () = value env i.Instr.src1 in
      let v2 () = value env i.Instr.src2 in
      let result =
        match i.Instr.op with
        | Opcode.Li -> const i.Instr.imm
        | Opcode.Mov -> v1 ()
        | Opcode.Add -> add (v1 ()) (v2 ())
        | Opcode.Sub -> sub (v1 ()) (v2 ())
        | Opcode.Addi -> add (v1 ()) (const i.Instr.imm)
        | Opcode.Mul -> mul (v1 ()) (v2 ())
        | Opcode.And -> bitwise_and (v1 ()) (v2 ())
        | Opcode.Andi -> bitwise_and (v1 ()) (const i.Instr.imm)
        | Opcode.Shr -> shift_right (v1 ())
        | Opcode.Shri -> shift_right (v1 ())
        | Opcode.Slt | Opcode.Sle | Opcode.Seq | Opcode.Sne | Opcode.Slti ->
          make 0 1
        | _ -> top
      in
      set env d result

(* --- interprocedural summaries ------------------------------------------- *)

type proc_summary = {
  may_defs : Regset.t;
  ret_env : env;
}

let opaque_summary () = { may_defs = Regset.full; ret_env = env_top () }

let call_transfer tbl ~target env =
  match Hashtbl.find_opt tbl target with
  | None -> env_top ()
  | Some s ->
    Array.init Reg.count (fun i ->
        if Regset.mem (Reg.of_dense i) s.may_defs then s.ret_env.(i)
        else env.(i))

type solution = {
  entry : env array;
  exit : env array;
}

let analyze_with ~call (prog : Prog.t) (proc : Prog.proc)
    (cfg : Sdiq_cfg.Cfg.t) : solution =
  let thresholds = thresholds_of_proc prog proc in
  (* The engine recomputes each block's in-fact fresh per visit, so the
     within-fold join alone cannot widen: when the growing predecessor
     happens to be folded first, nothing ever escapes the accumulator
     and a counting loop climbs one constant per visit until the step
     budget. Widening needs the *visit history*, kept here per block:
     each endpoint either survives or snaps to the next threshold, so
     every block's history fact changes at most a bounded number of
     times and the fixpoint terminates. *)
  let widened = Array.init (Sdiq_cfg.Cfg.num_blocks cfg) (fun _ -> env_bot ()) in
  let spec =
    {
      Dataflow.name = "interval/" ^ proc.Prog.name;
      direction = Dataflow.Forward;
      boundary = env_top ();
      init = env_bot ();
      join = env_join ~thresholds;
      equal = env_equal;
      transfer =
        (fun b env ->
          let w = env_join ~thresholds widened.(b) env in
          widened.(b) <- w;
          List.fold_left
            (fun e i -> eval ~call e i)
            w
            (Sdiq_cfg.Cfg.instrs cfg cfg.Sdiq_cfg.Cfg.blocks.(b)));
    }
  in
  let sol = Dataflow.run cfg spec in
  (* Report the widened in-facts the transfers actually ran from, not
     the engine's raw joins, so entry and exit line up. *)
  { entry = widened; exit = sol.Dataflow.exit }

let analyze ?summaries prog proc cfg =
  let call =
    match summaries with
    | Some tbl -> call_transfer tbl
    | None -> fun ~target:_ _ -> env_top ()
  in
  analyze_with ~call prog proc cfg

(* One summary recomputation for [proc] under the current table. *)
let summarize_proc tbl (prog : Prog.t) (proc : Prog.proc) : proc_summary =
  let cfg = Sdiq_cfg.Cfg.build prog proc in
  let sol = analyze_with ~call:(call_transfer tbl) prog proc cfg in
  let may_defs = ref Regset.empty in
  let ret_env = ref (env_bot ()) in
  let thresholds = thresholds_of_proc prog proc in
  Array.iteri
    (fun b (blk : Sdiq_cfg.Cfg.block) ->
      List.iter
        (fun (i : Instr.t) ->
          (match Instr.dest i with
          | Some d -> may_defs := Regset.add d !may_defs
          | None -> ());
          if i.Instr.op = Opcode.Call then
            may_defs :=
              Regset.union !may_defs
                (match Hashtbl.find_opt tbl i.Instr.target with
                | Some s -> s.may_defs
                | None -> Regset.full))
        (Sdiq_cfg.Cfg.instrs cfg blk);
      let last = Prog.instr prog blk.Sdiq_cfg.Cfg.last in
      if last.Instr.op = Opcode.Ret then
        ret_env := env_join ~thresholds !ret_env sol.exit.(b))
    cfg.Sdiq_cfg.Cfg.blocks;
  { may_defs = !may_defs; ret_env = !ret_env }

let env_leq a b =
  let ok = ref true in
  for i = 0 to Reg.count - 1 do
    if not (leq a.(i) b.(i)) then ok := false
  done;
  !ok

let summaries (prog : Prog.t) : (int, proc_summary) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  let analysable =
    List.filter
      (fun (p : Prog.proc) ->
        if p.Prog.is_library || p.Prog.len = 0 then begin
          Hashtbl.replace tbl p.Prog.entry (opaque_summary ());
          false
        end
        else begin
          (* Optimistic start: nothing defined, no exit value yet. *)
          Hashtbl.replace tbl p.Prog.entry
            { may_defs = Regset.empty; ret_env = env_bot () };
          true
        end)
      prog.Prog.procs
  in
  (* Round-robin to a fixpoint: may_defs only grows and ret_env only
     widens (finite threshold lattice), so this terminates; the cap is
     a backstop, degrading to the sound opaque summary if ever hit. *)
  let max_rounds = 100 in
  let rec iterate round =
    if round > max_rounds then
      List.iter
        (fun (p : Prog.proc) ->
          Hashtbl.replace tbl p.Prog.entry (opaque_summary ()))
        analysable
    else begin
      let changed = ref false in
      List.iter
        (fun (p : Prog.proc) ->
          let prev = Hashtbl.find tbl p.Prog.entry in
          let next = summarize_proc tbl prog p in
          (* Monotone accumulation: never lose what a previous round
             established, even if a dependency's refinement shuffles
             this round's recomputation. *)
          let merged =
            {
              may_defs = Regset.union prev.may_defs next.may_defs;
              ret_env =
                env_join
                  ~thresholds:(thresholds_of_proc prog p)
                  prev.ret_env next.ret_env;
            }
          in
          if
            not
              (Regset.equal prev.may_defs merged.may_defs
              && env_leq merged.ret_env prev.ret_env)
          then begin
            changed := true;
            Hashtbl.replace tbl p.Prog.entry merged
          end)
        analysable;
      if !changed then iterate (round + 1)
    end
  in
  iterate 1;
  tbl

let pp ppf = function
  | Bot -> Fmt.string ppf "⊥"
  | Iv { lo; hi } ->
    let e ppf v =
      if v = min_int then Fmt.string ppf "-∞"
      else if v = max_int then Fmt.string ppf "+∞"
      else Fmt.int ppf v
    in
    Fmt.pf ppf "[%a, %a]" e lo e hi
