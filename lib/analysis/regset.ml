(* Compact register sets: one bit per register, one word per file. Both
   files have 32 registers, so each mask fits comfortably in an OCaml
   integer. *)

open Sdiq_isa

type t = {
  ints : int;
  fps : int;
}

let empty = { ints = 0; fps = 0 }

let full =
  { ints = (1 lsl Reg.num_int) - 1; fps = (1 lsl Reg.num_fp) - 1 }

let add r t =
  match r with
  | Reg.Int i -> { t with ints = t.ints lor (1 lsl i) }
  | Reg.Fp i -> { t with fps = t.fps lor (1 lsl i) }

let remove r t =
  match r with
  | Reg.Int i -> { t with ints = t.ints land lnot (1 lsl i) }
  | Reg.Fp i -> { t with fps = t.fps land lnot (1 lsl i) }

let mem r t =
  match r with
  | Reg.Int i -> t.ints land (1 lsl i) <> 0
  | Reg.Fp i -> t.fps land (1 lsl i) <> 0

let union a b = { ints = a.ints lor b.ints; fps = a.fps lor b.fps }
let inter a b = { ints = a.ints land b.ints; fps = a.fps land b.fps }

let diff a b =
  { ints = a.ints land lnot b.ints; fps = a.fps land lnot b.fps }

let equal a b = a.ints = b.ints && a.fps = b.fps
let is_empty t = t.ints = 0 && t.fps = 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let int_card t = popcount t.ints
let fp_card t = popcount t.fps
let cardinal t = int_card t + fp_card t

let elements t =
  let file n mask make =
    List.filter_map
      (fun i -> if mask land (1 lsl i) <> 0 then Some (make i) else None)
      (List.init n (fun i -> i))
  in
  file Reg.num_int t.ints Reg.int @ file Reg.num_fp t.fps Reg.fp

let of_list rs = List.fold_left (fun acc r -> add r acc) empty rs

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma Reg.pp) (elements t)
