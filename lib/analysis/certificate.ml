(* Occupancy and energy certificates over the delivered binary.

   Region starts are read straight from the instruction stream — every
   [Iqset] and every tagged instruction — so the certificate covers the
   program the machine decodes, under any delivery mode, including a
   program with no annotations at all (whose only region is the wide-
   open startup region, certified at the physical cap).

   The successor graph is built by a flood from each region start over
   instruction successors, stopping at (and recording) any *other*
   region start: the dynamic episode sequence is a path in this graph,
   because a region only opens when its start instruction reaches
   dispatch — on the right path or the wrong one, which follows the
   same static edges except through [Ret], whose predicted target is
   corruptible and therefore saturates the certifying region. *)

open Sdiq_isa
module Config = Sdiq_cpu.Config
module Stats = Sdiq_cpu.Stats
module Params = Sdiq_power.Params

type region = {
  start : int;
  window : int;
  occ_bound : int;
  saturated : bool;
}

type t = {
  regions : region list;
  occ_bound : int;
  cap : int;
}

let window_of (i : Instr.t) =
  if i.Instr.op = Opcode.Iqset then Some i.Instr.imm else i.Instr.tag

(* Successors of one executed instruction, as fetch may follow them. *)
type succ =
  | Next of int list
  | Saturate

let succ_of (prog : Prog.t) addr (i : Instr.t) : succ =
  let len = Prog.length prog in
  let fall = if addr + 1 < len then [ addr + 1 ] else [] in
  let tgt = if i.Instr.target >= 0 && i.Instr.target < len then [ i.Instr.target ] else [] in
  match i.Instr.op with
  | Opcode.Halt -> Next []
  | Opcode.Ret -> Saturate
  | Opcode.Jmp -> Next tgt
  | Opcode.Call -> Next (tgt @ fall)
  | op when Opcode.is_cond_branch op -> Next (tgt @ fall)
  | _ -> Next fall

(* Flood from [root] (itself traversed: re-reaching the same anchor is
   the policy-suppressed same-pc reopen), collecting the first other
   region starts reached and whether a [Ret] is reachable first. *)
let flood prog is_start root =
  let succs = ref [] in
  let sat = ref false in
  let seen = Hashtbl.create 64 in
  let rec go addr =
    if not (Hashtbl.mem seen addr) then begin
      Hashtbl.add seen addr ();
      if is_start addr && addr <> root then succs := addr :: !succs
      else
        match succ_of prog addr (Prog.instr prog addr) with
        | Saturate -> sat := true
        | Next ns -> List.iter go ns
    end
  in
  go root;
  (!succs, !sat)

(* Tarjan SCC over node indices. *)
let scc_of n succs =
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let comp_size = ref [] in
  let stack = ref [] in
  let next = ref 0 in
  let ncomp = ref 0 in
  let rec strong v =
    index.(v) <- !next;
    low.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      succs.(v);
    if low.(v) = index.(v) then begin
      let size = ref 0 in
      let rec pop () =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp.(w) <- !ncomp;
          incr size;
          if w <> v then pop ()
        | [] -> ()
      in
      pop ();
      comp_size := !size :: !comp_size;
      incr ncomp
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strong v
  done;
  let sizes = Array.of_list (List.rev !comp_size) in
  (comp, sizes)

let build (cfg : Config.t) (prog : Prog.t) : t =
  let cap = min cfg.Config.iq_size cfg.Config.rob_size in
  let len = Prog.length prog in
  let starts = ref [] in
  for addr = len - 1 downto 0 do
    match window_of (Prog.instr prog addr) with
    | Some w ->
      (* The policy floors the window at 1; its span cap keeps an
         episode under the queue size regardless of the value. *)
      starts := (addr, max 1 (min w cfg.Config.iq_size)) :: !starts
    | None -> ()
  done;
  let starts = Array.of_list !starts in
  let n = Array.length starts in
  let node_of = Hashtbl.create (2 * (n + 1)) in
  Array.iteri (fun i (a, _) -> Hashtbl.add node_of a i) starts;
  let is_start a = Hashtbl.mem node_of a in
  let succs = Array.make n [] in
  let sat = Array.make n false in
  Array.iteri
    (fun i (a, _) ->
      let edges, s = flood prog is_start a in
      succs.(i) <- List.map (Hashtbl.find node_of) edges;
      sat.(i) <- s)
    starts;
  let comp, comp_sizes = scc_of n succs in
  (* Saturation is a component property: any member's [Ret], or a cycle
     through distinct anchors (component size > 1 — same-node self
     edges cannot arise, the flood suppresses them). *)
  let comp_sat = Array.map (fun s -> s > 1) comp_sizes in
  Array.iteri (fun i s -> if s then comp_sat.(comp.(i)) <- true) sat;
  let sat_add a b = if a >= cap - b then cap else a + b in
  let chain = Array.make n (-1) in
  let rec chain_of i =
    if chain.(i) >= 0 then chain.(i)
    else if comp_sat.(comp.(i)) then begin
      chain.(i) <- cap;
      cap
    end
    else begin
      (* Singleton non-saturated component: successors are strictly
         lower in the condensation, so the recursion terminates. *)
      let _, w = starts.(i) in
      let tail = List.fold_left (fun acc j -> max acc (chain_of j)) 0 succs.(i) in
      let c = sat_add w tail in
      chain.(i) <- c;
      c
    end
  in
  let regions =
    Array.to_list
      (Array.mapi
         (fun i (start, window) ->
           let c = chain_of i in
           {
             start;
             window;
             occ_bound = min cap c;
             saturated = comp_sat.(comp.(i));
           })
         starts)
  in
  (* The startup region runs wide open, so it saturates the program
     bound — unless the entry instruction itself opens a region, in
     which case nothing ever dispatches under startup. *)
  let occ_bound =
    if is_start prog.Prog.entry then
      List.fold_left (fun acc (r : region) -> max acc r.occ_bound) 1 regions
    else cap
  in
  { regions; occ_bound; cap }

let occupancy_bound t ~start =
  List.find_map
    (fun r -> if r.start = start then Some r.occ_bound else None)
    t.regions

let wakeups_bound t ~broadcasts = 2 * t.occ_bound * broadcasts

let bank_cycles_bound cfg t ~cycles =
  min (Config.iq_banks cfg) t.occ_bound * cycles

let energy_bound (p : Params.t) cfg t (s : Stats.t) : float =
  let bank_cycles =
    float_of_int (bank_cycles_bound cfg t ~cycles:s.Stats.cycles)
  in
  (float_of_int (wakeups_bound t ~broadcasts:s.Stats.iq_broadcasts)
  *. p.Params.e_wakeup)
  +. Sdiq_power.Iq_power.base_activity p s
  +. (bank_cycles *. (p.Params.e_iq_bank_cycle +. p.Params.iq_leak_bank_cycle))

let check (p : Params.t) cfg t (s : Stats.t) : Finding.t list =
  let findings = ref [] in
  let fail msg = findings := Finding.make Finding.Error ~pass:"certificate" msg :: !findings in
  let wb = wakeups_bound t ~broadcasts:s.Stats.iq_broadcasts in
  if s.Stats.iq_wakeups_gated > wb then
    fail
      (Fmt.str "measured iq_wakeups_gated %d exceeds certified bound %d"
         s.Stats.iq_wakeups_gated wb);
  let bb = bank_cycles_bound cfg t ~cycles:s.Stats.cycles in
  if s.Stats.iq_banks_on_sum > bb then
    fail
      (Fmt.str "measured iq_banks_on_sum %d exceeds certified bound %d"
         s.Stats.iq_banks_on_sum bb);
  let e = Sdiq_power.Iq_power.technique p s in
  let measured = e.Sdiq_power.Iq_power.dynamic +. e.Sdiq_power.Iq_power.static_ in
  let bound = energy_bound p cfg t s in
  if measured > bound then
    fail
      (Fmt.str "measured IQ energy %.3f exceeds certified bound %.3f" measured
         bound);
  if !findings <> [] then List.rev !findings
  else
    [
      Finding.make Finding.Info ~pass:"certificate"
        (Fmt.str
           "certified %d regions (max occupancy bound %d, cap %d): wakeups \
            %d <= %d, bank-cycles %d <= %d, energy %.3f <= %.3f"
           (List.length t.regions) t.occ_bound t.cap s.Stats.iq_wakeups_gated
           wb s.Stats.iq_banks_on_sum bb measured bound);
    ]

let pp ppf t =
  Fmt.pf ppf "@[<v>certificate: cap %d, program bound %d@," t.cap t.occ_bound;
  List.iter
    (fun r ->
      Fmt.pf ppf "  @%04d window %d -> occupancy <= %d%s@," r.start r.window
        r.occ_bound
        (if r.saturated then " (saturated)" else ""))
    t.regions;
  Fmt.pf ppf "@]"
