(** Interval abstract interpretation: a value-range domain for the
    {!Dataflow} engine (which previously only carried bitset facts).

    The lattice element is a closed integer interval [[lo, hi]] with
    [min_int]/[max_int] standing for the infinities, plus an explicit
    bottom. Plain interval join has unbounded ascending chains (a
    counting loop grows its bound forever), so {!join} widens to a
    finite threshold set whenever a genuine merge occurs: endpoints that
    leave the threshold set jump to the nearest enclosing threshold.
    With thresholds drawn from the procedure's own immediates the
    lattice height is finite and the engine's step budget is never at
    risk — the qcheck property pins [Diverged]-freedom on random CFGs.

    {!analyze} runs the per-procedure fixpoint; {!summaries} runs the
    interprocedural round-robin fixpoint (mirroring {!Summary}) so call
    sites transfer the callee's may-defined registers to the callee's
    exit intervals instead of havocking everything. *)

type t =
  | Bot  (** unreachable / no value *)
  | Iv of { lo : int; hi : int }
      (** [lo <= hi]; [min_int]/[max_int] are the infinities *)

val bot : t
val top : t
val const : int -> t

(** [make lo hi] normalises: [Bot] when [lo > hi]. *)
val make : int -> int -> t

val is_bot : t -> bool
val equal : t -> t -> bool

(** Partial order: [leq a b] iff [a] is contained in [b]. *)
val leq : t -> t -> bool

(** Exact interval hull — no widening. Unbounded ascending chains. *)
val hull : t -> t -> t

(** Widening to thresholds: endpoints of [hull a b] that escape [a]
    jump to the nearest enclosing threshold (or infinity). Always
    [leq (hull a b) (widen ~thresholds a b)]. [thresholds] must be
    sorted ascending. *)
val widen : thresholds:int array -> t -> t -> t

(** Saturating interval arithmetic (sound for any operand ranges). *)
val add : t -> t -> t

val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

(** The threshold set of a procedure: its immediates, [{-1; 0; 1}] and
    the infinities, sorted and deduplicated. *)
val thresholds_of_proc : Sdiq_isa.Prog.t -> Sdiq_isa.Prog.proc -> int array

(** Register environment, indexed by {!Sdiq_isa.Reg.dense}. *)
type env = t array

val env_top : unit -> env
val env_bot : unit -> env
val env_equal : env -> env -> bool
val env_join : thresholds:int array -> env -> env -> env

(** Value of one register ([Bot] for the hardwired zero's writes is
    never stored: reads of [r0] evaluate to [const 0]). *)
val lookup : env -> Sdiq_isa.Reg.t -> t

(** Abstract evaluation of one instruction (no control effect). [call]
    supplies the environment transformer for [Call] instructions —
    {!summaries} plugs the interprocedural transfer in; the default
    havocks every register. *)
val eval :
  ?call:(target:int -> env -> env) -> env -> Sdiq_isa.Instr.t -> env

(** Per-procedure interval summary: [may_defs] over-approximates the
    registers the procedure (or any transitive callee) can write;
    [ret_env] is a sound environment at any [Ret], computed from a top
    entry environment so it holds for every call site. *)
type proc_summary = {
  may_defs : Regset.t;
  ret_env : env;
}

(** Interprocedural round-robin fixpoint over the call graph, keyed by
    entry address, mirroring {!Summary.of_program}. [may_defs] only
    grows and [ret_env] only widens, so it terminates. Library and
    empty procedures are opaque (everything may-defined, top exit). *)
val summaries : Sdiq_isa.Prog.t -> (int, proc_summary) Hashtbl.t

type solution = {
  entry : env array;  (** environment at each block's entry *)
  exit : env array;
}

(** The per-procedure fixpoint through {!Dataflow.run}, with the
    interprocedural call transfer when [summaries] is given. *)
val analyze :
  ?summaries:(int, proc_summary) Hashtbl.t ->
  Sdiq_isa.Prog.t ->
  Sdiq_isa.Prog.proc ->
  Sdiq_cfg.Cfg.t ->
  solution

val pp : Format.formatter -> t -> unit
