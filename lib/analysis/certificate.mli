(** Machine-checkable certificates: per-region static upper bounds on
    IQ occupancy and on technique-view IQ energy, derived from the
    {e delivered} binary (the [Iqset] instructions and instruction tags
    the machine actually decodes, not the analysis's annotation list).

    The occupancy argument: while a region is the oldest with an entry
    in flight, live entries split into episodes — one per region
    opening — and the software policy caps each episode's slots at its
    granted window. The episode sequence follows the region-successor
    graph (a region start executing while another is current), so a
    region's occupancy is bounded by its window plus the heaviest chain
    of successor windows, saturated at [min iq_size rob_size] whenever
    the chain is unbounded: successor cycles through {e distinct}
    anchors (the same anchor re-opening is suppressed by the policy's
    [region_pc] guard, so self-loops do not count) or a reachable [Ret]
    (whose target is dynamically produced and corruptible on the wrong
    path). A saturated bound is still a theorem — the queue and ROB
    physically cap occupancy — just not an interesting one; leaf and
    tail regions get real bounds.

    The energy bound prices the two occupancy-dependent counters from
    the occupancy bound ([wakeups <= 2 * occ * broadcasts]: at most two
    operand CAMs per live entry per tag; [banks_on <= min banks occ]: a
    powered bank holds at least one live entry) and every other term
    from its measured counter at the model's own coefficients. *)

type region = {
  start : int;  (** address of the [Iqset] or tagged instruction *)
  window : int;  (** granted window, as the policy clamps it *)
  occ_bound : int;  (** certified max IQ occupancy while oldest in flight *)
  saturated : bool;  (** [occ_bound] is the physical cap, not a chain sum *)
}

type t = {
  regions : region list;  (** in address order; excludes startup *)
  occ_bound : int;
      (** program-wide certified occupancy bound: max over regions and
          the (always saturated) startup region *)
  cap : int;  (** the physical cap [min iq_size rob_size] *)
}

val build : Sdiq_cpu.Config.t -> Sdiq_isa.Prog.t -> t

(** The certified bound for the region opened at [start], if that
    address opens one. *)
val occupancy_bound : t -> start:int -> int option

(** Static bound on [iq_wakeups_gated] given the measured broadcast
    count. *)
val wakeups_bound : t -> broadcasts:int -> int

(** Static bound on [iq_banks_on_sum] given the measured cycle count. *)
val bank_cycles_bound : Sdiq_cpu.Config.t -> t -> cycles:int -> int

(** Upper bound on the technique-view IQ energy (dynamic + static) of
    a run with these measured statistics. *)
val energy_bound :
  Sdiq_power.Params.t -> Sdiq_cpu.Config.t -> t -> Sdiq_cpu.Stats.t -> float

(** Validate the certificate against a measured run: an [Error] finding
    for any measured counter or energy exceeding its certified bound,
    else one [Info] finding stating what was certified. *)
val check :
  Sdiq_power.Params.t ->
  Sdiq_cpu.Config.t ->
  t ->
  Sdiq_cpu.Stats.t ->
  Finding.t list

val pp : Format.formatter -> t -> unit
