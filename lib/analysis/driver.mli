(** Top-level orchestration of the static-analysis passes: one call
    audits a program under one annotation mode (soundness + delivery)
    and runs the mode-independent lints and the register-pressure
    check. *)

(** One of the paper's three annotation configurations. *)
type mode = {
  name : string;  (** ["noop"], ["extension"] or ["improved"] *)
  delivery : Sdiq_core.Annotate.mode;
  opts : Sdiq_core.Options.t;
}

val modes : mode list
val mode_named : string -> mode option

(** Soundness audit plus delivery-integrity lint for one mode: the
    program is analysed and annotated exactly as the simulator harness
    would, then both artefacts are audited. *)
val audit_mode : mode -> Sdiq_isa.Prog.t -> Finding.t list

(** Mode-independent program lints and the register-pressure pass. *)
val lint_program : ?rf_size:int -> Sdiq_isa.Prog.t -> Finding.t list

(** [audit_mode] under every mode, plus [lint_program], sorted with
    errors first. *)
val audit_all : ?rf_size:int -> Sdiq_isa.Prog.t -> Finding.t list
