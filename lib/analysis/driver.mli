(** Top-level orchestration of the static-analysis passes: one call
    audits a program under one annotation mode (soundness + delivery +
    wrong-path anchor hygiene) and runs the mode-independent lints and
    the register-pressure check. *)

(** One of the paper's three annotation configurations, or the
    [tightened] optimizer configuration. *)
type mode = {
  name : string;
      (** ["noop"], ["extension"], ["improved"] or ["tightened"] *)
  delivery : Sdiq_core.Annotate.mode;
  opts : Sdiq_core.Options.t;
  tightened : bool;  (** annotations come from {!Tighten}, not the
                         baseline analysis *)
}

val modes : mode list
val mode_named : string -> mode option

(** Analyse and deliver exactly as the simulator harness would for this
    mode. *)
val apply_mode :
  mode ->
  Sdiq_isa.Prog.t ->
  Sdiq_isa.Prog.t * Sdiq_core.Procedure.annotation list

(** The annotation-list audit matching the mode: {!Soundness.audit}, or
    {!Tighten.audit} (trip-count refined) for the tightened mode. *)
val audit_annotations :
  mode ->
  Sdiq_isa.Prog.t ->
  Sdiq_core.Procedure.annotation list ->
  Finding.t list

(** Soundness audit plus delivery-integrity and wrong-path lints for
    one mode: the program is analysed and annotated exactly as the
    simulator harness would, then both artefacts are audited. *)
val audit_mode : mode -> Sdiq_isa.Prog.t -> Finding.t list

(** Mode-independent program lints and the register-pressure pass. *)
val lint_program : ?rf_size:int -> Sdiq_isa.Prog.t -> Finding.t list

(** [audit_mode] under every mode, plus [lint_program], sorted with
    errors first. *)
val audit_all : ?rf_size:int -> Sdiq_isa.Prog.t -> Finding.t list
