(** M/M/m occupancy model of the issue queue (Erlang-C), used as an
    analytic cross-check of the simulator: dispatch is the arrival
    stream, the issue ports are the servers, and the predicted mean
    population must land within a documented factor of the measured
    [Stats.avg_iq_occupancy]. Because real service times are
    heavy-tailed and dependence-clustered, the memoryless model
    underpredicts: on the benchmark grid the prediction is a positive
    lower bound within a factor of ~28 of the measurement, and the
    test suite pins predicted in [measured/32, measured * 1.25] (see
    DESIGN.md §16). After the queueing treatments of processor
    structures in arXiv 1807.08586. *)

type t = {
  lambda : float;  (** arrivals (dispatches) per cycle *)
  service : float;  (** estimated mean slot residency, cycles *)
  servers : int;  (** issue width *)
  rho : float;  (** utilisation, [lambda * service / servers] *)
  queue_prob : float;  (** Erlang-C probability an arrival waits *)
  occupancy : float;  (** predicted mean population, clamped to iq_size *)
}

(** [erlang_c ~servers ~load] is the probability an arrival must queue
    in an M/M/m system offered [load] erlangs ([lambda * service]).
    Computed by the stable Erlang-B recurrence (no factorials). [0] at
    zero load, [1] at or beyond saturation ([load >= servers]); raises
    [Invalid_argument] when [servers <= 0]. At [servers = 1] it equals
    the M/M/1 closed form [load]. *)
val erlang_c : servers:int -> load:float -> float

(** Mean M/M/m population [a + C rho / (1 - rho)], clamped to
    [capacity]; a saturated system ([rho >= 1]) reports the full
    capacity. *)
val occupancy :
  lambda:float -> service:float -> servers:int -> capacity:int -> float

(** Mean slot residency estimated from the run's own latency mix: one
    selection cycle for every instruction, plus the load-consumer
    fraction weighted by this run's expected load latency (DL1 hit +
    measured miss ratios priced at L2 and memory latency). *)
val service_estimate : Sdiq_cpu.Config.t -> Sdiq_cpu.Stats.t -> float

(** The model evaluated on one run's statistics. *)
val predict : Sdiq_cpu.Config.t -> Sdiq_cpu.Stats.t -> t

(** [|occupancy - measured| / measured]; [infinity] on an empty run. *)
val relative_error : t -> Sdiq_cpu.Stats.t -> float

val pp : Format.formatter -> t -> unit
