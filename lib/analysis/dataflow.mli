(** A generic monotone dataflow framework over {!Sdiq_cfg.Cfg}.

    The caller supplies the lattice (join, equality, an optimistic
    initial fact) and the block transfer function; the engine iterates a
    worklist seeded in reverse post-order (forward analyses) or its
    reverse (backward analyses) to a fixpoint. Joins are performed over
    block-level facts, so a transfer function summarises one whole basic
    block.

    Termination is the caller's obligation — the transfer function must
    be monotone over a finite-height lattice — but the engine enforces a
    step budget and raises {!Diverged} instead of spinning when handed a
    non-monotone analysis, so a buggy pass fails loudly. *)

type direction =
  | Forward   (** facts flow entry → exit; input of a block joins its
                  predecessors' outputs *)
  | Backward  (** facts flow exit → entry; input of a block joins its
                  successors' outputs *)

(** Raised when the worklist exceeds its step budget: the supplied
    analysis is not monotone (or the budget was set too tight). Carries
    the analysis name and the number of steps taken. *)
exception Diverged of string * int

type 'fact spec = {
  name : string;  (** for diagnostics ({!Diverged}) *)
  direction : direction;
  boundary : 'fact;
      (** fact entering the CFG: at the entry block (forward) or at every
          exit block, i.e. one with no successors (backward) *)
  init : 'fact;
      (** optimistic starting fact (lattice top for must-analyses,
          bottom for may-analyses); also the input of blocks with no
          input edges, e.g. unreachable blocks *)
  join : 'fact -> 'fact -> 'fact;
  equal : 'fact -> 'fact -> bool;
  transfer : int -> 'fact -> 'fact;
      (** [transfer block_id input] summarises the whole block *)
}

type 'fact solution = {
  entry : 'fact array;  (** fact at each block's entry, by block id *)
  exit : 'fact array;   (** fact at each block's exit, by block id *)
  steps : int;          (** worklist pops until the fixpoint *)
}

(** Solve to a fixpoint. [max_steps] defaults to [256 * (blocks + 1)] —
    far above what any finite-height monotone analysis needs. *)
val run : ?max_steps:int -> Sdiq_cfg.Cfg.t -> 'fact spec -> 'fact solution
