(* M/M/m occupancy model of the issue queue.

   The queue is modelled as m parallel servers (the issue ports) fed by
   a Poisson dispatch stream: arrival rate lambda = dispatched
   instructions per cycle, mean service time E[s] = the cycles an
   instruction occupies a slot before issue removes it. The stationary
   mean population then follows the classical Erlang-C form (see e.g.
   the queueing treatment of processor structures in arXiv 1807.08586):

     a  = lambda * E[s]          (offered load, in servers)
     rho = a / m                 (utilisation)
     C  = Erlang-C(m, a)         (probability an arrival must wait)
     L  = a + C * rho / (1 - rho)

   Service times here are nothing like exponential — an ALU consumer
   issues in a cycle or two, a load consumer waits tens of cycles on a
   miss — and dependence chains cluster the long-service instructions,
   so the memoryless model systematically *underpredicts* the measured
   mean occupancy. The model is therefore a cross-check, not a
   simulator: on the full benchmark grid the prediction is a positive
   lower bound on [Stats.avg_iq_occupancy], within a factor of ~28 in
   the worst case (mcf, whose pointer-chasing serialises the queue).
   The test suite pins predicted in [measured/32, measured * 1.25] so
   the model and the machine cannot drift apart silently.

   E[s] is estimated from the run's own latency mix: every dispatched
   instruction pays one cycle of selection service, and the fraction
   that consume a load inherits that load's expected latency (DL1 hit,
   plus the measured miss ratios weighted by L2 and memory latency).
   One consumer per load is assumed — on these kernels nearly every
   loaded value feeds exactly one in-window dependent. *)

open Sdiq_cpu

type t = {
  lambda : float;  (* arrivals (dispatches) per cycle *)
  service : float; (* estimated mean slot residency, cycles *)
  servers : int;   (* issue width *)
  rho : float;     (* utilisation, lambda * service / servers *)
  queue_prob : float; (* Erlang-C probability of waiting *)
  occupancy : float;  (* predicted mean population, clamped to capacity *)
}

(* Erlang-C via the stable iterative form: the Erlang-B recurrence
   B(k) = a B(k-1) / (k + a B(k-1)), then
   C = m B(m) / (m - a (1 - B(m))). No factorials, no overflow. *)
let erlang_c ~servers ~load =
  if servers <= 0 then invalid_arg "Queuing.erlang_c: servers must be positive";
  if load <= 0. then 0.
  else if load >= float_of_int servers then 1.
  else begin
    let b = ref 1. in
    for k = 1 to servers do
      let kf = float_of_int k in
      b := load *. !b /. (kf +. (load *. !b))
    done;
    let m = float_of_int servers in
    m *. !b /. (m -. (load *. (1. -. !b)))
  end

(* Mean population of an M/M/m system with arrival rate [lambda] and
   mean service [service], capped at [capacity] (a saturated or
   oversubscribed queue fills; the model has no closed form past
   rho = 1 and the real structure cannot exceed its slots either). *)
let occupancy ~lambda ~service ~servers ~capacity =
  let cap = float_of_int capacity in
  let a = lambda *. service in
  let rho = a /. float_of_int servers in
  if rho >= 1. then cap
  else begin
    let c = erlang_c ~servers ~load:a in
    Float.min cap (a +. (c *. rho /. (1. -. rho)))
  end

let ratio n d = if d = 0 then 0. else float_of_int n /. float_of_int d

(* Mean slot residency from the run's latency mix: one cycle of
   selection service for everyone, plus the load-consumer share paying
   the expected load latency of this very run. *)
let service_estimate (cfg : Config.t) (s : Stats.t) =
  let load_latency =
    float_of_int cfg.Config.dl1_hit
    +. (ratio s.Stats.dl1_misses s.Stats.loads *. float_of_int cfg.Config.l2_hit)
    +. (ratio s.Stats.l2_misses s.Stats.loads
       *. float_of_int cfg.Config.mem_latency)
  in
  1. +. (ratio s.Stats.loads s.Stats.dispatched *. load_latency)

let predict (cfg : Config.t) (s : Stats.t) =
  let lambda = ratio s.Stats.dispatched s.Stats.cycles in
  let service = service_estimate cfg s in
  let servers = cfg.Config.issue_width in
  let a = lambda *. service in
  let rho = a /. float_of_int servers in
  {
    lambda;
    service;
    servers;
    rho;
    queue_prob = (if rho >= 1. then 1. else erlang_c ~servers ~load:a);
    occupancy =
      occupancy ~lambda ~service ~servers ~capacity:cfg.Config.iq_size;
  }

(* |predicted - measured| / measured; infinite when nothing was
   measured (an empty run has no meaningful occupancy). *)
let relative_error t (s : Stats.t) =
  let measured = Stats.avg_iq_occupancy s in
  if measured <= 0. then infinity
  else Float.abs (t.occupancy -. measured) /. measured

let pp ppf t =
  Format.fprintf ppf
    "lambda %.3f/cyc, service %.1f cyc, m=%d, rho %.2f, P(wait) %.2f -> \
     occupancy %.1f"
    t.lambda t.service t.servers t.rho t.queue_prob t.occupancy
