(* Lint waivers: parse, match, and report the stale ones. *)

type t = {
  pass : string;
  proc : string option;
  addr : int option;
  reason : string;
  line : int;
}

let parse content : (t list, string) result =
  let entries = ref [] in
  let error = ref None in
  List.iteri
    (fun idx line ->
      if !error = None then
        let lineno = idx + 1 in
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line <> "" then
          match
            String.split_on_char ' ' line
            |> List.filter (fun s -> s <> "")
          with
          | pass :: proc :: addr :: (_ :: _ as reason) ->
            let proc = if proc = "*" then None else Some proc in
            let addr =
              if addr = "*" then Ok None
              else
                match int_of_string_opt addr with
                | Some a -> Ok (Some a)
                | None ->
                  Error
                    (Fmt.str "line %d: address must be an integer or '*', got %S"
                       lineno addr)
            in
            (match addr with
            | Error e -> error := Some e
            | Ok addr ->
              entries :=
                { pass; proc; addr; reason = String.concat " " reason; line = lineno }
                :: !entries)
          | _ ->
            error :=
              Some
                (Fmt.str
                   "line %d: expected '<pass> <proc|*> <addr|*> <reason...>'"
                   lineno))
    (String.split_on_char '\n' content);
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev !entries)

let load path : (t list, string) result =
  match In_channel.with_open_text path In_channel.input_all with
  | content -> parse content
  | exception Sys_error e -> Error e

let matches w (f : Finding.t) =
  w.pass = f.Finding.pass
  && (match w.proc with None -> true | Some p -> p = f.Finding.proc)
  && match w.addr with None -> true | Some a -> f.Finding.addr = Some a

let apply waivers findings =
  let used = Array.make (List.length waivers) false in
  let kept =
    List.filter
      (fun (f : Finding.t) ->
        match f.Finding.severity with
        | Finding.Info -> true
        | Finding.Error | Finding.Warning ->
          let waived = ref false in
          List.iteri
            (fun i w ->
              if matches w f then begin
                used.(i) <- true;
                waived := true
              end)
            waivers;
          not !waived)
      findings
  in
  let unused =
    List.filteri (fun i _ -> not used.(i)) waivers
  in
  (kept, unused)
