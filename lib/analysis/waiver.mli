(** Lint waivers: acknowledged findings suppressed by an audit trail.

    A waiver file is line-oriented; blank lines and [#] comments are
    ignored. Each entry is

    {v <pass> <proc> <addr> <reason...> v}

    where [pass] names the finding's pass (exactly as printed, e.g.
    [improved/soundness]), [proc] is the procedure name or [*], [addr]
    is the anchor address or [*], and the rest of the line is the
    mandatory human reason. A waiver suppresses matching [Error] and
    [Warning] findings ([Info] findings are facts, not complaints);
    waivers that match nothing are reported so stale entries cannot
    linger. *)

type t = {
  pass : string;
  proc : string option;  (** [None] = any procedure *)
  addr : int option;     (** [None] = any address *)
  reason : string;
  line : int;            (** 1-based line in the waiver file *)
}

(** Parse waiver-file content. [Error] carries a message naming the
    offending line. *)
val parse : string -> (t list, string) result

(** Read and parse a waiver file. *)
val load : string -> (t list, string) result

val matches : t -> Finding.t -> bool

(** [apply waivers findings] is [(kept, unused)]: the findings that
    survive (waived errors and warnings removed) and the waivers that
    matched nothing. *)
val apply : t list -> Finding.t list -> Finding.t list * t list
