(* Annotation-soundness audit.

   The audit re-derives the region anchors the analysis must annotate —
   mirroring [Procedure.analyze_proc]'s placement rules — and, for each,
   an independent lower bound on the IQ entries required:

   - DAG blocks: the pseudo-issue-queue schedule of the block itself
     (Section 4.2); the annotation may be widened by slack or the
     interprocedural refinement but never below this.
   - Loop headers and re-entry blocks: the maximum CDS-derived need over
     every enumerated acyclic header-to-header path (Section 4.3). The
     flattened whole-body need the analysis also considers is an
     over-approximation, not a requirement, so it is not part of the
     bound.
   - Library-call sites: the full queue (Section 4.4) — the callee is
     opaque, nothing smaller is sound.

   Bounds are computed with slack = 0 and the interprocedural refinement
   off: both knobs only ever widen annotations. *)

open Sdiq_isa
module Cfg = Sdiq_cfg.Cfg
module Loops = Sdiq_cfg.Loops
module Regions = Sdiq_cfg.Regions
module Options = Sdiq_core.Options
module Procedure = Sdiq_core.Procedure

type bound = {
  anchor : int;
  kind : string;
  blocks : int list;
  need : int;
  required : int;
  paths_examined : int;
  trip_bound : int option;
}

(* The floor every annotation is clamped to (Procedure.clamp with
   slack 0): two slots so dispatch never serialises behind every issue
   (the paper's Figure 1(d) argument). *)
let clamp opts v = max 2 (min opts.Options.iq_size v)

let bounds_of_proc ?(opts = Options.default) ?tripcounts (prog : Prog.t)
    (proc : Prog.proc) : bound list =
  let opts = { opts with Options.slack = 0; interprocedural = false } in
  let cfg = Cfg.build prog proc in
  let regions = Regions.decompose cfg in
  let bounds = ref [] in
  let add ?(paths = 0) ?trip ~kind ~blocks anchor need =
    bounds :=
      {
        anchor;
        kind;
        blocks;
        need;
        required = clamp opts need;
        paths_examined = paths;
        trip_bound = trip;
      }
      :: !bounds
  in
  let callee_of_block (blk : Cfg.block) =
    let term = Prog.instr prog blk.Cfg.last in
    if term.Instr.op = Opcode.Call then Prog.proc_of_addr prog term.Instr.target
    else None
  in
  let library_call_bound (blk : Cfg.block) =
    match callee_of_block blk with
    | Some callee when callee.Prog.is_library ->
      add ~kind:"library-call" ~blocks:[ blk.Cfg.id ] blk.Cfg.last
        opts.Options.iq_size
    | Some _ | None -> ()
  in
  List.iter
    (fun region ->
      match region with
      | Regions.Dag block_ids ->
        List.iter
          (fun id ->
            let blk = cfg.Cfg.blocks.(id) in
            let instrs = Array.of_list (Cfg.instrs cfg blk) in
            let r = Sdiq_core.Pseudo_iq.analyze ~opts instrs in
            add ~kind:"dag-block" ~blocks:[ id ] blk.Cfg.first
              r.Sdiq_core.Pseudo_iq.need;
            library_call_bound blk)
          block_ids
      | Regions.Loop loop ->
        (* The binding requirement over every enumerated acyclic path;
           ties broken towards the first enumeration, like the analysis. *)
        let paths = Sdiq_core.Loop_need.loop_paths cfg loop in
        let worst =
          List.fold_left
            (fun acc path ->
              let body =
                Array.of_list
                  (List.concat_map
                     (fun id -> Cfg.instrs cfg cfg.Cfg.blocks.(id))
                     path)
              in
              let r = Sdiq_core.Loop_need.analyze_body ~opts body in
              match acc with
              | Some (n, _) when n >= r.Sdiq_core.Loop_need.need -> acc
              | _ -> Some (r.Sdiq_core.Loop_need.need, path))
            None paths
        in
        let need, path =
          match worst with
          | Some (n, p) -> (n, p)
          | None -> (1, [ loop.Loops.header ])
        in
        (* Trip-count refinement: a loop provably bounded to [t] header
           executions dispatches at most [t * max_path_len] of its own
           instructions per entry, so a window that admits them all at
           once can never throttle it — the CDS steady-state need
           assumed unbounded iteration overlap. Only sound when the
           path enumeration was complete, which {!Tripcount} already
           requires before it grants a bound. *)
        let trip =
          match tripcounts with
          | None -> None
          | Some tc -> Hashtbl.find_opt tc loop.Loops.header
        in
        let need =
          match trip with
          | None -> need
          | Some t ->
            let max_path_len =
              List.fold_left
                (fun acc p ->
                  max acc
                    (List.fold_left
                       (fun n id -> n + Cfg.block_len cfg.Cfg.blocks.(id))
                       0 p))
                1 paths
            in
            let cap =
              if t >= 10_000 || max_path_len >= 10_000 then max_int
              else t * max_path_len
            in
            min need cap
        in
        let header = cfg.Cfg.blocks.(loop.Loops.header) in
        add
          ~paths:(List.length paths)
          ?trip ~kind:"loop-header" ~blocks:path header.Cfg.first need;
        (* Re-entry blocks: control left the loop's own region (an inner
           loop ran, or a call returned) and the window must be
           re-established at no less than the loop's requirement. *)
        let own = loop.Loops.own in
        let in_inner id =
          Loops.Iset.mem id loop.Loops.body && not (Loops.Iset.mem id own)
        in
        List.iter
          (fun id ->
            let blk = cfg.Cfg.blocks.(id) in
            let follows_call =
              blk.Cfg.first > proc.Prog.entry
              && (Prog.instr prog (blk.Cfg.first - 1)).Instr.op = Opcode.Call
            in
            let after_inner_loop =
              List.exists in_inner (Cfg.preds cfg id)
            in
            if id <> loop.Loops.header && (follows_call || after_inner_loop)
            then
              add
                ~paths:(List.length paths)
                ?trip ~kind:"loop-reentry" ~blocks:path blk.Cfg.first need;
            library_call_bound blk)
          (Regions.blocks regions region))
    regions.Regions.regions;
  (* Collapse to one obligation per anchor: the largest requirement
     wins, exactly as the analysis merges colliding annotations. *)
  let by_anchor = Hashtbl.create 16 in
  List.iter
    (fun b ->
      match Hashtbl.find_opt by_anchor b.anchor with
      | Some prev when prev.required >= b.required -> ()
      | _ -> Hashtbl.replace by_anchor b.anchor b)
    !bounds;
  Hashtbl.fold (fun _ b acc -> b :: acc) by_anchor []
  |> List.sort (fun a b -> compare a.anchor b.anchor)

let audit ?(opts = Options.default) ?tripcounts_of (prog : Prog.t)
    (annotations : Procedure.annotation list) : Finding.t list =
  let ann = Sdiq_core.Annotate.annotation_map annotations in
  let findings = ref [] in
  let anchors = ref 0 in
  let min_slack = ref max_int in
  List.iter
    (fun (p : Prog.proc) ->
      if (not p.Prog.is_library) && p.Prog.len > 0 then
        let tripcounts =
          match tripcounts_of with None -> None | Some f -> Some (f p)
        in
        List.iter
          (fun b ->
            incr anchors;
            match ann b.anchor with
            | None ->
              findings :=
                Finding.make ~proc:p.Prog.name ~addr:b.anchor
                  ~blocks:b.blocks Finding.Error ~pass:"soundness"
                  (Fmt.str
                     "%s anchor has no annotation: the region needs %d IQ \
                      entries but inherits whatever window precedes it"
                     b.kind b.required)
                :: !findings
            | Some v ->
              min_slack := min !min_slack (v - b.required);
              if v < b.required then
                findings :=
                  Finding.make ~proc:p.Prog.name ~addr:b.anchor
                    ~blocks:b.blocks Finding.Error ~pass:"soundness"
                    (Fmt.str
                       "%s annotated %d < required %d (raw need %d, slack \
                        %d)%s: a window this small can delay the critical \
                        path"
                       b.kind v b.required b.need (v - b.required)
                       (if b.paths_examined > 0 then
                          Fmt.str " on the shown path (of %d examined)"
                            b.paths_examined
                        else ""))
                  :: !findings)
          (bounds_of_proc ~opts ?tripcounts prog p))
    prog.Prog.procs;
  let summary =
    Finding.make Finding.Info ~pass:"soundness"
      (Fmt.str
         "audited %d region anchors; every annotation >= its static bound%s"
         !anchors
         (if !min_slack = max_int then ""
          else Fmt.str " (min slack %d)" !min_slack))
  in
  if Finding.is_clean !findings then summary :: List.rev !findings
  else List.rev !findings
