(** Interprocedural register-effect summaries.

    For each procedure: [uses] — registers that may be read before any
    definition along some path through it (its own code and, transitively,
    its callees); [defs] — registers defined on {e every} path to a [Ret]
    (must-defs, transitively through calls).

    Call sites consume summaries in the conservative direction for each
    client: liveness replaces "a call reads everything" with
    [uses(callee) ∪ (live_after \ defs(callee))]; the use-before-def lint
    replaces "a call defines everything" with [defs(callee)] and can also
    check the callee's [uses] against what the caller has defined.

    Cycles in the call graph are handled by a round-robin fixpoint:
    [uses] only grows and [defs] only shrinks, so it terminates. An
    unresolvable or empty callee degrades to the opaque assumption
    ([uses] = everything, [defs] = nothing). *)

type t = {
  uses : Regset.t;
  defs : Regset.t;
}

(** The opaque assumption for unknown callees. *)
val opaque : t

(** Summaries for every procedure with code, keyed by entry address. *)
val of_program : Sdiq_isa.Prog.t -> (int, t) Hashtbl.t

(** Lookup adapter for call sites: the summary of the procedure entered
    at the given address, or {!opaque}. *)
val at : (int, t) Hashtbl.t -> int -> t
