(* Backward liveness: a may-analysis (union join, empty initial fact) on
   the generic engine. The block transfer walks instructions in reverse,
   which is also exposed as [fold_block] so consumers see the same facts
   the fixpoint used. *)

open Sdiq_isa
module Cfg = Sdiq_cfg.Cfg

type t = {
  cfg : Cfg.t;
  live_in : Regset.t array;
  live_out : Regset.t array;
  call_effect : int -> Summary.t;
}

let opaque_effect _ = Summary.opaque

let step_instr ?(call_effect = opaque_effect) (i : Instr.t) live_after =
  if i.Instr.op = Opcode.Halt then
    (* Execution stops: nothing after a Halt can read anything, whatever
       the block-exit boundary says. *)
    Regset.empty
  else if i.Instr.op = Opcode.Call then
    (* The callee reads its uses; whatever it must-defines is reborn
       there, so the caller's obligation for those ends here. *)
    let s = call_effect i.Instr.target in
    Regset.union s.Summary.uses (Regset.diff live_after s.Summary.defs)
  else
    let live =
      match Instr.dest i with
      | Some r -> Regset.remove r live_after
      | None -> live_after
    in
    List.fold_left (fun acc r -> Regset.add r acc) live (Instr.sources i)

let block_transfer ~call_effect cfg b live_out =
  let instrs = Cfg.instrs cfg cfg.Cfg.blocks.(b) in
  List.fold_left
    (fun live i -> step_instr ~call_effect i live)
    live_out (List.rev instrs)

let compute ?(exit_boundary = Regset.full) ?summaries (cfg : Cfg.t) : t =
  let call_effect =
    match summaries with
    | None -> opaque_effect
    | Some table -> Summary.at table
  in
  let spec =
    {
      Dataflow.name = "liveness";
      direction = Dataflow.Backward;
      boundary = exit_boundary;
      init = Regset.empty;
      join = Regset.union;
      equal = Regset.equal;
      transfer = block_transfer ~call_effect cfg;
    }
  in
  let sol = Dataflow.run cfg spec in
  {
    cfg;
    live_in = sol.Dataflow.entry;
    live_out = sol.Dataflow.exit;
    call_effect;
  }

let fold_block t b ~init ~f =
  let blk = t.cfg.Cfg.blocks.(b) in
  let addrs = List.rev (Cfg.block_addrs blk) in
  let acc, _ =
    List.fold_left
      (fun (acc, live_after) addr ->
        let i = Sdiq_isa.Prog.instr t.cfg.Cfg.prog addr in
        let live_before =
          step_instr ~call_effect:t.call_effect i live_after
        in
        (f acc ~addr i ~live_before ~live_after, live_before))
      (init, t.live_out.(b))
      addrs
  in
  acc
