(* Wrong-path-aware lints over the delivered binary.

   All four checks work on the artifact alone — anchors are read from
   the instruction stream, reachability is recomputed from the entry
   point — so a delivery bug cannot hide behind the annotation list
   that produced it. *)

open Sdiq_isa

let window_of (i : Instr.t) =
  if i.Instr.op = Opcode.Iqset then Some i.Instr.imm else i.Instr.tag

(* Architectural reachability over instruction addresses. [Ret] has no
   static successor: returns land on call fall-throughs, which the
   [Call] case already covers. *)
let arch_reachable (prog : Prog.t) : bool array =
  let len = Prog.length prog in
  let seen = Array.make len false in
  let rec go addr =
    if addr >= 0 && addr < len && not seen.(addr) then begin
      seen.(addr) <- true;
      let i = Prog.instr prog addr in
      match i.Instr.op with
      | Opcode.Halt | Opcode.Ret -> ()
      | Opcode.Jmp -> go i.Instr.target
      | Opcode.Call ->
        go i.Instr.target;
        go (addr + 1)
      | op when Opcode.is_cond_branch op ->
        go i.Instr.target;
        go (addr + 1)
      | _ -> go (addr + 1)
    end
  in
  go prog.Prog.entry;
  seen

let check (prog : Prog.t) : Finding.t list =
  let len = Prog.length prog in
  let findings = ref [] in
  let add ?proc ?addr sev ~pass msg =
    findings := Finding.make ?proc ?addr sev ~pass msg :: !findings
  in
  let proc_name addr =
    Option.map (fun (p : Prog.proc) -> p.Prog.name) (Prog.proc_of_addr prog addr)
  in
  let reach = arch_reachable prog in
  let anchor = Array.make len None in
  for addr = 0 to len - 1 do
    anchor.(addr) <- window_of (Prog.instr prog addr)
  done;

  (* Anchors the architecture never executes. *)
  for addr = 0 to len - 1 do
    match anchor.(addr) with
    | Some w when not reach.(addr) ->
      if addr > 0 && reach.(addr - 1) then
        add ?proc:(proc_name addr) ~addr Finding.Warning ~pass:"wp-only-anchor"
          (Fmt.str
             "anchor (window %d) is unreachable architecturally but sits in \
              the fetch shadow of live code: it executes only on wrong \
              paths, resizing the queue for a region that does not exist"
             w)
      else
        add ?proc:(proc_name addr) ~addr Finding.Info ~pass:"dead-anchor"
          (Fmt.str "anchor (window %d) is unreachable and never fetched" w)
    | _ -> ()
  done;

  (* Delivery-map entries that can never govern a dispatch. *)
  for addr = 0 to len - 1 do
    let i = Prog.instr prog addr in
    if i.Instr.op = Opcode.Iqset then begin
      if i.Instr.tag <> None then
        add ?proc:(proc_name addr) ~addr Finding.Warning ~pass:"shadowed-entry"
          "Iqset also carries a tag: one of the two windows is dead on \
           arrival";
      if addr + 1 < len && anchor.(addr + 1) <> None then
        add ?proc:(proc_name addr) ~addr Finding.Warning ~pass:"shadowed-entry"
          (Fmt.str
             "Iqset #%d is immediately superseded by the anchor at %d: its \
              window governs no dispatch, its fetch cost remains"
             i.Instr.imm (addr + 1))
    end
  done;

  (* Mispredict-resume points that inherit a narrower window than their
     region's entry granted. The window carried across an edge is the
     nearest preceding anchor's, within the same procedure — the
     straight-line approximation of the dispatch-time policy state. *)
  let nearest_anchor addr =
    match Prog.proc_of_addr prog addr with
    | None -> None
    | Some p ->
      let rec back a =
        if a < p.Prog.entry then None
        else
          match anchor.(a) with
          | Some w -> Some (a, w)
          | None -> back (a - 1)
      in
      back addr
  in
  for src = 0 to len - 1 do
    let i = Prog.instr prog src in
    if Instr.is_cond_branch i && reach.(src) then
      List.iter
        (fun t ->
          if t >= 0 && t < len && anchor.(t) = None then
            match (nearest_anchor src, nearest_anchor t) with
            | Some (sa, carried), Some (a, granted)
              when sa <> a && carried < granted ->
              add ?proc:(proc_name src) ~addr:src Finding.Info
                ~pass:"squash-stale-window"
                (Fmt.str
                   "resume point %d lies in the region anchored at %d \
                    (window %d) but inherits window %d across this edge: \
                    after a mispredict here the squash restores the \
                    narrower window"
                   t a granted carried)
            | _ -> ())
        [ i.Instr.target; src + 1 ]
  done;
  List.sort Finding.compare !findings
