(* The five configurations the paper evaluates, plus the tightened
   optimizer configuration grown on top of them.

   Baseline  — unmodified binary, 80-entry queue, no resizing.
   Noop      — compiler analysis delivered via special NOOPs (Section 5.2).
   Extension — same analysis, delivered via instruction tags (Section 5.3).
   Improved  — Extension plus interprocedural FU contention analysis.
   Abella    — the hardware-adaptive IqRob64 comparison point.
   Tightened — the audit's own (trip-count refined) minimal windows,
               delivered via tags; [all] keeps the paper's five so the
               pinned golden grid stays the paper's grid, [extended]
               adds this one. *)

open Sdiq_isa

type t =
  | Baseline
  | Noop
  | Extension
  | Improved
  | Abella
  | Tightened

let all = [ Baseline; Noop; Extension; Improved; Abella ]
let extended = all @ [ Tightened ]

let name = function
  | Baseline -> "baseline"
  | Noop -> "noop"
  | Extension -> "extension"
  | Improved -> "improved"
  | Abella -> "abella"
  | Tightened -> "tightened"

(* The binary actually loaded into the machine. *)
let prepare t (prog : Prog.t) : Prog.t =
  match t with
  | Baseline | Abella -> prog
  | Noop -> fst (Sdiq_core.Annotate.noop prog)
  | Extension -> fst (Sdiq_core.Annotate.extension prog)
  | Improved -> fst (Sdiq_core.Annotate.improved prog)
  | Tightened -> fst (Sdiq_analysis.Tighten.apply Sdiq_core.Annotate.Tagged prog)

(* A fresh policy instance for one run. *)
let policy t : Sdiq_cpu.Policy.t =
  match t with
  | Baseline -> Sdiq_cpu.Policy.unlimited
  | Noop | Extension | Improved | Tightened -> Sdiq_cpu.Policy.software ()
  | Abella -> Sdiq_cpu.Policy.abella ()

(* The region-map delivery whose running binary matches [prepare]. *)
let delivery t : Sdiq_obs.Region.delivery =
  match t with
  | Baseline | Abella -> Sdiq_obs.Region.Plain
  | Noop -> Sdiq_obs.Region.Noop
  | Extension -> Sdiq_obs.Region.Tagged { improved = false }
  | Improved -> Sdiq_obs.Region.Tagged { improved = true }
  | Tightened -> Sdiq_obs.Region.Tightened
