(* Time-resolved view of a run: sample the machine every [interval] cycles
   while it executes. This is what exposes the adaptive scheme's sensing
   lag against program phases (the paper's Section 1 argument) and makes
   occupancy behaviour plottable. *)

type sample = {
  cycle : int;
  committed : int;
  iq_occupancy : int;
  iq_banks_on : int;
  iq_active_size : int;
  policy_limit : int;
  rf_live : int;
}

type t = {
  samples : sample list; (* oldest first *)
  stats : Sdiq_cpu.Stats.t;
}

let sample_of (p : Sdiq_cpu.Pipeline.t) : sample =
  {
    cycle = p.Sdiq_cpu.Pipeline.cycle;
    committed = p.Sdiq_cpu.Pipeline.stats.Sdiq_cpu.Stats.committed;
    iq_occupancy = Sdiq_cpu.Iq.occupancy p.Sdiq_cpu.Pipeline.iq;
    iq_banks_on = Sdiq_cpu.Iq.banks_on p.Sdiq_cpu.Pipeline.iq;
    iq_active_size = Sdiq_cpu.Iq.active_size p.Sdiq_cpu.Pipeline.iq;
    policy_limit =
      Sdiq_cpu.Policy.current_limit p.Sdiq_cpu.Pipeline.policy
        p.Sdiq_cpu.Pipeline.iq;
    rf_live = Sdiq_cpu.Regfile.live_count p.Sdiq_cpu.Pipeline.int_rf;
  }

(* Run [bench] under [technique], sampling every [interval] cycles. The
   sampler is an ordinary per-cycle sink on the pipeline's event bus —
   it rides alongside any other observer rather than owning the step
   loop. *)
let record ?(config = Sdiq_cpu.Config.default) ?(interval = 200)
    ?(max_insns = 50_000) (bench : Sdiq_workloads.Bench.t)
    (technique : Technique.t) : t =
  let prog = Technique.prepare technique bench.Sdiq_workloads.Bench.prog in
  let policy = Technique.policy technique in
  let p = Sdiq_cpu.Pipeline.create ~config ~policy prog in
  bench.Sdiq_workloads.Bench.init p.Sdiq_cpu.Pipeline.exec;
  let samples = ref [] in
  let next = ref 0 in
  Sdiq_cpu.Pipeline.on_cycle_end ~name:"timeline-sampler" p (fun p ->
      if p.Sdiq_cpu.Pipeline.cycle >= !next then begin
        next := p.Sdiq_cpu.Pipeline.cycle + interval;
        samples := sample_of p :: !samples
      end);
  ignore (Sdiq_cpu.Pipeline.run ~max_insns p : Sdiq_cpu.Stats.t);
  { samples = List.rev !samples; stats = p.Sdiq_cpu.Pipeline.stats }

(* CSV with a header row, one line per sample. *)
let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "cycle,committed,iq_occupancy,iq_banks_on,iq_active_size,policy_limit,rf_live\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%d,%d,%d,%d,%d\n" s.cycle s.committed
           s.iq_occupancy s.iq_banks_on s.iq_active_size
           (min s.policy_limit 9999) s.rf_live))
    t.samples;
  Buffer.contents buf

let pp ppf t =
  Fmt.pf ppf "%8s %9s %7s %7s %8s %7s@." "cycle" "committed" "occ" "banks"
    "limit" "rf";
  List.iter
    (fun s ->
      Fmt.pf ppf "%8d %9d %7d %7d %8d %7d@." s.cycle s.committed
        s.iq_occupancy s.iq_banks_on (min s.policy_limit 9999) s.rf_live)
    t.samples
