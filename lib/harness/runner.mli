(** Experiment runner: simulate (benchmark x technique) pairs, memoised,
    so every figure reads from one simulation campaign. The campaign runs
    in parallel on a {!Sdiq_util.Pool} of OCaml domains; each pair's
    simulation is pure given the runner's config, so the resulting table
    is identical whatever the domain count. *)

type t

(** Summary of the last {!run_all} campaign. [serial_estimate_s] is the
    sum of every pair's own wall-clock time — what a 1-domain campaign
    would have cost — so [speedup] compares against serial execution
    without running it. *)
type campaign = {
  pairs_total : int;  (** size of the (benchmark x technique) grid *)
  pairs_run : int;  (** pairs actually simulated (not already memoised) *)
  domains_used : int;
  wall_s : float;
  serial_estimate_s : float;
}

val create :
  ?config:Sdiq_cpu.Config.t ->
  ?sched:Sdiq_cpu.Sched.t ->
  ?budget:int ->
  ?benches:Sdiq_workloads.Bench.t list ->
  ?domains:int ->
  ?checker:(unit -> Sdiq_cpu.Pipeline.t -> unit) ->
  ?sample_config:Sampling.config ->
  unit ->
  t
(** [sched] is the runner's default select/wakeup scheduler policy for
    every run (default: the config's own [sched]); the per-run [?sched]
    arguments of {!run}, {!run_sampled} and {!profile} override it, and
    the override enters the memo key, so one runner serves a whole
    (benchmark x technique x sched) policy grid.

    [domains] sizes the campaign pool (default
    [Domain.recommended_domain_count ()]); [~domains:1] forces a serial
    campaign.

    [checker] is a per-run observer {e factory}: it is invoked once per
    simulation (possibly on a worker domain) and the resulting hook is
    installed as the pipeline's [?checker], so each run gets fresh,
    domain-local observer state. Pass
    [Sdiq_check.Checker.fresh_hook] to audit every campaign cycle. *)

val bench_names : t -> string list

val domains : t -> int
(** Domains {!run_all} will use. *)

(** Raises [Invalid_argument] on an unknown name; the message lists the
    known benchmark names. *)
val find_bench : t -> string -> Sdiq_workloads.Bench.t

(** Run one pair (cached). [?sched] overrides the runner's scheduler
    policy for this run; distinct policies memoise separately. *)
val run : ?sched:Sdiq_cpu.Sched.t -> t -> string -> Technique.t -> Sdiq_cpu.Stats.t

(** Populate the whole (benchmark x technique) table, in parallel across
    the runner's domain pool. Already-memoised pairs are not re-run. *)
val run_all : t -> unit

(** Run one pair under SMARTS sampling ({!Sampling.sample}): the whole
    program, fast-forwarded between detailed windows — memoised
    separately from {!run}'s detailed table. The runner's [checker]
    hook, if any, audits every detailed cycle of every window. *)
val run_sampled :
  ?sched:Sdiq_cpu.Sched.t -> t -> string -> Technique.t -> Sampling.result

(** Populate the whole sampled (benchmark x technique) table in
    parallel, with the same disjoint-slot discipline as {!run_all}:
    the table is identical whatever the domain count. *)
val run_all_sampled : t -> unit

(** Region-attribution profile of one pair, memoised separately from
    {!run}'s table: a profiled pair is a {e dedicated} simulation with
    a ["region-profiler"] sink attached, never a warm cache hit — so
    conservation tests compare two independent executions. *)
val profile :
  ?sched:Sdiq_cpu.Sched.t -> t -> string -> Technique.t -> Sdiq_obs.Profiler.t

(** Profile the (benchmark x [techniques]) grid (default: all five) in
    parallel across the runner's pool. Returns every pair in grid
    order plus the campaign-wide merge of their metric registries;
    both are byte-identical whatever the domain count. *)
val profile_all :
  ?techniques:Technique.t list ->
  t ->
  (string * Technique.t * Sdiq_obs.Profiler.t) list * Sdiq_obs.Metrics.t

val campaign_stats : t -> campaign option
(** Stats of the most recent {!run_all} ([None] before the first). *)

val speedup : campaign -> float
(** [serial_estimate_s /. wall_s]. *)

val pp_campaign : Format.formatter -> campaign -> unit

(** Savings of a technique against the same benchmark's baseline. *)
val savings :
  ?params:Sdiq_power.Params.t -> ?sched:Sdiq_cpu.Sched.t -> t -> string ->
  Technique.t -> Sdiq_power.Report.t

(** The "nonEmpty" saving on a benchmark's baseline run. *)
val non_empty_saving : ?params:Sdiq_power.Params.t -> t -> string -> float
