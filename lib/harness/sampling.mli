(** SMARTS-style sampled simulation: systematic periods of functional
    fast-forward ({!Sdiq_cpu.Pipeline.fast_forward}), detailed-but-
    unmeasured warmup, and one measured window whose statistics deltas
    feed a ratio estimator with Student-t confidence intervals.

    A sampled run is a pure function of (program, config): periods are
    placed deterministically, so results are identical on any domain
    count. Estimates carry a conservative relative-CI floor (15% of the
    mean below 30 windows, 2% from 30) — see DESIGN.md §13 for when a
    sampled figure is trustworthy. *)

type config = {
  ff_len : int;      (** fast-forwarded instructions per period *)
  warmup_len : int;  (** detailed, unmeasured instructions *)
  window_len : int;  (** detailed, measured instructions *)
}

(** 46k / 2k / 2k: 8% of the stream detailed, 4% measured. *)
val default : config

(** [ff_len + warmup_len + window_len]. *)
val period : config -> int

type estimate = {
  mean : float;     (** combined ratio estimate, Σx / Σy *)
  ci_half : float;  (** 95% CI half-width, conservative floor applied *)
  n : int;          (** measured windows *)
}

(** Is [v] inside the interval [mean ± ci_half]? *)
val contains : estimate -> float -> bool

(** [estimate xs ys]: the combined ratio Σx/Σy with a Student-t 95%
    interval over the per-window ratios, widened to the conservative
    floor. With fewer than two windows the half-width is [|mean|]. *)
val estimate : float array -> float array -> estimate

type result = {
  total_insns : int;     (** oracle instructions executed end to end *)
  detailed_insns : int;  (** instructions committed in measured windows *)
  windows : int;
  window_stats : Sdiq_cpu.Stats.t;  (** sum of the window deltas *)
  ipc : estimate;
  wakeups_per_insn : estimate;  (** gated wakeups per committed instr *)
  energy_per_insn : estimate;
      (** technique-view IQ energy (dynamic + static) per committed
          instr, priced with [params] *)
}

(** Sample a freshly built pipeline (policy installed, memory
    initialised, not yet stepped) to completion, or until the oracle has
    executed [max_insns] instructions. Raises
    {!Sdiq_cpu.Pipeline.Simulation_limit} if a detailed phase stops
    making progress. *)
val sample :
  ?config:config ->
  ?params:Sdiq_power.Params.t ->
  ?max_insns:int ->
  Sdiq_cpu.Pipeline.t ->
  result

(** [detailed_insns / total_insns] (0 on an empty run). *)
val detailed_fraction : result -> float

val pp : Format.formatter -> result -> unit
