(* SMARTS-style sampled simulation (Wunderlich et al., ISCA 2003,
   adapted to this machine).

   The run alternates three phases per sampling period:

     fast-forward (ff_len instructions)   — functional only: the oracle
         executes and the long-lived microarchitectural state (branch
         predictor, BTB, RAS, caches, policy regions) is trained exactly
         as detailed fetch would train it ([Pipeline.fast_forward]);
     warmup (warmup_len instructions)     — detailed simulation, not
         measured: the short-lived state (IQ/ROB contents, in-flight
         misses, rename maps) re-converges before measurement;
     window (window_len instructions)     — detailed and measured: the
         statistics deltas over the window are one sample.

   Periods are systematic (fixed length, deterministically placed), so a
   sampled run is a pure function of (program, config) — identical on
   any domain count — and the per-window deltas feed a ratio estimator
   with a Student-t confidence interval.

   Estimator: for a per-instruction quantity with window numerators
   x_j and denominators y_j (e.g. cycles over committed for CPI), the
   point estimate is the combined ratio (Σx)/(Σy) and the CI half-width
   is t_{0.975,n-1} · s/√n over the per-window ratios x_j/y_j, widened
   by a conservative floor (15% of the mean below 30 windows, 2%
   otherwise) — sampled figures are estimates and are never reported
   tighter than the methodology supports. *)

open Sdiq_cpu
module Spanlog = Sdiq_util.Spanlog

type config = {
  ff_len : int;
  warmup_len : int;
  window_len : int;
}

let default = { ff_len = 46_000; warmup_len = 2_000; window_len = 2_000 }

let period c = c.ff_len + c.warmup_len + c.window_len

type estimate = {
  mean : float;
  ci_half : float;
  n : int;
}

let contains e v = Float.abs (v -. e.mean) <= e.ci_half

type result = {
  total_insns : int;
  detailed_insns : int;
  windows : int;
  window_stats : Stats.t;
  ipc : estimate;
  wakeups_per_insn : estimate;
  energy_per_insn : estimate;
}

(* Two-sided 95% Student-t quantiles, df 1..30; 1.96 beyond. *)
let t_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_quantile ~df =
  if df <= 0 then t_table.(0)
  else if df <= 30 then t_table.(df - 1)
  else 1.96

(* Ratio estimate over windows: numerators [xs], denominators [ys]. *)
let estimate xs ys =
  let n = Array.length xs in
  let sx = Array.fold_left ( +. ) 0. xs in
  let sy = Array.fold_left ( +. ) 0. ys in
  let mean = if sy = 0. then 0. else sx /. sy in
  if n < 2 then { mean; ci_half = Float.abs mean; n }
  else begin
    let r = Array.init n (fun j -> if ys.(j) = 0. then 0. else xs.(j) /. ys.(j)) in
    let rbar = Array.fold_left ( +. ) 0. r /. float_of_int n in
    let ss =
      Array.fold_left (fun acc v -> acc +. ((v -. rbar) ** 2.)) 0. r
    in
    let sd = sqrt (ss /. float_of_int (n - 1)) in
    let ci = t_quantile ~df:(n - 1) *. sd /. sqrt (float_of_int n) in
    let floor_frac = if n < 30 then 0.15 else 0.02 in
    { mean; ci_half = Float.max ci (floor_frac *. Float.abs mean); n }
  end

(* Detailed simulation until [insns] more instructions commit (or the
   machine drains). *)
let run_detailed (p : Pipeline.t) insns =
  let target = p.Pipeline.stats.Stats.committed + insns in
  (* Generous progress guard: a phase this short cannot legitimately
     need 1000 cycles per instruction. *)
  let deadline = p.Pipeline.cycle + (insns * 1000) + 1_000_000 in
  while
    (not (Pipeline.drained p))
    && p.Pipeline.stats.Stats.committed < target
  do
    if p.Pipeline.cycle >= deadline then
      raise
        (Pipeline.Simulation_limit
           (Printf.sprintf "Sampling: no progress toward %d commits at \
                            cycle %d" target p.Pipeline.cycle));
    Pipeline.step_cycle p
  done

(* Technique-view IQ energy (dynamic + static) of a stats delta. *)
let window_energy params (delta : Stats.t) =
  let e = Sdiq_power.Iq_power.technique params delta in
  e.Sdiq_power.Iq_power.dynamic +. e.Sdiq_power.Iq_power.static_

(* Sample one prepared pipeline to completion. The caller has built it
   (policy installed, memory initialised) but not stepped it. *)
let sample ?(config = default) ?(params = Sdiq_power.Params.default)
    ?(max_insns = max_int) (p : Pipeline.t) : result =
  if config.ff_len < 0 || config.warmup_len < 0 || config.window_len <= 0
  then invalid_arg "Sampling.sample: bad config";
  let num_cycles = ref [] and num_committed = ref [] in
  let num_gated = ref [] and num_energy = ref [] in
  let window_stats = Stats.create () in
  let windows = ref 0 in
  let finished () =
    Pipeline.drained p || p.Pipeline.exec.Sdiq_isa.Exec.steps >= max_insns
  in
  while not (finished ()) do
    (* Fast-forward through the bulk of the period... The phase spans
       are host-side telemetry only (Sdiq_util.Spanlog): one atomic
       load each when tracing is off, and never anything that touches
       the simulated machine, so sampled estimates are bit-identical
       with tracing on. The warmup/window guard is the post-drain check
       — once fast-forward starts, the period runs to completion even
       if the instruction budget is crossed mid-ff, exactly as before
       the spans were added (window geometry is part of the result). *)
    let in_period = ref false in
    Spanlog.with_span "sample.ff" (fun () ->
        Pipeline.drain p;
        if not (finished ()) then begin
          in_period := true;
          ignore (Pipeline.fast_forward p ~insns:config.ff_len : int)
        end);
    if !in_period then begin
      (* ...then resume detailed simulation: unmeasured warmup first, *)
      Spanlog.with_span "sample.warmup" (fun () ->
          Pipeline.set_fetch_hold p false;
          run_detailed p config.warmup_len);
      (* ...and one measured window. *)
      let before = Stats.copy p.Pipeline.stats in
      Spanlog.with_span "sample.window" (fun () ->
          run_detailed p config.window_len);
      let delta = Stats.diff p.Pipeline.stats before in
      if delta.Stats.committed > 0 then begin
        incr windows;
        Stats.add window_stats delta;
        num_cycles := float_of_int delta.Stats.cycles :: !num_cycles;
        num_committed := float_of_int delta.Stats.committed :: !num_committed;
        num_gated :=
          float_of_int delta.Stats.iq_wakeups_gated :: !num_gated;
        num_energy := window_energy params delta :: !num_energy
      end
    end
  done;
  let cyc = Array.of_list (List.rev !num_cycles) in
  let com = Array.of_list (List.rev !num_committed) in
  let gat = Array.of_list (List.rev !num_gated) in
  let nrg = Array.of_list (List.rev !num_energy) in
  {
    total_insns = p.Pipeline.exec.Sdiq_isa.Exec.steps;
    detailed_insns = window_stats.Stats.committed;
    windows = !windows;
    window_stats;
    ipc = estimate com cyc;
    wakeups_per_insn = estimate gat com;
    energy_per_insn = estimate nrg com;
  }

let detailed_fraction r =
  if r.total_insns = 0 then 0.
  else float_of_int r.detailed_insns /. float_of_int r.total_insns

let pp ppf r =
  Format.fprintf ppf
    "sampled: %d insns, %d windows (%.2f%% detailed); ipc %.3f ±%.3f; \
     gated wakeups/insn %.3f ±%.3f; iq energy/insn %.3g ±%.3g"
    r.total_insns r.windows
    (100. *. detailed_fraction r)
    r.ipc.mean r.ipc.ci_half r.wakeups_per_insn.mean
    r.wakeups_per_insn.ci_half r.energy_per_insn.mean
    r.energy_per_insn.ci_half
