(* Experiment runner: simulate (benchmark x technique) and cache the
   statistics so every figure reads from one set of runs, exactly as the
   paper derives all its figures from one simulation campaign.

   The campaign itself is parallel: [run_all] shards the key set across a
   work-stealing domain pool ([Sdiq_util.Pool]). Each (benchmark,
   technique) run is pure given the runner's [Config.t] — the pipeline,
   caches, predictor and policy are built fresh per run and nothing in
   [lib/cpu] touches global state — so workers need no locks: they fill
   disjoint slots of a result buffer, and the memo table is populated
   single-threadedly after the join barrier, always in key order. A
   1-domain and an N-domain campaign therefore produce byte-identical
   tables. *)

open Sdiq_workloads

(* The scheduler policy is the campaign's third axis (benchmark x
   technique x sched); it enters the memo keys as its [Sched.key] string
   so a policy-grid sweep shares one runner without aliasing runs. *)
type key = string * Technique.t * string

type campaign = {
  pairs_total : int;
  pairs_run : int;
  domains_used : int;
  wall_s : float;
  serial_estimate_s : float;
}

type t = {
  config : Sdiq_cpu.Config.t;
  sched : Sdiq_cpu.Sched.t; (* default select/wakeup policy for runs *)
  budget : int; (* committed instructions per run *)
  table : (key, Sdiq_cpu.Stats.t) Hashtbl.t;
  profiles : (key, Sdiq_obs.Profiler.t) Hashtbl.t;
      (* separate memo: profiled runs are dedicated simulations, so the
         conservation tests compare two independent executions *)
  sampled : (key, Sampling.result) Hashtbl.t;
      (* separate memo again: a sampled run is a different execution
         regime (fast-forward + windows, whole program) and must never
         alias a detailed run *)
  sample_config : Sampling.config;
  benches : Bench.t list;
  pool : Sdiq_util.Pool.t;
  checker : (unit -> Sdiq_cpu.Pipeline.t -> unit) option;
      (* per-run hook factory: called once per simulation so each run
         (possibly on another domain) gets fresh observer state *)
  mutable last_campaign : campaign option;
}

let create ?(config = Sdiq_cpu.Config.default) ?sched ?(budget = 100_000)
    ?(benches = Suite.all ()) ?domains ?checker
    ?(sample_config = Sampling.default) () =
  let sched =
    match sched with Some s -> s | None -> config.Sdiq_cpu.Config.sched
  in
  {
    config;
    sched;
    budget;
    table = Hashtbl.create 64;
    profiles = Hashtbl.create 64;
    sampled = Hashtbl.create 64;
    sample_config;
    benches;
    pool = Sdiq_util.Pool.create ?domains ();
    checker;
    last_campaign = None;
  }

let bench_names t = List.map (fun (b : Bench.t) -> b.Bench.name) t.benches
let domains t = Sdiq_util.Pool.domains t.pool

let find_bench t name =
  match List.find_opt (fun (b : Bench.t) -> b.Bench.name = name) t.benches with
  | Some b -> b
  | None ->
    invalid_arg
      (Printf.sprintf "Runner: unknown benchmark %S (known: %s)" name
         (String.concat ", " (bench_names t)))

(* One cold (benchmark, technique) simulation — pure given [t.config],
   so safe to run on any domain. The checker factory's product is
   registered as a per-cycle sink on the run's private event bus. *)
let simulate_pair t ~sched name technique : Sdiq_cpu.Stats.t =
  Sdiq_util.Spanlog.with_span "sim.pair"
    ~attrs:[ ("bench", name); ("technique", Technique.name technique) ]
  @@ fun () ->
  let bench = find_bench t name in
  let prog = Technique.prepare technique bench.Bench.prog in
  let policy = Technique.policy technique in
  let p = Sdiq_cpu.Pipeline.create ~config:t.config ~policy ~sched prog in
  (match t.checker with
  | Some mk -> Sdiq_cpu.Pipeline.on_cycle_end ~name:"campaign-checker" p (mk ())
  | None -> ());
  bench.Bench.init p.Sdiq_cpu.Pipeline.exec;
  Sdiq_cpu.Pipeline.run ~max_insns:t.budget p

(* Run one (benchmark, technique) pair, memoised. [?sched] overrides the
   runner's default policy for this run only; the override is part of
   the memo key, so grid sweeps over policies share the runner. *)
let run ?sched t name technique : Sdiq_cpu.Stats.t =
  let sched = match sched with Some s -> s | None -> t.sched in
  let key = (name, technique, Sdiq_cpu.Sched.key sched) in
  match Hashtbl.find_opt t.table key with
  | Some stats ->
    Sdiq_util.Spanlog.count "memo.hit";
    stats
  | None ->
    Sdiq_util.Spanlog.count "memo.miss";
    let stats = simulate_pair t ~sched name technique in
    Hashtbl.replace t.table key stats;
    stats

let run_all t =
  let pairs_total = List.length t.benches * List.length Technique.all in
  let skey = Sdiq_cpu.Sched.key t.sched in
  let todo =
    List.concat_map
      (fun name ->
        List.filter_map
          (fun tech ->
            if Hashtbl.mem t.table (name, tech, skey) then begin
              Sdiq_util.Spanlog.count "memo.hit";
              None
            end
            else begin
              Sdiq_util.Spanlog.count "memo.miss";
              Some (name, tech)
            end)
          Technique.all)
      (bench_names t)
    |> Array.of_list
  in
  Sdiq_util.Spanlog.enter "campaign.run_all"
    ~attrs:
      [
        ("pairs", string_of_int (Array.length todo));
        ("domains", string_of_int (domains t));
      ];
  let t0 = Unix.gettimeofday () in
  let c0 = Sys.time () in
  (* Hot path: no locks, no shared writes — each worker simulates into
     its own slot of [results]. *)
  let results =
    Sdiq_util.Pool.map_array t.pool
      ~f:(fun (name, tech) -> simulate_pair t ~sched:t.sched name tech)
      todo
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  (* [Sys.time] sums CPU time over every domain of the process; a serial
     campaign of this CPU-bound workload would take about that long on
     the wall. Unlike per-pair wall timing it is not inflated when
     domains timeshare oversubscribed cores. *)
  let serial_estimate_s = Sys.time () -. c0 in
  (* Join barrier passed: merge the per-worker buffers into the memo
     table, in key order, on the calling domain only. *)
  Array.iteri
    (fun i stats ->
      let name, tech = todo.(i) in
      Hashtbl.replace t.table (name, tech, skey) stats)
    results;
  t.last_campaign <-
    Some
      {
        pairs_total;
        pairs_run = Array.length todo;
        domains_used = domains t;
        wall_s;
        serial_estimate_s;
      };
  Sdiq_util.Spanlog.exit ()

(* One cold sampled (benchmark, technique) simulation: same build as
   [simulate_pair] — technique rewrite, policy, checker sink — but the
   program runs to completion (or [Sampling]'s own limit) under the
   SMARTS regime instead of a detailed instruction budget. The checker
   hook fires on every detailed cycle, warmup and measured alike, so a
   checkered sampled campaign audits every detailed window. Pure given
   [t.config], so safe on any domain. *)
let simulate_sampled_pair t ~sched name technique : Sampling.result =
  Sdiq_util.Spanlog.with_span "sim.sampled_pair"
    ~attrs:[ ("bench", name); ("technique", Technique.name technique) ]
  @@ fun () ->
  let bench = find_bench t name in
  let prog = Technique.prepare technique bench.Bench.prog in
  let policy = Technique.policy technique in
  let p = Sdiq_cpu.Pipeline.create ~config:t.config ~policy ~sched prog in
  (match t.checker with
  | Some mk -> Sdiq_cpu.Pipeline.on_cycle_end ~name:"campaign-checker" p (mk ())
  | None -> ());
  bench.Bench.init p.Sdiq_cpu.Pipeline.exec;
  Sampling.sample ~config:t.sample_config p

(* Run one sampled pair, memoised. *)
let run_sampled ?sched t name technique : Sampling.result =
  let sched = match sched with Some s -> s | None -> t.sched in
  let key = (name, technique, Sdiq_cpu.Sched.key sched) in
  match Hashtbl.find_opt t.sampled key with
  | Some r ->
    Sdiq_util.Spanlog.count "memo.hit";
    r
  | None ->
    Sdiq_util.Spanlog.count "memo.miss";
    let r = simulate_sampled_pair t ~sched name technique in
    Hashtbl.replace t.sampled key r;
    r

let run_all_sampled t =
  let skey = Sdiq_cpu.Sched.key t.sched in
  let todo =
    List.concat_map
      (fun name ->
        List.filter_map
          (fun tech ->
            if Hashtbl.mem t.sampled (name, tech, skey) then begin
              Sdiq_util.Spanlog.count "memo.hit";
              None
            end
            else begin
              Sdiq_util.Spanlog.count "memo.miss";
              Some (name, tech)
            end)
          Technique.all)
      (bench_names t)
    |> Array.of_list
  in
  Sdiq_util.Spanlog.enter "campaign.run_all_sampled"
    ~attrs:
      [
        ("pairs", string_of_int (Array.length todo));
        ("domains", string_of_int (domains t));
      ];
  (* Same discipline as [run_all]: workers fill disjoint slots of the
     result buffer, and the memo table is populated in key order after
     the join barrier — a 1-domain and an N-domain sampled campaign
     produce identical tables. *)
  let results =
    Sdiq_util.Pool.map_array t.pool
      ~f:(fun (name, tech) -> simulate_sampled_pair t ~sched:t.sched name tech)
      todo
  in
  Array.iteri
    (fun i r ->
      let name, tech = todo.(i) in
      Hashtbl.replace t.sampled (name, tech, skey) r)
    results;
  Sdiq_util.Spanlog.exit ()

(* One cold profiled simulation: build the region map for the
   technique's delivery, load the map's own running binary (identical
   to [Technique.prepare]'s — both invoke the same deterministic
   rewriter) and attribute the full event stream. Pure given
   [t.config], like [simulate_pair]. *)
let profile_pair t ~sched name technique : Sdiq_obs.Profiler.t =
  Sdiq_util.Spanlog.with_span "sim.profile_pair"
    ~attrs:[ ("bench", name); ("technique", Technique.name technique) ]
  @@ fun () ->
  let bench = find_bench t name in
  let map =
    Sdiq_obs.Region.build (Technique.delivery technique) bench.Bench.prog
  in
  let policy = Technique.policy technique in
  let p =
    Sdiq_cpu.Pipeline.create ~config:t.config ~policy ~sched
      (Sdiq_obs.Region.running_prog map)
  in
  let prof = Sdiq_obs.Profiler.attach map p in
  bench.Bench.init p.Sdiq_cpu.Pipeline.exec;
  let (_ : Sdiq_cpu.Stats.t) = Sdiq_cpu.Pipeline.run ~max_insns:t.budget p in
  prof

let profile ?sched t name technique : Sdiq_obs.Profiler.t =
  let sched = match sched with Some s -> s | None -> t.sched in
  let key = (name, technique, Sdiq_cpu.Sched.key sched) in
  match Hashtbl.find_opt t.profiles key with
  | Some prof ->
    Sdiq_util.Spanlog.count "memo.hit";
    prof
  | None ->
    Sdiq_util.Spanlog.count "memo.miss";
    let prof = profile_pair t ~sched name technique in
    Hashtbl.replace t.profiles key prof;
    prof

let profile_all ?(techniques = Technique.all) t =
  let skey = Sdiq_cpu.Sched.key t.sched in
  let grid =
    List.concat_map
      (fun name -> List.map (fun tech -> (name, tech)) techniques)
      (bench_names t)
  in
  let todo =
    Array.of_list
      (List.filter
         (fun (name, tech) ->
           if Hashtbl.mem t.profiles (name, tech, skey) then begin
             Sdiq_util.Spanlog.count "memo.hit";
             false
           end
           else begin
             Sdiq_util.Spanlog.count "memo.miss";
             true
           end)
         grid)
  in
  Sdiq_util.Spanlog.enter "campaign.profile_all"
    ~attrs:
      [
        ("pairs", string_of_int (Array.length todo));
        ("domains", string_of_int (domains t));
      ];
  (* Same discipline as [run_all]: workers fill disjoint slots, the memo
     is populated in key order after the join, and the campaign merge
     walks the grid in its declared order — so the merged metrics are
     byte-identical whatever the domain count. *)
  let results =
    Sdiq_util.Pool.map_array t.pool
      ~f:(fun (name, tech) -> profile_pair t ~sched:t.sched name tech)
      todo
  in
  Array.iteri
    (fun i prof ->
      let name, tech = todo.(i) in
      Hashtbl.replace t.profiles (name, tech, skey) prof)
    results;
  let pairs =
    List.map
      (fun (name, tech) ->
        (name, tech, Hashtbl.find t.profiles (name, tech, skey)))
      grid
  in
  let campaign =
    List.fold_left
      (fun acc (_, _, prof) ->
        Sdiq_obs.Metrics.merge acc (Sdiq_obs.Profiler.metrics prof))
      (Sdiq_obs.Metrics.create ())
      pairs
  in
  Sdiq_util.Spanlog.exit ();
  (pairs, campaign)

let campaign_stats t = t.last_campaign

let speedup c = if c.wall_s > 0. then c.serial_estimate_s /. c.wall_s else 1.

let pp_campaign ppf c =
  Format.fprintf ppf
    "campaign: %d/%d pairs run on %d domain%s in %.2fs (serial estimate \
     %.2fs, speedup %.2fx)"
    c.pairs_run c.pairs_total c.domains_used
    (if c.domains_used = 1 then "" else "s")
    c.wall_s c.serial_estimate_s (speedup c)

(* Savings of [technique] on [name] against that benchmark's baseline,
   both runs under the same scheduler policy. *)
let savings ?params ?sched t name technique : Sdiq_power.Report.t =
  let base = run ?sched t name Technique.Baseline in
  let tech = run ?sched t name technique in
  Sdiq_power.Report.compute ?params ~cfg:t.config ~base tech

let non_empty_saving ?params t name : float =
  let base = run t name Technique.Baseline in
  Sdiq_power.Report.non_empty_dynamic_saving ?params ~cfg:t.config base
