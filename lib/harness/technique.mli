(** The five configurations the paper evaluates. *)

type t =
  | Baseline   (** unmodified binary, 80-entry queue, no resizing *)
  | Noop       (** analysis delivered via special NOOPs (Section 5.2) *)
  | Extension  (** analysis delivered via instruction tags (Section 5.3) *)
  | Improved   (** Extension + interprocedural FU contention analysis *)
  | Abella     (** the adaptive hardware comparison point *)

val all : t list
val name : t -> string

(** The binary actually loaded into the machine. *)
val prepare : t -> Sdiq_isa.Prog.t -> Sdiq_isa.Prog.t

(** A fresh policy instance for one run. *)
val policy : t -> Sdiq_cpu.Policy.t

(** The region-map delivery mode whose running binary is exactly what
    {!prepare} builds ([Baseline] and [Abella] map to [Plain]: the
    binary is unmodified but the analysis regions still decompose it
    for attribution). *)
val delivery : t -> Sdiq_obs.Region.delivery
