(** The five configurations the paper evaluates, plus the tightened
    optimizer configuration. *)

type t =
  | Baseline   (** unmodified binary, 80-entry queue, no resizing *)
  | Noop       (** analysis delivered via special NOOPs (Section 5.2) *)
  | Extension  (** analysis delivered via instruction tags (Section 5.3) *)
  | Improved   (** Extension + interprocedural FU contention analysis *)
  | Abella     (** the adaptive hardware comparison point *)
  | Tightened
      (** the {!Sdiq_analysis.Tighten} minimal sound windows, tag
          delivered: same committed trace as [Baseline], audited
          slack-free *)

(** The paper's five configurations — the pinned golden grid. *)
val all : t list

(** [all] plus [Tightened]. *)
val extended : t list
val name : t -> string

(** The binary actually loaded into the machine. *)
val prepare : t -> Sdiq_isa.Prog.t -> Sdiq_isa.Prog.t

(** A fresh policy instance for one run. *)
val policy : t -> Sdiq_cpu.Policy.t

(** The region-map delivery mode whose running binary is exactly what
    {!prepare} builds ([Baseline] and [Abella] map to [Plain]: the
    binary is unmodified but the analysis regions still decompose it
    for attribution). *)
val delivery : t -> Sdiq_obs.Region.delivery
