(* The sink registry. A bus is owned by one pipeline and is not
   thread-safe — like the pipeline itself, it lives on one domain.

   The no-sink fast path must cost one load and one comparison: the hot
   loop calls [active] before building any trace-only event, so a bare
   simulation allocates nothing for the bus. Sinks are stored in a flat
   array (registration order = delivery order); [emit] is a plain
   counted loop over it. Exceptions raised by a sink propagate to the
   emitting stage — that is the invariant checker's abort channel. *)

type sink = { name : string; fn : Event.t -> unit }
type t = { mutable sinks : sink array }

let create () = { sinks = [||] }
let active t = Array.length t.sinks > 0
let count t = Array.length t.sinks
let names t = Array.to_list (Array.map (fun s -> s.name) t.sinks)

let subscribe ?(name = "sink") t fn =
  t.sinks <- Array.append t.sinks [| { name; fn } |]

let emit t ev =
  let s = t.sinks in
  for i = 0 to Array.length s - 1 do
    (Array.unsafe_get s i).fn ev
  done
