(* The typed per-cycle event vocabulary of the pipeline.

   Every quantity the paper reports is an integral over these events
   (wakeups, bank-on cycles, occupancy, commits — PAPER.md §5–6), so they
   are the single telemetry surface: the pipeline emits them, and every
   consumer — statistics, power integrals, the invariant checker, the
   differential oracle's commit capture, timelines, JSONL traces — is a
   sink folding over the same stream.

   Design rules:
   - Events carry *facts*, not machine references: an event is still
     meaningful after the cycle that produced it (traces, replays).
   - Counter-bearing events ([Wakeup], [Rf_read]) carry the per-event
     delta, never a running total, so any subset of a stream folds to
     the correct partial sums.
   - [Cycle_end] is emitted last in its cycle and carries the per-cycle
     integrand snapshot (occupancy, powered banks, live registers); the
     per-cycle sums of [Stats] are folds of exactly this event. *)

open Sdiq_isa

type fetch_outcome =
  | Sequential
  | Cond_branch of { taken : bool; mispredicted : bool; btb_bubble : bool }
  | Jump of { btb_bubble : bool }
  | Call of { btb_bubble : bool }
  | Return of { mispredicted : bool }

type dispatch_kind = Plain | Load | Store

type stall_reason = Policy_limit | Iq_full | Rob_full | No_reg | Lsq_full

type rf_file = Int_rf | Fp_rf

type cache_level = Il1 | Dl1 | L2

type tlb_unit = Itlb | Dtlb

(* How an annotation reached the policy: a special NOOP consuming a
   dispatch slot (Section 5.2.1) or a zero-cost instruction tag (the
   "Extension" encoding). *)
type delivery = Noop_slot | Tag

type bank_unit = Iq_bank | Int_rf_bank | Fp_rf_bank

type t =
  | Fetch of { dyn : Exec.dyn; outcome : fetch_outcome; wp : bool }
  | Annotation of { pc : int; value : int; delivery : delivery }
  | Dispatch of {
      dyn : Exec.dyn;
      kind : dispatch_kind;
      iq_slot : int;
      rob_idx : int;
      cam_writes : int; (* operand CAM entries written, 0..2 *)
      wp : bool; (* renamed down the wrong path *)
    }
  | Dispatch_stall of stall_reason
  | Wakeup of {
      tags : int; (* result tags broadcast together this cycle *)
      woken : int; (* operands that actually woke *)
      naive : int; (* comparison deltas under the three Figure 8 schemes *)
      nonempty : int;
      gated : int;
      suppressed : int;
        (* waiting operands whose CAM comparison the scheduler policy
           suppressed as predicted-ready (load-delay tracking); they
           still wake on a tag match, but pay no comparison energy *)
    }
  | Select of { rob_idx : int; iq_slot : int }
  | Select_scan of { entries : int }
    (* slots the select logic examined this cycle (holes included);
       the per-entry scan cost is [Params.e_scan_entry] *)
  | Issue of { dyn : Exec.dyn; latency : int; store_forward : bool; wp : bool }
  | Writeback of { dyn : Exec.dyn; rob_idx : int }
  | Rf_read of { ints : int; fps : int } (* one event per issued instr *)
  | Rf_write of { file : rf_file; phys : int }
  | Commit of { dyn : Exec.dyn }
  | Squash of { dyn : Exec.dyn; squashed : int }
    (* mispredicted control resolved: [squashed] wrong-path instructions
       (fetched or renamed) were discarded. Zero when fetch blocked
       instead of speculating. *)
  | Cache_miss of { level : cache_level; addr : int }
  | Tlb_miss of { tlb : tlb_unit; addr : int }
  | Resize of { before : int; after : int } (* IQ active-size change *)
  | Bank_gated of { unit_ : bank_unit; bank : int }
  | Bank_ungated of { unit_ : bank_unit; bank : int }
  | Cycle_end of {
      cycle : int; (* 0-based index of the cycle just completed *)
      throttled : bool; (* dispatch was limited by the (possibly shrunken)
                           queue — the adaptive policy's pressure signal *)
      iq_occupancy : int;
      iq_banks_on : int;
      int_rf_banks_on : int;
      int_rf_live : int;
      fp_rf_banks_on : int;
    }

let num_kinds = 19

let index = function
  | Fetch _ -> 0
  | Annotation _ -> 1
  | Dispatch _ -> 2
  | Dispatch_stall _ -> 3
  | Wakeup _ -> 4
  | Select _ -> 5
  | Issue _ -> 6
  | Writeback _ -> 7
  | Rf_read _ -> 8
  | Rf_write _ -> 9
  | Commit _ -> 10
  | Squash _ -> 11
  | Cache_miss _ -> 12
  | Resize _ -> 13
  | Bank_gated _ -> 14
  | Bank_ungated _ -> 15
  | Cycle_end _ -> 16
  | Tlb_miss _ -> 17
  | Select_scan _ -> 18

let kind_name_of_index = function
  | 0 -> "fetch"
  | 1 -> "annotation"
  | 2 -> "dispatch"
  | 3 -> "dispatch_stall"
  | 4 -> "wakeup"
  | 5 -> "select"
  | 6 -> "issue"
  | 7 -> "writeback"
  | 8 -> "rf_read"
  | 9 -> "rf_write"
  | 10 -> "commit"
  | 11 -> "squash"
  | 12 -> "cache_miss"
  | 13 -> "resize"
  | 14 -> "bank_gated"
  | 15 -> "bank_ungated"
  | 16 -> "cycle_end"
  | 17 -> "tlb_miss"
  | 18 -> "select_scan"
  | _ -> "unknown"

let kind_name ev = kind_name_of_index (index ev)

let pp ppf ev =
  match ev with
  | Fetch { dyn; _ } ->
    Fmt.pf ppf "fetch sn=%d pc=%d" dyn.Exec.sn dyn.Exec.pc
  | Annotation { pc; value; delivery } ->
    Fmt.pf ppf "annotation pc=%d value=%d via=%s" pc value
      (match delivery with Noop_slot -> "noop" | Tag -> "tag")
  | Dispatch { dyn; iq_slot; rob_idx; _ } ->
    Fmt.pf ppf "dispatch sn=%d slot=%d rob=%d" dyn.Exec.sn iq_slot rob_idx
  | Dispatch_stall r ->
    Fmt.pf ppf "dispatch_stall %s"
      (match r with
      | Policy_limit -> "policy"
      | Iq_full -> "iq-full"
      | Rob_full -> "rob-full"
      | No_reg -> "no-reg"
      | Lsq_full -> "lsq-full")
  | Wakeup { tags; woken; _ } -> Fmt.pf ppf "wakeup tags=%d woken=%d" tags woken
  | Select { rob_idx; iq_slot } ->
    Fmt.pf ppf "select rob=%d slot=%d" rob_idx iq_slot
  | Select_scan { entries } -> Fmt.pf ppf "select_scan entries=%d" entries
  | Issue { dyn; latency; _ } ->
    Fmt.pf ppf "issue sn=%d lat=%d" dyn.Exec.sn latency
  | Writeback { dyn; rob_idx } ->
    Fmt.pf ppf "writeback sn=%d rob=%d" dyn.Exec.sn rob_idx
  | Rf_read { ints; fps } -> Fmt.pf ppf "rf_read int=%d fp=%d" ints fps
  | Rf_write { file; phys } ->
    Fmt.pf ppf "rf_write %s p%d"
      (match file with Int_rf -> "int" | Fp_rf -> "fp")
      phys
  | Commit { dyn } -> Fmt.pf ppf "commit sn=%d pc=%d" dyn.Exec.sn dyn.Exec.pc
  | Squash { dyn; squashed } ->
    Fmt.pf ppf "squash sn=%d squashed=%d" dyn.Exec.sn squashed
  | Cache_miss { level; addr } ->
    Fmt.pf ppf "cache_miss %s addr=%d"
      (match level with Il1 -> "il1" | Dl1 -> "dl1" | L2 -> "l2")
      addr
  | Tlb_miss { tlb; addr } ->
    Fmt.pf ppf "tlb_miss %s addr=%d"
      (match tlb with Itlb -> "itlb" | Dtlb -> "dtlb")
      addr
  | Resize { before; after } -> Fmt.pf ppf "resize %d->%d" before after
  | Bank_gated { unit_; bank } | Bank_ungated { unit_; bank } ->
    Fmt.pf ppf "%s %s bank=%d" (kind_name ev)
      (match unit_ with
      | Iq_bank -> "iq"
      | Int_rf_bank -> "int-rf"
      | Fp_rf_bank -> "fp-rf")
      bank
  | Cycle_end { cycle; iq_occupancy; _ } ->
    Fmt.pf ppf "cycle_end cycle=%d occ=%d" cycle iq_occupancy
