(** JSONL trace sink: one hand-rolled JSON object per event per line,
    each with ["cycle"] (0-based) and ["ev"] (the kind name) plus
    kind-specific scalar fields. `bin/lint.exe --trace` audits this
    format; `jq` reads it directly. *)

(** A fresh sink writing to [oc]. The sink tracks the cycle number
    itself (incremented on each [Cycle_end]); the caller flushes or
    closes the channel when the run completes. *)
val sink : out_channel -> Event.t -> unit

(** JSON string escaping used for instruction-text fields. *)
val escape : string -> string
