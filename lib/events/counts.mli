(** A per-kind event counter sink: two runs are event-equivalent iff
    their count tables match, and [to_string] is byte-comparable. *)

type t

val create : unit -> t

(** The sink itself: pass [sink c] to {!Bus.subscribe}. *)
val sink : t -> Event.t -> unit

(** Count for kind index [i] (see {!Event.index}). *)
val get : t -> int -> int

val total : t -> int
val equal : t -> t -> bool

(** One line, every kind in index order: ["fetch=12 annotation=0 ..."]. *)
val to_string : t -> string

(** Every kind as [(name, count, percentage-of-total)], in the stable
    {!Event.index} order. Percentages are 0 when the table is empty. *)
val to_assoc : t -> (string * int * float) list

(** Human-readable event mix: one kind per line in {!Event.index}
    order, zero-count kinds elided, with percentage of total. *)
val pp : Format.formatter -> t -> unit
