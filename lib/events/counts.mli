(** A per-kind event counter sink: two runs are event-equivalent iff
    their count tables match, and [to_string] is byte-comparable. *)

type t

val create : unit -> t

(** The sink itself: pass [sink c] to {!Bus.subscribe}. *)
val sink : t -> Event.t -> unit

(** Count for kind index [i] (see {!Event.index}). *)
val get : t -> int -> int

val total : t -> int
val equal : t -> t -> bool

(** One line, every kind in index order: ["fetch=12 annotation=0 ..."]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
