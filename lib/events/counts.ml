(* A per-kind event counter: the canonical ~50-line sink. Used by the
   determinism tests (two runs are event-equivalent iff their count
   tables match) and by the bench pair as a cheap-but-real subscriber. *)

type t = int array (* one cell per Event kind, indexed by Event.index *)

let create () = Array.make Event.num_kinds 0
let sink (c : t) ev = c.(Event.index ev) <- c.(Event.index ev) + 1
let get (c : t) i = c.(i)
let total (c : t) = Array.fold_left ( + ) 0 c
let equal (a : t) (b : t) = a = b

(* One line, every kind in index order — byte-comparable across runs. *)
let to_string (c : t) =
  String.concat " "
    (List.init Event.num_kinds (fun i ->
         Printf.sprintf "%s=%d" (Event.kind_name_of_index i) c.(i)))

(* Every kind with its count and share of the total, in the stable
   [Event.index] order (the same order [to_string] uses). *)
let to_assoc (c : t) =
  let tot = total c in
  List.init Event.num_kinds (fun i ->
      let pct =
        if tot = 0 then 0. else 100. *. float_of_int c.(i) /. float_of_int tot
      in
      (Event.kind_name_of_index i, c.(i), pct))

(* Human-readable event mix: one kind per line, zero-count kinds
   elided, each with its percentage of the total event count. *)
let pp ppf c =
  let printed = ref false in
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (name, count, pct) ->
      if count > 0 then begin
        if !printed then Fmt.cut ppf ();
        printed := true;
        Fmt.pf ppf "%-16s %9d  %5.1f%%" name count pct
      end)
    (to_assoc c);
  Fmt.pf ppf "@]"
