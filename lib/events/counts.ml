(* A per-kind event counter: the canonical ~50-line sink. Used by the
   determinism tests (two runs are event-equivalent iff their count
   tables match) and by the bench pair as a cheap-but-real subscriber. *)

type t = int array (* one cell per Event kind, indexed by Event.index *)

let create () = Array.make Event.num_kinds 0
let sink (c : t) ev = c.(Event.index ev) <- c.(Event.index ev) + 1
let get (c : t) i = c.(i)
let total (c : t) = Array.fold_left ( + ) 0 c
let equal (a : t) (b : t) = a = b

(* One line, every kind in index order — byte-comparable across runs. *)
let to_string (c : t) =
  String.concat " "
    (List.init Event.num_kinds (fun i ->
         Printf.sprintf "%s=%d" (Event.kind_name_of_index i) c.(i)))

let pp ppf c = Fmt.string ppf (to_string c)
