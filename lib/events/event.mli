(** The typed per-cycle event vocabulary of the pipeline.

    Every quantity the paper reports is an integral over these events
    (wakeups, bank-on cycles, occupancy, commits), so they are the single
    telemetry surface: the pipeline emits them and every consumer —
    statistics, power integrals, the invariant checker, commit capture,
    timelines, JSONL traces — is a sink folding over the same stream.

    Events carry facts, not machine references; counter-bearing events
    carry per-event deltas, never running totals; [Cycle_end] is emitted
    last in its cycle and carries the per-cycle integrand snapshot.
    DESIGN.md §11 specifies the ordering guarantees. *)

type fetch_outcome =
  | Sequential
  | Cond_branch of { taken : bool; mispredicted : bool; btb_bubble : bool }
  | Jump of { btb_bubble : bool }
  | Call of { btb_bubble : bool }
  | Return of { mispredicted : bool }

type dispatch_kind = Plain | Load | Store
type stall_reason = Policy_limit | Iq_full | Rob_full | No_reg | Lsq_full
type rf_file = Int_rf | Fp_rf
type cache_level = Il1 | Dl1 | L2
type tlb_unit = Itlb | Dtlb

(** How an annotation reached the policy: a special NOOP consuming a
    dispatch slot (Section 5.2.1) or a zero-cost instruction tag. *)
type delivery = Noop_slot | Tag

type bank_unit = Iq_bank | Int_rf_bank | Fp_rf_bank

type t =
  | Fetch of { dyn : Sdiq_isa.Exec.dyn; outcome : fetch_outcome; wp : bool }
  | Annotation of { pc : int; value : int; delivery : delivery }
  | Dispatch of {
      dyn : Sdiq_isa.Exec.dyn;
      kind : dispatch_kind;
      iq_slot : int;
      rob_idx : int;
      cam_writes : int;  (** operand CAM entries written, 0..2 *)
      wp : bool;  (** renamed down the wrong path *)
    }
  | Dispatch_stall of stall_reason
  | Wakeup of {
      tags : int;  (** result tags broadcast together this cycle *)
      woken : int;  (** operands that actually woke *)
      naive : int;  (** comparison deltas under the three Figure 8 schemes *)
      nonempty : int;
      gated : int;
      suppressed : int;
          (** waiting operands whose CAM comparison the scheduler policy
              suppressed as predicted-ready; they still wake on a tag
              match but pay no comparison energy *)
    }
  | Select of { rob_idx : int; iq_slot : int }
  | Select_scan of { entries : int }
      (** slots the select logic examined this cycle (holes included) *)
  | Issue of {
      dyn : Sdiq_isa.Exec.dyn;
      latency : int;
      store_forward : bool;
      wp : bool;
    }
  | Writeback of { dyn : Sdiq_isa.Exec.dyn; rob_idx : int }
  | Rf_read of { ints : int; fps : int }  (** one event per issued instr *)
  | Rf_write of { file : rf_file; phys : int }
  | Commit of { dyn : Sdiq_isa.Exec.dyn }
  | Squash of { dyn : Sdiq_isa.Exec.dyn; squashed : int }
      (** mispredicted control resolved: [squashed] wrong-path
          instructions were discarded (zero when fetch blocked instead
          of speculating) *)
  | Cache_miss of { level : cache_level; addr : int }
  | Tlb_miss of { tlb : tlb_unit; addr : int }
  | Resize of { before : int; after : int }  (** IQ active-size change *)
  | Bank_gated of { unit_ : bank_unit; bank : int }
  | Bank_ungated of { unit_ : bank_unit; bank : int }
  | Cycle_end of {
      cycle : int;  (** 0-based index of the cycle just completed *)
      throttled : bool;
          (** dispatch was limited by the (possibly shrunken) queue — the
              adaptive policy's pressure signal *)
      iq_occupancy : int;
      iq_banks_on : int;
      int_rf_banks_on : int;
      int_rf_live : int;
      fp_rf_banks_on : int;
    }

(** Number of constructors; [index] is a dense 0-based injection into
    [0, num_kinds), stable across runs (used by {!Counts}). *)
val num_kinds : int

val index : t -> int
val kind_name : t -> string
val kind_name_of_index : int -> string
val pp : Format.formatter -> t -> unit
