(** The sink registry: one per pipeline, single-domain like its owner.

    Registration order is delivery order; a sink's exception propagates
    to the emitting stage (the invariant checker's abort channel). The
    no-sink fast path is O(1): [active] is one load and one comparison,
    and the pipeline consults it before building trace-only events. *)

type t

val create : unit -> t

(** At least one sink is registered. *)
val active : t -> bool

val count : t -> int

(** Sink names in delivery order. *)
val names : t -> string list

(** Append a sink; [name] labels it in {!names} for diagnostics. *)
val subscribe : ?name:string -> t -> (Event.t -> unit) -> unit

(** Deliver one event to every sink, in registration order. *)
val emit : t -> Event.t -> unit
