(* JSONL trace sink: one JSON object per event, one event per line.

   The format is hand-rolled (this repo deliberately has no JSON
   dependency) and deliberately flat: every line has "cycle" (the
   0-based cycle the event belongs to) and "ev" (the kind name from
   [Event.kind_name]); the rest are kind-specific scalar fields. The
   lint CLI's `--trace` delivery-integrity pass parses exactly this
   shape, and `jq` handles it directly (see README). *)

open Sdiq_isa

(* JSON string escaping for the few instruction-text fields. *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let bool b = if b then "true" else "false"

let fetch_outcome_fields = function
  | Event.Sequential -> {|,"outcome":"seq"|}
  | Event.Cond_branch { taken; mispredicted; btb_bubble } ->
    Printf.sprintf
      {|,"outcome":"cond","taken":%s,"mispredicted":%s,"btb_bubble":%s|}
      (bool taken) (bool mispredicted) (bool btb_bubble)
  | Event.Jump { btb_bubble } ->
    Printf.sprintf {|,"outcome":"jump","btb_bubble":%s|} (bool btb_bubble)
  | Event.Call { btb_bubble } ->
    Printf.sprintf {|,"outcome":"call","btb_bubble":%s|} (bool btb_bubble)
  | Event.Return { mispredicted } ->
    Printf.sprintf {|,"outcome":"ret","mispredicted":%s|} (bool mispredicted)

let dyn_fields (d : Exec.dyn) =
  Printf.sprintf {|,"sn":%d,"pc":%d,"op":"%s"|} d.Exec.sn d.Exec.pc
    (escape (Instr.to_string d.Exec.instr))

let wp_field wp = if wp then {|,"wp":true|} else ""

let body ev =
  match ev with
  | Event.Fetch { dyn; outcome; wp } ->
    dyn_fields dyn ^ fetch_outcome_fields outcome ^ wp_field wp
  | Event.Annotation { pc; value; delivery } ->
    Printf.sprintf {|,"pc":%d,"value":%d,"delivery":"%s"|} pc value
      (match delivery with Event.Noop_slot -> "noop" | Event.Tag -> "tag")
  | Event.Dispatch { dyn; kind; iq_slot; rob_idx; cam_writes; wp } ->
    Printf.sprintf
      {|%s,"kind":"%s","iq_slot":%d,"rob_idx":%d,"cam_writes":%d%s|}
      (dyn_fields dyn)
      (match kind with
      | Event.Plain -> "plain"
      | Event.Load -> "load"
      | Event.Store -> "store")
      iq_slot rob_idx cam_writes (wp_field wp)
  | Event.Dispatch_stall reason ->
    Printf.sprintf {|,"reason":"%s"|}
      (match reason with
      | Event.Policy_limit -> "policy"
      | Event.Iq_full -> "iq_full"
      | Event.Rob_full -> "rob_full"
      | Event.No_reg -> "no_reg"
      | Event.Lsq_full -> "lsq_full")
  | Event.Wakeup { tags; woken; naive; nonempty; gated; suppressed } ->
    Printf.sprintf
      {|,"tags":%d,"woken":%d,"naive":%d,"nonempty":%d,"gated":%d,"suppressed":%d|}
      tags woken naive nonempty gated suppressed
  | Event.Select { rob_idx; iq_slot } ->
    Printf.sprintf {|,"rob_idx":%d,"iq_slot":%d|} rob_idx iq_slot
  | Event.Select_scan { entries } -> Printf.sprintf {|,"entries":%d|} entries
  | Event.Issue { dyn; latency; store_forward; wp } ->
    Printf.sprintf {|%s,"latency":%d,"store_forward":%s%s|} (dyn_fields dyn)
      latency (bool store_forward) (wp_field wp)
  | Event.Writeback { dyn; rob_idx } ->
    Printf.sprintf {|%s,"rob_idx":%d|} (dyn_fields dyn) rob_idx
  | Event.Rf_read { ints; fps } ->
    Printf.sprintf {|,"int":%d,"fp":%d|} ints fps
  | Event.Rf_write { file; phys } ->
    Printf.sprintf {|,"file":"%s","phys":%d|}
      (match file with Event.Int_rf -> "int" | Event.Fp_rf -> "fp")
      phys
  | Event.Commit { dyn } -> dyn_fields dyn
  | Event.Squash { dyn; squashed } ->
    Printf.sprintf {|%s,"squashed":%d|} (dyn_fields dyn) squashed
  | Event.Cache_miss { level; addr } ->
    Printf.sprintf {|,"level":"%s","addr":%d|}
      (match level with
      | Event.Il1 -> "il1"
      | Event.Dl1 -> "dl1"
      | Event.L2 -> "l2")
      addr
  | Event.Tlb_miss { tlb; addr } ->
    Printf.sprintf {|,"tlb":"%s","addr":%d|}
      (match tlb with Event.Itlb -> "itlb" | Event.Dtlb -> "dtlb")
      addr
  | Event.Resize { before; after } ->
    Printf.sprintf {|,"before":%d,"after":%d|} before after
  | Event.Bank_gated { unit_; bank } | Event.Bank_ungated { unit_; bank } ->
    Printf.sprintf {|,"unit":"%s","bank":%d|}
      (match unit_ with
      | Event.Iq_bank -> "iq"
      | Event.Int_rf_bank -> "int_rf"
      | Event.Fp_rf_bank -> "fp_rf")
      bank
  | Event.Cycle_end
      {
        cycle = _;
        throttled;
        iq_occupancy;
        iq_banks_on;
        int_rf_banks_on;
        int_rf_live;
        fp_rf_banks_on;
      } ->
    Printf.sprintf
      {|,"throttled":%s,"iq_occupancy":%d,"iq_banks_on":%d,"int_rf_banks_on":%d,"int_rf_live":%d,"fp_rf_banks_on":%d|}
      (bool throttled) iq_occupancy iq_banks_on int_rf_banks_on int_rf_live
      fp_rf_banks_on

(* The sink tracks the current cycle itself: every event between two
   [Cycle_end]s belongs to the cycle the next [Cycle_end] closes. *)
let sink oc =
  let cycle = ref 0 in
  fun ev ->
    Printf.fprintf oc {|{"cycle":%d,"ev":"%s"%s}|} !cycle (Event.kind_name ev)
      (body ev);
    output_char oc '\n';
    match ev with Event.Cycle_end _ -> incr cycle | _ -> ()
