module Json = Sdiq_util.Json

type record = {
  schema : int;
  time : string;
  git : string;
  kind : string;
  digest : string;
  domains : int;
  pairs : int;
  wall_s : float;
  mips_detailed : float option;
  mips_sampled : float option;
  energy : (string * float) list;
}

let schema_version = 1

let config_digest ?(extra = "") config sched =
  Digest.to_hex
    (Digest.string
       (Fmt.str "%a|%s|%s" Sdiq_cpu.Config.pp config
          (Sdiq_cpu.Sched.key sched) extra))

(* Host-speed measurements (wall clock, MIPS) are only comparable on
   the machine that took them, so records carrying them fold this into
   their digest: records from different hosts then never share a digest
   and the strict gate can only ever compare same-machine runs. *)
let host_id () = try Unix.gethostname () with _ -> "unknown-host"

let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    match (status, line) with
    | Unix.WEXITED 0, s when s <> "" -> s
    | _ -> "unknown"
  with _ -> "unknown"

let iso8601_now () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let make ?time ?git ?digest ?(domains = 1) ?(pairs = 0) ?(wall_s = 0.)
    ?mips_detailed ?mips_sampled ?(energy = []) ~kind () =
  {
    schema = schema_version;
    time = (match time with Some t -> t | None -> iso8601_now ());
    git = (match git with Some g -> g | None -> git_describe ());
    digest =
      (match digest with
      | Some d -> d
      | None -> config_digest Sdiq_cpu.Config.default Sdiq_cpu.Sched.default);
    kind;
    domains;
    pairs;
    wall_s;
    mips_detailed;
    mips_sampled;
    energy = List.sort (fun (a, _) (b, _) -> String.compare a b) energy;
  }

let to_json r =
  let opt name = function
    | None -> ""
    | Some v -> Printf.sprintf ",\"%s\":%s" name (Json.to_string (Json.Num v))
  in
  Printf.sprintf
    "{\"schema\":%d,\"time\":\"%s\",\"git\":\"%s\",\"kind\":\"%s\",\"digest\":\"%s\",\"domains\":%d,\"pairs\":%d,\"wall_s\":%s%s%s,\"energy\":{%s}}"
    r.schema (Json.escape r.time) (Json.escape r.git) (Json.escape r.kind)
    (Json.escape r.digest) r.domains r.pairs
    (Json.to_string (Json.Num r.wall_s))
    (opt "mips_detailed" r.mips_detailed)
    (opt "mips_sampled" r.mips_sampled)
    (String.concat ","
       (List.map
          (fun (k, v) ->
            Printf.sprintf "\"%s\":%s" (Json.escape k)
              (Json.to_string (Json.Num v)))
          r.energy))

let of_json j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "ledger record: missing or bad %S" name)
  in
  let opt_float name =
    match Json.member name j with
    | None -> Ok None
    | Some v -> (
      match Json.to_float v with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "ledger record: bad %S" name))
  in
  let* schema = field "schema" Json.to_int in
  if schema <> schema_version then
    Error (Printf.sprintf "ledger record: unknown schema %d" schema)
  else
    let* time = field "time" Json.to_str in
    let* git = field "git" Json.to_str in
    let* kind = field "kind" Json.to_str in
    let* digest = field "digest" Json.to_str in
    let* domains = field "domains" Json.to_int in
    let* pairs = field "pairs" Json.to_int in
    let* wall_s = field "wall_s" Json.to_float in
    let* mips_detailed = opt_float "mips_detailed" in
    let* mips_sampled = opt_float "mips_sampled" in
    let* energy =
      match Json.member "energy" j with
      | Some (Json.Obj kvs) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match Json.to_float v with
            | Some f -> Ok ((k, f) :: acc)
            | None ->
              Error (Printf.sprintf "ledger record: bad energy for %S" k))
          (Ok []) kvs
        |> Result.map List.rev
      | Some _ -> Error "ledger record: energy is not an object"
      | None -> Ok []
    in
    Ok
      {
        schema;
        time;
        git;
        kind;
        digest;
        domains;
        pairs;
        wall_s;
        mips_detailed;
        mips_sampled;
        energy;
      }

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then (
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())

let append ~file r =
  mkdir_p (Filename.dirname file);
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file
  in
  output_string oc (to_json r);
  output_char oc '\n';
  close_out oc

let load ~file =
  if not (Sys.file_exists file) then Ok []
  else
    let ic = open_in file in
    let rec go n acc =
      match input_line ic with
      | exception End_of_file -> Ok (List.rev acc)
      | "" -> go (n + 1) acc
      | line -> (
        match Json.parse line with
        | Error e ->
          Error (Printf.sprintf "%s:%d: bad JSON: %s" file n e)
        | Ok j -> (
          match of_json j with
          | Error e -> Error (Printf.sprintf "%s:%d: %s" file n e)
          | Ok r -> go (n + 1) (r :: acc)))
    in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> go 1 [])

type verdict = { ok : bool; messages : string list }

let pass messages = { ok = true; messages }
let fail messages = { ok = false; messages }

(* The newest record's baseline: the most recent earlier record with the
   same kind and config/policy digest. Cross-digest comparisons would
   flag configuration changes as regressions, so they are skipped. *)
let baseline_of records newest =
  let rec last_match acc = function
    | [] -> acc
    | r :: rest ->
      if r == newest then acc
      else if r.kind = newest.kind && r.digest = newest.digest then
        last_match (Some r) rest
      else last_match acc rest
  in
  last_match None records

let check_mips ~threshold ~what ~baseline ~current =
  match (baseline, current) with
  | Some b, Some c when b > 0. ->
    let drop = (b -. c) /. b in
    if drop > threshold then
      Some
        (Printf.sprintf "FAIL %s MIPS regressed %.1f%% (%.3f -> %.3f, gate %.0f%%)"
           what (100. *. drop) b c (100. *. threshold))
    else
      Some
        (Printf.sprintf "ok   %s MIPS %.3f -> %.3f (%+.1f%%)" what b c
           (-100. *. drop))
  | _ -> None

(* Symmetric over the two technique sets: a technique that appears,
   disappears or is renamed between records is a drift just as much as
   a changed value — the gate must not pass it silently. *)
let check_energy ~baseline ~current =
  let keys =
    List.sort_uniq String.compare
      (List.map fst baseline @ List.map fst current)
  in
  List.filter_map
    (fun tech ->
      match (List.assoc_opt tech baseline, List.assoc_opt tech current) with
      | Some b, Some c when c <> b ->
        Some
          (Printf.sprintf "FAIL energy drift for %s: %.6g -> %.6g" tech b c)
      | Some b, None ->
        Some
          (Printf.sprintf
             "FAIL energy for %s vanished (baseline %.6g, no current total)"
             tech b)
      | None, Some c ->
        Some
          (Printf.sprintf
             "FAIL energy for %s appeared (%.6g, no baseline total)" tech c)
      | _ -> None)
    keys

let gate ?(threshold = 0.10) records =
  match List.rev records with
  | [] -> pass [ "ok   empty ledger (nothing to gate)" ]
  | newest :: _ -> (
    match baseline_of records newest with
    | None ->
      pass
        [ Printf.sprintf "ok   no prior %S record with digest %s (seeding)"
            newest.kind
            (String.sub newest.digest 0 (min 8 (String.length newest.digest)));
        ]
    | Some prior ->
      let energy_msgs =
        match check_energy ~baseline:prior.energy ~current:newest.energy with
        | [] when prior.energy <> [] || newest.energy <> [] ->
          [ Printf.sprintf "ok   energy totals match (%d techniques)"
              (List.length newest.energy);
          ]
        | msgs -> msgs
      in
      let msgs =
        List.filter_map Fun.id
          [ check_mips ~threshold ~what:"detailed"
              ~baseline:prior.mips_detailed ~current:newest.mips_detailed;
            check_mips ~threshold ~what:"sampled" ~baseline:prior.mips_sampled
              ~current:newest.mips_sampled;
          ]
        @ energy_msgs
      in
      let msgs = if msgs = [] then [ "ok   nothing comparable" ] else msgs in
      if List.exists (fun m -> String.length m >= 4 && String.sub m 0 4 = "FAIL") msgs
      then fail msgs
      else pass msgs)

let gate_against_probe ?(threshold = 0.10) ~probe_json records =
  (* BENCH_mips.json nests the probes: {"detailed":{"mips":...},...}. *)
  let probe section =
    Option.bind (Json.member section probe_json) (fun s ->
        Option.bind (Json.member "mips" s) Json.to_float)
  in
  let newest =
    List.rev records
    |> List.find_opt (fun r ->
           r.mips_detailed <> None || r.mips_sampled <> None)
  in
  match newest with
  | None -> pass [ "ok   no MIPS-carrying ledger record (nothing to gate)" ]
  | Some r ->
    let msgs =
      List.filter_map Fun.id
        [ check_mips ~threshold ~what:"detailed" ~baseline:(probe "detailed")
            ~current:r.mips_detailed;
          check_mips ~threshold ~what:"sampled" ~baseline:(probe "sampled")
            ~current:r.mips_sampled;
        ]
    in
    let msgs =
      if msgs = [] then [ "ok   probe and ledger share no MIPS fields" ]
      else msgs
    in
    if List.exists (fun m -> String.length m >= 4 && String.sub m 0 4 = "FAIL") msgs
    then fail msgs
    else pass msgs
