(* Rendering of drained span collections: Chrome trace-event JSON for
   Perfetto, and a host-level metric registry for the OpenMetrics
   exposition. The collection itself lives in Sdiq_util.Spanlog so the
   pool (which sits below lib/obs) can record without a cycle. *)

module Span = Sdiq_util.Spanlog
module Json = Sdiq_util.Json

let start = Span.start
let active = Span.active
let drain = Span.drain

(* Chrome trace format: "ts"/"dur" in microseconds (floats), one
   complete event (ph "X") per span, the domain id as the tid, span
   id/parent threaded through "args" so tooling can rebuild the tree.
   Events are emitted in the drained (domain, seq) order, so the
   document is deterministic given the spans. *)
let to_chrome_json (r : Span.result) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let us_of ns = Int64.to_float (Int64.sub ns r.Span.origin_ns) /. 1e3 in
  let first = ref true in
  List.iter
    (fun (s : Span.span) ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           {|{"name":"%s","cat":"sdiq","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"id":%d,"parent":%d%s}}|}
           (Json.escape s.Span.name) (us_of s.Span.start_ns)
           (Int64.to_float (Int64.sub s.Span.stop_ns s.Span.start_ns) /. 1e3)
           s.Span.domain s.Span.id s.Span.parent
           (String.concat ""
              (List.map
                 (fun (k, v) ->
                   Printf.sprintf {|,"%s":"%s"|} (Json.escape k)
                     (Json.escape v))
                 s.Span.attrs))))
    r.Span.spans;
  (* Drained counters ride along as one final counter event so the
     numbers (memo hits, steals) are visible in the trace viewer too. *)
  List.iter
    (fun (k, v) ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           {|{"name":"%s","cat":"sdiq","ph":"C","ts":0,"pid":1,"args":{"value":%d}}|}
           (Json.escape k) v))
    r.Span.counters;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome file r =
  let oc = open_out file in
  output_string oc (to_chrome_json r);
  output_char oc '\n';
  close_out oc

let seconds_of_span (s : Span.span) =
  Int64.to_float (Int64.sub s.Span.stop_ns s.Span.start_ns) /. 1e9

let to_metrics ?pairs ?wall_s (r : Span.result) =
  let m = Metrics.create () in
  (* Every drained counter, prefixed so scrapes can't collide with the
     simulation-side registries. *)
  List.iter
    (fun (k, v) -> Metrics.incr ~by:v m ("telemetry_" ^ k))
    r.Span.counters;
  (* Per span name: occurrence count and accumulated seconds. *)
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (s : Span.span) ->
      let c, t =
        Option.value
          (Hashtbl.find_opt by_name s.Span.name)
          ~default:(0, 0.)
      in
      Hashtbl.replace by_name s.Span.name (c + 1, t +. seconds_of_span s))
    r.Span.spans;
  Hashtbl.iter
    (fun name (c, t) ->
      Metrics.incr ~by:c m ("span_" ^ name);
      Metrics.set_gauge m ("span_" ^ name ^ "_seconds") t)
    by_name;
  (* Memo hit ratio over whatever memo traffic the collection saw. *)
  let hit = List.assoc_opt "memo.hit" r.Span.counters
  and miss = List.assoc_opt "memo.miss" r.Span.counters in
  (match (hit, miss) with
  | None, None -> ()
  | h, ms ->
    let h = Option.value h ~default:0 and ms = Option.value ms ~default:0 in
    if h + ms > 0 then
      Metrics.set_gauge m "memo_hit_ratio"
        (float_of_int h /. float_of_int (h + ms)));
  (* Per-domain busy fraction: task seconds over worker seconds, one
     gauge per domain that ran pool work. *)
  let busy = Hashtbl.create 8 and total = Hashtbl.create 8 in
  List.iter
    (fun (s : Span.span) ->
      let add tbl =
        let d = s.Span.domain in
        Hashtbl.replace tbl d
          (Option.value (Hashtbl.find_opt tbl d) ~default:0.
          +. seconds_of_span s)
      in
      if s.Span.name = "pool.task" then add busy
      else if s.Span.name = "pool.worker" then add total)
    r.Span.spans;
  Hashtbl.iter
    (fun d t ->
      if t > 0. then
        Metrics.set_gauge m
          (Printf.sprintf "domain%d_busy_fraction" d)
          (Option.value (Hashtbl.find_opt busy d) ~default:0. /. t))
    total;
  (match pairs with
  | Some p ->
    Metrics.incr ~by:p m "campaign_pairs";
    (match wall_s with
    | Some w when w > 0. ->
      Metrics.set_gauge m "campaign_pairs_per_sec" (float_of_int p /. w)
    | _ -> ())
  | None -> ());
  (match wall_s with
  | Some w -> Metrics.set_gauge m "campaign_wall_seconds" w
  | None -> ());
  m
