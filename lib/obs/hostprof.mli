(** Host-side self-profiling: where does the {e simulator} spend its
    wall clock and allocation?

    The sink timestamps every event and charges the gap since the
    previous event to the pipeline stage that emitted it (the emission
    order within a cycle is fixed — DESIGN.md §11 — so inter-event
    gaps bracket stage work), and samples [Gc.quick_stat] every
    [sample] cycles for allocation and collection deltas. Numbers are
    host-dependent by nature; use them to find simulator hot spots,
    never in golden comparisons. *)

type t

(** [sample] is the Gc sampling period in cycles (default 1000). *)
val create : ?sample:int -> unit -> t

val sink : t -> Sdiq_events.Event.t -> unit

(** Subscribe as ["hostprof"]. *)
val attach : ?sample:int -> Sdiq_cpu.Pipeline.t -> t

val events : t -> int
val cycles : t -> int

(** Stage name to accumulated seconds, fixed stage order
    (fetch, dispatch, issue, writeback, commit, accounting). *)
val stage_seconds : t -> (string * float) list

(** Gc deltas since creation, as of the last sample point:
    minor/major/promoted words, minor/major/forced-major collection
    counts, plus [top_heap_words] — a level (the largest major heap so
    far), not a delta. *)
val gc_report : t -> (string * float) list

(** Fold the profile into [m] for OpenMetrics exposition: [host_events],
    [host_cycles] and the Gc collection counts as counters;
    [host_stage_seconds_*], the Gc word deltas and [host_gc_top_heap_words]
    as gauges. *)
val metrics_into : t -> Metrics.t -> unit

(** {!metrics_into} on a fresh registry. *)
val to_metrics : t -> Metrics.t

val to_json : t -> string
val pp : Format.formatter -> t -> unit
