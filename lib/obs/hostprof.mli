(** Host-side self-profiling: where does the {e simulator} spend its
    wall clock and allocation?

    The sink timestamps every event and charges the gap since the
    previous event to the pipeline stage that emitted it (the emission
    order within a cycle is fixed — DESIGN.md §11 — so inter-event
    gaps bracket stage work), and samples [Gc.quick_stat] every
    [sample] cycles for allocation and collection deltas. Numbers are
    host-dependent by nature; use them to find simulator hot spots,
    never in golden comparisons. *)

type t

(** [sample] is the Gc sampling period in cycles (default 1000). *)
val create : ?sample:int -> unit -> t

val sink : t -> Sdiq_events.Event.t -> unit

(** Subscribe as ["hostprof"]. *)
val attach : ?sample:int -> Sdiq_cpu.Pipeline.t -> t

val events : t -> int
val cycles : t -> int

(** Stage name to accumulated seconds, fixed stage order
    (fetch, dispatch, issue, writeback, commit, accounting). *)
val stage_seconds : t -> (string * float) list

(** Gc deltas since creation, as of the last sample point:
    minor/major/promoted words and minor/major collections. *)
val gc_report : t -> (string * float) list

val to_json : t -> string
val pp : Format.formatter -> t -> unit
