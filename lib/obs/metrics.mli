(** A named registry of counters, gauges, {!Hist} histograms and
    {!Series} time series — the streaming-metrics bundle a profiling
    sink accumulates during one run.

    Everything is keyed by name; every listing and rendering is
    name-sorted, so two equal registries render byte-identically
    regardless of insertion order. {!merge} is associative and
    commutative (counters sum, gauges keep the maximum, histograms and
    series merge cell-wise), which makes the domain-pool campaign
    merge independent of shard order: merging per-shard registries in
    key order reproduces the serial registry exactly. *)

type t

val create : unit -> t

(** Add [by] (default 1) to counter [name], creating it at 0. *)
val incr : ?by:int -> t -> string -> unit

(** Current value; 0 when absent. *)
val counter : t -> string -> int

(** Set gauge [name]. Gauges record a level, not a flow: {!merge}
    keeps the maximum of the two sides. *)
val set_gauge : t -> string -> float -> unit

val gauge : t -> string -> float option

(** Find-or-create the histogram [name]; raises [Invalid_argument] if
    it exists with a different shape. *)
val hist : t -> string -> Hist.kind -> Hist.t

val find_hist : t -> string -> Hist.t option

(** Find-or-create the series [name]; raises [Invalid_argument] if it
    exists with a different window. *)
val series : t -> string -> window:int -> Series.t

val find_series : t -> string -> Series.t option

(** All entries of each kind, name-sorted. *)
val counters : t -> (string * int) list

val gauges : t -> (string * float) list
val hists : t -> (string * Hist.t) list
val all_series : t -> (string * Series.t) list

(** Pure merge: union of names; counters sum, gauges max, histograms
    and series merge cell-wise. Raises [Invalid_argument] when a
    shared name has mismatched shapes. *)
val merge : t -> t -> t

val equal : t -> t -> bool

(** Canonical name-sorted rendering — byte-comparable across runs and
    shard counts. *)
val to_string : t -> string

val to_json : t -> string

(** Prometheus/OpenMetrics text exposition of the whole registry, ending
    with [# EOF]. Family names are sanitised to [[a-zA-Z0-9_:]] and
    prefixed ["sdiq_"]; counters render as [<name>_total], histograms as
    cumulative [<name>_bucket{le="..."}] lines (integer-inclusive upper
    bounds derived from the {!Hist.kind}) plus [_sum]/[_count], and
    series cells as a gauge family labelled [{cell,window}]. Name-sorted
    like every other rendering, hence byte-comparable across runs.
    Family and sample names are unique in the output even when
    sanitisation or derived suffixes collide (e.g. ["a.b"] vs ["a_b"],
    or a gauge ["x_total"] vs a counter ["x"]): the later family in
    rendering order is disambiguated with [_2], [_3], … *)
val to_openmetrics : t -> string

val pp : Format.formatter -> t -> unit
