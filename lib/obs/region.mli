(** The static region map attribution runs against: one region per
    compiler annotation (the paper's per-DAG-block / per-loop-header
    [Iqset] sites, Sections 3-4), plus a region per library procedure
    (opaque to the analysis), a preamble region for any unannotated
    procedure prefix, and a synthetic startup region for events before
    the first commit.

    The map lives in the address space of the binary the machine
    actually executes: for NOOP delivery the emitted addresses are
    recovered from the annotated binary itself via
    {!Sdiq_analysis.Lint.noop_address_map} (the same reconstruction
    the delivery lints audit with), for tag delivery and for
    unannotated binaries the addresses are unchanged. A committed
    instruction's [pc] therefore always resolves via {!of_addr}. *)

(** How annotations reach (or don't reach) the running binary —
    mirrors the harness's five techniques without depending on it:
    [Plain] covers both [Baseline] and [Abella] (unmodified binary;
    regions are still the analysis's regions, so attribution under the
    non-resizing configurations uses the same decomposition). *)
type delivery =
  | Plain
  | Noop
  | Tagged of { improved : bool }
  | Tightened  (** tag delivery of the {!Sdiq_analysis.Tighten} windows *)

type kind =
  | Startup  (** synthetic: events before the first commit *)
  | Preamble  (** unannotated prefix of a procedure *)
  | Library  (** a library procedure, opaque to the analysis *)
  | Block  (** a DAG-block or re-entry annotation *)
  | Loop  (** a loop-header annotation (has a [loop_span]) *)

type info = {
  id : int;
  proc : string;
  kind : kind;
  start : int;  (** first address in the running binary; -1 for Startup *)
  orig_start : int;  (** address in the original binary; -1 if none *)
  granted : int option;  (** the annotation's [Iqset] window, if any *)
}

type t

(** Analyse [original], apply [delivery], and index the result. The
    running binary built here is exactly what
    [Sdiq_harness.Technique.prepare] builds for the matching
    technique (both call the same deterministic rewriter). *)
val build : delivery -> Sdiq_isa.Prog.t -> t

val delivery : t -> delivery

(** The binary the map's addresses refer to — load this one. *)
val running_prog : t -> Sdiq_isa.Prog.t

(** Number of regions, Startup included. *)
val count : t -> int

val info : t -> int -> info
val infos : t -> info array

(** Region owning a running-binary address; raises [Invalid_argument]
    outside [0, length). *)
val of_addr : t -> int -> int

val kind_name : kind -> string
val delivery_name : delivery -> string
val pp_info : Format.formatter -> info -> unit
