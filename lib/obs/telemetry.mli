(** Campaign-wide telemetry: the user-facing layer over
    {!Sdiq_util.Spanlog}'s per-domain span collection.

    A campaign (or any instrumented run) brackets itself with {!start}
    and {!drain}; in between, the pool, the runner and the sampling
    harness record spans (task execution, per-pair simulation,
    ff/warmup/window phases) and counters (memo hits/misses, steals)
    into domain-local buffers. {!drain} merges them deterministically
    — (domain, sequence) order — and this module renders the result:

    - {!to_chrome_json}: a Chrome trace-event document ("traceEvents"
      of complete [ph:"X"] events, microsecond timestamps relative to
      collector start, one [tid] per domain) that chrome://tracing and
      Perfetto load directly;
    - {!to_metrics}: host-level metric registry — per-span-name counts
      and total seconds, campaign counters, memo hit ratio, per-domain
      busy fractions — ready for {!Metrics.to_openmetrics}.

    Spans observe only the host side; the suite pins that a traced
    campaign's simulation output is [Stats.equal] to an untraced one. *)

module Span = Sdiq_util.Spanlog

(** Install a fresh collector ({!Sdiq_util.Spanlog.start}). *)
val start : unit -> unit

val active : unit -> bool

(** Uninstall and merge ({!Sdiq_util.Spanlog.drain}). *)
val drain : unit -> Span.result option

(** Chrome trace-event JSON of a drained result. *)
val to_chrome_json : Span.result -> string

(** Host-level metrics of a drained result:
    [span_<name>] counters and [span_<name>_seconds] gauges per span
    name, [telemetry_<name>] counters for every drained counter, a
    [memo_hit_ratio] gauge when memo counters are present, and
    [domain<d>_busy_fraction] gauges (task time over worker time) per
    pool domain. When the caller knows the campaign geometry (the
    runner's campaign stats), [~pairs] and [~wall_s] add
    [campaign_pairs], [campaign_wall_seconds] and [campaign_pairs_per_sec]. *)
val to_metrics : ?pairs:int -> ?wall_s:float -> Span.result -> Metrics.t

(** [write_chrome file r]: {!to_chrome_json} to [file]. *)
val write_chrome : string -> Span.result -> unit
