(* The static region map: annotation sites, library procedures and
   procedure preambles, indexed by running-binary address.

   For NOOP delivery the emitted addresses are reconstructed from the
   annotated binary itself (Lint.noop_address_map) rather than by
   re-running the rewriter's arithmetic, so the profiler attributes
   against the same address map the delivery lints audit. A region's
   span is the half-open address interval from its anchor to the next
   anchor: annotations are placed at DAG-block starts, loop headers
   and re-entry points, so interval membership matches the "covers
   until the next special NOOP" semantics for committed pcs. *)

open Sdiq_isa
module Procedure = Sdiq_core.Procedure
module Annotate = Sdiq_core.Annotate

type delivery =
  | Plain
  | Noop
  | Tagged of { improved : bool }
  | Tightened

type kind =
  | Startup
  | Preamble
  | Library
  | Block
  | Loop

type info = {
  id : int;
  proc : string;
  kind : kind;
  start : int;
  orig_start : int;
  granted : int option;
}

type t = {
  delivery : delivery;
  running : Prog.t;
  infos : info array;
  addr_map : int array; (* running address -> region id *)
}

let kind_name = function
  | Startup -> "startup"
  | Preamble -> "preamble"
  | Library -> "library"
  | Block -> "block"
  | Loop -> "loop"

let delivery_name = function
  | Plain -> "plain"
  | Noop -> "noop"
  | Tagged { improved = false } -> "tagged"
  | Tagged { improved = true } -> "tagged-improved"
  | Tightened -> "tightened"

let build delivery (original : Prog.t) : t =
  let running, annotations, start_of =
    match delivery with
    | Plain ->
      (original, Procedure.analyze_program original, fun (a : Procedure.annotation) -> a.Procedure.addr)
    | Tagged { improved } ->
      let running, anns =
        if improved then Annotate.improved original
        else Annotate.extension original
      in
      (running, anns, fun (a : Procedure.annotation) -> a.Procedure.addr)
    | Tightened ->
      let running, anns =
        Sdiq_analysis.Tighten.apply Annotate.Tagged original
      in
      (running, anns, fun (a : Procedure.annotation) -> a.Procedure.addr)
    | Noop -> (
      let running, anns = Annotate.noop original in
      match
        Sdiq_analysis.Lint.noop_address_map ~original ~annotated:running
      with
      | None ->
        (* The rewriter preserves the original instruction sequence by
           construction; failing to recover it means the binary is not
           one of ours. *)
        invalid_arg
          "Region.build: annotated binary does not embed the original \
           instruction sequence"
      | Some (new_of_orig, iqset_before) ->
        ( running,
          anns,
          fun (a : Procedure.annotation) ->
            match iqset_before.(a.Procedure.addr) with
            | Some (j, _) -> j
            | None -> new_of_orig.(a.Procedure.addr) ))
  in
  let orig_entry name =
    match Prog.find_proc original name with
    | Some p -> p.Prog.entry
    | None -> -1
  in
  (* Anchors: (running start, kind, proc, orig start, granted). *)
  let ann_anchors =
    List.map
      (fun (a : Procedure.annotation) ->
        let start = start_of a in
        let proc =
          match Prog.proc_of_addr running start with
          | Some p -> p.Prog.name
          | None -> ""
        in
        let kind =
          match a.Procedure.loop_span with Some _ -> Loop | None -> Block
        in
        (start, kind, proc, a.Procedure.addr, Some a.Procedure.value))
      annotations
  in
  let ann_starts = List.map (fun (s, _, _, _, _) -> s) ann_anchors in
  let proc_anchors =
    List.filter_map
      (fun (p : Prog.proc) ->
        if p.Prog.len = 0 then None
        else if p.Prog.is_library then
          Some (p.Prog.entry, Library, p.Prog.name, orig_entry p.Prog.name, None)
        else if List.mem p.Prog.entry ann_starts then None
        else
          (* Unannotated procedure prefix: attribute it to a preamble
             region rather than letting it leak into a neighbour. *)
          Some
            (p.Prog.entry, Preamble, p.Prog.name, orig_entry p.Prog.name, None))
      running.Prog.procs
  in
  let anchors =
    List.sort
      (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b)
      (ann_anchors @ proc_anchors)
  in
  let startup =
    { id = 0; proc = ""; kind = Startup; start = -1; orig_start = -1; granted = None }
  in
  let infos =
    Array.of_list
      (startup
      :: List.mapi
           (fun i (start, kind, proc, orig_start, granted) ->
             { id = i + 1; proc; kind; start; orig_start; granted })
           anchors)
  in
  let n = Prog.length running in
  let addr_map = Array.make n 0 in
  let next = ref 1 in
  let cur = ref 0 in
  for addr = 0 to n - 1 do
    while !next < Array.length infos && infos.(!next).start <= addr do
      cur := !next;
      incr next
    done;
    addr_map.(addr) <- !cur
  done;
  { delivery; running; infos; addr_map }

let delivery t = t.delivery
let running_prog t = t.running
let count t = Array.length t.infos

let info t i =
  if i < 0 || i >= Array.length t.infos then
    invalid_arg "Region.info: no such region";
  t.infos.(i)

let infos t = Array.copy t.infos

let of_addr t addr =
  if addr < 0 || addr >= Array.length t.addr_map then
    invalid_arg (Printf.sprintf "Region.of_addr: address %d out of range" addr);
  t.addr_map.(addr)

let pp_info ppf i =
  Fmt.pf ppf "R%d %s%s@%d (%s%s)" i.id
    (if i.proc = "" then "-" else i.proc)
    (if i.orig_start >= 0 && i.orig_start <> i.start then
       Fmt.str "[orig %d]" i.orig_start
     else "")
    i.start (kind_name i.kind)
    (match i.granted with Some g -> Fmt.str ", granted %d" g | None -> "")
