(** Region-level attribution of the event stream.

    A profiler is one more event sink: it folds every pipeline event
    into the {!Sdiq_cpu.Stats} bucket of the {e currently committed
    region} — the region owning the pc of the last committed
    instruction (the synthetic startup region before the first
    commit). A [Commit] switches the current region first and is then
    attributed to the region being entered.

    Because each event lands in exactly one bucket and the bucket fold
    is {!Sdiq_cpu.Stats.absorb} itself (with per-region [cycles]
    counted as cycles-spent-in-region rather than absorbed as a
    running total), summing the per-region statistics reproduces the
    pipeline's own global statistics {e exactly}, integer for integer
    — and pricing that sum with the linear energy models reproduces
    the power meter float for float. The conservation test pins both.

    Alongside the buckets it keeps a {!Metrics} registry (event/commit
    /cycle counters, occupancy and gated-wakeup histograms, per-window
    commit and wakeup series) whose canonical rendering is
    byte-comparable across shard counts. *)

type t

(** [create ?params ?cfg ?window map] builds a detached profiler;
    [cfg] shapes the occupancy histogram (defaults to the Table 1
    machine), [params] prices the per-region energies, [window] is the
    time-series bucket width in cycles (default 1000). *)
val create :
  ?params:Sdiq_power.Params.t ->
  ?cfg:Sdiq_cpu.Config.t ->
  ?window:int ->
  Region.t ->
  t

(** The event sink; feed it the full stream of one run. *)
val sink : t -> Sdiq_events.Event.t -> unit

(** Create a profiler matching [p]'s configuration and subscribe it as
    ["region-profiler"]. The pipeline must be running
    [Region.running_prog map]. *)
val attach :
  ?params:Sdiq_power.Params.t ->
  ?window:int ->
  Region.t ->
  Sdiq_cpu.Pipeline.t ->
  t

val map : t -> Region.t
val metrics : t -> Metrics.t

(** Per-region statistics bucket (live; do not mutate). *)
val region_stats : t -> int -> Sdiq_cpu.Stats.t

(** Peak IQ occupancy observed while the region was current. *)
val region_peak : t -> int -> int

(** Fresh sum of every region bucket — equal to the pipeline's own
    statistics for the same run. *)
val total_stats : t -> Sdiq_cpu.Stats.t

type row = {
  info : Region.info;
  stats : Sdiq_cpu.Stats.t;
  peak_occ : int;
  iq_energy : float;  (** technique-priced IQ energy of this bucket *)
  scan_energy : float;
      (** the select-scan slice of [iq_energy]: slots the picker
          examined while this region was current, priced at
          [Params.e_scan_entry] — the term bounded-scan policies
          ([Sched.Nskip]) shrink *)
  rf_energy : float;  (** gated int-RF energy of this bucket *)
  share_cycles : float;  (** fraction of all cycles, 0..1 *)
  share_wakeups : float;  (** fraction of gated wakeups, 0..1 *)
  share_energy : float;  (** fraction of IQ+RF energy, 0..1 *)
  wp_frac : float;
      (** wrong-path fraction of this region's dispatches, 0..1 —
          how much of the region's queue traffic was speculative work
          later squashed *)
}

(** One row per region, id order (including inactive regions). *)
val rows : t -> row list

type slack_entry = {
  entry_info : Region.info;
  peak : int;  (** peak occupancy observed while current; 0 if never *)
  slack : int;  (** granted window minus peak; > 0 = over-provisioned *)
}

(** Annotation-slack report: every region carrying a granted [Iqset]
    window, largest slack first. Entries with positive [slack] name
    annotations whose window was never filled — candidates for a
    tighter static bound. *)
val slack : t -> slack_entry list

val to_json : t -> string

val csv_header : string

(** One CSV line per region, id order, matching {!csv_header}. *)
val csv_rows : t -> string list

(** Activity table, energy-share order; [top] truncates (default all).
    Regions that never became current are omitted. *)
val pp_table : ?top:int -> Format.formatter -> t -> unit
