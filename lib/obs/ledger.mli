(** The persistent run ledger: one JSONL record per campaign/bench run,
    appended to [telemetry/ledger.jsonl], and the regression gate
    [bin/benchdiff.exe] evaluates over it.

    A record carries provenance (git describe, a digest of the machine
    configuration and scheduler policy), geometry (domain count, pairs)
    and the measurements worth tracking across commits: wall clock,
    the MIPS probes, and total IQ energy by technique. Records are
    append-only — the ledger is the perf trajectory, so nothing ever
    rewrites it.

    {!gate} compares the newest record against the most recent earlier
    record of the same kind and digest: a detailed- or sampled-MIPS
    drop beyond the threshold (default 10%) fails, and {e any} drift
    in an energy total fails outright — energies are deterministic
    given the digest, so a change means the simulator changed. *)

type record = {
  schema : int;  (** record format version; currently 1 *)
  time : string;  (** ISO-8601 UTC *)
  git : string;  (** [git describe --always --dirty], or "unknown" *)
  kind : string;  (** "campaign" | "mips" | "report" | test kinds *)
  digest : string;  (** {!config_digest} of config + policy *)
  domains : int;
  pairs : int;
  wall_s : float;
  mips_detailed : float option;
  mips_sampled : float option;
  energy : (string * float) list;  (** technique -> total IQ energy *)
}

(** MD5 hex of the rendered machine configuration plus the scheduler
    policy key — two runs with equal digests must produce identical
    simulation numbers. [extra] folds further run-shaping inputs into
    the digest (e.g. the instruction budget) so runs that legitimately
    differ never gate against each other. *)
val config_digest :
  ?extra:string -> Sdiq_cpu.Config.t -> Sdiq_cpu.Sched.t -> string

(** The hostname, for folding into the digest of records whose
    measurements are host-speed (MIPS, wall clock): a digest that
    includes the host never matches a record taken on another machine,
    so {!gate}'s strict threshold only ever compares same-machine runs
    — on a new host such a record seeds rather than gates.
    "unknown-host" when the hostname is unavailable. *)
val host_id : unit -> string

(** [git describe --always --dirty]; "unknown" when git is absent. *)
val git_describe : unit -> string

(** Build a record; [time] defaults to now (UTC), [git] to
    {!git_describe}, [digest] to the default config/policy digest. *)
val make :
  ?time:string ->
  ?git:string ->
  ?digest:string ->
  ?domains:int ->
  ?pairs:int ->
  ?wall_s:float ->
  ?mips_detailed:float ->
  ?mips_sampled:float ->
  ?energy:(string * float) list ->
  kind:string ->
  unit ->
  record

val to_json : record -> string
val of_json : Sdiq_util.Json.t -> (record, string) result

(** Append one record (one line) to [file], creating the file and its
    parent directory as needed. *)
val append : file:string -> record -> unit

(** Every record of the ledger, oldest first. [Error] on an unreadable
    or malformed line (the message names the line). An absent file is
    an empty ledger. *)
val load : file:string -> (record list, string) result

type verdict = { ok : bool; messages : string list }

(** Evaluate the newest record against its predecessors (same kind and
    digest). [threshold] is the fractional MIPS regression allowed
    (default 0.10). An empty ledger or a record with no comparable
    predecessor passes (it seeds the trajectory). *)
val gate : ?threshold:float -> record list -> verdict

(** Compare the newest MIPS-carrying record against an external probe
    file ([BENCH_mips.json] as written by [bench/main.exe --mips-json]):
    fails when detailed or sampled MIPS fall more than [threshold]
    below the archived numbers. *)
val gate_against_probe :
  ?threshold:float -> probe_json:Sdiq_util.Json.t -> record list -> verdict
