open Sdiq_cpu
module Event = Sdiq_events.Event
module Exec = Sdiq_isa.Exec
module Params = Sdiq_power.Params
module Iq_power = Sdiq_power.Iq_power
module Rf_power = Sdiq_power.Rf_power

type per = {
  stats : Stats.t;
  occ : Hist.t; (* cycle-end IQ occupancy while this region was current *)
  mutable peak : int;
}

type t = {
  map : Region.t;
  params : Params.t;
  regions : per array;
  metrics : Metrics.t;
  commits_series : Series.t;
  wakeups_series : Series.t;
  occ_hist : Hist.t;
  wakeup_hist : Hist.t;
  mutable cur : int;
  mutable cycle : int; (* cycle currently in flight, Trace-sink style *)
}

let create ?(params = Params.default) ?(cfg = Config.default) ?(window = 1000)
    map =
  let occ_kind =
    Hist.Linear { width = 8; buckets = (cfg.Config.iq_size / 8) + 1 }
  in
  let metrics = Metrics.create () in
  {
    map;
    params;
    regions =
      Array.init (Region.count map) (fun _ ->
          { stats = Stats.create (); occ = Hist.create occ_kind; peak = 0 });
    metrics;
    commits_series = Metrics.series metrics "commits_per_window" ~window;
    wakeups_series = Metrics.series metrics "wakeups_gated_per_window" ~window;
    occ_hist = Metrics.hist metrics "iq_occupancy" occ_kind;
    wakeup_hist = Metrics.hist metrics "wakeup_gated" (Hist.Log2 { buckets = 16 });
    cur = 0;
    cycle = 0;
  }

let sink t ev =
  (* A commit moves the machine into the committed pc's region; the
     commit itself is charged to the region being entered. *)
  (match ev with
  | Event.Commit { dyn } ->
    let r = Region.of_addr t.map dyn.Exec.pc in
    if r <> t.cur then begin
      t.cur <- r;
      Metrics.incr t.metrics "region_switches"
    end
  | _ -> ());
  let per = t.regions.(t.cur) in
  (match ev with
  | Event.Cycle_end { iq_occupancy; _ } ->
    (* absorb would overwrite the bucket's [cycles] with the global
       running total; per-region cycles must be cycles-spent-here so
       the buckets sum to the global count. *)
    let spent = per.stats.Stats.cycles in
    Stats.absorb per.stats ev;
    per.stats.Stats.cycles <- spent + 1;
    Hist.observe per.occ iq_occupancy;
    if iq_occupancy > per.peak then per.peak <- iq_occupancy
  | _ -> Stats.absorb per.stats ev);
  Metrics.incr t.metrics "events";
  match ev with
  | Event.Commit _ ->
    Metrics.incr t.metrics "commits";
    Series.observe t.commits_series ~cycle:t.cycle 1
  | Event.Wakeup { gated; _ } ->
    Metrics.incr ~by:gated t.metrics "wakeups_gated";
    Hist.observe t.wakeup_hist gated;
    Series.observe t.wakeups_series ~cycle:t.cycle gated
  | Event.Cycle_end { cycle; iq_occupancy; _ } ->
    Metrics.incr t.metrics "cycles";
    Hist.observe t.occ_hist iq_occupancy;
    t.cycle <- cycle + 1
  | _ -> ()

let attach ?params ?window map p =
  let cfg = Pipeline.Debug.cfg p in
  let t = create ?params ~cfg ?window map in
  Pipeline.subscribe ~name:"region-profiler" p (sink t);
  t

let map t = t.map
let metrics t = t.metrics
let region_stats t i = t.regions.(i).stats
let region_peak t i = t.regions.(i).peak

let total_stats t =
  let s = Stats.create () in
  Array.iter (fun per -> Stats.add s per.stats) t.regions;
  s

type row = {
  info : Region.info;
  stats : Stats.t;
  peak_occ : int;
  iq_energy : float;
  scan_energy : float;
  rf_energy : float;
  share_cycles : float;
  share_wakeups : float;
  share_energy : float;
  wp_frac : float;
}

let energy_of t (s : Stats.t) =
  let iq = Iq_power.technique t.params s in
  let rf = Rf_power.int_gated t.params s in
  ( iq.Iq_power.dynamic +. iq.Iq_power.static_,
    rf.Rf_power.dynamic +. rf.Rf_power.static_ )

let share part whole = if whole <= 0. then 0. else part /. whole

let rows t =
  let total = total_stats t in
  let tot_iq, tot_rf = energy_of t total in
  let tot_e = tot_iq +. tot_rf in
  let tot_cycles = float_of_int total.Stats.cycles in
  let tot_wakeups = float_of_int total.Stats.iq_wakeups_gated in
  Array.to_list
    (Array.mapi
       (fun i (per : per) ->
         let iq_energy, rf_energy = energy_of t per.stats in
         {
           info = Region.info t.map i;
           stats = per.stats;
           peak_occ = per.peak;
           iq_energy;
           scan_energy =
             float_of_int per.stats.Stats.iq_scan_entries
             *. t.params.Params.e_scan_entry;
           rf_energy;
           share_cycles = share (float_of_int per.stats.Stats.cycles) tot_cycles;
           share_wakeups =
             share (float_of_int per.stats.Stats.iq_wakeups_gated) tot_wakeups;
           share_energy = share (iq_energy +. rf_energy) tot_e;
           wp_frac =
             share
               (float_of_int per.stats.Stats.wp_dispatched)
               (float_of_int per.stats.Stats.dispatched);
         })
       t.regions)

type slack_entry = {
  entry_info : Region.info;
  peak : int;
  slack : int;
}

let slack t =
  let entries =
    List.filter_map
      (fun (info : Region.info) ->
        match info.Region.granted with
        | None -> None
        | Some granted ->
          let peak = t.regions.(info.Region.id).peak in
          Some { entry_info = info; peak; slack = granted - peak })
      (Array.to_list (Region.infos t.map))
  in
  List.sort
    (fun a b ->
      if a.slack <> b.slack then compare b.slack a.slack
      else compare a.entry_info.Region.id b.entry_info.Region.id)
    entries

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let obj fields = "{" ^ String.concat "," fields ^ "}"
let arr items = "[" ^ String.concat "," items ^ "]"
let fnum v = Printf.sprintf "%.17g" v

let json_of_row r =
  obj
    [
      Printf.sprintf {|"id":%d|} r.info.Region.id;
      Printf.sprintf {|"proc":"%s"|} (json_escape r.info.Region.proc);
      Printf.sprintf {|"kind":"%s"|} (Region.kind_name r.info.Region.kind);
      Printf.sprintf {|"start":%d|} r.info.Region.start;
      Printf.sprintf {|"orig_start":%d|} r.info.Region.orig_start;
      Printf.sprintf {|"granted":%s|}
        (match r.info.Region.granted with
        | Some g -> string_of_int g
        | None -> "null");
      Printf.sprintf {|"cycles":%d|} r.stats.Stats.cycles;
      Printf.sprintf {|"committed":%d|} r.stats.Stats.committed;
      Printf.sprintf {|"wakeups_gated":%d|} r.stats.Stats.iq_wakeups_gated;
      Printf.sprintf {|"wp_dispatched":%d|} r.stats.Stats.wp_dispatched;
      Printf.sprintf {|"squashed":%d|} r.stats.Stats.squashed;
      Printf.sprintf {|"wp_frac":%s|} (fnum r.wp_frac);
      Printf.sprintf {|"peak_occupancy":%d|} r.peak_occ;
      Printf.sprintf {|"scan_entries":%d|} r.stats.Stats.iq_scan_entries;
      Printf.sprintf {|"iq_energy":%s|} (fnum r.iq_energy);
      Printf.sprintf {|"scan_energy":%s|} (fnum r.scan_energy);
      Printf.sprintf {|"rf_energy":%s|} (fnum r.rf_energy);
      Printf.sprintf {|"share_cycles":%s|} (fnum r.share_cycles);
      Printf.sprintf {|"share_wakeups":%s|} (fnum r.share_wakeups);
      Printf.sprintf {|"share_energy":%s|} (fnum r.share_energy);
    ]

let to_json t =
  let total = total_stats t in
  let tot_iq, tot_rf = energy_of t total in
  obj
    [
      Printf.sprintf {|"delivery":"%s"|}
        (Region.delivery_name (Region.delivery t.map));
      Printf.sprintf {|"regions":%s|} (arr (List.map json_of_row (rows t)));
      Printf.sprintf {|"totals":%s|}
        (obj
           (List.map
              (fun (k, v) -> Printf.sprintf {|"%s":%d|} (json_escape k) v)
              (Stats.to_fields total)
           @ [
               Printf.sprintf {|"iq_energy":%s|} (fnum tot_iq);
               Printf.sprintf {|"rf_energy":%s|} (fnum tot_rf);
             ]));
      Printf.sprintf {|"slack":%s|}
        (arr
           (List.map
              (fun e ->
                obj
                  [
                    Printf.sprintf {|"id":%d|} e.entry_info.Region.id;
                    Printf.sprintf {|"proc":"%s"|}
                      (json_escape e.entry_info.Region.proc);
                    Printf.sprintf {|"granted":%s|}
                      (match e.entry_info.Region.granted with
                      | Some g -> string_of_int g
                      | None -> "null");
                    Printf.sprintf {|"peak":%d|} e.peak;
                    Printf.sprintf {|"slack":%d|} e.slack;
                  ])
              (slack t)));
      Printf.sprintf {|"metrics":%s|} (Metrics.to_json t.metrics);
    ]

let csv_header =
  "id,proc,kind,start,orig_start,granted,cycles,committed,wakeups_gated,\
   wp_dispatched,squashed,peak_occupancy,scan_entries,iq_energy,scan_energy,\
   rf_energy,share_cycles,share_wakeups,share_energy,wp_frac"

let csv_rows t =
  List.map
    (fun r ->
      Printf.sprintf
        "%d,%s,%s,%d,%d,%s,%d,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,\
         %.6f"
        r.info.Region.id r.info.Region.proc
        (Region.kind_name r.info.Region.kind)
        r.info.Region.start r.info.Region.orig_start
        (match r.info.Region.granted with
        | Some g -> string_of_int g
        | None -> "")
        r.stats.Stats.cycles r.stats.Stats.committed
        r.stats.Stats.iq_wakeups_gated r.stats.Stats.wp_dispatched
        r.stats.Stats.squashed r.peak_occ r.stats.Stats.iq_scan_entries
        r.iq_energy r.scan_energy r.rf_energy
        r.share_cycles r.share_wakeups r.share_energy r.wp_frac)
    (rows t)

let pp_table ?top ppf t =
  let active =
    List.filter
      (fun r -> r.stats.Stats.cycles > 0 || r.stats.Stats.committed > 0)
      (rows t)
  in
  let ranked =
    List.sort
      (fun a b ->
        if a.share_energy <> b.share_energy then
          compare b.share_energy a.share_energy
        else compare a.info.Region.id b.info.Region.id)
      active
  in
  let shown =
    match top with
    | Some n when n >= 0 && n < List.length ranked -> List.filteri (fun i _ -> i < n) ranked
    | _ -> ranked
  in
  Fmt.pf ppf "@[<v>%-4s %-14s %-9s %7s %9s %9s %5s %6s %6s %6s %6s" "id"
    "proc" "kind" "start" "cycles" "commits" "peak" "e%" "cyc%" "wake%" "wp%";
  List.iter
    (fun r ->
      Fmt.cut ppf ();
      Fmt.pf ppf "R%-3d %-14s %-9s %7d %9d %9d %5d %6.2f %6.2f %6.2f %6.2f"
        r.info.Region.id
        (if r.info.Region.proc = "" then "-" else r.info.Region.proc)
        (Region.kind_name r.info.Region.kind)
        r.info.Region.start r.stats.Stats.cycles r.stats.Stats.committed
        r.peak_occ
        (100. *. r.share_energy)
        (100. *. r.share_cycles)
        (100. *. r.share_wakeups)
        (100. *. r.wp_frac))
    shown;
  (if List.length shown < List.length ranked then begin
     Fmt.cut ppf ();
     Fmt.pf ppf "... %d more region(s)" (List.length ranked - List.length shown)
   end);
  Fmt.pf ppf "@]"
