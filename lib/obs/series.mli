(** Windowed time series: one integer cell per [window] cycles.

    [observe t ~cycle v] adds [v] to cell [cycle / window]; the
    backing array grows geometrically, so a long run costs amortised
    O(1) per observation and no per-cycle allocation. Totals are exact
    ([total] is the plain sum of every observation).

    Series with the same window merge cell-wise ({!merge}); merging is
    associative and commutative, so per-shard series combine into a
    campaign series independently of shard order. *)

type t

(** Raises [Invalid_argument] on a non-positive window. *)
val create : window:int -> t

val window : t -> int

(** Raises [Invalid_argument] on a negative cycle. *)
val observe : t -> cycle:int -> int -> unit

(** Number of cells in use (index of the last written cell + 1). *)
val length : t -> int

(** Value of cell [i]; 0 for cells beyond {!length}. *)
val get : t -> int -> int

(** Exact sum of every observation. *)
val total : t -> int

(** The used cells, in order (a copy). *)
val values : t -> int array

(** Pure cell-wise merge; raises [Invalid_argument] when windows
    differ. *)
val merge : t -> t -> t

val equal : t -> t -> bool

(** Canonical byte-comparable rendering. *)
val to_string : t -> string

val to_json : t -> string
val pp : Format.formatter -> t -> unit
