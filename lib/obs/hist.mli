(** Allocation-light integer histograms with exact totals.

    Two bucketings: [Linear { width; buckets }] maps value [v] to
    bucket [v / width] (clamped into the last bucket), and
    [Log2 { buckets }] maps 0 to bucket 0 and [v > 0] to bucket
    [floor(log2 v) + 1] (clamped). Alongside the buckets the histogram
    keeps the exact count, sum, min and max of every observation, so
    aggregate statistics never suffer bucket-quantisation error.

    Histograms of the same shape merge ({!merge}); merging is
    associative and commutative (every component is a sum, min or
    max), which is what lets the domain-pool runner combine per-shard
    histograms into a campaign histogram deterministically. *)

type kind =
  | Linear of { width : int; buckets : int }
  | Log2 of { buckets : int }

type t

(** Raises [Invalid_argument] on a non-positive width or bucket count. *)
val create : kind -> t

val kind : t -> kind

(** Record [n] (default 1) observations of value [v]; negative values
    clamp to 0. *)
val observe : ?n:int -> t -> int -> unit

val count : t -> int

(** Exact sum of every observed value. *)
val sum : t -> int

(** 0 when empty. *)
val min_value : t -> int

val max_value : t -> int
val mean : t -> float

(** Bucket occupancies, in bucket order (a copy). *)
val buckets : t -> int array

(** The bucket a value falls into under [kind]. *)
val bucket_index : kind -> int -> int

(** Human-readable value range of bucket [i], e.g. ["8-15"] or ["2-3"]. *)
val bucket_label : kind -> int -> string

(** Pure merge of two same-shaped histograms; raises
    [Invalid_argument] on a shape mismatch. *)
val merge : t -> t -> t

val equal : t -> t -> bool

(** Canonical byte-comparable rendering (shape, buckets and totals). *)
val to_string : t -> string

val to_json : t -> string
val pp : Format.formatter -> t -> unit
