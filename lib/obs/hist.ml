(* Integer histograms with exact totals.

   The buckets quantise; the (count, sum, min, max) sidecar does not,
   so means and totals read from a histogram are exact. Merge is
   component-wise sum/min/max, hence associative and commutative —
   the property the sharded campaign merge relies on (and that the
   qcheck suite pins). *)

type kind =
  | Linear of { width : int; buckets : int }
  | Log2 of { buckets : int }

type t = {
  kind : kind;
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_ : int; (* max_int when empty *)
  mutable max_ : int; (* min_int when empty *)
}

let num_buckets = function
  | Linear { buckets; _ } | Log2 { buckets } -> buckets

let create kind =
  (match kind with
  | Linear { width; buckets } ->
    if width <= 0 then invalid_arg "Hist.create: width must be positive";
    if buckets <= 0 then invalid_arg "Hist.create: buckets must be positive"
  | Log2 { buckets } ->
    if buckets <= 0 then invalid_arg "Hist.create: buckets must be positive");
  {
    kind;
    buckets = Array.make (num_buckets kind) 0;
    count = 0;
    sum = 0;
    min_ = max_int;
    max_ = min_int;
  }

let kind t = t.kind

let bucket_index kind v =
  let v = max 0 v in
  let n = num_buckets kind in
  match kind with
  | Linear { width; _ } -> min (v / width) (n - 1)
  | Log2 _ ->
    if v = 0 then 0
    else begin
      (* floor(log2 v) + 1, clamped into the last bucket *)
      let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
      min (go 1 v) (n - 1)
    end

let bucket_label kind i =
  let n = num_buckets kind in
  match kind with
  | Linear { width; _ } ->
    if i = n - 1 then Printf.sprintf ">=%d" (i * width)
    else if width = 1 then string_of_int i
    else Printf.sprintf "%d-%d" (i * width) (((i + 1) * width) - 1)
  | Log2 _ ->
    if i = 0 then "0"
    else if i = n - 1 then Printf.sprintf ">=%d" (1 lsl (i - 1))
    else if i = 1 then "1"
    else Printf.sprintf "%d-%d" (1 lsl (i - 1)) ((1 lsl i) - 1)

let observe ?(n = 1) t v =
  if n < 0 then invalid_arg "Hist.observe: negative occurrence count";
  if n > 0 then begin
    let v = max 0 v in
    let i = bucket_index t.kind v in
    t.buckets.(i) <- t.buckets.(i) + n;
    t.count <- t.count + n;
    t.sum <- t.sum + (n * v);
    if v < t.min_ then t.min_ <- v;
    if v > t.max_ then t.max_ <- v
  end

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_
let max_value t = if t.count = 0 then 0 else t.max_
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count
let buckets t = Array.copy t.buckets

let same_shape a b = a.kind = b.kind

let merge a b =
  if not (same_shape a b) then invalid_arg "Hist.merge: shape mismatch";
  {
    kind = a.kind;
    buckets = Array.init (Array.length a.buckets) (fun i -> a.buckets.(i) + b.buckets.(i));
    count = a.count + b.count;
    sum = a.sum + b.sum;
    min_ = min a.min_ b.min_;
    max_ = max a.max_ b.max_;
  }

let equal a b =
  a.kind = b.kind && a.buckets = b.buckets && a.count = b.count
  && a.sum = b.sum && a.min_ = b.min_ && a.max_ = b.max_

let kind_string = function
  | Linear { width; buckets } -> Printf.sprintf "linear:%d:%d" width buckets
  | Log2 { buckets } -> Printf.sprintf "log2:%d" buckets

let to_string t =
  Printf.sprintf "%s|%s|count=%d sum=%d min=%d max=%d" (kind_string t.kind)
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.buckets)))
    t.count t.sum (min_value t) (max_value t)

let to_json t =
  let kind_fields =
    match t.kind with
    | Linear { width; buckets } ->
      Printf.sprintf {|"kind":"linear","width":%d,"buckets":%d|} width buckets
    | Log2 { buckets } -> Printf.sprintf {|"kind":"log2","buckets":%d|} buckets
  in
  Printf.sprintf {|{%s,"counts":[%s],"count":%d,"sum":%d,"min":%d,"max":%d}|}
    kind_fields
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.buckets)))
    t.count t.sum (min_value t) (max_value t)

let pp ppf t = Fmt.string ppf (to_string t)
