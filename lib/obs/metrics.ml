(* Named counters, gauges, histograms and time series.

   Hashtbl-backed for O(1) hot-path updates; every listing sorts by
   name so rendering is canonical whatever the insertion or hashing
   order. Merge rules (sum / max / cell-wise) are all associative and
   commutative — the sharded-campaign determinism the test suite pins
   depends on exactly that. *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
  series : (string, Series.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 8;
    series = Hashtbl.create 8;
  }

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge t name = Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

let hist t name kind =
  match Hashtbl.find_opt t.hists name with
  | Some h ->
    if Hist.kind h <> kind then
      invalid_arg ("Metrics.hist: shape mismatch for " ^ name);
    h
  | None ->
    let h = Hist.create kind in
    Hashtbl.replace t.hists name h;
    h

let find_hist t name = Hashtbl.find_opt t.hists name

let series t name ~window =
  match Hashtbl.find_opt t.series name with
  | Some s ->
    if Series.window s <> window then
      invalid_arg ("Metrics.series: window mismatch for " ^ name);
    s
  | None ->
    let s = Series.create ~window in
    Hashtbl.replace t.series name s;
    s

let find_series t name = Hashtbl.find_opt t.series name

let sorted_assoc table value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_assoc t.counters ( ! )
let gauges t = sorted_assoc t.gauges ( ! )
let hists t = sorted_assoc t.hists Fun.id
let all_series t = sorted_assoc t.series Fun.id

let merge a b =
  let m = create () in
  List.iter (fun (k, v) -> incr ~by:v m k) (counters a);
  List.iter (fun (k, v) -> incr ~by:v m k) (counters b);
  List.iter (fun (k, v) -> set_gauge m k v) (gauges a);
  List.iter
    (fun (k, v) ->
      match gauge m k with
      | Some w -> set_gauge m k (Float.max v w)
      | None -> set_gauge m k v)
    (gauges b);
  List.iter (fun (k, h) -> Hashtbl.replace m.hists k (Hist.merge h (Hist.create (Hist.kind h)))) (hists a);
  List.iter
    (fun (k, h) ->
      match find_hist m k with
      | Some g -> Hashtbl.replace m.hists k (Hist.merge g h)
      | None -> Hashtbl.replace m.hists k (Hist.merge h (Hist.create (Hist.kind h))))
    (hists b);
  List.iter
    (fun (k, s) -> Hashtbl.replace m.series k (Series.merge s (Series.create ~window:(Series.window s))))
    (all_series a);
  List.iter
    (fun (k, s) ->
      match find_series m k with
      | Some r -> Hashtbl.replace m.series k (Series.merge r s)
      | None ->
        Hashtbl.replace m.series k
          (Series.merge s (Series.create ~window:(Series.window s))))
    (all_series b);
  m

let equal a b =
  counters a = counters b
  && gauges a = gauges b
  && (let ha = hists a and hb = hists b in
      List.length ha = List.length hb
      && List.for_all2
           (fun (ka, va) (kb, vb) -> ka = kb && Hist.equal va vb)
           ha hb)
  &&
  let sa = all_series a and sb = all_series b in
  List.length sa = List.length sb
  && List.for_all2
       (fun (ka, va) (kb, vb) -> ka = kb && Series.equal va vb)
       sa sb

(* %.17g round-trips every float exactly, keeping the rendering
   injective (and hence byte-comparable) on gauge values. *)
let float_str v = Printf.sprintf "%.17g" v

let to_string t =
  String.concat "\n"
    (List.concat
       [
         List.map (fun (k, v) -> Printf.sprintf "counter %s %d" k v) (counters t);
         List.map
           (fun (k, v) -> Printf.sprintf "gauge %s %s" k (float_str v))
           (gauges t);
         List.map
           (fun (k, h) -> Printf.sprintf "hist %s %s" k (Hist.to_string h))
           (hists t);
         List.map
           (fun (k, s) -> Printf.sprintf "series %s %s" k (Series.to_string s))
           (all_series t);
       ])

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let obj fields =
  "{" ^ String.concat "," fields ^ "}"

let to_json t =
  obj
    [
      Printf.sprintf {|"counters":%s|}
        (obj
           (List.map
              (fun (k, v) -> Printf.sprintf {|"%s":%d|} (json_escape k) v)
              (counters t)));
      Printf.sprintf {|"gauges":%s|}
        (obj
           (List.map
              (fun (k, v) ->
                Printf.sprintf {|"%s":%s|} (json_escape k) (float_str v))
              (gauges t)));
      Printf.sprintf {|"hists":%s|}
        (obj
           (List.map
              (fun (k, h) ->
                Printf.sprintf {|"%s":%s|} (json_escape k) (Hist.to_json h))
              (hists t)));
      Printf.sprintf {|"series":%s|}
        (obj
           (List.map
              (fun (k, s) ->
                Printf.sprintf {|"%s":%s|} (json_escape k) (Series.to_json s))
              (all_series t)));
    ]

(* --- OpenMetrics / Prometheus text exposition --------------------------- *)

(* Metric names admit [a-zA-Z0-9_:] only; anything else (dots, dashes,
   braces from ad-hoc labels) becomes '_'. Every family is prefixed
   "sdiq_" so a scrape of several exporters can't collide. *)
let om_name name =
  let b = Bytes.of_string ("sdiq_" ^ name) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  Bytes.to_string b

(* Inclusive upper bound of bucket [i] (the Prometheus `le` label);
   None marks the clamping last bucket, rendered "+Inf". Observations
   are integers, so Linear bucket i = [i*w, (i+1)*w) has le = (i+1)*w-1
   and Log2 bucket i>=1 = [2^(i-1), 2^i) has le = 2^i - 1. *)
let bucket_le kind i =
  match kind with
  | Hist.Linear { width; buckets } ->
    if i >= buckets - 1 then None else Some (((i + 1) * width) - 1)
  | Hist.Log2 { buckets } ->
    if i >= buckets - 1 then None
    else if i = 0 then Some 0
    else Some ((1 lsl i) - 1)

(* Sanitisation is lossy ("a.b" and "a_b" both become sdiq_a_b), a name
   can live in more than one table, and counters/histograms also emit
   derived sample names (_total, _bucket, _sum, _count) that a plain
   gauge name could shadow. promtool rejects any duplicate family or
   sample name, so each family claims its full name set — base plus
   derived — from one registry-wide pool, and a clash appends _2, _3, …
   until the whole set is free. Rendering order (counters, gauges,
   histograms, series; name-sorted within each) keeps the suffixing
   deterministic, and collision-free registries render unchanged. *)
let claim used base derived =
  let rec go i =
    let cand = if i = 0 then base else Printf.sprintf "%s_%d" base (i + 1) in
    let names = cand :: List.map (fun d -> cand ^ d) derived in
    if List.exists (Hashtbl.mem used) names then go (i + 1)
    else begin
      List.iter (fun n -> Hashtbl.replace used n ()) names;
      cand
    end
  in
  go 0

let to_openmetrics t =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let used = Hashtbl.create 16 in
  List.iter
    (fun (k, v) ->
      let n = claim used (om_name k) [ "_total" ] in
      line "# TYPE %s counter" n;
      line "%s_total %d" n v)
    (counters t);
  List.iter
    (fun (k, v) ->
      let n = claim used (om_name k) [] in
      line "# TYPE %s gauge" n;
      line "%s %s" n (float_str v))
    (gauges t);
  List.iter
    (fun (k, h) ->
      let n = claim used (om_name k) [ "_bucket"; "_sum"; "_count" ] in
      line "# TYPE %s histogram" n;
      let kind = Hist.kind h in
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          match bucket_le kind i with
          | Some le -> line "%s_bucket{le=\"%d\"} %d" n le !cum
          | None -> line "%s_bucket{le=\"+Inf\"} %d" n !cum)
        (Hist.buckets h);
      line "%s_sum %d" n (Hist.sum h);
      line "%s_count %d" n (Hist.count h))
    (hists t);
  List.iter
    (fun (k, s) ->
      let n = claim used (om_name k) [] in
      line "# TYPE %s gauge" n;
      let w = Series.window s in
      Array.iteri
        (fun i v -> line "%s{cell=\"%d\",window=\"%d\"} %d" n i w v)
        (Series.values s))
    (all_series t);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let pp ppf t = Fmt.string ppf (to_string t)
