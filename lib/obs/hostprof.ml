module Event = Sdiq_events.Event

let stage_names =
  [| "fetch"; "dispatch"; "issue"; "writeback"; "commit"; "accounting" |]

let stage_of_event = function
  | Event.Fetch _ | Event.Cache_miss _ | Event.Tlb_miss _ -> 0
  | Event.Annotation _ | Event.Dispatch _ | Event.Dispatch_stall _ -> 1
  | Event.Wakeup _ | Event.Select _ | Event.Select_scan _ | Event.Issue _
  | Event.Rf_read _ -> 2
  | Event.Writeback _ | Event.Rf_write _ -> 3
  | Event.Commit _ | Event.Squash _ -> 4
  | Event.Resize _ | Event.Bank_gated _ | Event.Bank_ungated _
  | Event.Cycle_end _ -> 5

type t = {
  sample : int;
  stage_s : float array;
  initial : Gc.stat;
  mutable sampled : Gc.stat;
  mutable last : float;
  mutable events : int;
  mutable cycles : int;
}

let create ?(sample = 1000) () =
  if sample <= 0 then invalid_arg "Hostprof.create: sample must be positive";
  let g = Gc.quick_stat () in
  {
    sample;
    stage_s = Array.make (Array.length stage_names) 0.;
    initial = g;
    sampled = g;
    last = Unix.gettimeofday ();
    events = 0;
    cycles = 0;
  }

let sink t ev =
  let now = Unix.gettimeofday () in
  let stage = stage_of_event ev in
  t.stage_s.(stage) <- t.stage_s.(stage) +. (now -. t.last);
  t.last <- now;
  t.events <- t.events + 1;
  match ev with
  | Event.Cycle_end _ ->
    t.cycles <- t.cycles + 1;
    if t.cycles mod t.sample = 0 then t.sampled <- Gc.quick_stat ()
  | _ -> ()

let attach ?sample p =
  let t = create ?sample () in
  Sdiq_cpu.Pipeline.subscribe ~name:"hostprof" p (sink t);
  t

let events t = t.events
let cycles t = t.cycles

let stage_seconds t =
  Array.to_list (Array.mapi (fun i name -> (name, t.stage_s.(i))) stage_names)

let gc_report t =
  [
    ("minor_words", t.sampled.Gc.minor_words -. t.initial.Gc.minor_words);
    ("major_words", t.sampled.Gc.major_words -. t.initial.Gc.major_words);
    ("promoted_words", t.sampled.Gc.promoted_words -. t.initial.Gc.promoted_words);
    ( "minor_collections",
      float_of_int (t.sampled.Gc.minor_collections - t.initial.Gc.minor_collections) );
    ( "major_collections",
      float_of_int (t.sampled.Gc.major_collections - t.initial.Gc.major_collections) );
    ( "forced_major_collections",
      float_of_int
        (t.sampled.Gc.forced_major_collections
        - t.initial.Gc.forced_major_collections) );
    (* A level, not a delta: the largest major heap the run has needed
       so far (as of the last sample point). *)
    ("top_heap_words", float_of_int t.sampled.Gc.top_heap_words);
  ]

let to_json t =
  Printf.sprintf
    {|{"events":%d,"cycles":%d,"stages":{%s},"gc":{%s}}|}
    t.events t.cycles
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf {|"%s":%.9f|} k v)
          (stage_seconds t)))
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf {|"%s":%.1f|} k v)
          (gc_report t)))

(* Fold the host profile into a metrics registry for the OpenMetrics
   exposition path: integer flows (events, cycles, collection counts)
   as counters, levels and wall-clock charges as gauges. *)
let metrics_into t (m : Metrics.t) =
  Metrics.incr ~by:t.events m "host_events";
  Metrics.incr ~by:t.cycles m "host_cycles";
  List.iter
    (fun (k, v) -> Metrics.set_gauge m ("host_stage_seconds_" ^ k) v)
    (stage_seconds t);
  List.iter
    (fun (k, v) ->
      match k with
      | "minor_collections" | "major_collections"
      | "forced_major_collections" ->
        Metrics.incr ~by:(int_of_float v) m ("host_gc_" ^ k)
      | _ -> Metrics.set_gauge m ("host_gc_" ^ k) v)
    (gc_report t)

let to_metrics t =
  let m = Metrics.create () in
  metrics_into t m;
  m

let pp ppf t =
  Fmt.pf ppf "@[<v>hostprof: %d events over %d cycles" t.events t.cycles;
  List.iter
    (fun (k, v) ->
      Fmt.cut ppf ();
      Fmt.pf ppf "  %-12s %8.3f ms" k (1000. *. v))
    (stage_seconds t);
  List.iter
    (fun (k, v) ->
      Fmt.cut ppf ();
      Fmt.pf ppf "  gc %-15s %12.0f" k v)
    (gc_report t);
  Fmt.pf ppf "@]"
