(* Windowed time series over cycles, geometrically grown. *)

type t = {
  window : int;
  mutable data : int array;
  mutable used : int; (* cells written so far *)
}

let create ~window =
  if window <= 0 then invalid_arg "Series.create: window must be positive";
  { window; data = Array.make 16 0; used = 0 }

let window t = t.window

let ensure t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap 0 in
    Array.blit t.data 0 data 0 t.used;
    t.data <- data
  end

let observe t ~cycle v =
  if cycle < 0 then invalid_arg "Series.observe: negative cycle";
  let i = cycle / t.window in
  ensure t (i + 1);
  t.data.(i) <- t.data.(i) + v;
  if i + 1 > t.used then t.used <- i + 1

let length t = t.used
let get t i = if i >= 0 && i < t.used then t.data.(i) else 0

let total t =
  let s = ref 0 in
  for i = 0 to t.used - 1 do
    s := !s + t.data.(i)
  done;
  !s

let values t = Array.sub t.data 0 t.used

let merge a b =
  if a.window <> b.window then invalid_arg "Series.merge: window mismatch";
  let used = max a.used b.used in
  let data = Array.make (max 16 used) 0 in
  for i = 0 to used - 1 do
    data.(i) <- get a i + get b i
  done;
  { window = a.window; data; used }

let equal a b = a.window = b.window && values a = values b

let to_string t =
  Printf.sprintf "window=%d|%s|total=%d" t.window
    (String.concat ","
       (Array.to_list (Array.map string_of_int (values t))))
    (total t)

let to_json t =
  Printf.sprintf {|{"window":%d,"values":[%s],"total":%d}|} t.window
    (String.concat ","
       (Array.to_list (Array.map string_of_int (values t))))
    (total t)

let pp ppf t = Fmt.string ppf (to_string t)
