(** Issue-queue energy accounting — the three views of Figure 8:
    [naive] (every broadcast compares every slot, all banks powered; the
    normalisation baseline), [gated] (the paper's "nonEmpty": only
    allocated entries' operands compared, banks still on) and
    [technique] (full Folegnani gating plus bank shutdown, as used by
    the paper's scheme and by abella). *)

type energy = {
  dynamic : float;
  static_ : float;
}

(** The non-wakeup dynamic activity shared by all three views: dispatch
    writes, issue reads, selection (pick plus per-entry scan) and squash
    recovery, each priced from its measured counter. Exposed so {!Sdiq_analysis.Certificate} prices
    the occupancy-independent terms of its energy bound with exactly the
    model's coefficients. *)
val base_activity : Params.t -> Sdiq_cpu.Stats.t -> float

val naive : Params.t -> Sdiq_cpu.Config.t -> Sdiq_cpu.Stats.t -> energy
val gated : Params.t -> Sdiq_cpu.Config.t -> Sdiq_cpu.Stats.t -> energy
val technique : Params.t -> Sdiq_cpu.Stats.t -> energy
