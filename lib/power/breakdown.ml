(* Component-level energy breakdown of one run: where the issue queue's
   and register file's energy actually goes, Wattch-style. Used by the
   simulate CLI and handy when calibrating the relative weights in
   [Params]. *)

open Sdiq_cpu

type component = {
  label : string;
  energy : float;
  share_pct : float;
}

type t = {
  total : float;
  components : component list;
}

let of_components comps =
  let total = List.fold_left (fun acc (_, e) -> acc +. e) 0. comps in
  {
    total;
    components =
      List.map
        (fun (label, energy) ->
          {
            label;
            energy;
            share_pct = (if total = 0. then 0. else energy /. total *. 100.);
          })
        comps;
  }

(* The issue queue under the technique view (gated wakeups, gated banks). *)
let iq ?(params = Params.default) (s : Stats.t) : t =
  of_components
    [
      ( "wakeup CAM",
        float_of_int s.Stats.iq_wakeups_gated *. params.Params.e_wakeup );
      ( "dispatch CAM writes",
        float_of_int s.Stats.iq_dispatch_cam_writes
        *. params.Params.e_cam_write );
      ( "dispatch RAM writes",
        float_of_int s.Stats.iq_dispatch_ram_writes
        *. params.Params.e_ram_write );
      ( "issue RAM reads",
        float_of_int s.Stats.iq_issue_reads *. params.Params.e_ram_read );
      ("selection", float_of_int s.Stats.iq_selects *. params.Params.e_select);
      ( "select scan",
        float_of_int s.Stats.iq_scan_entries *. params.Params.e_scan_entry );
      ( "squash recovery",
        float_of_int s.Stats.squashed *. params.Params.e_squash_entry );
      ( "bank precharge",
        float_of_int s.Stats.iq_banks_on_sum *. params.Params.e_iq_bank_cycle
      );
      ( "bank leakage",
        float_of_int s.Stats.iq_banks_on_sum
        *. params.Params.iq_leak_bank_cycle );
    ]

(* The integer register file under bank gating. *)
let int_rf ?(params = Params.default) (s : Stats.t) : t =
  of_components
    [
      ("port reads", float_of_int s.Stats.int_rf_reads *. params.Params.e_rf_read);
      ( "port writes",
        float_of_int s.Stats.int_rf_writes *. params.Params.e_rf_write );
      ( "bank precharge",
        float_of_int s.Stats.int_rf_banks_on_sum
        *. params.Params.e_rf_bank_cycle );
      ( "bank leakage",
        float_of_int s.Stats.int_rf_banks_on_sum
        *. params.Params.rf_leak_bank_cycle );
    ]

let pp ppf t =
  List.iter
    (fun c -> Fmt.pf ppf "  %-22s %14.0f  (%5.1f%%)@." c.label c.energy c.share_pct)
    t.components;
  Fmt.pf ppf "  %-22s %14.0f@." "total" t.total
