(** A power meter as an event sink: folds the pipeline's event stream
    into its own statistics ({!Sdiq_cpu.Stats.absorb}) and prices them
    with the existing energy models. A drained meter agrees
    float-exactly with the post-hoc computation on the run's final
    statistics, and can additionally be read mid-run for time-resolved
    energy. *)

type t

val create : ?params:Params.t -> ?cfg:Sdiq_cpu.Config.t -> unit -> t

(** The sink itself: pass [sink m] to {!Sdiq_cpu.Pipeline.subscribe}. *)
val sink : t -> Sdiq_events.Event.t -> unit

(** Create a meter (inheriting the pipeline's config) and subscribe it. *)
val attach : ?params:Params.t -> Sdiq_cpu.Pipeline.t -> t

(** The meter's fold of the stream so far. *)
val stats : t -> Sdiq_cpu.Stats.t

val cycles : t -> int
val iq_naive : t -> Iq_power.energy
val iq_gated : t -> Iq_power.energy
val iq_technique : t -> Iq_power.energy
val int_rf_baseline : t -> Rf_power.energy
val int_rf_gated : t -> Rf_power.energy
val iq_breakdown : t -> Breakdown.t
val int_rf_breakdown : t -> Breakdown.t
