(* Issue-queue energy accounting.

   Three accounting views, matching the configurations of Figure 8:

   - [naive]:     every result broadcast compares both operand CAMs of every
                  slot and every bank is always powered — the normalisation
                  baseline ("all operands woken");
   - [gated]:     Folegnani & González precharge gating — only present-and-
                  not-ready operands of valid entries are compared — but no
                  resizing, so banks stay powered (the paper's "nonEmpty"
                  bar);
   - [technique]: gating plus bank shutdown, as used by the paper's scheme
                  and by the abella comparison (both resize, so both gate
                  empty banks).

   Static energy is leakage integrated over powered bank-cycles. *)

open Sdiq_cpu

type energy = {
  dynamic : float;
  static_ : float;
}

let banks (cfg : Config.t) = Config.iq_banks cfg

(* Shared non-wakeup dynamic activity: dispatch writes, issue reads,
   selection, and squash recovery. Wrong-path instructions are already
   inside the dispatch/issue counters — a speculative machine pays for
   the work it later throws away — and each discarded entry additionally
   pays the per-entry invalidation cost of the squash walk. *)
let base_activity (p : Params.t) (s : Stats.t) =
  (float_of_int s.Stats.iq_dispatch_cam_writes *. p.Params.e_cam_write)
  +. (float_of_int s.Stats.iq_dispatch_ram_writes *. p.Params.e_ram_write)
  +. (float_of_int s.Stats.iq_issue_reads *. p.Params.e_ram_read)
  +. (float_of_int s.Stats.iq_selects *. p.Params.e_select)
  +. (float_of_int s.Stats.iq_scan_entries *. p.Params.e_scan_entry)
  +. (float_of_int s.Stats.squashed *. p.Params.e_squash_entry)

let all_banks_cycles (cfg : Config.t) (s : Stats.t) =
  float_of_int (banks cfg * s.Stats.cycles)

let naive (p : Params.t) (cfg : Config.t) (s : Stats.t) : energy =
  let bank_cycles = all_banks_cycles cfg s in
  {
    dynamic =
      (float_of_int s.Stats.iq_wakeups_naive *. p.Params.e_wakeup)
      +. base_activity p s
      +. (bank_cycles *. p.Params.e_iq_bank_cycle);
    static_ = bank_cycles *. p.Params.iq_leak_bank_cycle;
  }

let gated (p : Params.t) (cfg : Config.t) (s : Stats.t) : energy =
  let bank_cycles = all_banks_cycles cfg s in
  {
    dynamic =
      (float_of_int s.Stats.iq_wakeups_nonempty *. p.Params.e_wakeup)
      +. base_activity p s
      +. (bank_cycles *. p.Params.e_iq_bank_cycle);
    static_ = bank_cycles *. p.Params.iq_leak_bank_cycle;
  }

let technique (p : Params.t) (s : Stats.t) : energy =
  let bank_cycles = float_of_int s.Stats.iq_banks_on_sum in
  {
    dynamic =
      (float_of_int s.Stats.iq_wakeups_gated *. p.Params.e_wakeup)
      +. base_activity p s
      +. (bank_cycles *. p.Params.e_iq_bank_cycle);
    static_ = bank_cycles *. p.Params.iq_leak_bank_cycle;
  }
