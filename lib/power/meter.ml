(* A power meter as an event sink.

   Subscribes to a pipeline's event bus and folds the stream into its
   own [Stats.t] accumulator ([Stats.absorb] — the same fold the
   pipeline itself uses), then prices it with the existing energy
   models. Because fold and models are shared code, a drained meter's
   numbers are *exactly* (float-identically) the post-hoc numbers
   computed from the run's final statistics — and unlike the post-hoc
   path, the meter can be read mid-run for time-resolved energy. *)

open Sdiq_cpu

type t = {
  params : Params.t;
  cfg : Config.t;
  stats : Stats.t; (* the meter's own fold of the event stream *)
}

let create ?(params = Params.default) ?(cfg = Config.default) () =
  { params; cfg; stats = Stats.create () }

let sink m ev = Stats.absorb m.stats ev

let attach ?params p =
  let m = create ?params ~cfg:(Pipeline.Debug.cfg p) () in
  Pipeline.subscribe ~name:"power-meter" p (sink m);
  m

let stats m = m.stats
let cycles m = m.stats.Stats.cycles

(* Current energy integrals under the three Figure 8 IQ views and the
   two Section 5.2.3 register-file views. *)
let iq_naive m = Iq_power.naive m.params m.cfg m.stats
let iq_gated m = Iq_power.gated m.params m.cfg m.stats
let iq_technique m = Iq_power.technique m.params m.stats
let int_rf_baseline m = Rf_power.int_baseline m.params m.cfg m.stats
let int_rf_gated m = Rf_power.int_gated m.params m.stats
let iq_breakdown m = Breakdown.iq ~params:m.params m.stats
let int_rf_breakdown m = Breakdown.int_rf ~params:m.params m.stats
