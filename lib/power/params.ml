(* Event energies, in relative units.

   The paper reports *normalised savings*, so only the event counts and the
   relative weights of the contributing structures matter — absolute joules
   cancel out. The weights below are chosen so the baseline breakdown
   matches the Wattch view of a SimpleScalar-style issue queue: the wakeup
   CAM dominates the queue's dynamic energy (the selection logic "consumes
   much lower energy than wakeup logic", Section 3.1; Palacharla et al.),
   with RAM read/write and per-bank precharge making up the rest.

   The register file is modelled as read/write port energy plus a per-bank
   per-cycle precharge/wordline cost that bank gating eliminates; its
   leakage is per bank per cycle, like the queue's.

   Wrong-path work is priced at full rate: a wrong-path dispatch writes
   the CAM/RAM like any other, a wrong-path issue reads like any other
   (those counters are shared), and on top of that every entry discarded
   by a squash pays [e_squash_entry] for the valid-bit clear and ROB
   line reclaim — misprediction recovery is not free. *)

type t = {
  (* issue queue, dynamic *)
  e_wakeup : float;          (* one operand CAM comparison *)
  e_cam_write : float;       (* one operand CAM write at dispatch *)
  e_ram_write : float;       (* one entry RAM write at dispatch *)
  e_ram_read : float;        (* one entry RAM read at issue *)
  e_select : float;          (* selection of one instruction *)
  e_scan_entry : float;      (* select logic examining one slot during the
                                per-cycle pick sweep (request line +
                                arbiter node); bounded-scan schedulers
                                (nskip) shrink this integral *)
  e_squash_entry : float;    (* invalidating one in-flight entry at squash *)
  e_iq_bank_cycle : float;   (* precharge of one powered bank, per cycle *)
  (* issue queue, static *)
  iq_leak_bank_cycle : float;
  (* register file, dynamic *)
  e_rf_read : float;
  e_rf_write : float;
  e_rf_bank_cycle : float;
  (* register file, static *)
  rf_leak_bank_cycle : float;
}

let default =
  {
    e_wakeup = 0.55;
    e_cam_write = 1.5;
    e_ram_write = 3.0;
    e_ram_read = 3.0;
    e_select = 2.0;
    e_scan_entry = 0.08;
    e_squash_entry = 1.0;
    e_iq_bank_cycle = 5.0;
    iq_leak_bank_cycle = 1.0;
    e_rf_read = 3.0;
    e_rf_write = 3.5;
    e_rf_bank_cycle = 2.0;
    rf_leak_bank_cycle = 1.0;
  }
