(** Event energies in relative units. Only the relative weights matter —
    the paper reports normalised savings — and they are chosen so the
    baseline breakdown matches the Wattch view of a SimpleScalar-style
    issue queue (the wakeup CAM dominating, selection cheap). *)

type t = {
  e_wakeup : float;          (** one operand CAM comparison *)
  e_cam_write : float;       (** one operand CAM write at dispatch *)
  e_ram_write : float;       (** one entry RAM write at dispatch *)
  e_ram_read : float;        (** one entry RAM read at issue *)
  e_select : float;          (** selection of one instruction *)
  e_scan_entry : float;
      (** select logic examining one slot during the per-cycle pick
          sweep; integrated over [Stats.iq_scan_entries], so bounded-scan
          schedulers ([Sched.Nskip]) shrink it *)
  e_squash_entry : float;
      (** invalidating one in-flight entry during squash recovery —
          wrong-path work is priced at full rate (its dispatch/issue
          activity shares the ordinary counters) plus this per-entry
          discard cost *)
  e_iq_bank_cycle : float;   (** precharge of a powered bank, per cycle *)
  iq_leak_bank_cycle : float;
  e_rf_read : float;
  e_rf_write : float;
  e_rf_bank_cycle : float;
  rf_leak_bank_cycle : float;
}

val default : t
