(** The benchmark suite: the eleven SPECint2000 programs the paper
    evaluates, in the order its figures list them. *)

val all : unit -> Bench.t list
val names : unit -> string list
val find : string -> Bench.t option

(** Much smaller instances, for tests. *)
val tiny : unit -> Bench.t list

(** Larger instances for sampled campaigns: every program executes at
    least ten million oracle instructions. *)
val scaled : unit -> Bench.t list
