(* The benchmark suite: the eleven SPECint2000 programs the paper
   evaluates (eon is excluded there too, being C++), in the order its
   figures list them. *)

let all () : Bench.t list =
  [
    W_gzip.build ();
    W_vpr.build ();
    W_gcc.build ();
    W_mcf.build ();
    W_crafty.build ();
    W_parser.build ();
    W_perlbmk.build ();
    W_gap.build ();
    W_vortex.build ();
    W_bzip2.build ();
    W_twolf.build ();
  ]

let names () = List.map (fun (b : Bench.t) -> b.Bench.name) (all ())

let find name =
  List.find_opt (fun (b : Bench.t) -> b.Bench.name = name) (all ())

(* Larger instances for sampled campaigns: every program executes at
   least ten million oracle instructions, so a SMARTS run has enough
   stream for a statistically meaningful window count. Outer counts are
   sized from measured instructions-per-iteration at the defaults
   (gzip ~47/iter, ..., bzip2 ~800/iter, gap ~31k/iter) with ~15%
   margin. *)
let scaled () : Bench.t list =
  [
    W_gzip.build ~outer:250_000 ();
    W_vpr.build ~outer:380_000 ();
    W_gcc.build ~outer:540_000 ();
    W_mcf.build ~outer:1_300_000 ();
    W_crafty.build ~outer:380_000 ();
    W_parser.build ~outer:260_000 ();
    W_perlbmk.build ~outer:520_000 ();
    W_gap.build ~outer:400 ();
    W_vortex.build ~outer:175_000 ();
    W_bzip2.build ~outer:15_000 ();
    W_twolf.build ~outer:400_000 ();
  ]

(* Smaller instances for tests. *)
let tiny () : Bench.t list =
  [
    W_gzip.build ~outer:300 ();
    W_vpr.build ~outer:300 ();
    W_gcc.build ~outer:300 ();
    W_mcf.build ~outer:300 ();
    W_crafty.build ~outer:300 ();
    W_parser.build ~outer:300 ();
    W_perlbmk.build ~outer:300 ();
    W_gap.build ~outer:20 ();
    W_vortex.build ~outer:300 ();
    W_bzip2.build ~outer:50 ();
    W_twolf.build ~outer:300 ();
  ]
