(** Deterministic memory initialisers shared by the workloads. Addresses
    are byte addresses: a word occupies 4 units so the caches see
    realistic spatial locality. *)

val word : int

(** Fill [len] words from byte address [base] with values in [0, max). *)
val fill_random :
  Sdiq_util.Rng.t -> Sdiq_isa.Exec.state -> base:int -> len:int -> max:int ->
  unit

val fill_const : Sdiq_isa.Exec.state -> base:int -> len:int -> int -> unit

(** A random single-cycle permutation for pointer chasing (Sattolo):
    element [i] holds the byte address of the next element. [stride] is
    the element size in words. Returns the first element's address. *)
val fill_chain :
  Sdiq_util.Rng.t ->
  Sdiq_isa.Exec.state ->
  base:int ->
  len:int ->
  stride:int ->
  int

(** Skewed small-integer stream: common cases dominate, as in opcode
    streams. *)
val fill_skewed :
  Sdiq_util.Rng.t -> Sdiq_isa.Exec.state -> base:int -> len:int -> kinds:int ->
  unit

(** {2 Random programs for the differential fuzzer}

    An operation is four unconstrained integers decoded {e totally} —
    every quad maps to a valid instruction — so qcheck's structural
    shrinking over [list (quad int int int int)] minimises failing
    programs without a custom shrinker. The decoded mix exercises the
    executor's edge cases: division by the zero register, register-count
    shifts with wild amounts, loads of unwritten memory, and forward
    conditional skips. Loop counters and address masking are outside the
    decoder's register range, so generated programs always terminate. *)

type op = int * int * int * int

type desc = {
  prologue : op list;
  loop_body : op list;  (** outer loop, executed [loop_count] times *)
  loop_count : int;
  inner_body : op list;  (** nested loop inside the outer body *)
  inner_count : int;
  helper_body : op list;  (** separate procedure, called from the loop *)
  call_helper : bool;
}

(** Assemble a description: register prologue, optional nested loop,
    optional helper call, and a final publish of every working register
    to memory (so dead code cannot hide from the final-state check). *)
val program_of_desc : desc -> Sdiq_isa.Prog.t

val random_desc : Sdiq_util.Rng.t -> desc
val random_program : Sdiq_util.Rng.t -> Sdiq_isa.Prog.t

(** Print a description as a pasteable OCaml-ish literal (replay aid). *)
val pp_desc : Format.formatter -> desc -> unit
