(* Deterministic memory initialisers shared by the workloads.

   Addresses are byte addresses: a "word" occupies 4 address units so the
   caches (32/64-byte lines) see realistic spatial locality. *)

open Sdiq_isa
open Sdiq_util

let word = 4

(* Fill [len] words starting at byte address [base] with values in
   [0, max). *)
let fill_random rng st ~base ~len ~max =
  for i = 0 to len - 1 do
    Exec.poke st (base + (i * word)) (Rng.int rng max)
  done

(* Fill with a fixed value. *)
let fill_const st ~base ~len v =
  for i = 0 to len - 1 do
    Exec.poke st (base + (i * word)) v
  done

(* A random single-cycle permutation for pointer chasing: element i holds
   the byte address of the next element, and following [next] visits every
   element exactly once before returning (Sattolo's algorithm). [stride] is
   the element size in words. *)
let fill_chain rng st ~base ~len ~stride =
  let order = Array.init len (fun i -> i) in
  (* Sattolo: single cycle. *)
  for i = len - 1 downto 1 do
    let j = Rng.int rng i in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  let addr_of k = base + (order.(k) * stride * word) in
  for k = 0 to len - 1 do
    let next = addr_of ((k + 1) mod len) in
    Exec.poke st (addr_of k) next
  done;
  addr_of 0

(* Skewed small-integer stream (Zipf-ish over [0, kinds)): the common cases
   dominate, as opcode streams do. *)
let fill_skewed rng st ~base ~len ~kinds =
  for i = 0 to len - 1 do
    let r = Rng.int rng 100 in
    let v =
      if r < 55 then 0
      else if r < 75 then 1
      else if r < 86 then 2
      else if r < 93 then 3
      else Rng.int rng kinds
    in
    Exec.poke st (base + (i * word)) v
  done

(* --- random programs for the differential fuzzer ------------------------- *)

(* An operation is four unconstrained integers decoded totally (every
   quad is a valid operation), so qcheck's structural shrinking on
   [list (quad int int int int)] minimises failing programs for free.

   The decoded instruction mix deliberately includes the executor's edge
   cases: division with a possibly-zero divisor, register-count shifts
   with wild amounts, loads of unwritten memory, and forward conditional
   skips. Working registers are r1..r8 / f1..f4; r9/r10 are loop
   counters, r13 the address scratch and r20 the publish base, none of
   which the decoder can name — loops always terminate. *)
type op = int * int * int * int

type desc = {
  prologue : op list;
  loop_body : op list;      (* outer loop, executed [loop_count] times *)
  loop_count : int;
  inner_body : op list;     (* nested loop inside the outer body *)
  inner_count : int;
  helper_body : op list;    (* separate procedure, called from the loop *)
  call_helper : bool;
}

let num_op_kinds = 16

let pos x = if x >= 0 then x else if x = min_int then 0 else -x
let reg x = Reg.int (1 + (pos x mod 8))
let freg x = Reg.fp (1 + (pos x mod 4))
let addr_scratch = Reg.int 13

(* Memory operands mask their base into [0, 4096) so random programs
   touch a bounded heap (the publish area at 8000+ stays clean). *)
let emit_masked_base p a =
  Asm.andi p addr_scratch (reg a) 4095

let emit_op p ~fresh_label ((k, a, b, c) : op) =
  let imm = (pos c mod 128) - 64 in
  match pos k mod num_op_kinds with
  | 0 -> Asm.addi p (reg a) (reg b) imm
  | 1 -> Asm.add p (reg a) (reg b) (reg c)
  | 2 -> Asm.sub p (reg a) (reg b) (reg c)
  | 3 -> Asm.mul p (reg a) (reg b) (reg c)
  | 4 ->
    (* One divisor in five is the hardwired zero register: division by
       zero must yield 0 in both models. *)
    let divisor = if pos c mod 5 = 0 then Reg.zero else reg c in
    Asm.div p (reg a) (reg b) divisor
  | 5 -> Asm.shl p (reg a) (reg b) (reg c)  (* wild shift counts *)
  | 6 -> Asm.shr p (reg a) (reg b) (reg c)
  | 7 -> (
    match pos b mod 3 with
    | 0 -> Asm.and_ p (reg a) (reg b) (reg c)
    | 1 -> Asm.or_ p (reg a) (reg b) (reg c)
    | _ -> Asm.xor p (reg a) (reg b) (reg c))
  | 8 -> Asm.li p (reg a) ((pos b * 40503) lxor pos c)
  | 9 ->
    emit_masked_base p b;
    Asm.load p (reg a) addr_scratch (pos c mod 64)
  | 10 ->
    emit_masked_base p a;
    Asm.store p addr_scratch (reg b) (pos c mod 64)
  | 11 -> Asm.fadd p (freg a) (freg b) (freg c)
  | 12 -> Asm.fmul p (freg a) (freg b) (freg c)
  | 13 -> Asm.fdiv p (freg a) (freg b) (freg c)
  | 14 -> if pos b mod 2 = 0 then Asm.itof p (freg a) (reg b)
          else Asm.ftoi p (reg a) (freg b)
  | _ ->
    (* Forward conditional skip: data-dependent control flow without
       risking non-termination. *)
    let l = fresh_label () in
    Asm.beq p (reg a) (reg b) l;
    Asm.addi p (reg c) (reg c) 1;
    Asm.label p l

let program_of_desc d =
  let b = Asm.create () in
  let labels = ref 0 in
  let fresh_label () =
    incr labels;
    Printf.sprintf "skip%d" !labels
  in
  let emit_all p ops = List.iter (emit_op p ~fresh_label) ops in
  let has_helper = d.call_helper && d.helper_body <> [] in
  let main = Asm.proc b "main" in
  for i = 1 to 8 do
    Asm.li main (Reg.int i) (i * 37)
  done;
  for i = 1 to 4 do
    Asm.fli main (Reg.fp i) (float_of_int i *. 1.5)
  done;
  emit_all main d.prologue;
  let loop_count = max 1 d.loop_count in
  Asm.li main (Reg.int 9) loop_count;
  Asm.label main "outer";
  emit_all main d.loop_body;
  if d.inner_body <> [] && d.inner_count > 0 then begin
    Asm.li main (Reg.int 10) d.inner_count;
    Asm.label main "inner";
    emit_all main d.inner_body;
    Asm.addi main (Reg.int 10) (Reg.int 10) (-1);
    Asm.bne main (Reg.int 10) Reg.zero "inner"
  end;
  if has_helper then Asm.call main "helper";
  Asm.addi main (Reg.int 9) (Reg.int 9) (-1);
  Asm.bne main (Reg.int 9) Reg.zero "outer";
  (* Publish the working registers so dead code cannot hide a bug from
     the final-state comparison. *)
  Asm.li main (Reg.int 20) 8000;
  for i = 1 to 8 do
    Asm.store main (Reg.int 20) (Reg.int i) (i * word)
  done;
  for i = 1 to 4 do
    Asm.fstore main (Reg.int 20) (Reg.fp i) (100 + (i * word))
  done;
  Asm.halt main;
  if has_helper then begin
    let h = Asm.proc b "helper" in
    emit_all h d.helper_body;
    Asm.ret h
  end;
  Asm.assemble b ~entry:"main"

let random_ops rng n =
  List.init n (fun _ ->
      (Rng.int rng 1000, Rng.int rng 1000, Rng.int rng 1000, Rng.int rng 1000))

let random_desc rng =
  {
    prologue = random_ops rng (Rng.int rng 8);
    loop_body = random_ops rng (1 + Rng.int rng 12);
    loop_count = 1 + Rng.int rng 30;
    inner_body = (if Rng.bool rng then random_ops rng (1 + Rng.int rng 6) else []);
    inner_count = 1 + Rng.int rng 10;
    helper_body = (if Rng.bool rng then random_ops rng (1 + Rng.int rng 8) else []);
    call_helper = Rng.bool rng;
  }

let random_program rng = program_of_desc (random_desc rng)

let pp_desc ppf d =
  let pp_ops ppf ops =
    Fmt.pf ppf "[%a]"
      (Fmt.list ~sep:(Fmt.any "; ") (fun ppf (k, a, b, c) ->
           Fmt.pf ppf "(%d,%d,%d,%d)" k a b c))
      ops
  in
  Fmt.pf ppf
    "{ prologue = %a;@ loop_body = %a;@ loop_count = %d;@ inner_body = %a;@ \
     inner_count = %d;@ helper_body = %a;@ call_helper = %b }"
    pp_ops d.prologue pp_ops d.loop_body d.loop_count pp_ops d.inner_body
    d.inner_count pp_ops d.helper_body d.call_helper
