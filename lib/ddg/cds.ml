(* Cyclic dependence sets and loop scheduling (Section 4.3).

   "In most loops there is a set of instructions that form a cycle of
   dependences ... We are interested in the CDS that has the greatest
   latency; it is this set of instructions which dictates how long the loop
   will take to execute."

   We compute, for a loop-body DDG with carried edges:
   - the initiation interval II: the steady-state cycles per iteration,
     which is the larger of the recurrence bound (critical CDS: max over
     cycles of ceil(total latency / total iteration distance)) and the
     resource bound (FU contention and issue width) — the same quantity
     the paper extracts from its CDS equations;
   - per-instruction start offsets S: the earliest issue cycle of body
     position p in iteration i is S.(p) + i * II;
   - per-instruction equations relative to a reference CDS instruction,
     exactly as in Figure 4: instruction x of iteration i issues at the
     same time as the reference instruction of iteration i + k(x), plus a
     residual cycle count r(x) when the alignment is not exact. *)

open Sdiq_isa

type equation = {
  node : int;
  iter_offset : int;   (* k: aligns with reference of iteration i + k *)
  cycle_residual : int; (* r in [0, ii): leftover cycles after alignment *)
}

type schedule = {
  ii : int;              (* initiation interval, cycles per iteration *)
  start : int array;     (* S.(p): issue cycle of position p in iteration 0 *)
  reference : int;       (* body position of the reference CDS instruction *)
  cds : int list;        (* positions in the critical CDS (empty if acyclic) *)
  equations : equation list;
}

(* Longest-path start times for a candidate II; [None] when the constraint
   system t(dst) >= t(src) + lat - dist*II has a positive cycle (II below
   the recurrence bound). Bellman–Ford over the edges flattened into
   parallel int arrays: [component_mii] re-solves the same system for
   successive II candidates, so the relaxation loop should not chase an
   edge list. *)
let solve_starts (g : Ddg.t) ~ii =
  let n = Ddg.num_nodes g in
  let s = Array.make n 0 in
  let edges = Ddg.edges g in
  let ne = List.length edges in
  let esrc = Array.make ne 0
  and edst = Array.make ne 0
  and eadd = Array.make ne 0 in
  List.iteri
    (fun j (e : Ddg.edge) ->
      esrc.(j) <- e.src;
      edst.(j) <- e.dst;
      (* constant part of the constraint: lat - dist*II *)
      eadd.(j) <- e.latency - (e.distance * ii))
    edges;
  let bound = (n + 1) * (ne + 1) in
  let changed = ref true in
  let steps = ref 0 in
  let feasible = ref true in
  while !changed && !feasible do
    changed := false;
    let j = ref 0 in
    while !j < ne && !feasible do
      let lo = s.(Array.unsafe_get esrc !j) + Array.unsafe_get eadd !j in
      let d = Array.unsafe_get edst !j in
      if s.(d) < lo then begin
        s.(d) <- lo;
        changed := true;
        incr steps;
        if !steps > bound then feasible := false
      end;
      incr j
    done
  done;
  if not !feasible then None
  else begin
    (* Normalise so the earliest start is 0. *)
    let m = Array.fold_left min max_int s in
    if n > 0 then Array.iteri (fun i v -> s.(i) <- v - m) s;
    Some s
  end

(* Strongly connected components of the dependence structure (Tarjan). A
   component is a dependence cycle when it has more than one node or a
   self edge — each such component is a CDS of the paper. *)
let cds_sets (g : Ddg.t) : int list list =
  let n = Ddg.num_nodes g in
  let adj = Array.make n [] in
  List.iter
    (fun (e : Ddg.edge) -> adj.(e.src) <- e.dst :: adj.(e.src))
    (Ddg.edges g);
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if on_stack.(w) then low.(v) <- min low.(v) index.(w))
      adj.(v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  let has_self_edge v =
    List.exists
      (fun (e : Ddg.edge) -> e.src = v && e.dst = v)
      (Ddg.edges g)
  in
  List.filter
    (function
      | [ v ] -> has_self_edge v
      | [] -> false
      | _ -> true)
    !sccs

(* Recurrence-weight of a CDS: the minimum II it forces. For a component we
   use the feasibility search restricted to its internal edges. *)
let component_mii (g : Ddg.t) (comp : int list) =
  let in_comp = Hashtbl.create 8 in
  List.iter (fun v -> Hashtbl.replace in_comp v ()) comp;
  let edges =
    List.filter
      (fun (e : Ddg.edge) ->
        Hashtbl.mem in_comp e.src && Hashtbl.mem in_comp e.dst)
      (Ddg.edges g)
  in
  let sub = Ddg.make g.Ddg.instrs edges in
  let rec search ii =
    if ii > 4096 then ii
    else
      match solve_starts sub ~ii with
      | Some _ -> ii
      | None -> search (ii + 1)
  in
  search 1

(* Resource lower bound on II: issue width and FU counts. *)
let resource_mii ?(width = 8) ?(fu_count = Fu.default_count) (g : Ddg.t) =
  let n = Ddg.num_nodes g in
  if n = 0 then 1
  else begin
    let per_class = Array.make Fu.count_classes 0 in
    Array.iter
      (fun ins ->
        let c = Fu.index (Instr.fu_class ins) in
        per_class.(c) <- per_class.(c) + 1)
      g.Ddg.instrs;
    let bound = ref ((n + width - 1) / width) in
    List.iter
      (fun cls ->
        let cnt = per_class.(Fu.index cls) in
        let units = fu_count cls in
        if cnt > 0 && units > 0 then
          bound := max !bound ((cnt + units - 1) / units))
      Fu.all;
    max 1 !bound
  end

let schedule ?(width = 8) ?(fu_count = Fu.default_count) (g : Ddg.t) :
    schedule =
  let n = Ddg.num_nodes g in
  if n = 0 then
    { ii = 1; start = [||]; reference = 0; cds = []; equations = [] }
  else begin
    let components = cds_sets g in
    (* Each component's forced II, computed once (the critical-CDS pick
       below reuses them). *)
    let weighted = List.map (fun c -> (c, component_mii g c)) components in
    let rec_mii =
      List.fold_left (fun acc (_, w) -> max acc w) 1 weighted
    in
    let ii = max rec_mii (resource_mii ~width ~fu_count g) in
    let start =
      match solve_starts g ~ii with
      | Some s -> s
      | None ->
        failwith
          (Printf.sprintf
             "Cds.schedule: no start times at ii=%d (rec_mii=%d, %d nodes) \
              — ii should dominate every component's recurrence bound"
             ii rec_mii n)
    in
    (* The critical CDS: greatest forced II; ties broken by earliest
       position, matching "the CDS that has the greatest latency". *)
    let cds =
      let best =
        List.fold_left
          (fun acc (c, wc) ->
            match acc with
            | None -> Some (c, wc)
            | Some (_, w) -> if wc > w then Some (c, wc) else acc)
          None weighted
      in
      match best with Some (c, _) -> List.sort compare c | None -> []
    in
    let reference = match cds with r :: _ -> r | [] -> 0 in
    let equations =
      List.init n (fun node ->
          let total = start.(node) - start.(reference) in
          (* Express as reference-instance alignment: floor division so the
             residual is always in [0, ii). *)
          let k =
            if total >= 0 then total / ii
            else -(((-total) + ii - 1) / ii)
          in
          { node; iter_offset = k; cycle_residual = total - (k * ii) })
    in
    { ii; start; reference; cds; equations }
  end

(* Issue-queue entries needed so the loop can sustain its critical path
   (Section 4.3). We enumerate concrete instances over enough iterations to
   reach steady state: instruction at body position p of iteration i has
   dispatch index i*L + p and issue time S.(p) + i*II; the requirement is
   the widest dispatch-index span between the oldest instruction still
   waiting to issue and the youngest instruction that must issue now. The
   Figure 4 example (6-instruction body, self-dependent head) yields 15. *)
let iq_need ?(cap = 1024) (g : Ddg.t) (sch : schedule) : int =
  let l = Ddg.num_nodes g in
  if l = 0 then 1
  else begin
    let max_k =
      List.fold_left
        (fun acc e -> max acc (abs e.iter_offset))
        0 sch.equations
    in
    let warm = max_k + 2 in
    let iters = (3 * warm) + 4 in
    let total = l * iters in
    let issue_time = Array.make total 0 in
    for i = 0 to iters - 1 do
      for p = 0 to l - 1 do
        issue_time.((i * l) + p) <- sch.start.(p) + (i * sch.ii)
      done
    done;
    (* The span bounds reduce to monotone threshold searches (no O(total)
       scan per event): with P.(d) the prefix max and s.(d) the suffix min
       of [issue_time] — both non-decreasing in d —

         min_d(tau) = min {d : issue_time.(d) >= tau}
                    = min {d : P.(d) >= tau}
           (at the first d with P.(d) >= tau > P.(d-1), the prefix max is
           attained at d itself, so issue_time.(d) = P.(d) >= tau);

         max_d(tau) = max {d : issue_time.(d) <= tau}
                    = max {d : s.(d) <= tau}
           (at the last d with s.(d) <= tau < s.(d+1), the suffix min is
           attained at d itself, so issue_time.(d) = s.(d) <= tau).

       Both exist for every measured tau: it is itself an issue time. *)
    let pmax = Array.make total 0 in
    let smin = Array.make total 0 in
    let acc = ref min_int in
    for d = 0 to total - 1 do
      if issue_time.(d) > !acc then acc := issue_time.(d);
      pmax.(d) <- !acc
    done;
    acc := max_int;
    for d = total - 1 downto 0 do
      if issue_time.(d) < !acc then acc := issue_time.(d);
      smin.(d) <- !acc
    done;
    (* First index with pmax >= tau (exists: pmax.(total-1) >= tau). *)
    let first_ge tau =
      let lo = ref 0 and hi = ref (total - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if pmax.(mid) >= tau then hi := mid else lo := mid + 1
      done;
      !lo
    in
    (* Last index with smin <= tau (exists: smin.(0) <= tau). *)
    let last_le tau =
      let lo = ref 0 and hi = ref (total - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if smin.(mid) <= tau then lo := mid else hi := mid - 1
      done;
      !lo
    in
    let need = ref 1 in
    (* Only measure at issue events of steady-state iterations. *)
    for i = warm to iters - warm - 1 do
      for p = 0 to l - 1 do
        let tau = issue_time.((i * l) + p) in
        let span = last_le tau - first_ge tau + 1 in
        if span > !need then need := span
      done
    done;
    min !need cap
  end
