(** Branch prediction per Table 1: a 2K gshare / 2K bimodal hybrid with a
    1K selector, a 2048-entry 4-way BTB, and a return-address stack. *)

type t

val create : Config.t -> t

(** Predicted direction of the conditional branch at [pc]. *)
val predict_direction : t -> int -> bool

(** Train direction tables, selector and global history. *)
val update_direction : t -> int -> taken:bool -> unit

val btb_lookup : t -> int -> int option

(** [btb_lookup] without the option: the target, or [-1] on a miss
    (the pipeline's allocation-free fetch path). *)
val btb_lookup_tgt : t -> int -> int

val btb_update : t -> int -> target:int -> unit

(** Push a return address; overflow drops the oldest entry. *)
val ras_push : t -> int -> unit

val ras_pop : t -> int option

(** [ras_pop] without the option: the return address, or [-1] when the
    stack is empty (pushed addresses are ≥ 1). *)
val ras_pop_addr : t -> int

(** {2 RAS snapshot/restore (speculative fetch)}

    The wrong-path frontend pushes and pops the real stack; a squash
    rewinds it to the snapshot taken at the mispredict. The caller owns
    the snapshot buffer, sized {!ras_depth}, so episodes are
    allocation-free. *)

val ras_depth : t -> int

(** Blit the stack into [buf]; returns the top-of-stack index. *)
val ras_save : t -> int array -> int

val ras_restore : t -> int array -> int -> unit

(** Fraction of trained conditional branches that were mispredicted. *)
val mispredict_rate : t -> float
