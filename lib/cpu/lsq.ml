(* Load/store queue: a program-ordered ring of in-flight memory
   operations, allocated speculatively at dispatch (wrong-path loads
   and stores claim entries too, per the speculative-allocation
   discipline of arXiv 2311.08198) and reclaimed from the head at
   commit or from the tail at squash — so the ring is always a
   contiguous program-order window and an age search is a walk.

   Store-to-load forwarding is age-ordered: a load searches backwards
   from its own slot toward the head, and the first matching store it
   meets is by construction the youngest older one. Addresses are
   exact at allocation (the execution-driven frontend computes them at
   fetch), so no late disambiguation pass is needed.

   Storage is flat (DESIGN.md §13): parallel unboxed arrays, byte
   flags, no allocation on any hot path. *)

type t = {
  size : int;
  rob_idxs : int array;     (* owning ROB entry; -1 when the slot is free *)
  addrs : int array;
  store : Bytes.t;          (* 1 = store, 0 = load *)
  wp : Bytes.t;             (* allocated down the wrong path *)
  mutable head : int;
  mutable tail : int;
  mutable count : int;
  mutable allocs : int;     (* lifetime allocations, for the power model *)
}

let create ~size =
  if size <= 0 then invalid_arg "Lsq.create";
  {
    size;
    rob_idxs = Array.make size (-1);
    addrs = Array.make size 0;
    store = Bytes.make size '\000';
    wp = Bytes.make size '\000';
    head = 0;
    tail = 0;
    count = 0;
    allocs = 0;
  }

let is_full t = t.count = t.size
let count t = t.count
let size t = t.size
let allocs t = t.allocs

let rob_idx t slot = Array.unsafe_get t.rob_idxs slot
let addr t slot = Array.unsafe_get t.addrs slot
let is_store t slot = Bytes.unsafe_get t.store slot = '\001'
let is_wp t slot = Bytes.unsafe_get t.wp slot <> '\000'

(* Allocate the tail slot; returns its index. *)
let push t ~rob_idx ~addr ~is_store ~wp =
  if is_full t then invalid_arg "Lsq.push: full";
  let slot = t.tail in
  Array.unsafe_set t.rob_idxs slot rob_idx;
  Array.unsafe_set t.addrs slot addr;
  Bytes.unsafe_set t.store slot (if is_store then '\001' else '\000');
  Bytes.unsafe_set t.wp slot (if wp then '\001' else '\000');
  t.tail <- (if t.tail + 1 = t.size then 0 else t.tail + 1);
  t.count <- t.count + 1;
  t.allocs <- t.allocs + 1;
  slot

(* The youngest store older than the entry at [slot] whose address
   matches [a]; returns its ROB index, or -1 when none. Walking
   backwards toward the head meets entries youngest-first. *)
let youngest_older_store t slot a =
  let res = ref (-1) in
  let pos = ref slot in
  let steps =
    ref
      (let d = slot - t.head in
       if d < 0 then d + t.size else d)
  in
  while !res < 0 && !steps > 0 do
    pos := (if !pos = 0 then t.size - 1 else !pos - 1);
    decr steps;
    if
      Bytes.unsafe_get t.store !pos = '\001'
      && Array.unsafe_get t.addrs !pos = a
    then res := Array.unsafe_get t.rob_idxs !pos
  done;
  !res

(* Reclaim the head entry at commit; [rob_idx] guards that commit
   order and queue order agree. *)
let pop_head t ~rob_idx =
  if t.count = 0 then invalid_arg "Lsq.pop_head: empty";
  if Array.unsafe_get t.rob_idxs t.head <> rob_idx then
    invalid_arg "Lsq.pop_head: head entry belongs to a different instruction";
  Array.unsafe_set t.rob_idxs t.head (-1);
  t.head <- (if t.head + 1 = t.size then 0 else t.head + 1);
  t.count <- t.count - 1

(* Reclaim the tail entry at squash (youngest-first walk pops tails). *)
let pop_tail t ~rob_idx =
  if t.count = 0 then invalid_arg "Lsq.pop_tail: empty";
  let slot = if t.tail = 0 then t.size - 1 else t.tail - 1 in
  if Array.unsafe_get t.rob_idxs slot <> rob_idx then
    invalid_arg "Lsq.pop_tail: tail entry belongs to a different instruction";
  Array.unsafe_set t.rob_idxs slot (-1);
  t.tail <- slot;
  t.count <- t.count - 1

(* Iterate oldest → youngest; [f slot rob_idx] sees live entries only. *)
let iter_oldest_first t f =
  let pos = ref t.head in
  for _ = 1 to t.count do
    f !pos (Array.unsafe_get t.rob_idxs !pos);
    pos := (if !pos + 1 = t.size then 0 else !pos + 1)
  done
