(** Select/wakeup scheduler policies — the third grid axis, orthogonal
    to the benchmark and the window-resizing {!Technique}/{!Policy}.

    [Oldest_first] is the paper's fixed scheduler: select by walking the
    whole active ring oldest-first, full CAM wakeup. [Nskip n] bounds
    the select scan to the [n] slots after [head] (holes included) with
    an early-out — the classic low-power picker; the per-entry scan cost
    it saves is priced via the [Select_scan] event and
    [Params.e_scan_entry]. [Load_delay] keeps the full scan but
    suppresses the wakeup CAM ports of waiting operands whose producer
    has a deterministic latency (every non-load), per load-delay
    ready-time tracking (arXiv 2109.03112); suppressed comparisons are
    counted in [Stats.iq_wakeups_suppressed] instead of the gated
    integral.

    [Load_delay] is energy-only: it issues the same instructions in
    the same cycles as [Oldest_first] (suppression only reroutes the
    accounting), which the policy-grid gate asserts per cell. [Nskip]
    genuinely trades ILP for scan energy — the bounded scan starves
    ready-but-young entries, so cycle counts rise as scan energy
    falls. DESIGN.md §16 has the contract and what the checker pins. *)

type t =
  | Oldest_first
  | Nskip of int  (** scan at most N slots from [head], holes included *)
  | Load_delay

val oldest_first : t

(** Raises [Invalid_argument] unless [n > 0]. *)
val nskip : n:int -> t

val load_delay : t

(** [Oldest_first] — the pre-refactor scheduler. *)
val default : t

(** ["oldest_first"], ["nskip:N"], ["load_delay"]. *)
val name : t -> string

(** Stable memo-key string; currently equal to [name]. *)
val key : t -> string

(** The shapes [of_string] accepts, for CLI error messages. *)
val valid_names : string list

(** Parse ["NAME[:N]"]; the error message names the valid policies. *)
val of_string : string -> (t, string) result

(** Slots the select scan may examine per cycle on an active ring of
    [active] slots. *)
val scan_bound : t -> active:int -> int

(** Whether predicted-ready waiting operands skip their CAM comparison
    (true only for [Load_delay]). *)
val suppresses_predicted : t -> bool

val pp : Format.formatter -> t -> unit
