(** Issue-queue resizing policies: the baseline ([Unlimited]), the
    paper's compiler-directed scheme ([Software]) and the adaptive
    hardware comparison point ([Abella], IqRob64-style). *)

type abella = {
  window : int;
  bank : int;
  min_limit : int;
  max_limit : int;
  grow_threshold : float;
  shrink_headroom : int;
  mutable limit : int;
  mutable cycle_in_window : int;
  mutable occupancy_sum : int;
  mutable throttled_cycles : int;
  mutable resizes : int;
}

type software = {
  mutable max_new_range : int;
  mutable region_pc : int;
      (** PC of the annotation that opened the current region: a loop
          header seen again on each iteration must not reopen it *)
}

type t =
  | Unlimited
  | Software of software
  | Abella of abella

val unlimited : t

(** Starts wide open; the first annotation narrows it. *)
val software : ?initial:int -> unit -> t

val abella :
  ?window:int ->
  ?bank:int ->
  ?min_limit:int ->
  ?max_limit:int ->
  ?grow_threshold:float ->
  ?shrink_headroom:int ->
  unit ->
  t

val name : t -> string

(** May one more instruction dispatch this cycle? The software window is
    capped at [size - 1] slots so the region can never wrap the whole
    ring (which would freeze [new_head] on the tail). *)
val allows : t -> Iq.t -> bool

(** A compiler annotation reached dispatch: open a new region with this
    allowance, unless it is the annotation that opened the current one. *)
val on_annotation : t -> Iq.t -> pc:int -> value:int -> unit

(** Per-cycle bookkeeping and (for the adaptive scheme) the physical
    resize; [throttled] marks dispatch stopped by the policy (or by a
    shrunken ring) rather than by program structure. [resize_ok:false]
    defers the resize while keeping the sensing — the pipeline passes it
    during a wrong-path episode, whose squash rewinds IQ pointers
    recorded under the current modulus. *)
val end_cycle : t -> Iq.t -> ?resize_ok:bool -> throttled:bool -> unit -> unit

val current_limit : t -> Iq.t -> int
