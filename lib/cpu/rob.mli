(** Reorder buffer: in-flight instructions committed in program order.
    The speculative frontend pushes wrong-path instructions (flagged
    [wp]) behind a mispredicted branch; resolution squashes them by
    popping the tail youngest-first, so the buffer only ever shrinks
    from its two ends: head at commit, tail at squash.

    Entries are stored flat (one unboxed array per attribute, DESIGN.md
    §13) and read through per-index accessors; a free slot's [dyn] is
    [dummy_dyn] (sequence number -1). *)

type state =
  | Dispatched
  | Issued
  | Completed

type dest =
  | No_dest
  | Int_dest of int
  | Fp_dest of int

(** Destinations packed into one int (0 none, [2p+1] int reg [p],
    [2p+2] fp reg [p]) for the allocation-free hot path. *)
val encode_dest : dest -> int

val decode_dest : int -> dest

(** Placeholder dynamic instruction held by free slots. *)
val dummy_dyn : Sdiq_isa.Exec.dyn

type t

val create : size:int -> t
val is_full : t -> bool
val is_empty : t -> bool
val occupancy : t -> int

(** {2 Per-entry accessors (valid for in-flight indices)} *)

val dyn : t -> int -> Sdiq_isa.Exec.dyn
val state : t -> int -> state
val set_state : t -> int -> state -> unit
val is_completed : t -> int -> bool

val dest_code : t -> int -> int
val old_code : t -> int -> int
val dest_of : t -> int -> dest
val old_phys_of : t -> int -> dest

val iq_slot : t -> int -> int
val set_iq_slot : t -> int -> int -> unit
val lsq_slot : t -> int -> int
val set_lsq_slot : t -> int -> int -> unit
val blocked_fetch : t -> int -> bool
val set_blocked_fetch : t -> int -> bool -> unit

(** Was this entry fetched down the wrong path? *)
val is_wp : t -> int -> bool

(** Allocate the tail entry; returns its index. Raises when full. *)
val push :
  t ->
  dyn:Sdiq_isa.Exec.dyn ->
  dest:dest ->
  old_phys:dest ->
  iq_slot:int ->
  int

(** [push] with pre-encoded destination codes (allocation-free). *)
val push_codes :
  t ->
  dyn:Sdiq_isa.Exec.dyn ->
  dest_code:int ->
  old_code:int ->
  iq_slot:int ->
  wp:bool ->
  int

(** Commit primitives: is the oldest entry completed / its index / drop
    it. [pop_head] assumes a non-empty buffer. *)
val head_is_completed : t -> bool

val head_index : t -> int
val pop_head : t -> unit

(** Pop the head if completed, passing its index to [f] (the entry is
    intact during the call); true on commit. *)
val try_commit : t -> (int -> unit) -> bool

(** Squash primitives: index of the youngest in-flight entry, and its
    removal. Both assume a non-empty buffer. *)
val tail_index : t -> int

val pop_tail : t -> unit

(** Oldest to youngest, by entry index. *)
val iter_in_flight : t -> (int -> unit) -> unit

(** Program-order comparison of two in-flight indices. *)
val older : t -> int -> int -> bool

(** [youngest_older_store t idx addr]: index of the youngest in-flight
    store to [addr] older than entry [idx], or [-1]. *)
val youngest_older_store : t -> int -> int -> int
