(* Processor configuration — Table 1 of the paper.

     Fetch, decode and commit width   8 instructions
     Branch predictor                 hybrid 2K gshare, 2K bimodal, 1K selector
     BTB                              2048 entries, 4-way
     L1 Icache                        64KB, 2-way, 32B line, 1 cycle hit
     L1 Dcache                        64KB, 4-way, 32B line, 2 cycles hit
     Unified L2                       512KB, 8-way, 64B line, 10 cycles hit,
                                      50 cycles miss
     ROB                              128 entries
     Issue queue                      80 entries
     Int/FP register file             112 entries each (14 banks of 8)
     Int FUs                          6 ALU (1 cycle), 3 Mul (3 cycles)
     FP FUs                           4 ALU (2 cycles), 2 MultDiv (4/12)

   Memory ports and the return-address stack are SimpleScalar-style
   defaults the paper does not list explicitly. *)

open Sdiq_isa

type t = {
  fetch_width : int;
  dispatch_width : int;
  issue_width : int;
  commit_width : int;
  decode_depth : int;        (* cycles an instruction spends decoding *)
  fetch_queue_size : int;
  rob_size : int;
  iq_size : int;
  iq_bank_size : int;
  rf_size : int;             (* physical registers per file (int and fp) *)
  rf_bank_size : int;
  fu_count : Fu.t -> int;
  (* caches *)
  il1_sets : int;
  il1_ways : int;
  il1_line : int;            (* bytes; instructions are 4 bytes *)
  il1_hit : int;
  dl1_sets : int;
  dl1_ways : int;
  dl1_line : int;
  dl1_hit : int;
  l2_sets : int;
  l2_ways : int;
  l2_line : int;
  l2_hit : int;
  mem_latency : int;         (* L2 miss *)
  (* branch prediction *)
  bimodal_size : int;
  gshare_size : int;
  gshare_hist : int;
  selector_size : int;
  btb_sets : int;
  btb_ways : int;
  ras_size : int;
  btb_miss_penalty : int;    (* taken branch with unknown target *)
  mispredict_redirect : int; (* extra cycles after resolution *)
  (* speculation and memory system *)
  speculative_fetch : bool;  (* fetch down the predicted path on a
                                mispredict and squash at resolution *)
  lsq_size : int;            (* load/store queue entries *)
  itlb_entries : int;        (* fully associative, LRU *)
  dtlb_entries : int;
  page_size : int;           (* words per page *)
  tlb_miss_penalty : int;    (* cycles to walk the page table *)
  sched : Sched.t;           (* select/wakeup scheduler policy *)
}

let default =
  {
    fetch_width = 8;
    dispatch_width = 8;
    issue_width = 8;
    commit_width = 8;
    decode_depth = 3;
    fetch_queue_size = 32;
    rob_size = 128;
    iq_size = 80;
    iq_bank_size = 8;
    rf_size = 112;
    rf_bank_size = 8;
    fu_count = Fu.default_count;
    il1_sets = 1024;  (* 64KB / (2 ways * 32B) *)
    il1_ways = 2;
    il1_line = 32;
    il1_hit = 1;
    dl1_sets = 512;   (* 64KB / (4 ways * 32B) *)
    dl1_ways = 4;
    dl1_line = 32;
    dl1_hit = 2;
    l2_sets = 1024;   (* 512KB / (8 ways * 64B) *)
    l2_ways = 8;
    l2_line = 64;
    l2_hit = 10;
    mem_latency = 50;
    bimodal_size = 2048;
    gshare_size = 2048;
    gshare_hist = 11;
    selector_size = 1024;
    btb_sets = 512;   (* 2048 entries, 4-way *)
    btb_ways = 4;
    ras_size = 16;
    btb_miss_penalty = 2;
    mispredict_redirect = 1;
    speculative_fetch = true;
    lsq_size = 64;
    itlb_entries = 16;
    dtlb_entries = 16;
    page_size = 256;
    tlb_miss_penalty = 20;
    sched = Sched.default;
  }

let iq_banks t = (t.iq_size + t.iq_bank_size - 1) / t.iq_bank_size
let rf_banks t = (t.rf_size + t.rf_bank_size - 1) / t.rf_bank_size

let pp ppf t =
  Fmt.pf ppf
    "fetch/dispatch/issue/commit %d/%d/%d/%d, ROB %d, IQ %d (%d banks of \
     %d), RF 2x%d (%d banks of %d), sched %a"
    t.fetch_width t.dispatch_width t.issue_width t.commit_width t.rob_size
    t.iq_size (iq_banks t) t.iq_bank_size t.rf_size (rf_banks t)
    t.rf_bank_size Sched.pp t.sched
