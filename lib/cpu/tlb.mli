(** Translation lookaside buffer: fully associative, true LRU.

    The simulated ISA is flat-addressed, so only hit/miss timing and
    miss traffic are modelled. The pipeline keeps an ITLB (probed once
    per fetch-group page) and a DTLB (probed at load/store issue). *)

type t

(** [create ~entries ~page_size] — [page_size] is in words and must be
    a power of two. *)
val create : entries:int -> page_size:int -> t

(** Virtual page number of a word address. *)
val page_of : t -> int -> int

(** Probe for the page holding [addr]; install over the LRU entry on a
    miss. Returns [true] on a hit. *)
val access : t -> int -> bool

(** Warm the entry for [addr], discarding the outcome (sampling
    fast-forward). *)
val train : t -> int -> unit

val lookups : t -> int
val misses : t -> int
