(* The out-of-order pipeline: fetch → decode (fetch queue) → rename/dispatch
   → issue/execute → writeback → commit, over the Table 1 machine.

   Execution-driven in the SimpleScalar style: the functional executor
   produces the dynamic stream at fetch. Wrong-path instructions are never
   injected — a mispredicted control instruction stalls fetch until it
   resolves, which models the misprediction penalty while keeping the
   oracle and the pipeline in lockstep (documented simplification; applied
   identically to every technique under comparison).

   Cycle phase order (matters, and matches the paper's Figure 1 timing):
     commit → writeback (wakeup) → issue/select → dispatch → fetch
   so a result wakes its consumers in the cycle it completes and the
   consumers can issue that same cycle; instructions issued this cycle
   free IQ slots that dispatch can refill this cycle; newly fetched
   instructions dispatch only after [decode_depth] cycles.

   Telemetry: the stages mutate no consumer directly. Each stage emits
   typed events ([Sdiq_events.Event]); the pipeline's own statistics are
   a fold of that stream ([Stats.absorb]), and external observers —
   invariant checkers, commit capture, power meters, timelines, JSONL
   traces — subscribe to the same bus. With no sink registered the hot
   loop does not even construct the events: each emission site goes
   through a per-kind emitter that applies the matching [Stats.absorb]
   clause inline (DESIGN.md §13), so a bare simulation allocates nothing
   on the event path. [Cycle_end] is always the last event of its cycle,
   emitted after the policy's end-of-cycle action, so a sink observing it
   sees exactly the machine state a per-cycle checker needs (DESIGN.md
   §11 specifies the ordering contract).

   Hot-loop storage is flat (DESIGN.md §13): the fetch queue is a ring
   over parallel arrays, completions sit in a cycle-indexed timing wheel,
   unpipelined-FU occupancy is a per-class array of release cycles, and
   writeback/issue reuse preallocated scratch arrays across cycles. *)

open Sdiq_isa
module Ev = Sdiq_events.Event
module Bus = Sdiq_events.Bus

type t = {
  cfg : Config.t;
  prog : Prog.t;
  exec : Exec.state;
  policy : Policy.t;
  il1 : Cache.t;
  dl1 : Cache.t;
  l2 : Cache.t;
  bpred : Branch_pred.t;
  int_rf : Regfile.t;
  fp_rf : Regfile.t;
  int_map : int array;
  fp_map : int array;
  rob : Rob.t;
  iq : Iq.t;
  (* fetch queue: ring buffer over parallel arrays (capacity
     [fetch_queue_size]); a free slot holds [Rob.dummy_dyn] *)
  fq_dyns : Exec.dyn array;
  fq_ready : int array; (* cycle at which decode finishes *)
  mutable fq_head : int;
  mutable fq_tail : int;
  mutable fq_count : int;
  (* completion timing wheel: cell [c land (len-1)] holds the ROB indices
     completing at cycle [wheel_cycle], in scheduling order; doubles on
     the (rare) collision of two in-flight completion cycles *)
  mutable wheel : int array array;
  mutable wheel_len : int array;
  mutable wheel_cycle : int array;
  (* functional units: count per class and, for unpipelined ops, the
     release cycle of each unit instance *)
  fu_counts : int array;
  fu_release : int array array;
  (* per-cycle scratch, reused so the hot loop allocates nothing *)
  avail : int array; (* issue slots left per FU class *)
  wb_tags : int array; (* result tags broadcast this cycle *)
  cand_slot : int array; (* ready IQ slots, oldest first *)
  cand_rob : int array;
  mutable cycle : int;
  mutable halted : bool;
  mutable fetch_hold : bool;
      (* sampled simulation: fetch is held while the machine drains
         before a functional fast-forward; in-flight work keeps flowing *)
  mutable fetch_resume_at : int;
  mutable blocked_sn : int; (* fetch stalled on this sn; -1 = not stalled *)
  mutable stores_in_flight : int; (* stores currently in the ROB *)
  mutable unpipe_busy_until : int; (* all unpipelined units free from here *)
  stats : Stats.t;
  bus : Sdiq_events.Bus.t;
  mutable bus_on : bool;
      (* whether any sink is subscribed, cached: one field read per
         emission site instead of a cross-module call; [subscribe] keeps
         it in sync (all pipeline sinks register through it) *)
  (* previous end-of-cycle powered-bank masks, for gate/ungate events *)
  mutable prev_iq_bank_mask : int;
  mutable prev_int_rf_bank_mask : int;
  mutable prev_fp_rf_bank_mask : int;
}

exception Simulation_limit of string

(* Deliver one event: fold it into the pipeline's own statistics, then
   to external sinks (if any). The absorb-first order is part of the
   sink contract — a [Cycle_end] sink reads fully-updated stats. *)
let emit t ev =
  Stats.absorb t.stats ev;
  if t.bus_on then Bus.emit t.bus ev

(* --- per-kind emitters -------------------------------------------------- *)

(* With no sink subscribed, each emitter applies the matching
   [Stats.absorb] clause directly and never constructs the event, so the
   no-sink path is allocation-free; with sinks it builds the event once
   and takes the generic [emit] path. The inline updates must mirror
   [Stats.absorb] clause for clause — the no-sink/sink stats-equality
   test in the exactness battery pins this. *)

let emit_commit t dyn =
  if t.bus_on then emit t (Ev.Commit { dyn })
  else t.stats.Stats.committed <- t.stats.Stats.committed + 1

let emit_cache_miss t level addr =
  if t.bus_on then emit t (Ev.Cache_miss { level; addr })
  else begin
    let st = t.stats in
    match level with
    | Ev.Il1 -> st.Stats.il1_misses <- st.Stats.il1_misses + 1
    | Ev.Dl1 -> st.Stats.dl1_misses <- st.Stats.dl1_misses + 1
    | Ev.L2 -> st.Stats.l2_misses <- st.Stats.l2_misses + 1
  end

(* [Writeback] absorbs to nothing; it exists only for sinks. *)
let emit_writeback t idx =
  if t.bus_on then
    emit t (Ev.Writeback { dyn = Rob.dyn t.rob idx; rob_idx = idx })

let emit_rf_write t file phys =
  if t.bus_on then emit t (Ev.Rf_write { file; phys })
  else begin
    let st = t.stats in
    match file with
    | Ev.Int_rf -> st.Stats.int_rf_writes <- st.Stats.int_rf_writes + 1
    | Ev.Fp_rf -> st.Stats.fp_rf_writes <- st.Stats.fp_rf_writes + 1
  end

let emit_wakeup t ~tags ~woken ~naive ~nonempty ~gated =
  if t.bus_on then
    emit t (Ev.Wakeup { tags; woken; naive; nonempty; gated })
  else begin
    let st = t.stats in
    st.Stats.iq_broadcasts <- st.Stats.iq_broadcasts + tags;
    st.Stats.iq_wakeups_naive <- st.Stats.iq_wakeups_naive + naive;
    st.Stats.iq_wakeups_nonempty <- st.Stats.iq_wakeups_nonempty + nonempty;
    st.Stats.iq_wakeups_gated <- st.Stats.iq_wakeups_gated + gated
  end

let emit_select t ~rob_idx ~iq_slot =
  if t.bus_on then emit t (Ev.Select { rob_idx; iq_slot })
  else t.stats.Stats.iq_selects <- t.stats.Stats.iq_selects + 1

let emit_issue t dyn ~latency ~store_forward =
  if t.bus_on then emit t (Ev.Issue { dyn; latency; store_forward })
  else begin
    let st = t.stats in
    st.Stats.iq_issue_reads <- st.Stats.iq_issue_reads + 1;
    if store_forward then
      st.Stats.store_forwards <- st.Stats.store_forwards + 1
  end

let emit_rf_read t ~ints ~fps =
  if t.bus_on then emit t (Ev.Rf_read { ints; fps })
  else begin
    let st = t.stats in
    st.Stats.int_rf_reads <- st.Stats.int_rf_reads + ints;
    st.Stats.fp_rf_reads <- st.Stats.fp_rf_reads + fps
  end

let emit_dispatch t dyn ~kind ~iq_slot ~rob_idx ~cam_writes =
  if t.bus_on then
    emit t (Ev.Dispatch { dyn; kind; iq_slot; rob_idx; cam_writes })
  else begin
    let st = t.stats in
    st.Stats.dispatched <- st.Stats.dispatched + 1;
    st.Stats.iq_dispatch_ram_writes <- st.Stats.iq_dispatch_ram_writes + 1;
    st.Stats.iq_dispatch_cam_writes <-
      st.Stats.iq_dispatch_cam_writes + cam_writes;
    match kind with
    | Ev.Plain -> ()
    | Ev.Load -> st.Stats.loads <- st.Stats.loads + 1
    | Ev.Store -> st.Stats.stores <- st.Stats.stores + 1
  end

let emit_dispatch_stall t reason =
  if t.bus_on then emit t (Ev.Dispatch_stall reason)
  else begin
    let st = t.stats in
    match reason with
    | Ev.Policy_limit ->
      st.Stats.dispatch_stall_policy <- st.Stats.dispatch_stall_policy + 1
    | Ev.Iq_full ->
      st.Stats.dispatch_stall_iq_full <- st.Stats.dispatch_stall_iq_full + 1
    | Ev.Rob_full ->
      st.Stats.dispatch_stall_rob_full <- st.Stats.dispatch_stall_rob_full + 1
    | Ev.No_reg ->
      st.Stats.dispatch_stall_no_reg <- st.Stats.dispatch_stall_no_reg + 1
  end

let emit_annotation_noop t ~pc ~value =
  if t.bus_on then
    emit t (Ev.Annotation { pc; value; delivery = Ev.Noop_slot })
  else
    t.stats.Stats.iqset_dispatch_slots <-
      t.stats.Stats.iqset_dispatch_slots + 1

let emit_fetch_seq t dyn =
  if t.bus_on then emit t (Ev.Fetch { dyn; outcome = Ev.Sequential })
  else t.stats.Stats.fetched <- t.stats.Stats.fetched + 1

let emit_fetch_cond t dyn ~taken ~mispredicted ~btb_bubble =
  if t.bus_on then
    emit t
      (Ev.Fetch
         { dyn; outcome = Ev.Cond_branch { taken; mispredicted; btb_bubble } })
  else begin
    let st = t.stats in
    st.Stats.fetched <- st.Stats.fetched + 1;
    st.Stats.branches <- st.Stats.branches + 1;
    if mispredicted then st.Stats.mispredicts <- st.Stats.mispredicts + 1;
    if btb_bubble then st.Stats.btb_bubbles <- st.Stats.btb_bubbles + 1
  end

let emit_fetch_jump t dyn ~btb_bubble =
  if t.bus_on then
    emit t (Ev.Fetch { dyn; outcome = Ev.Jump { btb_bubble } })
  else begin
    let st = t.stats in
    st.Stats.fetched <- st.Stats.fetched + 1;
    if btb_bubble then st.Stats.btb_bubbles <- st.Stats.btb_bubbles + 1
  end

let emit_fetch_call t dyn ~btb_bubble =
  if t.bus_on then
    emit t (Ev.Fetch { dyn; outcome = Ev.Call { btb_bubble } })
  else begin
    let st = t.stats in
    st.Stats.fetched <- st.Stats.fetched + 1;
    if btb_bubble then st.Stats.btb_bubbles <- st.Stats.btb_bubbles + 1
  end

let emit_fetch_ret t dyn ~mispredicted =
  if t.bus_on then
    emit t (Ev.Fetch { dyn; outcome = Ev.Return { mispredicted } })
  else begin
    let st = t.stats in
    st.Stats.fetched <- st.Stats.fetched + 1;
    st.Stats.branches <- st.Stats.branches + 1;
    if mispredicted then st.Stats.mispredicts <- st.Stats.mispredicts + 1
  end

(* --- sink registration --------------------------------------------------- *)

let subscribe ?name t fn =
  Bus.subscribe ?name t.bus fn;
  t.bus_on <- true

(* Per-cycle observer: runs on every [Cycle_end], after all statistics
   for the cycle are folded in. The shape the invariant checker wants. *)
let on_cycle_end ?(name = "cycle-observer") t f =
  subscribe ~name t (function Ev.Cycle_end _ -> f t | _ -> ())

(* Commit observer: one call per committed instruction, in commit order. *)
let on_commit_sink ?(name = "commit-observer") t f =
  subscribe ~name t (function Ev.Commit { dyn } -> f dyn | _ -> ())

let create ?(config = Config.default) ?(policy = Policy.unlimited) ?checker
    ?on_commit prog =
  let exec = Exec.create prog in
  let int_rf =
    Regfile.create ~size:config.Config.rf_size
      ~bank_size:config.Config.rf_bank_size
  in
  let fp_rf =
    Regfile.create ~size:config.Config.rf_size
      ~bank_size:config.Config.rf_bank_size
  in
  (* Initial architectural mapping: arch i -> phys i, values ready. *)
  let int_map = Array.init Reg.num_int (fun i -> i) in
  let fp_map = Array.init Reg.num_fp (fun i -> i) in
  for i = 0 to Reg.num_int - 1 do
    Regfile.alloc_exact int_rf i;
    int_rf.Regfile.ready.(i) <- true
  done;
  for i = 0 to Reg.num_fp - 1 do
    Regfile.alloc_exact fp_rf i;
    fp_rf.Regfile.ready.(i) <- true
  done;
  let fu_counts = Array.make Fu.count_classes 0 in
  List.iter
    (fun cls -> fu_counts.(Fu.index cls) <- config.Config.fu_count cls)
    Fu.all;
  (* Wheel span must exceed the longest completion latency in flight;
     [schedule_completion] doubles it if a workload ever proves it
     short. *)
  let wheel_size =
    let bound =
      config.Config.mem_latency + config.Config.l2_hit
      + config.Config.dl1_hit + 64
    in
    let s = ref 64 in
    while !s < bound do
      s := !s * 2
    done;
    !s
  in
  let t =
    {
      cfg = config;
      prog;
      exec;
      policy;
      il1 =
        Cache.create ~sets:config.Config.il1_sets ~ways:config.Config.il1_ways
          ~line:config.Config.il1_line;
      dl1 =
        Cache.create ~sets:config.Config.dl1_sets ~ways:config.Config.dl1_ways
          ~line:config.Config.dl1_line;
      l2 =
        Cache.create ~sets:config.Config.l2_sets ~ways:config.Config.l2_ways
          ~line:config.Config.l2_line;
      bpred = Branch_pred.create config;
      int_rf;
      fp_rf;
      int_map;
      fp_map;
      rob = Rob.create ~size:config.Config.rob_size;
      iq = Iq.create ~size:config.Config.iq_size
          ~bank_size:config.Config.iq_bank_size;
      fq_dyns = Array.make config.Config.fetch_queue_size Rob.dummy_dyn;
      fq_ready = Array.make config.Config.fetch_queue_size 0;
      fq_head = 0;
      fq_tail = 0;
      fq_count = 0;
      wheel = Array.make wheel_size [||];
      wheel_len = Array.make wheel_size 0;
      wheel_cycle = Array.make wheel_size (-1);
      fu_counts;
      fu_release =
        Array.init Fu.count_classes (fun k ->
            Array.make fu_counts.(k) min_int);
      avail = Array.make Fu.count_classes 0;
      wb_tags = Array.make config.Config.rob_size 0;
      cand_slot = Array.make config.Config.iq_size 0;
      cand_rob = Array.make config.Config.iq_size 0;
      cycle = 0;
      halted = false;
      fetch_hold = false;
      fetch_resume_at = 0;
      blocked_sn = -1;
      stores_in_flight = 0;
      unpipe_busy_until = 0;
      stats = Stats.create ();
      bus = Bus.create ();
      bus_on = false;
      prev_iq_bank_mask = 0;
      prev_int_rf_bank_mask = Regfile.banks_on_mask int_rf;
      prev_fp_rf_bank_mask = Regfile.banks_on_mask fp_rf;
    }
  in
  (* Compat shims: the old [?checker]/[?on_commit] hooks are ordinary
     sinks now. *)
  (match checker with Some f -> on_cycle_end ~name:"checker" t f | None -> ());
  (match on_commit with
  | Some f -> on_commit_sink ~name:"on-commit" t f
  | None -> ());
  t

(* Physical-register tag space: int regs as-is, fp regs offset. *)
let int_tag p = p
let fp_tag t p = t.cfg.Config.rf_size + p

(* --- commit ------------------------------------------------------------ *)

(* Destinations travel as Rob's packed int codes on the hot path. *)
let release_dest_code t code =
  if code <> 0 then
    if code land 1 = 1 then Regfile.release t.int_rf (code asr 1)
    else Regfile.release t.fp_rf ((code asr 1) - 1)

let commit_one t idx =
  let dyn = Rob.dyn t.rob idx in
  let i = dyn.Exec.instr in
  emit_commit t dyn;
  release_dest_code t (Rob.old_code t.rob idx);
  (* The predictor trains at fetch (see [fetch_stage]): with no wrong-path
     instructions, fetch order equals commit order, so updating there is
     exact and avoids stale-history aliasing for in-flight branches. *)
  (* Stores write the data cache at commit; write misses allocate but do
     not stall the pipeline (a write buffer is assumed). *)
  if Instr.is_store i then begin
    t.stores_in_flight <- t.stores_in_flight - 1;
    let now = t.cycle in
    match Cache.probe t.dl1 ~now dyn.Exec.addr with
    | Cache.Hit | Cache.Inflight _ -> ()
    | Cache.Miss ->
      emit_cache_miss t Ev.Dl1 dyn.Exec.addr;
      let lat =
        match Cache.probe t.l2 ~now dyn.Exec.addr with
        | Cache.Hit -> t.cfg.Config.l2_hit
        | Cache.Inflight r -> r + 1
        | Cache.Miss ->
          emit_cache_miss t Ev.L2 dyn.Exec.addr;
          Cache.set_fill t.l2 dyn.Exec.addr (now + t.cfg.Config.mem_latency);
          t.cfg.Config.mem_latency
      in
      Cache.set_fill t.dl1 dyn.Exec.addr (now + lat)
  end

let commit_stage t =
  let n = ref 0 in
  while !n < t.cfg.Config.commit_width && Rob.head_is_completed t.rob do
    commit_one t (Rob.head_index t.rob);
    Rob.pop_head t.rob;
    incr n
  done

(* --- writeback --------------------------------------------------------- *)

let writeback_stage t =
  let mask = Array.length t.wheel - 1 in
  let cell = t.cycle land mask in
  if t.wheel_len.(cell) > 0 && t.wheel_cycle.(cell) = t.cycle then begin
    let idxs = t.wheel.(cell) in
    let n = t.wheel_len.(cell) in
    t.wheel_len.(cell) <- 0;
    (* Oldest first, deterministically: scheduling order. All results
       completing this cycle broadcast together so wakeup counting sees
       one snapshot, as the parallel CAM ports do. *)
    let ntags = ref 0 in
    for k = 0 to n - 1 do
      let idx = Array.unsafe_get idxs k in
      Rob.set_state t.rob idx Rob.Completed;
      emit_writeback t idx;
      (let code = Rob.dest_code t.rob idx in
       if code <> 0 then
         if code land 1 = 1 then begin
           let p = code asr 1 in
           Regfile.mark_ready t.int_rf p;
           emit_rf_write t Ev.Int_rf p;
           t.wb_tags.(!ntags) <- int_tag p;
           incr ntags
         end
         else begin
           let p = (code asr 1) - 1 in
           Regfile.mark_ready t.fp_rf p;
           emit_rf_write t Ev.Fp_rf p;
           t.wb_tags.(!ntags) <- fp_tag t p;
           incr ntags
         end);
      (* A control instruction that blocked fetch now redirects it. *)
      if Rob.blocked_fetch t.rob idx then begin
        let dyn = Rob.dyn t.rob idx in
        if t.blocked_sn = dyn.Exec.sn then begin
          t.blocked_sn <- -1;
          t.fetch_resume_at <-
            max t.fetch_resume_at
              (t.cycle + 1 + t.cfg.Config.mispredict_redirect)
        end;
        Rob.set_blocked_fetch t.rob idx false
      end
    done;
    (* One wakeup event per broadcast group, carrying the comparison
       deltas under all three Figure 8 accounting schemes. *)
    let naive0 = t.iq.Iq.wakeups_naive in
    let nonempty0 = t.iq.Iq.wakeups_nonempty in
    let gated0 = t.iq.Iq.wakeups_gated in
    let woken = Iq.broadcast_into t.iq t.wb_tags !ntags in
    if !ntags > 0 then
      emit_wakeup t ~tags:!ntags ~woken
        ~naive:(t.iq.Iq.wakeups_naive - naive0)
        ~nonempty:(t.iq.Iq.wakeups_nonempty - nonempty0)
        ~gated:(t.iq.Iq.wakeups_gated - gated0)
  end

(* --- issue ------------------------------------------------------------- *)

(* Grow the completion wheel until no two in-flight completion cycles
   share a cell. Rare: only when a latency exceeds the initial span. *)
let wheel_grow t =
  let size = ref (2 * Array.length t.wheel) in
  let done_ = ref false in
  while not !done_ do
    let wheel = Array.make !size [||] in
    let len = Array.make !size 0 in
    let cyc = Array.make !size (-1) in
    (try
       for c = 0 to Array.length t.wheel - 1 do
         if t.wheel_len.(c) > 0 then begin
           let nc = t.wheel_cycle.(c) land (!size - 1) in
           if len.(nc) > 0 then raise Exit;
           wheel.(nc) <- t.wheel.(c);
           len.(nc) <- t.wheel_len.(c);
           cyc.(nc) <- t.wheel_cycle.(c)
         end
       done;
       t.wheel <- wheel;
       t.wheel_len <- len;
       t.wheel_cycle <- cyc;
       done_ := true
     with Exit -> size := !size * 2)
  done

let rec schedule_completion t idx latency =
  let c = t.cycle + (if latency > 1 then latency else 1) in
  let mask = Array.length t.wheel - 1 in
  let cell = c land mask in
  if t.wheel_len.(cell) > 0 && t.wheel_cycle.(cell) <> c then begin
    wheel_grow t;
    schedule_completion t idx latency
  end
  else begin
    if t.wheel_len.(cell) = 0 then t.wheel_cycle.(cell) <- c;
    let buf = t.wheel.(cell) in
    let n = t.wheel_len.(cell) in
    let buf =
      if n < Array.length buf then buf
      else begin
        let nb = Array.make (max 8 (2 * Array.length buf)) 0 in
        Array.blit buf 0 nb 0 n;
        t.wheel.(cell) <- nb;
        nb
      end
    in
    buf.(n) <- idx;
    t.wheel_len.(cell) <- n + 1
  end

(* For a load at ROB index [idx] with oracle address [addr]: the youngest
   older in-flight store to the same address, or -1. A running count of
   in-flight stores skips the ROB walk entirely in the common case. *)
let conflicting_store t idx addr =
  if t.stores_in_flight = 0 then -1
  else Rob.youngest_older_store t.rob idx addr

(* Data-cache access latency for a load (address generation is the base
   instruction latency, the cache time is added on top). A line still in
   flight from an earlier miss delivers when its fill completes. *)
let load_cache_latency t addr =
  let now = t.cycle in
  match Cache.probe t.dl1 ~now addr with
  | Cache.Hit -> t.cfg.Config.dl1_hit
  | Cache.Inflight r -> r + 1
  | Cache.Miss ->
    emit_cache_miss t Ev.Dl1 addr;
    let lat =
      match Cache.probe t.l2 ~now addr with
      | Cache.Hit -> t.cfg.Config.l2_hit
      | Cache.Inflight r -> r + 1
      | Cache.Miss ->
        emit_cache_miss t Ev.L2 addr;
        Cache.set_fill t.l2 addr (now + t.cfg.Config.mem_latency);
        t.cfg.Config.mem_latency
    in
    Cache.set_fill t.dl1 addr (now + lat);
    lat

(* One register-file read event per issuing instruction, counting its
   int and fp source reads (the per-file counters live in [Regfile] for
   the invariant checker's recount). Reads the source fields directly —
   [Instr.sources] would build a list. *)
let count_rf_reads t (i : Instr.t) =
  let ints = ref 0 and fps = ref 0 in
  (match i.Instr.src1 with
  | Some (Reg.Int 0) | None -> ()
  | Some (Reg.Int _) ->
    Regfile.note_read t.int_rf;
    incr ints
  | Some (Reg.Fp _) ->
    Regfile.note_read t.fp_rf;
    incr fps);
  (match i.Instr.src2 with
  | Some (Reg.Int 0) | None -> ()
  | Some (Reg.Int _) ->
    Regfile.note_read t.int_rf;
    incr ints
  | Some (Reg.Fp _) ->
    Regfile.note_read t.fp_rf;
    incr fps);
  if !ints > 0 || !fps > 0 then emit_rf_read t ~ints:!ints ~fps:!fps

let issue_stage t =
  (* Issue slots per class: unit count minus units still executing an
     unpipelined operation. With no unpipelined op in flight (the common
     case, tracked by [unpipe_busy_until]) this is a plain copy. *)
  if t.cycle >= t.unpipe_busy_until then
    Array.blit t.fu_counts 0 t.avail 0 Fu.count_classes
  else
    for k = 0 to Fu.count_classes - 1 do
      let rel = t.fu_release.(k) in
      let busy = ref 0 in
      for j = 0 to Array.length rel - 1 do
        if Array.unsafe_get rel j > t.cycle then incr busy
      done;
      t.avail.(k) <- max 0 (t.fu_counts.(k) - !busy)
    done;
  (* Collect ready entries oldest-first into scratch, then try each: an
     inline ring walk over the valid entries (direct flat-field reads,
     no closure — the [Iq.slot_ready] sweep is the hottest loop in the
     machine). *)
  let iq = t.iq in
  let ncand = ref 0 in
  let pos = ref iq.Iq.head in
  let remaining = ref iq.Iq.count in
  let steps = ref 0 in
  let active = iq.Iq.active_size in
  while !remaining > 0 && !steps < active do
    let s = !pos in
    if Bytes.unsafe_get iq.Iq.valid s <> '\000' then begin
      decr remaining;
      let o = 2 * s in
      if
        (Bytes.unsafe_get iq.Iq.op_present o = '\000'
        || Bytes.unsafe_get iq.Iq.op_ready o <> '\000')
        && (Bytes.unsafe_get iq.Iq.op_present (o + 1) = '\000'
           || Bytes.unsafe_get iq.Iq.op_ready (o + 1) <> '\000')
      then begin
        t.cand_slot.(!ncand) <- s;
        t.cand_rob.(!ncand) <- Array.unsafe_get iq.Iq.rob_idx s;
        incr ncand
      end
    end;
    incr steps;
    pos := (if s + 1 = active then 0 else s + 1)
  done;
  let ncand = !ncand in
  let width = ref t.cfg.Config.issue_width in
  for c = 0 to ncand - 1 do
    if !width > 0 then begin
      let slot = t.cand_slot.(c) in
      let rob_idx = t.cand_rob.(c) in
      let dyn = Rob.dyn t.rob rob_idx in
      let i = dyn.Exec.instr in
      let cls = Instr.fu_class i in
      let k = Fu.index cls in
      if t.avail.(k) > 0 then begin
        (* Loads must respect older same-address stores. *)
        let can = ref true in
        let extra = ref 0 in
        let store_forward = ref false in
        if Instr.is_load i then begin
          let sidx = conflicting_store t rob_idx dyn.Exec.addr in
          if sidx >= 0 then
            if Rob.is_completed t.rob sidx then begin
              (* forwarded from the store queue *)
              extra := 1;
              store_forward := true
            end
            else can := false (* store data not ready: cannot issue yet *)
          else extra := load_cache_latency t dyn.Exec.addr
        end;
        if !can then begin
          t.avail.(k) <- t.avail.(k) - 1;
          decr width;
          Iq.issue t.iq slot;
          Rob.set_state t.rob rob_idx Rob.Issued;
          Rob.set_iq_slot t.rob rob_idx (-1);
          emit_select t ~rob_idx ~iq_slot:slot;
          let lat = Instr.latency i + !extra in
          emit_issue t dyn ~latency:lat ~store_forward:!store_forward;
          count_rf_reads t i;
          if Opcode.unpipelined i.Instr.op then begin
            (* Claim a unit instance that is currently free. One exists:
               avail was positive, so busy units < unit count. *)
            let rel = t.fu_release.(k) in
            let j = ref 0 in
            while rel.(!j) > t.cycle do
              incr j
            done;
            rel.(!j) <- t.cycle + lat;
            t.unpipe_busy_until <- max t.unpipe_busy_until (t.cycle + lat)
          end;
          schedule_completion t rob_idx lat
        end
      end
    end
  done

(* --- dispatch ---------------------------------------------------------- *)

type dispatch_stop =
  | Keep_going
  | Stop_policy
  | Stop_iq_full
  | Stop_rob_full
  | Stop_no_reg

(* Rename one source: the physical tag and readiness packed into
   [(tag lsl 1) lor ready]; -1 when the operand is absent (no register,
   or the hardwired zero). *)
let src_code t r =
  match r with
  | Some (Reg.Int 0) | None -> -1
  | Some (Reg.Int a) ->
    let p = t.int_map.(a) in
    (int_tag p lsl 1) lor (if Regfile.is_ready t.int_rf p then 1 else 0)
  | Some (Reg.Fp a) ->
    let p = t.fp_map.(a) in
    (fp_tag t p lsl 1) lor (if Regfile.is_ready t.fp_rf p then 1 else 0)

(* Rename the destination; returns [(dest_code lsl 20) lor old_code] in
   Rob's packed encoding, or -1 when no register is free. *)
let rename_dest_codes t (i : Instr.t) =
  match i.Instr.dst with
  | Some (Reg.Int 0) | None -> 0 (* zero-register writes are discarded *)
  | Some (Reg.Int a) ->
    let p = Regfile.alloc_idx t.int_rf in
    if p < 0 then -1
    else begin
      let old = t.int_map.(a) in
      t.int_map.(a) <- p;
      (((2 * p) + 1) lsl 20) lor ((2 * old) + 1)
    end
  | Some (Reg.Fp a) ->
    let p = Regfile.alloc_idx t.fp_rf in
    if p < 0 then -1
    else begin
      let old = t.fp_map.(a) in
      t.fp_map.(a) <- p;
      (((2 * p) + 2) lsl 20) lor ((2 * old) + 2)
    end

let dispatch_one t (dyn : Exec.dyn) : dispatch_stop =
  let i = dyn.Exec.instr in
  (* A tag (the "Extension" encoding) opens a new region for this very
     instruction, costing nothing. Trace-only event: a stalled dispatch
     retries and re-announces the same delivery next cycle (the policy
     dedupes by region pc). *)
  (match i.Instr.tag with
  | Some v ->
    if t.bus_on then
      Bus.emit t.bus
        (Ev.Annotation { pc = dyn.Exec.pc; value = v; delivery = Ev.Tag });
    Policy.on_annotation t.policy t.iq ~pc:dyn.Exec.pc ~value:v
  | None -> ());
  if Rob.is_full t.rob then Stop_rob_full
  else if not (Policy.allows t.policy t.iq) then
    if Iq.is_full t.iq then Stop_iq_full else Stop_policy
  else begin
    (* Sources must be renamed before the destination gets a fresh
       register, or an instruction like [addi r2, r2, 1] would wait on
       its own result. The first present source is operand 0. *)
    let c1 = src_code t i.Instr.src1 in
    let c2 = src_code t i.Instr.src2 in
    let a = if c1 >= 0 then c1 else c2 in
    let b = if c1 >= 0 then c2 else -1 in
    let nsrc = (if a >= 0 then 1 else 0) + (if b >= 0 then 1 else 0) in
    let packed = rename_dest_codes t i in
    if packed < 0 then Stop_no_reg
    else begin
      let rob_idx =
        Rob.push_codes t.rob ~dyn ~dest_code:(packed lsr 20)
          ~old_code:(packed land 0xFFFFF) ~iq_slot:(-1)
      in
      let slot =
        Iq.dispatch_flat t.iq ~rob_idx ~nsrc
          ~tag0:((if a > 0 then a else 0) asr 1)
          ~ready0:(a >= 0 && a land 1 = 1)
          ~tag1:((if b > 0 then b else 0) asr 1)
          ~ready1:(b >= 0 && b land 1 = 1)
      in
      Rob.set_iq_slot t.rob rob_idx slot;
      (* Remember whether fetch is waiting on this instruction. *)
      if t.blocked_sn = dyn.Exec.sn then
        Rob.set_blocked_fetch t.rob rob_idx true;
      let kind =
        if Instr.is_load i then Ev.Load
        else if Instr.is_store i then begin
          t.stores_in_flight <- t.stores_in_flight + 1;
          Ev.Store
        end
        else Ev.Plain
      in
      emit_dispatch t dyn ~kind ~iq_slot:slot ~rob_idx
        ~cam_writes:(if nsrc < 2 then nsrc else 2);
      Keep_going
    end
  end

let fq_pop t =
  t.fq_dyns.(t.fq_head) <- Rob.dummy_dyn;
  let h = t.fq_head + 1 in
  t.fq_head <- (if h = Array.length t.fq_dyns then 0 else h);
  t.fq_count <- t.fq_count - 1

let dispatch_stage t =
  let slots = ref t.cfg.Config.dispatch_width in
  let stop = ref Keep_going in
  let go = ref true in
  while
    !go && !slots > 0 && t.fq_count > 0 && t.fq_ready.(t.fq_head) <= t.cycle
  do
    let dyn = t.fq_dyns.(t.fq_head) in
    match dyn.Exec.instr.Instr.op with
    | Opcode.Iqset ->
      (* The special NOOP is stripped at the last decode stage — but it has
         already consumed fetch bandwidth and now a dispatch slot
         (Section 5.2.1). *)
      fq_pop t;
      Policy.on_annotation t.policy t.iq ~pc:dyn.Exec.pc
        ~value:dyn.Exec.instr.Instr.imm;
      emit_annotation_noop t ~pc:dyn.Exec.pc ~value:dyn.Exec.instr.Instr.imm;
      decr slots
    | _ -> (
      match dispatch_one t dyn with
      | Keep_going ->
        fq_pop t;
        decr slots
      | s ->
        stop := s;
        go := false)
  done;
  (match !stop with
  | Keep_going -> ()
  | Stop_policy -> emit_dispatch_stall t Ev.Policy_limit
  | Stop_iq_full -> emit_dispatch_stall t Ev.Iq_full
  | Stop_rob_full -> emit_dispatch_stall t Ev.Rob_full
  | Stop_no_reg -> emit_dispatch_stall t Ev.No_reg);
  (* "Throttled" feeds the adaptive policy's pressure signal: a stall on a
     physically shrunken ring counts as pressure just like an explicit
     policy refusal. *)
  match !stop with
  | Stop_policy -> true
  | Stop_iq_full -> Iq.active_size t.iq < Iq.size t.iq
  | Keep_going | Stop_rob_full | Stop_no_reg -> false

(* --- fetch ------------------------------------------------------------- *)

(* Instructions are 4 bytes; a fetch group may not cross a cache line. *)
let line_of t pc = pc * 4 / t.cfg.Config.il1_line

let fq_push t dyn =
  t.fq_dyns.(t.fq_tail) <- dyn;
  t.fq_ready.(t.fq_tail) <- t.cycle + t.cfg.Config.decode_depth;
  let tl = t.fq_tail + 1 in
  t.fq_tail <- (if tl = Array.length t.fq_dyns then 0 else tl);
  t.fq_count <- t.fq_count + 1

let fetch_stage t =
  if t.halted || t.fetch_hold || t.cycle < t.fetch_resume_at
     || t.blocked_sn >= 0
  then ()
  else begin
    let start_pc = t.exec.Exec.pc in
    if start_pc < 0 || start_pc >= Prog.length t.prog then t.halted <- true
    else begin
      let icache_stall =
        match Cache.probe t.il1 ~now:t.cycle (start_pc * 4) with
        | Cache.Hit -> None
        | Cache.Inflight r -> Some (r + 1)
        | Cache.Miss ->
          emit_cache_miss t Ev.Il1 (start_pc * 4);
          let lat =
            match Cache.probe t.l2 ~now:t.cycle (start_pc * 4) with
            | Cache.Hit -> t.cfg.Config.l2_hit
            | Cache.Inflight r -> r + 1
            | Cache.Miss ->
              emit_cache_miss t Ev.L2 (start_pc * 4);
              Cache.set_fill t.l2 (start_pc * 4)
                (t.cycle + t.cfg.Config.mem_latency);
              t.cfg.Config.mem_latency
          in
          Cache.set_fill t.il1 (start_pc * 4) (t.cycle + lat);
          Some lat
      in
      match icache_stall with
      | Some lat ->
        (* Instruction-cache miss: stall fetch for the refill. *)
        t.fetch_resume_at <- t.cycle + lat
      | None ->
      (* First pc past the fetch group's cache line: inside the loop pc
         only ever increments (every redirecting op clears [continue]),
         so one bound check replaces a per-instruction division. *)
      let group_hi =
        (((line_of t start_pc + 1) * t.cfg.Config.il1_line) + 3) / 4
      in
      let fetched = ref 0 in
      let continue = ref true in
      while
        !continue && !fetched < t.cfg.Config.fetch_width
        && t.fq_count < t.cfg.Config.fetch_queue_size
        && not t.halted
      do
        let pc = t.exec.Exec.pc in
        if pc >= group_hi then continue := false
        else
          match Exec.step t.exec with
          | None ->
            t.halted <- true;
            continue := false
          | Some dyn ->
            let i = dyn.Exec.instr in
            (match i.Instr.op with
            | Opcode.Halt ->
              t.halted <- true;
              continue := false
            | _ ->
              begin
              fq_push t dyn;
              incr fetched;
              (* Control flow: consult the predictor against the oracle,
                 then emit one [Fetch] event capturing the outcome. *)
              (match i.Instr.op with
              | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Bge ->
                let predicted_taken =
                  Branch_pred.predict_direction t.bpred dyn.Exec.pc
                in
                let btb = Branch_pred.btb_lookup_tgt t.bpred dyn.Exec.pc in
                (* Train immediately: fetch order = commit order here. *)
                Branch_pred.update_direction t.bpred dyn.Exec.pc
                  ~taken:dyn.Exec.taken;
                if dyn.Exec.taken then
                  Branch_pred.btb_update t.bpred dyn.Exec.pc
                    ~target:dyn.Exec.next_pc;
                if predicted_taken <> dyn.Exec.taken then begin
                  t.blocked_sn <- dyn.Exec.sn;
                  continue := false;
                  emit_fetch_cond t dyn ~taken:dyn.Exec.taken
                    ~mispredicted:true ~btb_bubble:false;
                  if t.bus_on then Bus.emit t.bus (Ev.Squash { dyn })
                end
                else if dyn.Exec.taken then begin
                  let btb_bubble =
                    if btb = dyn.Exec.next_pc then false
                    else begin
                      t.fetch_resume_at <-
                        t.cycle + t.cfg.Config.btb_miss_penalty;
                      true
                    end
                  in
                  continue := false;
                  emit_fetch_cond t dyn ~taken:true ~mispredicted:false
                    ~btb_bubble
                end
                else
                  emit_fetch_cond t dyn ~taken:false ~mispredicted:false
                    ~btb_bubble:false
              | Opcode.Jmp ->
                let btb_bubble =
                  if Branch_pred.btb_lookup_tgt t.bpred dyn.Exec.pc
                     = dyn.Exec.next_pc
                  then false
                  else begin
                    t.fetch_resume_at <-
                      t.cycle + t.cfg.Config.btb_miss_penalty;
                    true
                  end
                in
                Branch_pred.btb_update t.bpred dyn.Exec.pc
                  ~target:dyn.Exec.next_pc;
                continue := false;
                emit_fetch_jump t dyn ~btb_bubble
              | Opcode.Call ->
                Branch_pred.ras_push t.bpred (dyn.Exec.pc + 1);
                let btb_bubble =
                  if Branch_pred.btb_lookup_tgt t.bpred dyn.Exec.pc
                     = dyn.Exec.next_pc
                  then false
                  else begin
                    t.fetch_resume_at <-
                      t.cycle + t.cfg.Config.btb_miss_penalty;
                    true
                  end
                in
                Branch_pred.btb_update t.bpred dyn.Exec.pc
                  ~target:dyn.Exec.next_pc;
                continue := false;
                emit_fetch_call t dyn ~btb_bubble
              | Opcode.Ret ->
                let mispredicted =
                  if Branch_pred.ras_pop_addr t.bpred = dyn.Exec.next_pc
                  then false
                  else begin
                    (* Return mispredicted: wait for it to resolve. *)
                    t.blocked_sn <- dyn.Exec.sn;
                    true
                  end
                in
                continue := false;
                emit_fetch_ret t dyn ~mispredicted;
                if mispredicted && t.bus_on then
                  Bus.emit t.bus (Ev.Squash { dyn })
              | _ -> emit_fetch_seq t dyn)
              end)
      done
    end
  end

(* --- end of cycle ------------------------------------------------------- *)

(* Per-bank gate/ungate transition events (trace-only), derived by
   diffing the powered-bank mask against the previous cycle's. *)
let emit_bank_transitions t ~unit_ ~prev ~cur =
  if prev <> cur then begin
    let changed = prev lxor cur in
    let b = ref 0 in
    let m = ref changed in
    while !m <> 0 do
      if !m land 1 = 1 then
        Bus.emit t.bus
          (if cur land (1 lsl !b) <> 0 then Ev.Bank_ungated { unit_; bank = !b }
           else Ev.Bank_gated { unit_; bank = !b });
      incr b;
      m := !m lsr 1
    done
  end

let cycle_end_stage t ~throttled =
  let iq_mask = Iq.banks_on_mask t.iq in
  let int_mask = Regfile.banks_on_mask t.int_rf in
  let fp_mask = Regfile.banks_on_mask t.fp_rf in
  let iq_occupancy = Iq.occupancy t.iq in
  let iq_banks_on = Iq.banks_on t.iq in
  let int_rf_banks_on = Regfile.banks_on t.int_rf in
  let int_rf_live = Regfile.live_count t.int_rf in
  let fp_rf_banks_on = Regfile.banks_on t.fp_rf in
  (* Fold the integrand into the pipeline's own stats first (the inline
     mirror of [Stats.absorb]'s [Cycle_end] clause): a [Cycle_end] sink
     must read fully-updated per-cycle sums. *)
  let st = t.stats in
  st.Stats.cycles <- t.cycle + 1;
  st.Stats.iq_occupancy_sum <- st.Stats.iq_occupancy_sum + iq_occupancy;
  st.Stats.iq_banks_on_sum <- st.Stats.iq_banks_on_sum + iq_banks_on;
  st.Stats.int_rf_banks_on_sum <-
    st.Stats.int_rf_banks_on_sum + int_rf_banks_on;
  st.Stats.int_rf_live_sum <- st.Stats.int_rf_live_sum + int_rf_live;
  st.Stats.fp_rf_banks_on_sum <- st.Stats.fp_rf_banks_on_sum + fp_rf_banks_on;
  (* The policy's end-of-cycle action (the adaptive scheme senses
     pressure and resizes here). A resize only drops/adds empty banks,
     so the masks captured above are unaffected. *)
  let size_before = Iq.active_size t.iq in
  Policy.end_cycle t.policy t.iq ~throttled;
  t.cycle <- t.cycle + 1;
  if t.bus_on then begin
    emit_bank_transitions t ~unit_:Ev.Iq_bank ~prev:t.prev_iq_bank_mask
      ~cur:iq_mask;
    emit_bank_transitions t ~unit_:Ev.Int_rf_bank ~prev:t.prev_int_rf_bank_mask
      ~cur:int_mask;
    emit_bank_transitions t ~unit_:Ev.Fp_rf_bank ~prev:t.prev_fp_rf_bank_mask
      ~cur:fp_mask;
    let size_after = Iq.active_size t.iq in
    if size_after <> size_before then
      Bus.emit t.bus (Ev.Resize { before = size_before; after = size_after });
    (* Last event of the cycle, always: per-cycle observers (the
       invariant checker) run here with the post-increment cycle count
       and every counter for the cycle already folded in. The stats were
       updated inline above, so the event bypasses [Stats.absorb]. *)
    Bus.emit t.bus
      (Ev.Cycle_end
         {
           cycle = t.cycle - 1;
           throttled;
           iq_occupancy;
           iq_banks_on;
           int_rf_banks_on;
           int_rf_live;
           fp_rf_banks_on;
         })
  end;
  t.prev_iq_bank_mask <- iq_mask;
  t.prev_int_rf_bank_mask <- int_mask;
  t.prev_fp_rf_bank_mask <- fp_mask

(* --- main loop ---------------------------------------------------------- *)

let drained t = t.halted && Rob.is_empty t.rob && t.fq_count = 0

let step_cycle t =
  commit_stage t;
  writeback_stage t;
  issue_stage t;
  let throttled = dispatch_stage t in
  fetch_stage t;
  cycle_end_stage t ~throttled

(* Run until the program drains or [max_insns] instructions have
   committed. Raises [Simulation_limit] after [max_cycles] as a deadlock
   guard. *)
let run ?(max_insns = max_int) ?(max_cycles = 200_000_000) t =
  while
    (not (drained t)) && t.stats.Stats.committed < max_insns
  do
    if t.cycle >= max_cycles then
      raise
        (Simulation_limit
           (Printf.sprintf
              "no progress: %d cycles, %d committed (policy %s)"
              t.cycle t.stats.Stats.committed (Policy.name t.policy)));
    step_cycle t
  done;
  t.stats

(* --- sampled simulation (SMARTS-style) ---------------------------------- *)

(* Hold or release fetch; in-flight instructions keep flowing either way. *)
let set_fetch_hold t on = t.fetch_hold <- on

let in_flight_empty t = Rob.is_empty t.rob && t.fq_count = 0

(* Hold fetch and run until every in-flight instruction has retired —
   the machine is then ready for a functional fast-forward. Fetch stays
   held; the caller releases it when detailed simulation resumes. *)
let drain ?(max_cycles = 1_000_000) t =
  t.fetch_hold <- true;
  let deadline = t.cycle + max_cycles in
  while (not (in_flight_empty t)) && t.cycle < deadline do
    step_cycle t
  done;
  if not (in_flight_empty t) then
    raise
      (Simulation_limit
         (Printf.sprintf "drain: in-flight instructions did not retire \
                          within %d cycles" max_cycles))

(* Event-free cache probes for fast-forward: same state transitions as
   the detailed probes ([fetch_stage] / [load_cache_latency] /
   [commit_one]'s store path), but no statistics and no sink traffic —
   fast-forwarded work is outside every measured window. *)
let ff_probe t cache addr =
  match Cache.probe cache ~now:t.cycle addr with
  | Cache.Hit | Cache.Inflight _ -> ()
  | Cache.Miss ->
    let lat =
      match Cache.probe t.l2 ~now:t.cycle addr with
      | Cache.Hit -> t.cfg.Config.l2_hit
      | Cache.Inflight r -> r + 1
      | Cache.Miss ->
        Cache.set_fill t.l2 addr (t.cycle + t.cfg.Config.mem_latency);
        t.cfg.Config.mem_latency
    in
    Cache.set_fill cache addr (t.cycle + lat)

(* Functional fast-forward: execute up to [insns] oracle instructions
   with no timing model, keeping the long-lived microarchitectural state
   warm — branch-direction tables, BTB, RAS, all three caches and the
   policy's region state receive exactly the updates detailed execution
   would apply (predict + train per conditional, BTB touch/update per
   control transfer, one icache probe per line transition, a data-cache
   probe per load and store, annotations delivered in program order).
   The cycle counter advances one cycle per instruction so cache fill
   times stay monotone; no events are emitted and no statistics change.
   Requires a drained machine (see [drain]). Returns the number of
   instructions actually skipped (fewer than [insns] only at halt). *)
let fast_forward t ~insns =
  if not (in_flight_empty t) then
    invalid_arg "Pipeline.fast_forward: pipeline not drained";
  let n = ref 0 in
  let last_line = ref min_int in
  while !n < insns && not t.halted do
    let pc = t.exec.Exec.pc in
    if pc < 0 || pc >= Prog.length t.prog then t.halted <- true
    else begin
      let line = line_of t pc in
      if line <> !last_line then begin
        last_line := line;
        ff_probe t t.il1 (pc * 4)
      end;
      match Exec.step t.exec with
      | None -> t.halted <- true
      | Some dyn ->
        incr n;
        t.cycle <- t.cycle + 1;
        let i = dyn.Exec.instr in
        (match i.Instr.op with
        | Opcode.Halt -> t.halted <- true
        | Opcode.Iqset ->
          Policy.on_annotation t.policy t.iq ~pc:dyn.Exec.pc
            ~value:i.Instr.imm
        | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Bge ->
          let (_ : bool) =
            Branch_pred.predict_direction t.bpred dyn.Exec.pc
          in
          let (_ : int) = Branch_pred.btb_lookup_tgt t.bpred dyn.Exec.pc in
          Branch_pred.update_direction t.bpred dyn.Exec.pc
            ~taken:dyn.Exec.taken;
          if dyn.Exec.taken then
            Branch_pred.btb_update t.bpred dyn.Exec.pc
              ~target:dyn.Exec.next_pc
        | Opcode.Jmp ->
          let (_ : int) = Branch_pred.btb_lookup_tgt t.bpred dyn.Exec.pc in
          Branch_pred.btb_update t.bpred dyn.Exec.pc
            ~target:dyn.Exec.next_pc
        | Opcode.Call ->
          Branch_pred.ras_push t.bpred (dyn.Exec.pc + 1);
          let (_ : int) = Branch_pred.btb_lookup_tgt t.bpred dyn.Exec.pc in
          Branch_pred.btb_update t.bpred dyn.Exec.pc
            ~target:dyn.Exec.next_pc
        | Opcode.Ret ->
          let (_ : int) = Branch_pred.ras_pop_addr t.bpred in
          ()
        | Opcode.Load | Opcode.Fload | Opcode.Store | Opcode.Fstore ->
          ff_probe t t.dl1 dyn.Exec.addr
        | _ -> ());
        (* A tagged instruction delivers its annotation regardless of
           opcode, as at dispatch. *)
        (match i.Instr.tag with
        | Some v ->
          Policy.on_annotation t.policy t.iq ~pc:dyn.Exec.pc ~value:v
        | None -> ())
    end
  done;
  !n

(* Convenience: build, initialise memory, run. *)
let simulate ?config ?policy ?checker ?on_commit ?init ?max_insns ?max_cycles
    prog =
  let t = create ?config ?policy ?checker ?on_commit prog in
  (match init with Some f -> f t.exec | None -> ());
  run ?max_insns ?max_cycles t

(* --- read-only view ----------------------------------------------------- *)

(* A stable accessor surface for observers (the invariant checker, tests):
   everything needed to audit the machine without reaching into record
   fields, and nothing that mutates it. *)
module Debug = struct
  let cfg t = t.cfg
  let policy t = t.policy
  let iq t = t.iq
  let rob t = t.rob
  let int_rf t = t.int_rf
  let fp_rf t = t.fp_rf
  let int_map t = Array.copy t.int_map
  let fp_map t = Array.copy t.fp_map
  let cycle t = t.cycle
  let halted t = t.halted
  let exec t = t.exec
  let stats t = t.stats
  let fetch_queue_length t = t.fq_count
  let bus t = t.bus

  (* One-line machine-state excerpt for diagnostics. *)
  let excerpt t =
    let iq = t.iq in
    let oldest_sn = ref (-1) in
    Rob.iter_in_flight t.rob (fun idx ->
        if !oldest_sn < 0 then oldest_sn := (Rob.dyn t.rob idx).Exec.sn);
    Printf.sprintf
      "cycle=%d policy=%s iq[head=%d new_head=%d tail=%d count=%d span=%d \
       active=%d/%d] rob[count=%d oldest_sn=%d] rf[int live=%d free=%d; \
       fp live=%d free=%d] fq=%d committed=%d%s"
      t.cycle (Policy.name t.policy) iq.Iq.head iq.Iq.new_head iq.Iq.tail
      iq.Iq.count iq.Iq.new_span iq.Iq.active_size iq.Iq.size
      (Rob.occupancy t.rob) !oldest_sn
      (Regfile.live_count t.int_rf)
      (Regfile.free_count t.int_rf)
      (Regfile.live_count t.fp_rf)
      (Regfile.free_count t.fp_rf)
      t.fq_count t.stats.Stats.committed
      (if t.halted then " halted" else "")
end
