(* The out-of-order pipeline: fetch → decode (fetch queue) → rename/dispatch
   → issue/execute → writeback → commit, over the Table 1 machine.

   Execution-driven in the SimpleScalar style: the functional executor
   produces the dynamic stream at fetch. When a mispredicted control
   instruction is detected at fetch time, the frontend does not stall
   (unless [speculative_fetch] is off): it keeps fetching down the
   *predicted* path, synthesising wrong-path instructions with a shadow
   executor that reads the predictor for control flow and a copy of the
   architectural state for values. Wrong-path work renames, dispatches,
   issues and completes like any other — occupying the IQ, ROB, LSQ and
   physical registers and heating the caches — but never commits: when
   the branch resolves at writeback, everything younger is squashed with
   an exact rollback of the rename map, the free lists and every queue
   (DESIGN.md §14). The functional oracle only ever runs the correct
   path, so the committed stream is identical with speculation on or
   off; only timing, occupancy and activity differ.

   Cycle phase order (matters, and matches the paper's Figure 1 timing):
     commit → writeback (wakeup) → issue/select → dispatch → fetch
   so a result wakes its consumers in the cycle it completes and the
   consumers can issue that same cycle; instructions issued this cycle
   free IQ slots that dispatch can refill this cycle; newly fetched
   instructions dispatch only after [decode_depth] cycles.

   Telemetry: the stages mutate no consumer directly. Each stage emits
   typed events ([Sdiq_events.Event]); the pipeline's own statistics are
   a fold of that stream ([Stats.absorb]), and external observers —
   invariant checkers, commit capture, power meters, timelines, JSONL
   traces — subscribe to the same bus. With no sink registered the hot
   loop does not even construct the events: each emission site goes
   through a per-kind emitter that applies the matching [Stats.absorb]
   clause inline (DESIGN.md §13), so a bare simulation allocates nothing
   on the event path. [Cycle_end] is always the last event of its cycle,
   emitted after the policy's end-of-cycle action, so a sink observing it
   sees exactly the machine state a per-cycle checker needs (DESIGN.md
   §11 specifies the ordering contract).

   Hot-loop storage is flat (DESIGN.md §13): the fetch queue is a ring
   over parallel arrays, completions sit in a cycle-indexed timing wheel,
   unpipelined-FU occupancy is a per-class array of release cycles, and
   writeback/issue reuse preallocated scratch arrays across cycles. *)

open Sdiq_isa
module Ev = Sdiq_events.Event
module Bus = Sdiq_events.Bus

type t = {
  cfg : Config.t;
  prog : Prog.t;
  exec : Exec.state;
  policy : Policy.t;
  sched : Sched.t;
  pred_track : bool;
      (* [Sched.suppresses_predicted sched], cached: the dispatch path
         only computes predicted-ready bits when the policy uses them *)
  scan_limit : int;
      (* the policy's select-scan slot bound ([max_int] when unbounded):
         cached so the per-cycle select loop takes a plain [min] against
         the active ring instead of a [Sched.scan_bound] dispatch *)
  tag_is_load : Bytes.t;
      (* per physical tag (int then fp, 2*rf_size bytes): the current
         producer is a load, i.e. its latency is unpredictable. Written
         at rename; a waiting operand's producer cannot be freed while
         the operand waits, so the byte is current whenever read. *)
  il1 : Cache.t;
  dl1 : Cache.t;
  l2 : Cache.t;
  bpred : Branch_pred.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  int_rf : Regfile.t;
  fp_rf : Regfile.t;
  int_map : int array;
  fp_map : int array;
  rob : Rob.t;
  iq : Iq.t;
  lsq : Lsq.t;
  (* fetch queue: ring buffer over parallel arrays (capacity
     [fetch_queue_size]); a free slot holds [Rob.dummy_dyn] *)
  fq_dyns : Exec.dyn array;
  fq_ready : int array; (* cycle at which decode finishes *)
  mutable fq_head : int;
  mutable fq_tail : int;
  mutable fq_count : int;
  (* completion timing wheel: cell [c land (len-1)] holds the ROB indices
     completing at cycle [wheel_cycle], in scheduling order; doubles on
     the (rare) collision of two in-flight completion cycles *)
  mutable wheel : int array array;
  mutable wheel_len : int array;
  mutable wheel_cycle : int array;
  (* functional units: count per class and, for unpipelined ops, the
     release cycle of each unit instance *)
  fu_counts : int array;
  fu_release : int array array;
  (* per-cycle scratch, reused so the hot loop allocates nothing *)
  avail : int array; (* issue slots left per FU class *)
  wb_tags : int array; (* result tags broadcast this cycle *)
  cand_slot : int array; (* ready IQ slots, oldest first *)
  cand_rob : int array;
  mutable cycle : int;
  mutable halted : bool;
  mutable fetch_hold : bool;
      (* sampled simulation: fetch is held while the machine drains
         before a functional fast-forward; in-flight work keeps flowing *)
  mutable fetch_resume_at : int;
  mutable blocked_sn : int; (* unresolved mispredict sn; -1 = none *)
  (* wrong-path (speculative fetch) episode state. One episode at a time:
     fetch follows the predicted path of the unresolved mispredict at
     [blocked_sn]; a nested wrong-path mispredict just ends wrong-path
     fetch (there is no second level to recover to). *)
  mutable wp_mode : bool;
  mutable wp_pc : int; (* next wrong-path pc; -1 = wp fetch idle *)
  mutable wp_next_sn : int; (* synthetic sns, from [blocked_sn] + 1 *)
  (* shadow architectural state seeding the wrong-path executor: register
     copies taken at episode entry, plus store overlays over the oracle's
     memory (the oracle itself is never touched off the correct path) *)
  wp_iregs : int array;
  wp_fregs : float array;
  wp_imem : (int, int) Hashtbl.t;
  wp_fmem : (int, float) Hashtbl.t;
  wp_ras : int array; (* RAS snapshot, restored at squash *)
  mutable wp_ras_top : int;
  iq_wp : Bytes.t; (* per-IQ-slot wrong-path flag, for pointer rewind *)
  mutable wp_iq_boundary : int;
      (* IQ slot of the episode's first wrong-path dispatch — where
         [tail] rewinds to at squash; -1 while none dispatched *)
  squash_mark : Bytes.t; (* scratch: ROB indices squashed this episode *)
  mutable sabotage_squash_leak : bool;
      (* test hook (Debug): leave one squashed IQ entry live so the
         invariant checker can prove it catches the corruption *)
  mutable stores_in_flight : int; (* stores currently in the ROB *)
  mutable unpipe_busy_until : int; (* all unpipelined units free from here *)
  stats : Stats.t;
  bus : Sdiq_events.Bus.t;
  mutable bus_on : bool;
      (* whether any sink is subscribed, cached: one field read per
         emission site instead of a cross-module call; [subscribe] keeps
         it in sync (all pipeline sinks register through it) *)
  (* previous end-of-cycle powered-bank masks, for gate/ungate events *)
  mutable prev_iq_bank_mask : int;
  mutable prev_int_rf_bank_mask : int;
  mutable prev_fp_rf_bank_mask : int;
}

exception Simulation_limit of string

(* Deliver one event: fold it into the pipeline's own statistics, then
   to external sinks (if any). The absorb-first order is part of the
   sink contract — a [Cycle_end] sink reads fully-updated stats. *)
let emit t ev =
  Stats.absorb t.stats ev;
  if t.bus_on then Bus.emit t.bus ev

(* --- per-kind emitters -------------------------------------------------- *)

(* With no sink subscribed, each emitter applies the matching
   [Stats.absorb] clause directly and never constructs the event, so the
   no-sink path is allocation-free; with sinks it builds the event once
   and takes the generic [emit] path. The inline updates must mirror
   [Stats.absorb] clause for clause — the no-sink/sink stats-equality
   test in the exactness battery pins this. *)

let emit_commit t dyn =
  if t.bus_on then emit t (Ev.Commit { dyn })
  else t.stats.Stats.committed <- t.stats.Stats.committed + 1

let emit_cache_miss t level addr =
  if t.bus_on then emit t (Ev.Cache_miss { level; addr })
  else begin
    let st = t.stats in
    match level with
    | Ev.Il1 -> st.Stats.il1_misses <- st.Stats.il1_misses + 1
    | Ev.Dl1 -> st.Stats.dl1_misses <- st.Stats.dl1_misses + 1
    | Ev.L2 -> st.Stats.l2_misses <- st.Stats.l2_misses + 1
  end

(* [Writeback] absorbs to nothing; it exists only for sinks. *)
let emit_writeback t idx =
  if t.bus_on then
    emit t (Ev.Writeback { dyn = Rob.dyn t.rob idx; rob_idx = idx })

let emit_rf_write t file phys =
  if t.bus_on then emit t (Ev.Rf_write { file; phys })
  else begin
    let st = t.stats in
    match file with
    | Ev.Int_rf -> st.Stats.int_rf_writes <- st.Stats.int_rf_writes + 1
    | Ev.Fp_rf -> st.Stats.fp_rf_writes <- st.Stats.fp_rf_writes + 1
  end

let emit_wakeup t ~tags ~woken ~naive ~nonempty ~gated ~suppressed =
  if t.bus_on then
    emit t (Ev.Wakeup { tags; woken; naive; nonempty; gated; suppressed })
  else begin
    let st = t.stats in
    st.Stats.iq_broadcasts <- st.Stats.iq_broadcasts + tags;
    st.Stats.iq_wakeups_naive <- st.Stats.iq_wakeups_naive + naive;
    st.Stats.iq_wakeups_nonempty <- st.Stats.iq_wakeups_nonempty + nonempty;
    st.Stats.iq_wakeups_gated <- st.Stats.iq_wakeups_gated + gated;
    st.Stats.iq_wakeups_suppressed <-
      st.Stats.iq_wakeups_suppressed + suppressed
  end

let emit_select t ~rob_idx ~iq_slot =
  if t.bus_on then emit t (Ev.Select { rob_idx; iq_slot })
  else t.stats.Stats.iq_selects <- t.stats.Stats.iq_selects + 1

let emit_select_scan t ~entries =
  if t.bus_on then emit t (Ev.Select_scan { entries })
  else t.stats.Stats.iq_scan_entries <- t.stats.Stats.iq_scan_entries + entries

let emit_issue t dyn ~latency ~store_forward ~wp =
  if t.bus_on then emit t (Ev.Issue { dyn; latency; store_forward; wp })
  else begin
    let st = t.stats in
    st.Stats.iq_issue_reads <- st.Stats.iq_issue_reads + 1;
    if store_forward then
      st.Stats.store_forwards <- st.Stats.store_forwards + 1;
    if wp then st.Stats.wp_issued <- st.Stats.wp_issued + 1
  end

let emit_rf_read t ~ints ~fps =
  if t.bus_on then emit t (Ev.Rf_read { ints; fps })
  else begin
    let st = t.stats in
    st.Stats.int_rf_reads <- st.Stats.int_rf_reads + ints;
    st.Stats.fp_rf_reads <- st.Stats.fp_rf_reads + fps
  end

let emit_dispatch t dyn ~kind ~iq_slot ~rob_idx ~cam_writes ~wp =
  if t.bus_on then
    emit t (Ev.Dispatch { dyn; kind; iq_slot; rob_idx; cam_writes; wp })
  else begin
    let st = t.stats in
    st.Stats.dispatched <- st.Stats.dispatched + 1;
    st.Stats.iq_dispatch_ram_writes <- st.Stats.iq_dispatch_ram_writes + 1;
    st.Stats.iq_dispatch_cam_writes <-
      st.Stats.iq_dispatch_cam_writes + cam_writes;
    if wp then st.Stats.wp_dispatched <- st.Stats.wp_dispatched + 1;
    match kind with
    | Ev.Plain -> ()
    | Ev.Load -> st.Stats.loads <- st.Stats.loads + 1
    | Ev.Store -> st.Stats.stores <- st.Stats.stores + 1
  end

let emit_dispatch_stall t reason =
  if t.bus_on then emit t (Ev.Dispatch_stall reason)
  else begin
    let st = t.stats in
    match reason with
    | Ev.Policy_limit ->
      st.Stats.dispatch_stall_policy <- st.Stats.dispatch_stall_policy + 1
    | Ev.Iq_full ->
      st.Stats.dispatch_stall_iq_full <- st.Stats.dispatch_stall_iq_full + 1
    | Ev.Rob_full ->
      st.Stats.dispatch_stall_rob_full <- st.Stats.dispatch_stall_rob_full + 1
    | Ev.No_reg ->
      st.Stats.dispatch_stall_no_reg <- st.Stats.dispatch_stall_no_reg + 1
    | Ev.Lsq_full ->
      st.Stats.dispatch_stall_lsq_full <- st.Stats.dispatch_stall_lsq_full + 1
  end

let emit_squash t dyn ~squashed =
  if t.bus_on then emit t (Ev.Squash { dyn; squashed })
  else begin
    let st = t.stats in
    st.Stats.squashes <- st.Stats.squashes + 1;
    st.Stats.squashed <- st.Stats.squashed + squashed
  end

let emit_tlb_miss t tlb addr =
  if t.bus_on then emit t (Ev.Tlb_miss { tlb; addr })
  else begin
    let st = t.stats in
    match tlb with
    | Ev.Itlb -> st.Stats.itlb_misses <- st.Stats.itlb_misses + 1
    | Ev.Dtlb -> st.Stats.dtlb_misses <- st.Stats.dtlb_misses + 1
  end

let emit_annotation_noop t ~pc ~value =
  if t.bus_on then
    emit t (Ev.Annotation { pc; value; delivery = Ev.Noop_slot })
  else
    t.stats.Stats.iqset_dispatch_slots <-
      t.stats.Stats.iqset_dispatch_slots + 1

let emit_fetch_seq t dyn =
  if t.bus_on then
    emit t (Ev.Fetch { dyn; outcome = Ev.Sequential; wp = false })
  else t.stats.Stats.fetched <- t.stats.Stats.fetched + 1

(* A wrong-path fetch counts as fetch activity but never as a branch,
   mispredict or BTB bubble — the predictor is consulted, not trained,
   off the correct path, so those rates stay correct-path-only. *)
let emit_fetch_wp t dyn ~outcome =
  if t.bus_on then emit t (Ev.Fetch { dyn; outcome; wp = true })
  else begin
    let st = t.stats in
    st.Stats.fetched <- st.Stats.fetched + 1;
    st.Stats.wp_fetched <- st.Stats.wp_fetched + 1
  end

let emit_fetch_cond t dyn ~taken ~mispredicted ~btb_bubble =
  if t.bus_on then
    emit t
      (Ev.Fetch
         {
           dyn;
           outcome = Ev.Cond_branch { taken; mispredicted; btb_bubble };
           wp = false;
         })
  else begin
    let st = t.stats in
    st.Stats.fetched <- st.Stats.fetched + 1;
    st.Stats.branches <- st.Stats.branches + 1;
    if mispredicted then st.Stats.mispredicts <- st.Stats.mispredicts + 1;
    if btb_bubble then st.Stats.btb_bubbles <- st.Stats.btb_bubbles + 1
  end

let emit_fetch_jump t dyn ~btb_bubble =
  if t.bus_on then
    emit t (Ev.Fetch { dyn; outcome = Ev.Jump { btb_bubble }; wp = false })
  else begin
    let st = t.stats in
    st.Stats.fetched <- st.Stats.fetched + 1;
    if btb_bubble then st.Stats.btb_bubbles <- st.Stats.btb_bubbles + 1
  end

let emit_fetch_call t dyn ~btb_bubble =
  if t.bus_on then
    emit t (Ev.Fetch { dyn; outcome = Ev.Call { btb_bubble }; wp = false })
  else begin
    let st = t.stats in
    st.Stats.fetched <- st.Stats.fetched + 1;
    if btb_bubble then st.Stats.btb_bubbles <- st.Stats.btb_bubbles + 1
  end

let emit_fetch_ret t dyn ~mispredicted =
  if t.bus_on then
    emit t
      (Ev.Fetch { dyn; outcome = Ev.Return { mispredicted }; wp = false })
  else begin
    let st = t.stats in
    st.Stats.fetched <- st.Stats.fetched + 1;
    st.Stats.branches <- st.Stats.branches + 1;
    if mispredicted then st.Stats.mispredicts <- st.Stats.mispredicts + 1
  end

(* --- sink registration --------------------------------------------------- *)

let subscribe ?name t fn =
  Bus.subscribe ?name t.bus fn;
  t.bus_on <- true

(* Per-cycle observer: runs on every [Cycle_end], after all statistics
   for the cycle are folded in. The shape the invariant checker wants. *)
let on_cycle_end ?(name = "cycle-observer") t f =
  subscribe ~name t (function Ev.Cycle_end _ -> f t | _ -> ())

(* Commit observer: one call per committed instruction, in commit order. *)
let on_commit_sink ?(name = "commit-observer") t f =
  subscribe ~name t (function Ev.Commit { dyn } -> f dyn | _ -> ())

let create ?(config = Config.default) ?(policy = Policy.unlimited) ?sched
    ?checker ?on_commit prog =
  let sched =
    match sched with Some s -> s | None -> config.Config.sched
  in
  let exec = Exec.create prog in
  let int_rf =
    Regfile.create ~size:config.Config.rf_size
      ~bank_size:config.Config.rf_bank_size
  in
  let fp_rf =
    Regfile.create ~size:config.Config.rf_size
      ~bank_size:config.Config.rf_bank_size
  in
  (* Initial architectural mapping: arch i -> phys i, values ready. *)
  let int_map = Array.init Reg.num_int (fun i -> i) in
  let fp_map = Array.init Reg.num_fp (fun i -> i) in
  for i = 0 to Reg.num_int - 1 do
    Regfile.alloc_exact int_rf i;
    int_rf.Regfile.ready.(i) <- true
  done;
  for i = 0 to Reg.num_fp - 1 do
    Regfile.alloc_exact fp_rf i;
    fp_rf.Regfile.ready.(i) <- true
  done;
  let fu_counts = Array.make Fu.count_classes 0 in
  List.iter
    (fun cls -> fu_counts.(Fu.index cls) <- config.Config.fu_count cls)
    Fu.all;
  (* Wheel span must exceed the longest completion latency in flight;
     [schedule_completion] doubles it if a workload ever proves it
     short. *)
  let wheel_size =
    let bound =
      config.Config.mem_latency + config.Config.l2_hit
      + config.Config.dl1_hit + 64
    in
    let s = ref 64 in
    while !s < bound do
      s := !s * 2
    done;
    !s
  in
  let t =
    {
      cfg = config;
      prog;
      exec;
      policy;
      sched;
      pred_track = Sched.suppresses_predicted sched;
      scan_limit = (match sched with Sched.Nskip n -> n | _ -> max_int);
      tag_is_load = Bytes.make (2 * config.Config.rf_size) '\000';
      il1 =
        Cache.create ~sets:config.Config.il1_sets ~ways:config.Config.il1_ways
          ~line:config.Config.il1_line;
      dl1 =
        Cache.create ~sets:config.Config.dl1_sets ~ways:config.Config.dl1_ways
          ~line:config.Config.dl1_line;
      l2 =
        Cache.create ~sets:config.Config.l2_sets ~ways:config.Config.l2_ways
          ~line:config.Config.l2_line;
      bpred = Branch_pred.create config;
      itlb =
        Tlb.create ~entries:config.Config.itlb_entries
          ~page_size:config.Config.page_size;
      dtlb =
        Tlb.create ~entries:config.Config.dtlb_entries
          ~page_size:config.Config.page_size;
      int_rf;
      fp_rf;
      int_map;
      fp_map;
      rob = Rob.create ~size:config.Config.rob_size;
      iq = Iq.create ~size:config.Config.iq_size
          ~bank_size:config.Config.iq_bank_size;
      lsq = Lsq.create ~size:config.Config.lsq_size;
      fq_dyns = Array.make config.Config.fetch_queue_size Rob.dummy_dyn;
      fq_ready = Array.make config.Config.fetch_queue_size 0;
      fq_head = 0;
      fq_tail = 0;
      fq_count = 0;
      wheel = Array.make wheel_size [||];
      wheel_len = Array.make wheel_size 0;
      wheel_cycle = Array.make wheel_size (-1);
      fu_counts;
      fu_release =
        Array.init Fu.count_classes (fun k ->
            Array.make fu_counts.(k) min_int);
      avail = Array.make Fu.count_classes 0;
      wb_tags = Array.make config.Config.rob_size 0;
      cand_slot = Array.make config.Config.iq_size 0;
      cand_rob = Array.make config.Config.iq_size 0;
      cycle = 0;
      halted = false;
      fetch_hold = false;
      fetch_resume_at = 0;
      blocked_sn = -1;
      wp_mode = false;
      wp_pc = -1;
      wp_next_sn = 0;
      wp_iregs = Array.make Reg.num_int 0;
      wp_fregs = Array.make Reg.num_fp 0.;
      wp_imem = Hashtbl.create 64;
      wp_fmem = Hashtbl.create 64;
      wp_ras = Array.make config.Config.ras_size 0;
      wp_ras_top = 0;
      iq_wp = Bytes.make config.Config.iq_size '\000';
      wp_iq_boundary = -1;
      squash_mark = Bytes.make config.Config.rob_size '\000';
      sabotage_squash_leak = false;
      stores_in_flight = 0;
      unpipe_busy_until = 0;
      stats = Stats.create ();
      bus = Bus.create ();
      bus_on = false;
      prev_iq_bank_mask = 0;
      prev_int_rf_bank_mask = Regfile.banks_on_mask int_rf;
      prev_fp_rf_bank_mask = Regfile.banks_on_mask fp_rf;
    }
  in
  t.iq.Iq.suppress_pred <- t.pred_track;
  (* Compat shims: the old [?checker]/[?on_commit] hooks are ordinary
     sinks now. *)
  (match checker with Some f -> on_cycle_end ~name:"checker" t f | None -> ());
  (match on_commit with
  | Some f -> on_commit_sink ~name:"on-commit" t f
  | None -> ());
  t

(* Physical-register tag space: int regs as-is, fp regs offset. *)
let int_tag p = p
let fp_tag t p = t.cfg.Config.rf_size + p

(* --- commit ------------------------------------------------------------ *)

(* Destinations travel as Rob's packed int codes on the hot path. *)
let release_dest_code t code =
  if code <> 0 then
    if code land 1 = 1 then Regfile.release t.int_rf (code asr 1)
    else Regfile.release t.fp_rf ((code asr 1) - 1)

let commit_one t idx =
  let dyn = Rob.dyn t.rob idx in
  let i = dyn.Exec.instr in
  emit_commit t dyn;
  release_dest_code t (Rob.old_code t.rob idx);
  (* Memory instructions leave the LSQ in program order at commit. *)
  if Rob.lsq_slot t.rob idx >= 0 then Lsq.pop_head t.lsq ~rob_idx:idx;
  (* The predictor trains at fetch (see [fetch_stage]): with no wrong-path
     instructions, fetch order equals commit order, so updating there is
     exact and avoids stale-history aliasing for in-flight branches. *)
  (* Stores write the data cache at commit; write misses allocate but do
     not stall the pipeline (a write buffer is assumed). *)
  if Instr.is_store i then begin
    t.stores_in_flight <- t.stores_in_flight - 1;
    let now = t.cycle in
    match Cache.probe t.dl1 ~now dyn.Exec.addr with
    | Cache.Hit | Cache.Inflight _ -> ()
    | Cache.Miss ->
      emit_cache_miss t Ev.Dl1 dyn.Exec.addr;
      let lat =
        match Cache.probe t.l2 ~now dyn.Exec.addr with
        | Cache.Hit -> t.cfg.Config.l2_hit
        | Cache.Inflight r -> r + 1
        | Cache.Miss ->
          emit_cache_miss t Ev.L2 dyn.Exec.addr;
          Cache.set_fill t.l2 dyn.Exec.addr (now + t.cfg.Config.mem_latency);
          t.cfg.Config.mem_latency
      in
      Cache.set_fill t.dl1 dyn.Exec.addr (now + lat)
  end

let commit_stage t =
  let n = ref 0 in
  while !n < t.cfg.Config.commit_width && Rob.head_is_completed t.rob do
    commit_one t (Rob.head_index t.rob);
    Rob.pop_head t.rob;
    incr n
  done

(* --- wrong-path squash -------------------------------------------------- *)

(* Undo one rename: restore the architectural mapping to the previous
   physical register and free the newly allocated one. Executed
   youngest-first over the squashed suffix, so the map and the free
   lists rewind in exactly the reverse of dispatch order — [free_head]
   and [free_count] end where the episode began them. *)
let undo_rename t idx =
  let code = Rob.dest_code t.rob idx in
  if code <> 0 then begin
    let old = Rob.old_code t.rob idx in
    if code land 1 = 1 then begin
      Regfile.release t.int_rf (code asr 1);
      match (Rob.dyn t.rob idx).Exec.instr.Instr.dst with
      | Some (Reg.Int a) -> t.int_map.(a) <- old asr 1
      | Some (Reg.Fp _) | None -> assert false
    end
    else begin
      Regfile.release t.fp_rf ((code asr 1) - 1);
      match (Rob.dyn t.rob idx).Exec.instr.Instr.dst with
      | Some (Reg.Fp a) -> t.fp_map.(a) <- (old asr 1) - 1
      | Some (Reg.Int _) | None -> assert false
    end
  end

(* The mispredicted branch at ROB index [bidx] has resolved: squash
   everything younger. Called from writeback *after* the cycle's wakeup
   broadcast (the invariant checker replays the pre-broadcast exposure,
   so the IQ must not change between the two).

   Rollback, piece by piece:
   - fetch queue: flushed whole — the branch dispatched long before
     completing, so everything still queued was fetched after it, i.e.
     wrong-path;
   - ROB: tail pops youngest-first until the branch is youngest again,
     undoing each rename ([undo_rename]) and reclaiming the entry's IQ
     slot and speculative LSQ tail entry as it goes;
   - timing wheel: pending completions of squashed entries are filtered
     out (an issued wrong-path op must not complete into a reused slot);
   - IQ pointers: the squashed slots form the ring suffix dispatched
     since episode entry, so [tail] rewinds to the first wrong-path slot
     and [new_head]/[new_span] are restored from the per-slot wrong-path
     flags (regions cannot begin during an episode — wrong-path dispatch
     skips the policy — but [new_head] may have swept onto wrong-path
     territory, which empties the region);
   - RAS: restored from the episode-entry snapshot.
   Functional-unit reservations are deliberately left standing: a
   wrong-path divide keeps its unit busy, as in hardware.

   The functional oracle never executed any of this, so nothing
   architectural needs repair; fetch resumes on the correct path at the
   redirect cycle set by the resolution code in [writeback_stage]. *)
let squash_wrong_path t bidx =
  let branch_dyn = Rob.dyn t.rob bidx in
  let fq_squashed = t.fq_count in
  Array.fill t.fq_dyns 0 (Array.length t.fq_dyns) Rob.dummy_dyn;
  t.fq_head <- 0;
  t.fq_tail <- 0;
  t.fq_count <- 0;
  (* Geometry facts captured before any slot is freed. [new_head] rests
     on a valid slot whenever [new_span] > 0 (the issue sweep maintains
     this), so the wrong-path flag under it is authoritative. *)
  let iq = t.iq in
  let s0 = t.wp_iq_boundary in
  let new_head_on_wp = Bytes.unsafe_get t.iq_wp iq.Iq.new_head <> '\000' in
  let nrob = ref 0 in
  let leak_done = ref (not t.sabotage_squash_leak) in
  while
    Rob.occupancy t.rob > 0 && Rob.is_wp t.rob (Rob.tail_index t.rob)
  do
    let idx = Rob.tail_index t.rob in
    incr nrob;
    Bytes.unsafe_set t.squash_mark idx '\001';
    undo_rename t idx;
    let slot = Rob.iq_slot t.rob idx in
    if slot >= 0 then begin
      if !leak_done then Iq.squash_slot iq slot else leak_done := true;
      Bytes.unsafe_set t.iq_wp slot '\000'
    end;
    if Rob.lsq_slot t.rob idx >= 0 then Lsq.pop_tail t.lsq ~rob_idx:idx;
    if Instr.is_store (Rob.dyn t.rob idx).Exec.instr then
      t.stores_in_flight <- t.stores_in_flight - 1;
    Rob.pop_tail t.rob
  done;
  if !nrob > 0 then begin
    (* Drop pending completions of the squashed entries. *)
    for c = 0 to Array.length t.wheel - 1 do
      let n = t.wheel_len.(c) in
      if n > 0 then begin
        let buf = t.wheel.(c) in
        let k = ref 0 in
        for j = 0 to n - 1 do
          let idx = Array.unsafe_get buf j in
          if Bytes.unsafe_get t.squash_mark idx = '\000' then begin
            Array.unsafe_set buf !k idx;
            incr k
          end
        done;
        t.wheel_len.(c) <- !k
      end
    done;
    Bytes.fill t.squash_mark 0 (Bytes.length t.squash_mark) '\000'
  end;
  if s0 >= 0 then begin
    iq.Iq.tail <- s0;
    if iq.Iq.count = 0 then begin
      iq.Iq.head <- s0;
      iq.Iq.new_head <- s0;
      iq.Iq.new_span <- 0
    end
    else if iq.Iq.new_span = 0 then iq.Iq.new_head <- s0
    else if new_head_on_wp then begin
      (* Every older entry of the region issued and the sweep came to
         rest on wrong-path territory: the region is now empty. *)
      iq.Iq.new_head <- s0;
      iq.Iq.new_span <- 0
    end
    else
      iq.Iq.new_span <-
        (s0 - iq.Iq.new_head + iq.Iq.active_size) mod iq.Iq.active_size
  end;
  Branch_pred.ras_restore t.bpred t.wp_ras t.wp_ras_top;
  t.wp_mode <- false;
  t.wp_pc <- -1;
  t.wp_iq_boundary <- -1;
  if Hashtbl.length t.wp_imem > 0 then Hashtbl.reset t.wp_imem;
  if Hashtbl.length t.wp_fmem > 0 then Hashtbl.reset t.wp_fmem;
  emit_squash t branch_dyn ~squashed:(fq_squashed + !nrob)

(* --- writeback --------------------------------------------------------- *)

let writeback_stage t =
  let mask = Array.length t.wheel - 1 in
  let cell = t.cycle land mask in
  if t.wheel_len.(cell) > 0 && t.wheel_cycle.(cell) = t.cycle then begin
    let idxs = t.wheel.(cell) in
    let n = t.wheel_len.(cell) in
    t.wheel_len.(cell) <- 0;
    let resolved = ref (-1) in
    (* Oldest first, deterministically: scheduling order. All results
       completing this cycle broadcast together so wakeup counting sees
       one snapshot, as the parallel CAM ports do. *)
    let ntags = ref 0 in
    for k = 0 to n - 1 do
      let idx = Array.unsafe_get idxs k in
      Rob.set_state t.rob idx Rob.Completed;
      emit_writeback t idx;
      (let code = Rob.dest_code t.rob idx in
       if code <> 0 then
         if code land 1 = 1 then begin
           let p = code asr 1 in
           Regfile.mark_ready t.int_rf p;
           emit_rf_write t Ev.Int_rf p;
           t.wb_tags.(!ntags) <- int_tag p;
           incr ntags
         end
         else begin
           let p = (code asr 1) - 1 in
           Regfile.mark_ready t.fp_rf p;
           emit_rf_write t Ev.Fp_rf p;
           t.wb_tags.(!ntags) <- fp_tag t p;
           incr ntags
         end);
      (* A control instruction that blocked fetch now redirects it. *)
      if Rob.blocked_fetch t.rob idx then begin
        let dyn = Rob.dyn t.rob idx in
        if t.blocked_sn = dyn.Exec.sn then begin
          t.blocked_sn <- -1;
          t.fetch_resume_at <-
            max t.fetch_resume_at
              (t.cycle + 1 + t.cfg.Config.mispredict_redirect);
          (* Speculative episode: squash after the wakeup broadcast. *)
          if t.wp_mode then resolved := idx
        end;
        Rob.set_blocked_fetch t.rob idx false
      end
    done;
    (* One wakeup event per broadcast group, carrying the comparison
       deltas under all three Figure 8 accounting schemes. *)
    let naive0 = t.iq.Iq.wakeups_naive in
    let nonempty0 = t.iq.Iq.wakeups_nonempty in
    let gated0 = t.iq.Iq.wakeups_gated in
    let suppressed0 = t.iq.Iq.wakeups_suppressed in
    let woken = Iq.broadcast_into t.iq t.wb_tags !ntags in
    if !ntags > 0 then
      emit_wakeup t ~tags:!ntags ~woken
        ~naive:(t.iq.Iq.wakeups_naive - naive0)
        ~nonempty:(t.iq.Iq.wakeups_nonempty - nonempty0)
        ~gated:(t.iq.Iq.wakeups_gated - gated0)
        ~suppressed:(t.iq.Iq.wakeups_suppressed - suppressed0);
    if !resolved >= 0 then squash_wrong_path t !resolved
  end

(* --- issue ------------------------------------------------------------- *)

(* Grow the completion wheel until no two in-flight completion cycles
   share a cell. Rare: only when a latency exceeds the initial span. *)
let wheel_grow t =
  let size = ref (2 * Array.length t.wheel) in
  let done_ = ref false in
  while not !done_ do
    let wheel = Array.make !size [||] in
    let len = Array.make !size 0 in
    let cyc = Array.make !size (-1) in
    (try
       for c = 0 to Array.length t.wheel - 1 do
         if t.wheel_len.(c) > 0 then begin
           let nc = t.wheel_cycle.(c) land (!size - 1) in
           if len.(nc) > 0 then raise Exit;
           wheel.(nc) <- t.wheel.(c);
           len.(nc) <- t.wheel_len.(c);
           cyc.(nc) <- t.wheel_cycle.(c)
         end
       done;
       t.wheel <- wheel;
       t.wheel_len <- len;
       t.wheel_cycle <- cyc;
       done_ := true
     with Exit -> size := !size * 2)
  done

let rec schedule_completion t idx latency =
  let c = t.cycle + (if latency > 1 then latency else 1) in
  let mask = Array.length t.wheel - 1 in
  let cell = c land mask in
  if t.wheel_len.(cell) > 0 && t.wheel_cycle.(cell) <> c then begin
    wheel_grow t;
    schedule_completion t idx latency
  end
  else begin
    if t.wheel_len.(cell) = 0 then t.wheel_cycle.(cell) <- c;
    let buf = t.wheel.(cell) in
    let n = t.wheel_len.(cell) in
    let buf =
      if n < Array.length buf then buf
      else begin
        let nb = Array.make (max 8 (2 * Array.length buf)) 0 in
        Array.blit buf 0 nb 0 n;
        t.wheel.(cell) <- nb;
        nb
      end
    in
    buf.(n) <- idx;
    t.wheel_len.(cell) <- n + 1
  end

(* For a load at ROB index [idx] with address [addr]: the ROB index of
   the youngest older in-flight store to the same address, or -1. The
   LSQ's age-ordered backward walk starts at the load's own entry, so it
   only visits memory instructions; a running count of in-flight stores
   skips it entirely in the common case. Wrong-path loads may forward
   from any older store; correct-path loads can never see a wrong-path
   store, which is always younger. *)
let conflicting_store t idx addr =
  if t.stores_in_flight = 0 then -1
  else Lsq.youngest_older_store t.lsq (Rob.lsq_slot t.rob idx) addr

(* Data-cache access latency for a load (address generation is the base
   instruction latency, the cache time is added on top). A line still in
   flight from an earlier miss delivers when its fill completes. *)
let load_cache_latency t addr =
  let now = t.cycle in
  match Cache.probe t.dl1 ~now addr with
  | Cache.Hit -> t.cfg.Config.dl1_hit
  | Cache.Inflight r -> r + 1
  | Cache.Miss ->
    emit_cache_miss t Ev.Dl1 addr;
    let lat =
      match Cache.probe t.l2 ~now addr with
      | Cache.Hit -> t.cfg.Config.l2_hit
      | Cache.Inflight r -> r + 1
      | Cache.Miss ->
        emit_cache_miss t Ev.L2 addr;
        Cache.set_fill t.l2 addr (now + t.cfg.Config.mem_latency);
        t.cfg.Config.mem_latency
    in
    Cache.set_fill t.dl1 addr (now + lat);
    lat

(* One register-file read event per issuing instruction, counting its
   int and fp source reads (the per-file counters live in [Regfile] for
   the invariant checker's recount). Reads the source fields directly —
   [Instr.sources] would build a list. *)
let count_rf_reads t (i : Instr.t) =
  let ints = ref 0 and fps = ref 0 in
  (match i.Instr.src1 with
  | Some (Reg.Int 0) | None -> ()
  | Some (Reg.Int _) ->
    Regfile.note_read t.int_rf;
    incr ints
  | Some (Reg.Fp _) ->
    Regfile.note_read t.fp_rf;
    incr fps);
  (match i.Instr.src2 with
  | Some (Reg.Int 0) | None -> ()
  | Some (Reg.Int _) ->
    Regfile.note_read t.int_rf;
    incr ints
  | Some (Reg.Fp _) ->
    Regfile.note_read t.fp_rf;
    incr fps);
  if !ints > 0 || !fps > 0 then emit_rf_read t ~ints:!ints ~fps:!fps

let issue_stage t =
  (* Issue slots per class: unit count minus units still executing an
     unpipelined operation. With no unpipelined op in flight (the common
     case, tracked by [unpipe_busy_until]) this is a plain copy. *)
  if t.cycle >= t.unpipe_busy_until then
    Array.blit t.fu_counts 0 t.avail 0 Fu.count_classes
  else
    for k = 0 to Fu.count_classes - 1 do
      let rel = t.fu_release.(k) in
      let busy = ref 0 in
      for j = 0 to Array.length rel - 1 do
        if Array.unsafe_get rel j > t.cycle then incr busy
      done;
      t.avail.(k) <- max 0 (t.fu_counts.(k) - !busy)
    done;
  (* Collect ready entries oldest-first into scratch, then try each: an
     inline ring walk over the valid entries (direct flat-field reads,
     no closure — the [Iq.slot_ready] sweep is the hottest loop in the
     machine). *)
  let iq = t.iq in
  let ncand = ref 0 in
  let pos = ref iq.Iq.head in
  let remaining = ref iq.Iq.count in
  let steps = ref 0 in
  let active = iq.Iq.active_size in
  (* The scheduler policy bounds the sweep: oldest_first and load_delay
     examine the whole active ring; nskip:N stops after N slots from
     [head] (holes included). The count-bounded walk still ends as soon
     as every valid entry has been seen, so [steps] at loop exit is the
     number of slots the select logic actually examined — the
     [Select_scan] integrand. [t.scan_limit] is [Sched.scan_bound]
     pre-resolved at creation (this loop is the machine's hottest). *)
  let bound = if t.scan_limit < active then t.scan_limit else active in
  while !remaining > 0 && !steps < bound do
    let s = !pos in
    if Bytes.unsafe_get iq.Iq.valid s <> '\000' then begin
      decr remaining;
      let o = 2 * s in
      if
        (Bytes.unsafe_get iq.Iq.op_present o = '\000'
        || Bytes.unsafe_get iq.Iq.op_ready o <> '\000')
        && (Bytes.unsafe_get iq.Iq.op_present (o + 1) = '\000'
           || Bytes.unsafe_get iq.Iq.op_ready (o + 1) <> '\000')
      then begin
        t.cand_slot.(!ncand) <- s;
        t.cand_rob.(!ncand) <- Array.unsafe_get iq.Iq.rob_idx s;
        incr ncand
      end
    end;
    incr steps;
    pos := (if s + 1 = active then 0 else s + 1)
  done;
  (if !steps > 0 then
     if t.bus_on then emit_select_scan t ~entries:!steps
     else
       t.stats.Stats.iq_scan_entries <-
         t.stats.Stats.iq_scan_entries + !steps);
  let ncand = !ncand in
  let width = ref t.cfg.Config.issue_width in
  for c = 0 to ncand - 1 do
    if !width > 0 then begin
      let slot = t.cand_slot.(c) in
      let rob_idx = t.cand_rob.(c) in
      let dyn = Rob.dyn t.rob rob_idx in
      let i = dyn.Exec.instr in
      let cls = Instr.fu_class i in
      let k = Fu.index cls in
      if t.avail.(k) > 0 then begin
        (* Loads must respect older same-address stores. *)
        let can = ref true in
        let extra = ref 0 in
        let store_forward = ref false in
        if Instr.is_load i then begin
          let sidx = conflicting_store t rob_idx dyn.Exec.addr in
          if sidx >= 0 then
            if Rob.is_completed t.rob sidx then begin
              (* forwarded from the store queue *)
              extra := 1;
              store_forward := true
            end
            else can := false (* store data not ready: cannot issue yet *)
          else extra := load_cache_latency t dyn.Exec.addr
        end;
        (* Address translation at issue: a DTLB miss delays the result,
           it does not block the issue slot. *)
        if !can && Instr.is_mem i && not (Tlb.access t.dtlb dyn.Exec.addr)
        then begin
          emit_tlb_miss t Ev.Dtlb dyn.Exec.addr;
          extra := !extra + t.cfg.Config.tlb_miss_penalty
        end;
        if !can then begin
          t.avail.(k) <- t.avail.(k) - 1;
          decr width;
          Iq.issue t.iq slot;
          Bytes.unsafe_set t.iq_wp slot '\000';
          Rob.set_state t.rob rob_idx Rob.Issued;
          Rob.set_iq_slot t.rob rob_idx (-1);
          emit_select t ~rob_idx ~iq_slot:slot;
          let lat = Instr.latency i + !extra in
          emit_issue t dyn ~latency:lat ~store_forward:!store_forward
            ~wp:(Rob.is_wp t.rob rob_idx);
          count_rf_reads t i;
          if Opcode.unpipelined i.Instr.op then begin
            (* Claim a unit instance that is currently free. One exists:
               avail was positive, so busy units < unit count. *)
            let rel = t.fu_release.(k) in
            let j = ref 0 in
            while rel.(!j) > t.cycle do
              incr j
            done;
            rel.(!j) <- t.cycle + lat;
            t.unpipe_busy_until <- max t.unpipe_busy_until (t.cycle + lat)
          end;
          schedule_completion t rob_idx lat
        end
      end
    end
  done

(* --- dispatch ---------------------------------------------------------- *)

type dispatch_stop =
  | Keep_going
  | Stop_policy
  | Stop_iq_full
  | Stop_rob_full
  | Stop_no_reg
  | Stop_lsq_full

(* Rename one source: the physical tag and readiness packed into
   [(tag lsl 1) lor ready]; -1 when the operand is absent (no register,
   or the hardwired zero). *)
let src_code t r =
  match r with
  | Some (Reg.Int 0) | None -> -1
  | Some (Reg.Int a) ->
    let p = t.int_map.(a) in
    (int_tag p lsl 1) lor (if Regfile.is_ready t.int_rf p then 1 else 0)
  | Some (Reg.Fp a) ->
    let p = t.fp_map.(a) in
    (fp_tag t p lsl 1) lor (if Regfile.is_ready t.fp_rf p then 1 else 0)

(* Rename the destination; returns [(dest_code lsl 20) lor old_code] in
   Rob's packed encoding, or -1 when no register is free. *)
let rename_dest_codes t (i : Instr.t) =
  match i.Instr.dst with
  | Some (Reg.Int 0) | None -> 0 (* zero-register writes are discarded *)
  | Some (Reg.Int a) ->
    let p = Regfile.alloc_idx t.int_rf in
    if p < 0 then -1
    else begin
      let old = t.int_map.(a) in
      t.int_map.(a) <- p;
      (((2 * p) + 1) lsl 20) lor ((2 * old) + 1)
    end
  | Some (Reg.Fp a) ->
    let p = Regfile.alloc_idx t.fp_rf in
    if p < 0 then -1
    else begin
      let old = t.fp_map.(a) in
      t.fp_map.(a) <- p;
      (((2 * p) + 2) lsl 20) lor ((2 * old) + 2)
    end

let dispatch_one t (dyn : Exec.dyn) ~wp : dispatch_stop =
  let i = dyn.Exec.instr in
  (* A tag (the "Extension" encoding) opens a new region for this very
     instruction, costing nothing. Trace-only event: a stalled dispatch
     retries and re-announces the same delivery next cycle (the policy
     dedupes by region pc). Wrong-path tags are dropped: the policy's
     region state is software-architectural and is not rolled back at a
     squash, so it must only ever see the correct path. *)
  (match i.Instr.tag with
  | Some v when not wp ->
    if t.bus_on then
      Bus.emit t.bus
        (Ev.Annotation { pc = dyn.Exec.pc; value = v; delivery = Ev.Tag });
    Policy.on_annotation t.policy t.iq ~pc:dyn.Exec.pc ~value:v
  | Some _ | None -> ());
  if Rob.is_full t.rob then Stop_rob_full
  else if not (Policy.allows t.policy t.iq) then
    if Iq.is_full t.iq then Stop_iq_full else Stop_policy
  else if Instr.is_mem i && Lsq.is_full t.lsq then Stop_lsq_full
  else begin
    (* Sources must be renamed before the destination gets a fresh
       register, or an instruction like [addi r2, r2, 1] would wait on
       its own result. The first present source is operand 0. *)
    let c1 = src_code t i.Instr.src1 in
    let c2 = src_code t i.Instr.src2 in
    let a = if c1 >= 0 then c1 else c2 in
    let b = if c1 >= 0 then c2 else -1 in
    let nsrc = (if a >= 0 then 1 else 0) + (if b >= 0 then 1 else 0) in
    let packed = rename_dest_codes t i in
    if packed < 0 then Stop_no_reg
    else begin
      (* Track, per physical tag, whether the current producer is a load
         (unpredictable latency). Written here, at the producer's
         rename, so it is current whenever a later consumer's dispatch
         reads it below — a producer cannot be freed while a consumer
         operand still waits on its tag. Only maintained when the policy
         actually suppresses predicted operands: the write is on the
         per-instruction rename path and must cost nothing otherwise. *)
      (let code = packed lsr 20 in
       if t.pred_track && code <> 0 then begin
         let tag =
           if code land 1 = 1 then code asr 1
           else t.cfg.Config.rf_size + (code asr 1) - 1
         in
         Bytes.unsafe_set t.tag_is_load tag
           (if Instr.is_load i then '\001' else '\000')
       end);
      let rob_idx =
        Rob.push_codes t.rob ~dyn ~dest_code:(packed lsr 20)
          ~old_code:(packed land 0xFFFFF) ~iq_slot:(-1) ~wp
      in
      (* Predicted-ready: the operand waits on a producer whose latency
         is deterministic (not a load) — only computed when the policy
         suppresses such operands' CAM comparisons. *)
      let pred0 =
        t.pred_track && a >= 0 && a land 1 = 0
        && Bytes.unsafe_get t.tag_is_load (a asr 1) = '\000'
      and pred1 =
        t.pred_track && b >= 0 && b land 1 = 0
        && Bytes.unsafe_get t.tag_is_load (b asr 1) = '\000'
      in
      let slot =
        Iq.dispatch_flat t.iq ~rob_idx ~nsrc
          ~tag0:((if a > 0 then a else 0) asr 1)
          ~ready0:(a >= 0 && a land 1 = 1)
          ~pred0
          ~tag1:((if b > 0 then b else 0) asr 1)
          ~ready1:(b >= 0 && b land 1 = 1)
          ~pred1
      in
      Rob.set_iq_slot t.rob rob_idx slot;
      Bytes.unsafe_set t.iq_wp slot (if wp then '\001' else '\000');
      if wp && t.wp_iq_boundary < 0 then t.wp_iq_boundary <- slot;
      (* Remember whether fetch is waiting on this instruction
         (wrong-path sns run strictly above [blocked_sn], so only the
         mispredicted branch itself can match). *)
      if t.blocked_sn = dyn.Exec.sn then
        Rob.set_blocked_fetch t.rob rob_idx true;
      let kind =
        if Instr.is_load i then Ev.Load
        else if Instr.is_store i then begin
          t.stores_in_flight <- t.stores_in_flight + 1;
          Ev.Store
        end
        else Ev.Plain
      in
      (* Memory instructions claim their LSQ entry speculatively at
         dispatch; addresses are exact (the frontend computes them), so
         the forwarding search never needs late disambiguation. *)
      if Instr.is_mem i then begin
        let ls =
          Lsq.push t.lsq ~rob_idx ~addr:dyn.Exec.addr
            ~is_store:(Instr.is_store i) ~wp
        in
        Rob.set_lsq_slot t.rob rob_idx ls
      end;
      emit_dispatch t dyn ~kind ~iq_slot:slot ~rob_idx
        ~cam_writes:(if nsrc < 2 then nsrc else 2)
        ~wp;
      Keep_going
    end
  end

let fq_pop t =
  t.fq_dyns.(t.fq_head) <- Rob.dummy_dyn;
  let h = t.fq_head + 1 in
  t.fq_head <- (if h = Array.length t.fq_dyns then 0 else h);
  t.fq_count <- t.fq_count - 1

let dispatch_stage t =
  let slots = ref t.cfg.Config.dispatch_width in
  let stop = ref Keep_going in
  let go = ref true in
  while
    !go && !slots > 0 && t.fq_count > 0 && t.fq_ready.(t.fq_head) <= t.cycle
  do
    let dyn = t.fq_dyns.(t.fq_head) in
    (* During an episode everything queued behind the mispredicted
       branch is wrong-path; the synthetic sns run strictly above the
       branch's, so the comparison also keeps the branch itself (and
       anything older still queued) on the correct path. *)
    let wp = t.wp_mode && dyn.Exec.sn > t.blocked_sn in
    match dyn.Exec.instr.Instr.op with
    | Opcode.Iqset ->
      (* The special NOOP is stripped at the last decode stage — but it has
         already consumed fetch bandwidth and now a dispatch slot
         (Section 5.2.1). A wrong-path one still burns the slot, but its
         annotation never reaches the (squash-exempt) policy state. *)
      fq_pop t;
      if not wp then begin
        Policy.on_annotation t.policy t.iq ~pc:dyn.Exec.pc
          ~value:dyn.Exec.instr.Instr.imm;
        emit_annotation_noop t ~pc:dyn.Exec.pc
          ~value:dyn.Exec.instr.Instr.imm
      end;
      decr slots
    | _ -> (
      match dispatch_one t dyn ~wp with
      | Keep_going ->
        fq_pop t;
        decr slots
      | s ->
        stop := s;
        go := false)
  done;
  (match !stop with
  | Keep_going -> ()
  | Stop_policy -> emit_dispatch_stall t Ev.Policy_limit
  | Stop_iq_full -> emit_dispatch_stall t Ev.Iq_full
  | Stop_rob_full -> emit_dispatch_stall t Ev.Rob_full
  | Stop_no_reg -> emit_dispatch_stall t Ev.No_reg
  | Stop_lsq_full -> emit_dispatch_stall t Ev.Lsq_full);
  (* "Throttled" feeds the adaptive policy's pressure signal: a stall on a
     physically shrunken ring counts as pressure just like an explicit
     policy refusal. *)
  match !stop with
  | Stop_policy -> true
  | Stop_iq_full -> Iq.active_size t.iq < Iq.size t.iq
  | Keep_going | Stop_rob_full | Stop_no_reg | Stop_lsq_full -> false

(* --- fetch ------------------------------------------------------------- *)

(* Instructions are 4 bytes; a fetch group may not cross a cache line. *)
let line_of t pc = pc * 4 / t.cfg.Config.il1_line

let fq_push t dyn =
  t.fq_dyns.(t.fq_tail) <- dyn;
  t.fq_ready.(t.fq_tail) <- t.cycle + t.cfg.Config.decode_depth;
  let tl = t.fq_tail + 1 in
  t.fq_tail <- (if tl = Array.length t.fq_dyns then 0 else tl);
  t.fq_count <- t.fq_count + 1

(* Probe the instruction-side memory hierarchy for the fetch group at
   [start_pc]: ITLB first, then IL1 (with L2 refill). [Some delay]
   stalls fetch; the TLB installs on its miss, so the penalty is paid
   once per missing page. Shared by the correct- and wrong-path fetch
   stages — wrong-path misses pollute and prefetch for real. *)
let ifetch_stall t start_pc =
  if not (Tlb.access t.itlb (start_pc * 4)) then begin
    emit_tlb_miss t Ev.Itlb (start_pc * 4);
    Some t.cfg.Config.tlb_miss_penalty
  end
  else
    match Cache.probe t.il1 ~now:t.cycle (start_pc * 4) with
    | Cache.Hit -> None
    | Cache.Inflight r -> Some (r + 1)
    | Cache.Miss ->
      emit_cache_miss t Ev.Il1 (start_pc * 4);
      let lat =
        match Cache.probe t.l2 ~now:t.cycle (start_pc * 4) with
        | Cache.Hit -> t.cfg.Config.l2_hit
        | Cache.Inflight r -> r + 1
        | Cache.Miss ->
          emit_cache_miss t Ev.L2 (start_pc * 4);
          Cache.set_fill t.l2 (start_pc * 4)
            (t.cycle + t.cfg.Config.mem_latency);
          t.cfg.Config.mem_latency
      in
      Cache.set_fill t.il1 (start_pc * 4) (t.cycle + lat);
      Some lat

(* --- wrong-path execution ------------------------------------------------ *)

(* Shadow executor for the speculative frontend (DESIGN.md §14): runs
   the *predicted* path after a detected mispredict, against register
   copies taken at episode entry and a store overlay over the oracle's
   memory — the oracle itself never leaves the correct path. Arithmetic
   mirrors [Exec.step] exactly (total: division by zero and out-of-range
   shifts yield 0, unwritten memory reads 0). Control flow follows the
   predictor, because down the wrong path there is no oracle outcome to
   follow: direction tables are read but never trained, the BTB's LRU is
   touched as any lookup does, and the RAS is pushed and popped for real
   (restored from the episode snapshot at squash). *)

let wp_ireg t r = if r = 0 then 0 else t.wp_iregs.(r)

let wp_src1_int t (i : Instr.t) =
  match i.Instr.src1 with Some (Reg.Int r) -> wp_ireg t r | _ -> 0

let wp_src2_int t (i : Instr.t) =
  match i.Instr.src2 with Some (Reg.Int r) -> wp_ireg t r | _ -> 0

let wp_src1_fp t (i : Instr.t) =
  match i.Instr.src1 with Some (Reg.Fp r) -> t.wp_fregs.(r) | _ -> 0.

let wp_src2_fp t (i : Instr.t) =
  match i.Instr.src2 with Some (Reg.Fp r) -> t.wp_fregs.(r) | _ -> 0.

let wp_write_int t (i : Instr.t) v =
  match i.Instr.dst with
  | Some (Reg.Int r) -> if r <> 0 then t.wp_iregs.(r) <- v
  | Some (Reg.Fp _) | None -> ()

let wp_write_fp t (i : Instr.t) v =
  match i.Instr.dst with
  | Some (Reg.Fp r) -> t.wp_fregs.(r) <- v
  | Some (Reg.Int _) | None -> ()

let wp_peek t a =
  match Hashtbl.find_opt t.wp_imem a with
  | Some v -> v
  | None -> Exec.peek t.exec a

let wp_fpeek t a =
  match Hashtbl.find_opt t.wp_fmem a with
  | Some v -> v
  | None -> Exec.fpeek t.exec a

(* Execute the wrong-path instruction at [t.wp_pc]. [None] when the
   wrong path has nowhere to go — a predicted-taken transfer with no BTB
   target, a return off an empty RAS, a Halt, or running off the program
   — in which case nothing is mutated and wrong-path fetch idles until
   the mispredicted branch resolves. *)
let wp_step t : Exec.dyn option =
  let pc = t.wp_pc in
  if pc < 0 || pc >= Prog.length t.prog then None
  else begin
    let i = t.prog.Prog.code.(pc) in
    match i.Instr.op with
    | Opcode.Halt -> None
    | _ ->
      let fallthrough = pc + 1 in
      let next_pc = ref fallthrough in
      let taken = ref false in
      let addr = ref (-1) in
      let ok = ref true in
      (* Control decision first: a stalling opcode must leave no trace
         (the RAS pop for a feasible return is the one real mutation,
         and [ras_pop_addr] leaves an empty stack untouched). *)
      (match i.Instr.op with
      | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Bge ->
        if Branch_pred.predict_direction t.bpred pc then begin
          let tgt = Branch_pred.btb_lookup_tgt t.bpred pc in
          if tgt < 0 then ok := false
          else begin
            taken := true;
            next_pc := tgt
          end
        end
      | Opcode.Jmp ->
        let tgt = Branch_pred.btb_lookup_tgt t.bpred pc in
        if tgt < 0 then ok := false
        else begin
          taken := true;
          next_pc := tgt
        end
      | Opcode.Call ->
        let tgt = Branch_pred.btb_lookup_tgt t.bpred pc in
        if tgt < 0 then ok := false
        else begin
          taken := true;
          next_pc := tgt;
          Branch_pred.ras_push t.bpred fallthrough
        end
      | Opcode.Ret ->
        let ra = Branch_pred.ras_pop_addr t.bpred in
        if ra < 0 then ok := false
        else begin
          taken := true;
          next_pc := ra
        end
      | _ -> ());
      if not !ok then None
      else begin
        (match i.Instr.op with
        | Opcode.Add -> wp_write_int t i (wp_src1_int t i + wp_src2_int t i)
        | Opcode.Sub -> wp_write_int t i (wp_src1_int t i - wp_src2_int t i)
        | Opcode.And ->
          wp_write_int t i (wp_src1_int t i land wp_src2_int t i)
        | Opcode.Or -> wp_write_int t i (wp_src1_int t i lor wp_src2_int t i)
        | Opcode.Xor ->
          wp_write_int t i (wp_src1_int t i lxor wp_src2_int t i)
        | Opcode.Shl ->
          let n = wp_src2_int t i in
          wp_write_int t i (if Exec.shift_ok n then wp_src1_int t i lsl n else 0)
        | Opcode.Shr ->
          let n = wp_src2_int t i in
          wp_write_int t i (if Exec.shift_ok n then wp_src1_int t i lsr n else 0)
        | Opcode.Slt ->
          wp_write_int t i (if wp_src1_int t i < wp_src2_int t i then 1 else 0)
        | Opcode.Sle ->
          wp_write_int t i
            (if wp_src1_int t i <= wp_src2_int t i then 1 else 0)
        | Opcode.Seq ->
          wp_write_int t i (if wp_src1_int t i = wp_src2_int t i then 1 else 0)
        | Opcode.Sne ->
          wp_write_int t i
            (if wp_src1_int t i <> wp_src2_int t i then 1 else 0)
        | Opcode.Addi -> wp_write_int t i (wp_src1_int t i + i.Instr.imm)
        | Opcode.Andi -> wp_write_int t i (wp_src1_int t i land i.Instr.imm)
        | Opcode.Ori -> wp_write_int t i (wp_src1_int t i lor i.Instr.imm)
        | Opcode.Xori -> wp_write_int t i (wp_src1_int t i lxor i.Instr.imm)
        | Opcode.Shli ->
          wp_write_int t i
            (if Exec.shift_ok i.Instr.imm then wp_src1_int t i lsl i.Instr.imm
             else 0)
        | Opcode.Shri ->
          wp_write_int t i
            (if Exec.shift_ok i.Instr.imm then wp_src1_int t i lsr i.Instr.imm
             else 0)
        | Opcode.Slti ->
          wp_write_int t i (if wp_src1_int t i < i.Instr.imm then 1 else 0)
        | Opcode.Li -> wp_write_int t i i.Instr.imm
        | Opcode.Mov -> wp_write_int t i (wp_src1_int t i)
        | Opcode.Mul -> wp_write_int t i (wp_src1_int t i * wp_src2_int t i)
        | Opcode.Div ->
          let d = wp_src2_int t i in
          wp_write_int t i (if d = 0 then 0 else wp_src1_int t i / d)
        | Opcode.Fadd -> wp_write_fp t i (wp_src1_fp t i +. wp_src2_fp t i)
        | Opcode.Fsub -> wp_write_fp t i (wp_src1_fp t i -. wp_src2_fp t i)
        | Opcode.Fmul -> wp_write_fp t i (wp_src1_fp t i *. wp_src2_fp t i)
        | Opcode.Fdiv ->
          let d = wp_src2_fp t i in
          wp_write_fp t i (if d = 0. then 0. else wp_src1_fp t i /. d)
        | Opcode.Fli -> wp_write_fp t i (float_of_int i.Instr.imm /. 1000.)
        | Opcode.Fmov -> wp_write_fp t i (wp_src1_fp t i)
        | Opcode.Itof -> wp_write_fp t i (float_of_int (wp_src1_int t i))
        | Opcode.Ftoi -> wp_write_int t i (int_of_float (wp_src1_fp t i))
        | Opcode.Load ->
          let a = wp_src1_int t i + i.Instr.imm in
          addr := a;
          wp_write_int t i (wp_peek t a)
        | Opcode.Store ->
          let a = wp_src1_int t i + i.Instr.imm in
          addr := a;
          Hashtbl.replace t.wp_imem a (wp_src2_int t i)
        | Opcode.Fload ->
          let a = wp_src1_int t i + i.Instr.imm in
          addr := a;
          wp_write_fp t i (wp_fpeek t a)
        | Opcode.Fstore ->
          let a = wp_src1_int t i + i.Instr.imm in
          addr := a;
          Hashtbl.replace t.wp_fmem a (wp_src2_fp t i)
        | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Bge | Opcode.Jmp
        | Opcode.Call | Opcode.Ret | Opcode.Nop | Opcode.Iqset
        | Opcode.Halt -> ());
        let sn = t.wp_next_sn in
        t.wp_next_sn <- sn + 1;
        t.wp_pc <- !next_pc;
        Some
          {
            Exec.sn;
            pc;
            instr = i;
            next_pc = !next_pc;
            taken = !taken;
            addr = !addr;
          }
      end
  end

(* Begin an episode: fetch will proceed down the predicted path while
   the mispredicted branch [dyn] executes. A [target] outside the
   program (-1 from a BTB miss or an empty RAS: no predicted target
   exists) leaves wrong-path fetch idle — timing then matches the
   blocking frontend, but resolution still flows through the squash
   path, keeping the accounting uniform. *)
let enter_wp_mode t (dyn : Exec.dyn) ~target =
  t.wp_mode <- true;
  t.wp_pc <-
    (if target >= 0 && target < Prog.length t.prog then target else -1);
  t.wp_next_sn <- dyn.Exec.sn + 1;
  t.wp_iq_boundary <- -1;
  Array.blit t.exec.Exec.iregs 0 t.wp_iregs 0 (Array.length t.wp_iregs);
  Array.blit t.exec.Exec.fregs 0 t.wp_fregs 0 (Array.length t.wp_fregs);
  if Hashtbl.length t.wp_imem > 0 then Hashtbl.reset t.wp_imem;
  if Hashtbl.length t.wp_fmem > 0 then Hashtbl.reset t.wp_fmem;
  t.wp_ras_top <- Branch_pred.ras_save t.bpred t.wp_ras

(* Wrong-path fetch: [fetch_stage]'s mirror, driven by [wp_step] instead
   of the oracle. A wrong-path mispredict (per the shadow executor's own
   predictions there are none to detect — it *defines* the path) cannot
   occur; fetch simply ends where the predicted path runs out. *)
let wp_fetch_stage t =
  if (not t.wp_mode) || t.wp_pc < 0 then ()
  else begin
    let start_pc = t.wp_pc in
    match ifetch_stall t start_pc with
    | Some lat -> t.fetch_resume_at <- t.cycle + lat
    | None ->
      let group_hi =
        (((line_of t start_pc + 1) * t.cfg.Config.il1_line) + 3) / 4
      in
      let fetched = ref 0 in
      let continue = ref true in
      while
        !continue
        && !fetched < t.cfg.Config.fetch_width
        && t.fq_count < t.cfg.Config.fetch_queue_size
      do
        if t.wp_pc >= group_hi || t.wp_pc < 0 then continue := false
        else
          match wp_step t with
          | None ->
            t.wp_pc <- -1;
            continue := false
          | Some dyn ->
            fq_push t dyn;
            incr fetched;
            (* Any taken transfer ends the fetch group, as on the
               correct path. *)
            if dyn.Exec.taken then continue := false;
            let outcome =
              match dyn.Exec.instr.Instr.op with
              | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Bge ->
                Ev.Cond_branch
                  {
                    taken = dyn.Exec.taken;
                    mispredicted = false;
                    btb_bubble = false;
                  }
              | Opcode.Jmp -> Ev.Jump { btb_bubble = false }
              | Opcode.Call -> Ev.Call { btb_bubble = false }
              | Opcode.Ret -> Ev.Return { mispredicted = false }
              | _ -> Ev.Sequential
            in
            emit_fetch_wp t dyn ~outcome
      done
  end

let fetch_stage t =
  if t.halted || t.fetch_hold || t.cycle < t.fetch_resume_at then ()
  else if t.blocked_sn >= 0 then
    (* An unresolved mispredict: the correct-path frontend is parked,
       but a speculative episode keeps fetching the predicted path. *)
    wp_fetch_stage t
  else begin
    let start_pc = t.exec.Exec.pc in
    if start_pc < 0 || start_pc >= Prog.length t.prog then t.halted <- true
    else begin
      match ifetch_stall t start_pc with
      | Some lat ->
        (* ITLB or instruction-cache miss: stall fetch for the refill. *)
        t.fetch_resume_at <- t.cycle + lat
      | None ->
      (* First pc past the fetch group's cache line: inside the loop pc
         only ever increments (every redirecting op clears [continue]),
         so one bound check replaces a per-instruction division. *)
      let group_hi =
        (((line_of t start_pc + 1) * t.cfg.Config.il1_line) + 3) / 4
      in
      let fetched = ref 0 in
      let continue = ref true in
      while
        !continue && !fetched < t.cfg.Config.fetch_width
        && t.fq_count < t.cfg.Config.fetch_queue_size
        && not t.halted
      do
        let pc = t.exec.Exec.pc in
        if pc >= group_hi then continue := false
        else
          match Exec.step t.exec with
          | None ->
            t.halted <- true;
            continue := false
          | Some dyn ->
            let i = dyn.Exec.instr in
            (match i.Instr.op with
            | Opcode.Halt ->
              t.halted <- true;
              continue := false
            | _ ->
              begin
              fq_push t dyn;
              incr fetched;
              (* Control flow: consult the predictor against the oracle,
                 then emit one [Fetch] event capturing the outcome. *)
              (match i.Instr.op with
              | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Bge ->
                let predicted_taken =
                  Branch_pred.predict_direction t.bpred dyn.Exec.pc
                in
                let btb = Branch_pred.btb_lookup_tgt t.bpred dyn.Exec.pc in
                (* Train immediately: fetch order = commit order here. *)
                Branch_pred.update_direction t.bpred dyn.Exec.pc
                  ~taken:dyn.Exec.taken;
                if dyn.Exec.taken then
                  Branch_pred.btb_update t.bpred dyn.Exec.pc
                    ~target:dyn.Exec.next_pc;
                if predicted_taken <> dyn.Exec.taken then begin
                  t.blocked_sn <- dyn.Exec.sn;
                  continue := false;
                  emit_fetch_cond t dyn ~taken:dyn.Exec.taken
                    ~mispredicted:true ~btb_bubble:false;
                  if t.cfg.Config.speculative_fetch then
                    (* Keep fetching down the predicted path: not-taken
                       falls through; taken needs the BTB's pre-update
                       idea of a target (looked up above). *)
                    enter_wp_mode t dyn
                      ~target:
                        (if predicted_taken then btb else dyn.Exec.pc + 1)
                  else
                    (* Blocking frontend: nothing speculative was
                       fetched; the event still marks the recovery. *)
                    emit_squash t dyn ~squashed:0
                end
                else if dyn.Exec.taken then begin
                  let btb_bubble =
                    if btb = dyn.Exec.next_pc then false
                    else begin
                      t.fetch_resume_at <-
                        t.cycle + t.cfg.Config.btb_miss_penalty;
                      true
                    end
                  in
                  continue := false;
                  emit_fetch_cond t dyn ~taken:true ~mispredicted:false
                    ~btb_bubble
                end
                else
                  emit_fetch_cond t dyn ~taken:false ~mispredicted:false
                    ~btb_bubble:false
              | Opcode.Jmp ->
                let btb_bubble =
                  if Branch_pred.btb_lookup_tgt t.bpred dyn.Exec.pc
                     = dyn.Exec.next_pc
                  then false
                  else begin
                    t.fetch_resume_at <-
                      t.cycle + t.cfg.Config.btb_miss_penalty;
                    true
                  end
                in
                Branch_pred.btb_update t.bpred dyn.Exec.pc
                  ~target:dyn.Exec.next_pc;
                continue := false;
                emit_fetch_jump t dyn ~btb_bubble
              | Opcode.Call ->
                Branch_pred.ras_push t.bpred (dyn.Exec.pc + 1);
                let btb_bubble =
                  if Branch_pred.btb_lookup_tgt t.bpred dyn.Exec.pc
                     = dyn.Exec.next_pc
                  then false
                  else begin
                    t.fetch_resume_at <-
                      t.cycle + t.cfg.Config.btb_miss_penalty;
                    true
                  end
                in
                Branch_pred.btb_update t.bpred dyn.Exec.pc
                  ~target:dyn.Exec.next_pc;
                continue := false;
                emit_fetch_call t dyn ~btb_bubble
              | Opcode.Ret ->
                let ra = Branch_pred.ras_pop_addr t.bpred in
                let mispredicted =
                  if ra = dyn.Exec.next_pc then false
                  else begin
                    (* Return mispredicted: wait for it to resolve. *)
                    t.blocked_sn <- dyn.Exec.sn;
                    true
                  end
                in
                continue := false;
                emit_fetch_ret t dyn ~mispredicted;
                if mispredicted then begin
                  if t.cfg.Config.speculative_fetch then
                    (* The popped (wrong) address is the predicted path.
                       The pop itself is architecturally right and is
                       part of the pre-episode snapshot; an empty stack
                       (ra = -1) predicts nothing, so wrong-path fetch
                       idles. *)
                    enter_wp_mode t dyn ~target:ra
                  else emit_squash t dyn ~squashed:0
                end
              | _ -> emit_fetch_seq t dyn)
              end)
      done
    end
  end

(* --- end of cycle ------------------------------------------------------- *)

(* Per-bank gate/ungate transition events (trace-only), derived by
   diffing the powered-bank mask against the previous cycle's. *)
let emit_bank_transitions t ~unit_ ~prev ~cur =
  if prev <> cur then begin
    let changed = prev lxor cur in
    let b = ref 0 in
    let m = ref changed in
    while !m <> 0 do
      if !m land 1 = 1 then
        Bus.emit t.bus
          (if cur land (1 lsl !b) <> 0 then Ev.Bank_ungated { unit_; bank = !b }
           else Ev.Bank_gated { unit_; bank = !b });
      incr b;
      m := !m lsr 1
    done
  end

let cycle_end_stage t ~throttled =
  let iq_mask = Iq.banks_on_mask t.iq in
  let int_mask = Regfile.banks_on_mask t.int_rf in
  let fp_mask = Regfile.banks_on_mask t.fp_rf in
  let iq_occupancy = Iq.occupancy t.iq in
  let iq_banks_on = Iq.banks_on t.iq in
  let int_rf_banks_on = Regfile.banks_on t.int_rf in
  let int_rf_live = Regfile.live_count t.int_rf in
  let fp_rf_banks_on = Regfile.banks_on t.fp_rf in
  (* Fold the integrand into the pipeline's own stats first (the inline
     mirror of [Stats.absorb]'s [Cycle_end] clause): a [Cycle_end] sink
     must read fully-updated per-cycle sums. *)
  let st = t.stats in
  st.Stats.cycles <- t.cycle + 1;
  st.Stats.iq_occupancy_sum <- st.Stats.iq_occupancy_sum + iq_occupancy;
  st.Stats.iq_banks_on_sum <- st.Stats.iq_banks_on_sum + iq_banks_on;
  st.Stats.int_rf_banks_on_sum <-
    st.Stats.int_rf_banks_on_sum + int_rf_banks_on;
  st.Stats.int_rf_live_sum <- st.Stats.int_rf_live_sum + int_rf_live;
  st.Stats.fp_rf_banks_on_sum <- st.Stats.fp_rf_banks_on_sum + fp_rf_banks_on;
  (* The policy's end-of-cycle action (the adaptive scheme senses
     pressure and resizes here). A resize only drops/adds empty banks,
     so the masks captured above are unaffected. *)
  let size_before = Iq.active_size t.iq in
  Policy.end_cycle t.policy t.iq ~resize_ok:(not t.wp_mode) ~throttled ();
  t.cycle <- t.cycle + 1;
  if t.bus_on then begin
    emit_bank_transitions t ~unit_:Ev.Iq_bank ~prev:t.prev_iq_bank_mask
      ~cur:iq_mask;
    emit_bank_transitions t ~unit_:Ev.Int_rf_bank ~prev:t.prev_int_rf_bank_mask
      ~cur:int_mask;
    emit_bank_transitions t ~unit_:Ev.Fp_rf_bank ~prev:t.prev_fp_rf_bank_mask
      ~cur:fp_mask;
    let size_after = Iq.active_size t.iq in
    if size_after <> size_before then
      Bus.emit t.bus (Ev.Resize { before = size_before; after = size_after });
    (* Last event of the cycle, always: per-cycle observers (the
       invariant checker) run here with the post-increment cycle count
       and every counter for the cycle already folded in. The stats were
       updated inline above, so the event bypasses [Stats.absorb]. *)
    Bus.emit t.bus
      (Ev.Cycle_end
         {
           cycle = t.cycle - 1;
           throttled;
           iq_occupancy;
           iq_banks_on;
           int_rf_banks_on;
           int_rf_live;
           fp_rf_banks_on;
         })
  end;
  t.prev_iq_bank_mask <- iq_mask;
  t.prev_int_rf_bank_mask <- int_mask;
  t.prev_fp_rf_bank_mask <- fp_mask

(* --- main loop ---------------------------------------------------------- *)

let drained t = t.halted && Rob.is_empty t.rob && t.fq_count = 0

let step_cycle t =
  commit_stage t;
  writeback_stage t;
  issue_stage t;
  let throttled = dispatch_stage t in
  fetch_stage t;
  cycle_end_stage t ~throttled

(* Run until the program drains or [max_insns] instructions have
   committed. Raises [Simulation_limit] after [max_cycles] as a deadlock
   guard. *)
let run ?(max_insns = max_int) ?(max_cycles = 200_000_000) t =
  while
    (not (drained t)) && t.stats.Stats.committed < max_insns
  do
    if t.cycle >= max_cycles then
      raise
        (Simulation_limit
           (Printf.sprintf
              "no progress: %d cycles, %d committed (policy %s)"
              t.cycle t.stats.Stats.committed (Policy.name t.policy)));
    step_cycle t
  done;
  t.stats

(* --- sampled simulation (SMARTS-style) ---------------------------------- *)

(* Hold or release fetch; in-flight instructions keep flowing either way. *)
let set_fetch_hold t on = t.fetch_hold <- on

let in_flight_empty t = Rob.is_empty t.rob && t.fq_count = 0

(* Hold fetch and run until every in-flight instruction has retired —
   the machine is then ready for a functional fast-forward. Fetch stays
   held; the caller releases it when detailed simulation resumes. *)
let drain ?(max_cycles = 1_000_000) t =
  t.fetch_hold <- true;
  let deadline = t.cycle + max_cycles in
  while (not (in_flight_empty t)) && t.cycle < deadline do
    step_cycle t
  done;
  if not (in_flight_empty t) then
    raise
      (Simulation_limit
         (Printf.sprintf "drain: in-flight instructions did not retire \
                          within %d cycles" max_cycles))

(* Event-free cache probes for fast-forward: same state transitions as
   the detailed probes ([fetch_stage] / [load_cache_latency] /
   [commit_one]'s store path), but no statistics and no sink traffic —
   fast-forwarded work is outside every measured window. *)
let ff_probe t cache addr =
  match Cache.probe cache ~now:t.cycle addr with
  | Cache.Hit | Cache.Inflight _ -> ()
  | Cache.Miss ->
    let lat =
      match Cache.probe t.l2 ~now:t.cycle addr with
      | Cache.Hit -> t.cfg.Config.l2_hit
      | Cache.Inflight r -> r + 1
      | Cache.Miss ->
        Cache.set_fill t.l2 addr (t.cycle + t.cfg.Config.mem_latency);
        t.cfg.Config.mem_latency
    in
    Cache.set_fill cache addr (t.cycle + lat)

(* Functional fast-forward: execute up to [insns] oracle instructions
   with no timing model, keeping the long-lived microarchitectural state
   warm — branch-direction tables, BTB, RAS, all three caches, both
   TLBs and the policy's region state receive exactly the updates
   detailed execution would apply (predict + train per conditional, BTB
   touch/update per control transfer, one icache probe and ITLB train
   per line transition, a data-cache probe and DTLB train per load and
   store, annotations delivered in program order).
   The cycle counter advances one cycle per instruction so cache fill
   times stay monotone; no events are emitted and no statistics change.
   Requires a drained machine (see [drain]). Returns the number of
   instructions actually skipped (fewer than [insns] only at halt). *)
let fast_forward t ~insns =
  if not (in_flight_empty t) then
    invalid_arg "Pipeline.fast_forward: pipeline not drained";
  let n = ref 0 in
  let last_line = ref min_int in
  while !n < insns && not t.halted do
    let pc = t.exec.Exec.pc in
    if pc < 0 || pc >= Prog.length t.prog then t.halted <- true
    else begin
      let line = line_of t pc in
      if line <> !last_line then begin
        last_line := line;
        Tlb.train t.itlb (pc * 4);
        ff_probe t t.il1 (pc * 4)
      end;
      match Exec.step t.exec with
      | None -> t.halted <- true
      | Some dyn ->
        incr n;
        t.cycle <- t.cycle + 1;
        let i = dyn.Exec.instr in
        (match i.Instr.op with
        | Opcode.Halt -> t.halted <- true
        | Opcode.Iqset ->
          Policy.on_annotation t.policy t.iq ~pc:dyn.Exec.pc
            ~value:i.Instr.imm
        | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Bge ->
          let (_ : bool) =
            Branch_pred.predict_direction t.bpred dyn.Exec.pc
          in
          let (_ : int) = Branch_pred.btb_lookup_tgt t.bpred dyn.Exec.pc in
          Branch_pred.update_direction t.bpred dyn.Exec.pc
            ~taken:dyn.Exec.taken;
          if dyn.Exec.taken then
            Branch_pred.btb_update t.bpred dyn.Exec.pc
              ~target:dyn.Exec.next_pc
        | Opcode.Jmp ->
          let (_ : int) = Branch_pred.btb_lookup_tgt t.bpred dyn.Exec.pc in
          Branch_pred.btb_update t.bpred dyn.Exec.pc
            ~target:dyn.Exec.next_pc
        | Opcode.Call ->
          Branch_pred.ras_push t.bpred (dyn.Exec.pc + 1);
          let (_ : int) = Branch_pred.btb_lookup_tgt t.bpred dyn.Exec.pc in
          Branch_pred.btb_update t.bpred dyn.Exec.pc
            ~target:dyn.Exec.next_pc
        | Opcode.Ret ->
          let (_ : int) = Branch_pred.ras_pop_addr t.bpred in
          ()
        | Opcode.Load | Opcode.Fload | Opcode.Store | Opcode.Fstore ->
          Tlb.train t.dtlb dyn.Exec.addr;
          ff_probe t t.dl1 dyn.Exec.addr
        | _ -> ());
        (* A tagged instruction delivers its annotation regardless of
           opcode, as at dispatch. *)
        (match i.Instr.tag with
        | Some v ->
          Policy.on_annotation t.policy t.iq ~pc:dyn.Exec.pc ~value:v
        | None -> ())
    end
  done;
  !n

(* Convenience: build, initialise memory, run. *)
let simulate ?config ?policy ?sched ?checker ?on_commit ?init ?max_insns
    ?max_cycles prog =
  let t = create ?config ?policy ?sched ?checker ?on_commit prog in
  (match init with Some f -> f t.exec | None -> ());
  run ?max_insns ?max_cycles t

(* --- read-only view ----------------------------------------------------- *)

(* A stable accessor surface for observers (the invariant checker, tests):
   everything needed to audit the machine without reaching into record
   fields, and nothing that mutates it. *)
module Debug = struct
  let cfg t = t.cfg
  let policy t = t.policy
  let sched t = t.sched

  (* Whether physical tag [tag]'s current producer is a load. *)
  let tag_is_load t tag = Bytes.get t.tag_is_load tag <> '\000'
  let iq t = t.iq
  let rob t = t.rob
  let int_rf t = t.int_rf
  let fp_rf t = t.fp_rf
  let int_map t = Array.copy t.int_map
  let fp_map t = Array.copy t.fp_map
  let cycle t = t.cycle
  let halted t = t.halted
  let exec t = t.exec
  let stats t = t.stats
  let fetch_queue_length t = t.fq_count
  let bus t = t.bus
  let lsq t = t.lsq
  let itlb t = t.itlb
  let dtlb t = t.dtlb
  let wp_mode t = t.wp_mode
  let blocked_sn t = t.blocked_sn

  (* Test-only sabotage: the next squash leaves its first wrong-path IQ
     entry live (rename and ROB still rolled back) — the stale-entry leak
     the checker's IQ/ROB-linkage invariant must catch. *)
  let set_sabotage_squash_leak t v = t.sabotage_squash_leak <- v

  (* One-line machine-state excerpt for diagnostics. *)
  let excerpt t =
    let iq = t.iq in
    let oldest_sn = ref (-1) in
    Rob.iter_in_flight t.rob (fun idx ->
        if !oldest_sn < 0 then oldest_sn := (Rob.dyn t.rob idx).Exec.sn);
    Printf.sprintf
      "cycle=%d policy=%s iq[head=%d new_head=%d tail=%d count=%d span=%d \
       active=%d/%d] rob[count=%d oldest_sn=%d] rf[int live=%d free=%d; \
       fp live=%d free=%d] fq=%d committed=%d%s"
      t.cycle (Policy.name t.policy) iq.Iq.head iq.Iq.new_head iq.Iq.tail
      iq.Iq.count iq.Iq.new_span iq.Iq.active_size iq.Iq.size
      (Rob.occupancy t.rob) !oldest_sn
      (Regfile.live_count t.int_rf)
      (Regfile.free_count t.int_rf)
      (Regfile.live_count t.fp_rf)
      (Regfile.free_count t.fp_rf)
      t.fq_count t.stats.Stats.committed
      (if t.halted then " halted" else "")
end
