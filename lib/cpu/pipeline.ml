(* The out-of-order pipeline: fetch → decode (fetch queue) → rename/dispatch
   → issue/execute → writeback → commit, over the Table 1 machine.

   Execution-driven in the SimpleScalar style: the functional executor
   produces the dynamic stream at fetch. Wrong-path instructions are never
   injected — a mispredicted control instruction stalls fetch until it
   resolves, which models the misprediction penalty while keeping the
   oracle and the pipeline in lockstep (documented simplification; applied
   identically to every technique under comparison).

   Cycle phase order (matters, and matches the paper's Figure 1 timing):
     commit → writeback (wakeup) → issue/select → dispatch → fetch
   so a result wakes its consumers in the cycle it completes and the
   consumers can issue that same cycle; instructions issued this cycle
   free IQ slots that dispatch can refill this cycle; newly fetched
   instructions dispatch only after [decode_depth] cycles.

   Telemetry: the stages mutate no consumer directly. Each stage emits
   typed events ([Sdiq_events.Event]); the pipeline's own statistics are
   a fold of that stream ([Stats.absorb]), and external observers —
   invariant checkers, commit capture, power meters, timelines, JSONL
   traces — subscribe to the same bus. With no sink registered the bus
   costs one load and one branch per event ([Bus.active]), and
   trace-only events (squash, resize, bank transitions, tag deliveries)
   are not even constructed. [Cycle_end] is always the last event of its
   cycle, emitted after the policy's end-of-cycle action, so a sink
   observing it sees exactly the machine state a per-cycle checker
   needs (DESIGN.md §11 specifies the ordering contract). *)

open Sdiq_isa
module Ev = Sdiq_events.Event
module Bus = Sdiq_events.Bus

type fq_entry = {
  dyn : Exec.dyn;
  ready_at : int; (* cycle at which decode finishes *)
}

type t = {
  cfg : Config.t;
  prog : Prog.t;
  exec : Exec.state;
  policy : Policy.t;
  il1 : Cache.t;
  dl1 : Cache.t;
  l2 : Cache.t;
  bpred : Branch_pred.t;
  int_rf : Regfile.t;
  fp_rf : Regfile.t;
  int_map : int array;
  fp_map : int array;
  rob : Rob.t;
  iq : Iq.t;
  fq : fq_entry Queue.t;
  completions : (int, int list) Hashtbl.t; (* cycle -> rob indices *)
  mutable unpipe_busy : (Fu.t * int) list; (* unit class, release cycle *)
  mutable cycle : int;
  mutable halted : bool;
  mutable fetch_resume_at : int;
  mutable blocked_sn : int option; (* fetch stalled on this dynamic instr *)
  stats : Stats.t;
  bus : Sdiq_events.Bus.t;
  (* previous end-of-cycle powered-bank masks, for gate/ungate events *)
  mutable prev_iq_bank_mask : int;
  mutable prev_int_rf_bank_mask : int;
  mutable prev_fp_rf_bank_mask : int;
}

exception Simulation_limit of string

(* Deliver one event: fold it into the pipeline's own statistics, then
   to external sinks (if any). The absorb-first order is part of the
   sink contract — a [Cycle_end] sink reads fully-updated stats. *)
let emit t ev =
  Stats.absorb t.stats ev;
  if Bus.active t.bus then Bus.emit t.bus ev

(* --- sink registration --------------------------------------------------- *)

let subscribe ?name t fn = Bus.subscribe ?name t.bus fn

(* Per-cycle observer: runs on every [Cycle_end], after all statistics
   for the cycle are folded in. The shape the invariant checker wants. *)
let on_cycle_end ?(name = "cycle-observer") t f =
  subscribe ~name t (function Ev.Cycle_end _ -> f t | _ -> ())

(* Commit observer: one call per committed instruction, in commit order. *)
let on_commit_sink ?(name = "commit-observer") t f =
  subscribe ~name t (function Ev.Commit { dyn } -> f dyn | _ -> ())

let create ?(config = Config.default) ?(policy = Policy.unlimited) ?checker
    ?on_commit prog =
  let exec = Exec.create prog in
  let int_rf =
    Regfile.create ~size:config.Config.rf_size
      ~bank_size:config.Config.rf_bank_size
  in
  let fp_rf =
    Regfile.create ~size:config.Config.rf_size
      ~bank_size:config.Config.rf_bank_size
  in
  (* Initial architectural mapping: arch i -> phys i, values ready. *)
  let int_map = Array.init Reg.num_int (fun i -> i) in
  let fp_map = Array.init Reg.num_fp (fun i -> i) in
  for i = 0 to Reg.num_int - 1 do
    Regfile.alloc_exact int_rf i;
    int_rf.Regfile.ready.(i) <- true
  done;
  for i = 0 to Reg.num_fp - 1 do
    Regfile.alloc_exact fp_rf i;
    fp_rf.Regfile.ready.(i) <- true
  done;
  let t =
    {
      cfg = config;
      prog;
      exec;
      policy;
      il1 =
        Cache.create ~sets:config.Config.il1_sets ~ways:config.Config.il1_ways
          ~line:config.Config.il1_line;
      dl1 =
        Cache.create ~sets:config.Config.dl1_sets ~ways:config.Config.dl1_ways
          ~line:config.Config.dl1_line;
      l2 =
        Cache.create ~sets:config.Config.l2_sets ~ways:config.Config.l2_ways
          ~line:config.Config.l2_line;
      bpred = Branch_pred.create config;
      int_rf;
      fp_rf;
      int_map;
      fp_map;
      rob = Rob.create ~size:config.Config.rob_size;
      iq = Iq.create ~size:config.Config.iq_size
          ~bank_size:config.Config.iq_bank_size;
      fq = Queue.create ();
      completions = Hashtbl.create 64;
      unpipe_busy = [];
      cycle = 0;
      halted = false;
      fetch_resume_at = 0;
      blocked_sn = None;
      stats = Stats.create ();
      bus = Bus.create ();
      prev_iq_bank_mask = 0;
      prev_int_rf_bank_mask = Regfile.banks_on_mask int_rf;
      prev_fp_rf_bank_mask = Regfile.banks_on_mask fp_rf;
    }
  in
  (* Compat shims: the old [?checker]/[?on_commit] hooks are ordinary
     sinks now. *)
  (match checker with Some f -> on_cycle_end ~name:"checker" t f | None -> ());
  (match on_commit with
  | Some f -> on_commit_sink ~name:"on-commit" t f
  | None -> ());
  t

(* Physical-register tag space: int regs as-is, fp regs offset. *)
let int_tag p = p
let fp_tag t p = t.cfg.Config.rf_size + p

(* --- commit ------------------------------------------------------------ *)

let release_dest t = function
  | Rob.No_dest -> ()
  | Rob.Int_dest p -> Regfile.release t.int_rf p
  | Rob.Fp_dest p -> Regfile.release t.fp_rf p

let commit_one t (e : Rob.entry) =
  let dyn = Option.get e.Rob.dyn in
  let i = dyn.Exec.instr in
  emit t (Ev.Commit { dyn });
  release_dest t e.Rob.old_phys;
  (* The predictor trains at fetch (see [fetch_stage]): with no wrong-path
     instructions, fetch order equals commit order, so updating there is
     exact and avoids stale-history aliasing for in-flight branches. *)
  (* Stores write the data cache at commit; write misses allocate but do
     not stall the pipeline (a write buffer is assumed). *)
  if Instr.is_store i then begin
    let now = t.cycle in
    match Cache.probe t.dl1 ~now dyn.Exec.addr with
    | Cache.Hit | Cache.Inflight _ -> ()
    | Cache.Miss ->
      emit t (Ev.Cache_miss { level = Ev.Dl1; addr = dyn.Exec.addr });
      let lat =
        match Cache.probe t.l2 ~now dyn.Exec.addr with
        | Cache.Hit -> t.cfg.Config.l2_hit
        | Cache.Inflight r -> r + 1
        | Cache.Miss ->
          emit t (Ev.Cache_miss { level = Ev.L2; addr = dyn.Exec.addr });
          Cache.set_fill t.l2 dyn.Exec.addr (now + t.cfg.Config.mem_latency);
          t.cfg.Config.mem_latency
      in
      Cache.set_fill t.dl1 dyn.Exec.addr (now + lat)
  end

let commit_stage t =
  let n = ref 0 in
  while
    !n < t.cfg.Config.commit_width && Rob.try_commit t.rob (commit_one t)
  do
    incr n
  done

(* --- writeback --------------------------------------------------------- *)

let writeback_stage t =
  match Hashtbl.find_opt t.completions t.cycle with
  | None -> ()
  | Some idxs ->
    Hashtbl.remove t.completions t.cycle;
    (* Oldest first, deterministically. *)
    let idxs = List.rev idxs in
    (* All results completing this cycle broadcast together so wakeup
       counting sees one snapshot, as the parallel CAM ports do. *)
    let tags = ref [] in
    List.iter
      (fun idx ->
        let e = Rob.entry t.rob idx in
        e.Rob.state <- Rob.Completed;
        emit t (Ev.Writeback { dyn = Option.get e.Rob.dyn; rob_idx = idx });
        (match e.Rob.dest with
        | Rob.No_dest -> ()
        | Rob.Int_dest p ->
          Regfile.mark_ready t.int_rf p;
          emit t (Ev.Rf_write { file = Ev.Int_rf; phys = p });
          tags := int_tag p :: !tags
        | Rob.Fp_dest p ->
          Regfile.mark_ready t.fp_rf p;
          emit t (Ev.Rf_write { file = Ev.Fp_rf; phys = p });
          tags := fp_tag t p :: !tags);
        (* A control instruction that blocked fetch now redirects it. *)
        if e.Rob.blocked_fetch then begin
          let dyn = Option.get e.Rob.dyn in
          (match t.blocked_sn with
          | Some sn when sn = dyn.Exec.sn ->
            t.blocked_sn <- None;
            t.fetch_resume_at <-
              max t.fetch_resume_at
                (t.cycle + 1 + t.cfg.Config.mispredict_redirect)
          | Some _ | None -> ());
          e.Rob.blocked_fetch <- false
        end)
      idxs;
    (* One wakeup event per broadcast group, carrying the comparison
       deltas under all three Figure 8 accounting schemes. *)
    let naive0 = t.iq.Iq.wakeups_naive in
    let nonempty0 = t.iq.Iq.wakeups_nonempty in
    let gated0 = t.iq.Iq.wakeups_gated in
    let woken = Iq.broadcast_many t.iq !tags in
    if !tags <> [] then
      emit t
        (Ev.Wakeup
           {
             tags = List.length !tags;
             woken;
             naive = t.iq.Iq.wakeups_naive - naive0;
             nonempty = t.iq.Iq.wakeups_nonempty - nonempty0;
             gated = t.iq.Iq.wakeups_gated - gated0;
           })

(* --- issue ------------------------------------------------------------- *)

let schedule_completion t idx latency =
  let c = t.cycle + max 1 latency in
  let cur =
    match Hashtbl.find_opt t.completions c with Some l -> l | None -> []
  in
  Hashtbl.replace t.completions c (idx :: cur)

(* For a load at ROB index [idx] with oracle address [addr]: the youngest
   older in-flight store to the same address, if any. *)
let conflicting_store t idx addr =
  let found = ref None in
  Rob.iter_in_flight t.rob (fun sidx (se : Rob.entry) ->
      if sidx <> idx && Rob.older t.rob sidx idx then
        match se.Rob.dyn with
        | Some d
          when Instr.is_store d.Exec.instr && d.Exec.addr = addr ->
          found := Some se
        | Some _ | None -> ());
  !found

(* Data-cache access latency for a load (address generation is the base
   instruction latency, the cache time is added on top). A line still in
   flight from an earlier miss delivers when its fill completes. *)
let load_cache_latency t addr =
  let now = t.cycle in
  match Cache.probe t.dl1 ~now addr with
  | Cache.Hit -> t.cfg.Config.dl1_hit
  | Cache.Inflight r -> r + 1
  | Cache.Miss ->
    emit t (Ev.Cache_miss { level = Ev.Dl1; addr });
    let lat =
      match Cache.probe t.l2 ~now addr with
      | Cache.Hit -> t.cfg.Config.l2_hit
      | Cache.Inflight r -> r + 1
      | Cache.Miss ->
        emit t (Ev.Cache_miss { level = Ev.L2; addr });
        Cache.set_fill t.l2 addr (now + t.cfg.Config.mem_latency);
        t.cfg.Config.mem_latency
    in
    Cache.set_fill t.dl1 addr (now + lat);
    lat

(* One register-file read event per issuing instruction, counting its
   int and fp source reads (the per-file counters live in [Regfile] for
   the invariant checker's recount). *)
let count_rf_reads t (i : Instr.t) =
  let ints = ref 0 and fps = ref 0 in
  List.iter
    (fun r ->
      if Reg.is_int r then begin
        Regfile.note_read t.int_rf;
        incr ints
      end
      else begin
        Regfile.note_read t.fp_rf;
        incr fps
      end)
    (Instr.sources i);
  if !ints > 0 || !fps > 0 then emit t (Ev.Rf_read { ints = !ints; fps = !fps })

let issue_stage t =
  (* Release unpipelined units whose operation has finished. *)
  t.unpipe_busy <- List.filter (fun (_, r) -> r > t.cycle) t.unpipe_busy;
  let avail = Array.make Fu.count_classes 0 in
  List.iter
    (fun cls ->
      let busy =
        List.length (List.filter (fun (c, _) -> c = cls) t.unpipe_busy)
      in
      avail.(Fu.index cls) <- max 0 (t.cfg.Config.fu_count cls - busy))
    Fu.all;
  (* Collect ready entries oldest-first, then try to issue each. *)
  let candidates =
    List.rev
      (Iq.fold_oldest_first t.iq
         (fun acc slot e -> if Iq.entry_ready e then (slot, e.Iq.rob_idx) :: acc else acc)
         [])
  in
  let width = ref t.cfg.Config.issue_width in
  List.iter
    (fun (slot, rob_idx) ->
      if !width > 0 then begin
        let e = Rob.entry t.rob rob_idx in
        let dyn = Option.get e.Rob.dyn in
        let i = dyn.Exec.instr in
        let cls = Instr.fu_class i in
        let k = Fu.index cls in
        if avail.(k) > 0 then begin
          (* Loads must respect older same-address stores. *)
          let mem_latency_extra =
            if Instr.is_load i then begin
              match conflicting_store t rob_idx dyn.Exec.addr with
              | Some se when se.Rob.state <> Rob.Completed ->
                None (* store data not ready: cannot issue yet *)
              | Some _ -> Some (1, true) (* forwarded from the store queue *)
              | None -> Some (load_cache_latency t dyn.Exec.addr, false)
            end
            else Some (0, false)
          in
          match mem_latency_extra with
          | None -> ()
          | Some (extra, store_forward) ->
            avail.(k) <- avail.(k) - 1;
            decr width;
            Iq.issue t.iq slot;
            e.Rob.state <- Rob.Issued;
            e.Rob.iq_slot <- -1;
            emit t (Ev.Select { rob_idx; iq_slot = slot });
            let lat = Instr.latency i + extra in
            emit t (Ev.Issue { dyn; latency = lat; store_forward });
            count_rf_reads t i;
            if Opcode.unpipelined i.Instr.op then
              t.unpipe_busy <- (cls, t.cycle + lat) :: t.unpipe_busy;
            schedule_completion t rob_idx lat
        end
      end)
    candidates

(* --- dispatch ---------------------------------------------------------- *)

type dispatch_stop =
  | Keep_going
  | Stop_policy
  | Stop_iq_full
  | Stop_rob_full
  | Stop_no_reg

let rename_sources t (i : Instr.t) =
  List.map
    (fun r ->
      if Reg.is_int r then
        let p = t.int_map.(Reg.index r) in
        (int_tag p, Regfile.is_ready t.int_rf p)
      else
        let p = t.fp_map.(Reg.index r) in
        (fp_tag t p, Regfile.is_ready t.fp_rf p))
    (Instr.sources i)

(* Rename the destination; returns [None] when no register is free. *)
let rename_dest t (i : Instr.t) =
  match Instr.dest i with
  | None -> Some (Rob.No_dest, Rob.No_dest)
  | Some r ->
    if Reg.is_int r then
      match Regfile.alloc t.int_rf with
      | None -> None
      | Some p ->
        let old = t.int_map.(Reg.index r) in
        t.int_map.(Reg.index r) <- p;
        Some (Rob.Int_dest p, Rob.Int_dest old)
    else
      match Regfile.alloc t.fp_rf with
      | None -> None
      | Some p ->
        let old = t.fp_map.(Reg.index r) in
        t.fp_map.(Reg.index r) <- p;
        Some (Rob.Fp_dest p, Rob.Fp_dest old)

let dispatch_one t (fe : fq_entry) : dispatch_stop =
  let i = fe.dyn.Exec.instr in
  (* A tag (the "Extension" encoding) opens a new region for this very
     instruction, costing nothing. Trace-only event: a stalled dispatch
     retries and re-announces the same delivery next cycle (the policy
     dedupes by region pc). *)
  (match i.Instr.tag with
  | Some v ->
    if Bus.active t.bus then
      Bus.emit t.bus
        (Ev.Annotation { pc = fe.dyn.Exec.pc; value = v; delivery = Ev.Tag });
    Policy.on_annotation t.policy t.iq ~pc:fe.dyn.Exec.pc ~value:v
  | None -> ());
  if Rob.is_full t.rob then Stop_rob_full
  else if not (Policy.allows t.policy t.iq) then
    if Iq.is_full t.iq then Stop_iq_full else Stop_policy
  else begin
    (* Sources must be renamed before the destination gets a fresh
       register, or an instruction like [addi r2, r2, 1] would wait on
       its own result. *)
    let ops = rename_sources t i in
    match rename_dest t i with
    | None -> Stop_no_reg
    | Some (dest, old_phys) ->
      let rob_idx =
        Rob.push t.rob ~dyn:fe.dyn ~dest ~old_phys ~iq_slot:(-1)
      in
      let slot = Iq.dispatch t.iq ~rob_idx ~ops in
      (Rob.entry t.rob rob_idx).Rob.iq_slot <- slot;
      (* Remember whether fetch is waiting on this instruction. *)
      (match t.blocked_sn with
      | Some sn when sn = fe.dyn.Exec.sn ->
        (Rob.entry t.rob rob_idx).Rob.blocked_fetch <- true
      | Some _ | None -> ());
      let kind =
        if Instr.is_load i then Ev.Load
        else if Instr.is_store i then Ev.Store
        else Ev.Plain
      in
      emit t
        (Ev.Dispatch
           {
             dyn = fe.dyn;
             kind;
             iq_slot = slot;
             rob_idx;
             cam_writes = min 2 (List.length ops);
           });
      Keep_going
  end

let dispatch_stage t =
  let slots = ref t.cfg.Config.dispatch_width in
  let stop = ref Keep_going in
  while
    !stop = Keep_going && !slots > 0
    && (not (Queue.is_empty t.fq))
    && (Queue.peek t.fq).ready_at <= t.cycle
  do
    let fe = Queue.peek t.fq in
    if fe.dyn.Exec.instr.Instr.op = Opcode.Iqset then begin
      (* The special NOOP is stripped at the last decode stage — but it has
         already consumed fetch bandwidth and now a dispatch slot
         (Section 5.2.1). *)
      ignore (Queue.pop t.fq);
      Policy.on_annotation t.policy t.iq ~pc:fe.dyn.Exec.pc
        ~value:fe.dyn.Exec.instr.Instr.imm;
      emit t
        (Ev.Annotation
           {
             pc = fe.dyn.Exec.pc;
             value = fe.dyn.Exec.instr.Instr.imm;
             delivery = Ev.Noop_slot;
           });
      decr slots
    end
    else begin
      match dispatch_one t fe with
      | Keep_going ->
        ignore (Queue.pop t.fq);
        decr slots
      | s -> stop := s
    end
  done;
  (match !stop with
  | Keep_going -> ()
  | Stop_policy -> emit t (Ev.Dispatch_stall Ev.Policy_limit)
  | Stop_iq_full -> emit t (Ev.Dispatch_stall Ev.Iq_full)
  | Stop_rob_full -> emit t (Ev.Dispatch_stall Ev.Rob_full)
  | Stop_no_reg -> emit t (Ev.Dispatch_stall Ev.No_reg));
  (* "Throttled" feeds the adaptive policy's pressure signal: a stall on a
     physically shrunken ring counts as pressure just like an explicit
     policy refusal. *)
  !stop = Stop_policy
  || (!stop = Stop_iq_full && Iq.active_size t.iq < Iq.size t.iq)

(* --- fetch ------------------------------------------------------------- *)

(* Instructions are 4 bytes; a fetch group may not cross a cache line. *)
let line_of t pc = pc * 4 / t.cfg.Config.il1_line

let fetch_stage t =
  if t.halted || t.cycle < t.fetch_resume_at || t.blocked_sn <> None then ()
  else begin
    let start_pc = t.exec.Exec.pc in
    if start_pc < 0 || start_pc >= Prog.length t.prog then t.halted <- true
    else begin
      let icache_stall =
        match Cache.probe t.il1 ~now:t.cycle (start_pc * 4) with
        | Cache.Hit -> None
        | Cache.Inflight r -> Some (r + 1)
        | Cache.Miss ->
          emit t (Ev.Cache_miss { level = Ev.Il1; addr = start_pc * 4 });
          let lat =
            match Cache.probe t.l2 ~now:t.cycle (start_pc * 4) with
            | Cache.Hit -> t.cfg.Config.l2_hit
            | Cache.Inflight r -> r + 1
            | Cache.Miss ->
              emit t (Ev.Cache_miss { level = Ev.L2; addr = start_pc * 4 });
              Cache.set_fill t.l2 (start_pc * 4)
                (t.cycle + t.cfg.Config.mem_latency);
              t.cfg.Config.mem_latency
          in
          Cache.set_fill t.il1 (start_pc * 4) (t.cycle + lat);
          Some lat
      in
      match icache_stall with
      | Some lat ->
        (* Instruction-cache miss: stall fetch for the refill. *)
        t.fetch_resume_at <- t.cycle + lat
      | None ->
      let group_line = line_of t start_pc in
      let fetched = ref 0 in
      let continue = ref true in
      while
        !continue && !fetched < t.cfg.Config.fetch_width
        && Queue.length t.fq < t.cfg.Config.fetch_queue_size
        && not t.halted
      do
        let pc = t.exec.Exec.pc in
        if line_of t pc <> group_line then continue := false
        else
          match Exec.step t.exec with
          | None ->
            t.halted <- true;
            continue := false
          | Some dyn ->
            let i = dyn.Exec.instr in
            if i.Instr.op = Opcode.Halt then begin
              t.halted <- true;
              continue := false
            end
            else begin
              Queue.push
                { dyn; ready_at = t.cycle + t.cfg.Config.decode_depth }
                t.fq;
              incr fetched;
              (* Control flow: consult the predictor against the oracle,
                 then emit one [Fetch] event capturing the outcome. *)
              (match i.Instr.op with
              | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Bge ->
                let predicted_taken =
                  Branch_pred.predict_direction t.bpred dyn.Exec.pc
                in
                let btb = Branch_pred.btb_lookup t.bpred dyn.Exec.pc in
                (* Train immediately: fetch order = commit order here. *)
                Branch_pred.update_direction t.bpred dyn.Exec.pc
                  ~taken:dyn.Exec.taken;
                if dyn.Exec.taken then
                  Branch_pred.btb_update t.bpred dyn.Exec.pc
                    ~target:dyn.Exec.next_pc;
                if predicted_taken <> dyn.Exec.taken then begin
                  t.blocked_sn <- Some dyn.Exec.sn;
                  continue := false;
                  emit t
                    (Ev.Fetch
                       {
                         dyn;
                         outcome =
                           Ev.Cond_branch
                             {
                               taken = dyn.Exec.taken;
                               mispredicted = true;
                               btb_bubble = false;
                             };
                       });
                  if Bus.active t.bus then Bus.emit t.bus (Ev.Squash { dyn })
                end
                else if dyn.Exec.taken then begin
                  let btb_bubble =
                    match btb with
                    | Some target when target = dyn.Exec.next_pc -> false
                    | Some _ | None ->
                      t.fetch_resume_at <-
                        t.cycle + t.cfg.Config.btb_miss_penalty;
                      true
                  in
                  continue := false;
                  emit t
                    (Ev.Fetch
                       {
                         dyn;
                         outcome =
                           Ev.Cond_branch
                             { taken = true; mispredicted = false; btb_bubble };
                       })
                end
                else
                  emit t
                    (Ev.Fetch
                       {
                         dyn;
                         outcome =
                           Ev.Cond_branch
                             {
                               taken = false;
                               mispredicted = false;
                               btb_bubble = false;
                             };
                       })
              | Opcode.Jmp ->
                let btb_bubble =
                  match Branch_pred.btb_lookup t.bpred dyn.Exec.pc with
                  | Some target when target = dyn.Exec.next_pc -> false
                  | Some _ | None ->
                    t.fetch_resume_at <-
                      t.cycle + t.cfg.Config.btb_miss_penalty;
                    true
                in
                Branch_pred.btb_update t.bpred dyn.Exec.pc
                  ~target:dyn.Exec.next_pc;
                continue := false;
                emit t (Ev.Fetch { dyn; outcome = Ev.Jump { btb_bubble } })
              | Opcode.Call ->
                Branch_pred.ras_push t.bpred (dyn.Exec.pc + 1);
                let btb_bubble =
                  match Branch_pred.btb_lookup t.bpred dyn.Exec.pc with
                  | Some target when target = dyn.Exec.next_pc -> false
                  | Some _ | None ->
                    t.fetch_resume_at <-
                      t.cycle + t.cfg.Config.btb_miss_penalty;
                    true
                in
                Branch_pred.btb_update t.bpred dyn.Exec.pc
                  ~target:dyn.Exec.next_pc;
                continue := false;
                emit t (Ev.Fetch { dyn; outcome = Ev.Call { btb_bubble } })
              | Opcode.Ret ->
                let mispredicted =
                  match Branch_pred.ras_pop t.bpred with
                  | Some a when a = dyn.Exec.next_pc -> false
                  | Some _ | None ->
                    (* Return mispredicted: wait for it to resolve. *)
                    t.blocked_sn <- Some dyn.Exec.sn;
                    true
                in
                continue := false;
                emit t (Ev.Fetch { dyn; outcome = Ev.Return { mispredicted } });
                if mispredicted && Bus.active t.bus then
                  Bus.emit t.bus (Ev.Squash { dyn })
              | _ -> emit t (Ev.Fetch { dyn; outcome = Ev.Sequential }))
            end
      done
    end
  end

(* --- end of cycle ------------------------------------------------------- *)

let popcount m =
  let m = ref m in
  let n = ref 0 in
  while !m <> 0 do
    n := !n + (!m land 1);
    m := !m lsr 1
  done;
  !n

(* Per-bank gate/ungate transition events (trace-only), derived by
   diffing the powered-bank mask against the previous cycle's. *)
let emit_bank_transitions t ~unit_ ~prev ~cur =
  if prev <> cur then begin
    let changed = prev lxor cur in
    let b = ref 0 in
    let m = ref changed in
    while !m <> 0 do
      if !m land 1 = 1 then
        Bus.emit t.bus
          (if cur land (1 lsl !b) <> 0 then Ev.Bank_ungated { unit_; bank = !b }
           else Ev.Bank_gated { unit_; bank = !b });
      incr b;
      m := !m lsr 1
    done
  end

let cycle_end_stage t ~throttled =
  let iq_mask = Iq.banks_on_mask t.iq in
  let int_mask = Regfile.banks_on_mask t.int_rf in
  let fp_mask = Regfile.banks_on_mask t.fp_rf in
  let cycle_end =
    Ev.Cycle_end
      {
        cycle = t.cycle;
        throttled;
        iq_occupancy = Iq.occupancy t.iq;
        iq_banks_on = popcount iq_mask;
        int_rf_banks_on = popcount int_mask;
        int_rf_live = Regfile.live_count t.int_rf;
        fp_rf_banks_on = popcount fp_mask;
      }
  in
  (* Fold the integrand into the pipeline's own stats first: a
     [Cycle_end] sink must read fully-updated per-cycle sums. *)
  Stats.absorb t.stats cycle_end;
  (* The policy's end-of-cycle action (the adaptive scheme senses
     pressure and resizes here). A resize only drops/adds empty banks,
     so the masks captured above are unaffected. *)
  let size_before = Iq.active_size t.iq in
  Policy.end_cycle t.policy t.iq ~throttled;
  t.cycle <- t.cycle + 1;
  if Bus.active t.bus then begin
    emit_bank_transitions t ~unit_:Ev.Iq_bank ~prev:t.prev_iq_bank_mask
      ~cur:iq_mask;
    emit_bank_transitions t ~unit_:Ev.Int_rf_bank ~prev:t.prev_int_rf_bank_mask
      ~cur:int_mask;
    emit_bank_transitions t ~unit_:Ev.Fp_rf_bank ~prev:t.prev_fp_rf_bank_mask
      ~cur:fp_mask;
    let size_after = Iq.active_size t.iq in
    if size_after <> size_before then
      Bus.emit t.bus (Ev.Resize { before = size_before; after = size_after });
    (* Last event of the cycle, always: per-cycle observers (the
       invariant checker) run here with the post-increment cycle count
       and every counter for the cycle already folded in. *)
    Bus.emit t.bus cycle_end
  end;
  t.prev_iq_bank_mask <- iq_mask;
  t.prev_int_rf_bank_mask <- int_mask;
  t.prev_fp_rf_bank_mask <- fp_mask

(* --- main loop ---------------------------------------------------------- *)

let drained t =
  t.halted && Rob.is_empty t.rob && Queue.is_empty t.fq

let step_cycle t =
  commit_stage t;
  writeback_stage t;
  issue_stage t;
  let throttled = dispatch_stage t in
  fetch_stage t;
  cycle_end_stage t ~throttled

(* Run until the program drains or [max_insns] instructions have
   committed. Raises [Simulation_limit] after [max_cycles] as a deadlock
   guard. *)
let run ?(max_insns = max_int) ?(max_cycles = 200_000_000) t =
  while
    (not (drained t)) && t.stats.Stats.committed < max_insns
  do
    if t.cycle >= max_cycles then
      raise
        (Simulation_limit
           (Printf.sprintf
              "no progress: %d cycles, %d committed (policy %s)"
              t.cycle t.stats.Stats.committed (Policy.name t.policy)));
    step_cycle t
  done;
  t.stats

(* Convenience: build, initialise memory, run. *)
let simulate ?config ?policy ?checker ?on_commit ?init ?max_insns ?max_cycles
    prog =
  let t = create ?config ?policy ?checker ?on_commit prog in
  (match init with Some f -> f t.exec | None -> ());
  run ?max_insns ?max_cycles t

(* --- read-only view ----------------------------------------------------- *)

(* A stable accessor surface for observers (the invariant checker, tests):
   everything needed to audit the machine without reaching into record
   fields, and nothing that mutates it. *)
module Debug = struct
  let cfg t = t.cfg
  let policy t = t.policy
  let iq t = t.iq
  let rob t = t.rob
  let int_rf t = t.int_rf
  let fp_rf t = t.fp_rf
  let int_map t = Array.copy t.int_map
  let fp_map t = Array.copy t.fp_map
  let cycle t = t.cycle
  let halted t = t.halted
  let exec t = t.exec
  let stats t = t.stats
  let fetch_queue_length t = Queue.length t.fq
  let bus t = t.bus

  (* One-line machine-state excerpt for diagnostics. *)
  let excerpt t =
    let iq = t.iq in
    let oldest_sn = ref (-1) in
    Rob.iter_in_flight t.rob (fun _ e ->
        match e.Rob.dyn with
        | Some d when !oldest_sn < 0 -> oldest_sn := d.Exec.sn
        | Some _ | None -> ());
    Printf.sprintf
      "cycle=%d policy=%s iq[head=%d new_head=%d tail=%d count=%d span=%d \
       active=%d/%d] rob[count=%d oldest_sn=%d] rf[int live=%d free=%d; \
       fp live=%d free=%d] fq=%d committed=%d%s"
      t.cycle (Policy.name t.policy) iq.Iq.head iq.Iq.new_head iq.Iq.tail
      iq.Iq.count iq.Iq.new_span iq.Iq.active_size iq.Iq.size
      (Rob.occupancy t.rob) !oldest_sn
      (Regfile.live_count t.int_rf)
      (Regfile.free_count t.int_rf)
      (Regfile.live_count t.fp_rf)
      (Regfile.free_count t.fp_rf)
      (Queue.length t.fq) t.stats.Stats.committed
      (if t.halted then " halted" else "")
end
