(* Set-associative cache with LRU replacement.

   The simulator only needs latencies, not data: [access] returns whether
   the line was present and installs it. Timing of misses under
   contention is simplified to fixed latencies (no MSHR/bandwidth model),
   which is the usual academic-simulator treatment and is identical across
   the techniques being compared. *)

type t = {
  sets : int;
  ways : int;
  line : int;       (* bytes *)
  tags : int array;      (* sets * ways, -1 = invalid *)
  last_use : int array;  (* LRU stamps *)
  fill_time : int array; (* cycle at which the line's data arrives *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

type outcome =
  | Hit
  | Inflight of int (* remaining cycles until the line's fill completes *)
  | Miss

let create ~sets ~ways ~line =
  if sets <= 0 || ways <= 0 || line <= 0 then invalid_arg "Cache.create";
  {
    sets;
    ways;
    line;
    tags = Array.make (sets * ways) (-1);
    last_use = Array.make (sets * ways) 0;
    fill_time = Array.make (sets * ways) 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let hits t = t.hits
let misses t = t.misses

let line_key t addr = addr / t.line

(* [probe t ~now addr]: tag-match the line. A miss installs it (LRU
   eviction) with fill time [now]; the caller is expected to push the fill
   time out with [set_fill] once it knows the total miss latency, so later
   accesses to the still-in-flight line see [Inflight] rather than a free
   hit — an MSHR-style merge, without which dependent-pointer chases would
   wrongly ride on their own line fills. *)
let probe t ~now addr =
  let line_addr = line_key t addr in
  let set =
    let m = line_addr mod t.sets in
    if m < 0 then m + t.sets else m
  in
  let tag = line_addr in
  t.clock <- t.clock + 1;
  let base = set * t.ways in
  (* Closure-free tag match: this runs for every fetch cycle, load issue
     and store commit. *)
  let w = ref 0 in
  while !w < t.ways && t.tags.(base + !w) <> tag do
    incr w
  done;
  if !w < t.ways then begin
    let slot = base + !w in
    t.last_use.(slot) <- t.clock;
    if t.fill_time.(slot) > now then begin
      t.misses <- t.misses + 1;
      Inflight (t.fill_time.(slot) - now)
    end
    else begin
      t.hits <- t.hits + 1;
      Hit
    end
  end
  else begin
    t.misses <- t.misses + 1;
    (* Evict LRU. *)
    let victim = ref 0 in
    for w = 1 to t.ways - 1 do
      if t.last_use.(base + w) < t.last_use.(base + !victim) then victim := w
    done;
    t.tags.(base + !victim) <- tag;
    t.last_use.(base + !victim) <- t.clock;
    t.fill_time.(base + !victim) <- now;
    Miss
  end

(* Record when the just-missed line's data will arrive. *)
let set_fill t addr time =
  let line_addr = line_key t addr in
  let set = ((line_addr mod t.sets) + t.sets) mod t.sets in
  let base = set * t.ways in
  for w = 0 to t.ways - 1 do
    if t.tags.(base + w) = line_addr then t.fill_time.(base + w) <- time
  done

(* Untimed access: true on (settled) hit; misses install instantly. Used
   by unit tests and by accesses whose latency is not modelled. *)
let access t addr =
  match probe t ~now:0 addr with
  | Hit -> true
  | Inflight _ | Miss -> false

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.misses /. float_of_int total
