(** The out-of-order pipeline over the Table 1 machine: fetch → decode →
    rename/dispatch → issue/execute → writeback → commit, execution-driven
    from the functional oracle.

    Speculative frontend (DESIGN.md §14): a mispredicted control
    instruction opens a wrong-path episode — fetch continues down the
    *predicted* path via a shadow executor (register copies plus a store
    overlay; the oracle never leaves the correct path), and the
    wrong-path instructions rename, dispatch, issue and generate real
    cache/TLB traffic, marked [wp] end to end. When the branch resolves,
    everything younger is squashed: rename map and free lists rolled
    back exactly, IQ tail rewound, LSQ and ROB suffixes popped, the RAS
    restored from its episode snapshot, and a bus-visible [Squash] event
    emitted. Wrong-path work never commits and never trains the
    direction predictor, so the committed stream is identical with
    speculation on or off ([Config.speculative_fetch]).

    The memory system backs this with split 16-entry ITLB/DTLB (probed
    at fetch and at memory issue; a miss stalls for the walk) and an
    age-ordered load/store queue that allocates speculatively at
    dispatch and answers youngest-older-store forwarding queries at load
    issue.

    Cycle phase order matches the paper's Figure 1 timing: results wake
    consumers in their completion cycle and the consumers may issue that
    same cycle; slots freed by issue can be refilled by dispatch in the
    same cycle.

    Telemetry: stages emit typed events ({!Sdiq_events.Event}) instead of
    mutating consumers. The pipeline's statistics are a fold of its own
    event stream ({!Stats.absorb}); every external observer is a sink
    registered with {!subscribe} / {!on_cycle_end} / {!on_commit_sink}.
    [Cycle_end] is always the last event of its cycle; DESIGN.md §11
    specifies the full ordering contract. *)

type t = {
  cfg : Config.t;
  prog : Sdiq_isa.Prog.t;
  exec : Sdiq_isa.Exec.state;
  policy : Policy.t;
  sched : Sched.t;  (** select/wakeup scheduler policy (the third axis) *)
  pred_track : bool;
  scan_limit : int;
      (** the policy's select-scan bound, [max_int] when unbounded *)
  tag_is_load : Bytes.t;
      (** per physical tag: the current producer is a load (written at
          rename; current whenever a waiting operand's bit is read) *)
  il1 : Cache.t;
  dl1 : Cache.t;
  l2 : Cache.t;
  bpred : Branch_pred.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  int_rf : Regfile.t;
  fp_rf : Regfile.t;
  int_map : int array;
  fp_map : int array;
  rob : Rob.t;
  iq : Iq.t;
  lsq : Lsq.t;
  fq_dyns : Sdiq_isa.Exec.dyn array;
      (** fetch-queue ring (capacity [fetch_queue_size]) *)
  fq_ready : int array;
  mutable fq_head : int;
  mutable fq_tail : int;
  mutable fq_count : int;
  mutable wheel : int array array;
      (** completion timing wheel: ROB indices per completion cycle *)
  mutable wheel_len : int array;
  mutable wheel_cycle : int array;
  fu_counts : int array;
  fu_release : int array array;
      (** per-class release cycles of unpipelined unit instances *)
  avail : int array;
  wb_tags : int array;
  cand_slot : int array;
  cand_rob : int array;
  mutable cycle : int;
  mutable halted : bool;
  mutable fetch_hold : bool;
      (** fetch suspended for sampled simulation; in-flight work flows *)
  mutable fetch_resume_at : int;
  mutable blocked_sn : int;
      (** sequence number fetch is stalled on; [-1] when not stalled *)
  mutable wp_mode : bool;
      (** a wrong-path episode is open (one at a time, anchored at
          [blocked_sn]; a nested wrong-path mispredict only ends
          wrong-path fetch) *)
  mutable wp_pc : int;  (** next wrong-path pc; [-1] = wp fetch idle *)
  mutable wp_next_sn : int;
  wp_iregs : int array;
      (** shadow registers seeding the wrong-path executor, copied at
          episode entry (the oracle never leaves the correct path) *)
  wp_fregs : float array;
  wp_imem : (int, int) Hashtbl.t;
      (** wrong-path store overlay over the oracle's memory *)
  wp_fmem : (int, float) Hashtbl.t;
  wp_ras : int array;  (** RAS snapshot, restored at squash *)
  mutable wp_ras_top : int;
  iq_wp : Bytes.t;
  mutable wp_iq_boundary : int;
      (** IQ slot of the episode's first wrong-path dispatch; [-1] while
          none dispatched *)
  squash_mark : Bytes.t;
  mutable sabotage_squash_leak : bool;
  mutable stores_in_flight : int;
  mutable unpipe_busy_until : int;
  stats : Stats.t;
  bus : Sdiq_events.Bus.t;
      (** the sink registry; register through {!subscribe}, never
          [Bus.subscribe] directly (the pipeline caches [bus_on]) *)
  mutable bus_on : bool;
  mutable prev_iq_bank_mask : int;
  mutable prev_int_rf_bank_mask : int;
  mutable prev_fp_rf_bank_mask : int;
}

(** Raised by {!run} after [max_cycles] — a deadlock guard. *)
exception Simulation_limit of string

(** [?checker] and [?on_commit] are compatibility shims: they register
    the function as an {!on_cycle_end} / {!on_commit_sink} sink.
    [?sched] overrides [config.sched]. *)
val create :
  ?config:Config.t ->
  ?policy:Policy.t ->
  ?sched:Sched.t ->
  ?checker:(t -> unit) ->
  ?on_commit:(Sdiq_isa.Exec.dyn -> unit) ->
  Sdiq_isa.Prog.t ->
  t

(** Register an event sink; delivery is synchronous, in registration
    order, and a sink's exception propagates out of {!step_cycle} (the
    invariant checker's abort channel). Sinks must not mutate the
    machine. *)
val subscribe : ?name:string -> t -> (Sdiq_events.Event.t -> unit) -> unit

(** Per-cycle observer: runs on every [Cycle_end] — the last event of
    each cycle, after all statistics for the cycle are folded in — with
    the pipeline itself (use {!Debug} accessors to inspect it). *)
val on_cycle_end : ?name:string -> t -> (t -> unit) -> unit

(** Commit observer: one call per committed instruction, commit order. *)
val on_commit_sink : ?name:string -> t -> (Sdiq_isa.Exec.dyn -> unit) -> unit

(** Advance one cycle (commit, writeback, issue, dispatch, fetch, then
    the end-of-cycle accounting fold and [Cycle_end] delivery). *)
val step_cycle : t -> unit

(** True once the program has halted and every buffer has drained. *)
val drained : t -> bool

(** Run until the program drains or [max_insns] commit. *)
val run : ?max_insns:int -> ?max_cycles:int -> t -> Stats.t

(** Hold ([true]) or release ([false]) fetch; in-flight instructions
    keep flowing either way. Sampled simulation holds fetch to drain the
    machine before a fast-forward. *)
val set_fetch_hold : t -> bool -> unit

(** Hold fetch and run until every in-flight instruction has retired
    (fetch stays held). Raises {!Simulation_limit} after [max_cycles]
    (default 1,000,000). *)
val drain : ?max_cycles:int -> t -> unit

(** Functional fast-forward (SMARTS-style): execute up to [insns]
    oracle instructions with no timing model, applying exactly the
    branch-predictor, BTB, RAS, cache, TLB and policy-annotation updates
    detailed execution would apply, advancing the cycle counter one
    cycle per instruction. No events are emitted and no statistics
    change. Requires a drained machine ({!drain});
    raises [Invalid_argument] otherwise. Returns the instructions
    actually skipped (fewer than [insns] only at program halt). *)
val fast_forward : t -> insns:int -> int

(** Build, initialise memory via [init], run. *)
val simulate :
  ?config:Config.t ->
  ?policy:Policy.t ->
  ?sched:Sched.t ->
  ?checker:(t -> unit) ->
  ?on_commit:(Sdiq_isa.Exec.dyn -> unit) ->
  ?init:(Sdiq_isa.Exec.state -> unit) ->
  ?max_insns:int ->
  ?max_cycles:int ->
  Sdiq_isa.Prog.t ->
  Stats.t

(** Read-only view of the machine for observers (invariant checkers,
    tests): stable accessors instead of record plumbing, and nothing
    that mutates the pipeline. *)
module Debug : sig
  val cfg : t -> Config.t
  val policy : t -> Policy.t
  val sched : t -> Sched.t

  (** Whether physical tag [tag]'s current producer is a load. Only
      maintained under a policy with [Sched.suppresses_predicted] (the
      rename-path write is skipped otherwise); always [false] under
      [oldest_first] and [nskip]. *)
  val tag_is_load : t -> int -> bool

  val iq : t -> Iq.t
  val rob : t -> Rob.t
  val int_rf : t -> Regfile.t
  val fp_rf : t -> Regfile.t

  (** Current architectural→physical mappings (fresh copies). *)
  val int_map : t -> int array

  val fp_map : t -> int array
  val cycle : t -> int
  val halted : t -> bool
  val exec : t -> Sdiq_isa.Exec.state
  val stats : t -> Stats.t
  val fetch_queue_length : t -> int
  val bus : t -> Sdiq_events.Bus.t
  val lsq : t -> Lsq.t
  val itlb : t -> Tlb.t
  val dtlb : t -> Tlb.t
  val wp_mode : t -> bool
  val blocked_sn : t -> int

  (** Test-only sabotage: make the next squash leave its first
      wrong-path IQ entry live (ROB and rename still rolled back), the
      stale-entry corruption the checker must catch. *)
  val set_sabotage_squash_leak : t -> bool -> unit

  (** One-line machine-state summary for diagnostics. *)
  val excerpt : t -> string
end
