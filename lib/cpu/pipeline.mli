(** The out-of-order pipeline over the Table 1 machine: fetch → decode →
    rename/dispatch → issue/execute → writeback → commit, execution-driven
    from the functional oracle.

    Wrong-path instructions are never injected: a mispredicted control
    instruction stalls fetch until it resolves, which models the penalty
    while keeping oracle and pipeline in lockstep (a documented
    simplification applied identically to every technique).

    Cycle phase order matches the paper's Figure 1 timing: results wake
    consumers in their completion cycle and the consumers may issue that
    same cycle; slots freed by issue can be refilled by dispatch in the
    same cycle. *)

type fq_entry = {
  dyn : Sdiq_isa.Exec.dyn;
  ready_at : int;
}

type t = {
  cfg : Config.t;
  prog : Sdiq_isa.Prog.t;
  exec : Sdiq_isa.Exec.state;
  policy : Policy.t;
  il1 : Cache.t;
  dl1 : Cache.t;
  l2 : Cache.t;
  bpred : Branch_pred.t;
  int_rf : Regfile.t;
  fp_rf : Regfile.t;
  int_map : int array;
  fp_map : int array;
  rob : Rob.t;
  iq : Iq.t;
  fq : fq_entry Queue.t;
  completions : (int, int list) Hashtbl.t;
  mutable unpipe_busy : (Sdiq_isa.Fu.t * int) list;
  mutable cycle : int;
  mutable halted : bool;
  mutable fetch_resume_at : int;
  mutable blocked_sn : int option;
  stats : Stats.t;
  mutable checker : (t -> unit) option;
      (** called after every completed cycle with the machine state; an
          invariant checker raises {e its own} structured exception from
          here (the pipeline itself attaches no meaning to it) *)
  mutable on_commit : (Sdiq_isa.Exec.dyn -> unit) option;
      (** called once per committed instruction, in commit order *)
}

(** Raised by {!run} after [max_cycles] — a deadlock guard. *)
exception Simulation_limit of string

val create :
  ?config:Config.t ->
  ?policy:Policy.t ->
  ?checker:(t -> unit) ->
  ?on_commit:(Sdiq_isa.Exec.dyn -> unit) ->
  Sdiq_isa.Prog.t ->
  t

(** Install a per-cycle observer after the fact (see [?checker]). *)
val set_checker : t -> (t -> unit) -> unit

(** Install a commit observer after the fact (see [?on_commit]). *)
val set_on_commit : t -> (Sdiq_isa.Exec.dyn -> unit) -> unit

(** Advance one cycle (commit, writeback, issue, dispatch, fetch,
    accounting). *)
val step_cycle : t -> unit

(** True once the program has halted and every buffer has drained. *)
val drained : t -> bool

(** Run until the program drains or [max_insns] commit. *)
val run : ?max_insns:int -> ?max_cycles:int -> t -> Stats.t

(** Build, initialise memory via [init], run. *)
val simulate :
  ?config:Config.t ->
  ?policy:Policy.t ->
  ?checker:(t -> unit) ->
  ?on_commit:(Sdiq_isa.Exec.dyn -> unit) ->
  ?init:(Sdiq_isa.Exec.state -> unit) ->
  ?max_insns:int ->
  ?max_cycles:int ->
  Sdiq_isa.Prog.t ->
  Stats.t

(** Read-only view of the machine for observers (invariant checkers,
    tests): stable accessors instead of record plumbing, and nothing
    that mutates the pipeline. *)
module Debug : sig
  val cfg : t -> Config.t
  val policy : t -> Policy.t
  val iq : t -> Iq.t
  val rob : t -> Rob.t
  val int_rf : t -> Regfile.t
  val fp_rf : t -> Regfile.t

  (** Current architectural→physical mappings (fresh copies). *)
  val int_map : t -> int array

  val fp_map : t -> int array
  val cycle : t -> int
  val halted : t -> bool
  val exec : t -> Sdiq_isa.Exec.state
  val stats : t -> Stats.t
  val fetch_queue_length : t -> int

  (** One-line machine-state summary for diagnostics. *)
  val excerpt : t -> string
end
