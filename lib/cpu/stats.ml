(* Simulation statistics: the raw event counts and per-cycle integrals the
   power model and the experiment harness consume. *)

type t = {
  mutable cycles : int;
  mutable committed : int;         (* program instructions retired *)
  mutable dispatched : int;        (* instructions entering the IQ *)
  mutable iqset_dispatch_slots : int; (* dispatch slots eaten by special NOOPs *)
  (* issue queue activity *)
  mutable iq_occupancy_sum : int;      (* valid entries, integrated per cycle *)
  mutable iq_banks_on_sum : int;
  mutable iq_wakeups_gated : int;
  mutable iq_wakeups_nonempty : int;
  mutable iq_wakeups_naive : int;
  mutable iq_dispatch_ram_writes : int;
  mutable iq_dispatch_cam_writes : int;
  mutable iq_issue_reads : int;
  mutable iq_broadcasts : int;
  mutable iq_selects : int;
  mutable iq_scan_entries : int;   (* slots the select scan examined *)
  mutable iq_wakeups_suppressed : int; (* CAM ports suppressed as
                                          predicted-ready (load-delay) *)
  (* register files *)
  mutable int_rf_reads : int;
  mutable int_rf_writes : int;
  mutable int_rf_banks_on_sum : int;
  mutable int_rf_live_sum : int;
  mutable fp_rf_reads : int;
  mutable fp_rf_writes : int;
  mutable fp_rf_banks_on_sum : int;
  (* frontend *)
  mutable fetched : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable btb_bubbles : int;
  mutable il1_misses : int;
  mutable dl1_misses : int;
  mutable l2_misses : int;
  mutable loads : int;
  mutable stores : int;
  mutable store_forwards : int;
  (* speculation: wrong-path activity and squash traffic *)
  mutable wp_fetched : int;        (* wrong-path instructions fetched *)
  mutable wp_dispatched : int;     (* ... renamed into IQ/ROB *)
  mutable wp_issued : int;         (* ... issued to functional units *)
  mutable squashes : int;          (* resolution episodes *)
  mutable squashed : int;          (* wrong-path instructions discarded *)
  (* TLBs *)
  mutable itlb_misses : int;
  mutable dtlb_misses : int;
  (* stalls *)
  mutable dispatch_stall_policy : int;  (* cycles throttled by the policy *)
  mutable dispatch_stall_iq_full : int;
  mutable dispatch_stall_rob_full : int;
  mutable dispatch_stall_no_reg : int;
  mutable dispatch_stall_lsq_full : int;
}

let create () =
  {
    cycles = 0;
    committed = 0;
    dispatched = 0;
    iqset_dispatch_slots = 0;
    iq_occupancy_sum = 0;
    iq_banks_on_sum = 0;
    iq_wakeups_gated = 0;
    iq_wakeups_nonempty = 0;
    iq_wakeups_naive = 0;
    iq_dispatch_ram_writes = 0;
    iq_dispatch_cam_writes = 0;
    iq_issue_reads = 0;
    iq_broadcasts = 0;
    iq_selects = 0;
    iq_scan_entries = 0;
    iq_wakeups_suppressed = 0;
    int_rf_reads = 0;
    int_rf_writes = 0;
    int_rf_banks_on_sum = 0;
    int_rf_live_sum = 0;
    fp_rf_reads = 0;
    fp_rf_writes = 0;
    fp_rf_banks_on_sum = 0;
    fetched = 0;
    branches = 0;
    mispredicts = 0;
    btb_bubbles = 0;
    il1_misses = 0;
    dl1_misses = 0;
    l2_misses = 0;
    loads = 0;
    stores = 0;
    store_forwards = 0;
    wp_fetched = 0;
    wp_dispatched = 0;
    wp_issued = 0;
    squashes = 0;
    squashed = 0;
    itlb_misses = 0;
    dtlb_misses = 0;
    dispatch_stall_policy = 0;
    dispatch_stall_iq_full = 0;
    dispatch_stall_rob_full = 0;
    dispatch_stall_no_reg = 0;
    dispatch_stall_lsq_full = 0;
  }

(* The fold: how one pipeline event updates the counters. This is the
   *only* place stats are accumulated — the pipeline emits events and
   absorbs them here (and so can any external sink, e.g. the power
   meter, to reconstruct identical statistics from the stream alone).

   Counter-bearing events carry deltas, so absorbing a stream prefix
   yields correct partial sums; [Cycle_end] carries the per-cycle
   integrand snapshot, making the `*_sum` fields true per-cycle
   integrals. Events with no counter meaning (writeback, resize, bank
   transitions) absorb to nothing. *)
let absorb t (ev : Sdiq_events.Event.t) =
  let open Sdiq_events.Event in
  match ev with
  | Fetch { outcome; wp; _ } -> (
    t.fetched <- t.fetched + 1;
    (* Wrong-path fetches count as frontend activity but never as
       branch-prediction outcomes: the predictor is neither consulted
       for correctness nor trained down the wrong path. *)
    if wp then t.wp_fetched <- t.wp_fetched + 1
    else
      match outcome with
      | Sequential -> ()
      | Cond_branch { mispredicted; btb_bubble; _ } ->
        t.branches <- t.branches + 1;
        if mispredicted then t.mispredicts <- t.mispredicts + 1;
        if btb_bubble then t.btb_bubbles <- t.btb_bubbles + 1
      | Jump { btb_bubble } | Call { btb_bubble } ->
        if btb_bubble then t.btb_bubbles <- t.btb_bubbles + 1
      | Return { mispredicted } ->
        t.branches <- t.branches + 1;
        if mispredicted then t.mispredicts <- t.mispredicts + 1)
  | Annotation { delivery = Noop_slot; _ } ->
    t.iqset_dispatch_slots <- t.iqset_dispatch_slots + 1
  | Annotation { delivery = Tag; _ } -> ()
  | Dispatch { kind; cam_writes; wp; _ } ->
    t.dispatched <- t.dispatched + 1;
    t.iq_dispatch_ram_writes <- t.iq_dispatch_ram_writes + 1;
    t.iq_dispatch_cam_writes <- t.iq_dispatch_cam_writes + cam_writes;
    if wp then t.wp_dispatched <- t.wp_dispatched + 1;
    (match kind with
    | Plain -> ()
    | Load -> t.loads <- t.loads + 1
    | Store -> t.stores <- t.stores + 1)
  | Dispatch_stall Policy_limit ->
    t.dispatch_stall_policy <- t.dispatch_stall_policy + 1
  | Dispatch_stall Iq_full ->
    t.dispatch_stall_iq_full <- t.dispatch_stall_iq_full + 1
  | Dispatch_stall Rob_full ->
    t.dispatch_stall_rob_full <- t.dispatch_stall_rob_full + 1
  | Dispatch_stall No_reg ->
    t.dispatch_stall_no_reg <- t.dispatch_stall_no_reg + 1
  | Dispatch_stall Lsq_full ->
    t.dispatch_stall_lsq_full <- t.dispatch_stall_lsq_full + 1
  | Wakeup { tags; naive; nonempty; gated; suppressed; woken = _ } ->
    t.iq_broadcasts <- t.iq_broadcasts + tags;
    t.iq_wakeups_naive <- t.iq_wakeups_naive + naive;
    t.iq_wakeups_nonempty <- t.iq_wakeups_nonempty + nonempty;
    t.iq_wakeups_gated <- t.iq_wakeups_gated + gated;
    t.iq_wakeups_suppressed <- t.iq_wakeups_suppressed + suppressed
  | Select _ -> t.iq_selects <- t.iq_selects + 1
  | Select_scan { entries } -> t.iq_scan_entries <- t.iq_scan_entries + entries
  | Issue { store_forward; wp; _ } ->
    t.iq_issue_reads <- t.iq_issue_reads + 1;
    if store_forward then t.store_forwards <- t.store_forwards + 1;
    if wp then t.wp_issued <- t.wp_issued + 1
  | Writeback _ -> ()
  | Rf_read { ints; fps } ->
    t.int_rf_reads <- t.int_rf_reads + ints;
    t.fp_rf_reads <- t.fp_rf_reads + fps
  | Rf_write { file = Int_rf; _ } -> t.int_rf_writes <- t.int_rf_writes + 1
  | Rf_write { file = Fp_rf; _ } -> t.fp_rf_writes <- t.fp_rf_writes + 1
  | Commit _ -> t.committed <- t.committed + 1
  | Squash { squashed; _ } ->
    t.squashes <- t.squashes + 1;
    t.squashed <- t.squashed + squashed
  | Cache_miss { level = Il1; _ } -> t.il1_misses <- t.il1_misses + 1
  | Cache_miss { level = Dl1; _ } -> t.dl1_misses <- t.dl1_misses + 1
  | Cache_miss { level = L2; _ } -> t.l2_misses <- t.l2_misses + 1
  | Tlb_miss { tlb = Itlb; _ } -> t.itlb_misses <- t.itlb_misses + 1
  | Tlb_miss { tlb = Dtlb; _ } -> t.dtlb_misses <- t.dtlb_misses + 1
  | Resize _ | Bank_gated _ | Bank_ungated _ -> ()
  | Cycle_end
      {
        cycle;
        throttled = _;
        iq_occupancy;
        iq_banks_on;
        int_rf_banks_on;
        int_rf_live;
        fp_rf_banks_on;
      } ->
    t.cycles <- cycle + 1;
    t.iq_occupancy_sum <- t.iq_occupancy_sum + iq_occupancy;
    t.iq_banks_on_sum <- t.iq_banks_on_sum + iq_banks_on;
    t.int_rf_banks_on_sum <- t.int_rf_banks_on_sum + int_rf_banks_on;
    t.int_rf_live_sum <- t.int_rf_live_sum + int_rf_live;
    t.fp_rf_banks_on_sum <- t.fp_rf_banks_on_sum + fp_rf_banks_on

(* Field-wise accumulation: [add a b] folds [b]'s counters into [a].
   Every field is a plain sum, including [cycles] — so summing disjoint
   per-region statistics (where each region's [cycles] counts the
   cycles attributed to it) reproduces a run's global statistics
   exactly. *)
let add a b =
  a.cycles <- a.cycles + b.cycles;
  a.committed <- a.committed + b.committed;
  a.dispatched <- a.dispatched + b.dispatched;
  a.iqset_dispatch_slots <- a.iqset_dispatch_slots + b.iqset_dispatch_slots;
  a.iq_occupancy_sum <- a.iq_occupancy_sum + b.iq_occupancy_sum;
  a.iq_banks_on_sum <- a.iq_banks_on_sum + b.iq_banks_on_sum;
  a.iq_wakeups_gated <- a.iq_wakeups_gated + b.iq_wakeups_gated;
  a.iq_wakeups_nonempty <- a.iq_wakeups_nonempty + b.iq_wakeups_nonempty;
  a.iq_wakeups_naive <- a.iq_wakeups_naive + b.iq_wakeups_naive;
  a.iq_dispatch_ram_writes <-
    a.iq_dispatch_ram_writes + b.iq_dispatch_ram_writes;
  a.iq_dispatch_cam_writes <-
    a.iq_dispatch_cam_writes + b.iq_dispatch_cam_writes;
  a.iq_issue_reads <- a.iq_issue_reads + b.iq_issue_reads;
  a.iq_broadcasts <- a.iq_broadcasts + b.iq_broadcasts;
  a.iq_selects <- a.iq_selects + b.iq_selects;
  a.iq_scan_entries <- a.iq_scan_entries + b.iq_scan_entries;
  a.iq_wakeups_suppressed <- a.iq_wakeups_suppressed + b.iq_wakeups_suppressed;
  a.int_rf_reads <- a.int_rf_reads + b.int_rf_reads;
  a.int_rf_writes <- a.int_rf_writes + b.int_rf_writes;
  a.int_rf_banks_on_sum <- a.int_rf_banks_on_sum + b.int_rf_banks_on_sum;
  a.int_rf_live_sum <- a.int_rf_live_sum + b.int_rf_live_sum;
  a.fp_rf_reads <- a.fp_rf_reads + b.fp_rf_reads;
  a.fp_rf_writes <- a.fp_rf_writes + b.fp_rf_writes;
  a.fp_rf_banks_on_sum <- a.fp_rf_banks_on_sum + b.fp_rf_banks_on_sum;
  a.fetched <- a.fetched + b.fetched;
  a.branches <- a.branches + b.branches;
  a.mispredicts <- a.mispredicts + b.mispredicts;
  a.btb_bubbles <- a.btb_bubbles + b.btb_bubbles;
  a.il1_misses <- a.il1_misses + b.il1_misses;
  a.dl1_misses <- a.dl1_misses + b.dl1_misses;
  a.l2_misses <- a.l2_misses + b.l2_misses;
  a.loads <- a.loads + b.loads;
  a.stores <- a.stores + b.stores;
  a.store_forwards <- a.store_forwards + b.store_forwards;
  a.wp_fetched <- a.wp_fetched + b.wp_fetched;
  a.wp_dispatched <- a.wp_dispatched + b.wp_dispatched;
  a.wp_issued <- a.wp_issued + b.wp_issued;
  a.squashes <- a.squashes + b.squashes;
  a.squashed <- a.squashed + b.squashed;
  a.itlb_misses <- a.itlb_misses + b.itlb_misses;
  a.dtlb_misses <- a.dtlb_misses + b.dtlb_misses;
  a.dispatch_stall_policy <- a.dispatch_stall_policy + b.dispatch_stall_policy;
  a.dispatch_stall_iq_full <-
    a.dispatch_stall_iq_full + b.dispatch_stall_iq_full;
  a.dispatch_stall_rob_full <-
    a.dispatch_stall_rob_full + b.dispatch_stall_rob_full;
  a.dispatch_stall_no_reg <- a.dispatch_stall_no_reg + b.dispatch_stall_no_reg;
  a.dispatch_stall_lsq_full <-
    a.dispatch_stall_lsq_full + b.dispatch_stall_lsq_full

(* A field-for-field snapshot; the sampling harness diffs snapshots
   taken around each measured window. *)
let copy t =
  {
    cycles = t.cycles;
    committed = t.committed;
    dispatched = t.dispatched;
    iqset_dispatch_slots = t.iqset_dispatch_slots;
    iq_occupancy_sum = t.iq_occupancy_sum;
    iq_banks_on_sum = t.iq_banks_on_sum;
    iq_wakeups_gated = t.iq_wakeups_gated;
    iq_wakeups_nonempty = t.iq_wakeups_nonempty;
    iq_wakeups_naive = t.iq_wakeups_naive;
    iq_dispatch_ram_writes = t.iq_dispatch_ram_writes;
    iq_dispatch_cam_writes = t.iq_dispatch_cam_writes;
    iq_issue_reads = t.iq_issue_reads;
    iq_broadcasts = t.iq_broadcasts;
    iq_selects = t.iq_selects;
    iq_scan_entries = t.iq_scan_entries;
    iq_wakeups_suppressed = t.iq_wakeups_suppressed;
    int_rf_reads = t.int_rf_reads;
    int_rf_writes = t.int_rf_writes;
    int_rf_banks_on_sum = t.int_rf_banks_on_sum;
    int_rf_live_sum = t.int_rf_live_sum;
    fp_rf_reads = t.fp_rf_reads;
    fp_rf_writes = t.fp_rf_writes;
    fp_rf_banks_on_sum = t.fp_rf_banks_on_sum;
    fetched = t.fetched;
    branches = t.branches;
    mispredicts = t.mispredicts;
    btb_bubbles = t.btb_bubbles;
    il1_misses = t.il1_misses;
    dl1_misses = t.dl1_misses;
    l2_misses = t.l2_misses;
    loads = t.loads;
    stores = t.stores;
    store_forwards = t.store_forwards;
    wp_fetched = t.wp_fetched;
    wp_dispatched = t.wp_dispatched;
    wp_issued = t.wp_issued;
    squashes = t.squashes;
    squashed = t.squashed;
    itlb_misses = t.itlb_misses;
    dtlb_misses = t.dtlb_misses;
    dispatch_stall_policy = t.dispatch_stall_policy;
    dispatch_stall_iq_full = t.dispatch_stall_iq_full;
    dispatch_stall_rob_full = t.dispatch_stall_rob_full;
    dispatch_stall_no_reg = t.dispatch_stall_no_reg;
    dispatch_stall_lsq_full = t.dispatch_stall_lsq_full;
  }

(* [diff a b]: the per-field difference [a - b] as a fresh value —
   the counter deltas accumulated between two snapshots. *)
let diff a b =
  {
    cycles = a.cycles - b.cycles;
    committed = a.committed - b.committed;
    dispatched = a.dispatched - b.dispatched;
    iqset_dispatch_slots = a.iqset_dispatch_slots - b.iqset_dispatch_slots;
    iq_occupancy_sum = a.iq_occupancy_sum - b.iq_occupancy_sum;
    iq_banks_on_sum = a.iq_banks_on_sum - b.iq_banks_on_sum;
    iq_wakeups_gated = a.iq_wakeups_gated - b.iq_wakeups_gated;
    iq_wakeups_nonempty = a.iq_wakeups_nonempty - b.iq_wakeups_nonempty;
    iq_wakeups_naive = a.iq_wakeups_naive - b.iq_wakeups_naive;
    iq_dispatch_ram_writes = a.iq_dispatch_ram_writes - b.iq_dispatch_ram_writes;
    iq_dispatch_cam_writes = a.iq_dispatch_cam_writes - b.iq_dispatch_cam_writes;
    iq_issue_reads = a.iq_issue_reads - b.iq_issue_reads;
    iq_broadcasts = a.iq_broadcasts - b.iq_broadcasts;
    iq_selects = a.iq_selects - b.iq_selects;
    iq_scan_entries = a.iq_scan_entries - b.iq_scan_entries;
    iq_wakeups_suppressed =
      a.iq_wakeups_suppressed - b.iq_wakeups_suppressed;
    int_rf_reads = a.int_rf_reads - b.int_rf_reads;
    int_rf_writes = a.int_rf_writes - b.int_rf_writes;
    int_rf_banks_on_sum = a.int_rf_banks_on_sum - b.int_rf_banks_on_sum;
    int_rf_live_sum = a.int_rf_live_sum - b.int_rf_live_sum;
    fp_rf_reads = a.fp_rf_reads - b.fp_rf_reads;
    fp_rf_writes = a.fp_rf_writes - b.fp_rf_writes;
    fp_rf_banks_on_sum = a.fp_rf_banks_on_sum - b.fp_rf_banks_on_sum;
    fetched = a.fetched - b.fetched;
    branches = a.branches - b.branches;
    mispredicts = a.mispredicts - b.mispredicts;
    btb_bubbles = a.btb_bubbles - b.btb_bubbles;
    il1_misses = a.il1_misses - b.il1_misses;
    dl1_misses = a.dl1_misses - b.dl1_misses;
    l2_misses = a.l2_misses - b.l2_misses;
    loads = a.loads - b.loads;
    stores = a.stores - b.stores;
    store_forwards = a.store_forwards - b.store_forwards;
    wp_fetched = a.wp_fetched - b.wp_fetched;
    wp_dispatched = a.wp_dispatched - b.wp_dispatched;
    wp_issued = a.wp_issued - b.wp_issued;
    squashes = a.squashes - b.squashes;
    squashed = a.squashed - b.squashed;
    itlb_misses = a.itlb_misses - b.itlb_misses;
    dtlb_misses = a.dtlb_misses - b.dtlb_misses;
    dispatch_stall_policy = a.dispatch_stall_policy - b.dispatch_stall_policy;
    dispatch_stall_iq_full = a.dispatch_stall_iq_full - b.dispatch_stall_iq_full;
    dispatch_stall_rob_full = a.dispatch_stall_rob_full - b.dispatch_stall_rob_full;
    dispatch_stall_no_reg = a.dispatch_stall_no_reg - b.dispatch_stall_no_reg;
    dispatch_stall_lsq_full =
      a.dispatch_stall_lsq_full - b.dispatch_stall_lsq_full;
  }

(* Every field with its name, for field-by-field divergence reports. *)
let to_fields t =
  [
    ("cycles", t.cycles);
    ("committed", t.committed);
    ("dispatched", t.dispatched);
    ("iqset_dispatch_slots", t.iqset_dispatch_slots);
    ("iq_occupancy_sum", t.iq_occupancy_sum);
    ("iq_banks_on_sum", t.iq_banks_on_sum);
    ("iq_wakeups_gated", t.iq_wakeups_gated);
    ("iq_wakeups_nonempty", t.iq_wakeups_nonempty);
    ("iq_wakeups_naive", t.iq_wakeups_naive);
    ("iq_dispatch_ram_writes", t.iq_dispatch_ram_writes);
    ("iq_dispatch_cam_writes", t.iq_dispatch_cam_writes);
    ("iq_issue_reads", t.iq_issue_reads);
    ("iq_broadcasts", t.iq_broadcasts);
    ("iq_selects", t.iq_selects);
    ("iq_scan_entries", t.iq_scan_entries);
    ("iq_wakeups_suppressed", t.iq_wakeups_suppressed);
    ("int_rf_reads", t.int_rf_reads);
    ("int_rf_writes", t.int_rf_writes);
    ("int_rf_banks_on_sum", t.int_rf_banks_on_sum);
    ("int_rf_live_sum", t.int_rf_live_sum);
    ("fp_rf_reads", t.fp_rf_reads);
    ("fp_rf_writes", t.fp_rf_writes);
    ("fp_rf_banks_on_sum", t.fp_rf_banks_on_sum);
    ("fetched", t.fetched);
    ("branches", t.branches);
    ("mispredicts", t.mispredicts);
    ("btb_bubbles", t.btb_bubbles);
    ("il1_misses", t.il1_misses);
    ("dl1_misses", t.dl1_misses);
    ("l2_misses", t.l2_misses);
    ("loads", t.loads);
    ("stores", t.stores);
    ("store_forwards", t.store_forwards);
    ("wp_fetched", t.wp_fetched);
    ("wp_dispatched", t.wp_dispatched);
    ("wp_issued", t.wp_issued);
    ("squashes", t.squashes);
    ("squashed", t.squashed);
    ("itlb_misses", t.itlb_misses);
    ("dtlb_misses", t.dtlb_misses);
    ("dispatch_stall_policy", t.dispatch_stall_policy);
    ("dispatch_stall_iq_full", t.dispatch_stall_iq_full);
    ("dispatch_stall_rob_full", t.dispatch_stall_rob_full);
    ("dispatch_stall_no_reg", t.dispatch_stall_no_reg);
    ("dispatch_stall_lsq_full", t.dispatch_stall_lsq_full);
  ]

let equal a b = to_fields a = to_fields b

let ipc t =
  if t.cycles = 0 then 0. else float_of_int t.committed /. float_of_int t.cycles

let avg_iq_occupancy t =
  if t.cycles = 0 then 0.
  else float_of_int t.iq_occupancy_sum /. float_of_int t.cycles

let avg_iq_banks_on t =
  if t.cycles = 0 then 0.
  else float_of_int t.iq_banks_on_sum /. float_of_int t.cycles

let avg_int_rf_banks_on t =
  if t.cycles = 0 then 0.
  else float_of_int t.int_rf_banks_on_sum /. float_of_int t.cycles

let avg_int_rf_live t =
  if t.cycles = 0 then 0.
  else float_of_int t.int_rf_live_sum /. float_of_int t.cycles

let mispredict_rate t =
  if t.branches = 0 then 0.
  else float_of_int t.mispredicts /. float_of_int t.branches

let pp ppf t =
  Fmt.pf ppf
    "cycles %d, committed %d, IPC %.3f@ IQ: occ %.1f, banks-on %.2f, \
     wakeups %d (naive %d)@ RF(int): reads %d writes %d banks-on %.2f@ \
     branches %d (mispred %.1f%%), DL1 miss %d, L2 miss %d"
    t.cycles t.committed (ipc t) (avg_iq_occupancy t) (avg_iq_banks_on t)
    t.iq_wakeups_gated t.iq_wakeups_naive t.int_rf_reads t.int_rf_writes
    (avg_int_rf_banks_on t) t.branches
    (100. *. mispredict_rate t)
    t.dl1_misses t.l2_misses
