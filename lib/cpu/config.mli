(** Processor configuration — Table 1 of the paper. *)

type t = {
  fetch_width : int;
  dispatch_width : int;
  issue_width : int;
  commit_width : int;
  decode_depth : int;        (** cycles an instruction spends decoding *)
  fetch_queue_size : int;
  rob_size : int;
  iq_size : int;
  iq_bank_size : int;
  rf_size : int;             (** physical registers per file (int and fp) *)
  rf_bank_size : int;
  fu_count : Sdiq_isa.Fu.t -> int;
  il1_sets : int;
  il1_ways : int;
  il1_line : int;
  il1_hit : int;
  dl1_sets : int;
  dl1_ways : int;
  dl1_line : int;
  dl1_hit : int;
  l2_sets : int;
  l2_ways : int;
  l2_line : int;
  l2_hit : int;
  mem_latency : int;
  bimodal_size : int;
  gshare_size : int;
  gshare_hist : int;
  selector_size : int;
  btb_sets : int;
  btb_ways : int;
  ras_size : int;
  btb_miss_penalty : int;
  mispredict_redirect : int;
  speculative_fetch : bool;
      (** fetch down the predicted path on a mispredict, squash at
          resolution *)
  lsq_size : int;            (** load/store queue entries *)
  itlb_entries : int;        (** fully associative, LRU *)
  dtlb_entries : int;
  page_size : int;           (** words per page *)
  tlb_miss_penalty : int;    (** cycles to walk the page table *)
  sched : Sched.t;           (** select/wakeup scheduler policy *)
}

(** The paper's Table 1 machine. *)
val default : t

val iq_banks : t -> int
val rf_banks : t -> int
val pp : Format.formatter -> t -> unit
