(* The issue queue (Section 3.1).

   A non-collapsible circular buffer of [size] entries organised in banks
   of [bank_size]: instructions dispatch at [tail] in program order, issue
   from any slot, and an issued slot becomes a hole until [head] sweeps
   past it (no compaction, as in Folegnani & González and Buyuktosunoglu
   et al. — compaction costs too much energy). The CAM and RAM arrays of a
   bank are turned off while the bank holds no valid entry.

   The paper's addition is a second head pointer [new_head]: the compiler
   communicates [max_new_range], the number of slots the *next program
   region* may occupy, and dispatch is limited so the slot span between
   [new_head] and [tail] (holes included — the queue cannot collapse them)
   never exceeds it. When the instruction under [new_head] issues, the
   pointer moves towards the tail until it reaches a non-empty slot or
   becomes the tail (Figure 2), freeing span for more dispatch.

   Wakeup accounting implements both schemes compared in the paper:
   [wakeups_naive] charges every operand CAM in the queue on every result
   broadcast; [wakeups_gated] charges only present-and-not-ready operands
   of valid entries (Folegnani & González gating, assumed by the paper's
   example and by all techniques evaluated). *)

type operand = {
  mutable present : bool;
  mutable tag : int;    (* physical register tag; int and fp disjoint *)
  mutable ready : bool;
}

type entry = {
  mutable valid : bool;
  mutable rob_idx : int;
  ops : operand array; (* always length 2 *)
}

type t = {
  size : int;
  bank_size : int;
  mutable active_size : int;
      (* hardware-resizable ring: the Abella/Buyuktosunoglu-style adaptive
         scheme physically restricts the circular buffer to the first
         [active_size] slots (whole banks), so the remaining banks hold no
         entries and stay off; the software scheme leaves this at [size] *)
  slots : entry array;
  mutable head : int;
  mutable new_head : int;
  mutable tail : int;
  mutable count : int;      (* valid entries *)
  mutable new_span : int;   (* slots between new_head and tail, holes incl. *)
  (* event counters for the power model *)
  mutable wakeups_gated : int;
  mutable wakeups_nonempty : int;
  mutable wakeups_naive : int;
  mutable dispatch_ram_writes : int;
  mutable dispatch_cam_writes : int;
  mutable issue_reads : int;
  mutable broadcasts : int;
}

let create ~size ~bank_size =
  if size <= 0 || bank_size <= 0 || bank_size > size then
    invalid_arg "Iq.create";
  let mk_entry _ =
    {
      valid = false;
      rob_idx = -1;
      ops =
        Array.init 2 (fun _ -> { present = false; tag = -1; ready = false });
    }
  in
  {
    size;
    bank_size;
    active_size = size;
    slots = Array.init size mk_entry;
    head = 0;
    new_head = 0;
    tail = 0;
    count = 0;
    new_span = 0;
    wakeups_gated = 0;
    wakeups_nonempty = 0;
    wakeups_naive = 0;
    dispatch_ram_writes = 0;
    dispatch_cam_writes = 0;
    issue_reads = 0;
    broadcasts = 0;
  }

let size t = t.size
let occupancy t = t.count
let is_empty t = t.count = 0

(* The tail slot is free unless the buffer has wrapped onto the head; a
   valid slot under the tail means the (non-collapsible) queue is full. *)
let is_full t = t.slots.(t.tail).valid

(* Slots the next program region currently occupies (holes included). *)
let new_region_span t = t.new_span

(* Start a new program region: pin [new_head] to the tail (Section 3.2:
   the special NOOP's value becomes the new [max_new_range] and subsequent
   dispatches belong to the new region). *)
let start_new_region t =
  t.new_head <- t.tail;
  t.new_span <- 0

(* Dispatch an instruction into the tail slot. [ops] lists (tag, ready) for
   the register sources. Returns the slot index. *)
let dispatch t ~rob_idx ~ops =
  if is_full t then invalid_arg "Iq.dispatch: full";
  let slot = t.tail in
  let e = t.slots.(slot) in
  e.valid <- true;
  e.rob_idx <- rob_idx;
  Array.iter
    (fun o ->
      o.present <- false;
      o.tag <- -1;
      o.ready <- false)
    e.ops;
  List.iteri
    (fun i (tag, ready) ->
      if i < 2 then begin
        e.ops.(i).present <- true;
        e.ops.(i).tag <- tag;
        e.ops.(i).ready <- ready;
        t.dispatch_cam_writes <- t.dispatch_cam_writes + 1
      end)
    ops;
  t.dispatch_ram_writes <- t.dispatch_ram_writes + 1;
  t.tail <- (t.tail + 1) mod t.active_size;
  t.count <- t.count + 1;
  t.new_span <- t.new_span + 1;
  slot

(* Remove an issued instruction from [slot], updating both head pointers
   exactly as the hardware does. Pointer sweeps are window-bounded rather
   than tail-guarded: comparing against [tail] alone cannot distinguish
   "reached the free space" from "started on a completely full ring"
   (head = tail both when empty and when wrapped full). [new_head] sweeps
   within the region's [new_span] slots; [head] sweeps to the first valid
   entry anywhere, which must exist while [count > 0]. *)
let issue t slot =
  let e = t.slots.(slot) in
  if not e.valid then invalid_arg "Iq.issue: empty slot";
  e.valid <- false;
  e.rob_idx <- -1;
  t.count <- t.count - 1;
  t.issue_reads <- t.issue_reads + 1;
  if slot = t.new_head then begin
    let span = t.new_span in
    let rec find p steps =
      if steps >= span then (t.tail, span)
      else if t.slots.(p).valid then (p, steps)
      else find ((p + 1) mod t.active_size) (steps + 1)
    in
    let pos, skipped = find t.new_head 0 in
    t.new_head <- pos;
    t.new_span <- t.new_span - skipped
  end;
  if slot = t.head then
    if t.count = 0 then t.head <- t.tail
    else begin
      let rec find p =
        if t.slots.(p).valid then p else find ((p + 1) mod t.active_size)
      in
      t.head <- find t.head
    end

(* Broadcast the destination tags of all results completing this cycle.
   All tags see the same pre-wakeup snapshot, as the parallel CAM ports do
   in hardware: in Figure 1(c) instructions a and b complete together and
   each causes 6 wakeups even though they wake some of the same operands.
   Accounting: gated comparisons touch every present-and-not-ready operand
   of a valid entry, once per tag; the naive scheme compares both operand
   CAMs of every slot per tag. Returns how many operands woke. *)
let broadcast_many t tags =
  let ntags = List.length tags in
  if ntags = 0 then 0
  else begin
    t.broadcasts <- t.broadcasts + ntags;
    t.wakeups_naive <- t.wakeups_naive + (2 * t.size * ntags);
    let matched = ref 0 in
    Array.iter
      (fun e ->
        if e.valid then
          Array.iter
            (fun o ->
              if o.present then begin
                (* the "nonEmpty" scheme compares every operand of every
                   allocated entry, ready or not *)
                t.wakeups_nonempty <- t.wakeups_nonempty + ntags;
                if not o.ready then begin
                  t.wakeups_gated <- t.wakeups_gated + ntags;
                  if List.mem o.tag tags then begin
                    o.ready <- true;
                    incr matched
                  end
                end
              end)
            e.ops)
      t.slots;
    !matched
  end

let broadcast t tag = broadcast_many t [ tag ]

(* Fold over valid entries from oldest (head) to youngest (tail), the order
   the select logic prefers. *)
let fold_oldest_first t f acc =
  let acc = ref acc in
  let pos = ref t.head in
  let remaining = ref t.count in
  let steps = ref 0 in
  while !remaining > 0 && !steps < t.active_size do
    let e = t.slots.(!pos) in
    if e.valid then begin
      acc := f !acc !pos e;
      decr remaining
    end;
    pos := (!pos + 1) mod t.active_size;
    incr steps
  done;
  !acc

(* Adaptive resizing (the abella comparison point): restrict or extend the
   ring to [target] slots, whole banks at a time. A resize only takes
   effect when it is safe — shrinking needs every live entry and pointer
   inside the surviving region; growing needs the live region not to wrap
   (so the modulus change keeps it contiguous). Callers simply retry every
   cycle, which models the scheme's inherent adjustment lag. Returns true
   when the resize (or part of it, one step toward the target) applied. *)
let resize t target =
  let target =
    let banked = max t.bank_size (min t.size target) in
    banked / t.bank_size * t.bank_size
  in
  if target = t.active_size then false
  else if t.count = 0 then begin
    t.head <- 0;
    t.new_head <- 0;
    t.tail <- 0;
    t.new_span <- 0;
    t.active_size <- target;
    true
  end
  else begin
    (* Any modulus change invalidates [new_span]: the region is the
       circular slot range [new_head, tail), and changing [active_size]
       inserts (grow) or removes (shrink) the run of slots between the
       old boundary and slot 0 — inside the region whenever it wraps.
       Re-derive the span from the pointers under the new modulus; the
       pre-resize span disambiguates [tail = new_head], which means a
       full ring when the span was non-zero and an empty region
       otherwise. *)
    let respan target =
      if t.new_span = 0 then 0
      else (((t.tail - t.new_head - 1) + target) mod target) + 1
    in
    if target > t.active_size then begin
      (* Growing inserts a run of empty slots between the oldest entries
         (at and after [head]) and any wrapped younger ones (before
         [tail]); pointer sweeps skip holes, so circular order is
         preserved. *)
      t.new_span <- respan target;
      t.active_size <- target;
      true
    end
    else begin
      (* Shrinking is safe only once the dropped banks hold nothing and
         all three pointers are inside the surviving region. *)
      let clear =
        ref (t.head < target && t.new_head < target && t.tail < target)
      in
      for s = target to t.active_size - 1 do
        if t.slots.(s).valid then clear := false
      done;
      if !clear then begin
        t.new_span <- respan target;
        t.active_size <- target;
        true
      end
      else false
    end
  end

let active_size t = t.active_size

let entry t slot = t.slots.(slot)

let entry_ready (e : entry) =
  e.valid && Array.for_all (fun o -> (not o.present) || o.ready) e.ops

(* Banks holding at least one valid entry: only these have their CAM/RAM
   arrays powered. *)
let banks t = (t.size + t.bank_size - 1) / t.bank_size

let banks_on_mask t =
  let nb = banks t in
  let mask = ref 0 in
  for b = 0 to nb - 1 do
    let lo = b * t.bank_size in
    let hi = min t.size (lo + t.bank_size) - 1 in
    let any = ref false in
    for i = lo to hi do
      if t.slots.(i).valid then any := true
    done;
    if !any then mask := !mask lor (1 lsl b)
  done;
  !mask

(* Defined as the popcount of the mask so the two views cannot drift. *)
let banks_on t =
  let m = ref (banks_on_mask t) in
  let on = ref 0 in
  while !m <> 0 do
    on := !on + (!m land 1);
    m := !m lsr 1
  done;
  !on
