(* The issue queue (Section 3.1).

   A non-collapsible circular buffer of [size] entries organised in banks
   of [bank_size]: instructions dispatch at [tail] in program order, issue
   from any slot, and an issued slot becomes a hole until [head] sweeps
   past it (no compaction, as in Folegnani & González and Buyuktosunoglu
   et al. — compaction costs too much energy). The CAM and RAM arrays of a
   bank are turned off while the bank holds no valid entry.

   The paper's addition is a second head pointer [new_head]: the compiler
   communicates [max_new_range], the number of slots the *next program
   region* may occupy, and dispatch is limited so the slot span between
   [new_head] and [tail] (holes included — the queue cannot collapse them)
   never exceeds it. When the instruction under [new_head] issues, the
   pointer moves towards the tail until it reaches a non-empty slot or
   becomes the tail (Figure 2), freeing span for more dispatch.

   Wakeup accounting implements both schemes compared in the paper:
   [wakeups_naive] charges every operand CAM in the queue on every result
   broadcast; [wakeups_gated] charges only present-and-not-ready operands
   of valid entries (Folegnani & González gating, assumed by the paper's
   example and by all techniques evaluated).

   Storage is flat (DESIGN.md §13): per-slot state lives in unboxed
   byte/int arrays instead of an array of entry records, so the wakeup
   scan and the select sweep walk contiguous memory with no pointer
   chasing, and per-bank occupancy is maintained incrementally
   ([bank_live]) so the powered-bank mask costs O(banks), not O(size),
   per cycle. *)

type t = {
  size : int;
  bank_size : int;
  mutable active_size : int;
      (* hardware-resizable ring: the Abella/Buyuktosunoglu-style adaptive
         scheme physically restricts the circular buffer to the first
         [active_size] slots (whole banks), so the remaining banks hold no
         entries and stay off; the software scheme leaves this at [size] *)
  (* flat per-slot state: [valid] and the operand flags are bytes (0/1),
     tags and ROB back-pointers are unboxed ints; operand [j] of slot [s]
     lives at index [2*s + j] *)
  valid : Bytes.t;
  rob_idx : int array;
  op_present : Bytes.t;
  op_ready : Bytes.t;
  op_pred : Bytes.t;
      (* predicted-ready: the operand's producer has a deterministic
         latency, so a load-delay scheduler suppresses its CAM port
         (energy only — the operand still wakes on a tag match) *)
  op_tag : int array;
  bank_live : int array; (* valid entries per bank, kept incrementally *)
  bank_of : int array; (* slot -> bank, precomputed (no hot-path division) *)
  mutable live_mask : int; (* bit b set iff bank_live.(b) > 0 *)
  mutable live_banks : int; (* popcount of live_mask, kept incrementally *)
  mutable head : int;
  mutable new_head : int;
  mutable tail : int;
  mutable count : int;      (* valid entries *)
  mutable new_span : int;   (* slots between new_head and tail, holes incl. *)
  mutable suppress_pred : bool;
      (* load-delay policy active: predicted-ready waiting operands pay
         no CAM comparison (counted in [wakeups_suppressed] instead of
         [wakeups_gated]) *)
  (* event counters for the power model *)
  mutable wakeups_gated : int;
  mutable wakeups_suppressed : int;
  mutable wakeups_nonempty : int;
  mutable wakeups_naive : int;
  mutable dispatch_ram_writes : int;
  mutable dispatch_cam_writes : int;
  mutable issue_reads : int;
  mutable broadcasts : int;
}

let create ~size ~bank_size =
  if size <= 0 || bank_size <= 0 || bank_size > size then
    invalid_arg "Iq.create";
  {
    size;
    bank_size;
    active_size = size;
    valid = Bytes.make size '\000';
    rob_idx = Array.make size (-1);
    op_present = Bytes.make (2 * size) '\000';
    op_ready = Bytes.make (2 * size) '\000';
    op_pred = Bytes.make (2 * size) '\000';
    op_tag = Array.make (2 * size) (-1);
    bank_live = Array.make ((size + bank_size - 1) / bank_size) 0;
    bank_of = Array.init size (fun s -> s / bank_size);
    live_mask = 0;
    live_banks = 0;
    head = 0;
    new_head = 0;
    tail = 0;
    count = 0;
    new_span = 0;
    suppress_pred = false;
    wakeups_gated = 0;
    wakeups_suppressed = 0;
    wakeups_nonempty = 0;
    wakeups_naive = 0;
    dispatch_ram_writes = 0;
    dispatch_cam_writes = 0;
    issue_reads = 0;
    broadcasts = 0;
  }

let size t = t.size
let occupancy t = t.count
let is_empty t = t.count = 0

(* --- flat-slot accessors ------------------------------------------------- *)

let slot_valid t s = Bytes.unsafe_get t.valid s <> '\000'
let slot_rob_idx t s = Array.unsafe_get t.rob_idx s
let op_present t s j = Bytes.unsafe_get t.op_present ((2 * s) + j) <> '\000'
let op_ready t s j = Bytes.unsafe_get t.op_ready ((2 * s) + j) <> '\000'
let op_pred t s j = Bytes.unsafe_get t.op_pred ((2 * s) + j) <> '\000'
let op_tag t s j = Array.unsafe_get t.op_tag ((2 * s) + j)

(* All present operands ready (and the slot live): issueable. *)
let slot_ready t s =
  slot_valid t s
  && ((not (op_present t s 0)) || op_ready t s 0)
  && ((not (op_present t s 1)) || op_ready t s 1)

(* The tail slot is free unless the buffer has wrapped onto the head; a
   valid slot under the tail means the (non-collapsible) queue is full. *)
let is_full t = slot_valid t t.tail

(* Slots the next program region currently occupies (holes included). *)
let new_region_span t = t.new_span

(* Start a new program region: pin [new_head] to the tail (Section 3.2:
   the special NOOP's value becomes the new [max_new_range] and subsequent
   dispatches belong to the new region). *)
let start_new_region t =
  t.new_head <- t.tail;
  t.new_span <- 0

let set_slot_live t slot =
  Bytes.unsafe_set t.valid slot '\001';
  let b = Array.unsafe_get t.bank_of slot in
  let c = t.bank_live.(b) + 1 in
  t.bank_live.(b) <- c;
  if c = 1 then begin
    t.live_mask <- t.live_mask lor (1 lsl b);
    t.live_banks <- t.live_banks + 1
  end

let set_slot_free t slot =
  Bytes.unsafe_set t.valid slot '\000';
  let b = Array.unsafe_get t.bank_of slot in
  let c = t.bank_live.(b) - 1 in
  t.bank_live.(b) <- c;
  if c = 0 then begin
    t.live_mask <- t.live_mask land lnot (1 lsl b);
    t.live_banks <- t.live_banks - 1
  end

(* Dispatch into the tail slot with at most two renamed sources given
   positionally — the zero-allocation path the pipeline uses. [nsrc] is
   the instruction's true source count (capped at 2 for the CAM write
   accounting, matching the two physical operand CAMs). *)
let dispatch_flat t ~rob_idx ~nsrc ~tag0 ~ready0 ~pred0 ~tag1 ~ready1 ~pred1 =
  if is_full t then invalid_arg "Iq.dispatch: full";
  let slot = t.tail in
  set_slot_live t slot;
  Array.unsafe_set t.rob_idx slot rob_idx;
  let o = 2 * slot in
  Bytes.unsafe_set t.op_present o '\000';
  Bytes.unsafe_set t.op_present (o + 1) '\000';
  Bytes.unsafe_set t.op_ready o '\000';
  Bytes.unsafe_set t.op_ready (o + 1) '\000';
  Bytes.unsafe_set t.op_pred o '\000';
  Bytes.unsafe_set t.op_pred (o + 1) '\000';
  Array.unsafe_set t.op_tag o (-1);
  Array.unsafe_set t.op_tag (o + 1) (-1);
  if nsrc >= 1 then begin
    Bytes.unsafe_set t.op_present o '\001';
    Array.unsafe_set t.op_tag o tag0;
    if ready0 then Bytes.unsafe_set t.op_ready o '\001'
    else if pred0 then Bytes.unsafe_set t.op_pred o '\001'
  end;
  if nsrc >= 2 then begin
    Bytes.unsafe_set t.op_present (o + 1) '\001';
    Array.unsafe_set t.op_tag (o + 1) tag1;
    if ready1 then Bytes.unsafe_set t.op_ready (o + 1) '\001'
    else if pred1 then Bytes.unsafe_set t.op_pred (o + 1) '\001'
  end;
  t.dispatch_cam_writes <-
    t.dispatch_cam_writes + (if nsrc < 2 then nsrc else 2);
  t.dispatch_ram_writes <- t.dispatch_ram_writes + 1;
  t.tail <- (if t.tail + 1 = t.active_size then 0 else t.tail + 1);
  t.count <- t.count + 1;
  t.new_span <- t.new_span + 1;
  slot

(* List-based dispatch, for tests and callers off the hot path. [ops]
   lists (tag, ready) for the register sources; entries beyond the two
   operand CAMs are dropped. Returns the slot index. *)
let dispatch t ~rob_idx ~ops =
  match ops with
  | [] ->
    dispatch_flat t ~rob_idx ~nsrc:0 ~tag0:(-1) ~ready0:false ~pred0:false
      ~tag1:(-1) ~ready1:false ~pred1:false
  | [ (tag0, ready0) ] ->
    dispatch_flat t ~rob_idx ~nsrc:1 ~tag0 ~ready0 ~pred0:false ~tag1:(-1)
      ~ready1:false ~pred1:false
  | (tag0, ready0) :: (tag1, ready1) :: _ ->
    dispatch_flat t ~rob_idx ~nsrc:2 ~tag0 ~ready0 ~pred0:false ~tag1 ~ready1
      ~pred1:false

(* Remove an issued instruction from [slot], updating both head pointers
   exactly as the hardware does. Pointer sweeps are window-bounded rather
   than tail-guarded: comparing against [tail] alone cannot distinguish
   "reached the free space" from "started on a completely full ring"
   (head = tail both when empty and when wrapped full). [new_head] sweeps
   within the region's [new_span] slots; [head] sweeps to the first valid
   entry anywhere, which must exist while [count > 0]. *)
let issue t slot =
  if not (slot_valid t slot) then invalid_arg "Iq.issue: empty slot";
  set_slot_free t slot;
  Array.unsafe_set t.rob_idx slot (-1);
  t.count <- t.count - 1;
  t.issue_reads <- t.issue_reads + 1;
  if slot = t.new_head then begin
    let span = t.new_span in
    let p = ref t.new_head in
    let steps = ref 0 in
    while !steps < span && not (slot_valid t !p) do
      p := (if !p + 1 = t.active_size then 0 else !p + 1);
      incr steps
    done;
    if !steps >= span then begin
      t.new_head <- t.tail;
      t.new_span <- t.new_span - span
    end
    else begin
      t.new_head <- !p;
      t.new_span <- t.new_span - !steps
    end
  end;
  if slot = t.head then
    if t.count = 0 then t.head <- t.tail
    else begin
      let p = ref t.head in
      while not (slot_valid t !p) do
        p := (if !p + 1 = t.active_size then 0 else !p + 1)
      done;
      t.head <- !p
    end

(* Squash removal: free [slot] with no issue accounting and no pointer
   sweeps. A squash discards a contiguous ring suffix (the wrong-path
   dispatches behind the mispredicted branch), so the pipeline rewinds
   [tail], [head] and [new_head] once for the whole suffix instead of
   sweeping per slot; selection never reads a freed slot in between. *)
let squash_slot t slot =
  if not (slot_valid t slot) then invalid_arg "Iq.squash_slot: empty slot";
  set_slot_free t slot;
  Array.unsafe_set t.rob_idx slot (-1);
  t.count <- t.count - 1

(* Broadcast the destination tags of all results completing this cycle.
   All tags see the same pre-wakeup snapshot, as the parallel CAM ports do
   in hardware: in Figure 1(c) instructions a and b complete together and
   each causes 6 wakeups even though they wake some of the same operands.
   Accounting: gated comparisons touch every present-and-not-ready operand
   of a valid entry, once per tag; the naive scheme compares both operand
   CAMs of every slot per tag. Returns how many operands woke.

   [broadcast_into] is the scratch-array core: the first [ntags] elements
   of [tags] are the broadcast group (the pipeline reuses one array across
   cycles, so the hot path allocates nothing). *)
let broadcast_into t tags ntags =
  if ntags = 0 then 0
  else begin
    t.broadcasts <- t.broadcasts + ntags;
    t.wakeups_naive <- t.wakeups_naive + (2 * t.size * ntags);
    let matched = ref 0 in
    let nonempty = ref 0 and gated = ref 0 and suppressed = ref 0 in
    (* Sweep the ring over the valid entries only (count-bounded, like
       the select sweep) instead of scanning every slot: occupancy is
       typically far below capacity. Counting is order-independent, so
       this visits exactly the operands the full scan would. The
       "nonEmpty" scheme compares every operand of every allocated
       entry, ready or not; "gated" only the present-and-not-ready
       ones. *)
    let pos = ref t.head in
    let remaining = ref t.count in
    let steps = ref 0 in
    let sup = t.suppress_pred in
    while !remaining > 0 && !steps < t.active_size do
      let s = !pos in
      if Bytes.unsafe_get t.valid s <> '\000' then begin
        decr remaining;
        for o = 2 * s to (2 * s) + 1 do
          if Bytes.unsafe_get t.op_present o <> '\000' then begin
            incr nonempty;
            if Bytes.unsafe_get t.op_ready o = '\000' then begin
              (* Load-delay suppression is energy accounting only: a
                 predicted-ready operand's comparison is counted as
                 suppressed rather than gated, but the tag match below
                 still runs, so wakeup timing is policy-independent. *)
              if sup && Bytes.unsafe_get t.op_pred o <> '\000'
              then incr suppressed
              else incr gated;
              let tag = Array.unsafe_get t.op_tag o in
              let hit = ref false in
              let k = ref 0 in
              while (not !hit) && !k < ntags do
                if Array.unsafe_get tags !k = tag then hit := true;
                incr k
              done;
              if !hit then begin
                Bytes.unsafe_set t.op_ready o '\001';
                incr matched
              end
            end
          end
        done
      end;
      incr steps;
      pos := (if s + 1 = t.active_size then 0 else s + 1)
    done;
    t.wakeups_nonempty <- t.wakeups_nonempty + (!nonempty * ntags);
    t.wakeups_gated <- t.wakeups_gated + (!gated * ntags);
    t.wakeups_suppressed <- t.wakeups_suppressed + (!suppressed * ntags);
    !matched
  end

let broadcast_many t tags = broadcast_into t (Array.of_list tags) (List.length tags)

let broadcast t tag = broadcast_many t [ tag ]

(* Fold over valid entries from oldest (head) to youngest (tail), the order
   the select logic prefers. The callback receives the slot index; use the
   slot accessors for its state. *)
let fold_oldest_first t f acc =
  let acc = ref acc in
  let pos = ref t.head in
  let remaining = ref t.count in
  let steps = ref 0 in
  while !remaining > 0 && !steps < t.active_size do
    if slot_valid t !pos then begin
      acc := f !acc !pos;
      decr remaining
    end;
    pos := (if !pos + 1 = t.active_size then 0 else !pos + 1);
    incr steps
  done;
  !acc

(* Adaptive resizing (the abella comparison point): restrict or extend the
   ring to [target] slots, whole banks at a time. A resize only takes
   effect when it is safe — shrinking needs every live entry and pointer
   inside the surviving region; growing needs the live region not to wrap
   (so the modulus change keeps it contiguous). Callers simply retry every
   cycle, which models the scheme's inherent adjustment lag. Returns true
   when the resize (or part of it, one step toward the target) applied. *)
let resize t target =
  let target =
    let banked = max t.bank_size (min t.size target) in
    banked / t.bank_size * t.bank_size
  in
  if target = t.active_size then false
  else if t.count = 0 then begin
    t.head <- 0;
    t.new_head <- 0;
    t.tail <- 0;
    t.new_span <- 0;
    t.active_size <- target;
    true
  end
  else begin
    (* Any modulus change invalidates [new_span]: the region is the
       circular slot range [new_head, tail), and changing [active_size]
       inserts (grow) or removes (shrink) the run of slots between the
       old boundary and slot 0 — inside the region whenever it wraps.
       Re-derive the span from the pointers under the new modulus; the
       pre-resize span disambiguates [tail = new_head], which means a
       full ring when the span was non-zero and an empty region
       otherwise. *)
    let respan target =
      if t.new_span = 0 then 0
      else (((t.tail - t.new_head - 1) + target) mod target) + 1
    in
    if target > t.active_size then begin
      (* Growing inserts a run of empty slots between the oldest entries
         (at and after [head]) and any wrapped younger ones (before
         [tail]); pointer sweeps skip holes, so circular order is
         preserved. *)
      t.new_span <- respan target;
      t.active_size <- target;
      true
    end
    else begin
      (* Shrinking is safe only once the dropped banks hold nothing and
         all three pointers are inside the surviving region. *)
      let clear =
        ref (t.head < target && t.new_head < target && t.tail < target)
      in
      for s = target to t.active_size - 1 do
        if slot_valid t s then clear := false
      done;
      if !clear then begin
        t.new_span <- respan target;
        t.active_size <- target;
        true
      end
      else false
    end
  end

let active_size t = t.active_size

(* Banks holding at least one valid entry: only these have their CAM/RAM
   arrays powered. *)
let banks t = (t.size + t.bank_size - 1) / t.bank_size

let banks_on_mask t = t.live_mask
let banks_on t = t.live_banks

(* Recount of the powered banks from the raw valid bytes, bypassing the
   incremental [bank_live] counters: the invariant checker audits the
   fast counters against this. *)
let recount_banks_on t =
  let nb = banks t in
  let on = ref 0 in
  for b = 0 to nb - 1 do
    let lo = b * t.bank_size in
    let hi = min t.size (lo + t.bank_size) - 1 in
    let any = ref false in
    for s = lo to hi do
      if slot_valid t s then any := true
    done;
    if !any then incr on
  done;
  !on

(* Test-only state tampering: mutate raw slot bytes with *no* bookkeeping
   (count, bank_live and pointers are left stale), simulating hardware
   corruption the invariant checker must catch. *)
module Raw = struct
  let set_valid t s v = Bytes.set t.valid s (if v then '\001' else '\000')

  let set_pred t s j v =
    Bytes.set t.op_pred ((2 * s) + j) (if v then '\001' else '\000')
end
