(** The issue queue (Section 3.1): a non-collapsible circular buffer in
    banks, with the paper's second head pointer.

    Instructions dispatch at [tail] in program order and issue from any
    slot, leaving holes until [head] sweeps past them. The compiler's
    [max_new_range] limits the slot span between [new_head] and [tail]
    (holes included); when the instruction under [new_head] issues, the
    pointer moves toward the tail until it reaches a non-empty slot or
    becomes the tail (Figure 2).

    Wakeup accounting covers the three schemes of Figure 8: naive (every
    operand CAM, every broadcast), nonEmpty (operands of allocated
    entries), and gated (present-and-not-ready operands only — Folegnani
    & González). *)

type operand = {
  mutable present : bool;
  mutable tag : int;
  mutable ready : bool;
}

type entry = {
  mutable valid : bool;
  mutable rob_idx : int;
  ops : operand array; (** always length 2 *)
}

type t = {
  size : int;
  bank_size : int;
  mutable active_size : int;
      (** the adaptive scheme physically restricts the ring to this many
          slots (whole banks); the software scheme leaves it at [size] *)
  slots : entry array;
  mutable head : int;
  mutable new_head : int;
  mutable tail : int;
  mutable count : int;
  mutable new_span : int;
  mutable wakeups_gated : int;
  mutable wakeups_nonempty : int;
  mutable wakeups_naive : int;
  mutable dispatch_ram_writes : int;
  mutable dispatch_cam_writes : int;
  mutable issue_reads : int;
  mutable broadcasts : int;
}

val create : size:int -> bank_size:int -> t
val size : t -> int
val occupancy : t -> int
val is_empty : t -> bool

(** Full in the non-collapsible sense: the tail slot is occupied. *)
val is_full : t -> bool

(** Slots the current program region occupies, holes included. *)
val new_region_span : t -> int

(** Pin [new_head] to the tail: a new program region begins. *)
val start_new_region : t -> unit

(** Insert at the tail; [ops] are (physical tag, ready) pairs. Returns
    the slot index. Raises [Invalid_argument] when full. *)
val dispatch : t -> rob_idx:int -> ops:(int * bool) list -> int

(** Remove an issued instruction, sweeping [head]/[new_head] forward
    exactly as the hardware does. *)
val issue : t -> int -> unit

(** Broadcast all result tags completing this cycle against one snapshot
    (as parallel CAM ports do); returns how many operands woke. *)
val broadcast_many : t -> int list -> int

val broadcast : t -> int -> int

(** Fold over valid entries oldest-first (select order). *)
val fold_oldest_first : t -> ('a -> int -> entry -> 'a) -> 'a -> 'a

val entry : t -> int -> entry

(** All present operands ready. *)
val entry_ready : entry -> bool

val banks : t -> int

(** Banks holding at least one valid entry (the powered ones). *)
val banks_on : t -> int

(** Bitmask of the powered banks (bit [b] set iff bank [b] holds a
    valid entry); [banks_on] is its popcount. Lets observers detect
    per-bank gate/ungate transitions, not just the count. *)
val banks_on_mask : t -> int

(** Adaptive resizing toward [target] slots (whole banks): shrinking
    applies only once the dropped banks are empty and all pointers are
    inside the surviving region; growing is always order-preserving.
    Returns whether the size changed. *)
val resize : t -> int -> bool

val active_size : t -> int
