(** The issue queue (Section 3.1): a non-collapsible circular buffer in
    banks, with the paper's second head pointer.

    Instructions dispatch at [tail] in program order and issue from any
    slot, leaving holes until [head] sweeps past them. The compiler's
    [max_new_range] limits the slot span between [new_head] and [tail]
    (holes included); when the instruction under [new_head] issues, the
    pointer moves toward the tail until it reaches a non-empty slot or
    becomes the tail (Figure 2).

    Wakeup accounting covers the three schemes of Figure 8: naive (every
    operand CAM, every broadcast), nonEmpty (operands of allocated
    entries), and gated (present-and-not-ready operands only — Folegnani
    & González).

    Slot state is stored flat (DESIGN.md §13): [valid]/operand flags as
    bytes, tags and ROB indices as unboxed int arrays, operand [j] of
    slot [s] at index [2*s + j]. Read per-slot state through the
    [slot_*]/[op_*] accessors. *)

type t = {
  size : int;
  bank_size : int;
  mutable active_size : int;
      (** the adaptive scheme physically restricts the ring to this many
          slots (whole banks); the software scheme leaves it at [size] *)
  valid : Bytes.t;
  rob_idx : int array;
  op_present : Bytes.t;
  op_ready : Bytes.t;
  op_pred : Bytes.t;
      (** predicted-ready: producer has deterministic latency, so a
          load-delay scheduler suppresses this operand's CAM comparison
          (energy only — it still wakes on a tag match) *)
  op_tag : int array;
  bank_live : int array;
      (** valid entries per bank, maintained incrementally so the
          powered-bank mask is O(banks) per cycle *)
  bank_of : int array;  (** slot → bank, precomputed *)
  mutable live_mask : int;  (** bit [b] set iff [bank_live.(b) > 0] *)
  mutable live_banks : int;  (** popcount of [live_mask], incremental *)
  mutable head : int;
  mutable new_head : int;
  mutable tail : int;
  mutable count : int;
  mutable new_span : int;
  mutable suppress_pred : bool;
      (** load-delay policy active: predicted-ready waiting operands are
          counted in [wakeups_suppressed] instead of [wakeups_gated] *)
  mutable wakeups_gated : int;
  mutable wakeups_suppressed : int;
  mutable wakeups_nonempty : int;
  mutable wakeups_naive : int;
  mutable dispatch_ram_writes : int;
  mutable dispatch_cam_writes : int;
  mutable issue_reads : int;
  mutable broadcasts : int;
}

val create : size:int -> bank_size:int -> t
val size : t -> int
val occupancy : t -> int
val is_empty : t -> bool

(** Full in the non-collapsible sense: the tail slot is occupied. *)
val is_full : t -> bool

(** Slots the current program region occupies, holes included. *)
val new_region_span : t -> int

(** Pin [new_head] to the tail: a new program region begins. *)
val start_new_region : t -> unit

(** Insert at the tail; [ops] are (physical tag, ready) pairs. Returns
    the slot index. Raises [Invalid_argument] when full. *)
val dispatch : t -> rob_idx:int -> ops:(int * bool) list -> int

(** Zero-allocation dispatch with the (at most two) renamed sources
    passed positionally; [nsrc] is the true source count. [predN] marks
    a waiting operand as predicted-ready (ignored when [readyN]). *)
val dispatch_flat :
  t ->
  rob_idx:int ->
  nsrc:int ->
  tag0:int ->
  ready0:bool ->
  pred0:bool ->
  tag1:int ->
  ready1:bool ->
  pred1:bool ->
  int

(** Remove an issued instruction, sweeping [head]/[new_head] forward
    exactly as the hardware does. *)
val issue : t -> int -> unit

(** Squash removal: free a slot with no issue accounting and no pointer
    sweeps — a squash discards a contiguous ring suffix, so the caller
    rewinds [tail]/[head]/[new_head] once for the whole suffix. *)
val squash_slot : t -> int -> unit

(** Broadcast all result tags completing this cycle against one snapshot
    (as parallel CAM ports do); returns how many operands woke. *)
val broadcast_many : t -> int list -> int

(** Scratch-array broadcast core: the first [ntags] elements are the
    group. The caller may reuse the array across cycles — nothing is
    retained. *)
val broadcast_into : t -> int array -> int -> int

val broadcast : t -> int -> int

(** Fold over valid entries oldest-first (select order); the callback
    receives the slot index. *)
val fold_oldest_first : t -> ('a -> int -> 'a) -> 'a -> 'a

(** {2 Flat-slot accessors} *)

val slot_valid : t -> int -> bool
val slot_rob_idx : t -> int -> int

(** Slot live and all present operands ready. *)
val slot_ready : t -> int -> bool

val op_present : t -> int -> int -> bool
val op_ready : t -> int -> int -> bool
val op_pred : t -> int -> int -> bool
val op_tag : t -> int -> int -> int

val banks : t -> int

(** Banks holding at least one valid entry (the powered ones). *)
val banks_on : t -> int

(** Bitmask of the powered banks (bit [b] set iff bank [b] holds a
    valid entry); [banks_on] is its popcount. Lets observers detect
    per-bank gate/ungate transitions, not just the count. *)
val banks_on_mask : t -> int

(** Recount of the powered banks from the raw valid bytes, ignoring the
    incremental [bank_live] counters — the invariant checker's
    independent audit. *)
val recount_banks_on : t -> int

(** Adaptive resizing toward [target] slots (whole banks): shrinking
    applies only once the dropped banks are empty and all pointers are
    inside the surviving region; growing is always order-preserving.
    Returns whether the size changed. *)
val resize : t -> int -> bool

val active_size : t -> int

(** Test-only tampering: raw slot mutation with no bookkeeping, for
    exercising the invariant checker. *)
module Raw : sig
  val set_valid : t -> int -> bool -> unit

  (** Flip operand [j] of slot [s]'s predicted-ready bit — sabotage for
      the checker's ready-suppression invariant. *)
  val set_pred : t -> int -> int -> bool -> unit
end
