(* Branch prediction, per Table 1: a hybrid of a 2K-entry gshare and a
   2K-entry bimodal predictor arbitrated by a 1K-entry selector, a 2048-
   entry 4-way BTB, and a return-address stack.

   Two-bit saturating counters throughout; the selector counter moves
   toward the component that was correct when they disagree. *)

type t = {
  bimodal : int array;
  gshare : int array;
  selector : int array;
  gshare_hist_bits : int;
  mutable history : int;
  (* index masks: [size - 1] when the table size is a power of two (the
     Table 1 configuration), else [-1] and indexing falls back to [mod] *)
  bimodal_mask : int;
  gshare_mask : int;
  selector_mask : int;
  (* BTB: sets x ways of (pc tag, target, lru) *)
  btb_sets : int;
  btb_ways : int;
  btb_tag : int array;
  btb_target : int array;
  btb_lru : int array;
  mutable btb_clock : int;
  ras : int array;
  ras_size : int;
  mutable ras_top : int; (* number of valid entries *)
  (* statistics *)
  mutable lookups : int;
  mutable dir_correct : int;
  mutable dir_wrong : int;
}

let pow2_mask n = if n > 0 && n land (n - 1) = 0 then n - 1 else -1

let create (cfg : Config.t) =
  {
    bimodal = Array.make cfg.Config.bimodal_size 1; (* weakly not-taken *)
    gshare = Array.make cfg.Config.gshare_size 1;
    selector = Array.make cfg.Config.selector_size 1;
    gshare_hist_bits = cfg.Config.gshare_hist;
    history = 0;
    bimodal_mask = pow2_mask cfg.Config.bimodal_size;
    gshare_mask = pow2_mask cfg.Config.gshare_size;
    selector_mask = pow2_mask cfg.Config.selector_size;
    btb_sets = cfg.Config.btb_sets;
    btb_ways = cfg.Config.btb_ways;
    btb_tag = Array.make (cfg.Config.btb_sets * cfg.Config.btb_ways) (-1);
    btb_target = Array.make (cfg.Config.btb_sets * cfg.Config.btb_ways) (-1);
    btb_lru = Array.make (cfg.Config.btb_sets * cfg.Config.btb_ways) 0;
    btb_clock = 0;
    ras = Array.make cfg.Config.ras_size 0;
    ras_size = cfg.Config.ras_size;
    ras_top = 0;
    lookups = 0;
    dir_correct = 0;
    dir_wrong = 0;
  }

(* pcs are program indices (≥ 0), so masking is exactly [mod] for
   power-of-two tables. *)
let bimodal_idx t pc =
  if t.bimodal_mask >= 0 then pc land t.bimodal_mask
  else pc mod Array.length t.bimodal

let gshare_idx t pc =
  let h = pc lxor (t.history land ((1 lsl t.gshare_hist_bits) - 1)) in
  if t.gshare_mask >= 0 then h land t.gshare_mask
  else h mod Array.length t.gshare

let selector_idx t pc =
  if t.selector_mask >= 0 then pc land t.selector_mask
  else pc mod Array.length t.selector

let counter_taken c = c >= 2

(* Predict the direction of the conditional branch at [pc]. *)
let predict_direction t pc =
  t.lookups <- t.lookups + 1;
  let b = counter_taken t.bimodal.(bimodal_idx t pc) in
  let g = counter_taken t.gshare.(gshare_idx t pc) in
  if counter_taken t.selector.(selector_idx t pc) then g else b

let bump arr i taken =
  let c = arr.(i) in
  if taken then (if c < 3 then arr.(i) <- c + 1)
  else if c > 0 then arr.(i) <- c - 1

(* Update direction predictors and global history with the outcome. *)
let update_direction t pc ~taken =
  let bi = bimodal_idx t pc and gi = gshare_idx t pc in
  let b_ok = counter_taken t.bimodal.(bi) = taken in
  let g_ok = counter_taken t.gshare.(gi) = taken in
  let si = selector_idx t pc in
  let was_correct = if counter_taken t.selector.(si) then g_ok else b_ok in
  if was_correct then t.dir_correct <- t.dir_correct + 1
  else t.dir_wrong <- t.dir_wrong + 1;
  (* Selector trains toward the correct component when they disagree. *)
  if b_ok <> g_ok then bump t.selector si g_ok;
  bump t.bimodal bi taken;
  bump t.gshare gi taken;
  t.history <- ((t.history lsl 1) lor (if taken then 1 else 0))
               land ((1 lsl t.gshare_hist_bits) - 1)

(* BTB lookup: the predicted target of the control instruction at [pc],
   or [-1] on a BTB miss (stored targets are program addresses, ≥ 0).
   Allocation-free — the pipeline's fetch loop calls this per control
   instruction. *)
let btb_lookup_tgt t pc =
  let set = pc mod t.btb_sets in
  let base = set * t.btb_ways in
  let w = ref 0 in
  while !w < t.btb_ways && t.btb_tag.(base + !w) <> pc do
    incr w
  done;
  if !w < t.btb_ways then begin
    t.btb_clock <- t.btb_clock + 1;
    t.btb_lru.(base + !w) <- t.btb_clock;
    t.btb_target.(base + !w)
  end
  else -1

let btb_lookup t pc =
  let tgt = btb_lookup_tgt t pc in
  if tgt < 0 then None else Some tgt

let btb_update t pc ~target =
  let set = pc mod t.btb_sets in
  let base = set * t.btb_ways in
  t.btb_clock <- t.btb_clock + 1;
  let rec find w = if w >= t.btb_ways then None
    else if t.btb_tag.(base + w) = pc then Some w
    else find (w + 1)
  in
  let w =
    match find 0 with
    | Some w -> w
    | None ->
      let victim = ref 0 in
      for w = 1 to t.btb_ways - 1 do
        if t.btb_lru.(base + w) < t.btb_lru.(base + !victim) then victim := w
      done;
      !victim
  in
  t.btb_tag.(base + w) <- pc;
  t.btb_target.(base + w) <- target;
  t.btb_lru.(base + w) <- t.btb_clock

(* Return-address stack. Overflow wraps (oldest entries are lost), as in
   real hardware. *)
let ras_push t addr =
  if t.ras_top < t.ras_size then begin
    t.ras.(t.ras_top) <- addr;
    t.ras_top <- t.ras_top + 1
  end
  else begin
    (* Shift down: drop the oldest. *)
    Array.blit t.ras 1 t.ras 0 (t.ras_size - 1);
    t.ras.(t.ras_size - 1) <- addr
  end

(* Pop, or [-1] when empty (return addresses are ≥ 1: fallthrough of a
   call). Allocation-free. *)
let ras_pop_addr t =
  if t.ras_top = 0 then -1
  else begin
    t.ras_top <- t.ras_top - 1;
    t.ras.(t.ras_top)
  end

let ras_pop t =
  let a = ras_pop_addr t in
  if a < 0 then None else Some a

(* RAS snapshot/restore for the speculative fetch frontend: wrong-path
   calls and returns push and pop the real stack (their predictions must
   see the speculative top), and the squash rewinds it to the snapshot
   taken when the mispredict was detected. The caller owns the buffer
   ([ras_depth] entries) so episodes allocate nothing. *)
let ras_depth t = t.ras_size

let ras_save t buf =
  Array.blit t.ras 0 buf 0 t.ras_size;
  t.ras_top

let ras_restore t buf top =
  Array.blit buf 0 t.ras 0 t.ras_size;
  t.ras_top <- top

let mispredict_rate t =
  let total = t.dir_correct + t.dir_wrong in
  if total = 0 then 0. else float_of_int t.dir_wrong /. float_of_int total
