(* Translation lookaside buffer: a small fully-associative cache of
   page translations with true-LRU replacement. The simulated ISA is
   flat-addressed, so no translation result is modelled — only the
   hit/miss timing and the miss traffic the power model prices. Two
   instances back the pipeline: an ITLB probed once per fetch-group
   page and a DTLB probed at load/store issue.

   Storage follows the flat hot-loop idiom (DESIGN.md §13): parallel
   int arrays for tags and last-use stamps, linear probe (the paper's
   machines hold 16 entries — a scan beats any map). *)

type t = {
  entries : int;
  page_size : int;          (* words per page; must be a power of two *)
  page_shift : int;
  tags : int array;         (* virtual page number, -1 when empty *)
  stamps : int array;       (* last-use clock for LRU *)
  mutable clock : int;
  mutable lookups : int;
  mutable misses : int;
}

let create ~entries ~page_size =
  if entries <= 0 then invalid_arg "Tlb.create: entries";
  if page_size <= 0 || page_size land (page_size - 1) <> 0 then
    invalid_arg "Tlb.create: page_size must be a power of two";
  let shift =
    let rec go s n = if n = 1 then s else go (s + 1) (n lsr 1) in
    go 0 page_size
  in
  {
    entries;
    page_size;
    page_shift = shift;
    tags = Array.make entries (-1);
    stamps = Array.make entries 0;
    clock = 0;
    lookups = 0;
    misses = 0;
  }

let page_of t addr = addr asr t.page_shift

(* Probe for [addr]'s page; on a miss, install it over the LRU entry.
   Returns [true] on a hit. *)
let access t addr =
  let page = page_of t addr in
  t.clock <- t.clock + 1;
  t.lookups <- t.lookups + 1;
  let hit = ref (-1) in
  for i = 0 to t.entries - 1 do
    if Array.unsafe_get t.tags i = page then hit := i
  done;
  if !hit >= 0 then begin
    Array.unsafe_set t.stamps !hit t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let victim = ref 0 in
    for i = 1 to t.entries - 1 do
      if Array.unsafe_get t.stamps i < Array.unsafe_get t.stamps !victim then
        victim := i
    done;
    Array.unsafe_set t.tags !victim page;
    Array.unsafe_set t.stamps !victim t.clock;
    false
  end

(* Warm the entry for [addr], discarding the hit/miss outcome: used by
   the sampling fast-forward, which must train the TLB exactly as
   detailed fetch/issue would but emits no events. *)
let train t addr = ignore (access t addr : bool)

let lookups t = t.lookups
let misses t = t.misses
