(** Simulation statistics: raw event counts and per-cycle integrals
    consumed by the power model and the experiment harness. *)

type t = {
  mutable cycles : int;
  mutable committed : int;
  mutable dispatched : int;
  mutable iqset_dispatch_slots : int;
  mutable iq_occupancy_sum : int;
  mutable iq_banks_on_sum : int;
  mutable iq_wakeups_gated : int;
  mutable iq_wakeups_nonempty : int;
  mutable iq_wakeups_naive : int;
  mutable iq_dispatch_ram_writes : int;
  mutable iq_dispatch_cam_writes : int;
  mutable iq_issue_reads : int;
  mutable iq_broadcasts : int;
  mutable iq_selects : int;
  mutable iq_scan_entries : int;
  mutable iq_wakeups_suppressed : int;
  mutable int_rf_reads : int;
  mutable int_rf_writes : int;
  mutable int_rf_banks_on_sum : int;
  mutable int_rf_live_sum : int;
  mutable fp_rf_reads : int;
  mutable fp_rf_writes : int;
  mutable fp_rf_banks_on_sum : int;
  mutable fetched : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable btb_bubbles : int;
  mutable il1_misses : int;
  mutable dl1_misses : int;
  mutable l2_misses : int;
  mutable loads : int;
  mutable stores : int;
  mutable store_forwards : int;
  mutable wp_fetched : int;
  mutable wp_dispatched : int;
  mutable wp_issued : int;
  mutable squashes : int;
  mutable squashed : int;
  mutable itlb_misses : int;
  mutable dtlb_misses : int;
  mutable dispatch_stall_policy : int;
  mutable dispatch_stall_iq_full : int;
  mutable dispatch_stall_rob_full : int;
  mutable dispatch_stall_no_reg : int;
  mutable dispatch_stall_lsq_full : int;
}

val create : unit -> t

(** The fold: apply one pipeline event's counter deltas. The pipeline
    accumulates its own statistics exclusively through this function, and
    any sink can reconstruct identical statistics from the event stream
    alone (see DESIGN.md §11). *)
val absorb : t -> Sdiq_events.Event.t -> unit

(** [add a b] accumulates [b] into [a], field by field. Every field —
    including [cycles] — is a plain sum, so summing disjoint partial
    statistics (per-region attributions, per-shard folds) reproduces
    the global statistics exactly. *)
val add : t -> t -> unit

(** A field-for-field snapshot (fresh value, original untouched). *)
val copy : t -> t

(** [diff a b]: the field-wise difference [a - b] as a fresh value — the
    counter deltas accumulated between two snapshots. *)
val diff : t -> t -> t

(** Every field with its name, for field-by-field divergence reports. *)
val to_fields : t -> (string * int) list

val equal : t -> t -> bool
val ipc : t -> float
val avg_iq_occupancy : t -> float
val avg_iq_banks_on : t -> float
val avg_int_rf_banks_on : t -> float
val avg_int_rf_live : t -> float
val mispredict_rate : t -> float
val pp : Format.formatter -> t -> unit
