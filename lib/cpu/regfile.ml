(* Banked physical register file with a free list and per-bank activity
   tracking (Section 5.2.3).

   Delaying dispatch means fewer registers are live at once; banking the
   file and turning off banks holding no live register saves static power
   and the dynamic precharge of their bitlines. Allocation prefers the
   lowest-numbered free register so live registers cluster into few banks,
   maximising the number of banks that can be gated off.

   Bookkeeping is incremental (DESIGN.md §13): [free_head] tracks the
   lowest-numbered free register so allocation needs no O(size) scan, and
   [bank_live] counts live registers per bank so the powered-bank mask is
   O(banks) per cycle. The checker recounts both from the raw [free]
   array. *)

type t = {
  size : int;
  bank_size : int;
  free : bool array;
  ready : bool array;    (* value has been produced *)
  bank_live : int array; (* live registers per bank, kept incrementally *)
  bank_of : int array;   (* register -> bank, precomputed *)
  mutable live_mask : int; (* bit b set iff bank_live.(b) > 0 *)
  mutable live_banks : int; (* popcount of live_mask, kept incrementally *)
  mutable free_head : int; (* lowest-numbered free register; [size] if none *)
  mutable free_count : int;
  (* statistics *)
  mutable reads : int;
  mutable writes : int;
  mutable allocs : int;
  mutable alloc_failures : int;
}

let create ~size ~bank_size =
  if size <= 0 || bank_size <= 0 then invalid_arg "Regfile.create";
  {
    size;
    bank_size;
    free = Array.make size true;
    ready = Array.make size false;
    bank_live = Array.make ((size + bank_size - 1) / bank_size) 0;
    bank_of = Array.init size (fun i -> i / bank_size);
    live_mask = 0;
    live_banks = 0;
    free_head = 0;
    free_count = size;
    reads = 0;
    writes = 0;
    allocs = 0;
    alloc_failures = 0;
  }

let banks t = (t.size + t.bank_size - 1) / t.bank_size

let free_count t = t.free_count
let live_count t = t.size - t.free_count

let mark_live t i =
  t.free.(i) <- false;
  let b = Array.unsafe_get t.bank_of i in
  let c = t.bank_live.(b) + 1 in
  t.bank_live.(b) <- c;
  if c = 1 then begin
    t.live_mask <- t.live_mask lor (1 lsl b);
    t.live_banks <- t.live_banks + 1
  end;
  t.free_count <- t.free_count - 1;
  if i = t.free_head then begin
    let j = ref (i + 1) in
    while !j < t.size && not t.free.(!j) do
      incr j
    done;
    t.free_head <- !j
  end

(* Allocate the lowest-numbered free register; the value is not ready until
   [write] marks it so. *)
let alloc t =
  if t.free_count = 0 then begin
    t.alloc_failures <- t.alloc_failures + 1;
    None
  end
  else if t.free_head >= t.size then
    (* free_count > 0 yet no free slot: the count has drifted from the
       free array — a conservation bug upstream (double release or a
       release bypassing this module). *)
    failwith
      (Printf.sprintf
         "Regfile.alloc: free_count=%d but the free list has no free \
          register (size=%d)"
         t.free_count t.size)
  else begin
    let i = t.free_head in
    t.ready.(i) <- false;
    mark_live t i;
    t.allocs <- t.allocs + 1;
    Some i
  end

(* [alloc] without the option wrapper: the slot index, or -1 when no
   register is free (the pipeline's allocation-free rename path). *)
let alloc_idx t =
  if t.free_count = 0 then begin
    t.alloc_failures <- t.alloc_failures + 1;
    -1
  end
  else if t.free_head >= t.size then
    failwith
      (Printf.sprintf
         "Regfile.alloc: free_count=%d but the free list has no free \
          register (size=%d)"
         t.free_count t.size)
  else begin
    let i = t.free_head in
    t.ready.(i) <- false;
    mark_live t i;
    t.allocs <- t.allocs + 1;
    i
  end

(* Allocate a specific register (initial architectural mapping). *)
let alloc_exact t i =
  if i < 0 || i >= t.size then invalid_arg "Regfile.alloc_exact";
  if not t.free.(i) then invalid_arg "Regfile.alloc_exact: not free";
  mark_live t i

let release t i =
  if i < 0 || i >= t.size then invalid_arg "Regfile.release";
  if t.free.(i) then invalid_arg "Regfile.release: double free";
  t.free.(i) <- true;
  t.ready.(i) <- false;
  let b = Array.unsafe_get t.bank_of i in
  let c = t.bank_live.(b) - 1 in
  t.bank_live.(b) <- c;
  if c = 0 then begin
    t.live_mask <- t.live_mask land lnot (1 lsl b);
    t.live_banks <- t.live_banks - 1
  end;
  t.free_count <- t.free_count + 1;
  if i < t.free_head then t.free_head <- i

let is_ready t i = t.ready.(i)

let mark_ready t i =
  t.ready.(i) <- true;
  t.writes <- t.writes + 1

let note_read t = t.reads <- t.reads + 1

(* Bitmask of banks holding at least one live (allocated) register; only
   these need to be powered. Maintained incrementally on the 0↔1
   transitions of [bank_live] (the invariant checker recounts both from
   the raw [free] array). *)
let banks_on_mask t = t.live_mask
let banks_on t = t.live_banks
