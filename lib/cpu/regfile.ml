(* Banked physical register file with a free list and per-bank activity
   tracking (Section 5.2.3).

   Delaying dispatch means fewer registers are live at once; banking the
   file and turning off banks holding no live register saves static power
   and the dynamic precharge of their bitlines. Allocation prefers the
   lowest-numbered free register so live registers cluster into few banks,
   maximising the number of banks that can be gated off. *)

type t = {
  size : int;
  bank_size : int;
  free : bool array;
  ready : bool array;    (* value has been produced *)
  mutable free_count : int;
  (* statistics *)
  mutable reads : int;
  mutable writes : int;
  mutable allocs : int;
  mutable alloc_failures : int;
}

let create ~size ~bank_size =
  if size <= 0 || bank_size <= 0 then invalid_arg "Regfile.create";
  {
    size;
    bank_size;
    free = Array.make size true;
    ready = Array.make size false;
    free_count = size;
    reads = 0;
    writes = 0;
    allocs = 0;
    alloc_failures = 0;
  }

let banks t = (t.size + t.bank_size - 1) / t.bank_size

let free_count t = t.free_count
let live_count t = t.size - t.free_count

(* Allocate the lowest-numbered free register; the value is not ready until
   [write] marks it so. *)
let alloc t =
  if t.free_count = 0 then begin
    t.alloc_failures <- t.alloc_failures + 1;
    None
  end
  else begin
    let rec find i =
      if i >= t.size then None
      else if t.free.(i) then Some i
      else find (i + 1)
    in
    match find 0 with
    | Some i ->
      t.free.(i) <- false;
      t.ready.(i) <- false;
      t.free_count <- t.free_count - 1;
      t.allocs <- t.allocs + 1;
      Some i
    | None ->
      (* free_count > 0 yet no free slot: the count has drifted from the
         free array — a conservation bug upstream (double release or a
         release bypassing this module). *)
      failwith
        (Printf.sprintf
           "Regfile.alloc: free_count=%d but the free list has no free \
            register (size=%d)"
           t.free_count t.size)
  end

(* Allocate a specific register (initial architectural mapping). *)
let alloc_exact t i =
  if i < 0 || i >= t.size then invalid_arg "Regfile.alloc_exact";
  if not t.free.(i) then invalid_arg "Regfile.alloc_exact: not free";
  t.free.(i) <- false;
  t.free_count <- t.free_count - 1

let release t i =
  if i < 0 || i >= t.size then invalid_arg "Regfile.release";
  if t.free.(i) then invalid_arg "Regfile.release: double free";
  t.free.(i) <- true;
  t.ready.(i) <- false;
  t.free_count <- t.free_count + 1

let is_ready t i = t.ready.(i)

let mark_ready t i =
  t.ready.(i) <- true;
  t.writes <- t.writes + 1

let note_read t = t.reads <- t.reads + 1

(* Bitmask of banks holding at least one live (allocated) register; only
   these need to be powered. *)
let banks_on_mask t =
  let nb = banks t in
  let mask = ref 0 in
  for b = 0 to nb - 1 do
    let lo = b * t.bank_size in
    let hi = min t.size (lo + t.bank_size) - 1 in
    let live = ref false in
    for i = lo to hi do
      if not t.free.(i) then live := true
    done;
    if !live then mask := !mask lor (1 lsl b)
  done;
  !mask

(* Defined as the popcount of the mask so the two views cannot drift. *)
let banks_on t =
  let m = ref (banks_on_mask t) in
  let on = ref 0 in
  while !m <> 0 do
    on := !on + (!m land 1);
    m := !m lsr 1
  done;
  !on
