(* Select/wakeup scheduler policies — the third grid axis.

   The paper holds the scheduler fixed (oldest-first select over the
   whole ring, full CAM wakeup) and varies only the software-directed
   window. This module makes that fixed point pluggable, with the two
   knobs low-power schedulers actually turn:

   - the *select scan*: how many slots the picker examines per cycle
     (oldest-first walks the whole active ring; an N-skip picker bounds
     the walk to the N slots after [head] and gives up early, trading a
     little ILP for a much shorter selection scan);
   - the *wakeup CAM*: which waiting operands pay a comparison per
     broadcast (load-delay tracking predicts the ready cycle of every
     operand fed by a fixed-latency producer and suppresses its CAM
     port, leaving only load-fed operands — whose latency is
     unpredictable — on the match path; Diavastos & Carlson,
     arXiv 2109.03112).

   [Nskip] genuinely trades ILP for scan energy: the picker considers
   only the N slots after [head] (holes and waiting entries included),
   so ready instructions beyond the bound wait for the head region to
   drain and small N costs cycles — measurably so at N below the issue
   width, see the policy grid — while the scan integral drops by an
   order of magnitude. At N >= queue capacity the walk is exactly
   oldest-first's and the whole run is [Stats.equal] to it (pinned by a
   qcheck property). [Load_delay] is an energy-accounting change by
   construction — the predicted operand still wakes on the broadcast;
   only the CAM comparison it would have paid is counted as suppressed,
   so cycles and the committed stream are bit-identical to
   [Oldest_first] (gated by the policy grid). Timing bit-identity of
   [Oldest_first] against the pre-refactor pipeline is pinned by the
   golden grid. *)

type t =
  | Oldest_first
  | Nskip of int  (* scan at most N slots from [head], holes included *)
  | Load_delay

let oldest_first = Oldest_first

let nskip ~n =
  if n <= 0 then invalid_arg "Sched.nskip: scan bound must be positive";
  Nskip n

let load_delay = Load_delay
let default = Oldest_first

let name = function
  | Oldest_first -> "oldest_first"
  | Nskip n -> Printf.sprintf "nskip:%d" n
  | Load_delay -> "load_delay"

(* Stable string for memo keys; equals [name] (kept separate so a
   future parameterised policy can widen its key without renaming). *)
let key = name

let valid_names = [ "oldest_first"; "nskip:N"; "load_delay" ]

let of_string s =
  match s with
  | "oldest_first" -> Ok Oldest_first
  | "load_delay" -> Ok Load_delay
  | _ -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "nskip" -> (
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt arg with
      | Some n when n > 0 -> Ok (Nskip n)
      | Some n ->
        Error (Printf.sprintf "nskip scan bound must be positive (got %d)" n)
      | None -> Error (Printf.sprintf "nskip bound %S is not an integer" arg))
    | _ ->
      Error
        (Printf.sprintf "unknown policy %S (valid: %s)" s
           (String.concat ", " valid_names)))

(* Slots the select scan may examine per cycle on a queue whose active
   ring holds [active] slots. *)
let scan_bound t ~active =
  match t with
  | Oldest_first | Load_delay -> active
  | Nskip n -> min n active

(* Does this policy suppress the CAM ports of predicted-ready waiting
   operands? (Only [Load_delay]; the suppressed comparisons are counted
   in [Stats.iq_wakeups_suppressed] instead of the gated integral.) *)
let suppresses_predicted = function
  | Load_delay -> true
  | Oldest_first | Nskip _ -> false

let pp ppf t = Format.pp_print_string ppf (name t)
