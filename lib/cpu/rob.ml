(* Reorder buffer: a circular buffer of in-flight instructions committed
   in program order. The speculative frontend pushes wrong-path
   instructions (flagged with a [wp] byte) behind a mispredicted branch;
   at resolution the pipeline squashes them by popping the tail,
   youngest first, so the buffer is always a contiguous program-order
   window and only ever shrinks from its two ends: head at commit, tail
   at squash.

   Storage is flat (DESIGN.md §13): each per-entry attribute lives in its
   own unboxed array — states, the blocked-fetch flag and the wrong-path
   flag as bytes, IQ and LSQ back-pointers as ints, and the destination /
   previous-mapping registers packed into single int codes — so push,
   wakeup and commit touch no option or record allocations. The [dyns]
   array holds the dynamic-instruction records themselves (produced once
   per instruction by the functional frontend); a free slot holds
   [dummy_dyn]. *)

open Sdiq_isa

type state =
  | Dispatched
  | Issued
  | Completed

type dest =
  | No_dest
  | Int_dest of int (* physical register *)
  | Fp_dest of int

(* Destinations packed into one int: 0 = none, odd = int register
   [code asr 1], even nonzero = fp register [(code asr 1) - 1]... kept
   simpler: int as [2p + 1], fp as [2p + 2]. *)
let encode_dest = function
  | No_dest -> 0
  | Int_dest p -> (2 * p) + 1
  | Fp_dest p -> (2 * p) + 2

let decode_dest = function
  | 0 -> No_dest
  | c when c land 1 = 1 -> Int_dest (c asr 1)
  | c -> Fp_dest ((c asr 1) - 1)

let dummy_dyn : Exec.dyn =
  {
    Exec.sn = -1;
    pc = -1;
    instr = Instr.make Opcode.Halt;
    next_pc = -1;
    taken = false;
    addr = 0;
  }

type t = {
  size : int;
  dyns : Exec.dyn array;
  states : Bytes.t;       (* 0 Dispatched, 1 Issued, 2 Completed *)
  dest_codes : int array;
  old_codes : int array;  (* previous mapping, freed at commit *)
  iq_slots : int array;   (* -1 once issued or never queued *)
  lsq_slots : int array;  (* -1 for non-memory instructions *)
  blocked : Bytes.t;      (* fetch is stalled on this instruction *)
  wp : Bytes.t;           (* fetched down the wrong path *)
  mutable head : int;
  mutable tail : int;
  mutable count : int;
  mutable stores : int;  (* in-flight store entries, for the forward scan *)
}

let create ~size =
  if size <= 0 then invalid_arg "Rob.create";
  {
    size;
    dyns = Array.make size dummy_dyn;
    states = Bytes.make size '\000';
    dest_codes = Array.make size 0;
    old_codes = Array.make size 0;
    iq_slots = Array.make size (-1);
    lsq_slots = Array.make size (-1);
    blocked = Bytes.make size '\000';
    wp = Bytes.make size '\000';
    head = 0;
    tail = 0;
    count = 0;
    stores = 0;
  }

let is_full t = t.count = t.size
let is_empty t = t.count = 0
let occupancy t = t.count

(* --- flat accessors ----------------------------------------------------- *)

let dyn t idx = Array.unsafe_get t.dyns idx

let state t idx : state =
  match Bytes.unsafe_get t.states idx with
  | '\000' -> Dispatched
  | '\001' -> Issued
  | _ -> Completed

let set_state t idx (s : state) =
  Bytes.unsafe_set t.states idx
    (match s with Dispatched -> '\000' | Issued -> '\001' | Completed -> '\002')

let is_completed t idx = Bytes.unsafe_get t.states idx = '\002'

(* Raw destination codes for the hot path; [decode_dest] recovers the
   typed view for observers. *)
let dest_code t idx = Array.unsafe_get t.dest_codes idx
let old_code t idx = Array.unsafe_get t.old_codes idx
let dest_of t idx = decode_dest (dest_code t idx)
let old_phys_of t idx = decode_dest (old_code t idx)

let iq_slot t idx = Array.unsafe_get t.iq_slots idx
let set_iq_slot t idx s = Array.unsafe_set t.iq_slots idx s

let lsq_slot t idx = Array.unsafe_get t.lsq_slots idx
let set_lsq_slot t idx s = Array.unsafe_set t.lsq_slots idx s

let blocked_fetch t idx = Bytes.unsafe_get t.blocked idx <> '\000'

let set_blocked_fetch t idx b =
  Bytes.unsafe_set t.blocked idx (if b then '\001' else '\000')

let is_wp t idx = Bytes.unsafe_get t.wp idx <> '\000'

(* Allocate the tail entry; returns its index. [push_codes] is the
   allocation-free form taking pre-encoded destination codes. *)
let push_codes t ~dyn ~dest_code ~old_code ~iq_slot ~wp =
  if is_full t then invalid_arg "Rob.push: full";
  let idx = t.tail in
  Array.unsafe_set t.dyns idx dyn;
  Bytes.unsafe_set t.states idx '\000';
  Array.unsafe_set t.dest_codes idx dest_code;
  Array.unsafe_set t.old_codes idx old_code;
  Array.unsafe_set t.iq_slots idx iq_slot;
  Array.unsafe_set t.lsq_slots idx (-1);
  Bytes.unsafe_set t.blocked idx '\000';
  Bytes.unsafe_set t.wp idx (if wp then '\001' else '\000');
  t.tail <- (if t.tail + 1 = t.size then 0 else t.tail + 1);
  t.count <- t.count + 1;
  if Instr.is_store dyn.Exec.instr then t.stores <- t.stores + 1;
  idx

let push t ~dyn ~dest ~old_phys ~iq_slot =
  push_codes t ~dyn ~dest_code:(encode_dest dest)
    ~old_code:(encode_dest old_phys) ~iq_slot ~wp:false

(* Commit primitives for the hot loop: test the head, read its index,
   pop it — without a per-commit closure. *)
let head_is_completed t = t.count > 0 && is_completed t t.head
let head_index t = t.head

let pop_head t =
  let idx = t.head in
  if Instr.is_store (Array.unsafe_get t.dyns idx).Exec.instr then
    t.stores <- t.stores - 1;
  Array.unsafe_set t.dyns idx dummy_dyn;
  t.head <- (if t.head + 1 = t.size then 0 else t.head + 1);
  t.count <- t.count - 1

(* Pop the head entry if it has completed; [f] consumes its index (the
   entry is still intact during the call). Returns true when an
   instruction was committed. *)
let try_commit t f =
  if head_is_completed t then begin
    f t.head;
    pop_head t;
    true
  end
  else false

(* Squash primitives: the youngest in-flight entry (the one just below
   the tail pointer) and its removal. The pipeline pops wrong-path
   entries youngest-first, undoing each rename as it goes, so the map
   and free lists rewind in exactly the reverse of dispatch order. *)
let tail_index t =
  if t.count = 0 then invalid_arg "Rob.tail_index: empty";
  if t.tail = 0 then t.size - 1 else t.tail - 1

let pop_tail t =
  let idx = tail_index t in
  if Instr.is_store (Array.unsafe_get t.dyns idx).Exec.instr then
    t.stores <- t.stores - 1;
  Array.unsafe_set t.dyns idx dummy_dyn;
  Bytes.unsafe_set t.wp idx '\000';
  t.tail <- idx;
  t.count <- t.count - 1

(* Iterate over in-flight entry indices from oldest to youngest. *)
let iter_in_flight t f =
  let pos = ref t.head in
  for _ = 1 to t.count do
    f !pos;
    pos := (if !pos + 1 = t.size then 0 else !pos + 1)
  done

(* Youngest in-flight entry older than [idx] that is a store to [addr];
   -1 when none. Walks backwards from [idx] toward the head so the first
   match is the youngest — equivalent to scanning every older entry and
   keeping the last match, but with early exit. *)
let youngest_older_store t idx addr =
  if t.stores = 0 then -1
  else begin
  let res = ref (-1) in
  let pos = ref idx in
  let steps =
    ref
      (let d = idx - t.head in
       if d < 0 then d + t.size else d)
  in
  while !res < 0 && !steps > 0 do
    pos := (if !pos = 0 then t.size - 1 else !pos - 1);
    decr steps;
    let d = Array.unsafe_get t.dyns !pos in
    if d.Exec.addr = addr && Instr.is_store d.Exec.instr then res := !pos
  done;
  !res
  end

(* Is [a] older than [b] in program order? Valid for in-flight indices. *)
let older t a b =
  let age idx =
    let d = idx - t.head in
    if d < 0 then d + t.size else d
  in
  age a < age b
