(** Banked physical register file with a free list (Section 5.2.3).
    Allocation prefers the lowest-numbered free register so live values
    cluster into few banks, maximising how many banks can be gated off. *)

type t = {
  size : int;
  bank_size : int;
  free : bool array;
  ready : bool array;
  bank_live : int array;
      (** live registers per bank, maintained incrementally *)
  bank_of : int array;  (** register → bank, precomputed *)
  mutable live_mask : int;  (** bit [b] set iff [bank_live.(b) > 0] *)
  mutable live_banks : int;  (** popcount of [live_mask], incremental *)
  mutable free_head : int;
      (** lowest-numbered free register; [size] when exhausted *)
  mutable free_count : int;
  mutable reads : int;
  mutable writes : int;
  mutable allocs : int;
  mutable alloc_failures : int;
}

val create : size:int -> bank_size:int -> t
val banks : t -> int
val free_count : t -> int
val live_count : t -> int

(** Lowest-numbered free register, marked not-ready; [None] when the
    file is exhausted. *)
val alloc : t -> int option

(** [alloc] without the option wrapper: the register, or [-1] when none
    is free (the pipeline's allocation-free rename path). *)
val alloc_idx : t -> int

(** Claim a specific register (initial architectural mapping). *)
val alloc_exact : t -> int -> unit

(** Raises [Invalid_argument] on a double free. *)
val release : t -> int -> unit

val is_ready : t -> int -> bool

(** Mark the value produced (counts as a write). *)
val mark_ready : t -> int -> unit

val note_read : t -> unit

(** Banks holding at least one live register. *)
val banks_on : t -> int

(** Bitmask of the powered banks (bit [b] set iff bank [b] holds a live
    register); [banks_on] is its popcount. *)
val banks_on_mask : t -> int
