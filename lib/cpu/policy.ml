(* Issue-queue resizing policies.

   [Unlimited] — the baseline 80-entry queue.

   [Software]  — the paper's technique: the compiler's [max_new_range]
   value (delivered by special NOOPs or instruction tags) limits the slot
   span between [new_head] and [tail]. Purely reactive hardware: two
   pointer comparisons, no heuristics.

   [Abella]    — the hardware adaptive scheme of Abella & González
   (IqRob64) the paper compares against: every [window] cycles the queue
   limit shrinks by one bank when occupancy leaves headroom, and grows
   when dispatch was throttled by the limit. The inevitable sensing lag
   is the point of comparison: "there is inevitably a delay in sensing
   rapid phase changes and adjusting accordingly" (Section 1). *)

type abella = {
  window : int;
  bank : int;
  min_limit : int;
  max_limit : int;
  grow_threshold : float;   (* fraction of window cycles throttled *)
  shrink_headroom : int;    (* shrink when avg occupancy below limit-this *)
  mutable limit : int;
  mutable cycle_in_window : int;
  mutable occupancy_sum : int;
  mutable throttled_cycles : int;
  mutable resizes : int;
}

type software = {
  mutable max_new_range : int;
  mutable region_pc : int;
      (* PC of the annotation that opened the current region: a loop-header
         annotation re-encountered on every iteration must not reopen the
         region (the window slides via new_head instead) *)
}

type t =
  | Unlimited
  | Software of software
  | Abella of abella

let unlimited = Unlimited

(* The software policy starts wide open; the first annotation narrows it. *)
let software ?(initial = max_int) () =
  Software { max_new_range = initial; region_pc = -1 }

let abella ?(window = 1024) ?(bank = 8) ?(min_limit = 8) ?(max_limit = 80)
    ?(grow_threshold = 0.06) ?(shrink_headroom = 4) () =
  Abella
    {
      window;
      bank;
      min_limit;
      max_limit;
      grow_threshold;
      shrink_headroom;
      limit = max_limit;
      cycle_in_window = 0;
      occupancy_sum = 0;
      throttled_cycles = 0;
      resizes = 0;
    }

let name = function
  | Unlimited -> "unlimited"
  | Software _ -> "software"
  | Abella _ -> "abella"

(* May one more instruction be dispatched this cycle? The software window
   is capped at [size - 1] slots: if the region ever wrapped the whole
   ring, [new_head] would coincide with [tail] and could no longer slide
   forward (the hardware equivalent of the classic full/empty pointer
   ambiguity in a circular buffer). *)
let allows t (iq : Iq.t) =
  if Iq.is_full iq then false
  else
    match t with
    | Unlimited -> true
    | Software s ->
      Iq.new_region_span iq < min s.max_new_range (Iq.size iq - 1)
    | Abella a -> Iq.occupancy iq < a.limit

(* A compiler annotation arrived at dispatch: a new region starts and the
   allowance becomes [value]. A repeat of the annotation that opened the
   current region (a loop header seen again) is ignored — within a loop
   the window slides with [new_head] rather than restarting. Other
   policies ignore annotations. *)
let on_annotation t (iq : Iq.t) ~pc ~value =
  match t with
  | Software s ->
    if pc <> s.region_pc then begin
      Iq.start_new_region iq;
      s.max_new_range <- max 1 value;
      s.region_pc <- pc
    end
  | Unlimited | Abella _ -> ()

(* Per-cycle bookkeeping; [throttled] is true when dispatch stopped this
   cycle because of the policy (not because the queue itself was full).
   [resize_ok] is false while a wrong-path episode is open: the squash
   rewinds the ring pointers to the episode boundary, which is only
   meaningful under the modulus they were recorded with, so the physical
   resize is deferred (one more increment of the scheme's inherent
   adjustment lag); sensing continues regardless. *)
let end_cycle t (iq : Iq.t) ?(resize_ok = true) ~throttled () =
  match t with
  | Unlimited | Software _ -> ()
  | Abella a ->
    a.cycle_in_window <- a.cycle_in_window + 1;
    a.occupancy_sum <- a.occupancy_sum + Iq.occupancy iq;
    if throttled then a.throttled_cycles <- a.throttled_cycles + 1;
    if a.cycle_in_window >= a.window then begin
      let avg_occ =
        float_of_int a.occupancy_sum /. float_of_int a.window
      in
      let throttle_frac =
        float_of_int a.throttled_cycles /. float_of_int a.window
      in
      let old = a.limit in
      if throttle_frac > a.grow_threshold then
        a.limit <- min a.max_limit (a.limit + a.bank)
      else if avg_occ < float_of_int (a.limit - a.shrink_headroom) then
        a.limit <- max a.min_limit (a.limit - a.bank);
      if a.limit <> old then a.resizes <- a.resizes + 1;
      a.cycle_in_window <- 0;
      a.occupancy_sum <- 0;
      a.throttled_cycles <- 0
    end;
    (* Apply the decided size to the hardware as soon as it is safe; the
       retry-until-safe delay is part of the scheme's adjustment lag. *)
    if resize_ok then ignore (Iq.resize iq a.limit)

let current_limit t (iq : Iq.t) =
  match t with
  | Unlimited -> Iq.size iq
  | Software s -> s.max_new_range
  | Abella a -> a.limit
