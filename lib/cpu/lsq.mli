(** Load/store queue: program-ordered ring with speculative allocation
    at dispatch, age-ordered store-to-load forwarding, head reclaim at
    commit and tail reclaim at squash (arXiv 2311.08198 discipline). *)

type t

val create : size:int -> t
val is_full : t -> bool
val count : t -> int
val size : t -> int

(** Lifetime allocations, wrong-path included (power accounting). *)
val allocs : t -> int

val rob_idx : t -> int -> int
val addr : t -> int -> int
val is_store : t -> int -> bool
val is_wp : t -> int -> bool

(** Allocate the tail slot for a load or store; returns the slot. *)
val push : t -> rob_idx:int -> addr:int -> is_store:bool -> wp:bool -> int

(** [youngest_older_store t slot a] — ROB index of the youngest store
    older than the entry at [slot] with address [a]; -1 when none. *)
val youngest_older_store : t -> int -> int -> int

(** Reclaim the head at commit; [rob_idx] must own the head entry. *)
val pop_head : t -> rob_idx:int -> unit

(** Reclaim the tail at squash; [rob_idx] must own the tail entry. *)
val pop_tail : t -> rob_idx:int -> unit

(** Iterate live entries oldest to youngest: [f slot rob_idx]. *)
val iter_oldest_first : t -> (int -> int -> unit) -> unit
