(* Second round of analysis tests: per-path loop analysis, annotation
   placement rules (loop headers, re-entry blocks, back-edge bypass),
   value clamping, and the ablation module. *)

open Sdiq_isa
module Procedure = Sdiq_core.Procedure
module Loop_need = Sdiq_core.Loop_need
module Annotate = Sdiq_core.Annotate
module Options = Sdiq_core.Options

let r = Reg.int

let assemble build =
  let b = Asm.create () in
  build b;
  Asm.assemble b ~entry:"main"

let cfg_of prog =
  Sdiq_cfg.Cfg.build prog (Option.get (Prog.find_proc prog "main"))

(* A loop with a rare slow side: the hot path must dominate the verdict. *)
let rare_div_loop () =
  assemble (fun b ->
      let p = Asm.proc b "main" in
      Asm.li p (r 1) 100;
      Asm.label p "loop";
      Asm.load p (r 2) (r 9) 0;
      Asm.load p (r 3) (r 9) 4;
      Asm.mul p (r 4) (r 2) (r 3);
      Asm.add p (r 5) (r 5) (r 4);
      Asm.andi p (r 6) (r 1) 63;
      Asm.bne p (r 6) Reg.zero "no_div";
      Asm.ori p (r 7) (r 2) 1;
      Asm.div p (r 5) (r 5) (r 7);
      Asm.label p "no_div";
      Asm.addi p (r 9) (r 9) 8;
      Asm.addi p (r 1) (r 1) (-1);
      Asm.bne p (r 1) Reg.zero "loop";
      Asm.halt p)

let test_loop_paths_enumerated () =
  let prog = rare_div_loop () in
  let cfg = cfg_of prog in
  let loops = Sdiq_cfg.Loops.find cfg in
  Alcotest.(check int) "one loop" 1 (List.length loops);
  let paths = Loop_need.loop_paths cfg (List.hd loops) in
  Alcotest.(check int) "two paths (with and without the div)" 2
    (List.length paths)

let test_hot_path_dominates_loop_need () =
  let prog = rare_div_loop () in
  let cfg = cfg_of prog in
  let regions = Sdiq_cfg.Regions.decompose cfg in
  let loop = List.hd (Sdiq_cfg.Loops.find cfg) in
  let with_paths = Loop_need.analyze cfg regions loop in
  (* The flattened-body analysis alone (II inflated by the div): *)
  let flat =
    Loop_need.analyze_body
      (Loop_need.body_of_region cfg regions (Sdiq_cfg.Regions.Loop loop))
  in
  Alcotest.(check bool) "per-path need >= flattened need" true
    (with_paths.Loop_need.need >= flat.Loop_need.need)

let test_paths_bounded () =
  (* A loop with 8 sequential diamonds has 2^8 paths; the enumeration must
     stop at its bound rather than explode. *)
  let prog =
    assemble (fun b ->
        let p = Asm.proc b "main" in
        Asm.li p (r 1) 10;
        Asm.label p "loop";
        for k = 0 to 7 do
          let thn = Printf.sprintf "t%d" k and join = Printf.sprintf "j%d" k in
          Asm.andi p (r 2) (r 1) (1 lsl k);
          Asm.beq p (r 2) Reg.zero thn;
          Asm.addi p (r 3) (r 3) 1;
          Asm.jmp p join;
          Asm.label p thn;
          Asm.addi p (r 4) (r 4) 1;
          Asm.label p join;
          Asm.nop p
        done;
        Asm.addi p (r 1) (r 1) (-1);
        Asm.bne p (r 1) Reg.zero "loop";
        Asm.halt p)
  in
  let cfg = cfg_of prog in
  let loop = List.hd (Sdiq_cfg.Loops.find cfg) in
  let paths = Loop_need.loop_paths ~max_paths:64 cfg loop in
  Alcotest.(check bool) "bounded" true (List.length paths <= 64);
  Alcotest.(check bool) "non-empty" true (List.length paths >= 1)

(* --- annotation placement --- *)

let nested_loop_with_call () =
  assemble (fun b ->
      let p = Asm.proc b "main" in
      Asm.li p (r 1) 10;
      Asm.label p "outer";
      Asm.li p (r 2) 10;
      Asm.label p "inner";
      Asm.addi p (r 2) (r 2) (-1);
      Asm.bne p (r 2) Reg.zero "inner";
      Asm.call p "work";
      Asm.addi p (r 1) (r 1) (-1);
      Asm.bne p (r 1) Reg.zero "outer";
      Asm.halt p;
      let q = Asm.proc b "work" in
      Asm.addi q (r 3) (r 3) 1;
      Asm.ret q)

let test_loop_reentry_blocks_annotated () =
  let prog = nested_loop_with_call () in
  let anns = Procedure.analyze_program prog in
  let annotated = List.map (fun (a : Procedure.annotation) -> a.addr) anns in
  (* After the inner loop exits (the call block, address 4) and after the
     call returns (address 5), the outer loop's value must be
     re-established. *)
  Alcotest.(check bool) "post-inner block annotated" true
    (List.mem 4 annotated);
  Alcotest.(check bool) "post-call block annotated" true
    (List.mem 5 annotated)

let test_loop_header_annotation_has_span () =
  let prog = nested_loop_with_call () in
  let anns = Procedure.analyze_program prog in
  let with_span =
    List.filter (fun (a : Procedure.annotation) -> a.loop_span <> None) anns
  in
  Alcotest.(check int) "two loops carry spans" 2 (List.length with_span)

let test_back_edges_bypass_loop_noop () =
  let prog = nested_loop_with_call () in
  let annotated, _ = Annotate.noop prog in
  (* Count dynamic Iqset executions: with back-edge bypass, the inner
     header's NOOP runs once per outer iteration (10), not once per inner
     iteration (100). *)
  let st = Exec.create annotated in
  let iqsets = ref 0 in
  let rec loop () =
    match Exec.step st with
    | None -> ()
    | Some d ->
      if d.Exec.instr.Instr.op = Opcode.Iqset then incr iqsets;
      loop ()
  in
  loop ();
  Alcotest.(check bool)
    (Printf.sprintf "iqset executions bounded (%d)" !iqsets)
    true
    (!iqsets < 60)

let test_clamp_minimum_two () =
  (* A pure serial chain block must still get two slots (dispatch must
     pipeline with issue, as in Figure 1(d)). *)
  let prog =
    assemble (fun b ->
        let p = Asm.proc b "main" in
        Asm.addi p (r 1) (r 1) 1;
        Asm.addi p (r 1) (r 1) 1;
        Asm.addi p (r 1) (r 1) 1;
        Asm.halt p)
  in
  let anns = Procedure.analyze_program prog in
  List.iter
    (fun (a : Procedure.annotation) ->
      Alcotest.(check bool) "at least 2" true (a.value >= 2))
    anns

let test_improved_summary_exit_pressure () =
  let prog =
    assemble (fun b ->
        let p = Asm.proc b "main" in
        Asm.call p "muls";
        Asm.halt p;
        let q = Asm.proc b "muls" in
        Asm.mul q (r 2) (r 3) (r 4);
        Asm.mul q (r 5) (r 6) (r 7);
        Asm.ret q)
  in
  let callee = Option.get (Prog.find_proc prog "muls") in
  let s = Procedure.summarize prog callee in
  Alcotest.(check bool) "multiplier pressure recorded" true
    (s.Procedure.exit_pressure Fu.Int_mul >= 2);
  Alcotest.(check bool) "no fp pressure" true
    (s.Procedure.exit_pressure Fu.Fp_alu = 0)

let test_annotation_values_sorted_addresses () =
  let prog = nested_loop_with_call () in
  let anns = Procedure.analyze_program prog in
  let addrs = List.map (fun (a : Procedure.annotation) -> a.addr) anns in
  Alcotest.(check (list int)) "sorted" (List.sort compare addrs) addrs

(* --- ablations module --- *)

let test_ablation_studies_generate () =
  let benches = [ Sdiq_workloads.W_crafty.build ~outer:2_000 () ] in
  let studies =
    [
      Sdiq_harness.Ablations.delivery ~budget:5_000 benches;
      Sdiq_harness.Ablations.slack ~budget:5_000 ~values:[ 0; 8 ] benches;
      Sdiq_harness.Ablations.load_latency ~budget:5_000 ~values:[ 2; 8 ]
        benches;
    ]
  in
  List.iter
    (fun (s : Sdiq_harness.Ablations.study) ->
      Alcotest.(check int)
        (s.Sdiq_harness.Ablations.id ^ " one row")
        1
        (List.length s.Sdiq_harness.Ablations.rows);
      List.iter
        (fun (row : Sdiq_harness.Ablations.row) ->
          List.iter
            (fun (_, v) ->
              Alcotest.(check bool) "finite" true (Float.is_finite v))
            row.Sdiq_harness.Ablations.points)
        s.Sdiq_harness.Ablations.rows)
    studies

let test_ablation_bank_granularity_monotone () =
  let benches = [ Sdiq_workloads.W_crafty.build ~outer:3_000 () ] in
  let s = Sdiq_harness.Ablations.bank_granularity ~budget:8_000 benches in
  match s.Sdiq_harness.Ablations.rows with
  | [ row ] -> (
    match row.Sdiq_harness.Ablations.points with
    | [ (_, fine); (_, mid); (_, coarse) ] ->
      Alcotest.(check bool) "finer banks gate at least as much" true
        (fine >= mid -. 1. && mid >= coarse -. 1.)
    | _ -> Alcotest.fail "three points expected")
  | _ -> Alcotest.fail "one row expected"

let suite =
  [
    Alcotest.test_case "loop paths enumerated" `Quick
      test_loop_paths_enumerated;
    Alcotest.test_case "hot path dominates loop need" `Quick
      test_hot_path_dominates_loop_need;
    Alcotest.test_case "path enumeration bounded" `Quick test_paths_bounded;
    Alcotest.test_case "loop re-entry blocks annotated" `Quick
      test_loop_reentry_blocks_annotated;
    Alcotest.test_case "loop header has span" `Quick
      test_loop_header_annotation_has_span;
    Alcotest.test_case "back edges bypass loop noop" `Quick
      test_back_edges_bypass_loop_noop;
    Alcotest.test_case "clamp minimum two" `Quick test_clamp_minimum_two;
    Alcotest.test_case "improved summary exit pressure" `Quick
      test_improved_summary_exit_pressure;
    Alcotest.test_case "annotations sorted" `Quick
      test_annotation_values_sorted_addresses;
    Alcotest.test_case "ablation studies generate" `Quick
      test_ablation_studies_generate;
    Alcotest.test_case "bank granularity monotone" `Quick
      test_ablation_bank_granularity_monotone;
  ]
