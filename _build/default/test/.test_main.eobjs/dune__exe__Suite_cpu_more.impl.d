test/suite_cpu_more.ml: Alcotest Array Asm Exec List Printf Reg Sdiq_core Sdiq_cpu Sdiq_isa Sdiq_util Sdiq_workloads
