test/suite_parallel.ml: Alcotest Float List Marshal Printf Sdiq_cpu Sdiq_harness Sdiq_workloads
