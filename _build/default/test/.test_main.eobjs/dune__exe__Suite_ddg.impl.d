test/suite_ddg.ml: Alcotest Array Instr List Opcode Reg Sdiq_ddg Sdiq_isa
