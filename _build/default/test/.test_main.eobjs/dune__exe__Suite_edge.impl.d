test/suite_edge.ml: Alcotest Asm Exec Hashtbl Instr List Opcode Option Printf Prog Reg Sdiq_cfg Sdiq_ddg Sdiq_isa Sdiq_util Sdiq_workloads Str_split String
