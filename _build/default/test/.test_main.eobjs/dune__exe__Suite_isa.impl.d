test/suite_isa.ml: Alcotest Array Asm Exec Fu Instr List Opcode Printf Prog Reg Rewrite Sdiq_isa
