test/suite_core_more.ml: Alcotest Asm Exec Float Fu Instr List Opcode Option Printf Prog Reg Sdiq_cfg Sdiq_core Sdiq_harness Sdiq_isa Sdiq_workloads
