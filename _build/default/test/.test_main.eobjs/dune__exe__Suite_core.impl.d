test/suite_core.ml: Alcotest Array Asm Exec Fu Instr List Opcode Printf Prog Reg Sdiq_core Sdiq_isa
