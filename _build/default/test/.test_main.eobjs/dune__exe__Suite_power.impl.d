test/suite_power.ml: Alcotest Sdiq_cpu Sdiq_harness Sdiq_power Sdiq_workloads
