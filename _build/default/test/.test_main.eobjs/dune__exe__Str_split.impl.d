test/str_split.ml: String
