test/suite_tools.ml: Alcotest List Sdiq_cpu Sdiq_harness Sdiq_power Sdiq_workloads String
