test/suite_cfg.ml: Alcotest Asm Hashtbl List Option Printf Prog Reg Sdiq_cfg Sdiq_isa
