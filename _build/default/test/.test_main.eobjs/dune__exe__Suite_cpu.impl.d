test/suite_cpu.ml: Alcotest Asm Exec Printf Reg Sdiq_cpu Sdiq_isa
