test/suite_harness.ml: Alcotest Float Instr List Opcode Printf Prog Sdiq_harness Sdiq_isa Sdiq_power Sdiq_workloads String
