test/suite_util.ml: Alcotest Array List Printf Rng Sdiq_util Stat
