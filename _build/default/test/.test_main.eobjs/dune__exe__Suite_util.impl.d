test/suite_util.ml: Alcotest Array List Pool Printf Rng Sdiq_util Stat
