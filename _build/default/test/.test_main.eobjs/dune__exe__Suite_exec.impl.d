test/suite_exec.ml: Alcotest Asm Exec Reg Sdiq_isa
