test/suite_workloads.ml: Alcotest Exec Instr List Opcode Option Prog Sdiq_cfg Sdiq_core Sdiq_cpu Sdiq_isa Sdiq_workloads
