test/suite_properties.ml: Array Asm Exec Gen Instr List Option Printf Prog QCheck QCheck_alcotest Reg Rewrite Sdiq_cfg Sdiq_core Sdiq_cpu Sdiq_ddg Sdiq_harness Sdiq_isa Sdiq_workloads
