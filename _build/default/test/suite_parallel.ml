(* The parallel campaign must be invisible in the results: the paper's
   figures are derived from the (benchmark x technique) table, so a
   1-domain and an N-domain [run_all] must produce byte-identical
   statistics for every pair — no figure may depend on scheduling. *)

module H = Sdiq_harness

let budget = 3_000

let benches () =
  [
    Sdiq_workloads.W_gzip.build ~outer:budget ();
    Sdiq_workloads.W_crafty.build ~outer:budget ();
    Sdiq_workloads.W_mcf.build ~outer:budget ();
  ]

let runner ~domains = H.Runner.create ~budget ~benches:(benches ()) ~domains ()

(* Byte-identical, literally: compare the marshalled representation. *)
let bytes_of_stats (s : Sdiq_cpu.Stats.t) = Marshal.to_string s []

let test_determinism_across_domains () =
  let serial = runner ~domains:1 in
  let parallel = runner ~domains:4 in
  H.Runner.run_all serial;
  H.Runner.run_all parallel;
  List.iter
    (fun name ->
      List.iter
        (fun tech ->
          let a = H.Runner.run serial name tech in
          let b = H.Runner.run parallel name tech in
          Alcotest.(check string)
            (Printf.sprintf "%s/%s byte-identical" name (H.Technique.name tech))
            (bytes_of_stats a) (bytes_of_stats b))
        H.Technique.all)
    (H.Runner.bench_names serial)

let test_campaign_stats_populated () =
  let r = runner ~domains:2 in
  Alcotest.(check bool) "no campaign before run_all" true
    (H.Runner.campaign_stats r = None);
  H.Runner.run_all r;
  match H.Runner.campaign_stats r with
  | None -> Alcotest.fail "campaign_stats expected after run_all"
  | Some c ->
    let pairs = 3 * List.length H.Technique.all in
    Alcotest.(check int) "pairs_total" pairs c.H.Runner.pairs_total;
    Alcotest.(check int) "pairs_run" pairs c.H.Runner.pairs_run;
    Alcotest.(check int) "domains_used" 2 c.H.Runner.domains_used;
    Alcotest.(check bool) "wall clock positive" true (c.H.Runner.wall_s > 0.);
    Alcotest.(check bool) "serial estimate positive" true
      (c.H.Runner.serial_estimate_s > 0.);
    Alcotest.(check bool) "speedup finite and positive" true
      (let s = H.Runner.speedup c in
       Float.is_finite s && s > 0.)

let test_run_all_idempotent () =
  let r = runner ~domains:2 in
  H.Runner.run_all r;
  let before =
    List.map (fun n -> H.Runner.run r n H.Technique.Baseline)
      (H.Runner.bench_names r)
  in
  H.Runner.run_all r;
  (* Second campaign has nothing to do and must not replace memo entries. *)
  (match H.Runner.campaign_stats r with
  | Some c -> Alcotest.(check int) "nothing re-run" 0 c.H.Runner.pairs_run
  | None -> Alcotest.fail "campaign_stats expected");
  List.iteri
    (fun i n ->
      Alcotest.(check bool)
        (n ^ " stats physically preserved")
        true
        (List.nth before i == H.Runner.run r n H.Technique.Baseline))
    (H.Runner.bench_names r)

let test_figures_match_serial () =
  (* The figure pipeline consumes the table; spot-check one end-to-end. *)
  let serial = runner ~domains:1 in
  let parallel = runner ~domains:3 in
  H.Runner.run_all serial;
  H.Runner.run_all parallel;
  let col r =
    let e = H.Experiments.fig6 r in
    (List.hd e.H.Experiments.columns).H.Experiments.per_bench
  in
  List.iter2
    (fun (n1, v1) (n2, v2) ->
      Alcotest.(check string) "same row order" n1 n2;
      Alcotest.(check (float 0.)) ("fig6 " ^ n1 ^ " identical") v1 v2)
    (col serial) (col parallel)

let suite =
  [
    Alcotest.test_case "run_all deterministic across domain counts" `Quick
      test_determinism_across_domains;
    Alcotest.test_case "campaign stats populated" `Quick
      test_campaign_stats_populated;
    Alcotest.test_case "run_all idempotent, memo preserved" `Quick
      test_run_all_idempotent;
    Alcotest.test_case "fig6 identical serial vs parallel" `Quick
      test_figures_match_serial;
  ]
