(* Property-based tests (qcheck): random programs through the whole stack.

   The generator produces small but structurally varied programs —
   straight-line arithmetic, memory traffic, a counted loop, a helper
   call — and the properties assert the invariants the paper's technique
   rests on: annotation never changes program semantics, the pipeline
   agrees with the functional executor under every policy, the wakeup
   accounting is ordered, and the analysis outputs are in range. *)

open Sdiq_isa

(* --- program generator -------------------------------------------------- *)

type op_kind =
  | K_addi of int * int * int (* dst, src, imm *)
  | K_add of int * int * int
  | K_mul of int * int * int
  | K_xor of int * int * int
  | K_load of int * int * int (* dst, base, offset *)
  | K_store of int * int * int (* base, value, offset *)

let gen_kind =
  let open QCheck.Gen in
  let reg = int_range 1 8 in
  let reg0 = int_range 0 8 in
  frequency
    [
      (4, map3 (fun d s i -> K_addi (d, s, i)) reg reg0 (int_range (-20) 20));
      (3, map3 (fun d a b -> K_add (d, a, b)) reg reg0 reg0);
      (1, map3 (fun d a b -> K_mul (d, a, b)) reg reg0 reg0);
      (2, map3 (fun d a b -> K_xor (d, a, b)) reg reg0 reg0);
      (2, map3 (fun d b o -> K_load (d, b, o * 4)) reg reg (int_range 0 63));
      (1, map3 (fun b v o -> K_store (b, v, o * 4)) reg reg (int_range 0 63));
    ]

type prog_desc = {
  prologue : op_kind list;
  loop_body : op_kind list;
  loop_count : int;
  helper_body : op_kind list;
  call_helper : bool;
}

let gen_desc =
  let open QCheck.Gen in
  let body n = list_size (int_range 1 n) gen_kind in
  map
    (fun (prologue, loop_body, loop_count, helper_body, call_helper) ->
      { prologue; loop_body; loop_count; helper_body; call_helper })
    (tup5 (body 12) (body 10) (int_range 1 25) (body 6) bool)

let emit p kind =
  let r = Reg.int in
  match kind with
  | K_addi (d, s, i) -> Asm.addi p (r d) (r s) i
  | K_add (d, a, b) -> Asm.add p (r d) (r a) (r b)
  | K_mul (d, a, b) -> Asm.mul p (r d) (r a) (r b)
  | K_xor (d, a, b) -> Asm.xor p (r d) (r a) (r b)
  | K_load (d, b, o) ->
    (* Keep addresses positive and bounded: mask the base first. *)
    Asm.andi p (r b) (r b) 4095;
    Asm.load p (r d) (r b) o
  | K_store (b, v, o) ->
    Asm.andi p (r b) (r b) 4095;
    Asm.store p (r b) (r v) o

let build_program desc =
  let r = Reg.int in
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  (* Seed registers deterministically so arithmetic has material. *)
  for i = 1 to 8 do
    Asm.li p (r i) (i * 37)
  done;
  List.iter (emit p) desc.prologue;
  Asm.li p (r 9) desc.loop_count;
  Asm.label p "loop";
  List.iter (emit p) desc.loop_body;
  if desc.call_helper then Asm.call p "helper";
  Asm.addi p (r 9) (r 9) (-1);
  Asm.bne p (r 9) Reg.zero "loop";
  (* Publish the architectural state. *)
  for i = 1 to 8 do
    Asm.store p Reg.zero (r i) (8000 + (i * 4))
  done;
  Asm.halt p;
  let q = Asm.proc b "helper" in
  List.iter (emit q) desc.helper_body;
  Asm.ret q;
  Asm.assemble b ~entry:"main"

let arbitrary_prog =
  QCheck.make ~print:(fun d ->
      Printf.sprintf "prologue=%d loop=%dx%d helper=%b"
        (List.length d.prologue) (List.length d.loop_body) d.loop_count
        d.call_helper)
    gen_desc

(* Final architectural fingerprint of a functional run. *)
let functional_result prog =
  let st = Exec.create prog in
  let steps = Exec.run ~max_steps:500_000 st in
  let regs = List.init 8 (fun i -> Exec.peek st (8000 + ((i + 1) * 4))) in
  (steps, regs)

let pipeline_result ?policy prog =
  let t = Sdiq_cpu.Pipeline.create ?policy prog in
  let stats = Sdiq_cpu.Pipeline.run ~max_cycles:3_000_000 t in
  let regs =
    List.init 8 (fun i -> Exec.peek t.Sdiq_cpu.Pipeline.exec (8000 + ((i + 1) * 4)))
  in
  (stats, regs)

(* --- properties --------------------------------------------------------- *)

let count = 40

let prop_annotation_preserves_semantics =
  QCheck.Test.make ~count ~name:"noop annotation preserves semantics"
    arbitrary_prog (fun desc ->
      let prog = build_program desc in
      let annotated, _ = Sdiq_core.Annotate.noop prog in
      let _, r1 = functional_result prog in
      let _, r2 = functional_result annotated in
      r1 = r2)

let prop_tagging_preserves_semantics =
  QCheck.Test.make ~count ~name:"tagging preserves semantics" arbitrary_prog
    (fun desc ->
      let prog = build_program desc in
      let tagged, _ = Sdiq_core.Annotate.extension prog in
      let _, r1 = functional_result prog in
      let _, r2 = functional_result tagged in
      r1 = r2)

let prop_pipeline_matches_functional =
  QCheck.Test.make ~count ~name:"pipeline matches functional execution"
    arbitrary_prog (fun desc ->
      let prog = build_program desc in
      let _, expected = functional_result prog in
      let _, got = pipeline_result prog in
      got = expected)

let prop_software_policy_correct_and_live =
  QCheck.Test.make ~count ~name:"software policy: same result, no deadlock"
    arbitrary_prog (fun desc ->
      let prog = build_program desc in
      let annotated, _ = Sdiq_core.Annotate.noop prog in
      let _, expected = functional_result prog in
      let _, got =
        pipeline_result ~policy:(Sdiq_cpu.Policy.software ()) annotated
      in
      got = expected)

let prop_abella_policy_correct_and_live =
  QCheck.Test.make ~count ~name:"abella policy: same result, no deadlock"
    arbitrary_prog (fun desc ->
      let prog = build_program desc in
      let _, expected = functional_result prog in
      let _, got = pipeline_result ~policy:(Sdiq_cpu.Policy.abella ()) prog in
      got = expected)

let prop_analysis_values_in_range =
  QCheck.Test.make ~count ~name:"annotation values within [2, 80]"
    arbitrary_prog (fun desc ->
      let prog = build_program desc in
      let anns = Sdiq_core.Procedure.analyze_program prog in
      anns <> []
      && List.for_all
           (fun (a : Sdiq_core.Procedure.annotation) ->
             a.value >= 2 && a.value <= 80)
           anns)

let prop_wakeup_ordering =
  QCheck.Test.make ~count ~name:"gated <= nonEmpty <= naive wakeups"
    arbitrary_prog (fun desc ->
      let prog = build_program desc in
      let stats, _ = pipeline_result prog in
      stats.Sdiq_cpu.Stats.iq_wakeups_gated
      <= stats.Sdiq_cpu.Stats.iq_wakeups_nonempty
      && stats.Sdiq_cpu.Stats.iq_wakeups_nonempty
         <= stats.Sdiq_cpu.Stats.iq_wakeups_naive)

let prop_software_reduces_or_preserves_wakeups =
  QCheck.Test.make ~count:25
    ~name:"software technique never increases gated wakeups materially"
    arbitrary_prog (fun desc ->
      let prog = build_program desc in
      let annotated, _ = Sdiq_core.Annotate.extension prog in
      let base, _ = pipeline_result prog in
      let tech, _ =
        pipeline_result ~policy:(Sdiq_cpu.Policy.software ()) annotated
      in
      (* Identical committed work; the window can only remove waiting
         operands from the queue. Tiny timing wobbles allowed. *)
      float_of_int tech.Sdiq_cpu.Stats.iq_wakeups_gated
      <= (1.05 *. float_of_int base.Sdiq_cpu.Stats.iq_wakeups_gated) +. 200.)

let prop_strip_insert_roundtrip =
  QCheck.Test.make ~count ~name:"strip (insert_iqsets p) ~ p" arbitrary_prog
    (fun desc ->
      let prog = build_program desc in
      let annotated, _ = Sdiq_core.Annotate.noop prog in
      let stripped = Rewrite.strip annotated in
      Prog.length stripped = Prog.length prog
      && Array.for_all2
           (fun (a : Instr.t) (b : Instr.t) ->
             a.op = b.op && a.imm = b.imm && a.target = b.target)
           stripped.Prog.code prog.Prog.code)

let prop_pseudo_iq_respects_deps =
  QCheck.Test.make ~count ~name:"pseudo-IQ schedule respects dependences"
    arbitrary_prog (fun desc ->
      let prog = build_program desc in
      let proc = Option.get (Prog.find_proc prog "main") in
      let cfg = Sdiq_cfg.Cfg.build prog proc in
      let blk = Sdiq_cfg.Cfg.entry_block cfg in
      let instrs = Array.of_list (Sdiq_cfg.Cfg.instrs cfg blk) in
      let res = Sdiq_core.Pseudo_iq.analyze instrs in
      let g = Sdiq_ddg.Ddg.build instrs in
      res.Sdiq_core.Pseudo_iq.need >= 1
      && res.Sdiq_core.Pseudo_iq.need <= Array.length instrs
      && List.for_all
           (fun (e : Sdiq_ddg.Ddg.edge) ->
             res.Sdiq_core.Pseudo_iq.issue_cycle.(e.dst)
             > res.Sdiq_core.Pseudo_iq.issue_cycle.(e.src))
           (Sdiq_ddg.Ddg.edges g))

let prop_loop_schedule_sane =
  QCheck.Test.make ~count ~name:"loop schedule: II >= 1, need in range"
    arbitrary_prog (fun desc ->
      let body =
        build_program desc |> fun prog ->
        let proc = Option.get (Prog.find_proc prog "main") in
        let cfg = Sdiq_cfg.Cfg.build prog proc in
        Array.of_list
          (Sdiq_cfg.Cfg.instrs cfg (Sdiq_cfg.Cfg.entry_block cfg))
      in
      let g = Sdiq_ddg.Ddg.of_loop_body body in
      let sch = Sdiq_ddg.Cds.schedule g in
      let need = Sdiq_ddg.Cds.iq_need ~cap:80 g sch in
      sch.Sdiq_ddg.Cds.ii >= 1
      && need >= 1 && need <= 80
      && Array.for_all (fun s -> s >= 0) sch.Sdiq_ddg.Cds.start)

let prop_runner_memo_stable_across_parallel =
  (* For random small budgets, memoisation must return physically-equal
     stats on repeat calls — and a parallel run_all in between must not
     displace entries already in the table. *)
  QCheck.Test.make ~count:6
    ~name:"runner memoisation physically stable across parallel run_all"
    QCheck.(make ~print:string_of_int Gen.(int_range 500 3_000))
    (fun budget ->
      let benches =
        [
          Sdiq_workloads.W_gzip.build ~outer:budget ();
          Sdiq_workloads.W_crafty.build ~outer:budget ();
        ]
      in
      let r = Sdiq_harness.Runner.create ~budget ~benches ~domains:2 () in
      let tech = Sdiq_harness.Technique.Extension in
      let before = Sdiq_harness.Runner.run r "gzip" tech in
      let repeat = Sdiq_harness.Runner.run r "gzip" tech in
      Sdiq_harness.Runner.run_all r;
      let after = Sdiq_harness.Runner.run r "gzip" tech in
      before == repeat && before == after)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_runner_memo_stable_across_parallel;
      prop_annotation_preserves_semantics;
      prop_tagging_preserves_semantics;
      prop_pipeline_matches_functional;
      prop_software_policy_correct_and_live;
      prop_abella_policy_correct_and_live;
      prop_analysis_values_in_range;
      prop_wakeup_ordering;
      prop_software_reduces_or_preserves_wakeups;
      prop_strip_insert_roundtrip;
      prop_pseudo_iq_respects_deps;
      prop_loop_schedule_sane;
    ]
