(* Tests for the workload suite: every benchmark assembles, runs to
   completion functionally, is deterministic, and has the character its
   SPECint namesake is chosen for. *)

open Sdiq_isa
module Suite = Sdiq_workloads.Suite
module Bench = Sdiq_workloads.Bench
module Stats = Sdiq_cpu.Stats

let paper_order =
  [ "gzip"; "vpr"; "gcc"; "mcf"; "crafty"; "parser"; "perlbmk"; "gap";
    "vortex"; "bzip2"; "twolf" ]

let test_suite_complete () =
  Alcotest.(check (list string)) "the paper's eleven benchmarks" paper_order
    (Suite.names ())

let test_all_assemble_and_run_functionally () =
  List.iter
    (fun (b : Bench.t) ->
      let st = Exec.create b.Bench.prog in
      b.Bench.init st;
      let steps = Exec.run ~max_steps:2_000_000 st in
      Alcotest.(check bool)
        (b.Bench.name ^ " terminates")
        true
        (st.Exec.halted && steps < 2_000_000);
      Alcotest.(check bool)
        (b.Bench.name ^ " does work")
        true (steps > 1_000))
    (Suite.tiny ())

let simulate ?(policy = Sdiq_cpu.Policy.unlimited) ?(budget = 12_000)
    (b : Bench.t) =
  Sdiq_cpu.Pipeline.simulate ~policy ~init:b.Bench.init ~max_insns:budget
    b.Bench.prog

let find name = Option.get (Suite.find name)

let test_all_simulate_deterministically () =
  List.iter
    (fun (b : Bench.t) ->
      let s1 = simulate ~budget:5_000 b in
      let s2 = simulate ~budget:5_000 b in
      Alcotest.(check int) (b.Bench.name ^ " same cycles") s1.Stats.cycles
        s2.Stats.cycles;
      Alcotest.(check int)
        (b.Bench.name ^ " same wakeups")
        s1.Stats.iq_wakeups_gated s2.Stats.iq_wakeups_gated)
    (Suite.all ())

let test_mcf_is_memory_bound () =
  let s = simulate (find "mcf") in
  Alcotest.(check bool) "very low IPC" true (Stats.ipc s < 0.6);
  Alcotest.(check bool) "L2 misses dominate" true (s.Stats.l2_misses > 500);
  Alcotest.(check bool) "queue is full of waiters" true
    (Stats.avg_iq_occupancy s > 25.)

let test_crafty_is_ilp_rich () =
  let s = simulate (find "crafty") in
  Alcotest.(check bool) "high IPC" true (Stats.ipc s > 3.5);
  Alcotest.(check bool) "almost no memory traffic" true
    (s.Stats.loads + s.Stats.stores < s.Stats.committed / 10)

let test_vortex_is_call_heavy () =
  let b = find "vortex" in
  let calls =
    Prog.count_matching b.Bench.prog (fun i -> i.Instr.op = Opcode.Call)
  in
  Alcotest.(check bool) "has call sites" true (calls >= 4);
  let s = simulate b in
  (* Returns are frequent: the RAS must be exercised heavily. *)
  Alcotest.(check bool) "branch traffic includes returns" true
    (s.Stats.branches > s.Stats.committed / 20)

let test_gcc_has_complex_cfg () =
  let b = find "gcc" in
  let proc = Option.get (Prog.find_proc b.Bench.prog "main") in
  let cfg = Sdiq_cfg.Cfg.build b.Bench.prog proc in
  Alcotest.(check bool) "many basic blocks" true
    (Sdiq_cfg.Cfg.num_blocks cfg > 20);
  (* The shared tail has several predecessors (the gotos). *)
  let max_preds =
    List.fold_left
      (fun acc id -> max acc (List.length (Sdiq_cfg.Cfg.preds cfg id)))
      0
      (List.init (Sdiq_cfg.Cfg.num_blocks cfg) (fun i -> i))
  in
  Alcotest.(check bool) "a join block with many predecessors" true
    (max_preds >= 4)

let test_gap_pressures_multiplier () =
  let b = find "gap" in
  let muls =
    Prog.count_matching b.Bench.prog (fun i ->
        i.Instr.op = Opcode.Mul || i.Instr.op = Opcode.Div)
  in
  Alcotest.(check bool) "multiplies in the hot loop" true (muls >= 4)

let test_twolf_has_unpredictable_accepts () =
  let s = simulate (find "twolf") in
  Alcotest.(check bool) "meaningful mispredict rate" true
    (Stats.mispredict_rate s > 0.02)

let test_benchmarks_have_stores_and_loads () =
  List.iter
    (fun (b : Bench.t) ->
      if b.Bench.name <> "crafty" then begin
        let s = simulate ~budget:5_000 b in
        Alcotest.(check bool) (b.Bench.name ^ " loads") true
          (s.Stats.loads > 0);
        Alcotest.(check bool) (b.Bench.name ^ " stores") true
          (s.Stats.stores > 0)
      end)
    (Suite.all ())

let test_every_bench_analyzable () =
  List.iter
    (fun (b : Bench.t) ->
      let annotated, anns = Sdiq_core.Annotate.noop b.Bench.prog in
      Alcotest.(check bool)
        (b.Bench.name ^ " has annotations")
        true
        (List.length anns > 0);
      (* The annotated binary computes the same result. *)
      let st = Exec.create b.Bench.prog in
      b.Bench.init st;
      ignore (Exec.run ~max_steps:300_000 st);
      let st' = Exec.create annotated in
      b.Bench.init st';
      ignore (Exec.run ~max_steps:400_000 st');
      Alcotest.(check int)
        (b.Bench.name ^ " same output")
        (Exec.peek st 0) (Exec.peek st' 0))
    (Suite.tiny ())

let suite =
  [
    Alcotest.test_case "suite matches the paper" `Quick test_suite_complete;
    Alcotest.test_case "all run functionally" `Quick
      test_all_assemble_and_run_functionally;
    Alcotest.test_case "all simulate deterministically" `Slow
      test_all_simulate_deterministically;
    Alcotest.test_case "mcf memory-bound" `Quick test_mcf_is_memory_bound;
    Alcotest.test_case "crafty ILP-rich" `Quick test_crafty_is_ilp_rich;
    Alcotest.test_case "vortex call-heavy" `Quick test_vortex_is_call_heavy;
    Alcotest.test_case "gcc complex CFG" `Quick test_gcc_has_complex_cfg;
    Alcotest.test_case "gap multiplier pressure" `Quick
      test_gap_pressures_multiplier;
    Alcotest.test_case "twolf unpredictable accepts" `Quick
      test_twolf_has_unpredictable_accepts;
    Alcotest.test_case "benches touch memory" `Slow
      test_benchmarks_have_stores_and_loads;
    Alcotest.test_case "all analyzable, semantics preserved" `Quick
      test_every_bench_analyzable;
  ]
