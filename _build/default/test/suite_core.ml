(* Tests for the paper's compiler analysis: pseudo issue queue (Fig. 3),
   loop requirements (Fig. 4), procedure orchestration (Fig. 5) and
   annotation delivery. *)

open Sdiq_isa
module Pseudo_iq = Sdiq_core.Pseudo_iq
module Loop_need = Sdiq_core.Loop_need
module Procedure = Sdiq_core.Procedure
module Annotate = Sdiq_core.Annotate
module Options = Sdiq_core.Options

let r = Reg.int

(* Figure 3: six instructions a..f where
     iteration 0: a issues            -> 1 entry
     iteration 1: b, d issue          -> 3 entries (b,c,d)
     iteration 2: c, e, f issue       -> 4 entries (c,d,e,f)
   Dependences: b<-a, d<-a, c<-b, e<-d, f<-d; all 1-cycle. *)
let fig3_block () =
  [|
    Instr.make ~dst:(r 1) ~src1:(r 10) ~imm:1 Opcode.Addi; (* a *)
    Instr.make ~dst:(r 2) ~src1:(r 1) ~imm:1 Opcode.Addi;  (* b <- a *)
    Instr.make ~dst:(r 3) ~src1:(r 2) ~imm:1 Opcode.Addi;  (* c <- b *)
    Instr.make ~dst:(r 4) ~src1:(r 1) ~imm:1 Opcode.Addi;  (* d <- a *)
    Instr.make ~dst:(r 5) ~src1:(r 4) ~imm:1 Opcode.Addi;  (* e <- d *)
    Instr.make ~dst:(r 6) ~src1:(r 4) ~imm:1 Opcode.Addi;  (* f <- d *)
  |]

let test_fig3_need () =
  let res = Pseudo_iq.analyze (fig3_block ()) in
  Alcotest.(check int) "4 entries, as in the paper" 4 res.Pseudo_iq.need

let test_fig3_issue_cycles () =
  let res = Pseudo_iq.analyze (fig3_block ()) in
  Alcotest.(check (array int)) "issue schedule"
    [| 0; 1; 2; 1; 2; 2 |]
    res.Pseudo_iq.issue_cycle

(* Figure 1: limiting the queue to 2 entries does not slow this block, and
   the analysis finds that 2 entries suffice for the pairs to issue
   together. Dependences: c<-a, d<-b, e<-c,d, f<-b,d. *)
let fig1_block () =
  [|
    Instr.make ~dst:(r 1) ~src1:(r 1) ~imm:1 Opcode.Addi;
    Instr.make ~dst:(r 2) ~src1:(r 2) ~imm:2 Opcode.Addi;
    Instr.make ~dst:(r 3) ~src1:(r 1) ~imm:5 Opcode.Shli;
    Instr.make ~dst:(r 4) ~src1:(r 2) ~imm:5 Opcode.Shli;
    Instr.make ~dst:(r 5) ~src1:(r 3) ~src2:(r 4) Opcode.Add;
    Instr.make ~dst:(r 6) ~src1:(r 2) ~src2:(r 4) Opcode.Add;
  |]

let test_fig1_need_is_two () =
  let res = Pseudo_iq.analyze (fig1_block ()) in
  Alcotest.(check int) "2 entries" 2 res.Pseudo_iq.need

let test_independent_block_width_limited () =
  (* 12 independent ALU ops: with width 8 and 6 ALUs, 6 issue per cycle;
     oldest unissued is position 6 on cycle 1 while youngest issuing is
     position 11: the block needs 6 entries. *)
  let block =
    Array.init 12 (fun i -> Instr.make ~dst:(r (i + 1)) ~imm:i Opcode.Li)
  in
  let res = Pseudo_iq.analyze block in
  Alcotest.(check int) "need limited by ALUs" 6 res.Pseudo_iq.need

let test_serial_chain_needs_one () =
  let block =
    Array.init 8 (fun i ->
        Instr.make ~dst:(r 1) ~src1:(r 1) ~imm:i Opcode.Addi)
  in
  let res = Pseudo_iq.analyze block in
  Alcotest.(check int) "chain needs a single entry" 1 res.Pseudo_iq.need

let test_load_latency_assumed_hit () =
  (* load feeds an add: with the L1 hit assumption (1 + 2 cycles) the
     consumer issues 3 cycles after the load. *)
  let block =
    [|
      Instr.make ~dst:(r 1) ~src1:(r 2) ~imm:0 Opcode.Load;
      Instr.make ~dst:(r 3) ~src1:(r 1) ~imm:1 Opcode.Addi;
    |]
  in
  let res = Pseudo_iq.analyze block in
  Alcotest.(check int) "consumer waits for hit" 3
    res.Pseudo_iq.issue_cycle.(1)

let test_busy_units_delay_issue () =
  (* Two multiplies with all three multipliers busy in the first cycles
     (interprocedural contention): issue is pushed past the busy window. *)
  let block =
    [|
      Instr.make ~dst:(r 1) ~src1:(r 2) ~src2:(r 3) Opcode.Mul;
      Instr.make ~dst:(r 4) ~src1:(r 5) ~src2:(r 6) Opcode.Mul;
    |]
  in
  let busy = function Fu.Int_mul -> 3 | _ -> 0 in
  let free = Pseudo_iq.analyze block in
  let contended = Pseudo_iq.analyze ~busy ~busy_cycles:2 block in
  Alcotest.(check int) "uncontended issues at 0" 0
    free.Pseudo_iq.issue_cycle.(0);
  Alcotest.(check int) "contended issues after busy window" 2
    contended.Pseudo_iq.issue_cycle.(0)

let test_unpipelined_div_serialises () =
  (* Three divides on three multipliers: fine. Four divides: the fourth
     waits for a unit to free (12 cycles). *)
  let block =
    Array.init 4 (fun i ->
        Instr.make ~dst:(r (i + 1)) ~src1:(r 10) ~src2:(r 11) Opcode.Div)
  in
  let res = Pseudo_iq.analyze block in
  Alcotest.(check int) "fourth div waits for a unit" 12
    res.Pseudo_iq.issue_cycle.(3)

(* --- procedure-level analysis --- *)

let loop_program () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.li p (r 1) 100;
  Asm.li p (r 2) 0;
  Asm.label p "loop";
  Asm.add p (r 2) (r 2) (r 1);
  Asm.addi p (r 1) (r 1) (-1);
  Asm.bne p (r 1) Reg.zero "loop";
  Asm.store p Reg.zero (r 2) 0;
  Asm.halt p;
  Asm.assemble b ~entry:"main"

let test_procedure_annotations_cover_blocks () =
  let prog = loop_program () in
  let anns = Procedure.analyze_program prog in
  Alcotest.(check bool) "has annotations" true (List.length anns >= 2);
  List.iter
    (fun (a : Procedure.annotation) ->
      Alcotest.(check bool) "value in range" true
        (a.Procedure.value >= 1 && a.Procedure.value <= 80))
    anns;
  (* The loop header (address 2) must be annotated. *)
  Alcotest.(check bool) "loop header annotated" true
    (List.exists (fun (a : Procedure.annotation) -> a.Procedure.addr = 2) anns)

let test_annotation_addresses_unique () =
  let prog = loop_program () in
  let anns = Procedure.analyze_program prog in
  let addrs = List.map (fun (a : Procedure.annotation) -> a.Procedure.addr) anns in
  Alcotest.(check int) "unique addresses" (List.length addrs)
    (List.length (List.sort_uniq compare addrs))

let test_library_call_forces_max () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.li p (r 1) 1;
  Asm.call p "libfn";
  Asm.halt p;
  let q = Asm.proc ~library:true b "libfn" in
  Asm.ret q;
  let prog = Asm.assemble b ~entry:"main" in
  let anns = Procedure.analyze_program prog in
  (* The call at address 1 must carry the maximum queue size. *)
  let at_call =
    List.find_opt (fun (a : Procedure.annotation) -> a.Procedure.addr = 1) anns
  in
  match at_call with
  | Some a -> Alcotest.(check int) "max size before library call" 80
                a.Procedure.value
  | None -> Alcotest.fail "no annotation at library call"

let test_library_proc_not_analyzed () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.halt p;
  let q = Asm.proc ~library:true b "libfn" in
  Asm.nop q;
  Asm.ret q;
  let prog = Asm.assemble b ~entry:"main" in
  let anns = Procedure.analyze_program prog in
  Alcotest.(check bool) "no annotation inside library" true
    (List.for_all (fun (a : Procedure.annotation) -> a.Procedure.addr < 1) anns)

let run_result prog =
  let st = Exec.create prog in
  ignore (Exec.run st);
  Exec.peek st 0

let test_annotate_noop_preserves_semantics () =
  let prog = loop_program () in
  let annotated, anns = Annotate.noop prog in
  Alcotest.(check bool) "iqsets inserted" true (List.length anns > 0);
  Alcotest.(check int) "program result unchanged" (run_result prog)
    (run_result annotated);
  let iqsets =
    Prog.count_matching annotated (fun i -> i.Instr.op = Opcode.Iqset)
  in
  Alcotest.(check int) "one iqset per annotation" (List.length anns) iqsets

let test_annotate_tagged_preserves_program () =
  let prog = loop_program () in
  let tagged, anns = Annotate.extension prog in
  Alcotest.(check int) "no instructions added" (Prog.length prog)
    (Prog.length tagged);
  Alcotest.(check int) "program result unchanged" (run_result prog)
    (run_result tagged);
  let tags =
    Prog.count_matching tagged (fun i -> i.Instr.tag <> None)
  in
  Alcotest.(check int) "one tag per annotation" (List.length anns) tags

let test_noop_and_tagged_values_agree () =
  let prog = loop_program () in
  let _, anns_noop = Annotate.noop prog in
  let _, anns_tag = Annotate.extension prog in
  Alcotest.(check bool) "same analysis values" true (anns_noop = anns_tag)

let test_improved_widen_only () =
  (* The interprocedural refinement may only widen (or keep) annotations of
     post-call blocks, never shrink anything below the base analysis. *)
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.li p (r 1) 5;
  Asm.call p "work";
  Asm.add p (r 2) (r 1) (r 1);
  Asm.mul p (r 3) (r 2) (r 2);
  Asm.halt p;
  let q = Asm.proc b "work" in
  Asm.mul q (r 4) (r 1) (r 1);
  Asm.mul q (r 5) (r 4) (r 1);
  Asm.ret q;
  let prog = Asm.assemble b ~entry:"main" in
  let base = Procedure.analyze_program prog in
  let impr = Procedure.analyze_program ~opts:Options.improved prog in
  List.iter
    (fun (a : Procedure.annotation) ->
      match
        List.find_opt
          (fun (x : Procedure.annotation) -> x.Procedure.addr = a.Procedure.addr)
          impr
      with
      | Some i ->
        Alcotest.(check bool)
          (Printf.sprintf "addr %d not shrunk" a.Procedure.addr)
          true
          (i.Procedure.value >= a.Procedure.value)
      | None -> Alcotest.fail "improved lost an annotation")
    base

let test_slack_widens () =
  let prog = loop_program () in
  let base = Procedure.analyze_program prog in
  let slacked =
    Procedure.analyze_program
      ~opts:{ Options.default with Options.slack = 4 }
      prog
  in
  List.iter2
    (fun (a : Procedure.annotation) (s : Procedure.annotation) ->
      Alcotest.(check bool) "slack adds entries" true
        (s.Procedure.value >= a.Procedure.value
        && s.Procedure.value <= min 80 (a.Procedure.value + 4)))
    base slacked

let test_values_capped_at_iq_size () =
  (* A very wide independent block cannot ask for more than the queue. *)
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  for i = 1 to 31 do
    Asm.li p (r i) i
  done;
  for i = 1 to 31 do
    Asm.addi p (r i) (r i) 1
  done;
  for _ = 1 to 5 do
    for i = 1 to 31 do
      Asm.addi p (r i) (r i) 1
    done
  done;
  Asm.halt p;
  let prog = Asm.assemble b ~entry:"main" in
  let anns =
    Procedure.analyze_program
      ~opts:{ Sdiq_core.Options.default with Sdiq_core.Options.iq_size = 16 }
      prog
  in
  List.iter
    (fun (a : Procedure.annotation) ->
      Alcotest.(check bool) "capped" true (a.Procedure.value <= 16))
    anns

let test_compile_time_positive () =
  let prog = loop_program () in
  let m = Sdiq_core.Compile_time.measure ~repeat:1 prog in
  Alcotest.(check bool) "limited >= baseline" true
    (m.Sdiq_core.Compile_time.limited_ms
     >= m.Sdiq_core.Compile_time.baseline_ms -. 0.5)

let suite =
  [
    Alcotest.test_case "fig3 need = 4" `Quick test_fig3_need;
    Alcotest.test_case "fig3 issue cycles" `Quick test_fig3_issue_cycles;
    Alcotest.test_case "fig1 need = 2" `Quick test_fig1_need_is_two;
    Alcotest.test_case "independent block width-limited" `Quick
      test_independent_block_width_limited;
    Alcotest.test_case "serial chain needs one" `Quick
      test_serial_chain_needs_one;
    Alcotest.test_case "load assumed hit" `Quick test_load_latency_assumed_hit;
    Alcotest.test_case "busy units delay issue" `Quick
      test_busy_units_delay_issue;
    Alcotest.test_case "unpipelined div serialises" `Quick
      test_unpipelined_div_serialises;
    Alcotest.test_case "procedure annotations" `Quick
      test_procedure_annotations_cover_blocks;
    Alcotest.test_case "annotation addresses unique" `Quick
      test_annotation_addresses_unique;
    Alcotest.test_case "library call forces max" `Quick
      test_library_call_forces_max;
    Alcotest.test_case "library proc not analyzed" `Quick
      test_library_proc_not_analyzed;
    Alcotest.test_case "noop annotation preserves semantics" `Quick
      test_annotate_noop_preserves_semantics;
    Alcotest.test_case "tagged annotation preserves program" `Quick
      test_annotate_tagged_preserves_program;
    Alcotest.test_case "noop and tagged values agree" `Quick
      test_noop_and_tagged_values_agree;
    Alcotest.test_case "improved only widens" `Quick test_improved_widen_only;
    Alcotest.test_case "slack widens" `Quick test_slack_widens;
    Alcotest.test_case "values capped at iq size" `Quick
      test_values_capped_at_iq_size;
    Alcotest.test_case "compile time measurable" `Quick
      test_compile_time_positive;
  ]
