(* Tests for the functional executor. *)

open Sdiq_isa

let r = Reg.int
let f = Reg.fp

let run_prog build =
  let b = Asm.create () in
  build b;
  let prog = Asm.assemble b ~entry:"main" in
  let st = Exec.create prog in
  let steps = Exec.run st in
  (st, steps)

let test_arith () =
  let st, _ =
    run_prog (fun b ->
        let p = Asm.proc b "main" in
        Asm.li p (r 1) 7;
        Asm.li p (r 2) 3;
        Asm.add p (r 3) (r 1) (r 2);
        Asm.sub p (r 4) (r 1) (r 2);
        Asm.mul p (r 5) (r 1) (r 2);
        Asm.div p (r 6) (r 1) (r 2);
        Asm.and_ p (r 7) (r 1) (r 2);
        Asm.or_ p (r 8) (r 1) (r 2);
        Asm.xor p (r 9) (r 1) (r 2);
        Asm.store p Reg.zero (r 3) 0;
        Asm.store p Reg.zero (r 4) 1;
        Asm.store p Reg.zero (r 5) 2;
        Asm.store p Reg.zero (r 6) 3;
        Asm.store p Reg.zero (r 7) 4;
        Asm.store p Reg.zero (r 8) 5;
        Asm.store p Reg.zero (r 9) 6;
        Asm.halt p)
  in
  Alcotest.(check int) "add" 10 (Exec.peek st 0);
  Alcotest.(check int) "sub" 4 (Exec.peek st 1);
  Alcotest.(check int) "mul" 21 (Exec.peek st 2);
  Alcotest.(check int) "div" 2 (Exec.peek st 3);
  Alcotest.(check int) "and" 3 (Exec.peek st 4);
  Alcotest.(check int) "or" 7 (Exec.peek st 5);
  Alcotest.(check int) "xor" 4 (Exec.peek st 6)

let test_div_by_zero_total () =
  let st, _ =
    run_prog (fun b ->
        let p = Asm.proc b "main" in
        Asm.li p (r 1) 5;
        Asm.div p (r 2) (r 1) Reg.zero;
        Asm.store p Reg.zero (r 2) 0;
        Asm.halt p)
  in
  Alcotest.(check int) "div by zero yields 0" 0 (Exec.peek st 0)

let test_shifts () =
  let st, _ =
    run_prog (fun b ->
        let p = Asm.proc b "main" in
        Asm.li p (r 1) 5;
        Asm.shli p (r 2) (r 1) 3;
        Asm.shri p (r 3) (r 2) 2;
        Asm.store p Reg.zero (r 2) 0;
        Asm.store p Reg.zero (r 3) 1;
        Asm.halt p)
  in
  Alcotest.(check int) "shl" 40 (Exec.peek st 0);
  Alcotest.(check int) "shr" 10 (Exec.peek st 1)

let test_compare_ops () =
  let st, _ =
    run_prog (fun b ->
        let p = Asm.proc b "main" in
        Asm.li p (r 1) 4;
        Asm.li p (r 2) 9;
        Asm.slt p (r 3) (r 1) (r 2);
        Asm.sle p (r 4) (r 2) (r 2);
        Asm.seq p (r 5) (r 1) (r 2);
        Asm.sne p (r 6) (r 1) (r 2);
        Asm.slti p (r 7) (r 1) 5;
        Asm.store p Reg.zero (r 3) 0;
        Asm.store p Reg.zero (r 4) 1;
        Asm.store p Reg.zero (r 5) 2;
        Asm.store p Reg.zero (r 6) 3;
        Asm.store p Reg.zero (r 7) 4;
        Asm.halt p)
  in
  Alcotest.(check int) "slt" 1 (Exec.peek st 0);
  Alcotest.(check int) "sle" 1 (Exec.peek st 1);
  Alcotest.(check int) "seq" 0 (Exec.peek st 2);
  Alcotest.(check int) "sne" 1 (Exec.peek st 3);
  Alcotest.(check int) "slti" 1 (Exec.peek st 4)

let test_loop_sum () =
  (* Sum 1..10 = 55 *)
  let st, _ =
    run_prog (fun b ->
        let p = Asm.proc b "main" in
        Asm.li p (r 1) 10;
        Asm.li p (r 2) 0;
        Asm.label p "loop";
        Asm.add p (r 2) (r 2) (r 1);
        Asm.addi p (r 1) (r 1) (-1);
        Asm.bne p (r 1) Reg.zero "loop";
        Asm.store p Reg.zero (r 2) 0;
        Asm.halt p)
  in
  Alcotest.(check int) "sum 1..10" 55 (Exec.peek st 0)

let test_fib_recursive () =
  (* fib(10) = 55 via recursion with an explicit memory stack. *)
  let st, _ =
    run_prog (fun b ->
        let p = Asm.proc b "main" in
        Asm.li p (r 1) 10;
        Asm.li p (r 29) 1000; (* stack pointer *)
        Asm.call p "fib";
        Asm.store p Reg.zero (r 2) 0;
        Asm.halt p;
        (* fib: arg in r1, result in r2, stack pointer r29 *)
        let q = Asm.proc b "fib" in
        Asm.slti q (r 3) (r 1) 2;
        Asm.beq q (r 3) Reg.zero "rec";
        Asm.mov q (r 2) (r 1);
        Asm.ret q;
        Asm.label q "rec";
        (* push r1 *)
        Asm.store q (r 29) (r 1) 0;
        Asm.addi q (r 29) (r 29) 1;
        Asm.addi q (r 1) (r 1) (-1);
        Asm.call q "fib";
        (* pop r1, push fib(n-1) *)
        Asm.addi q (r 29) (r 29) (-1);
        Asm.load q (r 1) (r 29) 0;
        Asm.store q (r 29) (r 2) 0;
        Asm.addi q (r 29) (r 29) 1;
        Asm.addi q (r 1) (r 1) (-2);
        Asm.call q "fib";
        Asm.addi q (r 29) (r 29) (-1);
        Asm.load q (r 3) (r 29) 0;
        Asm.add q (r 2) (r 2) (r 3);
        Asm.ret q)
  in
  Alcotest.(check int) "fib 10" 55 (Exec.peek st 0)

let test_memory () =
  let st, _ =
    run_prog (fun b ->
        let p = Asm.proc b "main" in
        Asm.li p (r 1) 500;
        Asm.li p (r 2) 42;
        Asm.store p (r 1) (r 2) 8;
        Asm.load p (r 3) (r 1) 8;
        Asm.load p (r 4) (r 1) 999; (* unwritten: 0 *)
        Asm.store p Reg.zero (r 3) 0;
        Asm.store p Reg.zero (r 4) 1;
        Asm.halt p)
  in
  Alcotest.(check int) "store/load" 42 (Exec.peek st 0);
  Alcotest.(check int) "unwritten is 0" 0 (Exec.peek st 1)

let test_fp_ops () =
  let st, _ =
    run_prog (fun b ->
        let p = Asm.proc b "main" in
        Asm.fli p (f 1) 1.5;
        Asm.fli p (f 2) 2.5;
        Asm.fadd p (f 3) (f 1) (f 2);
        Asm.fmul p (f 4) (f 1) (f 2);
        Asm.ftoi p (r 1) (f 3);
        Asm.store p Reg.zero (r 1) 0;
        Asm.fstore p Reg.zero (f 4) 1;
        Asm.halt p)
  in
  Alcotest.(check int) "fadd then ftoi" 4 (Exec.peek st 0);
  Alcotest.(check (float 1e-9)) "fmul" 3.75 (Exec.fpeek st 1)

let test_branch_outcomes_in_dyn () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.li p (r 1) 1;
  Asm.beq p (r 1) Reg.zero "skip"; (* not taken *)
  Asm.jmp p "end"; (* taken *)
  Asm.label p "skip";
  Asm.nop p;
  Asm.label p "end";
  Asm.halt p;
  let prog = Asm.assemble b ~entry:"main" in
  let st = Exec.create prog in
  let d1 = Exec.step st in
  let d2 = Exec.step st in
  let d3 = Exec.step st in
  (match d2 with
  | Some d -> Alcotest.(check bool) "beq not taken" false d.Exec.taken
  | None -> Alcotest.fail "missing dyn");
  match d3 with
  | Some d ->
    Alcotest.(check bool) "jmp taken" true d.Exec.taken;
    Alcotest.(check int) "jmp next pc" 4 d.Exec.next_pc;
    ignore d1
  | None -> Alcotest.fail "missing dyn"

let test_halt_stops () =
  let st, steps =
    run_prog (fun b ->
        let p = Asm.proc b "main" in
        Asm.halt p;
        Asm.li p (r 1) 99;
        Asm.store p Reg.zero (r 1) 0)
  in
  Alcotest.(check int) "one step" 1 steps;
  Alcotest.(check int) "code after halt not executed" 0 (Exec.peek st 0)

let test_ret_from_entry_halts () =
  let _, steps =
    run_prog (fun b ->
        let p = Asm.proc b "main" in
        Asm.nop p;
        Asm.ret p)
  in
  Alcotest.(check int) "nop + ret" 2 steps

let test_iqset_is_semantic_nop () =
  let st, _ =
    run_prog (fun b ->
        let p = Asm.proc b "main" in
        Asm.li p (r 1) 5;
        Asm.iqset p 12;
        Asm.store p Reg.zero (r 1) 0;
        Asm.halt p)
  in
  Alcotest.(check int) "iqset does not change state" 5 (Exec.peek st 0)

let test_max_steps_bound () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.label p "spin";
  Asm.jmp p "spin";
  let prog = Asm.assemble b ~entry:"main" in
  let st = Exec.create prog in
  let steps = Exec.run ~max_steps:100 st in
  Alcotest.(check int) "bounded" 100 steps

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "div by zero is total" `Quick test_div_by_zero_total;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "comparisons" `Quick test_compare_ops;
    Alcotest.test_case "loop sum" `Quick test_loop_sum;
    Alcotest.test_case "recursive fib" `Quick test_fib_recursive;
    Alcotest.test_case "memory" `Quick test_memory;
    Alcotest.test_case "fp ops" `Quick test_fp_ops;
    Alcotest.test_case "branch outcomes" `Quick test_branch_outcomes_in_dyn;
    Alcotest.test_case "halt stops" `Quick test_halt_stops;
    Alcotest.test_case "ret from entry halts" `Quick test_ret_from_entry_halts;
    Alcotest.test_case "iqset is a semantic nop" `Quick
      test_iqset_is_semantic_nop;
    Alcotest.test_case "max steps bound" `Quick test_max_steps_bound;
  ]
