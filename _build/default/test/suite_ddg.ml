(* Tests for the DDG construction and the CDS/loop-schedule analysis,
   including the paper's worked examples (Figures 1 and 4). *)

open Sdiq_isa

let r = Reg.int

let instr ?dst ?src1 ?src2 op = Instr.make ?dst ?src1 ?src2 op

(* The basic block of Figure 1(a):
     a: add r1, 1, r1    b: add r2, 2, r2
     c: mul r1, 5, r3    d: mul r2, 5, r4
     e: add r3, r4, r5   f: add r2, r4, r6 *)
let fig1_block () =
  [|
    Instr.make ~dst:(r 1) ~src1:(r 1) ~imm:1 Opcode.Addi;
    Instr.make ~dst:(r 2) ~src1:(r 2) ~imm:2 Opcode.Addi;
    Instr.make ~dst:(r 3) ~src1:(r 1) ~imm:5 Opcode.Shli (* stand-in mul-by-5 via 1-cycle alu, shape only *);
    Instr.make ~dst:(r 4) ~src1:(r 2) ~imm:5 Opcode.Shli;
    instr ~dst:(r 5) ~src1:(r 3) ~src2:(r 4) Opcode.Add;
    instr ~dst:(r 6) ~src1:(r 2) ~src2:(r 4) Opcode.Add;
  |]

let test_block_edges () =
  let g = Sdiq_ddg.Ddg.build (fig1_block ()) in
  let has src dst =
    List.exists
      (fun (e : Sdiq_ddg.Ddg.edge) -> e.src = src && e.dst = dst)
      (Sdiq_ddg.Ddg.edges g)
  in
  Alcotest.(check bool) "a -> c" true (has 0 2);
  Alcotest.(check bool) "b -> d" true (has 1 3);
  Alcotest.(check bool) "c -> e" true (has 2 4);
  Alcotest.(check bool) "d -> e" true (has 3 4);
  Alcotest.(check bool) "b -> f" true (has 1 5);
  Alcotest.(check bool) "d -> f" true (has 3 5);
  Alcotest.(check bool) "no a -> b" false (has 0 1);
  Alcotest.(check bool) "no e -> f" false (has 4 5)

let test_zero_reg_no_dep () =
  let g =
    Sdiq_ddg.Ddg.build
      [|
        instr ~dst:(Reg.int 0) ~src1:(r 1) Opcode.Mov;
        instr ~dst:(r 2) ~src1:(Reg.int 0) Opcode.Mov;
      |]
  in
  Alcotest.(check int) "r0 creates no edges" 0
    (List.length (Sdiq_ddg.Ddg.edges g))

let test_mem_edges_same_location () =
  let g =
    Sdiq_ddg.Ddg.build
      [|
        Instr.make ~src1:(r 1) ~src2:(r 2) ~imm:8 Opcode.Store;
        Instr.make ~dst:(r 3) ~src1:(r 1) ~imm:8 Opcode.Load;
        Instr.make ~dst:(r 4) ~src1:(r 1) ~imm:16 Opcode.Load;
      |]
  in
  let has src dst =
    List.exists
      (fun (e : Sdiq_ddg.Ddg.edge) -> e.src = src && e.dst = dst)
      (Sdiq_ddg.Ddg.edges g)
  in
  Alcotest.(check bool) "store->load same location" true (has 0 1);
  Alcotest.(check bool) "store->load different offset" false (has 0 2)

let test_mem_edge_killed_by_base_redef () =
  let g =
    Sdiq_ddg.Ddg.build
      [|
        Instr.make ~src1:(r 1) ~src2:(r 2) ~imm:0 Opcode.Store;
        Instr.make ~dst:(r 1) ~src1:(r 1) ~imm:4 Opcode.Addi;
        Instr.make ~dst:(r 3) ~src1:(r 1) ~imm:0 Opcode.Load;
      |]
  in
  let has src dst =
    List.exists
      (fun (e : Sdiq_ddg.Ddg.edge) -> e.src = src && e.dst = dst)
      (Sdiq_ddg.Ddg.edges g)
  in
  Alcotest.(check bool) "base redefined: no provable alias" false (has 0 2)

(* The loop of Figure 4:
     a: a_i = a_{i-1} + 1   (self-dependent)
     b: b_i = a_i + 1
     c: c_i = b_i + 1
     d: d_i = b_i + 1
     e: e_i = d_i + 1
     f: f_i = c_i + 1
   All latencies 1. The paper derives offsets b=+1, c=d=+2, e=f=+3 relative
   to a, and an IQ requirement of 15 entries. *)
let fig4_body () =
  [|
    Instr.make ~dst:(r 1) ~src1:(r 1) ~imm:1 Opcode.Addi;
    Instr.make ~dst:(r 2) ~src1:(r 1) ~imm:1 Opcode.Addi;
    Instr.make ~dst:(r 3) ~src1:(r 2) ~imm:1 Opcode.Addi;
    Instr.make ~dst:(r 4) ~src1:(r 2) ~imm:1 Opcode.Addi;
    Instr.make ~dst:(r 5) ~src1:(r 4) ~imm:1 Opcode.Addi;
    Instr.make ~dst:(r 6) ~src1:(r 3) ~imm:1 Opcode.Addi;
  |]

let test_fig4_cds () =
  let g = Sdiq_ddg.Ddg.of_loop_body (fig4_body ()) in
  let sch = Sdiq_ddg.Cds.schedule g in
  Alcotest.(check int) "II = 1" 1 sch.Sdiq_ddg.Cds.ii;
  Alcotest.(check (list int)) "CDS = {a}" [ 0 ] sch.Sdiq_ddg.Cds.cds;
  Alcotest.(check int) "reference = a" 0 sch.Sdiq_ddg.Cds.reference

let test_fig4_equations () =
  let g = Sdiq_ddg.Ddg.of_loop_body (fig4_body ()) in
  let sch = Sdiq_ddg.Cds.schedule g in
  let offset n =
    let eq =
      List.find (fun e -> e.Sdiq_ddg.Cds.node = n) sch.Sdiq_ddg.Cds.equations
    in
    (eq.Sdiq_ddg.Cds.iter_offset, eq.Sdiq_ddg.Cds.cycle_residual)
  in
  Alcotest.(check (pair int int)) "a: i+0" (0, 0) (offset 0);
  Alcotest.(check (pair int int)) "b: i+1" (1, 0) (offset 1);
  Alcotest.(check (pair int int)) "c: i+2" (2, 0) (offset 2);
  Alcotest.(check (pair int int)) "d: i+2" (2, 0) (offset 3);
  Alcotest.(check (pair int int)) "e: i+3" (3, 0) (offset 4);
  Alcotest.(check (pair int int)) "f: i+3" (3, 0) (offset 5)

let test_fig4_iq_need () =
  let g = Sdiq_ddg.Ddg.of_loop_body (fig4_body ()) in
  let sch = Sdiq_ddg.Cds.schedule g in
  Alcotest.(check int) "15 entries, as in the paper" 15
    (Sdiq_ddg.Cds.iq_need g sch)

(* A loop whose recurrence has latency 3 through the multiplier: II = 3. *)
let test_mul_recurrence_ii () =
  let body =
    [|
      instr ~dst:(r 1) ~src1:(r 1) ~src2:(r 2) Opcode.Mul;
      instr ~dst:(r 3) ~src1:(r 1) ~src2:(r 2) Opcode.Add;
    |]
  in
  let g = Sdiq_ddg.Ddg.of_loop_body body in
  let sch = Sdiq_ddg.Cds.schedule g in
  Alcotest.(check int) "II = mul latency" 3 sch.Sdiq_ddg.Cds.ii

(* Independent iterations: II limited by resources, not recurrences. *)
let test_resource_ii () =
  let body =
    Array.init 12 (fun i ->
        instr ~dst:(r (i + 1)) ~src1:(Reg.int 0) Opcode.Mov)
  in
  let g = Sdiq_ddg.Ddg.of_loop_body body in
  let sch = Sdiq_ddg.Cds.schedule g in
  (* 12 independent 1-cycle ALU ops, width 8, 6 ALUs: ceil(12/6) = 2 *)
  Alcotest.(check int) "II = resource bound" 2 sch.Sdiq_ddg.Cds.ii;
  Alcotest.(check (list int)) "no CDS" [] sch.Sdiq_ddg.Cds.cds

(* A two-instruction mutual recurrence: a uses b from the previous
   iteration, b uses a from this iteration. Total latency 2, distance 1:
   II = 2. *)
let test_two_node_cds () =
  let body =
    [|
      instr ~dst:(r 1) ~src1:(r 2) Opcode.Mov;
      instr ~dst:(r 2) ~src1:(r 1) Opcode.Mov;
    |]
  in
  let g = Sdiq_ddg.Ddg.of_loop_body body in
  let sch = Sdiq_ddg.Cds.schedule g in
  Alcotest.(check int) "II = 2" 2 sch.Sdiq_ddg.Cds.ii;
  Alcotest.(check (list int)) "CDS = {a, b}" [ 0; 1 ] sch.Sdiq_ddg.Cds.cds

let test_carried_edge_exists () =
  let g = Sdiq_ddg.Ddg.of_loop_body (fig4_body ()) in
  let carried =
    List.filter (fun (e : Sdiq_ddg.Ddg.edge) -> e.distance = 1)
      (Sdiq_ddg.Ddg.edges g)
  in
  Alcotest.(check bool) "a -> a carried" true
    (List.exists
       (fun (e : Sdiq_ddg.Ddg.edge) -> e.src = 0 && e.dst = 0)
       carried)

let test_cds_sets_detect_multiple () =
  (* Two independent recurrences: {0} on r1 and {2,3} on r2/r3. *)
  let body =
    [|
      Instr.make ~dst:(r 1) ~src1:(r 1) ~imm:1 Opcode.Addi;
      instr ~dst:(r 9) ~src1:(r 1) Opcode.Mov;
      instr ~dst:(r 2) ~src1:(r 3) Opcode.Mov;
      instr ~dst:(r 3) ~src1:(r 2) Opcode.Mov;
    |]
  in
  let g = Sdiq_ddg.Ddg.of_loop_body body in
  let sets = Sdiq_ddg.Cds.cds_sets g in
  Alcotest.(check int) "two CDSs" 2 (List.length sets)

let test_empty_ddg () =
  let g = Sdiq_ddg.Ddg.build [||] in
  let sch = Sdiq_ddg.Cds.schedule g in
  Alcotest.(check int) "empty body II" 1 sch.Sdiq_ddg.Cds.ii;
  Alcotest.(check int) "empty body need" 1 (Sdiq_ddg.Cds.iq_need g sch)

let suite =
  [
    Alcotest.test_case "fig1 block edges" `Quick test_block_edges;
    Alcotest.test_case "zero register has no deps" `Quick test_zero_reg_no_dep;
    Alcotest.test_case "memory edges same location" `Quick
      test_mem_edges_same_location;
    Alcotest.test_case "memory edge killed by base redef" `Quick
      test_mem_edge_killed_by_base_redef;
    Alcotest.test_case "fig4 CDS detection" `Quick test_fig4_cds;
    Alcotest.test_case "fig4 equations" `Quick test_fig4_equations;
    Alcotest.test_case "fig4 IQ need = 15" `Quick test_fig4_iq_need;
    Alcotest.test_case "mul recurrence II" `Quick test_mul_recurrence_ii;
    Alcotest.test_case "resource-bound II" `Quick test_resource_ii;
    Alcotest.test_case "two-node CDS" `Quick test_two_node_cds;
    Alcotest.test_case "carried self edge" `Quick test_carried_edge_exists;
    Alcotest.test_case "multiple CDS sets" `Quick test_cds_sets_detect_multiple;
    Alcotest.test_case "empty DDG" `Quick test_empty_ddg;
  ]
