(* Tests for the power model: accounting identities, ordering between the
   naive / nonEmpty / gated views, and savings arithmetic. *)

module Stats = Sdiq_cpu.Stats
module Config = Sdiq_cpu.Config
module Params = Sdiq_power.Params
module Iq_power = Sdiq_power.Iq_power
module Rf_power = Sdiq_power.Rf_power
module Report = Sdiq_power.Report

(* A synthetic stats record with controlled counts. *)
let mk_stats ~cycles ~wake_gated ~wake_nonempty ~wake_naive ~banks_on_sum () =
  let s = Stats.create () in
  s.Stats.cycles <- cycles;
  s.Stats.committed <- cycles * 2;
  s.Stats.iq_wakeups_gated <- wake_gated;
  s.Stats.iq_wakeups_nonempty <- wake_nonempty;
  s.Stats.iq_wakeups_naive <- wake_naive;
  s.Stats.iq_dispatch_ram_writes <- cycles;
  s.Stats.iq_dispatch_cam_writes <- cycles * 2;
  s.Stats.iq_issue_reads <- cycles;
  s.Stats.iq_selects <- cycles;
  s.Stats.iq_banks_on_sum <- banks_on_sum;
  s.Stats.int_rf_reads <- cycles * 3;
  s.Stats.int_rf_writes <- cycles * 2;
  s.Stats.int_rf_banks_on_sum <- cycles * 7;
  s

let base_stats () =
  mk_stats ~cycles:1000 ~wake_gated:4000 ~wake_nonempty:9000
    ~wake_naive:160_000 ~banks_on_sum:9000 ()

let test_energy_ordering () =
  let p = Params.default and cfg = Config.default in
  let s = base_stats () in
  let naive = Iq_power.naive p cfg s in
  let gated = Iq_power.gated p cfg s in
  let tech = Iq_power.technique p s in
  Alcotest.(check bool) "gated < naive" true
    (gated.Iq_power.dynamic < naive.Iq_power.dynamic);
  Alcotest.(check bool) "technique < gated" true
    (tech.Iq_power.dynamic < gated.Iq_power.dynamic);
  Alcotest.(check bool) "technique static < naive static" true
    (tech.Iq_power.static_ < naive.Iq_power.static_)

let test_static_proportional_to_banks () =
  let p = Params.default in
  let s1 = mk_stats ~cycles:1000 ~wake_gated:0 ~wake_nonempty:0 ~wake_naive:0
      ~banks_on_sum:5000 () in
  let s2 = mk_stats ~cycles:1000 ~wake_gated:0 ~wake_nonempty:0 ~wake_naive:0
      ~banks_on_sum:10000 () in
  let e1 = Iq_power.technique p s1 and e2 = Iq_power.technique p s2 in
  Alcotest.(check (float 1e-6)) "static scales linearly" 2.0
    (e2.Iq_power.static_ /. e1.Iq_power.static_)

let test_report_zero_for_identical_runs () =
  let s = base_stats () in
  let tech = base_stats () in
  (* The technique run saves only via gating vs the naive baseline; with
     all banks on and equal cycles, static saving is the banks ratio. *)
  let r = Report.compute ~base:s tech in
  Alcotest.(check (float 1e-6)) "no IPC loss" 0. r.Report.ipc_loss_pct;
  Alcotest.(check (float 1e-6)) "no occupancy change" 0.
    r.Report.iq_occupancy_reduction_pct

let test_report_ipc_loss_sign () =
  let base = base_stats () in
  let tech = base_stats () in
  tech.Stats.cycles <- 1100; (* same work, more cycles: a loss *)
  let r = Report.compute ~base tech in
  Alcotest.(check bool) "positive loss" true (r.Report.ipc_loss_pct > 0.)

let test_non_empty_between_zero_and_hundred () =
  let s = base_stats () in
  let v = Report.non_empty_dynamic_saving s in
  Alcotest.(check bool) "sane percentage" true (v > 0. && v < 100.)

let test_rf_gating_saves () =
  let p = Params.default and cfg = Config.default in
  let s = base_stats () in
  let all_on = Rf_power.int_baseline p cfg s in
  let gated = Rf_power.int_gated p s in
  (* banks_on_sum = 7 banks avg of 14: half the bank energy. *)
  Alcotest.(check bool) "gated dynamic below baseline" true
    (gated.Rf_power.dynamic < all_on.Rf_power.dynamic);
  Alcotest.(check (float 1e-6)) "static halves" 0.5
    (gated.Rf_power.static_ /. all_on.Rf_power.static_)

(* End-to-end: a real simulation's counters satisfy the accounting
   invariants the model depends on. *)
let test_simulation_counter_invariants () =
  let bench = Sdiq_workloads.W_gzip.build ~outer:2_000 () in
  let stats =
    Sdiq_cpu.Pipeline.simulate ~init:bench.Sdiq_workloads.Bench.init
      ~max_insns:10_000 bench.Sdiq_workloads.Bench.prog
  in
  Alcotest.(check bool) "gated <= nonempty" true
    (stats.Stats.iq_wakeups_gated <= stats.Stats.iq_wakeups_nonempty);
  Alcotest.(check bool) "nonempty <= naive" true
    (stats.Stats.iq_wakeups_nonempty <= stats.Stats.iq_wakeups_naive);
  Alcotest.(check int) "naive = 2 * size * broadcasts"
    (2 * 80 * stats.Stats.iq_broadcasts)
    stats.Stats.iq_wakeups_naive;
  Alcotest.(check bool) "banks_on_sum bounded" true
    (stats.Stats.iq_banks_on_sum <= 10 * stats.Stats.cycles);
  Alcotest.(check bool) "issue reads = selects" true
    (stats.Stats.iq_issue_reads = stats.Stats.iq_selects);
  Alcotest.(check bool) "dispatched >= committed - inflight" true
    (stats.Stats.dispatched >= stats.Stats.committed)

let test_savings_end_to_end_positive () =
  let bench = Sdiq_workloads.W_gzip.build ~outer:3_000 () in
  let runner =
    Sdiq_harness.Runner.create ~budget:15_000 ~benches:[ bench ] ()
  in
  let s = Sdiq_harness.Runner.savings runner "gzip" Sdiq_harness.Technique.Noop in
  Alcotest.(check bool) "dynamic savings positive" true
    (s.Report.iq_dynamic_saving_pct > 0.);
  Alcotest.(check bool) "static savings positive" true
    (s.Report.iq_static_saving_pct > 0.);
  Alcotest.(check bool) "savings below 100%" true
    (s.Report.iq_dynamic_saving_pct < 100.)

let suite =
  [
    Alcotest.test_case "energy ordering" `Quick test_energy_ordering;
    Alcotest.test_case "static proportional to banks" `Quick
      test_static_proportional_to_banks;
    Alcotest.test_case "identical runs: zero deltas" `Quick
      test_report_zero_for_identical_runs;
    Alcotest.test_case "ipc loss sign" `Quick test_report_ipc_loss_sign;
    Alcotest.test_case "nonEmpty in range" `Quick
      test_non_empty_between_zero_and_hundred;
    Alcotest.test_case "rf gating saves" `Quick test_rf_gating_saves;
    Alcotest.test_case "simulation counter invariants" `Quick
      test_simulation_counter_invariants;
    Alcotest.test_case "end-to-end savings positive" `Quick
      test_savings_end_to_end_positive;
  ]
