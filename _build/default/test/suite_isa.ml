(* Tests for registers, instructions, the assembler and program rewriting. *)

open Sdiq_isa

let r = Reg.int

let test_reg_zero () =
  Alcotest.(check bool) "r0 is zero" true (Reg.is_zero Reg.zero);
  Alcotest.(check bool) "r1 is not" false (Reg.is_zero (r 1));
  Alcotest.(check bool) "f0 is not zero reg" false (Reg.is_zero (Reg.fp 0))

let test_reg_dense_roundtrip () =
  for i = 0 to Reg.count - 1 do
    Alcotest.(check int) "dense roundtrip" i (Reg.dense (Reg.of_dense i))
  done

let test_reg_bounds () =
  Alcotest.check_raises "int out of range"
    (Invalid_argument "Reg.int: out of range") (fun () -> ignore (Reg.int 32));
  Alcotest.check_raises "fp out of range"
    (Invalid_argument "Reg.fp: out of range") (fun () -> ignore (Reg.fp (-1)))

let test_instr_dest_zero_discarded () =
  let i = Instr.make ~dst:Reg.zero ~src1:(r 1) Opcode.Mov in
  Alcotest.(check bool) "write to r0 has no dest" true (Instr.dest i = None)

let test_instr_sources_skip_zero () =
  let i = Instr.make ~dst:(r 1) ~src1:Reg.zero ~src2:(r 2) Opcode.Add in
  Alcotest.(check int) "only r2 is a source" 1
    (List.length (Instr.sources i))

let test_opcode_classes () =
  Alcotest.(check bool) "mul on multiplier" true
    (Opcode.fu_class Opcode.Mul = Fu.Int_mul);
  Alcotest.(check bool) "load on mem port" true
    (Opcode.fu_class Opcode.Load = Fu.Mem_port);
  Alcotest.(check bool) "fdiv on fp muldiv" true
    (Opcode.fu_class Opcode.Fdiv = Fu.Fp_muldiv);
  Alcotest.(check int) "mul latency" 3 (Opcode.latency Opcode.Mul);
  Alcotest.(check int) "fadd latency" 2 (Opcode.latency Opcode.Fadd);
  Alcotest.(check int) "fdiv latency" 12 (Opcode.latency Opcode.Fdiv);
  Alcotest.(check bool) "div unpipelined" true (Opcode.unpipelined Opcode.Div);
  Alcotest.(check bool) "add pipelined" false (Opcode.unpipelined Opcode.Add)

let test_fu_counts () =
  Alcotest.(check int) "6 int alus" 6 (Fu.default_count Fu.Int_alu);
  Alcotest.(check int) "3 multipliers" 3 (Fu.default_count Fu.Int_mul);
  Alcotest.(check int) "4 fp alus" 4 (Fu.default_count Fu.Fp_alu);
  Alcotest.(check int) "2 fp muldiv" 2 (Fu.default_count Fu.Fp_muldiv)

let test_asm_labels_resolve () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.li p (r 1) 3;
  Asm.label p "loop";
  Asm.addi p (r 1) (r 1) (-1);
  Asm.bne p (r 1) Reg.zero "loop";
  Asm.halt p;
  let prog = Asm.assemble b ~entry:"main" in
  Alcotest.(check int) "4 instructions" 4 (Prog.length prog);
  let branch = Prog.instr prog 2 in
  Alcotest.(check int) "branch targets the label" 1 branch.Instr.target

let test_asm_call_resolves () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.call p "helper";
  Asm.halt p;
  let h = Asm.proc b "helper" in
  Asm.ret h;
  let prog = Asm.assemble b ~entry:"main" in
  let call = Prog.instr prog 0 in
  Alcotest.(check int) "call targets helper entry" 2 call.Instr.target;
  match Prog.find_proc prog "helper" with
  | Some hp ->
    Alcotest.(check int) "helper entry" 2 hp.Prog.entry;
    Alcotest.(check int) "helper len" 1 hp.Prog.len
  | None -> Alcotest.fail "helper not found"

let test_asm_unknown_label () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.jmp p "nowhere";
  Asm.halt p;
  match Asm.assemble b ~entry:"main" with
  | exception Asm.Error _ -> ()
  | _ -> Alcotest.fail "expected Asm.Error"

let test_asm_unknown_entry () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.halt p;
  match Asm.assemble b ~entry:"other" with
  | exception Asm.Error _ -> ()
  | _ -> Alcotest.fail "expected Asm.Error"

let test_asm_duplicate_proc () =
  let b = Asm.create () in
  let _ = Asm.proc b "main" in
  match Asm.proc b "main" with
  | exception Asm.Error _ -> ()
  | _ -> Alcotest.fail "expected Asm.Error"

let test_asm_duplicate_label () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.label p "x";
  Asm.nop p;
  match Asm.label p "x" with
  | exception Asm.Error _ -> ()
  | _ -> Alcotest.fail "expected Asm.Error"

let test_proc_of_addr () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.nop p;
  Asm.halt p;
  let q = Asm.proc b "aux" in
  Asm.ret q;
  let prog = Asm.assemble b ~entry:"main" in
  (match Prog.proc_of_addr prog 1 with
  | Some pr -> Alcotest.(check string) "addr 1 in main" "main" pr.Prog.name
  | None -> Alcotest.fail "no proc");
  match Prog.proc_of_addr prog 2 with
  | Some pr -> Alcotest.(check string) "addr 2 in aux" "aux" pr.Prog.name
  | None -> Alcotest.fail "no proc"

(* Rewrite: inserting IQSETs shifts targets and entries correctly, and the
   program still computes the same result. *)
let make_loop_prog () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.li p (r 1) 10;
  Asm.li p (r 2) 0;
  Asm.label p "loop";
  Asm.add p (r 2) (r 2) (r 1);
  Asm.addi p (r 1) (r 1) (-1);
  Asm.bne p (r 1) Reg.zero "loop";
  Asm.store p Reg.zero (r 2) 100;
  Asm.halt p;
  Asm.assemble b ~entry:"main"

let run_result prog =
  let st = Exec.create prog in
  ignore (Exec.run st);
  Exec.peek st 100

let test_rewrite_insert_preserves_semantics () =
  let prog = make_loop_prog () in
  let base = run_result prog in
  (* Annotate the loop header (address 2) and the entry (address 0). *)
  let ann a = if a = 0 then Some 8 else if a = 2 then Some 4 else None in
  let prog' = Rewrite.insert_iqsets prog ann in
  Alcotest.(check int) "two instructions inserted" (Prog.length prog + 2)
    (Prog.length prog');
  Alcotest.(check int) "same result" base (run_result prog');
  (* The branch must now target the inserted IQSET before the old header. *)
  let iqsets =
    Prog.count_matching prog' (fun i -> i.Instr.op = Opcode.Iqset)
  in
  Alcotest.(check int) "iqsets present" 2 iqsets

let test_rewrite_branch_targets_iqset () =
  let prog = make_loop_prog () in
  let ann a = if a = 2 then Some 4 else None in
  let prog' = Rewrite.insert_iqsets prog ann in
  (* Find the backward branch in the new program and check it lands on the
     IQSET. *)
  let found = ref false in
  Array.iteri
    (fun _ (i : Instr.t) ->
      if i.op = Opcode.Bne then begin
        found := true;
        let tgt = prog'.Prog.code.(i.target) in
        Alcotest.(check bool) "branch lands on iqset" true
          (tgt.Instr.op = Opcode.Iqset);
        Alcotest.(check int) "iqset value" 4 tgt.Instr.imm
      end)
    prog'.Prog.code;
  Alcotest.(check bool) "branch found" true !found

let test_rewrite_strip_roundtrip () =
  let prog = make_loop_prog () in
  let ann a = if a = 0 then Some 8 else if a = 2 then Some 4 else None in
  let prog' = Rewrite.insert_iqsets prog ann in
  let stripped = Rewrite.strip prog' in
  Alcotest.(check int) "same length as original" (Prog.length prog)
    (Prog.length stripped);
  Alcotest.(check int) "same result" (run_result prog) (run_result stripped);
  Array.iteri
    (fun a (i : Instr.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "op %d matches" a)
        true
        (i.op = (Prog.instr prog a).Instr.op))
    stripped.Prog.code

let test_rewrite_tags () =
  let prog = make_loop_prog () in
  let ann a = if a = 2 then Some 6 else None in
  let tagged = Rewrite.apply_tags prog ann in
  Alcotest.(check int) "same length" (Prog.length prog) (Prog.length tagged);
  Alcotest.(check bool) "tag applied" true
    ((Prog.instr tagged 2).Instr.tag = Some 6);
  Alcotest.(check bool) "original untouched" true
    ((Prog.instr prog 2).Instr.tag = None);
  Alcotest.(check int) "same result" (run_result prog) (run_result tagged)

let suite =
  [
    Alcotest.test_case "reg zero" `Quick test_reg_zero;
    Alcotest.test_case "reg dense roundtrip" `Quick test_reg_dense_roundtrip;
    Alcotest.test_case "reg bounds" `Quick test_reg_bounds;
    Alcotest.test_case "write to r0 discarded" `Quick
      test_instr_dest_zero_discarded;
    Alcotest.test_case "sources skip r0" `Quick test_instr_sources_skip_zero;
    Alcotest.test_case "opcode classes and latencies" `Quick
      test_opcode_classes;
    Alcotest.test_case "fu default counts" `Quick test_fu_counts;
    Alcotest.test_case "asm labels resolve" `Quick test_asm_labels_resolve;
    Alcotest.test_case "asm call resolves" `Quick test_asm_call_resolves;
    Alcotest.test_case "asm unknown label" `Quick test_asm_unknown_label;
    Alcotest.test_case "asm unknown entry" `Quick test_asm_unknown_entry;
    Alcotest.test_case "asm duplicate proc" `Quick test_asm_duplicate_proc;
    Alcotest.test_case "asm duplicate label" `Quick test_asm_duplicate_label;
    Alcotest.test_case "proc_of_addr" `Quick test_proc_of_addr;
    Alcotest.test_case "rewrite preserves semantics" `Quick
      test_rewrite_insert_preserves_semantics;
    Alcotest.test_case "rewrite branch targets iqset" `Quick
      test_rewrite_branch_targets_iqset;
    Alcotest.test_case "rewrite strip roundtrip" `Quick
      test_rewrite_strip_roundtrip;
    Alcotest.test_case "rewrite tags" `Quick test_rewrite_tags;
  ]
