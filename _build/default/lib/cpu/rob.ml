(* Reorder buffer: a circular buffer of in-flight instructions committed in
   program order. Because the frontend never injects wrong-path
   instructions (a mispredicted branch stalls fetch until it resolves),
   the ROB never squashes; it only fills and drains. *)

open Sdiq_isa

type state =
  | Dispatched
  | Issued
  | Completed

type dest =
  | No_dest
  | Int_dest of int (* physical register *)
  | Fp_dest of int

type entry = {
  mutable dyn : Exec.dyn option;
  mutable state : state;
  mutable dest : dest;
  mutable old_phys : dest;  (* previous mapping, freed at commit *)
  mutable iq_slot : int;    (* -1 once issued or never queued *)
  mutable blocked_fetch : bool; (* fetch is stalled on this instruction *)
}

type t = {
  size : int;
  entries : entry array;
  mutable head : int;
  mutable tail : int;
  mutable count : int;
}

let create ~size =
  if size <= 0 then invalid_arg "Rob.create";
  let mk _ =
    {
      dyn = None;
      state = Dispatched;
      dest = No_dest;
      old_phys = No_dest;
      iq_slot = -1;
      blocked_fetch = false;
    }
  in
  {
    size;
    entries = Array.init size mk;
    head = 0;
    tail = 0;
    count = 0;
  }

let is_full t = t.count = t.size
let is_empty t = t.count = 0
let occupancy t = t.count

let entry t idx = t.entries.(idx)

(* Allocate the tail entry; returns its index. *)
let push t ~dyn ~dest ~old_phys ~iq_slot =
  if is_full t then invalid_arg "Rob.push: full";
  let idx = t.tail in
  let e = t.entries.(idx) in
  e.dyn <- Some dyn;
  e.state <- Dispatched;
  e.dest <- dest;
  e.old_phys <- old_phys;
  e.iq_slot <- iq_slot;
  e.blocked_fetch <- false;
  t.tail <- (t.tail + 1) mod t.size;
  t.count <- t.count + 1;
  idx

(* Pop the head entry if it has completed; [f] consumes it. Returns true
   when an instruction was committed. *)
let try_commit t f =
  if is_empty t then false
  else begin
    let e = t.entries.(t.head) in
    match e.state with
    | Completed ->
      f e;
      e.dyn <- None;
      t.head <- (t.head + 1) mod t.size;
      t.count <- t.count - 1;
      true
    | Dispatched | Issued -> false
  end

(* Iterate over in-flight entries from oldest to youngest. *)
let iter_in_flight t f =
  let pos = ref t.head in
  for _ = 1 to t.count do
    f !pos t.entries.(!pos);
    pos := (!pos + 1) mod t.size
  done

(* Is [a] older than [b] in program order? Valid for in-flight indices. *)
let older t a b =
  let age idx = (idx - t.head + t.size) mod t.size in
  age a < age b
