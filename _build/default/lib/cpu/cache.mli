(** Set-associative cache with LRU replacement and in-flight line
    tracking: a missing line is installed immediately but its data only
    "arrives" at the fill time the caller records, so later accesses to a
    still-in-flight line see [Inflight] rather than a free hit (an
    MSHR-style merge — without it, dependent pointer chases would ride
    their own line fills). *)

type t

type outcome =
  | Hit
  | Inflight of int (** remaining cycles until the fill completes *)
  | Miss

val create : sets:int -> ways:int -> line:int -> t
val hits : t -> int
val misses : t -> int

(** Tag-match the line at byte address [addr]; a miss installs it with
    fill time [now] (push it out with {!set_fill}). *)
val probe : t -> now:int -> int -> outcome

(** Record when the just-missed line's data will arrive. *)
val set_fill : t -> int -> int -> unit

(** Untimed access: true on a settled hit; misses install instantly. *)
val access : t -> int -> bool

val miss_rate : t -> float
