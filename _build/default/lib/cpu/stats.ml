(* Simulation statistics: the raw event counts and per-cycle integrals the
   power model and the experiment harness consume. *)

type t = {
  mutable cycles : int;
  mutable committed : int;         (* program instructions retired *)
  mutable dispatched : int;        (* instructions entering the IQ *)
  mutable iqset_dispatch_slots : int; (* dispatch slots eaten by special NOOPs *)
  (* issue queue activity *)
  mutable iq_occupancy_sum : int;      (* valid entries, integrated per cycle *)
  mutable iq_banks_on_sum : int;
  mutable iq_wakeups_gated : int;
  mutable iq_wakeups_nonempty : int;
  mutable iq_wakeups_naive : int;
  mutable iq_dispatch_ram_writes : int;
  mutable iq_dispatch_cam_writes : int;
  mutable iq_issue_reads : int;
  mutable iq_broadcasts : int;
  mutable iq_selects : int;
  (* register files *)
  mutable int_rf_reads : int;
  mutable int_rf_writes : int;
  mutable int_rf_banks_on_sum : int;
  mutable int_rf_live_sum : int;
  mutable fp_rf_reads : int;
  mutable fp_rf_writes : int;
  mutable fp_rf_banks_on_sum : int;
  (* frontend *)
  mutable fetched : int;
  mutable branches : int;
  mutable mispredicts : int;
  mutable btb_bubbles : int;
  mutable il1_misses : int;
  mutable dl1_misses : int;
  mutable l2_misses : int;
  mutable loads : int;
  mutable stores : int;
  mutable store_forwards : int;
  (* stalls *)
  mutable dispatch_stall_policy : int;  (* cycles throttled by the policy *)
  mutable dispatch_stall_iq_full : int;
  mutable dispatch_stall_rob_full : int;
  mutable dispatch_stall_no_reg : int;
}

let create () =
  {
    cycles = 0;
    committed = 0;
    dispatched = 0;
    iqset_dispatch_slots = 0;
    iq_occupancy_sum = 0;
    iq_banks_on_sum = 0;
    iq_wakeups_gated = 0;
    iq_wakeups_nonempty = 0;
    iq_wakeups_naive = 0;
    iq_dispatch_ram_writes = 0;
    iq_dispatch_cam_writes = 0;
    iq_issue_reads = 0;
    iq_broadcasts = 0;
    iq_selects = 0;
    int_rf_reads = 0;
    int_rf_writes = 0;
    int_rf_banks_on_sum = 0;
    int_rf_live_sum = 0;
    fp_rf_reads = 0;
    fp_rf_writes = 0;
    fp_rf_banks_on_sum = 0;
    fetched = 0;
    branches = 0;
    mispredicts = 0;
    btb_bubbles = 0;
    il1_misses = 0;
    dl1_misses = 0;
    l2_misses = 0;
    loads = 0;
    stores = 0;
    store_forwards = 0;
    dispatch_stall_policy = 0;
    dispatch_stall_iq_full = 0;
    dispatch_stall_rob_full = 0;
    dispatch_stall_no_reg = 0;
  }

let ipc t =
  if t.cycles = 0 then 0. else float_of_int t.committed /. float_of_int t.cycles

let avg_iq_occupancy t =
  if t.cycles = 0 then 0.
  else float_of_int t.iq_occupancy_sum /. float_of_int t.cycles

let avg_iq_banks_on t =
  if t.cycles = 0 then 0.
  else float_of_int t.iq_banks_on_sum /. float_of_int t.cycles

let avg_int_rf_banks_on t =
  if t.cycles = 0 then 0.
  else float_of_int t.int_rf_banks_on_sum /. float_of_int t.cycles

let avg_int_rf_live t =
  if t.cycles = 0 then 0.
  else float_of_int t.int_rf_live_sum /. float_of_int t.cycles

let mispredict_rate t =
  if t.branches = 0 then 0.
  else float_of_int t.mispredicts /. float_of_int t.branches

let pp ppf t =
  Fmt.pf ppf
    "cycles %d, committed %d, IPC %.3f@ IQ: occ %.1f, banks-on %.2f, \
     wakeups %d (naive %d)@ RF(int): reads %d writes %d banks-on %.2f@ \
     branches %d (mispred %.1f%%), DL1 miss %d, L2 miss %d"
    t.cycles t.committed (ipc t) (avg_iq_occupancy t) (avg_iq_banks_on t)
    t.iq_wakeups_gated t.iq_wakeups_naive t.int_rf_reads t.int_rf_writes
    (avg_int_rf_banks_on t) t.branches
    (100. *. mispredict_rate t)
    t.dl1_misses t.l2_misses
