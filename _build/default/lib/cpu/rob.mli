(** Reorder buffer: in-flight instructions committed in program order.
    The frontend never injects wrong-path instructions, so the ROB never
    squashes; it only fills and drains. *)

type state =
  | Dispatched
  | Issued
  | Completed

type dest =
  | No_dest
  | Int_dest of int
  | Fp_dest of int

type entry = {
  mutable dyn : Sdiq_isa.Exec.dyn option;
  mutable state : state;
  mutable dest : dest;
  mutable old_phys : dest;  (** previous mapping, freed at commit *)
  mutable iq_slot : int;
  mutable blocked_fetch : bool;
}

type t

val create : size:int -> t
val is_full : t -> bool
val is_empty : t -> bool
val occupancy : t -> int
val entry : t -> int -> entry

(** Allocate the tail entry; returns its index. Raises when full. *)
val push :
  t ->
  dyn:Sdiq_isa.Exec.dyn ->
  dest:dest ->
  old_phys:dest ->
  iq_slot:int ->
  int

(** Pop the head if completed, passing it to [f]; true on commit. *)
val try_commit : t -> (entry -> unit) -> bool

(** Oldest to youngest. *)
val iter_in_flight : t -> (int -> entry -> unit) -> unit

(** Program-order comparison of two in-flight indices. *)
val older : t -> int -> int -> bool
