lib/cpu/regfile.mli:
