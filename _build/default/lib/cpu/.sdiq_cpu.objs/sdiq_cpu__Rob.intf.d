lib/cpu/rob.mli: Sdiq_isa
