lib/cpu/iq.mli:
