lib/cpu/pipeline.mli: Branch_pred Cache Config Hashtbl Iq Policy Queue Regfile Rob Sdiq_isa Stats
