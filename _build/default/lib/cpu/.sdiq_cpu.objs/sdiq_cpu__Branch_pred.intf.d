lib/cpu/branch_pred.mli: Config
