lib/cpu/policy.mli: Iq
