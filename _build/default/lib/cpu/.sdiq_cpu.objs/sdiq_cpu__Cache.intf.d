lib/cpu/cache.mli:
