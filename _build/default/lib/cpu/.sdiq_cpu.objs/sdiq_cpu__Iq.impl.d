lib/cpu/iq.ml: Array List
