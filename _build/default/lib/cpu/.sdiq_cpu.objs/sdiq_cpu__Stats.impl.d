lib/cpu/stats.ml: Fmt
