lib/cpu/pipeline.ml: Array Branch_pred Cache Config Exec Fu Hashtbl Instr Iq List Opcode Option Policy Printf Prog Queue Reg Regfile Rob Sdiq_isa Stats
