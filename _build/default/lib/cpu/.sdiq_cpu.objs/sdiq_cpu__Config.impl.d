lib/cpu/config.ml: Fmt Fu Sdiq_isa
