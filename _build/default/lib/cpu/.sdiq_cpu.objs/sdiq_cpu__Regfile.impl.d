lib/cpu/regfile.ml: Array
