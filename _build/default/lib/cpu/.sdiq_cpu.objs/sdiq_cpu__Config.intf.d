lib/cpu/config.mli: Format Sdiq_isa
