lib/cpu/policy.ml: Iq
