lib/cpu/rob.ml: Array Exec Sdiq_isa
