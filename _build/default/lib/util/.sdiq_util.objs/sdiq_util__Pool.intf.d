lib/util/pool.mli:
