lib/util/pool.ml: Array Atomic Domain Printexc
