lib/util/stat.mli:
