lib/util/stat.ml: List
