lib/util/rng.mli:
