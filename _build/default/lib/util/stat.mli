(** Running statistics accumulator (count / sum / mean / min / max). *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
val max_value : t -> float
val reset : t -> unit

(** [pct_reduction ~base v] is the percentage reduction from [base] to [v];
    positive when [v < base], 0 when [base = 0]. *)
val pct_reduction : base:float -> float -> float

(** Arithmetic mean of a list, 0 for the empty list. *)
val mean_of : float list -> float
