(* Deterministic pseudo-random number generator (splitmix64).

   Every source of randomness in the repository goes through this module so
   that workloads, tests and benchmarks are exactly reproducible from a seed.
   The generator is the splitmix64 finaliser, which has good statistical
   quality for the modest demands made here (workload data generation). *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* One splitmix64 step: advance by the golden-gamma and finalise. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Non-negative int in [0, 2^62). *)
let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* True with probability [p]. *)
let chance t p = float_of_int (int t 1_000_000) /. 1_000_000. < p

let float t bound = float_of_int (int t 1_000_000) /. 1_000_000. *. bound

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
