(* Running statistics accumulators used by the simulator and the harness. *)

type t = {
  mutable n : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; sum = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_int t x = add t (float_of_int x)

let count t = t.n

let sum t = t.sum

let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let min_value t = if t.n = 0 then 0. else t.min

let max_value t = if t.n = 0 then 0. else t.max

let reset t =
  t.n <- 0;
  t.sum <- 0.;
  t.min <- infinity;
  t.max <- neg_infinity

(* Percentage change from [base] to [v]: positive means a reduction. *)
let pct_reduction ~base v = if base = 0. then 0. else (base -. v) /. base *. 100.

let mean_of list =
  match list with
  | [] -> 0.
  | _ -> List.fold_left ( +. ) 0. list /. float_of_int (List.length list)
