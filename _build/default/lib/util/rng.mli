(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the repository flows through this module so that every
    workload, test and benchmark is reproducible from its seed. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : int -> t

(** Independent copy: advancing the copy does not affect the original. *)
val copy : t -> t

(** Raw 64-bit output. *)
val next_int64 : t -> int64

(** Non-negative int, uniform over [0, 2^62). *)
val next : t -> int

(** [int t bound] is uniform over [0, bound). Raises [Invalid_argument]
    when [bound <= 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform over the inclusive range [lo, hi]. *)
val int_in : t -> int -> int -> int

val bool : t -> bool

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

(** [float t bound] is uniform over [0, bound). *)
val float : t -> float -> float

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** Uniformly chosen element. Raises on an empty array. *)
val choose : t -> 'a array -> 'a
