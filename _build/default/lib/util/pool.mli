(** A work-stealing pool of OCaml 5 domains for embarrassingly parallel
    campaigns: tasks live in one shared arena and idle workers steal the
    next unclaimed index, so an uneven mix (a long mcf run next to a short
    gzip run) still balances. Results come back in input order, which keeps
    parallel campaigns deterministic: slot [i] of the output is always
    [f input.(i)], no matter which domain computed it. *)

type t

val create : ?domains:int -> unit -> t
(** [create ?domains ()] sizes the pool. [domains] defaults to
    {!Domain.recommended_domain_count}. Raises [Invalid_argument] if
    [domains < 1]. A pool holds no live domains between calls: workers are
    spawned per operation and joined before it returns, so there is
    nothing to shut down and a pool survives a task that raises. *)

val domains : t -> int
(** Number of domains a parallel operation may use (including the caller,
    which also works). *)

val map_array : t -> f:('a -> 'b) -> 'a array -> 'b array
(** [map_array t ~f arr] applies [f] to every element on the pool.
    Output order matches input order. If one or more tasks raise, every
    domain is still joined (no leak), and then the first exception
    observed is re-raised with its backtrace. *)

val map_list : t -> f:('a -> 'b) -> 'a list -> 'b list
(** List version of {!map_array}; same ordering and exception contract. *)

val run : t -> (unit -> unit) list -> unit
(** [run t tasks] executes a list of thunks on the pool. Same exception
    contract as {!map_array}; an empty list is a no-op. *)
