(** Integer register-file energy accounting (Section 5.2.3): port
    reads/writes plus per-powered-bank precharge and leakage; the
    baseline keeps every bank powered, gating powers only banks holding
    a live register. *)

type energy = {
  dynamic : float;
  static_ : float;
}

val int_baseline :
  Params.t -> Sdiq_cpu.Config.t -> Sdiq_cpu.Stats.t -> energy

val int_gated : Params.t -> Sdiq_cpu.Stats.t -> energy
