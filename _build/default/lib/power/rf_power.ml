(* Integer register-file energy accounting (Section 5.2.3).

   "Delaying the dispatch of instructions means that fewer registers are
   needed simultaneously. By banking them we can turn off those banks that
   are not in use, saving static and dynamic power."

   Dynamic energy: port reads/writes plus a per-powered-bank per-cycle
   precharge that gating removes. Static: per-powered-bank leakage. The
   baseline keeps every bank powered. *)

open Sdiq_cpu

type energy = {
  dynamic : float;
  static_ : float;
}

let banks (cfg : Config.t) = Config.rf_banks cfg

let port_activity (p : Params.t) ~reads ~writes =
  (float_of_int reads *. p.Params.e_rf_read)
  +. (float_of_int writes *. p.Params.e_rf_write)

(* Baseline: all banks always on. *)
let int_baseline (p : Params.t) (cfg : Config.t) (s : Stats.t) : energy =
  let bank_cycles = float_of_int (banks cfg * s.Stats.cycles) in
  {
    dynamic =
      port_activity p ~reads:s.Stats.int_rf_reads ~writes:s.Stats.int_rf_writes
      +. (bank_cycles *. p.Params.e_rf_bank_cycle);
    static_ = bank_cycles *. p.Params.rf_leak_bank_cycle;
  }

(* With bank gating: only banks holding a live register are powered. *)
let int_gated (p : Params.t) (s : Stats.t) : energy =
  let bank_cycles = float_of_int s.Stats.int_rf_banks_on_sum in
  {
    dynamic =
      port_activity p ~reads:s.Stats.int_rf_reads ~writes:s.Stats.int_rf_writes
      +. (bank_cycles *. p.Params.e_rf_bank_cycle);
    static_ = bank_cycles *. p.Params.rf_leak_bank_cycle;
  }
