(** Component-level energy breakdown of one run (Wattch-style): where the
    issue queue's and register file's energy goes under the technique
    view. *)

type component = {
  label : string;
  energy : float;
  share_pct : float;
}

type t = {
  total : float;
  components : component list;
}

val iq : ?params:Params.t -> Sdiq_cpu.Stats.t -> t
val int_rf : ?params:Params.t -> Sdiq_cpu.Stats.t -> t
val pp : Format.formatter -> t -> unit
