(* Normalised savings of a technique run against a baseline run — the
   quantities every figure in the paper's evaluation plots.

   All savings are energy ratios over the whole program run, so a slower
   technique pays for its extra cycles in precharge and leakage, exactly
   as in the paper (its static savings of 31% are below its 37% banks-off
   because of the small IPC loss). *)

open Sdiq_cpu

type t = {
  ipc_loss_pct : float;           (* Figure 6 / 10 *)
  iq_occupancy_reduction_pct : float; (* Figure 7 *)
  iq_dynamic_saving_pct : float;  (* Figure 8 / 11 *)
  iq_static_saving_pct : float;
  iq_banks_off_pct : float;
  rf_dynamic_saving_pct : float;  (* Figure 9 / 12 *)
  rf_static_saving_pct : float;
  dispatch_reduction_pct : float; (* in-flight pressure proxy, Section 5.2.3 *)
}

let pct ~base v = if base = 0. then 0. else (base -. v) /. base *. 100.

let compute ?(params = Params.default) ?(cfg = Config.default)
    ~(base : Stats.t) (tech : Stats.t) : t =
  let base_iq = Iq_power.naive params cfg base in
  let tech_iq = Iq_power.technique params tech in
  let base_rf = Rf_power.int_baseline params cfg base in
  let tech_rf = Rf_power.int_gated params tech in
  {
    ipc_loss_pct = pct ~base:(Stats.ipc base) (Stats.ipc tech);
    iq_occupancy_reduction_pct =
      pct ~base:(Stats.avg_iq_occupancy base) (Stats.avg_iq_occupancy tech);
    iq_dynamic_saving_pct =
      pct ~base:base_iq.Iq_power.dynamic tech_iq.Iq_power.dynamic;
    iq_static_saving_pct =
      pct ~base:base_iq.Iq_power.static_ tech_iq.Iq_power.static_;
    iq_banks_off_pct =
      (let nb = float_of_int (Config.iq_banks cfg) in
       if tech.Stats.cycles = 0 then 0.
       else
         100.
         *. (1.
             -. float_of_int tech.Stats.iq_banks_on_sum
                /. (nb *. float_of_int tech.Stats.cycles)));
    rf_dynamic_saving_pct =
      pct ~base:base_rf.Rf_power.dynamic tech_rf.Rf_power.dynamic;
    rf_static_saving_pct =
      pct ~base:base_rf.Rf_power.static_ tech_rf.Rf_power.static_;
    dispatch_reduction_pct =
      pct ~base:(Stats.avg_int_rf_live base) (Stats.avg_int_rf_live tech);
  }

(* The "nonEmpty" bar of Figure 8: wakeup gating alone on the baseline
   machine, no resizing, relative to the naive baseline. *)
let non_empty_dynamic_saving ?(params = Params.default)
    ?(cfg = Config.default) (base : Stats.t) : float =
  let naive = Iq_power.naive params cfg base in
  let gated = Iq_power.gated params cfg base in
  pct ~base:naive.Iq_power.dynamic gated.Iq_power.dynamic

let pp ppf t =
  Fmt.pf ppf
    "IPC loss %.2f%%, IQ occ -%.1f%%, IQ dyn -%.1f%%, IQ static -%.1f%% \
     (banks off %.1f%%), RF dyn -%.1f%%, RF static -%.1f%%"
    t.ipc_loss_pct t.iq_occupancy_reduction_pct t.iq_dynamic_saving_pct
    t.iq_static_saving_pct t.iq_banks_off_pct t.rf_dynamic_saving_pct
    t.rf_static_saving_pct
