lib/power/rf_power.mli: Params Sdiq_cpu
