lib/power/breakdown.mli: Format Params Sdiq_cpu
