lib/power/report.mli: Format Params Sdiq_cpu
