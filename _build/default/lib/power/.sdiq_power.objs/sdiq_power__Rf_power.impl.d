lib/power/rf_power.ml: Config Params Sdiq_cpu Stats
