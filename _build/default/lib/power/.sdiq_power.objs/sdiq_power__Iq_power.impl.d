lib/power/iq_power.ml: Config Params Sdiq_cpu Stats
