lib/power/params.mli:
