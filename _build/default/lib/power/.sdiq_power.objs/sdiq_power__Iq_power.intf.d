lib/power/iq_power.mli: Params Sdiq_cpu
