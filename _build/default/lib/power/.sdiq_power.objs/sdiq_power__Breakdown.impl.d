lib/power/breakdown.ml: Fmt List Params Sdiq_cpu Stats
