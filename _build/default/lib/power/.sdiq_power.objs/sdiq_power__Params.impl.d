lib/power/params.ml:
