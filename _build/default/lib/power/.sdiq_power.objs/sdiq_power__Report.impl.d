lib/power/report.ml: Config Fmt Iq_power Params Rf_power Sdiq_cpu Stats
