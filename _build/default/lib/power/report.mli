(** Normalised savings of a technique run against a baseline run — the
    quantities every figure in the paper's evaluation plots. Energies are
    integrated over the whole run, so a slower technique pays for its
    extra cycles in precharge and leakage, exactly as in the paper. *)

type t = {
  ipc_loss_pct : float;               (** Figures 6 and 10 *)
  iq_occupancy_reduction_pct : float; (** Figure 7 *)
  iq_dynamic_saving_pct : float;      (** Figures 8 and 11 *)
  iq_static_saving_pct : float;
  iq_banks_off_pct : float;
  rf_dynamic_saving_pct : float;      (** Figures 9 and 12 *)
  rf_static_saving_pct : float;
  dispatch_reduction_pct : float;
      (** reduction in simultaneously-live integer registers *)
}

val compute :
  ?params:Params.t ->
  ?cfg:Sdiq_cpu.Config.t ->
  base:Sdiq_cpu.Stats.t ->
  Sdiq_cpu.Stats.t ->
  t

(** The "nonEmpty" bar of Figure 8: wakeup gating alone on the baseline
    machine, relative to the naive baseline. *)
val non_empty_dynamic_saving :
  ?params:Params.t -> ?cfg:Sdiq_cpu.Config.t -> Sdiq_cpu.Stats.t -> float

val pp : Format.formatter -> t -> unit
