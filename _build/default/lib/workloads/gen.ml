(* Deterministic memory initialisers shared by the workloads.

   Addresses are byte addresses: a "word" occupies 4 address units so the
   caches (32/64-byte lines) see realistic spatial locality. *)

open Sdiq_isa
open Sdiq_util

let word = 4

(* Fill [len] words starting at byte address [base] with values in
   [0, max). *)
let fill_random rng st ~base ~len ~max =
  for i = 0 to len - 1 do
    Exec.poke st (base + (i * word)) (Rng.int rng max)
  done

(* Fill with a fixed value. *)
let fill_const st ~base ~len v =
  for i = 0 to len - 1 do
    Exec.poke st (base + (i * word)) v
  done

(* A random single-cycle permutation for pointer chasing: element i holds
   the byte address of the next element, and following [next] visits every
   element exactly once before returning (Sattolo's algorithm). [stride] is
   the element size in words. *)
let fill_chain rng st ~base ~len ~stride =
  let order = Array.init len (fun i -> i) in
  (* Sattolo: single cycle. *)
  for i = len - 1 downto 1 do
    let j = Rng.int rng i in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  let addr_of k = base + (order.(k) * stride * word) in
  for k = 0 to len - 1 do
    let next = addr_of ((k + 1) mod len) in
    Exec.poke st (addr_of k) next
  done;
  addr_of 0

(* Skewed small-integer stream (Zipf-ish over [0, kinds)): the common cases
   dominate, as opcode streams do. *)
let fill_skewed rng st ~base ~len ~kinds =
  for i = 0 to len - 1 do
    let r = Rng.int rng 100 in
    let v =
      if r < 55 then 0
      else if r < 75 then 1
      else if r < 86 then 2
      else if r < 93 then 3
      else Rng.int rng kinds
    in
    Exec.poke st (base + (i * word)) v
  done
