(* gcc stand-in: a bison-style dispatch switch over a token stream.

   The paper singles gcc out: its bison-generated parser "contains a large
   switch statement (374 cases) and many gotos, which create a complex
   control flow graph", and its residual IPC loss under the technique comes
   from the analysis's conservative treatment of those paths. This kernel
   dispatches over a skewed token stream through a branch tree into many
   distinct case bodies, some of which jump into shared tails or call tiny
   helpers — lots of small basic blocks with many predecessors. *)

open Sdiq_isa
open Sdiq_util

let stream_base = 0x1_0000 (* 16384 words *)
let stream_words = 16384
let table_base = 0x3_0000

let build ?(outer = 35_000) () =
  let r = Reg.int in
  Bench.make ~name:"gcc"
    ~description:"switch-dispatch over a token stream, complex CFG"
    ~build:(fun b ->
      let p = Asm.proc b "main" in
      (* r1 = iterations, r2 = cursor, r3 = accumulator, r4 = token *)
      Asm.li p (r 1) outer;
      Asm.li p (r 2) stream_base;
      Asm.li p (r 3) 0;
      Asm.li p (r 20) table_base;
      Asm.label p "loop";
      Asm.load p (r 4) (r 2) 0;
      (* dispatch tree: binary on bit 2, then chains of equality tests *)
      Asm.andi p (r 5) (r 4) 4;
      Asm.bne p (r 5) Reg.zero "hi_cases";
      Asm.li p (r 6) 0;
      Asm.beq p (r 4) (r 6) "case0";
      Asm.li p (r 6) 1;
      Asm.beq p (r 4) (r 6) "case1";
      Asm.li p (r 6) 2;
      Asm.beq p (r 4) (r 6) "case2";
      Asm.jmp p "case3";
      Asm.label p "hi_cases";
      Asm.li p (r 6) 4;
      Asm.beq p (r 4) (r 6) "case4";
      Asm.li p (r 6) 5;
      Asm.beq p (r 4) (r 6) "case5";
      Asm.li p (r 6) 6;
      Asm.beq p (r 4) (r 6) "case6";
      Asm.jmp p "case7";
      (* case bodies: distinct mixes, some goto-style jumps into shared
         tails, some helper calls *)
      Asm.label p "case0";
      Asm.addi p (r 3) (r 3) 1;
      Asm.shli p (r 7) (r 3) 1;
      Asm.xor p (r 3) (r 3) (r 7);
      Asm.load p (r 8) (r 20) 4;
      Asm.load p (r 9) (r 20) 12;
      Asm.add p (r 8) (r 8) (r 4);
      Asm.xor p (r 9) (r 9) (r 3);
      Asm.add p (r 3) (r 3) (r 8);
      Asm.store p (r 20) (r 9) 12;
      Asm.shri p (r 10) (r 3) 4;
      Asm.xor p (r 3) (r 3) (r 10);
      Asm.jmp p "join";
      Asm.label p "case1";
      Asm.load p (r 7) (r 20) 0;
      Asm.load p (r 11) (r 20) 20;
      Asm.add p (r 3) (r 3) (r 7);
      Asm.shli p (r 12) (r 11) 2;
      Asm.sub p (r 12) (r 12) (r 11);
      Asm.add p (r 3) (r 3) (r 12);
      Asm.store p (r 20) (r 3) 0;
      Asm.andi p (r 13) (r 3) 255;
      Asm.store p (r 20) (r 13) 24;
      Asm.jmp p "join";
      Asm.label p "case2";
      Asm.mul p (r 7) (r 4) (r 3);
      Asm.shri p (r 7) (r 7) 3;
      Asm.add p (r 3) (r 3) (r 7);
      Asm.jmp p "shared_tail"; (* goto into another case's tail *)
      Asm.label p "case3";
      Asm.call p "reduce";
      Asm.jmp p "join";
      Asm.label p "case4";
      Asm.sub p (r 3) (r 3) (r 4);
      Asm.label p "shared_tail";
      Asm.andi p (r 3) (r 3) 1048575;
      Asm.jmp p "join";
      Asm.label p "case5";
      Asm.load p (r 7) (r 20) 8;
      Asm.mul p (r 8) (r 7) (r 7);
      Asm.add p (r 3) (r 3) (r 8);
      Asm.jmp p "join";
      Asm.label p "case6";
      Asm.call p "emit";
      Asm.jmp p "join";
      Asm.label p "case7";
      Asm.shri p (r 7) (r 3) 2;
      Asm.xor p (r 3) (r 3) (r 7);
      Asm.addi p (r 3) (r 3) 7;
      Asm.label p "join";
      (* advance cursor with wrap *)
      Asm.addi p (r 2) (r 2) 4;
      Asm.li p (r 7) (stream_base + (stream_words * 4));
      Asm.blt p (r 2) (r 7) "no_wrap";
      Asm.li p (r 2) stream_base;
      Asm.label p "no_wrap";
      Asm.addi p (r 1) (r 1) (-1);
      Asm.bne p (r 1) Reg.zero "loop";
      Asm.store p Reg.zero (r 3) 0;
      Asm.halt p;
      (* helper: fold the accumulator (grammar reduction) *)
      let q = Asm.proc b "reduce" in
      Asm.shri q (r 9) (r 3) 5;
      Asm.xor q (r 3) (r 3) (r 9);
      Asm.addi q (r 3) (r 3) 13;
      Asm.ret q;
      (* helper: spill the accumulator into the side table *)
      let q = Asm.proc b "emit" in
      Asm.andi q (r 9) (r 3) 255;
      Asm.shli q (r 9) (r 9) 2;
      Asm.add q (r 9) (r 9) (r 20);
      Asm.store q (r 9) (r 3) 16;
      Asm.ret q)
    ~init:(fun st ->
      let rng = Rng.create 0x6CC in
      Gen.fill_skewed rng st ~base:stream_base ~len:stream_words ~kinds:8;
      Gen.fill_const st ~base:table_base ~len:512 1)
