(* The benchmark suite: the eleven SPECint2000 programs the paper
   evaluates (eon is excluded there too, being C++), in the order its
   figures list them. *)

let all () : Bench.t list =
  [
    W_gzip.build ();
    W_vpr.build ();
    W_gcc.build ();
    W_mcf.build ();
    W_crafty.build ();
    W_parser.build ();
    W_perlbmk.build ();
    W_gap.build ();
    W_vortex.build ();
    W_bzip2.build ();
    W_twolf.build ();
  ]

let names () = List.map (fun (b : Bench.t) -> b.Bench.name) (all ())

let find name =
  List.find_opt (fun (b : Bench.t) -> b.Bench.name = name) (all ())

(* Smaller instances for tests. *)
let tiny () : Bench.t list =
  [
    W_gzip.build ~outer:300 ();
    W_vpr.build ~outer:300 ();
    W_gcc.build ~outer:300 ();
    W_mcf.build ~outer:300 ();
    W_crafty.build ~outer:300 ();
    W_parser.build ~outer:300 ();
    W_perlbmk.build ~outer:300 ();
    W_gap.build ~outer:20 ();
    W_vortex.build ~outer:300 ();
    W_bzip2.build ~outer:50 ();
    W_twolf.build ~outer:300 ();
  ]
