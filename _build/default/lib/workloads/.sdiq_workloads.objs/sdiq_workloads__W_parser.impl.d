lib/workloads/w_parser.ml: Asm Bench Exec Gen Reg Rng Sdiq_isa Sdiq_util
