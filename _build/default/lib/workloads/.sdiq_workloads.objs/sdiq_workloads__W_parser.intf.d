lib/workloads/w_parser.mli: Bench
