lib/workloads/w_crafty.mli: Bench
