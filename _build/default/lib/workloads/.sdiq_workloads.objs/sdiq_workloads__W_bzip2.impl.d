lib/workloads/w_bzip2.ml: Asm Bench Gen Reg Rng Sdiq_isa Sdiq_util
