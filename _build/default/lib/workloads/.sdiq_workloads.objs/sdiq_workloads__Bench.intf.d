lib/workloads/bench.mli: Sdiq_isa
