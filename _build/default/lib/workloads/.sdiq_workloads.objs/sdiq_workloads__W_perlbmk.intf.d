lib/workloads/w_perlbmk.mli: Bench
