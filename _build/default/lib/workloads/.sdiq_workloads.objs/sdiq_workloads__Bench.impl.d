lib/workloads/bench.ml: Asm Exec Prog Sdiq_isa
