lib/workloads/w_twolf.mli: Bench
