lib/workloads/w_vpr.mli: Bench
