lib/workloads/w_gcc.ml: Asm Bench Gen Reg Rng Sdiq_isa Sdiq_util
