lib/workloads/w_bzip2.mli: Bench
