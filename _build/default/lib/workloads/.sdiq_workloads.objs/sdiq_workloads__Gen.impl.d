lib/workloads/gen.ml: Array Exec Rng Sdiq_isa Sdiq_util
