lib/workloads/w_twolf.ml: Asm Bench Exec Reg Rng Sdiq_isa Sdiq_util
