lib/workloads/w_gcc.mli: Bench
