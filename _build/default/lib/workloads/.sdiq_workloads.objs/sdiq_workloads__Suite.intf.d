lib/workloads/suite.mli: Bench
