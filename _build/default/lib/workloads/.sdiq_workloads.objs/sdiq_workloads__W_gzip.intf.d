lib/workloads/w_gzip.mli: Bench
