lib/workloads/w_gap.mli: Bench
