lib/workloads/w_vortex.mli: Bench
