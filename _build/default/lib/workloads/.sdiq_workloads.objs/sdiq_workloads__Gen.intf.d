lib/workloads/gen.mli: Sdiq_isa Sdiq_util
