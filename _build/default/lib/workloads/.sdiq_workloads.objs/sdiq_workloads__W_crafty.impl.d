lib/workloads/w_crafty.ml: Asm Bench Gen Reg Rng Sdiq_isa Sdiq_util
