lib/workloads/w_vpr.ml: Asm Bench Gen Reg Rng Sdiq_isa Sdiq_util
