lib/workloads/w_perlbmk.ml: Asm Bench Gen Reg Rng Sdiq_isa Sdiq_util
