lib/workloads/w_vortex.ml: Asm Bench Exec Gen Reg Rng Sdiq_isa Sdiq_util
