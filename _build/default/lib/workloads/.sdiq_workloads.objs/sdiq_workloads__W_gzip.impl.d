lib/workloads/w_gzip.ml: Asm Bench Exec Gen Reg Rng Sdiq_isa Sdiq_util
