lib/workloads/w_gap.ml: Asm Bench Gen Reg Rng Sdiq_isa Sdiq_util
