lib/workloads/w_mcf.mli: Bench
