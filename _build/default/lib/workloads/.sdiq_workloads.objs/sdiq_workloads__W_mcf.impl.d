lib/workloads/w_mcf.ml: Asm Bench Exec Gen Reg Rng Sdiq_isa Sdiq_util
