(* crafty stand-in: bitboard move generation.

   Long stretches of register-resident bit manipulation — shifted attack
   masks, occupancy intersections, an unrolled population count — with few
   memory accesses and predictable loop branches. Character: very high
   ILP, ALU-bound, the kind of code whose wide parallelism genuinely needs
   queue entries. *)

open Sdiq_isa
open Sdiq_util

let board_base = 0x1_0000

let build ?(outer = 12_000) () =
  let r = Reg.int in
  Bench.make ~name:"crafty" ~description:"bitboard move-generation kernel"
    ~build:(fun b ->
      let p = Asm.proc b "main" in
      (* r1 = iterations; r2..r5 bitboards; r6..r13 scratch;
         r14 = popcount acc; r15 = board base *)
      Asm.li p (r 1) outer;
      Asm.li p (r 15) board_base;
      Asm.load p (r 2) (r 15) 0;
      Asm.load p (r 3) (r 15) 4;
      Asm.load p (r 4) (r 15) 8;
      Asm.li p (r 14) 0;
      Asm.li p (r 17) 0;
      Asm.label p "loop";
      (* generate shifted attack sets in parallel *)
      Asm.shli p (r 6) (r 2) 7;
      Asm.shli p (r 7) (r 2) 9;
      Asm.shri p (r 8) (r 2) 7;
      Asm.shri p (r 9) (r 2) 9;
      Asm.or_ p (r 6) (r 6) (r 7);
      Asm.or_ p (r 8) (r 8) (r 9);
      Asm.or_ p (r 6) (r 6) (r 8);
      (* mask with occupancy and opponent boards *)
      Asm.xor p (r 7) (r 3) (r 4);
      Asm.and_ p (r 9) (r 6) (r 7);
      Asm.or_ p (r 10) (r 9) (r 3);
      Asm.xor p (r 11) (r 10) (r 4);
      (* unrolled 4-step popcount over nibbles, two accumulator chains so
         the reduction does not trail the rest of the body *)
      Asm.andi p (r 12) (r 11) 15;
      Asm.add p (r 14) (r 14) (r 12);
      Asm.shri p (r 13) (r 11) 4;
      Asm.andi p (r 12) (r 13) 15;
      Asm.add p (r 17) (r 17) (r 12);
      Asm.shri p (r 13) (r 11) 8;
      Asm.andi p (r 12) (r 13) 15;
      Asm.add p (r 14) (r 14) (r 12);
      Asm.shri p (r 13) (r 11) 12;
      Asm.andi p (r 12) (r 13) 15;
      Asm.add p (r 17) (r 17) (r 12);
      (* evolve the boards so work never becomes constant *)
      Asm.shli p (r 6) (r 2) 1;
      Asm.shri p (r 7) (r 2) 3;
      Asm.xor p (r 2) (r 6) (r 7);
      Asm.addi p (r 2) (r 2) 0x9E37;
      Asm.xor p (r 3) (r 3) (r 9);
      Asm.add p (r 4) (r 4) (r 10);
      (* rare branch: restock a board when it collapses to zero *)
      Asm.bne p (r 2) Reg.zero "alive";
      Asm.load p (r 2) (r 15) 12;
      Asm.label p "alive";
      Asm.addi p (r 1) (r 1) (-1);
      Asm.bne p (r 1) Reg.zero "loop";
      Asm.add p (r 14) (r 14) (r 17);
      Asm.store p Reg.zero (r 14) 0;
      Asm.halt p)
    ~init:(fun st ->
      let rng = Rng.create 0xC4AF7 in
      Gen.fill_random rng st ~base:board_base ~len:16 ~max:(1 lsl 30))
