(** Deterministic memory initialisers shared by the workloads. Addresses
    are byte addresses: a word occupies 4 units so the caches see
    realistic spatial locality. *)

val word : int

(** Fill [len] words from byte address [base] with values in [0, max). *)
val fill_random :
  Sdiq_util.Rng.t -> Sdiq_isa.Exec.state -> base:int -> len:int -> max:int ->
  unit

val fill_const : Sdiq_isa.Exec.state -> base:int -> len:int -> int -> unit

(** A random single-cycle permutation for pointer chasing (Sattolo):
    element [i] holds the byte address of the next element. [stride] is
    the element size in words. Returns the first element's address. *)
val fill_chain :
  Sdiq_util.Rng.t ->
  Sdiq_isa.Exec.state ->
  base:int ->
  len:int ->
  stride:int ->
  int

(** Skewed small-integer stream: common cases dominate, as in opcode
    streams. *)
val fill_skewed :
  Sdiq_util.Rng.t -> Sdiq_isa.Exec.state -> base:int -> len:int -> kinds:int ->
  unit
