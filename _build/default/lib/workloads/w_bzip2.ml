(* bzip2 stand-in: block-sort compression inner loops.

   Bubble-style sorting passes over key blocks (compare-and-swap with
   ~50% taken branches) interleaved with a rank helper procedure that
   multiplies — so the multiplier pressure spans a procedure boundary
   inside the hot loop. Character: store/load-heavy, branchy, and the
   paper's biggest beneficiary of Improved interprocedural FU analysis
   (its IPC loss previously dominated by exactly this pattern). *)

open Sdiq_isa
open Sdiq_util

let keys_base = 0x1_0000 (* 8192 words *)
let keys = 8192
let rank_base = 0x3_0000

let build ?(outer = 6_000) () =
  let r = Reg.int in
  Bench.make ~name:"bzip2" ~description:"block-sort compression kernel"
    ~build:(fun b ->
      let p = Asm.proc b "main" in
      (* r1 = passes, r2 = cursor, r23 = window end, r3 = acc *)
      Asm.li p (r 1) outer;
      Asm.li p (r 3) 0;
      Asm.li p (r 20) keys_base;
      Asm.label p "pass";
      (* each pass works a 64-key window whose start slides *)
      Asm.andi p (r 4) (r 1) 127;
      Asm.shli p (r 4) (r 4) 8;
      Asm.add p (r 2) (r 20) (r 4);
      Asm.addi p (r 23) (r 2) 252;
      Asm.label p "sweep";
      Asm.load p (r 5) (r 2) 0;
      Asm.load p (r 6) (r 2) 4;
      Asm.sle p (r 7) (r 5) (r 6);
      Asm.bne p (r 7) Reg.zero "no_swap";
      Asm.store p (r 2) (r 6) 0;
      Asm.store p (r 2) (r 5) 4;
      Asm.addi p (r 3) (r 3) 1;
      Asm.label p "no_swap";
      (* rank update via the helper every fourth step *)
      Asm.andi p (r 8) (r 2) 15;
      Asm.bne p (r 8) Reg.zero "no_rank";
      Asm.call p "rank";
      Asm.label p "no_rank";
      Asm.addi p (r 2) (r 2) 4;
      Asm.blt p (r 2) (r 23) "sweep";
      Asm.addi p (r 1) (r 1) (-1);
      Asm.bne p (r 1) Reg.zero "pass";
      Asm.store p Reg.zero (r 3) 0;
      Asm.halt p;
      (* rank: multiply-heavy bucket update over the current pair *)
      let q = Asm.proc b "rank" in
      Asm.li q (r 9) 2654435761;
      Asm.mul q (r 10) (r 5) (r 9);
      Asm.mul q (r 11) (r 6) (r 9);
      Asm.add q (r 10) (r 10) (r 11);
      Asm.shri q (r 10) (r 10) 20;
      Asm.andi q (r 10) (r 10) 255;
      Asm.shli q (r 10) (r 10) 2;
      Asm.li q (r 12) rank_base;
      Asm.add q (r 10) (r 10) (r 12);
      Asm.load q (r 13) (r 10) 0;
      Asm.addi q (r 13) (r 13) 1;
      Asm.store q (r 10) (r 13) 0;
      Asm.ret q)
    ~init:(fun st ->
      let rng = Rng.create 0xB21 in
      Gen.fill_random rng st ~base:keys_base ~len:keys ~max:1_000_000;
      Gen.fill_const st ~base:rank_base ~len:256 0)
