(* A workload: a program plus its memory initialiser.

   Each benchmark mimics the dominant character of its SPECint2000
   namesake (the paper's benchmark set, Section 5.1): instruction mix,
   branch behaviour, memory footprint and call density — the axes that
   drive the paper's per-benchmark variation. All initialisation is
   deterministic from a fixed per-benchmark seed. *)

open Sdiq_isa

type t = {
  name : string;
  description : string;
  prog : Prog.t;
  init : Exec.state -> unit;
}

let make ~name ~description ~build ~init =
  let b = Asm.create () in
  build b;
  let prog = Asm.assemble b ~entry:"main" in
  { name; description; prog; init }

(* Convenience: a workload whose program was built elsewhere. *)
let of_prog ~name ~description prog ~init = { name; description; prog; init }
