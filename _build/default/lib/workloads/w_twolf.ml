(* twolf stand-in: simulated-annealing cell placement.

   Each step proposes exchanging two cells, computes the wirelength delta
   (loads, multiplies, branchy abs), and accepts the move either when it
   improves or pseudo-randomly per the cooling schedule — an intrinsically
   unpredictable branch. Character: mixed arithmetic/memory, unpredictable
   accept branch, moderate footprint. *)

open Sdiq_isa
open Sdiq_util

let cell_base = 0x10_0000
let cell_count = 16384 (* 4 words each: x, y, width, net *)

let build ?(outer = 25_000) () =
  let r = Reg.int in
  Bench.make ~name:"twolf" ~description:"annealing placement kernel"
    ~build:(fun b ->
      let p = Asm.proc b "main" in
      (* r1 = steps, r2 = lcg, r3 = cost, r4 = temperature *)
      Asm.li p (r 1) outer;
      Asm.li p (r 2) 362_436_069;
      Asm.li p (r 3) 0;
      Asm.li p (r 4) 1024;
      Asm.li p (r 20) cell_base;
      Asm.label p "step";
      (* two random cells *)
      Asm.shli p (r 5) (r 2) 11;
      Asm.xor p (r 2) (r 2) (r 5);
      Asm.shri p (r 5) (r 2) 19;
      Asm.xor p (r 2) (r 2) (r 5);
      Asm.andi p (r 6) (r 2) 16383;
      Asm.shri p (r 7) (r 2) 15;
      Asm.andi p (r 7) (r 7) 16383;
      Asm.shli p (r 6) (r 6) 4; (* x16 bytes per cell *)
      Asm.shli p (r 7) (r 7) 4;
      Asm.add p (r 6) (r 6) (r 20);
      Asm.add p (r 7) (r 7) (r 20);
      (* wirelength delta: cross products of coordinates and net weights *)
      Asm.load p (r 8) (r 6) 0;
      Asm.load p (r 9) (r 7) 0;
      Asm.load p (r 10) (r 6) 12;
      Asm.load p (r 11) (r 7) 12;
      Asm.sub p (r 12) (r 8) (r 9);
      Asm.bge p (r 12) Reg.zero "abs_done";
      Asm.sub p (r 12) Reg.zero (r 12);
      Asm.label p "abs_done";
      Asm.mul p (r 13) (r 12) (r 10);
      Asm.mul p (r 14) (r 12) (r 11);
      Asm.sub p (r 15) (r 13) (r 14);
      (* accept when clearly improving, or per the cooling schedule; late
         in the schedule most moves are rejected, so the branch is biased *)
      Asm.li p (r 18) (-900);
      Asm.blt p (r 15) (r 18) "accept";
      Asm.andi p (r 16) (r 2) 8191;
      Asm.blt p (r 16) (r 4) "accept";
      Asm.jmp p "reject";
      Asm.label p "accept";
      Asm.store p (r 6) (r 9) 0;
      Asm.store p (r 7) (r 8) 0;
      Asm.add p (r 3) (r 3) (r 15);
      Asm.label p "reject";
      (* cool every 256 steps *)
      Asm.andi p (r 17) (r 1) 255;
      Asm.bne p (r 17) Reg.zero "no_cool";
      Asm.shri p (r 4) (r 4) 1;
      Asm.ori p (r 4) (r 4) 128; (* temperature floor *)
      Asm.label p "no_cool";
      Asm.addi p (r 1) (r 1) (-1);
      Asm.bne p (r 1) Reg.zero "step";
      Asm.store p Reg.zero (r 3) 0;
      Asm.halt p)
    ~init:(fun st ->
      let rng = Rng.create 0x2201F in
      for i = 0 to cell_count - 1 do
        let a = cell_base + (i * 16) in
        Exec.poke st a (Rng.int rng 2048);
        Exec.poke st (a + 4) (Rng.int rng 2048);
        Exec.poke st (a + 8) (1 + Rng.int rng 8);
        Exec.poke st (a + 12) (1 + Rng.int rng 16)
      done)
