(** The vpr stand-in; see the implementation header for its character.
    [outer] scales the amount of work. *)

val build : ?outer:int -> unit -> Bench.t
