(* vpr stand-in: placement cost evaluation.

   Pseudo-randomly chosen cell pairs have their bounding-box cost delta
   evaluated (loads of coordinates, absolute differences computed with
   compare-and-branch, a floating-point accumulation) and are swapped when
   the move helps. Character: data-dependent branches around arithmetic,
   mixed int/fp, medium working set. *)

open Sdiq_isa
open Sdiq_util

let x_base = 0x10_0000 (* 32768 words = 128KB *)
let y_base = 0x20_0000
let cells = 32768

let build ?(outer = 30_000) () =
  let r = Reg.int in
  let f = Reg.fp in
  Bench.make ~name:"vpr" ~description:"placement cost/swap kernel"
    ~build:(fun b ->
      let p = Asm.proc b "main" in
      (* r1 = iterations, r2 = lcg state, r20 = x base, r21 = y base,
         f1 = total cost *)
      Asm.li p (r 1) outer;
      Asm.li p (r 2) 123_456_789;
      Asm.li p (r 20) x_base;
      Asm.li p (r 21) y_base;
      Asm.fli p (f 1) 0.0;
      Asm.fli p (f 2) 0.999;
      Asm.label p "loop";
      (* two pseudo-random cell indices from an xorshift generator *)
      Asm.shli p (r 3) (r 2) 13;
      Asm.xor p (r 2) (r 2) (r 3);
      Asm.shri p (r 3) (r 2) 7;
      Asm.xor p (r 2) (r 2) (r 3);
      Asm.andi p (r 4) (r 2) 32767;
      Asm.shri p (r 5) (r 2) 15;
      Asm.andi p (r 5) (r 5) 32767;
      Asm.shli p (r 4) (r 4) 2;
      Asm.shli p (r 5) (r 5) 2;
      (* load both cells' coordinates *)
      Asm.add p (r 6) (r 20) (r 4);
      Asm.add p (r 7) (r 20) (r 5);
      Asm.load p (r 8) (r 6) 0;  (* x[a] *)
      Asm.load p (r 9) (r 7) 0;  (* x[b] *)
      Asm.add p (r 10) (r 21) (r 4);
      Asm.add p (r 11) (r 21) (r 5);
      Asm.load p (r 12) (r 10) 0; (* y[a] *)
      Asm.load p (r 13) (r 11) 0; (* y[b] *)
      (* |dx| with a branch, as compiled abs() *)
      Asm.sub p (r 14) (r 8) (r 9);
      Asm.bge p (r 14) Reg.zero "dx_pos";
      Asm.sub p (r 14) Reg.zero (r 14);
      Asm.label p "dx_pos";
      Asm.sub p (r 15) (r 12) (r 13);
      Asm.bge p (r 15) Reg.zero "dy_pos";
      Asm.sub p (r 15) Reg.zero (r 15);
      Asm.label p "dy_pos";
      Asm.add p (r 16) (r 14) (r 15);
      (* accumulate the cost in floating point, with decay *)
      Asm.itof p (f 3) (r 16);
      Asm.fmul p (f 1) (f 1) (f 2);
      Asm.fadd p (f 1) (f 1) (f 3);
      (* swap when the half-perimeter is very small: improving moves are
         rare, so the branch is well biased, as in the real annealer's
         late phases *)
      Asm.slti p (r 17) (r 16) 240;
      Asm.beq p (r 17) Reg.zero "no_swap";
      Asm.store p (r 6) (r 9) 0;
      Asm.store p (r 7) (r 8) 0;
      Asm.store p (r 10) (r 13) 0;
      Asm.store p (r 11) (r 12) 0;
      Asm.label p "no_swap";
      Asm.addi p (r 1) (r 1) (-1);
      Asm.bne p (r 1) Reg.zero "loop";
      Asm.ftoi p (r 18) (f 1);
      Asm.store p Reg.zero (r 18) 0;
      Asm.halt p)
    ~init:(fun st ->
      let rng = Rng.create 0xB0B in
      Gen.fill_random rng st ~base:x_base ~len:cells ~max:1024;
      Gen.fill_random rng st ~base:y_base ~len:cells ~max:1024)
