(* vortex stand-in: object-database transaction kernel.

   Every transaction runs a chain of procedures — validate, update, hash,
   insert — over 16-word objects in a heap larger than the L1, so
   independent transactions overlap their cache misses. Character: the
   highest call density in the suite with realistically-sized procedure
   bodies (15-25 instructions). This is the benchmark the paper reports
   as worst for the NOOP scheme (5.4% IPC loss, "due to functional unit
   contention across procedure boundaries which we currently do not
   analyse" plus NOOP dispatch-slot loss), recovering under Extension and
   Improved. *)

open Sdiq_isa
open Sdiq_util

let heap_base = 0x10_0000
let objects = 8192 (* 16 words each = 512KB *)
let index_base = 0x1_0000

let build ?(outer = 12_000) () =
  let r = Reg.int in
  Bench.make ~name:"vortex" ~description:"object-database transactions"
    ~build:(fun b ->
      let p = Asm.proc b "main" in
      (* r1 = transactions, r2 = lcg, r24 = object ptr, r26/r27 bases,
         r3 = status acc, r5 = validation result *)
      Asm.li p (r 1) outer;
      Asm.li p (r 2) 88_172_645;
      Asm.li p (r 26) heap_base;
      Asm.li p (r 27) index_base;
      Asm.li p (r 3) 0;
      Asm.label p "txn";
      (* choose an object *)
      Asm.shli p (r 4) (r 2) 13;
      Asm.xor p (r 2) (r 2) (r 4);
      Asm.shri p (r 4) (r 2) 17;
      Asm.xor p (r 2) (r 2) (r 4);
      Asm.andi p (r 4) (r 2) 8191;
      Asm.shli p (r 4) (r 4) 6; (* x64 bytes per object *)
      Asm.add p (r 24) (r 26) (r 4);
      Asm.call p "obj_validate";
      Asm.beq p (r 5) Reg.zero "skip";
      Asm.call p "obj_update";
      Asm.call p "obj_insert";
      Asm.addi p (r 3) (r 3) 1;
      Asm.label p "skip";
      Asm.addi p (r 1) (r 1) (-1);
      Asm.bne p (r 1) Reg.zero "txn";
      Asm.store p Reg.zero (r 3) 0;
      Asm.halt p;
      (* validate: checksum the header fields and range-check them *)
      let q = Asm.proc b "obj_validate" in
      Asm.load q (r 5) (r 24) 0;   (* type *)
      Asm.load q (r 6) (r 24) 4;   (* version *)
      Asm.load q (r 7) (r 24) 8;   (* payload a *)
      Asm.load q (r 8) (r 24) 12;  (* payload b *)
      Asm.load q (r 9) (r 24) 16;  (* checksum *)
      Asm.xor q (r 10) (r 7) (r 8);
      Asm.add q (r 10) (r 10) (r 6);
      Asm.shli q (r 11) (r 5) 3;
      Asm.xor q (r 10) (r 10) (r 11);
      Asm.andi q (r 10) (r 10) 1048575;
      Asm.sub q (r 12) (r 10) (r 9);
      Asm.slti q (r 13) (r 5) 4;
      Asm.beq q (r 13) Reg.zero "bad";
      Asm.slti q (r 13) (r 6) 1000000;
      Asm.beq q (r 13) Reg.zero "bad";
      Asm.li q (r 5) 1;
      Asm.add q (r 3) (r 3) (r 12);
      Asm.ret q;
      Asm.label q "bad";
      Asm.li q (r 5) 0;
      Asm.ret q;
      (* update: bump version, recompute payload and checksum fields *)
      let q = Asm.proc b "obj_update" in
      Asm.load q (r 6) (r 24) 4;
      Asm.load q (r 7) (r 24) 8;
      Asm.load q (r 8) (r 24) 12;
      Asm.load q (r 14) (r 24) 20;
      Asm.load q (r 15) (r 24) 24;
      Asm.addi q (r 6) (r 6) 1;
      Asm.add q (r 9) (r 7) (r 8);
      Asm.xor q (r 10) (r 7) (r 8);
      Asm.add q (r 11) (r 14) (r 15);
      Asm.shri q (r 12) (r 9) 3;
      Asm.xor q (r 12) (r 12) (r 11);
      Asm.store q (r 24) (r 6) 4;
      Asm.store q (r 24) (r 9) 20;
      Asm.store q (r 24) (r 10) 24;
      Asm.store q (r 24) (r 12) 28;
      Asm.xor q (r 10) (r 10) (r 12);
      Asm.andi q (r 10) (r 10) 1048575;
      Asm.store q (r 24) (r 10) 16;
      Asm.ret q;
      (* insert: hash the object and chain into two index buckets *)
      let q = Asm.proc b "obj_insert" in
      Asm.call q "obj_hash";
      Asm.andi q (r 12) (r 11) 4095;
      Asm.shli q (r 12) (r 12) 2;
      Asm.add q (r 12) (r 12) (r 27);
      Asm.load q (r 13) (r 12) 0;
      Asm.addi q (r 13) (r 13) 1;
      Asm.store q (r 12) (r 13) 0;
      Asm.shri q (r 14) (r 11) 12;
      Asm.andi q (r 14) (r 14) 4095;
      Asm.shli q (r 14) (r 14) 2;
      Asm.add q (r 14) (r 14) (r 27);
      Asm.load q (r 15) (r 14) 16384;
      Asm.add q (r 15) (r 15) (r 13);
      Asm.store q (r 14) (r 15) 16384;
      Asm.ret q;
      (* hash: three multiplies over the payload *)
      let q = Asm.proc b "obj_hash" in
      Asm.load q (r 11) (r 24) 20;
      Asm.load q (r 12) (r 24) 24;
      Asm.load q (r 16) (r 24) 28;
      Asm.li q (r 13) 40503;
      Asm.mul q (r 11) (r 11) (r 13);
      Asm.mul q (r 12) (r 12) (r 13);
      Asm.mul q (r 16) (r 16) (r 13);
      Asm.xor q (r 11) (r 11) (r 12);
      Asm.add q (r 11) (r 11) (r 16);
      Asm.shri q (r 12) (r 11) 7;
      Asm.xor q (r 11) (r 11) (r 12);
      Asm.ret q)
    ~init:(fun st ->
      let rng = Rng.create 0x40B7E8 in
      for i = 0 to objects - 1 do
        let a = heap_base + (i * 64) in
        Exec.poke st a (Rng.int rng 5);          (* type, mostly valid *)
        Exec.poke st (a + 4) (Rng.int rng 1000); (* version *)
        Exec.poke st (a + 8) (Rng.int rng 100000);
        Exec.poke st (a + 12) (Rng.int rng 100000);
        Exec.poke st (a + 16) (Rng.int rng 1048576);
        Exec.poke st (a + 20) (Rng.int rng 100000);
        Exec.poke st (a + 24) (Rng.int rng 100000);
        Exec.poke st (a + 28) (Rng.int rng 100000)
      done;
      Gen.fill_const st ~base:index_base ~len:8192 0)
