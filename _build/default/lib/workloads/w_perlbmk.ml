(* perlbmk stand-in: bytecode interpreter with frequent calls.

   A dispatch loop calls one handler procedure per opcode; handlers push
   and pop an operand stack in memory and one of them hashes (multiplies).
   Character: call-dense with short handler bodies, indirect-ish control
   via an equality-test chain, store/load traffic through the operand
   stack. *)

open Sdiq_isa
open Sdiq_util

let code_base = 0x1_0000 (* 8192 words *)
let code_words = 8192
let stack_base = 0x3_0000
let hash_base = 0x4_0000

let build ?(outer = 30_000) () =
  let r = Reg.int in
  Bench.make ~name:"perlbmk" ~description:"bytecode interpreter, call-dense"
    ~build:(fun b ->
      let p = Asm.proc b "main" in
      (* r1 = iterations, r2 = code cursor, r3 = value reg,
         r25 = operand stack pointer, r26 = hash base *)
      Asm.li p (r 1) outer;
      Asm.li p (r 2) code_base;
      Asm.li p (r 3) 1;
      Asm.li p (r 25) stack_base;
      Asm.li p (r 26) hash_base;
      Asm.label p "loop";
      Asm.load p (r 4) (r 2) 0;
      Asm.li p (r 5) 0;
      Asm.beq p (r 4) (r 5) "op_push";
      Asm.li p (r 5) 1;
      Asm.beq p (r 4) (r 5) "op_add";
      Asm.li p (r 5) 2;
      Asm.beq p (r 4) (r 5) "op_hash";
      Asm.li p (r 5) 3;
      Asm.beq p (r 4) (r 5) "op_cmp";
      Asm.call p "h_str";
      Asm.jmp p "next";
      Asm.label p "op_push";
      Asm.call p "h_push";
      Asm.jmp p "next";
      Asm.label p "op_add";
      Asm.call p "h_add";
      Asm.jmp p "next";
      Asm.label p "op_hash";
      Asm.call p "h_hash";
      Asm.jmp p "next";
      Asm.label p "op_cmp";
      Asm.call p "h_cmp";
      Asm.label p "next";
      Asm.addi p (r 2) (r 2) 4;
      Asm.li p (r 5) (code_base + (code_words * 4));
      Asm.blt p (r 2) (r 5) "no_wrap";
      Asm.li p (r 2) code_base;
      Asm.label p "no_wrap";
      Asm.addi p (r 1) (r 1) (-1);
      Asm.bne p (r 1) Reg.zero "loop";
      Asm.store p Reg.zero (r 3) 0;
      Asm.halt p;
      (* push the value register, with a tag word and length update *)
      let q = Asm.proc b "h_push" in
      Asm.store q (r 25) (r 3) 0;
      Asm.shli q (r 10) (r 3) 1;
      Asm.xor q (r 10) (r 10) (r 3);
      Asm.andi q (r 10) (r 10) 65535;
      Asm.store q (r 25) (r 10) 2048;
      Asm.load q (r 11) (r 26) 4092;
      Asm.addi q (r 11) (r 11) 1;
      Asm.store q (r 26) (r 11) 4092;
      Asm.addi q (r 25) (r 25) 4;
      Asm.addi q (r 3) (r 3) 17;
      (* keep the stack bounded *)
      Asm.li q (r 9) (stack_base + 4096);
      Asm.blt q (r 25) (r 9) "ok";
      Asm.li q (r 25) stack_base;
      Asm.label q "ok";
      Asm.ret q;
      (* pop two, add, push *)
      let q = Asm.proc b "h_add" in
      Asm.li q (r 9) (stack_base + 8);
      Asm.bge q (r 25) (r 9) "deep";
      Asm.addi q (r 3) (r 3) 1;
      Asm.ret q;
      Asm.label q "deep";
      Asm.load q (r 9) (r 25) (-4);
      Asm.load q (r 10) (r 25) (-8);
      Asm.add q (r 9) (r 9) (r 10);
      Asm.store q (r 25) (r 9) (-8);
      Asm.addi q (r 25) (r 25) (-4);
      Asm.mov q (r 3) (r 9);
      Asm.ret q;
      (* hash the value into a table *)
      let q = Asm.proc b "h_hash" in
      Asm.li q (r 9) 2654435761;
      Asm.mul q (r 10) (r 3) (r 9);
      Asm.shri q (r 11) (r 10) 8;
      Asm.andi q (r 11) (r 11) 1023;
      Asm.shli q (r 11) (r 11) 2;
      Asm.add q (r 11) (r 11) (r 26);
      Asm.load q (r 12) (r 11) 0;
      Asm.add q (r 12) (r 12) (r 3);
      Asm.store q (r 11) (r 12) 0;
      Asm.xor q (r 3) (r 3) (r 10);
      Asm.ret q;
      (* compare top of stack with the value register *)
      let q = Asm.proc b "h_cmp" in
      Asm.load q (r 9) (r 25) (-4);
      Asm.blt q (r 9) (r 3) "less";
      Asm.addi q (r 3) (r 3) 3;
      Asm.ret q;
      Asm.label q "less";
      Asm.sub q (r 3) (r 3) (r 9);
      Asm.ret q;
      (* string-ish scramble over a few table words *)
      let q = Asm.proc b "h_str" in
      Asm.shli q (r 9) (r 3) 3;
      Asm.xor q (r 3) (r 3) (r 9);
      Asm.andi q (r 10) (r 3) 1023;
      Asm.shli q (r 10) (r 10) 2;
      Asm.add q (r 10) (r 10) (r 26);
      Asm.load q (r 11) (r 10) 0;
      Asm.load q (r 12) (r 10) 4096;
      Asm.add q (r 11) (r 11) (r 12);
      Asm.xor q (r 3) (r 3) (r 11);
      Asm.shri q (r 9) (r 3) 11;
      Asm.xor q (r 3) (r 3) (r 9);
      Asm.ret q)
    ~init:(fun st ->
      let rng = Rng.create 0x9E7 in
      Gen.fill_skewed rng st ~base:code_base ~len:code_words ~kinds:6;
      Gen.fill_const st ~base:hash_base ~len:1024 0)
