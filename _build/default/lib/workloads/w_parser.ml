(* parser stand-in: dictionary classification.

   Each "word" is classified through a data-dependent branch tree, a
   suffix scan runs until a sentinel, and small frequency counters are
   bumped in memory (load-modify-store with frequent forwarding).
   Character: branchy with mediocre predictability, short dependence
   chains, small working set. *)

open Sdiq_isa
open Sdiq_util

let words_base = 0x1_0000 (* 16384 words *)
let word_count = 16384
let counts_base = 0x3_0000 (* 64 counters *)

let build ?(outer = 30_000) () =
  let r = Reg.int in
  Bench.make ~name:"parser" ~description:"dictionary classification kernel"
    ~build:(fun b ->
      let p = Asm.proc b "main" in
      (* r1 = iterations, r2 = cursor, r3 = acc, r20/r21 bases *)
      Asm.li p (r 1) outer;
      Asm.li p (r 2) words_base;
      Asm.li p (r 3) 0;
      Asm.li p (r 21) counts_base;
      Asm.label p "loop";
      Asm.load p (r 4) (r 2) 0;
      (* classification tree on value ranges *)
      Asm.slti p (r 5) (r 4) 64;
      Asm.beq p (r 5) Reg.zero "big";
      Asm.slti p (r 5) (r 4) 16;
      Asm.beq p (r 5) Reg.zero "mid_small";
      Asm.addi p (r 3) (r 3) 1;
      Asm.jmp p "classify_done";
      Asm.label p "mid_small";
      Asm.addi p (r 3) (r 3) 2;
      Asm.jmp p "classify_done";
      Asm.label p "big";
      Asm.slti p (r 5) (r 4) 192;
      Asm.beq p (r 5) Reg.zero "huge";
      Asm.addi p (r 3) (r 3) 3;
      Asm.jmp p "classify_done";
      Asm.label p "huge";
      Asm.addi p (r 3) (r 3) 5;
      Asm.label p "classify_done";
      (* morphological features: parallel bit tricks over the word *)
      Asm.shli p (r 12) (r 4) 3;
      Asm.shri p (r 14) (r 4) 2;
      Asm.xor p (r 12) (r 12) (r 14);
      Asm.andi p (r 14) (r 12) 4095;
      Asm.add p (r 3) (r 3) (r 14);
      Asm.load p (r 15) (r 2) 8;
      Asm.load p (r 16) (r 2) 12;
      Asm.add p (r 15) (r 15) (r 16);
      Asm.xor p (r 3) (r 3) (r 15);
      (* suffix scan: walk forward until a zero word (data-dependent trip) *)
      Asm.mov p (r 6) (r 2);
      Asm.li p (r 7) 6; (* bound the scan *)
      Asm.label p "scan";
      Asm.load p (r 8) (r 6) 4;
      Asm.beq p (r 8) Reg.zero "scan_done";
      Asm.addi p (r 6) (r 6) 4;
      Asm.xor p (r 3) (r 3) (r 8);
      Asm.addi p (r 7) (r 7) (-1);
      Asm.bne p (r 7) Reg.zero "scan";
      Asm.label p "scan_done";
      (* bump the class counter: load-modify-store *)
      Asm.andi p (r 9) (r 4) 63;
      Asm.shli p (r 9) (r 9) 2;
      Asm.add p (r 9) (r 9) (r 21);
      Asm.load p (r 10) (r 9) 0;
      Asm.addi p (r 10) (r 10) 1;
      Asm.store p (r 9) (r 10) 0;
      (* advance with wrap *)
      Asm.addi p (r 2) (r 2) 4;
      Asm.li p (r 11) (words_base + ((word_count - 8) * 4));
      Asm.blt p (r 2) (r 11) "no_wrap";
      Asm.li p (r 2) words_base;
      Asm.label p "no_wrap";
      Asm.addi p (r 1) (r 1) (-1);
      Asm.bne p (r 1) Reg.zero "loop";
      Asm.store p Reg.zero (r 3) 0;
      Asm.halt p)
    ~init:(fun st ->
      let rng = Rng.create 0x9A45E4 in
      for i = 0 to word_count - 1 do
        (* Zero sentinels roughly every fourth word end the suffix scan. *)
        let v =
          if Rng.chance rng 0.25 then 0
          else if Rng.chance rng 0.8 then Rng.int rng 64
          else Rng.int rng 256
        in
        Exec.poke st (words_base + (i * 4)) v
      done;
      Gen.fill_const st ~base:counts_base ~len:64 0)
