(* gap stand-in: multiprecision-flavoured vector arithmetic.

   A four-lane unrolled multiply-accumulate inner loop (as a compiler
   would emit for this kind of kernel) with a serial carry folded through
   the products, and a division on a predictable schedule. Character:
   multiplier pressure (3 units, 4 multiplies per unrolled body in
   flight), wide bodies with real ILP, streaming loads. *)

open Sdiq_isa
open Sdiq_util

let a_base = 0x1_0000 (* 4096 words; the kernel is compute-bound *)
let b_base = 0x4_0000
let c_base = 0x8_0000
let vec = 4096

let build ?(outer = 3_000) () =
  let r = Reg.int in
  Bench.make ~name:"gap" ~description:"multiply-heavy vector arithmetic"
    ~build:(fun b ->
      let p = Asm.proc b "main" in
      (* r1 = outer count, r2 = byte index, r3 = carry, r20..r22 bases *)
      Asm.li p (r 1) outer;
      Asm.li p (r 20) a_base;
      Asm.li p (r 21) b_base;
      Asm.li p (r 22) c_base;
      Asm.label p "outer";
      Asm.li p (r 2) 0;
      Asm.li p (r 3) 1;
      Asm.label p "inner";
      Asm.add p (r 4) (r 20) (r 2);
      Asm.add p (r 5) (r 21) (r 2);
      (* four unrolled lanes: 8 loads, 4 multiplies *)
      Asm.load p (r 6) (r 4) 0;
      Asm.load p (r 7) (r 5) 0;
      Asm.load p (r 8) (r 4) 4;
      Asm.load p (r 9) (r 5) 4;
      Asm.load p (r 10) (r 4) 8;
      Asm.load p (r 11) (r 5) 8;
      Asm.load p (r 12) (r 4) 12;
      Asm.load p (r 13) (r 5) 12;
      Asm.mul p (r 14) (r 6) (r 7);
      Asm.mul p (r 15) (r 8) (r 9);
      Asm.mul p (r 16) (r 10) (r 11);
      Asm.mul p (r 17) (r 12) (r 13);
      (* pairwise combine, then the serial carry *)
      Asm.add p (r 18) (r 14) (r 15);
      Asm.xor p (r 19) (r 16) (r 17);
      Asm.add p (r 3) (r 3) (r 18);
      Asm.xor p (r 3) (r 3) (r 19);
      (* second rank of independent work to widen the body *)
      Asm.sub p (r 23) (r 14) (r 16);
      Asm.shri p (r 24) (r 15) 7;
      Asm.add p (r 23) (r 23) (r 24);
      Asm.xor p (r 3) (r 3) (r 23);
      (* division on a predictable schedule (every 16th body) *)
      Asm.andi p (r 25) (r 2) 255;
      Asm.bne p (r 25) Reg.zero "no_div";
      Asm.ori p (r 26) (r 7) 1;
      Asm.div p (r 3) (r 3) (r 26);
      Asm.addi p (r 3) (r 3) 1;
      Asm.label p "no_div";
      Asm.add p (r 27) (r 22) (r 2);
      Asm.store p (r 27) (r 3) 0;
      Asm.store p (r 27) (r 23) 4;
      Asm.addi p (r 2) (r 2) 16;
      Asm.li p (r 28) (vec * 4);
      Asm.blt p (r 2) (r 28) "inner";
      Asm.addi p (r 1) (r 1) (-1);
      Asm.bne p (r 1) Reg.zero "outer";
      Asm.store p Reg.zero (r 3) 0;
      Asm.halt p)
    ~init:(fun st ->
      let rng = Rng.create 0x6A9 in
      Gen.fill_random rng st ~base:a_base ~len:vec ~max:65536;
      Gen.fill_random rng st ~base:b_base ~len:vec ~max:65536)
