(* gzip stand-in: LZ77-style compression kernel.

   A rolling hash over the input selects candidate matches from two hash
   tables; an inner loop measures the match length; literals update an
   unrolled checksum. Character: a fat inner body with moderate ILP, a
   data-dependent inner-loop trip count, a working set that spills the
   L1. *)

open Sdiq_isa
open Sdiq_util

let input_base = 0x10_0000 (* 32768 words = 128KB *)
let input_words = 32768
let htab_base = 0x1_0000 (* 8192 words *)
let out_base = 0x5_0000

let build ?(outer = 20_000) () =
  let r = Reg.int in
  Bench.make ~name:"gzip" ~description:"LZ77-style compression kernel"
    ~build:(fun b ->
      let p = Asm.proc b "main" in
      (* r1 = position counter, r2 = input cursor, r3 = checksum,
         r10 = htab base, r11 = out cursor *)
      Asm.li p (r 1) outer;
      Asm.li p (r 2) input_base;
      Asm.li p (r 3) 0;
      Asm.li p (r 10) htab_base;
      Asm.li p (r 11) out_base;
      Asm.label p "loop";
      (* rolling hash over four neighbouring words *)
      Asm.load p (r 4) (r 2) 0;
      Asm.load p (r 5) (r 2) 4;
      Asm.load p (r 20) (r 2) 8;
      Asm.load p (r 21) (r 2) 12;
      Asm.shli p (r 6) (r 5) 5;
      Asm.xor p (r 6) (r 6) (r 4);
      Asm.shli p (r 22) (r 21) 3;
      Asm.xor p (r 22) (r 22) (r 20);
      Asm.add p (r 6) (r 6) (r 22);
      Asm.andi p (r 6) (r 6) 8191;
      Asm.shli p (r 6) (r 6) 2;
      Asm.add p (r 6) (r 6) (r 10);
      (* candidate from the hash table; install current position *)
      Asm.load p (r 7) (r 6) 0;
      Asm.store p (r 6) (r 2) 0;
      (* unrolled checksum update over the four words *)
      Asm.xor p (r 3) (r 3) (r 4);
      Asm.add p (r 3) (r 3) (r 5);
      Asm.xor p (r 3) (r 3) (r 20);
      Asm.add p (r 3) (r 3) (r 21);
      Asm.shri p (r 23) (r 3) 9;
      Asm.xor p (r 3) (r 3) (r 23);
      Asm.beq p (r 7) Reg.zero "literal";
      (* match loop: compare up to 8 words *)
      Asm.li p (r 8) 8;
      Asm.mov p (r 9) (r 7);
      Asm.label p "match";
      Asm.load p (r 12) (r 9) 0;
      Asm.load p (r 13) (r 2) 0;
      Asm.bne p (r 12) (r 13) "literal";
      Asm.addi p (r 3) (r 3) 3; (* match credit *)
      Asm.addi p (r 9) (r 9) 4;
      Asm.addi p (r 8) (r 8) (-1);
      Asm.bne p (r 8) Reg.zero "match";
      Asm.label p "literal";
      (* emit a token every 8 positions *)
      Asm.andi p (r 13) (r 1) 7;
      Asm.bne p (r 13) Reg.zero "advance";
      Asm.store p (r 11) (r 3) 0;
      Asm.addi p (r 11) (r 11) 4;
      Asm.label p "advance";
      (* advance the cursor, wrapping within the input buffer *)
      Asm.addi p (r 2) (r 2) 4;
      Asm.li p (r 13) (input_base + (input_words * 4) - 64);
      Asm.blt p (r 2) (r 13) "next";
      Asm.li p (r 2) input_base;
      Asm.label p "next";
      Asm.addi p (r 1) (r 1) (-1);
      Asm.bne p (r 1) Reg.zero "loop";
      Asm.store p Reg.zero (r 3) 0;
      Asm.halt p)
    ~init:(fun st ->
      let rng = Rng.create 0xA11CE in
      (* Compressible input: values from a small alphabet with runs. *)
      let v = ref 0 in
      for i = 0 to input_words - 1 do
        if Rng.chance rng 0.3 then v := Rng.int rng 50;
        Exec.poke st (input_base + (i * 4)) !v
      done;
      Gen.fill_const st ~base:htab_base ~len:8192 0)
