(** A workload: a program plus its deterministic memory initialiser.
    Each benchmark mimics the dominant character of its SPECint2000
    namesake (instruction mix, branch behaviour, memory footprint, call
    density). *)

type t = {
  name : string;
  description : string;
  prog : Sdiq_isa.Prog.t;
  init : Sdiq_isa.Exec.state -> unit;
}

(** Assemble a workload from a builder over an assembler buffer; the
    entry procedure must be named "main". *)
val make :
  name:string ->
  description:string ->
  build:(Sdiq_isa.Asm.t -> unit) ->
  init:(Sdiq_isa.Exec.state -> unit) ->
  t

val of_prog :
  name:string ->
  description:string ->
  Sdiq_isa.Prog.t ->
  init:(Sdiq_isa.Exec.state -> unit) ->
  t
