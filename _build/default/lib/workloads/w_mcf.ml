(* mcf stand-in: network-simplex pointer chasing.

   A serial walk over a randomly-permuted linked structure much larger
   than the L2, accumulating per-node costs and occasionally writing one
   back. Character: memory-bound, dependent load chains, very low IPC —
   the benchmark where issue-queue size matters least (the paper's lowest
   IPC loss, 0.4%). *)

open Sdiq_isa
open Sdiq_util

let nodes_base = 0x10_0000
let node_count = 65536 (* 4 words each = 1MB, twice the L2 *)
let node_stride = 4 (* words: next, cost, supply, flow *)

let build ?(outer = 25_000) () =
  let r = Reg.int in
  Bench.make ~name:"mcf" ~description:"pointer-chasing network walk"
    ~build:(fun b ->
      let p = Asm.proc b "main" in
      (* r1 = steps, r2 = current node, r3 = cost acc, r4 = flow acc *)
      Asm.li p (r 1) outer;
      Asm.li p (r 2) nodes_base;
      Asm.li p (r 3) 0;
      Asm.li p (r 4) 0;
      Asm.label p "walk";
      Asm.load p (r 5) (r 2) 4;  (* cost *)
      Asm.load p (r 6) (r 2) 8;  (* supply *)
      Asm.add p (r 3) (r 3) (r 5);
      Asm.sub p (r 4) (r 4) (r 6);
      (* occasionally push accumulated flow back into the node *)
      Asm.andi p (r 7) (r 1) 15;
      Asm.bne p (r 7) Reg.zero "no_store";
      Asm.store p (r 2) (r 4) 12;
      Asm.label p "no_store";
      (* the serial dependence: next node comes from memory *)
      Asm.load p (r 2) (r 2) 0;
      Asm.addi p (r 1) (r 1) (-1);
      Asm.bne p (r 1) Reg.zero "walk";
      Asm.store p Reg.zero (r 3) 0;
      Asm.store p Reg.zero (r 4) 4;
      Asm.halt p)
    ~init:(fun st ->
      let rng = Rng.create 0x3CF in
      (* Random-cycle next pointers; costs and supplies per node. *)
      let first =
        Gen.fill_chain rng st ~base:nodes_base ~len:node_count
          ~stride:node_stride
      in
      ignore first;
      for i = 0 to node_count - 1 do
        let a = nodes_base + (i * node_stride * 4) in
        Exec.poke st (a + 4) (Rng.int rng 1000);
        Exec.poke st (a + 8) (Rng.int rng 50)
      done)
