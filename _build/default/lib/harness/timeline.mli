(** Time-resolved view of a run: periodic samples of queue occupancy,
    powered banks, the policy's current limit and register-file pressure —
    the data that exposes the adaptive scheme's sensing lag against
    program phases (Section 1 of the paper). *)

type sample = {
  cycle : int;
  committed : int;
  iq_occupancy : int;
  iq_banks_on : int;
  iq_active_size : int;
  policy_limit : int;
  rf_live : int;
}

type t = {
  samples : sample list; (** oldest first *)
  stats : Sdiq_cpu.Stats.t;
}

val record :
  ?config:Sdiq_cpu.Config.t ->
  ?interval:int ->
  ?max_insns:int ->
  Sdiq_workloads.Bench.t ->
  Technique.t ->
  t

(** Header row plus one line per sample. *)
val to_csv : t -> string

val pp : Format.formatter -> t -> unit
