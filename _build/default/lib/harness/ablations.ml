(* Ablation studies over the design choices DESIGN.md calls out. These go
   beyond the paper's evaluation but use only its machinery; the
   design_space example and `bench/main.exe --ablations` both drive this
   module. *)

open Sdiq_workloads

type row = {
  bench : string;
  points : (string * float) list; (* label -> measured value *)
}

type study = {
  id : string;
  caption : string;
  unit_ : string;
  rows : row list;
}

let ipc_loss base tech =
  let b = Sdiq_cpu.Stats.ipc base and t = Sdiq_cpu.Stats.ipc tech in
  if b = 0. then 0. else (b -. t) /. b *. 100.

let run_annotated ?(config = Sdiq_cpu.Config.default) ~opts ~mode ~budget
    (bench : Bench.t) =
  let prog, _ = Sdiq_core.Annotate.apply ~opts mode bench.Bench.prog in
  Sdiq_cpu.Pipeline.simulate ~config
    ~policy:(Sdiq_cpu.Policy.software ())
    ~init:bench.Bench.init ~max_insns:budget prog

let run_baseline ?(config = Sdiq_cpu.Config.default) ~budget (bench : Bench.t)
    =
  Sdiq_cpu.Pipeline.simulate ~config ~init:bench.Bench.init ~max_insns:budget
    bench.Bench.prog

(* 1. Delivery mechanism: the same analysis values as NOOPs vs as tags —
   the pure stream cost of the special NOOPs (Section 5.3's motivation). *)
let delivery ?(budget = 50_000) benches : study =
  let rows =
    List.map
      (fun (b : Bench.t) ->
        let base = run_baseline ~budget b in
        let noop =
          run_annotated ~opts:Sdiq_core.Options.default
            ~mode:Sdiq_core.Annotate.Noop ~budget b
        in
        let tag =
          run_annotated ~opts:Sdiq_core.Options.default
            ~mode:Sdiq_core.Annotate.Tagged ~budget b
        in
        {
          bench = b.Bench.name;
          points =
            [ ("noop", ipc_loss base noop); ("tagged", ipc_loss base tag) ];
        })
      benches
  in
  {
    id = "ablation-delivery";
    caption = "IPC loss by annotation delivery mechanism";
    unit_ = "% IPC loss";
    rows;
  }

(* 2. Bank granularity: gating leverage of 4/8/16-entry banks. *)
let bank_granularity ?(budget = 50_000) benches : study =
  let off config (stats : Sdiq_cpu.Stats.t) =
    let nb = Sdiq_cpu.Config.iq_banks config in
    if stats.Sdiq_cpu.Stats.cycles = 0 then 0.
    else
      100.
      *. (1.
          -. float_of_int stats.Sdiq_cpu.Stats.iq_banks_on_sum
             /. (float_of_int nb *. float_of_int stats.Sdiq_cpu.Stats.cycles))
  in
  let rows =
    List.map
      (fun (b : Bench.t) ->
        let point bank_size =
          let config =
            { Sdiq_cpu.Config.default with
              Sdiq_cpu.Config.iq_bank_size = bank_size }
          in
          let stats =
            run_annotated ~config ~opts:Sdiq_core.Options.default
              ~mode:Sdiq_core.Annotate.Tagged ~budget b
          in
          (Printf.sprintf "%d/bank" bank_size, off config stats)
        in
        { bench = b.Bench.name; points = [ point 4; point 8; point 16 ] })
      benches
  in
  {
    id = "ablation-banks";
    caption = "IQ banks gated off by bank granularity (software technique)";
    unit_ = "% bank-cycles off";
    rows;
  }

(* 3. Analysis conservatism: slack entries per region. *)
let slack ?(budget = 50_000) ?(values = [ 0; 4; 8; 16 ]) benches : study =
  let rows =
    List.map
      (fun (b : Bench.t) ->
        let base = run_baseline ~budget b in
        let point s =
          let opts =
            { Sdiq_core.Options.default with Sdiq_core.Options.slack = s }
          in
          ( Printf.sprintf "slack %d" s,
            ipc_loss base
              (run_annotated ~opts ~mode:Sdiq_core.Annotate.Tagged ~budget b)
          )
        in
        { bench = b.Bench.name; points = List.map point values })
      benches
  in
  {
    id = "ablation-slack";
    caption = "IPC loss vs analysis slack (extra entries per region)";
    unit_ = "% IPC loss";
    rows;
  }

(* 4. The compiler's assumed load latency: how much the paper's
   "all accesses hit" assumption (Section 4.2) costs. *)
let load_latency ?(budget = 50_000) ?(values = [ 2; 5; 10 ]) benches : study =
  let rows =
    List.map
      (fun (b : Bench.t) ->
        let base = run_baseline ~budget b in
        let point extra =
          let opts =
            { Sdiq_core.Options.default with
              Sdiq_core.Options.load_hit_extra = extra }
          in
          ( Printf.sprintf "load+%d" extra,
            ipc_loss base
              (run_annotated ~opts ~mode:Sdiq_core.Annotate.Tagged ~budget b)
          )
        in
        { bench = b.Bench.name; points = List.map point values })
      benches
  in
  {
    id = "ablation-load-latency";
    caption = "IPC loss vs the compiler's assumed load latency";
    unit_ = "% IPC loss";
    rows;
  }

(* 5. Physical queue size: does the software technique keep its advantage
   on smaller queues? Baseline and technique at 48/64/80 entries. *)
let queue_size ?(budget = 50_000) ?(sizes = [ 48; 64; 80 ]) benches : study =
  let rows =
    List.concat_map
      (fun (b : Bench.t) ->
        List.map
          (fun size ->
            let config =
              { Sdiq_cpu.Config.default with Sdiq_cpu.Config.iq_size = size }
            in
            let base = run_baseline ~config ~budget b in
            let opts =
              { Sdiq_core.Options.default with Sdiq_core.Options.iq_size = size }
            in
            let tech =
              run_annotated ~config ~opts ~mode:Sdiq_core.Annotate.Tagged
                ~budget b
            in
            {
              bench = Printf.sprintf "%s@%d" b.Bench.name size;
              points =
                [
                  ("base IPC", Sdiq_cpu.Stats.ipc base);
                  ("tech IPC", Sdiq_cpu.Stats.ipc tech);
                  ( "occ -%",
                    (let bo = Sdiq_cpu.Stats.avg_iq_occupancy base in
                     if bo = 0. then 0.
                     else
                       (bo -. Sdiq_cpu.Stats.avg_iq_occupancy tech) /. bo
                       *. 100.) );
                ];
            })
          sizes)
      benches
  in
  {
    id = "ablation-queue-size";
    caption = "baseline vs technique across physical queue sizes";
    unit_ = "(mixed)";
    rows;
  }

let default_benches () =
  [ W_gzip.build (); W_gap.build (); W_vortex.build () ]

let all ?budget () : study list =
  let benches = default_benches () in
  [
    delivery ?budget benches;
    bank_granularity ?budget benches;
    slack ?budget benches;
    load_latency ?budget benches;
    queue_size ?budget benches;
  ]

let pp_study ppf s =
  Fmt.pf ppf "== %s: %s [%s] ==@." s.id s.caption s.unit_;
  (match s.rows with
  | [] -> ()
  | r :: _ ->
    Fmt.pf ppf "%-14s" "";
    List.iter (fun (l, _) -> Fmt.pf ppf "%14s" l) r.points;
    Fmt.pf ppf "@.");
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s" r.bench;
      List.iter (fun (_, v) -> Fmt.pf ppf "%14.2f" v) r.points;
      Fmt.pf ppf "@.")
    s.rows
