(* Experiment runner: simulate (benchmark x technique) and cache the
   statistics so every figure reads from one set of runs, exactly as the
   paper derives all its figures from one simulation campaign. *)

open Sdiq_workloads

type key = string * Technique.t

type t = {
  config : Sdiq_cpu.Config.t;
  budget : int; (* committed instructions per run *)
  table : (key, Sdiq_cpu.Stats.t) Hashtbl.t;
  benches : Bench.t list;
}

let create ?(config = Sdiq_cpu.Config.default) ?(budget = 100_000)
    ?(benches = Suite.all ()) () =
  { config; budget; table = Hashtbl.create 64; benches }

let bench_names t = List.map (fun (b : Bench.t) -> b.Bench.name) t.benches

let find_bench t name =
  match List.find_opt (fun (b : Bench.t) -> b.Bench.name = name) t.benches with
  | Some b -> b
  | None -> invalid_arg ("Runner: unknown benchmark " ^ name)

(* Run one (benchmark, technique) pair, memoised. *)
let run t name technique : Sdiq_cpu.Stats.t =
  let key = (name, technique) in
  match Hashtbl.find_opt t.table key with
  | Some stats -> stats
  | None ->
    let bench = find_bench t name in
    let prog = Technique.prepare technique bench.Bench.prog in
    let policy = Technique.policy technique in
    let stats =
      Sdiq_cpu.Pipeline.simulate ~config:t.config ~policy
        ~init:bench.Bench.init ~max_insns:t.budget prog
    in
    Hashtbl.replace t.table key stats;
    stats

let run_all t =
  List.iter
    (fun name ->
      List.iter (fun tech -> ignore (run t name tech)) Technique.all)
    (bench_names t)

(* Savings of [technique] on [name] against that benchmark's baseline. *)
let savings ?params t name technique : Sdiq_power.Report.t =
  let base = run t name Technique.Baseline in
  let tech = run t name technique in
  Sdiq_power.Report.compute ?params ~cfg:t.config ~base tech

let non_empty_saving ?params t name : float =
  let base = run t name Technique.Baseline in
  Sdiq_power.Report.non_empty_dynamic_saving ?params ~cfg:t.config base
