(** Experiment runner: simulate (benchmark x technique) pairs, memoised,
    so every figure reads from one simulation campaign. *)

type t

val create :
  ?config:Sdiq_cpu.Config.t ->
  ?budget:int ->
  ?benches:Sdiq_workloads.Bench.t list ->
  unit ->
  t

val bench_names : t -> string list

(** Raises [Invalid_argument] on an unknown name. *)
val find_bench : t -> string -> Sdiq_workloads.Bench.t

(** Run one pair (cached). *)
val run : t -> string -> Technique.t -> Sdiq_cpu.Stats.t

(** Populate the whole (benchmark x technique) table. *)
val run_all : t -> unit

(** Savings of a technique against the same benchmark's baseline. *)
val savings :
  ?params:Sdiq_power.Params.t -> t -> string -> Technique.t ->
  Sdiq_power.Report.t

(** The "nonEmpty" saving on a benchmark's baseline run. *)
val non_empty_saving : ?params:Sdiq_power.Params.t -> t -> string -> float
