(** Ablation studies over the design choices DESIGN.md calls out:
    annotation delivery mechanism, bank granularity, analysis slack, the
    compiler's assumed load latency, and the physical queue size. *)

type row = {
  bench : string;
  points : (string * float) list;
}

type study = {
  id : string;
  caption : string;
  unit_ : string;
  rows : row list;
}

val delivery : ?budget:int -> Sdiq_workloads.Bench.t list -> study
val bank_granularity : ?budget:int -> Sdiq_workloads.Bench.t list -> study
val slack :
  ?budget:int -> ?values:int list -> Sdiq_workloads.Bench.t list -> study
val load_latency :
  ?budget:int -> ?values:int list -> Sdiq_workloads.Bench.t list -> study
val queue_size :
  ?budget:int -> ?sizes:int list -> Sdiq_workloads.Bench.t list -> study

(** The three benchmarks the studies default to. *)
val default_benches : unit -> Sdiq_workloads.Bench.t list

(** Every study on the default benchmarks. *)
val all : ?budget:int -> unit -> study list

val pp_study : Format.formatter -> study -> unit
