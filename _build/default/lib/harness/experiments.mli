(** The paper's evaluation, experiment by experiment: every figure and
    table of Section 5 has a generator producing the same rows/series the
    paper plots, annotated with the paper's reported averages. *)

type column = {
  title : string;
  paper_avg : float option;
  per_bench : (string * float) list;
  extras : (string * float * float option) list;
      (** extra bars (abella, nonEmpty, ...): label, measured, paper *)
}

type exp = {
  id : string;
  caption : string;
  columns : column list;
}

(** Mean of a column's per-benchmark values (the SPECINT bar). *)
val avg_of : column -> float

val fig6 : Runner.t -> exp
val fig7 : Runner.t -> exp
val fig8 : Runner.t -> exp
val fig9 : Runner.t -> exp
val fig10 : Runner.t -> exp
val fig11 : Runner.t -> exp
val fig12 : Runner.t -> exp

type table2_row = {
  bench : string;
  baseline_ms : float;
  limited_ms : float;
  paper_baseline_min : float;
  paper_limited_min : float;
}

val table2 : Runner.t -> table2_row list

val pp_exp : Format.formatter -> exp -> unit
val pp_table2 : Format.formatter -> table2_row list -> unit
