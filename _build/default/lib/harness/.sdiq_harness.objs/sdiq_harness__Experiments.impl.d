lib/harness/experiments.ml: Fmt List Runner Sdiq_core Sdiq_power Sdiq_util Sdiq_workloads Stat Technique
