lib/harness/runner.ml: Bench Hashtbl List Sdiq_cpu Sdiq_power Sdiq_workloads Suite Technique
