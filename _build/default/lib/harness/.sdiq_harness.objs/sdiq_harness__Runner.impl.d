lib/harness/runner.ml: Array Bench Format Hashtbl List Printf Sdiq_cpu Sdiq_power Sdiq_util Sdiq_workloads String Suite Sys Technique Unix
