lib/harness/ablations.ml: Bench Fmt List Printf Sdiq_core Sdiq_cpu Sdiq_workloads W_gap W_gzip W_vortex
