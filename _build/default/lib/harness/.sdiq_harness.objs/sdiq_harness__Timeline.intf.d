lib/harness/timeline.mli: Format Sdiq_cpu Sdiq_workloads Technique
