lib/harness/timeline.ml: Buffer Fmt List Printf Sdiq_cpu Sdiq_workloads Technique
