lib/harness/technique.mli: Sdiq_cpu Sdiq_isa
