lib/harness/runner.mli: Sdiq_cpu Sdiq_power Sdiq_workloads Technique
