lib/harness/runner.mli: Format Sdiq_cpu Sdiq_power Sdiq_workloads Technique
