lib/harness/technique.ml: Prog Sdiq_core Sdiq_cpu Sdiq_isa
