lib/harness/experiments.mli: Format Runner
