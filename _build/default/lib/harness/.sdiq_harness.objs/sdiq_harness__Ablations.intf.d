lib/harness/ablations.mli: Format Sdiq_workloads
