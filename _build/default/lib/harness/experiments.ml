(* The paper's evaluation, experiment by experiment.

   Every figure/table of Section 5 has a generator here that runs (or
   reuses) the (benchmark x technique) simulations and produces the same
   rows/series the paper plots, annotated with the paper's reported
   averages so the shape can be compared directly. *)

open Sdiq_util

type column = {
  title : string;
  paper_avg : float option; (* the paper's SPECINT average, when reported *)
  per_bench : (string * float) list;
  extras : (string * float * float option) list;
      (* extra bars (abella, nonEmpty, ...): label, measured, paper value *)
}

type exp = {
  id : string;
  caption : string;
  columns : column list;
}

let avg_of column = Stat.mean_of (List.map snd column.per_bench)

let per_bench t f = List.map (fun name -> (name, f name)) (Runner.bench_names t)

(* --- Figure 6: IPC loss, NOOP technique ------------------------------- *)

let fig6 t =
  let ours =
    per_bench t (fun name ->
        (Runner.savings t name Technique.Noop).Sdiq_power.Report.ipc_loss_pct)
  in
  let abella_avg =
    Stat.mean_of
      (List.map
         (fun name ->
           (Runner.savings t name Technique.Abella)
             .Sdiq_power.Report.ipc_loss_pct)
         (Runner.bench_names t))
  in
  {
    id = "fig6";
    caption = "Normalised IPC loss for the NOOP technique (%)";
    columns =
      [
        {
          title = "IPC loss";
          paper_avg = Some 2.2;
          per_bench = ours;
          extras = [ ("abella", abella_avg, Some 3.1) ];
        };
      ];
  }

(* --- Figure 7: IQ occupancy reduction, NOOP --------------------------- *)

let fig7 t =
  {
    id = "fig7";
    caption = "Normalised IQ occupancy reduction for the NOOP technique (%)";
    columns =
      [
        {
          title = "occupancy reduction";
          paper_avg = Some 23.;
          per_bench =
            per_bench t (fun name ->
                (Runner.savings t name Technique.Noop)
                  .Sdiq_power.Report.iq_occupancy_reduction_pct);
          extras = [];
        };
      ];
  }

(* --- Figure 8: IQ power savings, NOOP ---------------------------------- *)

let fig8 t =
  let abella_dyn =
    Stat.mean_of
      (List.map
         (fun n ->
           (Runner.savings t n Technique.Abella)
             .Sdiq_power.Report.iq_dynamic_saving_pct)
         (Runner.bench_names t))
  in
  let abella_static =
    Stat.mean_of
      (List.map
         (fun n ->
           (Runner.savings t n Technique.Abella)
             .Sdiq_power.Report.iq_static_saving_pct)
         (Runner.bench_names t))
  in
  let non_empty =
    Stat.mean_of
      (List.map (fun n -> Runner.non_empty_saving t n) (Runner.bench_names t))
  in
  {
    id = "fig8";
    caption = "Normalised IQ dynamic and static power savings, NOOP (%)";
    columns =
      [
        {
          title = "dynamic";
          paper_avg = Some 47.;
          per_bench =
            per_bench t (fun n ->
                (Runner.savings t n Technique.Noop)
                  .Sdiq_power.Report.iq_dynamic_saving_pct);
          extras =
            [
              ("abella", abella_dyn, Some 39.);
              ("nonEmpty", non_empty, None);
            ];
        };
        {
          title = "static";
          paper_avg = Some 31.;
          per_bench =
            per_bench t (fun n ->
                (Runner.savings t n Technique.Noop)
                  .Sdiq_power.Report.iq_static_saving_pct);
          extras = [ ("abella", abella_static, Some 30.) ];
        };
      ];
  }

(* --- Figure 9: register-file power savings, NOOP ----------------------- *)

let fig9 t =
  let abella_of f =
    Stat.mean_of
      (List.map
         (fun n -> f (Runner.savings t n Technique.Abella))
         (Runner.bench_names t))
  in
  {
    id = "fig9";
    caption =
      "Normalised int register-file dynamic and static power savings, NOOP \
       (%)";
    columns =
      [
        {
          title = "dynamic";
          paper_avg = Some 22.;
          per_bench =
            per_bench t (fun n ->
                (Runner.savings t n Technique.Noop)
                  .Sdiq_power.Report.rf_dynamic_saving_pct);
          extras =
            [
              ( "abella",
                abella_of (fun s -> s.Sdiq_power.Report.rf_dynamic_saving_pct),
                Some 14. );
            ];
        };
        {
          title = "static";
          paper_avg = Some 21.;
          per_bench =
            per_bench t (fun n ->
                (Runner.savings t n Technique.Noop)
                  .Sdiq_power.Report.rf_static_saving_pct);
          extras =
            [
              ( "abella",
                abella_of (fun s -> s.Sdiq_power.Report.rf_static_saving_pct),
                Some 17. );
            ];
        };
      ];
  }

(* --- Figure 10: IPC loss, Extension and Improved ----------------------- *)

let fig10 t =
  let col tech title paper =
    {
      title;
      paper_avg = paper;
      per_bench =
        per_bench t (fun n ->
            (Runner.savings t n tech).Sdiq_power.Report.ipc_loss_pct);
      extras = [];
    }
  in
  {
    id = "fig10";
    caption = "Normalised IPC loss for Extension and Improved (%)";
    columns =
      [
        col Technique.Noop "noop" (Some 2.2);
        col Technique.Extension "extension" (Some 1.7);
        col Technique.Improved "improved" (Some 1.3);
        col Technique.Abella "abella" (Some 3.1);
      ];
  }

(* --- Figure 11: IQ power savings, Extension and Improved --------------- *)

let fig11 t =
  let col tech field title paper =
    {
      title;
      paper_avg = paper;
      per_bench = per_bench t (fun n -> field (Runner.savings t n tech));
      extras = [];
    }
  in
  let dyn s = s.Sdiq_power.Report.iq_dynamic_saving_pct in
  let sta s = s.Sdiq_power.Report.iq_static_saving_pct in
  {
    id = "fig11";
    caption =
      "Normalised IQ dynamic and static power savings, Extension/Improved \
       (%)";
    columns =
      [
        col Technique.Extension dyn "extension dynamic" (Some 45.);
        col Technique.Improved dyn "improved dynamic" (Some 45.);
        col Technique.Extension sta "extension static" (Some 30.);
        col Technique.Improved sta "improved static" (Some 30.);
      ];
  }

(* --- Figure 12: register-file power savings, Extension and Improved ---- *)

let fig12 t =
  let col tech field title paper =
    {
      title;
      paper_avg = paper;
      per_bench = per_bench t (fun n -> field (Runner.savings t n tech));
      extras = [];
    }
  in
  let dyn s = s.Sdiq_power.Report.rf_dynamic_saving_pct in
  let sta s = s.Sdiq_power.Report.rf_static_saving_pct in
  {
    id = "fig12";
    caption =
      "Normalised int register-file power savings, Extension/Improved (%)";
    columns =
      [
        col Technique.Extension dyn "extension dynamic" (Some 21.);
        col Technique.Improved dyn "improved dynamic" (Some 22.);
        col Technique.Extension sta "extension static" (Some 21.);
        col Technique.Improved sta "improved static" (Some 20.);
      ];
  }

(* --- Table 2: compilation times ---------------------------------------- *)

(* The paper's compile times in minutes, for shape comparison. *)
let paper_table2 =
  [
    ("gzip", (1., 2.)); ("vpr", (3., 4.)); ("gcc", (64., 186.));
    ("mcf", (1., 1.)); ("crafty", (15., 58.)); ("parser", (3., 5.));
    ("perlbmk", (29., 110.)); ("gap", (10., 23.)); ("vortex", (13., 18.));
    ("bzip2", (1., 1.)); ("twolf", (8., 38.));
  ]

type table2_row = {
  bench : string;
  baseline_ms : float;
  limited_ms : float;
  paper_baseline_min : float;
  paper_limited_min : float;
}

let table2 (t : Runner.t) : table2_row list =
  List.map
    (fun name ->
      let bench = Runner.find_bench t name in
      let m = Sdiq_core.Compile_time.measure bench.Sdiq_workloads.Bench.prog in
      let pb, pl =
        match List.assoc_opt name paper_table2 with
        | Some p -> p
        | None -> (0., 0.)
      in
      {
        bench = name;
        baseline_ms = m.Sdiq_core.Compile_time.baseline_ms;
        limited_ms = m.Sdiq_core.Compile_time.limited_ms;
        paper_baseline_min = pb;
        paper_limited_min = pl;
      })
    (Runner.bench_names t)

(* --- pretty printing ---------------------------------------------------- *)

let pp_exp ppf e =
  Fmt.pf ppf "== %s: %s ==@." e.id e.caption;
  let benches =
    match e.columns with [] -> [] | c :: _ -> List.map fst c.per_bench
  in
  Fmt.pf ppf "%-10s" "";
  List.iter (fun c -> Fmt.pf ppf "%18s" c.title) e.columns;
  Fmt.pf ppf "@.";
  List.iter
    (fun b ->
      Fmt.pf ppf "%-10s" b;
      List.iter
        (fun c ->
          match List.assoc_opt b c.per_bench with
          | Some v -> Fmt.pf ppf "%18.2f" v
          | None -> Fmt.pf ppf "%18s" "-")
        e.columns;
      Fmt.pf ppf "@.")
    benches;
  Fmt.pf ppf "%-10s" "SPECINT";
  List.iter (fun c -> Fmt.pf ppf "%18.2f" (avg_of c)) e.columns;
  Fmt.pf ppf "@.";
  Fmt.pf ppf "%-10s" "(paper)";
  List.iter
    (fun c ->
      match c.paper_avg with
      | Some v -> Fmt.pf ppf "%18.2f" v
      | None -> Fmt.pf ppf "%18s" "-")
    e.columns;
  Fmt.pf ppf "@.";
  List.iter
    (fun c ->
      List.iter
        (fun (label, v, paper) ->
          match paper with
          | Some pv ->
            Fmt.pf ppf "  [%s] %s: %.2f (paper %.2f)@." c.title label v pv
          | None -> Fmt.pf ppf "  [%s] %s: %.2f@." c.title label v)
        c.extras)
    e.columns

let pp_table2 ppf rows =
  Fmt.pf ppf "== table2: compilation time, baseline vs limited ==@.";
  Fmt.pf ppf "%-10s%14s%14s%10s   %s@." "bench" "baseline(ms)" "limited(ms)"
    "ratio" "paper(min base/limited)";
  List.iter
    (fun r ->
      let ratio =
        if r.baseline_ms > 0. then r.limited_ms /. r.baseline_ms else 0.
      in
      Fmt.pf ppf "%-10s%14.2f%14.2f%10.1f   %.0f / %.0f@." r.bench
        r.baseline_ms r.limited_ms ratio r.paper_baseline_min
        r.paper_limited_min)
    rows
