(** Program rewriting: delivery of the compiler's IQ-size annotations.

    The analysis produces a map from instruction address to the
    [max_new_range] value of the region starting there; these functions
    materialise it as special NOOPs (the paper's base scheme) or as
    instruction tags (the paper's "Extension"). *)

(** [insert_iqsets prog ann] places an [Iqset #v] immediately before every
    address [a] with [ann a = Some v], remapping every control-flow
    target. Branches for which [redirect ~src ~dst] is false keep
    targeting the original instruction — a loop's back edges bypass the
    header's NOOP so it executes on entry only. Procedure entries and the
    program entry are remapped accordingly. *)
val insert_iqsets :
  ?redirect:(src:int -> dst:int -> bool) ->
  Prog.t ->
  (int -> int option) ->
  Prog.t

(** [apply_tags prog ann] returns a copy in which the instruction at each
    annotated address carries the value as a tag; the input program is
    left untouched. *)
val apply_tags : Prog.t -> (int -> int option) -> Prog.t

(** Remove every [Iqset] (and all tags), remapping targets back; the
    inverse of {!insert_iqsets} up to instruction identity. *)
val strip : Prog.t -> Prog.t
