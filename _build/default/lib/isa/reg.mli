(** Architectural registers: 32 integer ([r0]..[r31], [r0] hardwired to zero)
    and 32 floating point ([f0]..[f31]). *)

type t =
  | Int of int
  | Fp of int

val num_int : int
val num_fp : int

(** Total number of architectural registers (int + fp). *)
val count : int

(** Constructors with bounds checks. *)
val int : int -> t

val fp : int -> t

(** The hardwired zero register [r0]. *)
val zero : t

val is_zero : t -> bool
val is_int : t -> bool
val is_fp : t -> bool

(** Index within the register's own class. *)
val index : t -> int

(** Dense index over int-then-fp space, in [0, count). *)
val dense : t -> int

val of_dense : int -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
