(** A tiny assembler DSL: emit instructions with symbolic labels into
    procedure buffers, then {!assemble} into a {!Prog.t} with all local
    labels and cross-procedure calls resolved.

    {[
      let b = Asm.create () in
      let p = Asm.proc b "main" in
      Asm.li p (Reg.int 1) 10;
      Asm.label p "loop";
      Asm.addi p (Reg.int 1) (Reg.int 1) (-1);
      Asm.bne p (Reg.int 1) Reg.zero "loop";
      Asm.halt p;
      let prog = Asm.assemble b ~entry:"main"
    ]} *)

type t
type proc_buf

(** Raised on malformed input: duplicate procedure or label names,
    unresolved labels or callees, missing entry procedure. *)
exception Error of string

val create : unit -> t

(** Open a new procedure buffer; [library] marks it opaque to the
    analysis. Raises {!Error} on a duplicate name. *)
val proc : ?library:bool -> t -> string -> proc_buf

(** Bind a label to the next emitted instruction. *)
val label : proc_buf -> string -> unit

(** Generic emitter; the named helpers below are preferred. *)
val emit :
  proc_buf ->
  ?dst:Reg.t ->
  ?src1:Reg.t ->
  ?src2:Reg.t ->
  ?imm:int ->
  ?sym:string ->
  Opcode.t ->
  unit

(** {2 Register-register ALU} *)

val add : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val sub : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val and_ : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val or_ : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val xor : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val shl : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val shr : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val slt : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val sle : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val seq : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val sne : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val mul : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val div : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val fadd : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val fsub : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val fmul : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit
val fdiv : proc_buf -> Reg.t -> Reg.t -> Reg.t -> unit

(** {2 Register-immediate ALU} *)

val addi : proc_buf -> Reg.t -> Reg.t -> int -> unit
val andi : proc_buf -> Reg.t -> Reg.t -> int -> unit
val ori : proc_buf -> Reg.t -> Reg.t -> int -> unit
val xori : proc_buf -> Reg.t -> Reg.t -> int -> unit
val shli : proc_buf -> Reg.t -> Reg.t -> int -> unit
val shri : proc_buf -> Reg.t -> Reg.t -> int -> unit
val slti : proc_buf -> Reg.t -> Reg.t -> int -> unit
val li : proc_buf -> Reg.t -> int -> unit

(** [fli p f x] loads the float [x], stored scaled by 1000 in the
    immediate. *)
val fli : proc_buf -> Reg.t -> float -> unit

val mov : proc_buf -> Reg.t -> Reg.t -> unit
val fmov : proc_buf -> Reg.t -> Reg.t -> unit
val itof : proc_buf -> Reg.t -> Reg.t -> unit
val ftoi : proc_buf -> Reg.t -> Reg.t -> unit

(** {2 Memory} — effective address is [base + imm] *)

val load : proc_buf -> Reg.t -> Reg.t -> int -> unit
val store : proc_buf -> Reg.t -> Reg.t -> int -> unit
val fload : proc_buf -> Reg.t -> Reg.t -> int -> unit
val fstore : proc_buf -> Reg.t -> Reg.t -> int -> unit

(** {2 Control} — conditional branches compare [src1] against [src2] *)

val beq : proc_buf -> Reg.t -> Reg.t -> string -> unit
val bne : proc_buf -> Reg.t -> Reg.t -> string -> unit
val blt : proc_buf -> Reg.t -> Reg.t -> string -> unit
val bge : proc_buf -> Reg.t -> Reg.t -> string -> unit
val jmp : proc_buf -> string -> unit
val call : proc_buf -> string -> unit
val ret : proc_buf -> unit

(** {2 Miscellaneous} *)

val nop : proc_buf -> unit

(** The special NOOP carrying a [max_new_range] value. *)
val iqset : proc_buf -> int -> unit

val halt : proc_buf -> unit

(** Lay procedures out contiguously in declaration order, resolve all
    labels and calls. Raises {!Error} on any unresolved reference. *)
val assemble : t -> entry:string -> Prog.t
