(* Architectural registers: 32 integer and 32 floating-point.

   Integer register 0 is hardwired to zero, as in MIPS/Alpha: writes to it
   are discarded and it never creates a data dependence. *)

type t =
  | Int of int
  | Fp of int

let num_int = 32
let num_fp = 32

let int i =
  if i < 0 || i >= num_int then invalid_arg "Reg.int: out of range";
  Int i

let fp i =
  if i < 0 || i >= num_fp then invalid_arg "Reg.fp: out of range";
  Fp i

let zero = Int 0

let is_zero = function Int 0 -> true | Int _ | Fp _ -> false

let is_int = function Int _ -> true | Fp _ -> false

let is_fp = function Fp _ -> true | Int _ -> false

let index = function Int i | Fp i -> i

(* Dense index over the whole architectural register space: integer registers
   first, then floating point. Used for renaming tables. *)
let dense = function Int i -> i | Fp i -> num_int + i

let count = num_int + num_fp

let of_dense i =
  if i < 0 || i >= count then invalid_arg "Reg.of_dense";
  if i < num_int then Int i else Fp (i - num_int)

let equal a b =
  match (a, b) with
  | Int i, Int j | Fp i, Fp j -> i = j
  | Int _, Fp _ | Fp _, Int _ -> false

let pp ppf = function
  | Int i -> Fmt.pf ppf "r%d" i
  | Fp i -> Fmt.pf ppf "f%d" i

let to_string r = Fmt.str "%a" pp r
