(** The instruction set: a small load/store RISC ISA.

    [Iqset] is the paper's special NOOP: it carries the [max_new_range]
    value for the next program region in its immediate field, changes no
    architectural state, and is stripped from the instruction stream at
    the final decode stage before dispatch (Section 3). *)

type t =
  | Add | Sub | And | Or | Xor | Shl | Shr | Slt | Sle | Seq | Sne
  | Addi | Andi | Ori | Xori | Shli | Shri | Slti
  | Li
  | Mov
  | Mul
  | Div
  | Fadd | Fsub
  | Fmul
  | Fdiv
  | Fli
  | Fmov
  | Itof
  | Ftoi
  | Load
  | Store
  | Fload
  | Fstore
  | Beq | Bne | Blt | Bge
  | Jmp
  | Call
  | Ret
  | Nop
  | Iqset
  | Halt

(** The functional-unit class that executes this opcode. *)
val fu_class : t -> Fu.t

(** Execution latency in cycles, excluding cache time for memory ops. *)
val latency : t -> int

val is_cond_branch : t -> bool

(** Any control transfer: conditional branches, jumps, calls, returns. *)
val is_control : t -> bool

val is_load : t -> bool
val is_store : t -> bool
val is_mem : t -> bool

(** Divides occupy their unit for their full latency. *)
val unpipelined : t -> bool

val name : t -> string
val pp : Format.formatter -> t -> unit
