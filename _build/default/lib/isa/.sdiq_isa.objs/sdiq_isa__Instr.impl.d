lib/isa/instr.ml: Fmt Opcode Reg
