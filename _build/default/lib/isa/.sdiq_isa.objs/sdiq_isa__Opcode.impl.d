lib/isa/opcode.ml: Fmt Fu
