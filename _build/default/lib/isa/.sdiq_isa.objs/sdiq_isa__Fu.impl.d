lib/isa/fu.ml: Fmt
