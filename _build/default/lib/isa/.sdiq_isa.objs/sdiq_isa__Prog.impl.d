lib/isa/prog.ml: Array Fmt Instr List Printf
