lib/isa/asm.mli: Opcode Prog Reg
