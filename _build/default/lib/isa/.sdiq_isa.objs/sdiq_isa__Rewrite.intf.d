lib/isa/rewrite.mli: Prog
