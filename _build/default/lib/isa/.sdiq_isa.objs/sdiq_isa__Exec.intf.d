lib/isa/exec.mli: Hashtbl Instr Prog
