lib/isa/asm.ml: Array Fmt Hashtbl Instr List Opcode Prog Reg
