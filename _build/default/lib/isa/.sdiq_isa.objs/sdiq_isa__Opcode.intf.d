lib/isa/opcode.mli: Format Fu
