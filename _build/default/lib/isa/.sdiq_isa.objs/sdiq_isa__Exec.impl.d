lib/isa/exec.ml: Array Hashtbl Instr Opcode Prog Reg
