lib/isa/instr.mli: Format Fu Opcode Reg
