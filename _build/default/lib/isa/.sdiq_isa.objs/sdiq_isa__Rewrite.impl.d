lib/isa/rewrite.ml: Array Instr List Opcode Prog
