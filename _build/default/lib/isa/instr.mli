(** Machine instructions.

    [target] is an absolute instruction address (index into the flattened
    program) resolved by the assembler; meaningful only for control
    instructions. [tag] carries the paper's "Extension" encoding: the
    [max_new_range] value attached to an ordinary instruction via
    redundant ISA bits instead of a special NOOP (Section 5.3). *)

type t = {
  op : Opcode.t;
  dst : Reg.t option;
  src1 : Reg.t option;
  src2 : Reg.t option;
  imm : int;
  target : int;
  mutable tag : int option;
}

val make :
  ?dst:Reg.t ->
  ?src1:Reg.t ->
  ?src2:Reg.t ->
  ?imm:int ->
  ?target:int ->
  Opcode.t ->
  t

(** The destination register, if any; writes to the hardwired zero
    register are discarded and reported as [None]. *)
val dest : t -> Reg.t option

(** Source registers that create data dependences (reads of the zero
    register excluded). *)
val sources : t -> Reg.t list

val fu_class : t -> Fu.t
val latency : t -> int
val is_cond_branch : t -> bool
val is_control : t -> bool
val is_load : t -> bool
val is_store : t -> bool
val is_mem : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
