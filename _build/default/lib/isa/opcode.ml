(* The instruction set: a small load/store RISC ISA rich enough to express
   the paper's workloads and to exercise every issue-queue mechanism.

   [Iqset] is the paper's "special NOOP": it carries the [max_new_range]
   value for the next program region in its immediate field, does nothing to
   program semantics, and is stripped from the instruction stream at the
   final decode stage before dispatch (Section 3). *)

type t =
  (* integer ALU, register-register, 1 cycle *)
  | Add | Sub | And | Or | Xor | Shl | Shr | Slt | Sle | Seq | Sne
  (* integer ALU, register-immediate, 1 cycle *)
  | Addi | Andi | Ori | Xori | Shli | Shri | Slti
  | Li   (* dst <- imm *)
  | Mov  (* dst <- src1 *)
  (* integer multiplier unit *)
  | Mul  (* 3 cycles *)
  | Div  (* 12 cycles, runs on the multiplier *)
  (* floating point *)
  | Fadd | Fsub  (* 2 cycles *)
  | Fmul         (* 4 cycles *)
  | Fdiv         (* 12 cycles *)
  | Fli          (* dst <- float immediate (imm encodes value / 1000) *)
  | Fmov
  | Itof         (* fp dst <- int src1, 2 cycles on the FP ALU *)
  | Ftoi         (* int dst <- fp src1, 2 cycles on the FP ALU *)
  (* memory: effective address is src1 + imm *)
  | Load   (* int dst <- mem[ea] *)
  | Store  (* mem[ea] <- src2 *)
  | Fload  (* fp dst <- fmem[ea] *)
  | Fstore (* fmem[ea] <- src2 (an fp register) *)
  (* control: conditional branches compare src1 against src2 *)
  | Beq | Bne | Blt | Bge
  | Jmp
  | Call
  | Ret
  (* miscellaneous *)
  | Nop
  | Iqset  (* special NOOP: imm = max_new_range for the next region *)
  | Halt

let fu_class = function
  | Add | Sub | And | Or | Xor | Shl | Shr | Slt | Sle | Seq | Sne
  | Addi | Andi | Ori | Xori | Shli | Shri | Slti | Li | Mov
  | Beq | Bne | Blt | Bge | Jmp | Call | Ret | Nop ->
    Fu.Int_alu
  | Mul | Div -> Fu.Int_mul
  | Fadd | Fsub | Fmov | Fli | Itof | Ftoi -> Fu.Fp_alu
  | Fmul | Fdiv -> Fu.Fp_muldiv
  | Load | Store | Fload | Fstore -> Fu.Mem_port
  | Iqset | Halt -> Fu.Int_alu (* never executed; class is irrelevant *)

(* Execution latency in cycles, excluding cache access time for memory
   operations (the pipeline adds the data-cache latency to loads). *)
let latency = function
  | Add | Sub | And | Or | Xor | Shl | Shr | Slt | Sle | Seq | Sne
  | Addi | Andi | Ori | Xori | Shli | Shri | Slti | Li | Mov
  | Beq | Bne | Blt | Bge | Jmp | Call | Ret | Nop ->
    1
  | Mul -> 3
  | Div -> 12
  | Fadd | Fsub | Fmov | Fli | Itof | Ftoi -> 2
  | Fmul -> 4
  | Fdiv -> 12
  | Load | Fload -> 1 (* address generation; cache latency added on top *)
  | Store | Fstore -> 1
  | Iqset | Halt -> 0

let is_cond_branch = function
  | Beq | Bne | Blt | Bge -> true
  | _ -> false

let is_control = function
  | Beq | Bne | Blt | Bge | Jmp | Call | Ret -> true
  | _ -> false

let is_load = function Load | Fload -> true | _ -> false
let is_store = function Store | Fstore -> true | _ -> false
let is_mem op = is_load op || is_store op

(* Unpipelined units: a divide occupies its unit for its full latency. *)
let unpipelined = function Div | Fdiv -> true | _ -> false

let name = function
  | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shr -> "shr" | Slt -> "slt" | Sle -> "sle"
  | Seq -> "seq" | Sne -> "sne"
  | Addi -> "addi" | Andi -> "andi" | Ori -> "ori" | Xori -> "xori"
  | Shli -> "shli" | Shri -> "shri" | Slti -> "slti"
  | Li -> "li" | Mov -> "mov"
  | Mul -> "mul" | Div -> "div"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"
  | Fli -> "fli" | Fmov -> "fmov" | Itof -> "itof" | Ftoi -> "ftoi"
  | Load -> "load" | Store -> "store" | Fload -> "fload" | Fstore -> "fstore"
  | Beq -> "beq" | Bne -> "bne" | Blt -> "blt" | Bge -> "bge"
  | Jmp -> "jmp" | Call -> "call" | Ret -> "ret"
  | Nop -> "nop" | Iqset -> "iqset" | Halt -> "halt"

let pp ppf t = Fmt.string ppf (name t)
