(* Assembled programs.

   A program is a flat array of instructions. Each procedure occupies a
   contiguous range; [Opcode.Call] targets the entry address of its callee.
   Programs are produced by {!Asm.assemble} and rewritten (for special-NOOP
   insertion) by {!Rewrite}. *)

type proc = {
  name : string;
  entry : int;  (* address of the first instruction *)
  len : int;    (* number of instructions *)
  is_library : bool;
      (* library routines are opaque to the analysis: the IQ is allowed to
         grow to its maximum before calling one (Section 4.4) *)
}

type t = {
  code : Instr.t array;
  procs : proc list;
  entry : int;  (* address where execution starts *)
}

let length t = Array.length t.code

let instr t addr =
  if addr < 0 || addr >= Array.length t.code then
    invalid_arg (Printf.sprintf "Prog.instr: address %d out of range" addr);
  t.code.(addr)

let find_proc t name = List.find_opt (fun (p : proc) -> p.name = name) t.procs

let proc_of_addr t addr =
  List.find_opt
    (fun (p : proc) -> addr >= p.entry && addr < p.entry + p.len)
    t.procs

(* Addresses of instructions belonging to [p], in order. *)
let proc_addrs p = List.init p.len (fun i -> p.entry + i)

let pp ppf t =
  List.iter
    (fun p ->
      Fmt.pf ppf "%s:%s@." p.name (if p.is_library then " (library)" else "");
      List.iter
        (fun a -> Fmt.pf ppf "  %4d: %a@." a Instr.pp t.code.(a))
        (proc_addrs p))
    t.procs

(* Static counts used in reports. *)
let count_matching t f =
  Array.fold_left (fun acc i -> if f i then acc + 1 else acc) 0 t.code
