(* Program rewriting: delivery of the compiler's IQ-size annotations.

   The analysis (in [sdiq_core]) produces a map from instruction address to
   the [max_new_range] value for the region starting at that address. Two
   delivery mechanisms from the paper:

   - [insert_iqsets]: materialise each annotation as a special [Iqset] NOOP
     inserted immediately before the region's first instruction, remapping
     every control-flow target (the paper's base scheme, Section 3);
   - [apply_tags]: attach each annotation to the region's first instruction
     via redundant ISA bits (the paper's "Extension", Section 5.3). *)

(* [insert_iqsets prog ann] returns a new program with an [Iqset #v] placed
   before every address [a] with [ann a = Some v]. Branch targets that
   pointed at [a] are redirected to the inserted NOOP so that the annotation
   is also picked up when the region is entered by a jump — except branches
   for which [redirect ~src ~dst] is false: a loop's back edges keep
   targeting the header itself, so the loop's special NOOP executes once on
   entry rather than on every iteration. *)
let insert_iqsets ?(redirect = fun ~src:_ ~dst:_ -> true) (prog : Prog.t)
    (ann : int -> int option) : Prog.t =
  let n = Array.length prog.code in
  (* New address of old instruction [a], and of the NOOP preceding it. *)
  let shift = Array.make (n + 1) 0 in
  let inserted = ref 0 in
  for a = 0 to n - 1 do
    (match ann a with Some _ -> incr inserted | None -> ());
    shift.(a) <- a + !inserted - (match ann a with Some _ -> 1 | None -> 0);
    (* [shift.(a)] is the new address of the NOOP if one is inserted before
       [a]; the instruction itself lands one slot later. *)
  done;
  shift.(n) <- n + !inserted;
  let new_addr_of_instr a =
    shift.(a) + (match ann a with Some _ -> 1 | None -> 0)
  in
  let target_map a = shift.(a) in
  let code = Array.make (n + !inserted) (Instr.make Opcode.Nop) in
  for a = 0 to n - 1 do
    (match ann a with
    | Some v -> code.(shift.(a)) <- Instr.make ~imm:v Opcode.Iqset
    | None -> ());
    let i = prog.code.(a) in
    let target =
      if i.target < 0 then i.target
      else if redirect ~src:a ~dst:i.target then target_map i.target
      else new_addr_of_instr i.target
    in
    code.(new_addr_of_instr a) <-
      { i with target; tag = None }
  done;
  let procs =
    List.map
      (fun (p : Prog.proc) ->
        let entry = target_map p.entry in
        let last = p.entry + p.len - 1 in
        let len = new_addr_of_instr last + 1 - entry in
        { p with entry; len })
      prog.procs
  in
  { Prog.code; procs; entry = target_map prog.entry }

(* [apply_tags prog ann] returns a copy of [prog] in which the instruction
   at each annotated address carries the value as a tag. Instruction records
   are copied so the input program is left untouched. *)
let apply_tags (prog : Prog.t) (ann : int -> int option) : Prog.t =
  let code =
    Array.mapi
      (fun a (i : Instr.t) -> { i with tag = ann a })
      prog.code
  in
  { prog with code }

(* Strip all annotations (both kinds); used to derive the baseline binary
   from an annotated one in tests. *)
let strip (prog : Prog.t) : Prog.t =
  let keep = Array.map (fun (i : Instr.t) -> i.op <> Opcode.Iqset) prog.code in
  let n = Array.length prog.code in
  let shift = Array.make (n + 1) 0 in
  let removed = ref 0 in
  for a = 0 to n - 1 do
    shift.(a) <- a - !removed;
    if not keep.(a) then incr removed
  done;
  shift.(n) <- n - !removed;
  (* Targets pointing at a removed Iqset slide to the following
     instruction, which has the same new address. *)
  let code = Array.make (n - !removed) (Instr.make Opcode.Nop) in
  for a = 0 to n - 1 do
    if keep.(a) then begin
      let i = prog.code.(a) in
      let target = if i.target >= 0 then shift.(i.target) else i.target in
      code.(shift.(a)) <- { i with target; tag = None }
    end
  done;
  let procs =
    List.map
      (fun (p : Prog.proc) ->
        let entry = shift.(p.entry) in
        let len = shift.(p.entry + p.len) - entry in
        { p with entry; len })
      prog.procs
  in
  { Prog.code; procs; entry = shift.(prog.entry) }
