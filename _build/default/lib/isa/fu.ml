(* Functional-unit classes, matching Table 1 of the paper:
     6 integer ALUs (1 cycle), 3 integer multipliers (3 cycles; integer
     division also runs on the multiplier), 4 FP ALUs (2 cycles), 2 FP
     mult/div units (4-cycle multiply, 12-cycle divide).
   Memory operations additionally occupy one of the memory ports for address
   generation; the cache access latency is added on top by the pipeline. *)

type t =
  | Int_alu
  | Int_mul
  | Fp_alu
  | Fp_muldiv
  | Mem_port

let all = [ Int_alu; Int_mul; Fp_alu; Fp_muldiv; Mem_port ]

let index = function
  | Int_alu -> 0
  | Int_mul -> 1
  | Fp_alu -> 2
  | Fp_muldiv -> 3
  | Mem_port -> 4

let count_classes = 5

(* Default unit counts from Table 1 (memory ports are a SimpleScalar-style
   addition; the paper does not list them, we use the sim-outorder default
   of 2). *)
let default_count = function
  | Int_alu -> 6
  | Int_mul -> 3
  | Fp_alu -> 4
  | Fp_muldiv -> 2
  | Mem_port -> 2

let name = function
  | Int_alu -> "int-alu"
  | Int_mul -> "int-mul"
  | Fp_alu -> "fp-alu"
  | Fp_muldiv -> "fp-muldiv"
  | Mem_port -> "mem-port"

let pp ppf t = Fmt.string ppf (name t)
