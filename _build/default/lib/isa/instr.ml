(* Machine instructions.

   [target] is an absolute instruction address (index into the flattened
   program), resolved by the assembler; it is meaningful only for control
   instructions. [tag] carries the "Extension" encoding of the paper:
   instead of inserting an [Iqset] NOOP, the compiler may attach the
   max_new_range value to an ordinary instruction via redundant ISA bits. *)

type t = {
  op : Opcode.t;
  dst : Reg.t option;
  src1 : Reg.t option;
  src2 : Reg.t option;
  imm : int;
  target : int;
  mutable tag : int option;
}

let make ?dst ?src1 ?src2 ?(imm = 0) ?(target = -1) op =
  { op; dst; src1; src2; imm; target; tag = None }

(* The destination register, if the instruction writes one. Writes to the
   hardwired zero register are discarded and reported as no destination. *)
let dest t =
  match t.dst with
  | Some r when Reg.is_zero r -> None
  | d -> d

(* Source registers that create data dependences. Reads of the zero register
   never depend on a producer. *)
let sources t =
  let keep r acc = match r with
    | Some r when not (Reg.is_zero r) -> r :: acc
    | Some _ | None -> acc
  in
  keep t.src1 (keep t.src2 [])

let fu_class t = Opcode.fu_class t.op
let latency t = Opcode.latency t.op
let is_cond_branch t = Opcode.is_cond_branch t.op
let is_control t = Opcode.is_control t.op
let is_load t = Opcode.is_load t.op
let is_store t = Opcode.is_store t.op
let is_mem t = Opcode.is_mem t.op

let pp ppf t =
  let pp_opt ppf = function
    | Some r -> Fmt.pf ppf " %a" Reg.pp r
    | None -> ()
  in
  Fmt.pf ppf "%a%a%a%a" Opcode.pp t.op pp_opt t.dst pp_opt t.src1 pp_opt
    t.src2;
  (match t.op with
  | Opcode.Li | Opcode.Fli | Opcode.Iqset
  | Opcode.Addi | Opcode.Andi | Opcode.Ori | Opcode.Xori
  | Opcode.Shli | Opcode.Shri | Opcode.Slti
  | Opcode.Load | Opcode.Store | Opcode.Fload | Opcode.Fstore ->
    Fmt.pf ppf " #%d" t.imm
  | _ -> ());
  if t.target >= 0 then Fmt.pf ppf " @%d" t.target;
  match t.tag with None -> () | Some v -> Fmt.pf ppf " {iq=%d}" v

let to_string t = Fmt.str "%a" pp t
