(** Functional-unit classes, matching Table 1 of the paper: 6 integer ALUs
    (1 cycle), 3 integer multipliers (3 cycles, division included), 4 FP
    ALUs (2 cycles), 2 FP mult/div units (4/12 cycles), plus 2 memory
    ports for address generation. *)

type t =
  | Int_alu
  | Int_mul
  | Fp_alu
  | Fp_muldiv
  | Mem_port

(** All classes, in [index] order. *)
val all : t list

(** Dense index in [0, count_classes). *)
val index : t -> int

val count_classes : int

(** Unit counts from Table 1 (memory ports are the SimpleScalar default). *)
val default_count : t -> int

val name : t -> string
val pp : Format.formatter -> t -> unit
