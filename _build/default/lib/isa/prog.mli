(** Assembled programs: a flat instruction array in which each procedure
    occupies a contiguous range. Produced by {!Asm.assemble}, rewritten
    by {!Rewrite}. *)

type proc = {
  name : string;
  entry : int;  (** address of the first instruction *)
  len : int;    (** number of instructions *)
  is_library : bool;
      (** library routines are opaque to the analysis: the IQ is allowed
          to grow to its maximum before calling one (Section 4.4) *)
}

type t = {
  code : Instr.t array;
  procs : proc list;
  entry : int;  (** address where execution starts *)
}

val length : t -> int

(** Raises [Invalid_argument] outside [0, length). *)
val instr : t -> int -> Instr.t

val find_proc : t -> string -> proc option
val proc_of_addr : t -> int -> proc option

(** Addresses of a procedure's instructions, in order. *)
val proc_addrs : proc -> int list

val pp : Format.formatter -> t -> unit

(** Number of instructions satisfying the predicate. *)
val count_matching : t -> (Instr.t -> bool) -> int
