(* A tiny assembler DSL.

   Workloads build procedures by emitting instructions into a buffer with
   symbolic labels; [assemble] lays procedures out contiguously, resolves
   local labels and cross-procedure calls, and returns a {!Prog.t}.

   Usage:
   {[
     let b = Asm.create () in
     let p = Asm.proc b "main" in
     Asm.li p (Reg.int 1) 10;
     Asm.label p "loop";
     Asm.addi p (Reg.int 2) (Reg.int 2) 1;
     Asm.addi p (Reg.int 1) (Reg.int 1) (-1);
     Asm.bne p (Reg.int 1) Reg.zero "loop";
     Asm.halt p;
     let prog = Asm.assemble b ~entry:"main"
   ]} *)

type pending = {
  p_op : Opcode.t;
  p_dst : Reg.t option;
  p_src1 : Reg.t option;
  p_src2 : Reg.t option;
  p_imm : int;
  p_sym : string option; (* label (branch) or procedure name (call) *)
}

type proc_buf = {
  pname : string;
  mutable items : pending list; (* reversed *)
  mutable labels : (string * int) list; (* label -> offset within proc *)
  mutable pcount : int;
  library : bool;
}

type t = { mutable procs : proc_buf list (* reversed *) }

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let create () = { procs = [] }

let proc ?(library = false) t name =
  if List.exists (fun p -> p.pname = name) t.procs then
    error "Asm: duplicate procedure %S" name;
  let p = { pname = name; items = []; labels = []; pcount = 0; library } in
  t.procs <- p :: t.procs;
  p

let label p name =
  if List.mem_assoc name p.labels then
    error "Asm: duplicate label %S in %S" name p.pname;
  p.labels <- (name, p.pcount) :: p.labels

let emit p ?dst ?src1 ?src2 ?(imm = 0) ?sym op =
  p.items <-
    { p_op = op; p_dst = dst; p_src1 = src1; p_src2 = src2; p_imm = imm;
      p_sym = sym }
    :: p.items;
  p.pcount <- p.pcount + 1

(* Register-register ALU ops *)
let rrr op p dst src1 src2 = emit p ~dst ~src1 ~src2 op
let add = rrr Opcode.Add
let sub = rrr Opcode.Sub
let and_ = rrr Opcode.And
let or_ = rrr Opcode.Or
let xor = rrr Opcode.Xor
let shl = rrr Opcode.Shl
let shr = rrr Opcode.Shr
let slt = rrr Opcode.Slt
let sle = rrr Opcode.Sle
let seq = rrr Opcode.Seq
let sne = rrr Opcode.Sne
let mul = rrr Opcode.Mul
let div = rrr Opcode.Div
let fadd = rrr Opcode.Fadd
let fsub = rrr Opcode.Fsub
let fmul = rrr Opcode.Fmul
let fdiv = rrr Opcode.Fdiv

(* Register-immediate ALU ops *)
let rri op p dst src1 imm = emit p ~dst ~src1 ~imm op
let addi = rri Opcode.Addi
let andi = rri Opcode.Andi
let ori = rri Opcode.Ori
let xori = rri Opcode.Xori
let shli = rri Opcode.Shli
let shri = rri Opcode.Shri
let slti = rri Opcode.Slti

let li p dst imm = emit p ~dst ~imm Opcode.Li

(* [fli p f x] loads the float [x] into [f]; the value is stored scaled by
   1000 in the immediate field. *)
let fli p dst x = emit p ~dst ~imm:(int_of_float (x *. 1000.)) Opcode.Fli

let mov p dst src1 = emit p ~dst ~src1 Opcode.Mov
let fmov p dst src1 = emit p ~dst ~src1 Opcode.Fmov
let itof p dst src1 = emit p ~dst ~src1 Opcode.Itof
let ftoi p dst src1 = emit p ~dst ~src1 Opcode.Ftoi

let load p dst base imm = emit p ~dst ~src1:base ~imm Opcode.Load
let store p base value imm = emit p ~src1:base ~src2:value ~imm Opcode.Store
let fload p dst base imm = emit p ~dst ~src1:base ~imm Opcode.Fload
let fstore p base value imm = emit p ~src1:base ~src2:value ~imm Opcode.Fstore

(* Conditional branches compare src1 against src2 and jump to a local label *)
let branch op p src1 src2 sym = emit p ~src1 ~src2 ~sym op
let beq = branch Opcode.Beq
let bne = branch Opcode.Bne
let blt = branch Opcode.Blt
let bge = branch Opcode.Bge

let jmp p sym = emit p ~sym Opcode.Jmp
let call p sym = emit p ~sym Opcode.Call
let ret p = emit p Opcode.Ret
let nop p = emit p Opcode.Nop
let iqset p v = emit p ~imm:v Opcode.Iqset
let halt p = emit p Opcode.Halt

let assemble t ~entry =
  let procs = List.rev t.procs in
  if procs = [] then error "Asm: no procedures";
  (* Lay out procedures contiguously in declaration order. *)
  let entries = Hashtbl.create 16 in
  let next = ref 0 in
  let layout =
    List.map
      (fun p ->
        let e = !next in
        Hashtbl.replace entries p.pname e;
        next := !next + p.pcount;
        (p, e))
      procs
  in
  let code = Array.make !next (Instr.make Opcode.Nop) in
  let resolve p base pend idx =
    let target =
      match pend.p_sym with
      | None -> -1
      | Some sym -> (
        match pend.p_op with
        | Opcode.Call -> (
          match Hashtbl.find_opt entries sym with
          | Some e -> e
          | None -> error "Asm: call to unknown procedure %S" sym)
        | _ -> (
          match List.assoc_opt sym p.labels with
          | Some off -> base + off
          | None -> error "Asm: unknown label %S in %S (at offset %d)" sym
                      p.pname idx))
    in
    Instr.make ?dst:pend.p_dst ?src1:pend.p_src1 ?src2:pend.p_src2
      ~imm:pend.p_imm ~target pend.p_op
  in
  List.iter
    (fun (p, base) ->
      (* Labels must point inside the procedure. *)
      List.iter
        (fun (name, off) ->
          if off > p.pcount then
            error "Asm: label %S in %S beyond end" name p.pname;
          if off = p.pcount then
            error "Asm: label %S in %S at end of procedure (no instruction \
                   follows)" name p.pname)
        p.labels;
      List.iteri
        (fun i pend -> code.(base + i) <- resolve p base pend i)
        (List.rev p.items))
    layout;
  let prog_procs =
    List.map
      (fun (p, base) ->
        { Prog.name = p.pname; entry = base; len = p.pcount;
          is_library = p.library })
      layout
  in
  match Hashtbl.find_opt entries entry with
  | None -> error "Asm: entry procedure %S not defined" entry
  | Some e -> { Prog.code; procs = prog_procs; entry = e }
