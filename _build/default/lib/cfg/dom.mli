(** Dominator computation (iterative dataflow over bitsets). *)

type t

val compute : Cfg.t -> t

(** [dominates t d b]: does block [d] dominate block [b]? *)
val dominates : t -> int -> int -> bool

(** All dominators of a block, in id order. *)
val dominators : t -> int -> int list
