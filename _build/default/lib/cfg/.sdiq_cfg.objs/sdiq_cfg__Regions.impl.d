lib/cfg/regions.ml: Array Cfg Fmt Instr List Loops Opcode Prog Sdiq_isa
