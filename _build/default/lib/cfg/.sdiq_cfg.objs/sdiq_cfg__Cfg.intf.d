lib/cfg/cfg.mli: Format Sdiq_isa
