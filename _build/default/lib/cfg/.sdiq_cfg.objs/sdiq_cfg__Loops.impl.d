lib/cfg/loops.ml: Cfg Dom Hashtbl Int List Set
