lib/cfg/cfg.ml: Array Fmt Instr List Opcode Prog Sdiq_isa
