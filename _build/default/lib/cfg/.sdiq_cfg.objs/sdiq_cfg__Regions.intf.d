lib/cfg/regions.mli: Cfg Format Loops
