lib/cfg/loops.mli: Cfg Set
