(** Natural-loop detection (Section 4.1 of the paper).

    Loops sharing a header are merged; following the paper, an inner
    loop's blocks are removed from the enclosing loops' [own] sets so
    each block is analysed in exactly one loop group. *)

module Iset : Set.S with type elt = int

type t = {
  header : int;
  body : Iset.t;  (** all blocks of the natural loop, header included *)
  own : Iset.t;   (** body minus nested loops' bodies *)
  depth : int;    (** nesting depth, outermost = 1 *)
}

(** All natural loops of the procedure, sorted by (header, depth). *)
val find : Cfg.t -> t list

(** Union of all loops' bodies. *)
val loop_blocks : t list -> Iset.t
