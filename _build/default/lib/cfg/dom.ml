(* Dominator computation: the classic iterative dataflow formulation over
   bitsets. Procedures in this code base have at most a few hundred blocks,
   so the simple O(n^2) fixpoint is more than fast enough. *)

type t = {
  dom : bool array array; (* dom.(b).(d) = block d dominates block b *)
}

let compute (cfg : Cfg.t) : t =
  let n = Cfg.num_blocks cfg in
  let dom = Array.init n (fun _ -> Array.make n true) in
  (* Entry is dominated only by itself. *)
  dom.(0) <- Array.make n false;
  dom.(0).(0) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 1 to n - 1 do
      let preds = Cfg.preds cfg b in
      let inter = Array.make n (preds <> []) in
      List.iter
        (fun p ->
          for d = 0 to n - 1 do
            if not dom.(p).(d) then inter.(d) <- false
          done)
        preds;
      inter.(b) <- true;
      if inter <> dom.(b) then begin
        dom.(b) <- inter;
        changed := true
      end
    done
  done;
  { dom }

(* [dominates t d b] is true when block [d] dominates block [b]. *)
let dominates t d b = t.dom.(b).(d)

let dominators t b =
  let n = Array.length t.dom in
  List.filter (fun d -> t.dom.(b).(d)) (List.init n (fun i -> i))
