(** Region decomposition of a procedure (Section 4.1): natural loops plus
    DAGs of the remaining blocks, where a DAG starts at the procedure's
    first block or at a block immediately following a call. Every block
    belongs to exactly one region. *)

type region =
  | Dag of int list  (** block ids in forward order *)
  | Loop of Loops.t

type t = {
  cfg : Cfg.t;
  regions : region list; (** in program order of their first block *)
}

val decompose : Cfg.t -> t

(** Blocks of a region in forward order; for a loop region, its [own]
    blocks only (nested loops are their own regions). *)
val blocks : t -> region -> int list

val pp : Format.formatter -> t -> unit
