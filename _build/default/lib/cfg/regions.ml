(* Region decomposition of a procedure (Section 4.1).

   The paper splits a procedure into two kinds of groups:
   - loops: each natural loop is one group (inner loops separated from the
     blocks that are only in the outer loop);
   - DAGs: the remaining blocks, where a DAG starts at the procedure's
     first block or at a block immediately following a function call, and
     none of its blocks may be part of a loop.

   Blocks that are only reachable through a loop (e.g. loop exit code) seed
   their own DAGs, so every block is covered by exactly one region. *)

open Sdiq_isa
module Iset = Loops.Iset

type region =
  | Dag of int list   (* block ids in forward (reverse post-) order *)
  | Loop of Loops.t

type t = {
  cfg : Cfg.t;
  regions : region list; (* in program order of their first block *)
}

(* True when [b] immediately follows a call instruction. *)
let follows_call cfg b =
  let blk = cfg.Cfg.blocks.(b) in
  blk.Cfg.first > cfg.Cfg.proc.Prog.entry
  && (Prog.instr cfg.Cfg.prog (blk.Cfg.first - 1)).Instr.op = Opcode.Call

let decompose (cfg : Cfg.t) : t =
  let loops = Loops.find cfg in
  let in_loop = Loops.loop_blocks loops in
  let n = Cfg.num_blocks cfg in
  let order = Cfg.reverse_postorder cfg in
  let rank = Array.make n 0 in
  List.iteri (fun i id -> rank.(id) <- i) order;
  (* Seeds for DAGs: entry block and post-call blocks that are not in a
     loop. *)
  let is_seed b =
    (not (Iset.mem b in_loop)) && (b = 0 || follows_call cfg b)
  in
  let assigned = Array.make n false in
  Iset.iter (fun b -> assigned.(b) <- true) in_loop;
  let grow seed =
    (* Collect the non-loop, non-seed blocks reachable from [seed]. *)
    let members = ref [ seed ] in
    assigned.(seed) <- true;
    let rec visit b =
      List.iter
        (fun s ->
          if (not assigned.(s)) && not (is_seed s) then begin
            assigned.(s) <- true;
            members := s :: !members;
            visit s
          end)
        (Cfg.succs cfg b)
    in
    visit seed;
    List.sort (fun a b -> compare rank.(a) rank.(b)) !members
  in
  let dags = ref [] in
  (* Grow DAGs from declared seeds in forward order, then sweep up any block
     left unassigned (reachable only through loops, or unreachable). *)
  List.iter (fun b -> if is_seed b && not assigned.(b) then
                 dags := grow b :: !dags)
    order;
  List.iter
    (fun b -> if not assigned.(b) then dags := grow b :: !dags)
    order;
  for b = 0 to n - 1 do
    if not assigned.(b) then dags := grow b :: !dags
  done;
  let first_block = function
    | Dag [] -> max_int
    | Dag (b :: _) -> (cfg.Cfg.blocks.(b)).Cfg.first
    | Loop l -> (cfg.Cfg.blocks.(l.Loops.header)).Cfg.first
  in
  let regions =
    List.map (fun bs -> Dag bs) !dags
    @ List.map (fun l -> Loop l) loops
  in
  let regions =
    List.sort (fun a b -> compare (first_block a) (first_block b)) regions
  in
  { cfg; regions }

(* Blocks of a region, as block ids in forward order. For a loop region this
   is the loop's [own] set (inner-loop blocks are their own regions). *)
let blocks t = function
  | Dag bs -> bs
  | Loop l ->
    let ids = Loops.Iset.elements l.Loops.own in
    List.sort
      (fun a b ->
        compare (t.cfg.Cfg.blocks.(a)).Cfg.first
          (t.cfg.Cfg.blocks.(b)).Cfg.first)
      ids

let pp ppf t =
  List.iter
    (fun r ->
      match r with
      | Dag bs ->
        Fmt.pf ppf "DAG {%a}@." Fmt.(list ~sep:comma int) bs
      | Loop l ->
        Fmt.pf ppf "LOOP header=B%d depth=%d own={%a}@." l.Loops.header
          l.Loops.depth
          Fmt.(list ~sep:comma int)
          (Loops.Iset.elements l.Loops.own))
    t.regions
