(* Natural-loop detection (Section 4.1 of the paper).

   A back edge is an edge n -> h where h dominates n; the natural loop of
   the back edge is h plus every block that can reach n without passing
   through h. Loops sharing a header are merged. Following the paper, an
   inner loop's blocks are removed from its enclosing loops' block sets, so
   each block is analysed in exactly one loop group: "the inner loop's basic
   blocks form one loop and those that are only in the outer loop form
   another". *)

module Iset = Set.Make (Int)

type t = {
  header : int;
  body : Iset.t;      (* all blocks of the natural loop, including header *)
  own : Iset.t;       (* body minus the bodies of nested loops *)
  depth : int;        (* nesting depth, outermost = 1 *)
}

let natural_loop cfg ~header ~latch =
  let body = ref (Iset.of_list [ header; latch ]) in
  let rec walk b =
    List.iter
      (fun p ->
        if not (Iset.mem p !body) then begin
          body := Iset.add p !body;
          walk p
        end)
      (Cfg.preds cfg b)
  in
  if latch <> header then walk latch;
  !body

let find (cfg : Cfg.t) : t list =
  let dom = Dom.compute cfg in
  let n = Cfg.num_blocks cfg in
  (* Collect back edges, merging loops with the same header. *)
  let by_header = Hashtbl.create 8 in
  for b = 0 to n - 1 do
    List.iter
      (fun s ->
        if Dom.dominates dom s b then begin
          let body = natural_loop cfg ~header:s ~latch:b in
          let cur =
            match Hashtbl.find_opt by_header s with
            | Some set -> set
            | None -> Iset.empty
          in
          Hashtbl.replace by_header s (Iset.union cur body)
        end)
      (Cfg.succs cfg b)
  done;
  let loops =
    Hashtbl.fold
      (fun header body acc -> (header, body) :: acc)
      by_header []
  in
  (* Nesting depth: number of loops whose body strictly contains this one
     (a loop contains another when it includes the other's header and body).
     Own blocks: body minus inner loops' bodies. *)
  let contains (_, outer) (h, body) =
    Iset.mem h outer && Iset.subset body outer && not (Iset.equal body outer)
  in
  List.map
    (fun (header, body) ->
      let depth =
        1
        + List.length
            (List.filter (fun l -> contains l (header, body)) loops)
      in
      let own =
        List.fold_left
          (fun acc (h, b) ->
            if contains (header, body) (h, b) then Iset.diff acc b else acc)
          body loops
      in
      { header; body; own; depth })
    loops
  |> List.sort (fun a b -> compare (a.header, a.depth) (b.header, b.depth))

(* All blocks that belong to some loop. *)
let loop_blocks loops =
  List.fold_left (fun acc l -> Iset.union acc l.body) Iset.empty loops
