(** Control-flow graph of one procedure.

    Basic blocks end at control instructions and also at calls: the
    paper's region decomposition (Section 4.1) treats the block after a
    call as the start of a new DAG, so calls terminate blocks here. *)

type block = {
  id : int;
  first : int; (** address of first instruction, inclusive *)
  last : int;  (** address of last instruction, inclusive *)
}

type t = {
  proc : Sdiq_isa.Prog.proc;
  prog : Sdiq_isa.Prog.t;
  blocks : block array;       (** indexed by id, in address order *)
  succs : int list array;
  preds : int list array;
  block_of_addr : int array;  (** proc-relative address -> block id *)
}

val block_len : block -> int
val block_addrs : block -> int list

(** Instructions of a block, in address order. *)
val instrs : t -> block -> Sdiq_isa.Instr.t list

val entry_block : t -> block
val num_blocks : t -> int

(** Raises [Invalid_argument] for an address outside the procedure. *)
val block_at : t -> int -> block

(** Raises [Invalid_argument] on an empty procedure. *)
val build : Sdiq_isa.Prog.t -> Sdiq_isa.Prog.proc -> t

val succs : t -> int -> int list
val preds : t -> int -> int list

(** Reverse post-order from the entry; unreachable blocks appended. *)
val reverse_postorder : t -> int list

val pp : Format.formatter -> t -> unit
