(* Control-flow graph of one procedure.

   Basic blocks end at control instructions and also at calls: the paper's
   region decomposition (Section 4.1) treats a call as a boundary — the block
   after a call starts a new DAG — so making calls block terminators keeps
   blocks aligned with regions. [Halt] likewise terminates a block. *)

open Sdiq_isa

type block = {
  id : int;
  first : int; (* address of first instruction, inclusive *)
  last : int;  (* address of last instruction, inclusive *)
}

type t = {
  proc : Prog.proc;
  prog : Prog.t;
  blocks : block array;           (* indexed by block id, in address order *)
  succs : int list array;         (* successor block ids *)
  preds : int list array;
  block_of_addr : int array;      (* proc-relative address -> block id *)
}

let block_len b = b.last - b.first + 1

let block_addrs b = List.init (block_len b) (fun i -> b.first + i)

let instrs t b = List.map (fun a -> Prog.instr t.prog a) (block_addrs b)

let entry_block t = t.blocks.(0)

let num_blocks t = Array.length t.blocks

let block_at t addr =
  let rel = addr - t.proc.Prog.entry in
  if rel < 0 || rel >= Array.length t.block_of_addr then
    invalid_arg "Cfg.block_at: address outside procedure";
  t.blocks.(t.block_of_addr.(rel))

(* A block terminator: any control instruction or halt. *)
let terminates (i : Instr.t) =
  Instr.is_control i || i.op = Opcode.Halt

let build (prog : Prog.t) (proc : Prog.proc) : t =
  let lo = proc.entry and n = proc.len in
  if n = 0 then invalid_arg "Cfg.build: empty procedure";
  let hi = lo + n - 1 in
  let in_proc a = a >= lo && a <= hi in
  (* Mark leaders. *)
  let leader = Array.make n false in
  leader.(0) <- true;
  for a = lo to hi do
    let i = Prog.instr prog a in
    if terminates i then begin
      if a < hi then leader.(a + 1 - lo) <- true;
      if Instr.is_cond_branch i || i.op = Opcode.Jmp then
        if in_proc i.Instr.target then leader.(i.Instr.target - lo) <- true
    end
  done;
  (* Carve blocks. *)
  let blocks = ref [] in
  let start = ref lo in
  for a = lo to hi do
    let last_of_block =
      a = hi || leader.(a + 1 - lo) || terminates (Prog.instr prog a)
    in
    if last_of_block then begin
      blocks := { id = 0; first = !start; last = a } :: !blocks;
      start := a + 1
    end
  done;
  let blocks =
    Array.of_list (List.rev !blocks)
    |> Array.mapi (fun id b -> { b with id })
  in
  let block_of_addr = Array.make n 0 in
  Array.iter
    (fun b ->
      for a = b.first to b.last do
        block_of_addr.(a - lo) <- b.id
      done)
    blocks;
  let nb = Array.length blocks in
  let succs = Array.make nb [] in
  let preds = Array.make nb [] in
  let add_edge src dst =
    if not (List.mem dst succs.(src)) then begin
      succs.(src) <- dst :: succs.(src);
      preds.(dst) <- src :: preds.(dst)
    end
  in
  Array.iter
    (fun b ->
      let term = Prog.instr prog b.last in
      let fallthrough () =
        if b.last < hi then add_edge b.id block_of_addr.(b.last + 1 - lo)
      in
      match term.Instr.op with
      | Opcode.Jmp ->
        if in_proc term.Instr.target then
          add_edge b.id block_of_addr.(term.Instr.target - lo)
      | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Bge ->
        if in_proc term.Instr.target then
          add_edge b.id block_of_addr.(term.Instr.target - lo);
        fallthrough ()
      | Opcode.Call ->
        (* Intra-procedural CFG: control returns to the fallthrough. *)
        fallthrough ()
      | Opcode.Ret | Opcode.Halt -> ()
      | _ -> fallthrough ())
    blocks;
  { proc; prog; blocks; succs; preds; block_of_addr }

let succs t id = t.succs.(id)
let preds t id = t.preds.(id)

(* Blocks in reverse post-order from the entry (a breadth-friendly forward
   order used by the DAG analysis). Unreachable blocks are appended at the
   end in address order. *)
let reverse_postorder t =
  let nb = num_blocks t in
  let visited = Array.make nb false in
  let order = ref [] in
  let rec dfs id =
    if not visited.(id) then begin
      visited.(id) <- true;
      List.iter dfs (List.sort compare t.succs.(id));
      order := id :: !order
    end
  in
  dfs 0;
  let reached = !order in
  let unreached =
    List.filter (fun id -> not visited.(id)) (List.init nb (fun i -> i))
  in
  reached @ unreached

let pp ppf t =
  Array.iter
    (fun b ->
      Fmt.pf ppf "B%d [%d..%d] -> %a@." b.id b.first b.last
        Fmt.(list ~sep:comma int)
        (List.sort compare t.succs.(b.id)))
    t.blocks
