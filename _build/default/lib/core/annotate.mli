(** Annotation delivery: from analysis results to an annotated binary.

    [Noop] inserts special NOOPs into the instruction stream (Section 3);
    they cost fetch bandwidth, icache space and a dispatch slot. [Tagged]
    attaches the values to existing instructions via redundant ISA bits
    (the paper's "Extension", Section 5.3). *)

type mode =
  | Noop
  | Tagged

(** Lookup function over an annotation list. *)
val annotation_map : Procedure.annotation list -> int -> int option

(** Should the branch [src -> dst] be redirected to an inserted NOOP?
    False exactly for annotated loops' back edges. *)
val redirect_of : Procedure.annotation list -> src:int -> dst:int -> bool

(** Analyse and annotate; returns the annotated program and the
    annotations used. *)
val apply :
  ?opts:Options.t ->
  mode ->
  Sdiq_isa.Prog.t ->
  Sdiq_isa.Prog.t * Procedure.annotation list

(** The paper's three configurations. *)
val noop : Sdiq_isa.Prog.t -> Sdiq_isa.Prog.t * Procedure.annotation list

val extension :
  Sdiq_isa.Prog.t -> Sdiq_isa.Prog.t * Procedure.annotation list

val improved :
  Sdiq_isa.Prog.t -> Sdiq_isa.Prog.t * Procedure.annotation list
