(** Compiler-analysis options; defaults match the paper's Table 1 machine
    and Section 4 assumptions. *)

type t = {
  iq_size : int;          (** maximum value any annotation may take *)
  issue_width : int;
  fu_count : Sdiq_isa.Fu.t -> int;
  load_hit_extra : int;
      (** extra cycles assumed for a load on top of address generation:
          the L1 hit latency, since "all accesses to memory are cache
          hits" (Section 4.2) *)
  slack : int;
      (** extra entries granted to every region (conservatism knob used
          by the ablation study; 0 reproduces the paper) *)
  interprocedural : bool;
      (** the "Improved" refinement of Section 5.3 *)
}

val default : t

(** [default] with the interprocedural refinement enabled. *)
val improved : t

(** The latency the compiler assumes for an instruction: execution
    latency, plus the L1 hit time for loads. *)
val assumed_latency : t -> Sdiq_isa.Instr.t -> int
