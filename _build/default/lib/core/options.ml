(* Compiler-analysis options.

   The analysis is "not tuned to any hardware configuration" (Section 1.2)
   but needs to know the machine's issue width, FU mix and IQ size to mirror
   the processor's scheduler; these default to Table 1. *)

open Sdiq_isa

type t = {
  iq_size : int;          (* maximum value any annotation may take *)
  issue_width : int;
  fu_count : Fu.t -> int;
  load_hit_extra : int;
      (* extra cycles the compiler assumes for a load on top of address
         generation: the L1 hit latency, since "all accesses to memory are
         cache hits" (Section 4.2) *)
  slack : int;
      (* extra entries granted to every region: a conservatism knob used by
         the ablation study; 0 reproduces the paper *)
  interprocedural : bool;
      (* the "Improved" refinement of Section 5.3: functional-unit
         contention and queue pressure across procedure boundaries *)
}

let default =
  {
    iq_size = 80;
    issue_width = 8;
    fu_count = Fu.default_count;
    load_hit_extra = 2;
    slack = 0;
    interprocedural = false;
  }

let improved = { default with interprocedural = true }

(* The latency the compiler assumes for an instruction: execution latency,
   plus the L1 hit time for loads. *)
let assumed_latency t (i : Instr.t) =
  Instr.latency i + if Instr.is_load i then t.load_hit_extra else 0
