lib/core/annotate.mli: Options Procedure Sdiq_isa
