lib/core/loop_need.ml: Array Instr List Options Sdiq_cfg Sdiq_ddg Sdiq_isa
