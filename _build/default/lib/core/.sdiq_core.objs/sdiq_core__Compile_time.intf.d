lib/core/compile_time.mli: Options Sdiq_isa
