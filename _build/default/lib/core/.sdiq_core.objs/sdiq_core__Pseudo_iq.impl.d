lib/core/pseudo_iq.ml: Array Fu Instr List Opcode Options Sdiq_ddg Sdiq_isa
