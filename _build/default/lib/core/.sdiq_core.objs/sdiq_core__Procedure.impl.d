lib/core/procedure.ml: Array Fu Hashtbl Instr List Loop_need Opcode Options Prog Pseudo_iq Sdiq_cfg Sdiq_isa
