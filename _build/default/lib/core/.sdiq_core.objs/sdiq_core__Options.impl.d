lib/core/options.ml: Fu Instr Sdiq_isa
