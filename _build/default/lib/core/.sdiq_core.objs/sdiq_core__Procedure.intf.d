lib/core/procedure.mli: Hashtbl Options Sdiq_isa
