lib/core/pseudo_iq.mli: Options Sdiq_isa
