lib/core/compile_time.ml: Annotate List Options Prog Sdiq_cfg Sdiq_isa Sys
