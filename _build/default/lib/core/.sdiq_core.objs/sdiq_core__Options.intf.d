lib/core/options.mli: Sdiq_isa
