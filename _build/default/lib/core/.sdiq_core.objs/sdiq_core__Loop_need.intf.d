lib/core/loop_need.mli: Options Sdiq_cfg Sdiq_isa
