lib/core/annotate.ml: Hashtbl List Options Procedure Prog Rewrite Sdiq_isa
