(* Annotation delivery: turn the analysis results into an annotated binary.

   [Noop]   — the paper's base scheme: special NOOPs carrying the value are
              inserted into the instruction stream (Section 3); they cost
              fetch bandwidth, instruction-cache space and a dispatch slot.
   [Tagged] — the paper's "Extension": the value rides on redundant bits of
              the region's first instruction, with no stream side effects
              (Section 5.3). The "Improved" technique is [Tagged] delivery
              with [Options.improved] analysis. *)

open Sdiq_isa

type mode =
  | Noop
  | Tagged

let annotation_map annotations =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (a : Procedure.annotation) -> Hashtbl.replace table a.addr a.value)
    annotations;
  fun addr -> Hashtbl.find_opt table addr

(* Back edges of annotated loops must keep targeting the header, not the
   inserted NOOP, so the NOOP runs on loop entry only. *)
let redirect_of annotations ~src ~dst =
  not
    (List.exists
       (fun (a : Procedure.annotation) ->
         a.addr = dst
         && (match a.loop_span with
            | Some (lo, hi) -> src >= lo && src <= hi
            | None -> false))
       annotations)

(* [apply ~opts mode prog] analyses [prog] and returns the annotated
   program together with the annotations used. *)
let apply ?(opts = Options.default) mode (prog : Prog.t) :
    Prog.t * Procedure.annotation list =
  let annotations = Procedure.analyze_program ~opts prog in
  let ann = annotation_map annotations in
  let annotated =
    match mode with
    | Noop ->
      Rewrite.insert_iqsets ~redirect:(redirect_of annotations) prog ann
    | Tagged -> Rewrite.apply_tags prog ann
  in
  (annotated, annotations)

(* Convenience wrappers matching the paper's three configurations. *)
let noop prog = apply Noop prog
let extension prog = apply Tagged prog
let improved prog = apply ~opts:Options.improved Tagged prog
