(* Procedure-level orchestration (Sections 4.4-4.5, Figure 5):

     Find natural loops; find DAGs (starting at the procedure's first block
     or after a call, never overlapping a loop); build DDGs; analyse DAG
     blocks with the pseudo issue queue and loops with CDS equations; encode
     each region's requirement in a special NOOP (or a tag).

   Calls and returns are leaf nodes of the calling DAG: a call terminates a
   basic block, the callee analyses itself, and analysis restarts in the
   block after the call (which seeds a fresh DAG). Before a call to a
   library routine the queue is allowed to grow to its maximum size.

   The "Improved" refinement (Section 5.3) adds interprocedural
   functional-unit contention: when analysing the block that continues
   after a call, the callee's trailing instructions are assumed to still
   occupy their units, and the annotation is widened to cover the callee's
   in-flight tail so the caller's continuation is not starved. *)

open Sdiq_isa

type annotation = {
  addr : int;
  value : int;
  loop_span : (int * int) option;
      (* for a loop-header annotation: the [lo, hi] address range of the
         loop body, so NOOP insertion can leave back edges pointing at the
         header itself (the special NOOP runs on entry, not per iteration) *)
}

(* Per-procedure summary used by the interprocedural refinement. *)
type summary = {
  exit_pressure : Fu.t -> int; (* FU usage of the callee's final block *)
  exit_need : int;             (* IQ entries its final block occupies *)
}

let summarize ?(opts = Options.default) (prog : Prog.t) (proc : Prog.proc) :
    summary =
  if proc.Prog.is_library || proc.Prog.len = 0 then
    { exit_pressure = (fun _ -> 0); exit_need = opts.Options.iq_size }
  else begin
    let cfg = Sdiq_cfg.Cfg.build prog proc in
    let nb = Sdiq_cfg.Cfg.num_blocks cfg in
    let last = cfg.Sdiq_cfg.Cfg.blocks.(nb - 1) in
    let instrs = Array.of_list (Sdiq_cfg.Cfg.instrs cfg last) in
    let counts = Array.make Fu.count_classes 0 in
    Array.iter
      (fun i ->
        let k = Fu.index (Instr.fu_class i) in
        counts.(k) <- counts.(k) + 1)
      instrs;
    let r = Pseudo_iq.analyze ~opts instrs in
    {
      exit_pressure = (fun cls -> min (counts.(Fu.index cls)) 4);
      exit_need = r.Pseudo_iq.need;
    }
  end

(* Every region gets at least two slots: one instruction issuing while its
   successor is already dispatched, as in the paper's Figure 1(d) — with a
   single slot, dispatch would serialise behind every issue. *)
let clamp opts v = max 2 (min opts.Options.iq_size (v + opts.Options.slack))

(* Analyse one procedure; [summaries] maps callee entry address to its
   summary (empty when the interprocedural refinement is off). *)
let analyze_proc ?(opts = Options.default)
    ?(summaries : (int, summary) Hashtbl.t = Hashtbl.create 0)
    (prog : Prog.t) (proc : Prog.proc) : annotation list =
  let cfg = Sdiq_cfg.Cfg.build prog proc in
  let regions = Sdiq_cfg.Regions.decompose cfg in
  let anns = ref [] in
  let add ?loop_span addr value =
    anns := { addr; value = clamp opts value; loop_span } :: !anns
  in
  (* The callee reached by the call ending [blk], if any. *)
  let callee_of_block (blk : Sdiq_cfg.Cfg.block) =
    let term = Prog.instr prog blk.Sdiq_cfg.Cfg.last in
    if term.Instr.op = Opcode.Call then
      Prog.proc_of_addr prog term.Instr.target
    else None
  in
  (* Summary of the call that immediately precedes [blk], if any. *)
  let preceding_call_summary (blk : Sdiq_cfg.Cfg.block) =
    if not opts.Options.interprocedural then None
    else if blk.Sdiq_cfg.Cfg.first <= proc.Prog.entry then None
    else
      let prev = Prog.instr prog (blk.Sdiq_cfg.Cfg.first - 1) in
      if prev.Instr.op = Opcode.Call then
        Hashtbl.find_opt summaries prev.Instr.target
      else None
  in
  List.iter
    (fun region ->
      match region with
      | Sdiq_cfg.Regions.Dag block_ids ->
        (* Fine-grained analysis: each basic block individually, with the
           control-flow context summarised conservatively (Section 4.2). *)
        List.iter
          (fun id ->
            let blk = cfg.Sdiq_cfg.Cfg.blocks.(id) in
            let instrs = Array.of_list (Sdiq_cfg.Cfg.instrs cfg blk) in
            let r = Pseudo_iq.analyze ~opts instrs in
            let r =
              match preceding_call_summary blk with
              | Some s ->
                (* The callee's tail still occupies units and queue slots:
                   schedule the block under that contention and keep the
                   widest of the three views — the refinement may only
                   widen. *)
                let contended =
                  Pseudo_iq.analyze ~opts ~busy:s.exit_pressure instrs
                in
                { r with
                  Pseudo_iq.need =
                    max r.Pseudo_iq.need
                      (max contended.Pseudo_iq.need
                         (s.exit_need + r.Pseudo_iq.need)) }
              | None -> r
            in
            add blk.Sdiq_cfg.Cfg.first r.Pseudo_iq.need;
            (* Library callees are opaque: let the queue grow to its
               maximum immediately before the call (Section 4.4). *)
            match callee_of_block blk with
            | Some callee when callee.Prog.is_library ->
              add blk.Sdiq_cfg.Cfg.last opts.Options.iq_size
            | Some _ | None -> ())
          block_ids
      | Sdiq_cfg.Regions.Loop loop ->
        let r = Loop_need.analyze ~opts cfg regions loop in
        let header = cfg.Sdiq_cfg.Cfg.blocks.(loop.Sdiq_cfg.Loops.header) in
        let span =
          Sdiq_cfg.Loops.Iset.fold
            (fun id (lo, hi) ->
              let blk = cfg.Sdiq_cfg.Cfg.blocks.(id) in
              (min lo blk.Sdiq_cfg.Cfg.first, max hi blk.Sdiq_cfg.Cfg.last))
            loop.Sdiq_cfg.Loops.body
            (max_int, min_int)
        in
        add ~loop_span:span header.Sdiq_cfg.Cfg.first r.Loop_need.need;
        (* The annotation covers "until the next special NOOP": whenever
           control leaves the loop's own region and returns (an inner loop
           ran, or a call returned), the loop's value must be
           re-established, so the re-entry blocks are annotated too. These
           run on every iteration that passes through them — the honest
           per-iteration cost of the NOOP scheme. *)
        let own = loop.Sdiq_cfg.Loops.own in
        let in_inner id =
          Sdiq_cfg.Loops.Iset.mem id loop.Sdiq_cfg.Loops.body
          && not (Sdiq_cfg.Loops.Iset.mem id own)
        in
        List.iter
          (fun id ->
            let blk = cfg.Sdiq_cfg.Cfg.blocks.(id) in
            let follows_call =
              blk.Sdiq_cfg.Cfg.first > proc.Prog.entry
              && (Prog.instr prog (blk.Sdiq_cfg.Cfg.first - 1)).Instr.op
                 = Opcode.Call
            in
            let after_inner_loop =
              List.exists in_inner (Sdiq_cfg.Cfg.preds cfg id)
            in
            if
              id <> loop.Sdiq_cfg.Loops.header
              && (follows_call || after_inner_loop)
            then begin
              let value =
                if follows_call && opts.Options.interprocedural then
                  match preceding_call_summary blk with
                  | Some s ->
                    (* The callee's tail is still in flight: the loop's
                       window must also cover it (Improved, Section 5.3). *)
                    r.Loop_need.need + s.exit_need
                  | None -> r.Loop_need.need
                else r.Loop_need.need
              in
              add blk.Sdiq_cfg.Cfg.first value
            end;
            (* Library calls inside the loop still force the maximum. *)
            match callee_of_block blk with
            | Some callee when callee.Prog.is_library ->
              add blk.Sdiq_cfg.Cfg.last opts.Options.iq_size
            | Some _ | None -> ())
          (Sdiq_cfg.Regions.blocks regions region))
    regions.Sdiq_cfg.Regions.regions;
  (* Deduplicate: a later annotation for the same address wins only if
     larger (safety: never shrink what another rule demanded); a loop span
     is kept whichever annotation carries it. *)
  let merged = Hashtbl.create 16 in
  List.iter
    (fun a ->
      match Hashtbl.find_opt merged a.addr with
      | Some b when b.value >= a.value ->
        if b.loop_span = None && a.loop_span <> None then
          Hashtbl.replace merged a.addr { b with loop_span = a.loop_span }
      | Some b ->
        Hashtbl.replace merged a.addr
          { a with
            loop_span =
              (match a.loop_span with None -> b.loop_span | s -> s) }
      | None -> Hashtbl.replace merged a.addr a)
    !anns;
  Hashtbl.fold (fun _ a acc -> a :: acc) merged []
  |> List.sort (fun a b -> compare a.addr b.addr)

(* Analyse every non-library procedure of a program. *)
let analyze_program ?(opts = Options.default) (prog : Prog.t) :
    annotation list =
  let summaries = Hashtbl.create 16 in
  if opts.Options.interprocedural then
    List.iter
      (fun (p : Prog.proc) ->
        Hashtbl.replace summaries p.Prog.entry (summarize ~opts prog p))
      prog.Prog.procs;
  List.concat_map
    (fun (p : Prog.proc) ->
      if p.Prog.is_library || p.Prog.len = 0 then []
      else analyze_proc ~opts ~summaries prog p)
    prog.Prog.procs
  |> List.sort (fun a b -> compare a.addr b.addr)
