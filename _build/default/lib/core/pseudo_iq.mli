(** The pseudo issue queue: the paper's DAG / basic-block analysis
    (Section 4.2, Figure 3).

    The block is scheduled cycle by cycle under data dependences, issue
    width and functional-unit counts, mirroring the processor's own
    scheduler. On each cycle the entries required are the program-order
    span from the oldest instruction still queued to the youngest
    instruction issuing; the block's requirement is the maximum over
    cycles. *)

type result = {
  need : int;           (** IQ entries required by the block *)
  span_cycles : int;    (** cycles from first to last issue *)
  issue_cycle : int array;
}

(** [busy] pre-occupies functional units for the first [busy_cycles]
    cycles; the "Improved" analysis uses it to model contention with a
    just-returned callee's in-flight tail (Section 5.3). *)
val analyze :
  ?opts:Options.t ->
  ?busy:(Sdiq_isa.Fu.t -> int) ->
  ?busy_cycles:int ->
  Sdiq_isa.Instr.t array ->
  result
