(* Compilation-time measurement (Table 2 of the paper).

   The paper reports wall-clock compile time for the baseline compilation
   and for the "limited" compilation that includes the IQ analysis. Our
   equivalent: [baseline] is the structural work every compilation performs
   (CFG construction and region decomposition for every procedure), and
   [limited] additionally runs the full analysis and annotation pass.
   Times are reported in milliseconds of CPU time; absolute values are not
   comparable to the paper's minutes on a Pentium 4 compiling SPEC sources,
   but the *ratio* (limited vs baseline) and the cross-benchmark ordering
   are the reproducible content. *)

open Sdiq_isa

type measurement = {
  baseline_ms : float;
  limited_ms : float;
}

let time_of f =
  let t0 = Sys.time () in
  f ();
  (Sys.time () -. t0) *. 1000.

(* Structural pass only: what a compilation does before our analysis. *)
let structural_pass (prog : Prog.t) =
  List.iter
    (fun (p : Prog.proc) ->
      if (not p.Prog.is_library) && p.Prog.len > 0 then begin
        let cfg = Sdiq_cfg.Cfg.build prog p in
        ignore (Sdiq_cfg.Regions.decompose cfg)
      end)
    prog.Prog.procs

let measure ?(opts = Options.default) ?(repeat = 3) (prog : Prog.t) :
    measurement =
  let baseline_ms =
    time_of (fun () ->
        for _ = 1 to repeat do
          structural_pass prog
        done)
    /. float_of_int repeat
  in
  let limited_ms =
    time_of (fun () ->
        for _ = 1 to repeat do
          structural_pass prog;
          ignore (Annotate.apply ~opts Annotate.Noop prog)
        done)
    /. float_of_int repeat
  in
  { baseline_ms; limited_ms }
