(** Procedure-level orchestration (Sections 4.4-4.5, Figure 5): region
    decomposition, per-block pseudo-IQ analysis, per-loop CDS analysis,
    library-call escapes, and the interprocedural "Improved" refinement.

    Annotations are placed at each DAG block's first address, at each
    loop header (executed on loop entry only — back edges bypass the
    NOOP), and at a loop's re-entry blocks (after an inner loop or a
    returning call), since an annotation covers "until the next special
    NOOP". *)

type annotation = {
  addr : int;
  value : int;
  loop_span : (int * int) option;
      (** for a loop-header annotation, the address range of the loop
          body: back edges from inside it keep targeting the header *)
}

(** Per-procedure summary used by the interprocedural refinement. *)
type summary = {
  exit_pressure : Sdiq_isa.Fu.t -> int;
      (** FU usage of the callee's final block *)
  exit_need : int;  (** IQ entries its final block occupies *)
}

val summarize :
  ?opts:Options.t -> Sdiq_isa.Prog.t -> Sdiq_isa.Prog.proc -> summary

(** Analyse one procedure. [summaries] maps callee entry addresses to
    their summaries (used only under [opts.interprocedural]). *)
val analyze_proc :
  ?opts:Options.t ->
  ?summaries:(int, summary) Hashtbl.t ->
  Sdiq_isa.Prog.t ->
  Sdiq_isa.Prog.proc ->
  annotation list

(** Analyse every non-library procedure, sorted by address. *)
val analyze_program : ?opts:Options.t -> Sdiq_isa.Prog.t -> annotation list
