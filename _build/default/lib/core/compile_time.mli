(** Compilation-time measurement (Table 2): CPU time of the structural
    pass alone ([baseline]) and with the full analysis ([limited]).
    Absolute values are not comparable to the paper's minutes; the ratio
    and cross-benchmark ordering are the reproducible content. *)

type measurement = {
  baseline_ms : float;
  limited_ms : float;
}

val measure :
  ?opts:Options.t -> ?repeat:int -> Sdiq_isa.Prog.t -> measurement
