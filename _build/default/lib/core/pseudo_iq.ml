(* Pseudo issue queue: the DAG / basic-block analysis of Section 4.2.

   "The algorithm used to determine the critical path is very similar to
   that which the scheduler in the processor uses to issue instructions. In
   the compiler we maintain a structure similar to the processor's issue
   queue ... We issue as many instructions as possible, to a maximum of the
   processor's issue width, and record their writeback times based on their
   operation latencies."

   The block is scheduled cycle by cycle under data dependences, issue
   width, and functional-unit counts (the paper models FU contention as an
   extra DDG edge; constraining the scheduler directly is equivalent and is
   in fact what the processor does). On each cycle the number of IQ entries
   required is the program-order span from the oldest instruction still in
   the queue to the youngest instruction issuing this cycle, exactly as in
   Figure 3; the block's requirement is the maximum over all cycles.

   [busy] pre-occupies functional units during the first cycles; the
   "Improved" analysis uses it to model contention with a just-returned
   callee's in-flight instructions (Section 5.3). *)

open Sdiq_isa

type result = {
  need : int;           (* IQ entries required by the block *)
  span_cycles : int;    (* cycles from first to last issue *)
  issue_cycle : int array;
}

let analyze ?(opts = Options.default) ?(busy = fun (_ : Fu.t) -> 0)
    ?(busy_cycles = 2) (instrs : Instr.t array) : result =
  let n = Array.length instrs in
  if n = 0 then { need = 1; span_cycles = 0; issue_cycle = [||] }
  else begin
    let lat i = Options.assumed_latency opts instrs.(i) in
    let g = Sdiq_ddg.Ddg.build ~latency:(Options.assumed_latency opts) instrs in
    let issue_cycle = Array.make n (-1) in
    let writeback = Array.make n max_int in
    let issued = Array.make n false in
    let remaining = ref n in
    (* Release time of unpipelined units currently busy, per class. *)
    let unpipe_busy = Array.make Fu.count_classes [] in
    let need = ref 1 in
    let cycle = ref 0 in
    (* Upper bound on schedule length: every instruction serialised. *)
    let horizon =
      Array.fold_left (fun acc i -> acc + Instr.latency i + 1) (n + 16) instrs
      + (busy_cycles * 2)
    in
    while !remaining > 0 && !cycle < horizon do
      let c = !cycle in
      (* Units available this cycle, per class. *)
      let avail =
        Array.init Fu.count_classes (fun k ->
            let cls = List.nth Fu.all k in
            let busy_now =
              (if c < busy_cycles then busy cls else 0)
              + List.length (List.filter (fun r -> r > c) unpipe_busy.(k))
            in
            max 0 (opts.Options.fu_count cls - busy_now))
      in
      let width_left = ref opts.Options.issue_width in
      (* Oldest instruction still in the queue at the start of this cycle. *)
      let oldest = ref (-1) in
      (try
         for i = 0 to n - 1 do
           if not issued.(i) then begin
             oldest := i;
             raise Exit
           end
         done
       with Exit -> ());
      let youngest_issuing = ref (-1) in
      for i = 0 to n - 1 do
        if (not issued.(i)) && !width_left > 0 then begin
          let deps_ready =
            List.for_all
              (fun (src, _, _) -> issued.(src) && writeback.(src) <= c)
              (Sdiq_ddg.Ddg.preds g i)
          in
          let k = Fu.index (Instr.fu_class instrs.(i)) in
          if deps_ready && avail.(k) > 0 then begin
            issued.(i) <- true;
            decr remaining;
            issue_cycle.(i) <- c;
            writeback.(i) <- c + lat i;
            avail.(k) <- avail.(k) - 1;
            decr width_left;
            if Opcode.unpipelined instrs.(i).Instr.op then
              unpipe_busy.(k) <- writeback.(i) :: unpipe_busy.(k);
            youngest_issuing := i
          end
        end
      done;
      if !youngest_issuing >= 0 && !oldest >= 0 then
        need := max !need (!youngest_issuing - !oldest + 1);
      incr cycle
    done;
    (* [horizon] guards against bugs only; every block schedules. *)
    assert (!remaining = 0);
    let last =
      Array.fold_left max 0 issue_cycle
    and first =
      Array.fold_left min max_int issue_cycle
    in
    { need = !need; span_cycles = last - first; issue_cycle }
  end
