(* Loop analysis (Section 4.3): the IQ requirement that lets iterations
   overlap at the rate the critical cyclic dependence set allows.

   The loop region's blocks are flattened in program order into one body
   sequence (side-exit paths are included, which is conservative in the
   safe direction: a larger body can only ask for more entries). The CDS
   machinery in [Sdiq_ddg.Cds] produces the initiation interval and the
   per-instruction equations of Figure 4; [Sdiq_ddg.Cds.iq_need] converts them to
   an entry count, capped at the physical queue size. *)

open Sdiq_isa

type result = {
  need : int;
  ii : int;             (* steady-state cycles per iteration *)
  cds : int list;       (* body positions of the critical CDS *)
  body_len : int;
}

let analyze_body ?(opts = Options.default) (instrs : Instr.t array) : result =
  if Array.length instrs = 0 then
    { need = 1; ii = 1; cds = []; body_len = 0 }
  else begin
    let g =
      Sdiq_ddg.Ddg.of_loop_body ~latency:(Options.assumed_latency opts) instrs
    in
    let sch =
      Sdiq_ddg.Cds.schedule ~width:opts.Options.issue_width
        ~fu_count:opts.Options.fu_count g
    in
    let need = Sdiq_ddg.Cds.iq_need ~cap:opts.Options.iq_size g sch in
    {
      need = min opts.Options.iq_size (max 1 need);
      ii = sch.Sdiq_ddg.Cds.ii;
      cds = sch.Sdiq_ddg.Cds.cds;
      body_len = Array.length instrs;
    }
  end

(* Flatten a loop region's own blocks (program order) into a body
   sequence. *)
let body_of_region (cfg : Sdiq_cfg.Cfg.t) (regions : Sdiq_cfg.Regions.t)
    (region : Sdiq_cfg.Regions.region) : Instr.t array =
  let block_ids = Sdiq_cfg.Regions.blocks regions region in
  let instrs =
    List.concat_map
      (fun id -> Sdiq_cfg.Cfg.instrs cfg cfg.Sdiq_cfg.Cfg.blocks.(id))
      block_ids
  in
  Array.of_list instrs

(* Control-flow paths through the loop (header back to header), bounded.
   The paper examines all control-flow paths — that is what makes its gcc
   compilation time explode (Table 2) — because a single flattened body
   misjudges loops whose iterations usually take a fast path: folding a
   rare slow side (say a division) into one body inflates the recurrence
   and underestimates how many iterations of the *hot* path must overlap.
   The requirement is the maximum over paths. *)
let loop_paths ?(max_paths = 64) (cfg : Sdiq_cfg.Cfg.t)
    (loop : Sdiq_cfg.Loops.t) : int list list =
  let own id = Sdiq_cfg.Loops.Iset.mem id loop.Sdiq_cfg.Loops.own in
  let header = loop.Sdiq_cfg.Loops.header in
  let paths = ref [] in
  let count = ref 0 in
  let rec walk node acc =
    if !count < max_paths then begin
      let acc = node :: acc in
      let succs = Sdiq_cfg.Cfg.succs cfg node in
      let closes = List.mem header succs in
      if closes then begin
        paths := List.rev acc :: !paths;
        incr count
      end;
      List.iter
        (fun s ->
          (* Stay on this loop's own blocks; skip the back edge itself and
             any block already on the path (paths are acyclic). *)
          if s <> header && own s && not (List.mem s acc) then walk s acc)
        succs
    end
  in
  walk header [];
  if !paths = [] then [ [ header ] ] else !paths

let analyze ?(opts = Options.default) (cfg : Sdiq_cfg.Cfg.t)
    (regions : Sdiq_cfg.Regions.t) (loop : Sdiq_cfg.Loops.t) : result =
  let whole = analyze_body ~opts (body_of_region cfg regions
                                    (Sdiq_cfg.Regions.Loop loop)) in
  let best =
    List.fold_left
      (fun acc path ->
        let body =
          Array.of_list
            (List.concat_map
               (fun id ->
                 Sdiq_cfg.Cfg.instrs cfg cfg.Sdiq_cfg.Cfg.blocks.(id))
               path)
        in
        let r = analyze_body ~opts body in
        if r.need > acc.need then r else acc)
      whole
      (loop_paths cfg loop)
  in
  best
