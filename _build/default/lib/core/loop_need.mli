(** Loop analysis (Section 4.3): the IQ requirement that lets iterations
    overlap at the rate the critical cyclic dependence set allows.

    The requirement is taken as the maximum over the loop's control-flow
    paths (header back to header): folding a rare slow side into one
    flattened body would inflate the recurrence and underestimate how
    many hot-path iterations must overlap — the paper examines all
    control-flow paths, which is also what makes its gcc compilation
    time explode (Table 2). *)

type result = {
  need : int;
  ii : int;             (** steady-state cycles per iteration *)
  cds : int list;       (** body positions of the critical CDS *)
  body_len : int;
}

(** Analyse a flat body sequence (carried edges derived internally). *)
val analyze_body : ?opts:Options.t -> Sdiq_isa.Instr.t array -> result

(** The loop region's own blocks flattened in program order. *)
val body_of_region :
  Sdiq_cfg.Cfg.t ->
  Sdiq_cfg.Regions.t ->
  Sdiq_cfg.Regions.region ->
  Sdiq_isa.Instr.t array

(** Acyclic header-to-latch paths through the loop's own blocks,
    bounded by [max_paths]. *)
val loop_paths :
  ?max_paths:int -> Sdiq_cfg.Cfg.t -> Sdiq_cfg.Loops.t -> int list list

val analyze :
  ?opts:Options.t ->
  Sdiq_cfg.Cfg.t ->
  Sdiq_cfg.Regions.t ->
  Sdiq_cfg.Loops.t ->
  result
