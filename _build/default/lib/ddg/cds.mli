(** Cyclic dependence sets and loop scheduling (Section 4.3).

    For a loop-body DDG with carried edges this computes the initiation
    interval (the larger of the critical CDS's recurrence bound and the
    resource bound), per-instruction start offsets, and the paper's
    Figure 4 equations: instruction [x] of iteration [i] issues with the
    reference CDS instruction of iteration [i + k(x)], plus a residual
    cycle count when the alignment is not exact. *)

type equation = {
  node : int;
  iter_offset : int;    (** k: aligns with reference of iteration i + k *)
  cycle_residual : int; (** leftover cycles in [0, ii) *)
}

type schedule = {
  ii : int;             (** initiation interval, cycles per iteration *)
  start : int array;    (** issue cycle of position p in iteration 0 *)
  reference : int;      (** body position of the reference instruction *)
  cds : int list;       (** positions of the critical CDS (empty if none) *)
  equations : equation list;
}

(** Longest-path start times for a candidate II; [None] when the system
    has a positive cycle (II below the recurrence bound). *)
val solve_starts : Ddg.t -> ii:int -> int array option

(** Strongly connected components that form dependence cycles — the
    paper's cyclic dependence sets. *)
val cds_sets : Ddg.t -> int list list

(** Minimum II a single CDS forces. *)
val component_mii : Ddg.t -> int list -> int

(** Resource lower bound on II (issue width and FU counts). *)
val resource_mii :
  ?width:int -> ?fu_count:(Sdiq_isa.Fu.t -> int) -> Ddg.t -> int

val schedule :
  ?width:int -> ?fu_count:(Sdiq_isa.Fu.t -> int) -> Ddg.t -> schedule

(** Issue-queue entries needed so the loop sustains its critical path:
    the widest dispatch-index span between the oldest instruction still
    waiting to issue and the youngest instruction issuing, in steady
    state (the Figure 4 example yields 15). Capped at [cap]. *)
val iq_need : ?cap:int -> Ddg.t -> schedule -> int
