(* Graphviz export of control-flow structure: handy when writing new
   workloads or debugging the region decomposition.

     dune exec bin/simulate.exe and pipe through `dot -Tsvg` *)

open Sdiq_isa
module Cfg = Sdiq_cfg.Cfg
module Loops = Sdiq_cfg.Loops

let escape s =
  String.concat "\\n" (String.split_on_char '\n' (String.escaped s))

(* The CFG, one node per block, labelled with its instructions; loop
   blocks are shaded by nesting depth. *)
let cfg_to_dot ?(max_instrs_per_block = 6) (cfg : Cfg.t) : string =
  let buf = Buffer.create 2048 in
  let loops = Loops.find cfg in
  let depth_of id =
    List.fold_left
      (fun acc (l : Loops.t) ->
        if Loops.Iset.mem id l.Loops.body then max acc l.Loops.depth else acc)
      0 loops
  in
  Buffer.add_string buf "digraph cfg {\n  node [shape=box, fontname=monospace];\n";
  Array.iter
    (fun (b : Cfg.block) ->
      let instrs = Cfg.instrs cfg b in
      let shown =
        List.filteri (fun i _ -> i < max_instrs_per_block) instrs
        |> List.map Instr.to_string
      in
      let more =
        if List.length instrs > max_instrs_per_block then [ "..." ] else []
      in
      let label =
        Printf.sprintf "B%d [%d..%d]\\n%s" b.Cfg.id b.Cfg.first b.Cfg.last
          (escape (String.concat "\n" (shown @ more)))
      in
      let fill =
        match depth_of b.Cfg.id with
        | 0 -> ""
        | 1 -> ", style=filled, fillcolor=\"#e8f0fe\""
        | _ -> ", style=filled, fillcolor=\"#c9dcf7\""
      in
      Buffer.add_string buf
        (Printf.sprintf "  b%d [label=\"%s\"%s];\n" b.Cfg.id label fill))
    cfg.Cfg.blocks;
  Array.iteri
    (fun src succs ->
      List.iter
        (fun dst ->
          let back = dst <= src in
          Buffer.add_string buf
            (Printf.sprintf "  b%d -> b%d%s;\n" src dst
               (if back then " [color=red, constraint=false]" else "")))
        succs)
    cfg.Cfg.succs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* A DDG, one node per instruction; loop-carried edges dashed. *)
let ddg_to_dot (g : Ddg.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "digraph ddg {\n  node [shape=box, fontname=monospace];\n";
  Array.iteri
    (fun i ins ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%d: %s\"];\n" i i
           (escape (Instr.to_string ins))))
    g.Ddg.instrs;
  List.iter
    (fun (e : Ddg.edge) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%d\"%s];\n" e.src e.dst
           e.latency
           (if e.distance > 0 then ", style=dashed, color=blue" else "")))
    g.Ddg.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
