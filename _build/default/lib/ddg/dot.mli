(** Graphviz export of control-flow graphs (loop blocks shaded by nesting
    depth, back edges in red) and data-dependence graphs (loop-carried
    edges dashed). *)

val cfg_to_dot : ?max_instrs_per_block:int -> Sdiq_cfg.Cfg.t -> string
val ddg_to_dot : Ddg.t -> string
