lib/ddg/ddg.mli: Format Sdiq_cfg Sdiq_isa
