lib/ddg/cds.ml: Array Ddg Fu Hashtbl Instr List Sdiq_isa
