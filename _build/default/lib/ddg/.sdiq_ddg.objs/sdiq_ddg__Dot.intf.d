lib/ddg/dot.mli: Ddg Sdiq_cfg
