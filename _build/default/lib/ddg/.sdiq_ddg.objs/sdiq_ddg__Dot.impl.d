lib/ddg/dot.ml: Array Buffer Ddg Instr List Printf Sdiq_cfg Sdiq_isa String
