lib/ddg/cds.mli: Ddg Sdiq_isa
