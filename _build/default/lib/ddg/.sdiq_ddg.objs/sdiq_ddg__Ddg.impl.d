lib/ddg/ddg.ml: Array Fmt Hashtbl Instr List Reg Sdiq_cfg Sdiq_isa
