(** Data-dependence graphs (Section 4.1): nodes are positions in an
    instruction sequence, edges are true (RAW) dependences labelled with
    the producer's latency; [distance] is the iteration distance (0 for
    same-iteration, 1 for loop-carried edges).

    Memory dependences are added only between provably same-location
    store/load pairs (same base register, same offset, no intervening
    base redefinition), consistent with the perfect disambiguation the
    timing model uses. *)

type edge = {
  src : int;
  dst : int;
  latency : int;
  distance : int;
}

type t = {
  instrs : Sdiq_isa.Instr.t array;
  edges : edge list;
  preds : (int * int * int) list array;
      (** per node: (src, latency, distance) of incoming edges *)
}

val num_nodes : t -> int
val edges : t -> edge list
val preds : t -> int -> (int * int * int) list
val succs : t -> int -> edge list

(** Assemble a graph from explicit edges; raises [Invalid_argument] on
    out-of-range endpoints. *)
val make : Sdiq_isa.Instr.t array -> edge list -> t

(** Register RAW edges within one iteration; with [carried], also the
    loop-carried edges. [latency] overrides producer latencies — the
    compiler analysis views loads with their assumed L1-hit latency. *)
val build :
  ?carried:bool ->
  ?latency:(Sdiq_isa.Instr.t -> int) ->
  Sdiq_isa.Instr.t array ->
  t

(** DDG of one basic block. *)
val of_block :
  ?latency:(Sdiq_isa.Instr.t -> int) ->
  Sdiq_cfg.Cfg.t ->
  Sdiq_cfg.Cfg.block ->
  t

(** DDG of a loop body (blocks concatenated in program order), with
    carried edges. *)
val of_loop_body :
  ?latency:(Sdiq_isa.Instr.t -> int) -> Sdiq_isa.Instr.t array -> t

val pp : Format.formatter -> t -> unit
