(* Data-dependence graphs (Section 4.1: "Within each loop and DAG the DDG is
   constructed and its edges labelled with the latencies of the
   instructions").

   Nodes are positions in an instruction sequence (a basic block, or a loop
   body). Edges are true (RAW) dependences — renaming removes WAR/WAW, so
   they do not constrain the issue queue. [distance] is the iteration
   distance: 0 for same-iteration edges, 1 for loop-carried edges.

   Memory dependences: the compiler has no alias analysis, so we take the
   optimistic-but-safe-for-timing view a simple compiler would: a store and
   a later load depend on each other only when they provably access the same
   location (same base register with no intervening redefinition, same
   offset). The timing simulator uses perfect memory disambiguation, so this
   choice is consistent with the hardware being modelled. Cache misses are
   not modelled here: the paper assumes all accesses hit (Section 4.2). *)

open Sdiq_isa

type edge = {
  src : int;
  dst : int;
  latency : int; (* latency of the producing instruction *)
  distance : int; (* iteration distance: 0 = same iteration *)
}

type t = {
  instrs : Instr.t array;
  edges : edge list;
  preds : (int * int * int) list array;
      (* per node: (src, latency, distance) of incoming edges *)
}

let num_nodes t = Array.length t.instrs

let edges t = t.edges

let preds t n = t.preds.(n)

let succs t n = List.filter (fun e -> e.src = n) t.edges

let make instrs edges =
  let n = Array.length instrs in
  let preds = Array.make n [] in
  List.iter
    (fun e ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        invalid_arg "Ddg.make: edge endpoint out of range";
      preds.(e.dst) <- (e.src, e.latency, e.distance) :: preds.(e.dst))
    edges;
  { instrs; edges; preds }

(* Register RAW edges within one iteration of [instrs]; when [carried] is
   true, also the loop-carried edges (last writer in the body to the reads
   that occur before any redefinition in the next iteration). [latency]
   lets the caller override the producing latency — the compiler analysis
   views loads with their assumed L1-hit latency (Section 4.2). *)
let build ?(carried = false) ?(latency = Instr.latency)
    (instrs : Instr.t array) : t =
  let n = Array.length instrs in
  let last_writer = Hashtbl.create 16 in (* Reg.dense -> node *)
  let edges = ref [] in
  let add_edge src dst distance =
    let latency = latency instrs.(src) in
    edges := { src; dst; latency; distance } :: !edges
  in
  (* Same-iteration register edges; remember reads that happen before any
     redefinition (exposed reads) for the carried pass. *)
  let exposed_reads = Hashtbl.create 16 in (* Reg.dense -> node list *)
  for i = 0 to n - 1 do
    let ins = instrs.(i) in
    List.iter
      (fun r ->
        let d = Reg.dense r in
        match Hashtbl.find_opt last_writer d with
        | Some w -> add_edge w i 0
        | None ->
          let cur =
            match Hashtbl.find_opt exposed_reads d with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace exposed_reads d (i :: cur))
      (Instr.sources ins);
    (match Instr.dest ins with
    | Some r -> Hashtbl.replace last_writer (Reg.dense r) i
    | None -> ())
  done;
  (* Same-iteration memory edges: provable same-location store -> load /
     store -> store. A pair is provably same-location when base register and
     offset match and the base register is not redefined in between. *)
  let base_key (ins : Instr.t) =
    match ins.src1 with Some r -> Some (Reg.dense r, ins.imm) | None -> None
  in
  let redefines_between lo hi regd =
    let redefined = ref false in
    for k = lo + 1 to hi - 1 do
      match Instr.dest instrs.(k) with
      | Some r when Reg.dense r = regd -> redefined := true
      | Some _ | None -> ()
    done;
    !redefined
  in
  for i = 0 to n - 1 do
    if Instr.is_store instrs.(i) then
      for j = i + 1 to n - 1 do
        if Instr.is_mem instrs.(j) then
          match (base_key instrs.(i), base_key instrs.(j)) with
          | Some (bi, oi), Some (bj, oj)
            when bi = bj && oi = oj && not (redefines_between i j bi) ->
            add_edge i j 0
          | _ -> ()
      done
  done;
  (* Loop-carried register edges. *)
  if carried then
    Hashtbl.iter
      (fun d w ->
        match Hashtbl.find_opt exposed_reads d with
        | Some readers -> List.iter (fun r -> add_edge w r 1) readers
        | None -> ())
      last_writer;
  make instrs (List.rev !edges)

(* DDG of one basic block. *)
let of_block ?latency (cfg : Sdiq_cfg.Cfg.t) (b : Sdiq_cfg.Cfg.block) : t =
  build ~carried:false ?latency (Array.of_list (Sdiq_cfg.Cfg.instrs cfg b))

(* DDG of a loop body given as a flat instruction sequence (blocks of the
   loop region concatenated in program order), with carried edges. *)
let of_loop_body ?latency instrs = build ~carried:true ?latency instrs

let pp ppf t =
  Array.iteri (fun i ins -> Fmt.pf ppf "%2d: %a@." i Instr.pp ins) t.instrs;
  List.iter
    (fun e ->
      Fmt.pf ppf "  %d -> %d (lat %d, dist %d)@." e.src e.dst e.latency
        e.distance)
    t.edges
