(* The paper's worked examples, reproduced end to end.

   Figure 1: a 6-instruction basic block causes 18 wakeups in the
   baseline queue but only 10 when limited to 2 entries, with no
   slowdown. Figure 3: the pseudo issue queue finds that block's cousin
   needs 4 entries. Figure 4: the loop whose cyclic dependence set yields
   the equations b=a_{i+1}, c=d=a_{i+2}, e=f=a_{i+3} and a requirement of
   15 entries.

     dune exec examples/paper_figures.exe *)

open Sdiq_isa

let r = Reg.int

(* --- Figure 1: wakeups in the baseline vs the limited queue ------------ *)

let figure1 () =
  Fmt.pr "=== Figure 1: issue queue power savings ===@.";
  (* a,b independent; c<-a, d<-b; e<-c,d; f<-b,d — as in the paper. *)
  let q = Sdiq_cpu.Iq.create ~size:80 ~bank_size:8 in
  (* Baseline: all six dispatched at once. Tags 10..13 are the results of
     a,b,c,d; f's r2 operand comes from b. *)
  let _a = Sdiq_cpu.Iq.dispatch q ~rob_idx:0 ~ops:[ (1, true) ] in
  let _b = Sdiq_cpu.Iq.dispatch q ~rob_idx:1 ~ops:[ (2, true) ] in
  let sc = Sdiq_cpu.Iq.dispatch q ~rob_idx:2 ~ops:[ (10, false) ] in
  let sd = Sdiq_cpu.Iq.dispatch q ~rob_idx:3 ~ops:[ (11, false) ] in
  let _e = Sdiq_cpu.Iq.dispatch q ~rob_idx:4 ~ops:[ (12, false); (13, false) ] in
  let _f = Sdiq_cpu.Iq.dispatch q ~rob_idx:5 ~ops:[ (11, false); (13, false) ] in
  Sdiq_cpu.Iq.issue q 0;
  Sdiq_cpu.Iq.issue q 1;
  ignore (Sdiq_cpu.Iq.broadcast_many q [ 10; 11 ]);
  Sdiq_cpu.Iq.issue q sc;
  Sdiq_cpu.Iq.issue q sd;
  ignore (Sdiq_cpu.Iq.broadcast_many q [ 12; 13 ]);
  Fmt.pr "baseline queue: %d wakeups (paper: 18)@." q.Sdiq_cpu.Iq.wakeups_gated;
  (* Limited to 2 entries: c,d dispatch only after a,b issue; e,f after
     c,d. f's b-operand is ready by the time f dispatches. *)
  let q = Sdiq_cpu.Iq.create ~size:80 ~bank_size:8 in
  let sa = Sdiq_cpu.Iq.dispatch q ~rob_idx:0 ~ops:[ (1, true) ] in
  let sb = Sdiq_cpu.Iq.dispatch q ~rob_idx:1 ~ops:[ (2, true) ] in
  Sdiq_cpu.Iq.issue q sa;
  Sdiq_cpu.Iq.issue q sb;
  let sc = Sdiq_cpu.Iq.dispatch q ~rob_idx:2 ~ops:[ (10, false) ] in
  let sd = Sdiq_cpu.Iq.dispatch q ~rob_idx:3 ~ops:[ (11, false) ] in
  ignore (Sdiq_cpu.Iq.broadcast_many q [ 10; 11 ]);
  Sdiq_cpu.Iq.issue q sc;
  Sdiq_cpu.Iq.issue q sd;
  ignore (Sdiq_cpu.Iq.dispatch q ~rob_idx:4 ~ops:[ (12, false); (13, false) ]);
  ignore (Sdiq_cpu.Iq.dispatch q ~rob_idx:5 ~ops:[ (11, true); (13, false) ]);
  ignore (Sdiq_cpu.Iq.broadcast_many q [ 12; 13 ]);
  Fmt.pr "limited queue:  %d wakeups (paper: 10)@.@." q.Sdiq_cpu.Iq.wakeups_gated

(* --- Figure 3: pseudo issue queue on a basic block ---------------------- *)

let figure3 () =
  Fmt.pr "=== Figure 3: IQ entries needed in a DAG block ===@.";
  let block =
    [|
      Instr.make ~dst:(r 1) ~src1:(r 10) ~imm:1 Opcode.Addi; (* a *)
      Instr.make ~dst:(r 2) ~src1:(r 1) ~imm:1 Opcode.Addi;  (* b <- a *)
      Instr.make ~dst:(r 3) ~src1:(r 2) ~imm:1 Opcode.Addi;  (* c <- b *)
      Instr.make ~dst:(r 4) ~src1:(r 1) ~imm:1 Opcode.Addi;  (* d <- a *)
      Instr.make ~dst:(r 5) ~src1:(r 4) ~imm:1 Opcode.Addi;  (* e <- d *)
      Instr.make ~dst:(r 6) ~src1:(r 4) ~imm:1 Opcode.Addi;  (* f <- d *)
    |]
  in
  let res = Sdiq_core.Pseudo_iq.analyze block in
  Array.iteri
    (fun i c ->
      Fmt.pr "  %c issues on iteration %d@."
        (Char.chr (Char.code 'a' + i))
        c)
    res.Sdiq_core.Pseudo_iq.issue_cycle;
  Fmt.pr "overall needs %d entries (paper: 4)@.@." res.Sdiq_core.Pseudo_iq.need

(* --- Figure 4: CDS equations for a loop --------------------------------- *)

let figure4 () =
  Fmt.pr "=== Figure 4: equations for instructions within a loop ===@.";
  let body =
    [|
      Instr.make ~dst:(r 1) ~src1:(r 1) ~imm:1 Opcode.Addi; (* a = a' + 1 *)
      Instr.make ~dst:(r 2) ~src1:(r 1) ~imm:1 Opcode.Addi; (* b = a + 1 *)
      Instr.make ~dst:(r 3) ~src1:(r 2) ~imm:1 Opcode.Addi; (* c = b + 1 *)
      Instr.make ~dst:(r 4) ~src1:(r 2) ~imm:1 Opcode.Addi; (* d = b + 1 *)
      Instr.make ~dst:(r 5) ~src1:(r 4) ~imm:1 Opcode.Addi; (* e = d + 1 *)
      Instr.make ~dst:(r 6) ~src1:(r 3) ~imm:1 Opcode.Addi; (* f = c + 1 *)
    |]
  in
  let g = Sdiq_ddg.Ddg.of_loop_body body in
  let sch = Sdiq_ddg.Cds.schedule g in
  Fmt.pr "initiation interval: %d cycle/iteration@." sch.Sdiq_ddg.Cds.ii;
  Fmt.pr "critical CDS: {%s}@."
    (String.concat ", "
       (List.map
          (fun i -> String.make 1 (Char.chr (Char.code 'a' + i)))
          sch.Sdiq_ddg.Cds.cds));
  List.iter
    (fun (e : Sdiq_ddg.Cds.equation) ->
      Fmt.pr "  %c_i issues with a_(i+%d)@."
        (Char.chr (Char.code 'a' + e.node))
        e.iter_offset)
    sch.Sdiq_ddg.Cds.equations;
  let need = Sdiq_ddg.Cds.iq_need g sch in
  Fmt.pr "entries needed: %d (paper: 15)@.@." need

(* --- Figure 2 (as a dynamic trace): new_head motion --------------------- *)

let figure2 () =
  Fmt.pr "=== Figure 2: new_head pointer and max_new_range ===@.";
  let q = Sdiq_cpu.Iq.create ~size:16 ~bank_size:4 in
  Sdiq_cpu.Iq.start_new_region q;
  let sa = Sdiq_cpu.Iq.dispatch q ~rob_idx:0 ~ops:[] in
  let sb = Sdiq_cpu.Iq.dispatch q ~rob_idx:1 ~ops:[] in
  let sc = Sdiq_cpu.Iq.dispatch q ~rob_idx:2 ~ops:[] in
  ignore (Sdiq_cpu.Iq.dispatch q ~rob_idx:3 ~ops:[]);
  Sdiq_cpu.Iq.issue q sb;
  Sdiq_cpu.Iq.issue q sc;
  Fmt.pr "a,_,_,d resident: span = %d slots (max_new_range 4: full)@."
    (Sdiq_cpu.Iq.new_region_span q);
  Sdiq_cpu.Iq.issue q sa;
  Fmt.pr "a issues -> new_head sweeps to d: span = %d (3 more may dispatch)@.@."
    (Sdiq_cpu.Iq.new_region_span q)

let () =
  figure1 ();
  figure2 ();
  figure3 ();
  figure4 ()
