(* Ablations over the design choices DESIGN.md calls out:

   1. NOOP delivery vs tag delivery with identical analysis values — the
      pure cost of spending fetch/dispatch bandwidth on special NOOPs;
   2. bank granularity: 4-, 8- and 16-entry banks trade gating leverage
      against control overhead;
   3. the analysis conservatism knob (slack entries per region);
   4. the compiler's assumed load latency (the paper assumes L1 hits;
      what if it budgeted for the occasional miss?).

   Each ablation's per-benchmark rows are independent simulations, so
   they run on a shared Sdiq_util.Pool and print in order afterwards.

     dune exec examples/design_space.exe -- [--domains N] *)

module H = Sdiq_harness

let benches () =
  [ Sdiq_workloads.W_gzip.build (); Sdiq_workloads.W_gap.build ();
    Sdiq_workloads.W_vortex.build () ]

let budget = 50_000

let pool =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--domains" then int_of_string_opt Sys.argv.(i + 1)
    else find (i + 1)
  in
  Sdiq_util.Pool.create ?domains:(find 1) ()

let ipc_loss base tech =
  (Sdiq_cpu.Stats.ipc base -. Sdiq_cpu.Stats.ipc tech)
  /. Sdiq_cpu.Stats.ipc base *. 100.

let run_with ?(config = Sdiq_cpu.Config.default) ~opts ~mode bench =
  let prog, _ =
    Sdiq_core.Annotate.apply ~opts mode bench.Sdiq_workloads.Bench.prog
  in
  Sdiq_cpu.Pipeline.simulate ~config
    ~policy:(Sdiq_cpu.Policy.software ())
    ~init:bench.Sdiq_workloads.Bench.init ~max_insns:budget prog

let baseline ?(config = Sdiq_cpu.Config.default) bench =
  Sdiq_cpu.Pipeline.simulate ~config
    ~init:bench.Sdiq_workloads.Bench.init ~max_insns:budget
    bench.Sdiq_workloads.Bench.prog

(* Map [row] over the benchmarks on the pool, then print in suite order. *)
let each_bench row print =
  List.iter print
    (Sdiq_util.Pool.map_list pool
       ~f:(fun bench -> (bench.Sdiq_workloads.Bench.name, row bench))
       (benches ()))

(* --- 1. NOOP vs tag delivery ------------------------------------------- *)

let ablation_delivery () =
  Fmt.pr "=== ablation 1: annotation delivery (same analysis values) ===@.";
  Fmt.pr "%-10s %14s %14s@." "bench" "noop loss%" "tagged loss%";
  each_bench
    (fun bench ->
      let base = baseline bench in
      let noop =
        run_with ~opts:Sdiq_core.Options.default ~mode:Sdiq_core.Annotate.Noop
          bench
      in
      let tag =
        run_with ~opts:Sdiq_core.Options.default
          ~mode:Sdiq_core.Annotate.Tagged bench
      in
      (ipc_loss base noop, ipc_loss base tag))
    (fun (name, (noop, tag)) -> Fmt.pr "%-10s %14.2f %14.2f@." name noop tag);
  Fmt.pr "@."

(* --- 2. bank granularity ------------------------------------------------ *)

let ablation_banks () =
  Fmt.pr "=== ablation 2: issue-queue bank granularity ===@.";
  Fmt.pr "%-10s %16s %16s %16s@." "bench" "4/bank off%" "8/bank off%"
    "16/bank off%";
  each_bench
    (fun bench ->
      let off bank_size =
        let config =
          { Sdiq_cpu.Config.default with Sdiq_cpu.Config.iq_bank_size = bank_size }
        in
        let tech =
          run_with ~config ~opts:Sdiq_core.Options.default
            ~mode:Sdiq_core.Annotate.Tagged bench
        in
        let nb = Sdiq_cpu.Config.iq_banks config in
        100.
        *. (1.
            -. float_of_int tech.Sdiq_cpu.Stats.iq_banks_on_sum
               /. (float_of_int nb *. float_of_int tech.Sdiq_cpu.Stats.cycles))
      in
      (off 4, off 8, off 16))
    (fun (name, (o4, o8, o16)) ->
      Fmt.pr "%-10s %16.1f %16.1f %16.1f@." name o4 o8 o16);
  Fmt.pr "@."

(* --- 3. analysis slack --------------------------------------------------- *)

let ablation_slack () =
  Fmt.pr "=== ablation 3: conservatism slack (extra entries per region) ===@.";
  Fmt.pr "%-10s %12s %12s %12s %12s@." "bench" "slack 0" "slack 4" "slack 8"
    "slack 16";
  each_bench
    (fun bench ->
      let base = baseline bench in
      let loss slack =
        let opts = { Sdiq_core.Options.default with Sdiq_core.Options.slack } in
        ipc_loss base (run_with ~opts ~mode:Sdiq_core.Annotate.Tagged bench)
      in
      (loss 0, loss 4, loss 8, loss 16))
    (fun (name, (s0, s4, s8, s16)) ->
      Fmt.pr "%-10s %12.2f %12.2f %12.2f %12.2f@." name s0 s4 s8 s16);
  Fmt.pr "@."

(* --- 4. assumed load latency --------------------------------------------- *)

let ablation_load_latency () =
  Fmt.pr "=== ablation 4: compiler's assumed load latency ===@.";
  Fmt.pr "(the paper assumes L1 hits: extra = 2 cycles)@.";
  Fmt.pr "%-10s %12s %12s %12s@." "bench" "extra 2" "extra 5" "extra 10";
  each_bench
    (fun bench ->
      let base = baseline bench in
      let loss extra =
        let opts =
          { Sdiq_core.Options.default with Sdiq_core.Options.load_hit_extra = extra }
        in
        ipc_loss base (run_with ~opts ~mode:Sdiq_core.Annotate.Tagged bench)
      in
      (loss 2, loss 5, loss 10))
    (fun (name, (l2, l5, l10)) ->
      Fmt.pr "%-10s %12.2f %12.2f %12.2f@." name l2 l5 l10);
  Fmt.pr "@."

let () =
  ablation_delivery ();
  ablation_banks ();
  ablation_slack ();
  ablation_load_latency ()
