(* Writing your own workload and evaluating every technique on it.

   The kernel here is a little histogram builder: stream through a data
   array, bucket each value, and periodically rescale the histogram with
   a multiply-heavy pass — two loops of different character in one
   program, which is exactly what exercises the analysis's per-region
   values.

     dune exec examples/custom_workload.exe *)

open Sdiq_isa
open Sdiq_util

let r = Reg.int

let data_base = 0x1_0000
let data_words = 8192
let hist_base = 0x5_0000

let build () =
  Sdiq_workloads.Bench.make ~name:"histogram"
    ~description:"bucket a stream, rescale periodically"
    ~build:(fun b ->
      let p = Asm.proc b "main" in
      Asm.li p (r 1) 30_000; (* items to process *)
      Asm.li p (r 2) data_base;
      Asm.li p (r 20) hist_base;
      Asm.label p "stream";
      (* bucket two items per iteration *)
      Asm.load p (r 3) (r 2) 0;
      Asm.load p (r 4) (r 2) 4;
      Asm.andi p (r 5) (r 3) 255;
      Asm.andi p (r 6) (r 4) 255;
      Asm.shli p (r 5) (r 5) 2;
      Asm.shli p (r 6) (r 6) 2;
      Asm.add p (r 5) (r 5) (r 20);
      Asm.add p (r 6) (r 6) (r 20);
      Asm.load p (r 7) (r 5) 0;
      Asm.addi p (r 7) (r 7) 1;
      Asm.store p (r 5) (r 7) 0;
      Asm.load p (r 8) (r 6) 0;
      Asm.addi p (r 8) (r 8) 1;
      Asm.store p (r 6) (r 8) 0;
      (* every 1024 items, rescale the histogram *)
      Asm.andi p (r 9) (r 1) 1023;
      Asm.bne p (r 9) Reg.zero "advance";
      Asm.call p "rescale";
      Asm.label p "advance";
      Asm.addi p (r 2) (r 2) 8;
      Asm.li p (r 9) (data_base + (data_words * 4) - 8);
      Asm.blt p (r 2) (r 9) "no_wrap";
      Asm.li p (r 2) data_base;
      Asm.label p "no_wrap";
      Asm.addi p (r 1) (r 1) (-2);
      Asm.bne p (r 1) Reg.zero "stream";
      Asm.halt p;
      (* rescale: multiply every bucket by 7/8 *)
      let q = Asm.proc b "rescale" in
      Asm.li q (r 10) 0;
      Asm.label q "rloop";
      Asm.add q (r 11) (r 10) (r 20);
      Asm.load q (r 12) (r 11) 0;
      Asm.li q (r 13) 7;
      Asm.mul q (r 12) (r 12) (r 13);
      Asm.shri q (r 12) (r 12) 3;
      Asm.store q (r 11) (r 12) 0;
      Asm.addi q (r 10) (r 10) 4;
      Asm.li q (r 14) 1024;
      Asm.blt q (r 10) (r 14) "rloop";
      Asm.ret q)
    ~init:(fun st ->
      let rng = Rng.create 0xCAFE in
      Sdiq_workloads.Gen.fill_random rng st ~base:data_base ~len:data_words
        ~max:100_000)

let () =
  let bench = build () in
  (* Show what the compiler decided for each region. *)
  let _, anns = Sdiq_core.Annotate.noop bench.Sdiq_workloads.Bench.prog in
  Fmt.pr "the analysis found %d regions:@." (List.length anns);
  List.iter
    (fun (a : Sdiq_core.Procedure.annotation) ->
      Fmt.pr "  addr %3d -> %2d entries%s@." a.addr a.value
        (match a.loop_span with Some _ -> " (loop)" | None -> ""))
    anns;
  (* Evaluate every technique. *)
  let runner = Sdiq_harness.Runner.create ~budget:60_000 ~benches:[ bench ] () in
  Fmt.pr "@.%-10s %8s %8s %10s %10s@." "technique" "IPC" "IQ occ" "IQ dyn%"
    "IQ static%";
  List.iter
    (fun tech ->
      let stats = Sdiq_harness.Runner.run runner "histogram" tech in
      if tech = Sdiq_harness.Technique.Baseline then
        Fmt.pr "%-10s %8.3f %8.1f %10s %10s@."
          (Sdiq_harness.Technique.name tech)
          (Sdiq_cpu.Stats.ipc stats)
          (Sdiq_cpu.Stats.avg_iq_occupancy stats)
          "-" "-"
      else
        let s = Sdiq_harness.Runner.savings runner "histogram" tech in
        Fmt.pr "%-10s %8.3f %8.1f %10.1f %10.1f@."
          (Sdiq_harness.Technique.name tech)
          (Sdiq_cpu.Stats.ipc stats)
          (Sdiq_cpu.Stats.avg_iq_occupancy stats)
          s.Sdiq_power.Report.iq_dynamic_saving_pct
          s.Sdiq_power.Report.iq_static_saving_pct)
    Sdiq_harness.Technique.all
