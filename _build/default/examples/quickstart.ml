(* Quickstart: the whole system in fifty lines.

   Build a small program with the assembler, run the paper's compiler
   analysis, simulate it on the Table 1 machine with and without the
   software-directed issue queue, and print the power savings.

     dune exec examples/quickstart.exe *)

open Sdiq_isa

let r = Reg.int

(* A kernel with real ILP: two independent accumulation chains over an
   array, plus a multiply — enough structure for the analysis to find a
   non-trivial issue-queue requirement. *)
let program () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.li p (r 1) 20_000;          (* iterations *)
  Asm.li p (r 2) 0;               (* array cursor *)
  Asm.li p (r 3) 0;               (* sum *)
  Asm.li p (r 4) 1;               (* product-ish chain *)
  Asm.label p "loop";
  Asm.load p (r 5) (r 2) 4096;
  Asm.load p (r 6) (r 2) 8192;
  Asm.add p (r 3) (r 3) (r 5);
  Asm.mul p (r 7) (r 5) (r 6);
  Asm.xor p (r 4) (r 4) (r 7);
  Asm.addi p (r 2) (r 2) 4;
  Asm.andi p (r 2) (r 2) 16383;
  Asm.addi p (r 1) (r 1) (-1);
  Asm.bne p (r 1) Reg.zero "loop";
  Asm.store p Reg.zero (r 3) 0;
  Asm.store p Reg.zero (r 4) 4;
  Asm.halt p;
  Asm.assemble b ~entry:"main"

let () =
  let prog = program () in

  (* 1. The compiler pass: analyse and insert special NOOPs. *)
  let annotated, annotations = Sdiq_core.Annotate.noop prog in
  Fmt.pr "compiler analysis produced %d annotations:@."
    (List.length annotations);
  List.iter
    (fun (a : Sdiq_core.Procedure.annotation) ->
      Fmt.pr "  address %2d needs %2d IQ entries%s@." a.addr a.value
        (match a.loop_span with Some _ -> " (loop)" | None -> ""))
    annotations;

  (* 2. Simulate baseline and software-directed configurations. *)
  let base = Sdiq_cpu.Pipeline.simulate prog in
  let tech =
    Sdiq_cpu.Pipeline.simulate
      ~policy:(Sdiq_cpu.Policy.software ())
      annotated
  in
  Fmt.pr "@.baseline:  %a@." Sdiq_cpu.Stats.pp base;
  Fmt.pr "@.directed:  %a@." Sdiq_cpu.Stats.pp tech;

  (* 3. The normalised savings the paper reports. *)
  let savings = Sdiq_power.Report.compute ~base tech in
  Fmt.pr "@.savings:   %a@." Sdiq_power.Report.pp savings
