(* Why hardware-adaptive resizing lags: the paper's core motivation.

   "There is inevitably a delay in sensing rapid phase changes and
   adjusting accordingly. This leads to either a loss of IPC due to too
   small an issue queue or excessive power dissipation due to too large an
   issue queue." (Section 1)

   This example builds a program that alternates between a wide-ILP phase
   (wants a big queue) and a serial pointer-ish phase (needs almost none),
   then traces the abella policy's queue size against the phase structure
   and against the software policy's instantaneous per-region windows.

     dune exec examples/phase_anatomy.exe *)

open Sdiq_isa

let r = Reg.int

(* Alternating phases, ~600 instructions each. *)
let program () =
  let b = Asm.create () in
  let p = Asm.proc b "main" in
  Asm.li p (r 1) 60; (* phase pairs *)
  Asm.label p "phases";
  (* wide phase: six independent chains *)
  Asm.li p (r 2) 60;
  Asm.label p "wide";
  for i = 3 to 8 do
    Asm.addi p (r i) (r i) 1
  done;
  Asm.addi p (r 2) (r 2) (-1);
  Asm.bne p (r 2) Reg.zero "wide";
  (* serial phase: one multiply chain *)
  Asm.li p (r 2) 120;
  Asm.ori p (r 9) (r 9) 3;
  Asm.label p "serial";
  Asm.mul p (r 9) (r 9) (r 9);
  Asm.ori p (r 9) (r 9) 3;
  Asm.andi p (r 9) (r 9) 65535;
  Asm.addi p (r 2) (r 2) (-1);
  Asm.bne p (r 2) Reg.zero "serial";
  Asm.addi p (r 1) (r 1) (-1);
  Asm.bne p (r 1) Reg.zero "phases";
  Asm.halt p;
  Asm.assemble b ~entry:"main"

let trace_policy name policy prog =
  let t = Sdiq_cpu.Pipeline.create ~policy prog in
  Fmt.pr "--- %s ---@." name;
  Fmt.pr "%8s %8s %10s %12s@." "cycle" "IQ occ" "banks on" "active/limit";
  let next_sample = ref 0 in
  while not (Sdiq_cpu.Pipeline.drained t) do
    Sdiq_cpu.Pipeline.step_cycle t;
    if t.Sdiq_cpu.Pipeline.cycle >= !next_sample then begin
      next_sample := !next_sample + 500;
      Fmt.pr "%8d %8d %10d %12d@." t.Sdiq_cpu.Pipeline.cycle
        (Sdiq_cpu.Iq.occupancy t.Sdiq_cpu.Pipeline.iq)
        (Sdiq_cpu.Iq.banks_on t.Sdiq_cpu.Pipeline.iq)
        (Sdiq_cpu.Policy.current_limit t.Sdiq_cpu.Pipeline.policy
           t.Sdiq_cpu.Pipeline.iq)
    end
  done;
  let s = t.Sdiq_cpu.Pipeline.stats in
  Fmt.pr "finished: %d cycles, IPC %.2f, avg occupancy %.1f, avg banks %.2f@.@."
    s.Sdiq_cpu.Stats.cycles (Sdiq_cpu.Stats.ipc s)
    (Sdiq_cpu.Stats.avg_iq_occupancy s)
    (Sdiq_cpu.Stats.avg_iq_banks_on s)

let () =
  let prog = program () in
  (* The compiler sees both phases statically and sizes each loop's
     region: print its verdicts. *)
  let annotated, anns = Sdiq_core.Annotate.extension prog in
  Fmt.pr "compiler's per-region verdicts:@.";
  List.iter
    (fun (a : Sdiq_core.Procedure.annotation) ->
      Fmt.pr "  addr %2d -> %2d entries%s@." a.addr a.value
        (match a.loop_span with Some _ -> " (loop)" | None -> ""))
    anns;
  Fmt.pr "@.";
  trace_policy "baseline (80 entries, always)" Sdiq_cpu.Policy.unlimited prog;
  trace_policy "abella (adaptive, window-lagged)"
    (Sdiq_cpu.Policy.abella ())
    prog;
  trace_policy "software (instantaneous per-region windows)"
    (Sdiq_cpu.Policy.software ())
    annotated
