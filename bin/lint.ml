(* sdiq-lint: static analysis over the built-in benchmarks — annotation
   soundness audit, delivery integrity, workload lints and the
   register-pressure check — with structured findings, waiver files,
   machine-readable JSON output and a graded exit status:

     2  error-severity findings survive the waivers
     1  only warnings survive (or stale waivers linger)
     0  clean
     64 usage errors

     dune exec bin/lint.exe --                       # all benches, all modes
     dune exec bin/lint.exe -- --bench gcc -m noop --dot _build/dot
     dune exec bin/lint.exe -- --quiet               # summaries only
     dune exec bin/lint.exe -- --waivers waivers.txt --json findings.json *)

open Cmdliner
module Finding = Sdiq_analysis.Finding
module Driver = Sdiq_analysis.Driver
module Waiver = Sdiq_analysis.Waiver

let bench_arg =
  let doc =
    "Benchmark to lint (default: every built-in benchmark). Available: "
    ^ String.concat ", " (Sdiq_workloads.Suite.names ())
  in
  Arg.(value & opt (some string) None & info [ "b"; "bench" ] ~docv:"NAME" ~doc)

let mode_arg =
  let doc =
    "Annotation mode to audit: noop, extension, improved, tightened or all."
  in
  Arg.(value & opt string "all" & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let dot_arg =
  let doc =
    "Directory to dump Graphviz views into: one CFG per procedure and one \
     DDG per loop region (via Sdiq_ddg.Dot)."
  in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"DIR" ~doc)

let quiet_arg =
  let doc = "Print only per-benchmark summaries and waived findings." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let trace_arg =
  let doc =
    "Audit a JSONL event trace (written by `simulate.exe --trace`) for \
     delivery integrity against the statically prepared binary: every \
     traced annotation delivery must name a real annotation site with \
     the emitted value, commits must retire in program order, and the \
     cycle structure must be well-formed. Requires --bench and a single \
     --mode."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let infos_arg =
  let doc = "Also print info-severity findings (proved facts, statistics)." in
  Arg.(value & flag & info [ "infos" ] ~doc)

let waivers_arg =
  let doc =
    "Waiver file suppressing acknowledged error/warning findings. Each \
     line is '<pass> <proc|*> <addr|*> <reason...>' ('#' starts a \
     comment); [pass] is the finding's pass exactly as printed (e.g. \
     improved/soundness). Waivers that match no finding are reported \
     as stale and keep the exit status non-zero."
  in
  Arg.(value & opt (some string) None & info [ "waivers" ] ~docv:"FILE" ~doc)

let json_arg =
  let doc =
    "Write the findings that survive the waivers (all severities) as a \
     JSON array to $(docv); each object carries the benchmark it was \
     found under, and the pass field carries the mode prefix."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let dump_dot dir (bench : Sdiq_workloads.Bench.t) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let prog = bench.Sdiq_workloads.Bench.prog in
  List.iter
    (fun (p : Sdiq_isa.Prog.proc) ->
      if (not p.Sdiq_isa.Prog.is_library) && p.Sdiq_isa.Prog.len > 0 then begin
        let cfg = Sdiq_cfg.Cfg.build prog p in
        let write name contents =
          let oc =
            open_out
              (Filename.concat dir
                 (Fmt.str "%s_%s_%s.dot" bench.Sdiq_workloads.Bench.name
                    p.Sdiq_isa.Prog.name name))
          in
          output_string oc contents;
          close_out oc
        in
        write "cfg" (Sdiq_ddg.Dot.cfg_to_dot cfg);
        let regions = Sdiq_cfg.Regions.decompose cfg in
        List.iteri
          (fun i region ->
            match region with
            | Sdiq_cfg.Regions.Loop _ ->
              let body =
                Sdiq_core.Loop_need.body_of_region cfg regions region
              in
              let g = Sdiq_ddg.Ddg.of_loop_body body in
              write (Fmt.str "loop%d_ddg" i) (Sdiq_ddg.Dot.ddg_to_dot g)
            | Sdiq_cfg.Regions.Dag _ -> ())
          regions.Sdiq_cfg.Regions.regions
      end)
    prog.Sdiq_isa.Prog.procs

(* --- runtime-trace delivery integrity ----------------------------------- *)

(* Minimal field extraction for the flat one-object-per-line JSON the
   trace sink writes (lib/events/trace.ml); no JSON dependency needed. *)
let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

let int_field line key =
  match find_sub line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some i ->
    let n = String.length line in
    let j = ref i in
    if !j < n && line.[!j] = '-' then incr j;
    let start = !j in
    while !j < n && line.[!j] >= '0' && line.[!j] <= '9' do
      incr j
    done;
    if !j = start then None
    else int_of_string_opt (String.sub line i (!j - i))

let str_field line key =
  match find_sub line (Printf.sprintf "\"%s\":\"" key) with
  | None -> None
  | Some i -> (
    match String.index_from_opt line i '"' with
    | None -> None
    | Some j -> Some (String.sub line i (j - i)))

(* Audit [path] against the binary prepared exactly as the simulator
   harness prepares it for [mode]. Returns the number of errors. *)
let audit_trace ~(bench : Sdiq_workloads.Bench.t) ~(mode : Driver.mode) path =
  let prepared, _anns =
    Driver.apply_mode mode bench.Sdiq_workloads.Bench.prog
  in
  let errors = ref 0 in
  let error fmt =
    Fmt.kstr
      (fun msg ->
        incr errors;
        if !errors <= 20 then Fmt.pr "  error: %s@." msg)
      fmt
  in
  let lines = ref 0 in
  let prev_cycle = ref 0 in
  let prev_commit_sn = ref (-1) in
  let commits = ref 0 in
  let annotations = ref 0 in
  let cycle_ends = ref 0 in
  let ic = open_in path in
  (try
     while true do
       let line = input_line ic in
       incr lines;
       match (str_field line "ev", int_field line "cycle") with
       | None, _ | _, None ->
         error "line %d: malformed event (no ev/cycle field): %s" !lines line
       | Some ev, Some cycle ->
         if cycle < !prev_cycle then
           error "line %d: cycle went backwards (%d after %d)" !lines cycle
             !prev_cycle;
         prev_cycle := cycle;
         (match ev with
         | "annotation" -> (
           incr annotations;
           match
             ( int_field line "pc",
               int_field line "value",
               str_field line "delivery" )
           with
           | Some pc, Some value, Some delivery ->
             if pc < 0 || pc >= Sdiq_isa.Prog.length prepared then
               error "line %d: annotation pc %d outside the binary" !lines pc
             else begin
               let i = Sdiq_isa.Prog.instr prepared pc in
               match delivery with
               | "noop" ->
                 if i.Sdiq_isa.Instr.op <> Sdiq_isa.Opcode.Iqset then
                   error
                     "line %d: NOOP delivery at pc %d but the binary has %s \
                      there"
                     !lines pc
                     (Sdiq_isa.Instr.to_string i)
                 else if i.Sdiq_isa.Instr.imm <> value then
                   error
                     "line %d: NOOP delivery at pc %d carries %d, binary \
                      says %d"
                     !lines pc value i.Sdiq_isa.Instr.imm
               | "tag" ->
                 if i.Sdiq_isa.Instr.tag <> Some value then
                   error
                     "line %d: tag delivery at pc %d carries %d, binary \
                      says %s"
                     !lines pc value
                     (match i.Sdiq_isa.Instr.tag with
                     | Some v -> string_of_int v
                     | None -> "no tag")
               | d -> error "line %d: unknown delivery kind %S" !lines d
             end
           | _ -> error "line %d: annotation event missing fields" !lines)
         | "commit" -> (
           incr commits;
           match int_field line "sn" with
           | Some sn ->
             if sn <= !prev_commit_sn then
               error "line %d: commit sn %d not after %d (program order)"
                 !lines sn !prev_commit_sn;
             prev_commit_sn := sn
           | None -> error "line %d: commit event missing sn" !lines)
         | "cycle_end" ->
           if cycle <> !cycle_ends then
             error "line %d: cycle_end for cycle %d, expected %d" !lines cycle
               !cycle_ends;
           incr cycle_ends
         | _ -> ())
     done
   with End_of_file -> ());
  close_in ic;
  if !commits = 0 then error "trace retired no instructions";
  let binary_annotated =
    Sdiq_isa.Prog.count_matching prepared (fun i ->
        i.Sdiq_isa.Instr.op = Sdiq_isa.Opcode.Iqset
        || i.Sdiq_isa.Instr.tag <> None)
    > 0
  in
  if binary_annotated && !annotations = 0 then
    error
      "binary carries annotations under mode %s but the trace delivered none"
      mode.Driver.name;
  Fmt.pr
    "== %s/%s trace: %d events over %d cycles — %d commits in order, %d \
     annotation deliveries verified: %s@."
    bench.Sdiq_workloads.Bench.name mode.Driver.name !lines !cycle_ends
    !commits !annotations
    (if !errors = 0 then "clean" else Fmt.str "%d error(s)" !errors);
  !errors

let run bench_name mode dot quiet infos trace waivers_file json_file =
  (match trace with
  | None -> ()
  | Some path ->
    (* Trace audits pin down one (bench, mode): anything else would
       compare the trace against the wrong binary. *)
    let bench =
      match bench_name with
      | Some n -> (
        match Sdiq_workloads.Suite.find n with
        | Some b -> b
        | None ->
          Fmt.epr "unknown benchmark %S; available: %s@." n
            (String.concat ", " (Sdiq_workloads.Suite.names ()));
          exit 64)
      | None ->
        Fmt.epr "--trace needs --bench NAME (the trace's benchmark)@.";
        exit 64
    in
    let m =
      match Driver.mode_named mode with
      | Some m -> m
      | None ->
        Fmt.epr
          "--trace needs a single --mode (noop, extension, improved or \
           tightened)@.";
        exit 64
    in
    exit (if audit_trace ~bench ~mode:m path > 0 then 2 else 0));
  let benches =
    match bench_name with
    | None -> Sdiq_workloads.Suite.all ()
    | Some n -> (
      match Sdiq_workloads.Suite.find n with
      | Some b -> [ b ]
      | None ->
        Fmt.epr "unknown benchmark %S; available: %s@." n
          (String.concat ", " (Sdiq_workloads.Suite.names ()));
        exit 64)
  in
  let modes =
    if mode = "all" then Driver.modes
    else
      match Driver.mode_named mode with
      | Some m -> [ m ]
      | None ->
        Fmt.epr
          "unknown mode %S; available: noop, extension, improved, tightened, \
           all@."
          mode;
        exit 64
  in
  let waivers =
    match waivers_file with
    | None -> []
    | Some path -> (
      match Waiver.load path with
      | Ok ws -> ws
      | Error e ->
        Fmt.epr "cannot load waivers from %s: %s@." path e;
        exit 64)
  in
  (* Waiver usage is tracked across every bench/mode so a waiver that
     fires anywhere in the run is not reported stale. *)
  let used = Array.make (List.length waivers) false in
  let waiver_for f =
    let rec go i = function
      | [] -> None
      | w :: ws -> if Waiver.matches w f then Some (i, w) else go (i + 1) ws
    in
    go 0 waivers
  in
  let total_errors = ref 0 in
  let total_warnings = ref 0 in
  let json_entries = ref [] in
  List.iter
    (fun (bench : Sdiq_workloads.Bench.t) ->
      let name = bench.Sdiq_workloads.Bench.name in
      let prog = bench.Sdiq_workloads.Bench.prog in
      let findings =
        List.concat_map (fun m -> Driver.audit_mode m prog) modes
        @ Driver.lint_program prog
        |> List.sort Finding.compare
      in
      let waived, active =
        List.partition_map
          (fun (f : Finding.t) ->
            match f.Finding.severity with
            | Finding.Info -> Either.Right f
            | Finding.Error | Finding.Warning -> (
              match waiver_for f with
              | Some (i, w) ->
                used.(i) <- true;
                Either.Left (f, w.Waiver.reason)
              | None -> Either.Right f))
          findings
      in
      total_errors := !total_errors + Finding.errors active;
      total_warnings := !total_warnings + Finding.warnings active;
      json_entries :=
        List.rev_append
          (List.rev_map
             (fun f -> Finding.to_json ~extra:[ ("bench", name) ] f)
             active)
          !json_entries;
      Fmt.pr "== %s: %a (%d waived)@." name Finding.pp_summary active
        (List.length waived);
      List.iter
        (fun (f : Finding.t) ->
          let show =
            match f.Finding.severity with
            | Finding.Error -> true
            | Finding.Warning -> not quiet
            | Finding.Info -> infos && not quiet
          in
          if show then Fmt.pr "  %a@." Finding.pp f)
        active;
      List.iter
        (fun ((f : Finding.t), reason) ->
          Fmt.pr "  waived: %a@.    reason: %s@." Finding.pp f reason)
        waived;
      Option.iter (fun dir -> dump_dot dir bench) dot)
    benches;
  (match json_file with
  | None -> ()
  | Some path ->
    let entries = List.rev !json_entries in
    let oc = open_out path in
    output_string oc "[";
    List.iteri
      (fun i s ->
        if i > 0 then output_string oc ",";
        output_string oc "\n";
        output_string oc s)
      entries;
    output_string oc "\n]\n";
    close_out oc;
    Fmt.pr "lint: wrote %d finding(s) to %s@." (List.length entries) path);
  let unused = List.filteri (fun i _ -> not used.(i)) waivers in
  List.iter
    (fun (w : Waiver.t) ->
      Fmt.pr "lint: stale waiver (line %d: %s %s %s) matched nothing: %s@."
        w.Waiver.line w.Waiver.pass
        (match w.Waiver.proc with Some p -> p | None -> "*")
        (match w.Waiver.addr with Some a -> string_of_int a | None -> "*")
        w.Waiver.reason)
    unused;
  if !total_errors > 0 then begin
    Fmt.pr "lint: %d error-severity finding(s)@." !total_errors;
    exit 2
  end
  else if !total_warnings > 0 || unused <> [] then begin
    Fmt.pr "lint: %d warning(s), %d stale waiver(s)@." !total_warnings
      (List.length unused);
    exit 1
  end
  else Fmt.pr "lint: clean (no error-severity findings)@."

let cmd =
  let doc =
    "statically audit annotation soundness, delivery integrity, workload \
     hygiene and register pressure"
  in
  Cmd.v
    (Cmd.info "sdiq-lint" ~doc)
    Term.(
      const run $ bench_arg $ mode_arg $ dot_arg $ quiet_arg $ infos_arg
      $ trace_arg $ waivers_arg $ json_arg)

let () = exit (Cmd.eval cmd)
