(* sdiq-lint: static analysis over the built-in benchmarks — annotation
   soundness audit, delivery integrity, workload lints and the
   register-pressure check — with structured findings and a non-zero
   exit when any error-severity finding survives.

     dune exec bin/lint.exe --                       # all benches, all modes
     dune exec bin/lint.exe -- --bench gcc -m noop --dot _build/dot
     dune exec bin/lint.exe -- --quiet               # summaries only *)

open Cmdliner
module Finding = Sdiq_analysis.Finding
module Driver = Sdiq_analysis.Driver

(* Findings on the built-in workloads that are understood and accepted;
   each carries the recorded reason. Matched by (bench, pass suffix,
   procedure). *)
let waivers : (string * string * string * string) list = []

let waiver_reason ~bench (f : Finding.t) =
  List.find_map
    (fun (b, pass, proc, reason) ->
      let suffix_of p s =
        let lp = String.length p and ls = String.length s in
        ls >= lp && String.sub s (ls - lp) lp = p
      in
      if b = bench && suffix_of pass f.Finding.pass && proc = f.Finding.proc
      then Some reason
      else None)
    waivers

let bench_arg =
  let doc =
    "Benchmark to lint (default: every built-in benchmark). Available: "
    ^ String.concat ", " (Sdiq_workloads.Suite.names ())
  in
  Arg.(value & opt (some string) None & info [ "b"; "bench" ] ~docv:"NAME" ~doc)

let mode_arg =
  let doc = "Annotation mode to audit: noop, extension, improved or all." in
  Arg.(value & opt string "all" & info [ "m"; "mode" ] ~docv:"MODE" ~doc)

let dot_arg =
  let doc =
    "Directory to dump Graphviz views into: one CFG per procedure and one \
     DDG per loop region (via Sdiq_ddg.Dot)."
  in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"DIR" ~doc)

let quiet_arg =
  let doc = "Print only per-benchmark summaries and waived findings." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let infos_arg =
  let doc = "Also print info-severity findings (proved facts, statistics)." in
  Arg.(value & flag & info [ "infos" ] ~doc)

let dump_dot dir (bench : Sdiq_workloads.Bench.t) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let prog = bench.Sdiq_workloads.Bench.prog in
  List.iter
    (fun (p : Sdiq_isa.Prog.proc) ->
      if (not p.Sdiq_isa.Prog.is_library) && p.Sdiq_isa.Prog.len > 0 then begin
        let cfg = Sdiq_cfg.Cfg.build prog p in
        let write name contents =
          let oc =
            open_out
              (Filename.concat dir
                 (Fmt.str "%s_%s_%s.dot" bench.Sdiq_workloads.Bench.name
                    p.Sdiq_isa.Prog.name name))
          in
          output_string oc contents;
          close_out oc
        in
        write "cfg" (Sdiq_ddg.Dot.cfg_to_dot cfg);
        let regions = Sdiq_cfg.Regions.decompose cfg in
        List.iteri
          (fun i region ->
            match region with
            | Sdiq_cfg.Regions.Loop _ ->
              let body =
                Sdiq_core.Loop_need.body_of_region cfg regions region
              in
              let g = Sdiq_ddg.Ddg.of_loop_body body in
              write (Fmt.str "loop%d_ddg" i) (Sdiq_ddg.Dot.ddg_to_dot g)
            | Sdiq_cfg.Regions.Dag _ -> ())
          regions.Sdiq_cfg.Regions.regions
      end)
    prog.Sdiq_isa.Prog.procs

let run bench_name mode dot quiet infos =
  let benches =
    match bench_name with
    | None -> Sdiq_workloads.Suite.all ()
    | Some n -> (
      match Sdiq_workloads.Suite.find n with
      | Some b -> [ b ]
      | None ->
        Fmt.epr "unknown benchmark %S; available: %s@." n
          (String.concat ", " (Sdiq_workloads.Suite.names ()));
        exit 64)
  in
  let modes =
    if mode = "all" then Driver.modes
    else
      match Driver.mode_named mode with
      | Some m -> [ m ]
      | None ->
        Fmt.epr "unknown mode %S; available: noop, extension, improved, all@."
          mode;
        exit 64
  in
  let total_errors = ref 0 in
  List.iter
    (fun (bench : Sdiq_workloads.Bench.t) ->
      let name = bench.Sdiq_workloads.Bench.name in
      let prog = bench.Sdiq_workloads.Bench.prog in
      let findings =
        List.concat_map (fun m -> Driver.audit_mode m prog) modes
        @ Driver.lint_program prog
        |> List.sort Finding.compare
      in
      let waived, active =
        List.partition_map
          (fun f ->
            match waiver_reason ~bench:name f with
            | Some reason -> Either.Left (f, reason)
            | None -> Either.Right f)
          findings
      in
      total_errors := !total_errors + Finding.errors active;
      Fmt.pr "== %s: %a (%d waived)@." name Finding.pp_summary active
        (List.length waived);
      List.iter
        (fun (f : Finding.t) ->
          let show =
            match f.Finding.severity with
            | Finding.Error -> true
            | Finding.Warning -> not quiet
            | Finding.Info -> infos && not quiet
          in
          if show then Fmt.pr "  %a@." Finding.pp f)
        active;
      List.iter
        (fun ((f : Finding.t), reason) ->
          Fmt.pr "  waived: %a@.    reason: %s@." Finding.pp f reason)
        waived;
      Option.iter (fun dir -> dump_dot dir bench) dot)
    benches;
  if !total_errors > 0 then begin
    Fmt.pr "lint: %d error-severity finding(s)@." !total_errors;
    exit 1
  end
  else Fmt.pr "lint: clean (no error-severity findings)@."

let cmd =
  let doc =
    "statically audit annotation soundness, delivery integrity, workload \
     hygiene and register pressure"
  in
  Cmd.v
    (Cmd.info "sdiq-lint" ~doc)
    Term.(const run $ bench_arg $ mode_arg $ dot_arg $ quiet_arg $ infos_arg)

let () = exit (Cmd.eval cmd)
