(* Tightening audit over the benchmark suite.

   For every benchmark: derive the tightened annotations, deliver them
   (tag mode — the instruction stream is untouched), re-audit the
   result with the trip-count-refined soundness pass plus the delivery
   and wrong-path lints, and build the occupancy/energy certificate of
   the delivered binary. Exits non-zero on any error finding, so CI can
   gate on it. Dynamic validation (trace identity, grid energy,
   certificate-vs-measured) lives in the test suite; this tool is the
   fast static gate. *)

module Driver = Sdiq_analysis.Driver
module Finding = Sdiq_analysis.Finding
module Tighten = Sdiq_analysis.Tighten
module Certificate = Sdiq_analysis.Certificate

let () =
  let quiet = Array.exists (( = ) "--quiet") Sys.argv in
  let mode =
    match Driver.mode_named "tightened" with
    | Some m -> m
    | None -> failwith "tightened mode not registered"
  in
  let config = Sdiq_cpu.Config.default in
  let total_errors = ref 0 in
  List.iter
    (fun (bench : Sdiq_workloads.Bench.t) ->
      let prog = bench.Sdiq_workloads.Bench.prog in
      let annotated, anns = Driver.apply_mode mode prog in
      let findings =
        Driver.audit_annotations mode prog anns
        @ Sdiq_analysis.Lint.delivery ~mode:mode.Driver.delivery
            ~original:prog ~annotated anns
        @ Sdiq_analysis.Speclint.check annotated
      in
      let cert = Certificate.build config annotated in
      let anchors, narrowed, reduction = Tighten.narrowing prog in
      total_errors := !total_errors + Finding.errors findings;
      if not quiet then begin
        Fmt.pr "== %s: %d anchors, %d narrowed vs improved (-%d entries), \
                certificate bound %d ==@."
          bench.Sdiq_workloads.Bench.name anchors narrowed reduction
          cert.Certificate.occ_bound;
        List.iter
          (fun f ->
            if f.Finding.severity <> Finding.Info then
              Fmt.pr "%a@." Finding.pp f)
          findings;
        Fmt.pr "   %a@." Finding.pp_summary findings
      end
      else if not (Finding.is_clean findings) then begin
        Fmt.pr "== %s ==@." bench.Sdiq_workloads.Bench.name;
        List.iter
          (fun f ->
            if f.Finding.severity = Finding.Error then
              Fmt.pr "%a@." Finding.pp f)
          findings
      end)
    (Sdiq_workloads.Suite.all ());
  if !total_errors > 0 then begin
    Fmt.pr "tighten-audit: %d errors@." !total_errors;
    exit 1
  end
  else Fmt.pr "tighten-audit: clean@."
