(* sdiq-profile: region-level attribution tables over a (benchmark x
   technique) grid, from dedicated profiled simulations.

     dune exec bin/profile.exe -- --bench gzip --technique noop
     dune exec bin/profile.exe -- --bench gzip,mcf --technique noop,improved \
       --top 8 --slack
     dune exec bin/profile.exe -- --json > metrics.json *)

open Cmdliner
module H = Sdiq_harness
module Obs = Sdiq_obs

let technique_of_string = function
  | "baseline" -> Ok H.Technique.Baseline
  | "noop" -> Ok H.Technique.Noop
  | "extension" -> Ok H.Technique.Extension
  | "improved" -> Ok H.Technique.Improved
  | "abella" -> Ok H.Technique.Abella
  | "tightened" -> Ok H.Technique.Tightened
  | s -> Error ("unknown technique: " ^ s)

let benches_arg =
  let doc =
    "Comma-separated benchmarks (default: every built-in benchmark). \
     Available: " ^ String.concat ", " (Sdiq_workloads.Suite.names ()) ^ "."
  in
  Arg.(value & opt string "all" & info [ "b"; "bench" ] ~docv:"NAMES" ~doc)

let techniques_arg =
  let doc =
    "Comma-separated techniques (baseline, noop, extension, improved, \
     abella)."
  in
  Arg.(value & opt string "noop" & info [ "t"; "technique" ] ~docv:"TECHS" ~doc)

let budget_arg =
  let doc = "Committed-instruction budget per run." in
  Arg.(value & opt int 100_000 & info [ "n"; "budget" ] ~docv:"N" ~doc)

let domains_arg =
  let doc = "Domains for the profiling pool (default: recommended count)." in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let top_arg =
  let doc = "Show only the $(docv) highest-energy regions per pair." in
  Arg.(value & opt (some int) None & info [ "top" ] ~docv:"N" ~doc)

let slack_arg =
  let doc =
    "Also print the annotation-slack report: granted Iqset window vs the \
     peak occupancy observed while the region was current; positive slack \
     marks an over-provisioned annotation."
  in
  Arg.(value & flag & info [ "slack" ] ~doc)

let json_arg =
  let doc = "Emit one JSON document (pairs + campaign metrics) to stdout." in
  Arg.(value & flag & info [ "json" ] ~doc)

let csv_arg =
  let doc = "Emit one CSV table (all pairs' regions) to stdout." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let policy_arg =
  let doc =
    "Select/wakeup scheduler policy for every profiled run \
     (oldest_first, nskip:N, load_delay; default oldest_first). The \
     policy tags every JSON and CSV row. Unknown names are rejected."
  in
  Arg.(value & opt (some string) None & info [ "policy" ] ~docv:"NAME" ~doc)

let openmetrics_arg =
  let doc =
    "Also write the campaign-wide metrics registry (the merge of every \
     pair's streaming metrics) to $(docv) as an OpenMetrics text \
     exposition — promtool-checkable, ends with # EOF. Combines with \
     any of the table/JSON/CSV outputs."
  in
  Arg.(
    value & opt (some string) None & info [ "openmetrics" ] ~docv:"FILE" ~doc)

let split_commas s =
  String.split_on_char ',' s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_benches s =
  if s = "all" then Ok (Sdiq_workloads.Suite.all ())
  else
    let names = split_commas s in
    let missing =
      List.filter
        (fun n -> Option.is_none (Sdiq_workloads.Suite.find n))
        names
    in
    if missing <> [] then
      Error
        (Printf.sprintf "unknown benchmark%s: %s (available: %s)"
           (if List.length missing = 1 then "" else "s")
           (String.concat ", " missing)
           (String.concat ", " (Sdiq_workloads.Suite.names ())))
    else
      Ok (List.filter_map Sdiq_workloads.Suite.find names)

let parse_techniques s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
      match technique_of_string x with
      | Ok t -> go (t :: acc) rest
      | Error e -> Error e)
  in
  go [] (split_commas s)

let print_json budget sched pairs campaign =
  let pair_docs =
    List.map
      (fun (bench, tech, prof) ->
        Printf.sprintf
          {|{"bench":"%s","technique":"%s","policy":"%s","regions":%d,"profile":%s}|}
          bench (H.Technique.name tech)
          (Sdiq_cpu.Sched.name sched)
          (Obs.Region.count (Obs.Profiler.map prof))
          (Obs.Profiler.to_json prof))
      pairs
  in
  print_string
    (Printf.sprintf
       {|{"budget":%d,"policy":"%s","pairs":[%s],"campaign_metrics":%s}|}
       budget
       (Sdiq_cpu.Sched.name sched)
       (String.concat "," pair_docs)
       (Obs.Metrics.to_json campaign));
  print_newline ()

let print_csv sched pairs =
  Fmt.pr "bench,technique,policy,%s@." Obs.Profiler.csv_header;
  List.iter
    (fun (bench, tech, prof) ->
      List.iter
        (fun row ->
          Fmt.pr "%s,%s,%s,%s@." bench (H.Technique.name tech)
            (Sdiq_cpu.Sched.name sched) row)
        (Obs.Profiler.csv_rows prof))
    pairs

let print_slack prof =
  match Obs.Profiler.slack prof with
  | [] -> Fmt.pr "  (no granted Iqset windows under this delivery)@."
  | entries ->
    Fmt.pr "  %-4s %-14s %-9s %7s %7s %5s %5s@." "id" "proc" "kind" "start"
      "granted" "peak" "slack";
    List.iter
      (fun (e : Obs.Profiler.slack_entry) ->
        let info = e.Obs.Profiler.entry_info in
        Fmt.pr "  R%-3d %-14s %-9s %7d %7s %5d %5d%s@." info.Obs.Region.id
          (if info.Obs.Region.proc = "" then "-" else info.Obs.Region.proc)
          (Obs.Region.kind_name info.Obs.Region.kind)
          info.Obs.Region.start
          (match info.Obs.Region.granted with
          | Some g -> string_of_int g
          | None -> "-")
          e.Obs.Profiler.peak e.Obs.Profiler.slack
          (if e.Obs.Profiler.slack > 0 then "  over-provisioned" else ""))
      entries

let print_tables top slack sched pairs =
  List.iter
    (fun (bench, tech, prof) ->
      Fmt.pr "@.%s / %s (policy %s, %d regions):@." bench
        (H.Technique.name tech)
        (Sdiq_cpu.Sched.name sched)
        (Obs.Region.count (Obs.Profiler.map prof));
      Fmt.pr "%a@." (Obs.Profiler.pp_table ?top) prof;
      if slack then begin
        Fmt.pr "annotation slack:@.";
        print_slack prof
      end)
    pairs

let run benches techniques budget domains top slack json csv policy
    openmetrics =
  let sched =
    match policy with
    | None -> Sdiq_cpu.Sched.default
    | Some s -> (
      match Sdiq_cpu.Sched.of_string s with
      | Ok sched -> sched
      | Error msg ->
        Fmt.epr "sdiq-profile: %s@." msg;
        exit 1)
  in
  match (parse_benches benches, parse_techniques techniques) with
  | Error e, _ | _, Error e ->
    Fmt.epr "%s@." e;
    exit 1
  | Ok benches, Ok techniques ->
    if techniques = [] then begin
      Fmt.epr "no techniques given@.";
      exit 1
    end;
    let runner = H.Runner.create ~budget ~benches ~sched ?domains () in
    let pairs, campaign = H.Runner.profile_all ~techniques runner in
    if json then print_json budget sched pairs campaign
    else if csv then print_csv sched pairs
    else print_tables top slack sched pairs;
    Option.iter
      (fun file ->
        let oc = open_out file in
        output_string oc (Obs.Metrics.to_openmetrics campaign);
        close_out oc;
        Fmt.pr "openmetrics: %s@." file)
      openmetrics

let cmd =
  let doc = "region-level attribution profiles of simulated benchmarks" in
  Cmd.v
    (Cmd.info "sdiq-profile" ~doc)
    Term.(
      const run $ benches_arg $ techniques_arg $ budget_arg $ domains_arg
      $ top_arg $ slack_arg $ json_arg $ csv_arg $ policy_arg
      $ openmetrics_arg)

let () = exit (Cmd.eval cmd)
